package twsim

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fsx"
	"repro/internal/seq"
	"repro/internal/shard"
)

// ShardedOptions configures a ShardedDB.
type ShardedOptions struct {
	// Options configures each shard (base distance, page size, pool size,
	// split heuristic). Every shard gets its own buffer pools of PoolPages
	// pages, so the aggregate cache grows with the shard count.
	Options
	// Shards is the number of hash partitions (0 = 1). The count is fixed
	// at creation and persisted; OpenSharded rejects a conflicting value.
	Shards int
	// Parallelism bounds the fan-out worker pool each Search/NearestK
	// uses across shards (0 = GOMAXPROCS).
	Parallelism int
}

func (o ShardedOptions) shardCount() int {
	if o.Shards <= 0 {
		return 1
	}
	return o.Shards
}

// perShard derives each shard's Options from the sharded configuration:
// the result cache and the query deadline act once, at the top level — a
// per-shard cache would hold partial answers no top-level query can reuse,
// and a per-shard deadline would restart the clock on every shard a query
// fans out to — so both are zeroed for the shards.
func (o ShardedOptions) perShard() Options {
	po := o.Options
	po.ResultCacheBytes = 0
	po.QueryDeadline = 0
	return po
}

// ShardStat is one shard's contribution to the database statistics.
type ShardStat = shard.ShardStat

// QueryTotals are a shard's cumulative query work counters, including the
// refinement cascade's per-tier prune counts (ShardStat.Queries).
type QueryTotals = shard.QueryTotals

// ShardedDB is a hash-partitioned sequence database: N independent shards
// (each a full DB with its own heap file, feature index, and buffer pools)
// behind one Backend. Searches fan out across shards concurrently and
// merge; Get/Remove route straight to the owning shard; writers serialize
// per shard only, so inserts into different shards proceed concurrently.
//
// A sequence stored at local ID l in shard s has global ID l*N + s:
// ShardID(id) = id mod N is a pure function of the ID, stable across
// Close/Open. Unlike *DB, a ShardedDB is safe for fully concurrent use.
type ShardedDB struct {
	eng  *shard.Engine
	dbs  []*DB // the shards, in shard-ID order (eng routes over the same slice)
	base Base
	dir  string  // empty when in-memory
	opts Options // top-level options; also carries the slow-query config
	// rcache is the engine-level whole-query result cache (nil when
	// disabled); entries are stamped with the summed per-shard write
	// generations (see Generation).
	rcache *core.ResultCache
}

const shardManifestName = "shards.json"

// shardManifest pins the partitioning scheme of an on-disk sharded
// database; the routing function is only stable if the shard count is.
type shardManifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// IsSharded reports whether dir holds a sharded database (created by
// CreateSharded) rather than a single-DB one.
func IsSharded(dir string) bool {
	_, err := readShardManifest(dir)
	return err == nil
}

func readShardManifest(dir string) (shardManifest, error) {
	var m shardManifest
	raw, err := os.ReadFile(filepath.Join(dir, shardManifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("twsim: corrupt shard manifest: %w", err)
	}
	if m.Version != 1 || m.Shards <= 0 {
		return m, fmt.Errorf("twsim: unsupported shard manifest (version %d, %d shards)", m.Version, m.Shards)
	}
	return m, nil
}

func writeShardManifest(dir string, m shardManifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return fsx.WriteFileSync(filepath.Join(dir, shardManifestName), append(raw, '\n'), 0o644)
}

func newShardedDB(dbs []*DB, dir string, opts ShardedOptions) (*ShardedDB, error) {
	stores := make([]shard.Store, len(dbs))
	for i, db := range dbs {
		stores[i] = db
	}
	eng, err := shard.New(stores, opts.Parallelism, opts.refineWorkers())
	if err != nil {
		closeAll(dbs)
		return nil, err
	}
	return &ShardedDB{eng: eng, dbs: dbs, base: opts.Base, dir: dir, opts: opts.Options,
		rcache: core.NewResultCache(opts.ResultCacheBytes)}, nil
}

func closeAll(dbs []*DB) {
	for _, db := range dbs {
		if db != nil {
			db.Close()
		}
	}
}

// OpenMemSharded creates an ephemeral in-memory sharded database.
func OpenMemSharded(opts ShardedOptions) (*ShardedDB, error) {
	n := opts.shardCount()
	dbs := make([]*DB, 0, n)
	for i := 0; i < n; i++ {
		db, err := OpenMem(opts.perShard())
		if err != nil {
			closeAll(dbs)
			return nil, err
		}
		dbs = append(dbs, db)
	}
	return newShardedDB(dbs, "", opts)
}

// CreateSharded creates a new on-disk sharded database in dir: a manifest
// pinning the shard count plus one sub-database per shard in
// dir/shard-000, dir/shard-001, …
func CreateSharded(dir string, opts ShardedOptions) (*ShardedDB, error) {
	n := opts.shardCount()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeShardManifest(dir, shardManifest{Version: 1, Shards: n}); err != nil {
		return nil, err
	}
	dbs := make([]*DB, 0, n)
	for i := 0; i < n; i++ {
		db, err := Create(filepath.Join(dir, shardDirName(i)), opts.perShard())
		if err != nil {
			closeAll(dbs)
			return nil, fmt.Errorf("twsim: creating shard %d: %w", i, err)
		}
		dbs = append(dbs, db)
	}
	return newShardedDB(dbs, dir, opts)
}

// OpenSharded opens an existing on-disk sharded database. The shard count
// comes from the manifest written at creation; a non-zero
// opts.Shards that disagrees is an error (repartitioning would scramble
// the ID routing). Each shard opens through the same self-healing path as
// a single DB — per-shard heap/index reconciliation — and LastRepair
// aggregates what every shard had to fix.
func OpenSharded(dir string, opts ShardedOptions) (*ShardedDB, error) {
	m, err := readShardManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("twsim: %s does not contain a sharded database: %w", dir, err)
	}
	if opts.Shards != 0 && opts.Shards != m.Shards {
		return nil, fmt.Errorf("twsim: database at %s has %d shards, not %d (the shard count is fixed at creation)",
			dir, m.Shards, opts.Shards)
	}
	dbs := make([]*DB, 0, m.Shards)
	for i := 0; i < m.Shards; i++ {
		db, err := Open(filepath.Join(dir, shardDirName(i)), opts.perShard())
		if err != nil {
			closeAll(dbs)
			return nil, fmt.Errorf("twsim: opening shard %d: %w", i, err)
		}
		dbs = append(dbs, db)
	}
	opts.Shards = m.Shards
	return newShardedDB(dbs, dir, opts)
}

// Base returns the configured base distance.
func (s *ShardedDB) Base() Base { return s.base }

// NumShards returns the number of partitions.
func (s *ShardedDB) NumShards() int { return s.eng.NumShards() }

// ShardID returns the shard owning the given sequence ID.
func (s *ShardedDB) ShardID(id ID) int { return s.eng.ShardOf(id) }

// Len returns the number of live sequences across all shards.
func (s *ShardedDB) Len() int { return s.eng.Len() }

// DataBytes returns the logical size of the stored data, summed over
// shards.
func (s *ShardedDB) DataBytes() int64 { return s.eng.DataBytes() }

// IndexPages returns the feature index size in pages, summed over shards.
func (s *ShardedDB) IndexPages() int { return s.eng.IndexPages() }

// ShardStats returns the per-shard statistics breakdown (for spotting
// skew), indexed by shard ID.
func (s *ShardedDB) ShardStats() []ShardStat { return s.eng.ShardStats() }

// LastRepair aggregates the per-shard Open-time repair statistics.
func (s *ShardedDB) LastRepair() RepairStats { return s.eng.LastRepair() }

// StorageStats snapshots the storage-layer counters summed over shards.
func (s *ShardedDB) StorageStats() StorageStats { return s.eng.StorageStats() }

// IndexEngineStats aggregates the per-shard feature-index engine counters.
func (s *ShardedDB) IndexEngineStats() core.IndexEngineStats { return s.eng.IndexEngineStats() }

// WALStats sums the per-shard write-ahead-log counters (each shard runs
// its own group-commit log; all zero when the WAL is disabled).
func (s *ShardedDB) WALStats() WALStats {
	var total WALStats
	for _, db := range s.dbs {
		total.Add(db.WALStats())
	}
	return total
}

// OpenDiagnostics concatenates every shard's open-time notes, prefixed with
// the shard number.
func (s *ShardedDB) OpenDiagnostics() []string { return s.eng.OpenDiagnostics() }

// Generation is the sharded engine's write generation: the sum of every
// shard's per-DB counter. Each shard bumps its own counter after mutating,
// so the sum read before a fan-out query and re-read at cache-lookup time
// brackets the query exactly as the single-DB counter does — any write
// acknowledged in between strictly increases the sum (counters are
// monotone), so a possibly-tainted cache entry's stamp is stale by
// construction. A write whose bump lands between the two reads only
// over-invalidates, never under-invalidates.
func (s *ShardedDB) Generation() uint64 {
	var g uint64
	for _, db := range s.dbs {
		g += db.gen.Load()
	}
	return g
}

// ResultCacheStats snapshots the engine-level result cache counters (all
// zero when the cache is disabled).
func (s *ShardedDB) ResultCacheStats() core.ResultCacheStats { return s.rcache.Stats() }

// DefaultBand returns the band half-width queries run under when no
// per-call override is given (Options.Band).
func (s *ShardedDB) DefaultBand() int { return s.opts.Band }

// Add stores one sequence, taking only the owning shard's write lock, and
// returns its global ID. Sequences containing NaN or ±Inf are rejected with
// ErrNonFinite before the placement counter advances, so an invalid Add
// burns no ID.
func (s *ShardedDB) Add(values []float64) (ID, error) {
	if err := seq.CheckFinite(values); err != nil {
		return seq.InvalidID, err
	}
	return s.eng.Add(values)
}

// AddBatch stores a batch split across shards (sub-batches load
// concurrently) and returns every assigned ID in input order. The IDs are
// interleaved across shards, not consecutive. A failed batch is rolled
// back on every shard (see the engine's AddAll for the exact semantics).
// The whole batch is validated for non-finite elements upfront, before any
// shard is touched or any ID is burned.
func (s *ShardedDB) AddBatch(values [][]float64) ([]ID, error) {
	for i, v := range values {
		if err := seq.CheckFinite(v); err != nil {
			return nil, fmt.Errorf("twsim: batch sequence %d: %w", i, err)
		}
	}
	return s.eng.AddAll(values)
}

// Remove deletes a sequence from its owning shard.
func (s *ShardedDB) Remove(id ID) (bool, error) { return s.eng.Remove(id) }

// Get fetches a stored sequence from its owning shard.
func (s *ShardedDB) Get(id ID) ([]float64, error) { return s.eng.Get(id) }

// Search runs the paper's range similarity query fanned out across all
// shards concurrently; results merge to exactly the single-database
// answer. Stats sum the per-shard work; Wall is the fan-out duration. The
// Result carries a process-unique RequestID; queries at or above
// Options.SlowQueryThreshold are logged with it. The distance answered is
// unconstrained when Options.Band is 0, banded otherwise.
func (s *ShardedDB) Search(query []float64, epsilon float64) (*Result, error) {
	return s.SearchBand(query, epsilon, s.opts.Band)
}

// SearchBand is Search under an explicit Sakoe–Chiba band half-width for
// this call, overriding Options.Band (0 = unconstrained). Every shard
// answers the same banded distance, so the merged result equals the
// single-database banded answer.
func (s *ShardedDB) SearchBand(query []float64, epsilon float64, band int) (*Result, error) {
	return s.SearchCtx(nil, query, epsilon, band)
}

// SearchCtx is SearchBand governed by a context: once ctx is done every
// shard abandons its work at the next candidate boundary and the fan-out
// returns the context's error; Options.QueryDeadline, when set, caps the
// execution time on top. The engine-level result cache, when enabled, is
// consulted first under the summed write generation (see Generation), so a
// hit skips the entire fan-out.
func (s *ShardedDB) SearchCtx(ctx context.Context, query []float64, epsilon float64, band int) (*Result, error) {
	if len(query) == 0 {
		return nil, seq.ErrEmpty
	}
	if err := seq.CheckFinite(query); err != nil {
		return nil, err
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("twsim: negative tolerance %g", epsilon)
	}
	if err := validateBand(band); err != nil {
		return nil, err
	}
	start := time.Now()
	var key string
	var preGen uint64
	if s.rcache != nil {
		key = core.ResultCacheKey('r', s.base, "sharded", band, epsilon, 0, query)
		preGen = s.Generation() // before any shard read of this query
		if ms, ok := s.rcache.Get(key, preGen); ok {
			res := cachedResult(ms, start)
			res.RequestID = nextRequestID()
			s.opts.logSlowQuery("search", res.RequestID, len(query), fmt.Sprintf("epsilon=%g band=%d", epsilon, band), res.Stats)
			return res, nil
		}
	}
	ctx, cancel := s.opts.applyDeadline(ctx)
	defer cancel()
	res, err := s.eng.SearchBandCtx(ctx, query, epsilon, band)
	if err != nil {
		return nil, err
	}
	if s.rcache != nil {
		s.rcache.Put(key, preGen, res.Matches)
	}
	res.RequestID = nextRequestID()
	s.opts.logSlowQuery("search", res.RequestID, len(query), fmt.Sprintf("epsilon=%g band=%d", epsilon, band), res.Stats)
	return res, nil
}

// NearestK runs the exact k-NN search across all shards, sharing a best-k
// bound so laggard shards prune early; the merged result equals the
// single-database answer.
func (s *ShardedDB) NearestK(query []float64, k int) ([]Match, error) {
	res, err := s.NearestKStats(query, k)
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// NearestKBand is NearestK under an explicit Sakoe–Chiba band half-width
// for this call, overriding Options.Band (0 = unconstrained).
func (s *ShardedDB) NearestKBand(query []float64, k, band int) ([]Match, error) {
	res, err := s.NearestKStatsBand(query, k, band)
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// NearestKStats is NearestK returning the full Result: matches plus the
// summed per-shard work counters and the RequestID (see DB.NearestKStats).
func (s *ShardedDB) NearestKStats(query []float64, k int) (*Result, error) {
	return s.NearestKStatsBand(query, k, s.opts.Band)
}

// NearestKStatsBand is NearestKStats under an explicit band half-width for
// this call, overriding Options.Band (0 = unconstrained).
func (s *ShardedDB) NearestKStatsBand(query []float64, k, band int) (*Result, error) {
	return s.NearestKCtx(nil, query, k, band)
}

// NearestKCtx is NearestKStatsBand governed by a context (see SearchCtx for
// the cancellation and caching behavior).
func (s *ShardedDB) NearestKCtx(ctx context.Context, query []float64, k, band int) (*Result, error) {
	if len(query) == 0 {
		return nil, seq.ErrEmpty
	}
	if err := seq.CheckFinite(query); err != nil {
		return nil, err
	}
	if err := validateBand(band); err != nil {
		return nil, err
	}
	start := time.Now()
	var key string
	var preGen uint64
	if s.rcache != nil {
		key = core.ResultCacheKey('k', s.base, "sharded", band, 0, k, query)
		preGen = s.Generation() // before any shard read of this query
		if ms, ok := s.rcache.Get(key, preGen); ok {
			res := cachedResult(ms, start)
			res.RequestID = nextRequestID()
			s.opts.logSlowQuery("knn", res.RequestID, len(query), fmt.Sprintf("k=%d band=%d", k, band), res.Stats)
			return res, nil
		}
	}
	ctx, cancel := s.opts.applyDeadline(ctx)
	defer cancel()
	ms, stats, err := s.eng.NearestKStatsBandCtx(ctx, query, k, band)
	if err != nil {
		return nil, err
	}
	if s.rcache != nil {
		s.rcache.Put(key, preGen, ms)
	}
	res := &Result{Matches: ms, Stats: stats, RequestID: nextRequestID()}
	s.opts.logSlowQuery("knn", res.RequestID, len(query), fmt.Sprintf("k=%d band=%d", k, band), res.Stats)
	return res, nil
}

// SearchBatch runs many range queries concurrently (one worker per query,
// each visiting shards serially — see the engine for why that maximizes
// batch throughput). parallelism <= 0 selects GOMAXPROCS. The first error
// aborts the batch promptly. Every query is validated for non-finite
// elements upfront; each per-query Result gets its own RequestID and
// slow-query log line.
func (s *ShardedDB) SearchBatch(queries [][]float64, epsilon float64, parallelism int) ([]*Result, error) {
	return s.SearchBatchBand(queries, epsilon, s.opts.Band, parallelism)
}

// SearchBatchBand is SearchBatch under an explicit Sakoe–Chiba band
// half-width for this call, overriding Options.Band (0 = unconstrained).
func (s *ShardedDB) SearchBatchBand(queries [][]float64, epsilon float64, band, parallelism int) ([]*Result, error) {
	return s.SearchBatchCtx(nil, queries, epsilon, band, parallelism)
}

// SearchBatchCtx is SearchBatchBand governed by a context: once ctx is done
// the dispatcher stops feeding queries and in-flight fan-outs abandon,
// failing the whole batch with the context's error. Options.QueryDeadline
// bounds the whole batch (attached once, not per query).
func (s *ShardedDB) SearchBatchCtx(ctx context.Context, queries [][]float64, epsilon float64, band, parallelism int) ([]*Result, error) {
	for i, q := range queries {
		if err := seq.CheckFinite(q); err != nil {
			return nil, fmt.Errorf("twsim: query %d: %w", i, err)
		}
	}
	if err := validateBand(band); err != nil {
		return nil, err
	}
	ctx, cancel := s.opts.applyDeadline(ctx)
	defer cancel()
	out, err := s.eng.SearchBatchBandCtx(ctx, queries, epsilon, band, parallelism)
	if err != nil {
		return nil, err
	}
	for i, res := range out {
		res.RequestID = nextRequestID()
		s.opts.logSlowQuery("batch", res.RequestID, len(queries[i]), fmt.Sprintf("epsilon=%g band=%d", epsilon, band), res.Stats)
	}
	return out, nil
}

// Distance computes the exact time warping distance between a stored
// sequence and a query under the database's base distance.
func (s *ShardedDB) Distance(id ID, query []float64) (float64, error) {
	values, err := s.eng.Get(id)
	if err != nil {
		return 0, err
	}
	return Distance(values, query, s.base), nil
}

// Verify runs every shard's full heap/index integrity check.
func (s *ShardedDB) Verify() error { return s.eng.Verify() }

// CheckInvariants validates every shard's index structure.
func (s *ShardedDB) CheckInvariants() error { return s.eng.CheckInvariants() }

// Flush persists every shard.
func (s *ShardedDB) Flush() error { return s.eng.Flush() }

// Close flushes and releases every shard.
func (s *ShardedDB) Close() error { return s.eng.Close() }
