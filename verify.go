package twsim

import (
	"fmt"

	"repro/internal/dtw"
	"repro/internal/seq"
)

// Verify performs a full integrity check of the database — the fsck
// counterpart to CheckInvariants (which validates only the R-tree
// structure):
//
//  1. every live heap record decodes (CRC failures and truncations
//     surface as errors from the scan);
//  2. the index holds exactly one entry per live sequence, keyed at its
//     current feature vector (checked by a zero-tolerance range query —
//     exactness of the lower bound makes this sound);
//  3. the index entry count matches the live sequence count;
//  4. the PAA envelope store holds exactly the envelope re-derivable from
//     every live sequence (the LB_PAA filter tier prunes on these before
//     fetching, so a stale envelope could silently mis-prune).
//
// Verify reads every page of the database; cost is one sequential sweep
// plus one point query per sequence.
func (db *DB) Verify() error {
	if err := db.index.CheckInvariants(); err != nil {
		return fmt.Errorf("twsim: index structure: %w", err)
	}
	live := 0
	err := db.store.Scan(func(id seq.ID, s seq.Sequence) error {
		live++
		f, err := seq.ExtractFeature(s)
		if err != nil {
			return fmt.Errorf("sequence %d: %w", id, err)
		}
		// A stored sequence whose feature is invalid (a non-finite element
		// slipped in before input validation existed, or corruption decoded
		// to NaN) is unreachable through the index: every range comparison
		// against a NaN coordinate is false. Flag it by name rather than
		// letting the zero-tolerance probe below fail cryptically.
		if !f.Valid() {
			return fmt.Errorf("sequence %d: invalid feature %+v (non-finite or inconsistent); unreachable through the index", id, f)
		}
		// A zero-tolerance range query around the sequence's own feature
		// must return the sequence itself: LBKim(s, s) = 0.
		ids, err := db.index.RangeQuery(f, 0)
		if err != nil {
			return fmt.Errorf("sequence %d: index query: %w", id, err)
		}
		found := false
		for _, got := range ids {
			if got == id {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sequence %d: missing from index (feature %+v)", id, f)
		}
		// The envelope store must hold exactly the profile this record
		// derives to (envelopes are immutable per ID — IDs are never reused
		// — so a mismatch means sidecar corruption, not staleness). A nil
		// store means the DB was composed without envelopes (hand-wired
		// tests); the LB_PAA tier is simply inert then, nothing to check.
		if db.envs != nil {
			pe, ok := db.envs.Get(id)
			if !ok {
				return fmt.Errorf("sequence %d: missing PAA envelope", id)
			}
			if want, err := seq.ExtractPAAEnvelope(s); err != nil || pe != want {
				return fmt.Errorf("sequence %d: PAA envelope does not match the stored record", id)
			}
		}
		// Paranoia: the stored record must be self-consistent under DTW.
		if d := dtw.LBKim(s, s); d != 0 {
			return fmt.Errorf("sequence %d: self lower bound %g != 0", id, d)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("twsim: heap/index cross-check: %w", err)
	}
	if idxLen := db.index.Len(); idxLen != live {
		return fmt.Errorf("twsim: index holds %d entries, heap holds %d live sequences",
			idxLen, live)
	}
	if envLen := db.envs.Len(); db.envs != nil && envLen != live {
		return fmt.Errorf("twsim: envelope store holds %d entries, heap holds %d live sequences",
			envLen, live)
	}
	return nil
}
