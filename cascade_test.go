package twsim_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	twsim "repro"
)

// The public DisableCascade switch must be invisible in results: range and
// k-NN queries return bit-identical matches with the cascade on and off,
// for every base distance.
func TestCascadeTogglePublicOracle(t *testing.T) {
	bases := map[string]twsim.Base{"linf": twsim.BaseLInf, "l1": twsim.BaseL1, "l2sq": twsim.BaseL2Sq}
	for name, base := range bases {
		t.Run(name, func(t *testing.T) {
			data := randomWalks(211, 100, 8, 40)
			plain, err := twsim.OpenMem(twsim.Options{Base: base, DisableCascade: true})
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			cascaded, err := twsim.OpenMem(twsim.Options{Base: base})
			if err != nil {
				t.Fatal(err)
			}
			defer cascaded.Close()
			if _, err := plain.AddBatch(data); err != nil {
				t.Fatal(err)
			}
			if _, err := cascaded.AddBatch(data); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			for trial := 0; trial < 10; trial++ {
				q := data[rng.Intn(len(data))]
				eps := rng.Float64() * 3
				want, err := plain.Search(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cascaded.Search(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Matches) != len(want.Matches) {
					t.Fatalf("trial %d eps %g: cascade %d matches, plain %d",
						trial, eps, len(got.Matches), len(want.Matches))
				}
				for i := range want.Matches {
					if got.Matches[i] != want.Matches[i] {
						t.Fatalf("trial %d match %d: cascade %+v, plain %+v",
							trial, i, got.Matches[i], want.Matches[i])
					}
				}
				k := 1 + rng.Intn(8)
				wantK, err := plain.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				gotK, err := cascaded.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotK) != len(wantK) {
					t.Fatalf("trial %d k=%d: cascade %d, plain %d", trial, k, len(gotK), len(wantK))
				}
				for i := range wantK {
					if gotK[i] != wantK[i] {
						t.Fatalf("trial %d k=%d rank %d: cascade %+v, plain %+v",
							trial, k, i, gotK[i], wantK[i])
					}
				}
			}
		})
	}
}

// Per-shard query totals must balance: summed over shards they equal the
// merged per-query statistics, and within each shard the tier prune counts
// plus actual DP invocations account for every candidate.
func TestShardedQueryTotals(t *testing.T) {
	data := randomWalks(307, 120, 10, 30)
	sharded, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if _, err := sharded.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var wantCand, wantDTW, wantPruned int64
	const queries = 8
	for i := 0; i < queries; i++ {
		res, err := sharded.Search(data[rng.Intn(len(data))], 0.3)
		if err != nil {
			t.Fatal(err)
		}
		wantCand += int64(res.Stats.Candidates)
		wantDTW += int64(res.Stats.DTWCalls)
		wantPruned += int64(res.Stats.LBKimPruned + res.Stats.LBPAAPruned +
			res.Stats.LBKeoghPruned + res.Stats.LBYiPruned +
			res.Stats.LBImprovedPruned + res.Stats.CorridorPruned)
	}
	var got twsim.QueryTotals
	for _, st := range sharded.ShardStats() {
		qt := st.Queries
		if qt.Searches != queries {
			t.Errorf("shard %d saw %d searches, want %d", st.ID, qt.Searches, queries)
		}
		perShardPruned := qt.LBKimPruned + qt.LBPAAPruned + qt.LBKeoghPruned +
			qt.LBYiPruned + qt.LBImprovedPruned + qt.CorridorPruned
		if perShardPruned+qt.DTWCalls != qt.Candidates {
			t.Errorf("shard %d: prunes %d + dtw %d != candidates %d",
				st.ID, perShardPruned, qt.DTWCalls, qt.Candidates)
		}
		got.Candidates += qt.Candidates
		got.DTWCalls += qt.DTWCalls
		got.LBKimPruned += qt.LBKimPruned
		got.LBPAAPruned += qt.LBPAAPruned
		got.LBKeoghPruned += qt.LBKeoghPruned
		got.LBYiPruned += qt.LBYiPruned
		got.LBImprovedPruned += qt.LBImprovedPruned
		got.CorridorPruned += qt.CorridorPruned
	}
	gotPruned := got.LBKimPruned + got.LBPAAPruned + got.LBKeoghPruned +
		got.LBYiPruned + got.LBImprovedPruned + got.CorridorPruned
	if got.Candidates != wantCand || got.DTWCalls != wantDTW || gotPruned != wantPruned {
		t.Errorf("shard totals (cand %d, dtw %d, pruned %d) != merged stats (cand %d, dtw %d, pruned %d)",
			got.Candidates, got.DTWCalls, gotPruned, wantCand, wantDTW, wantPruned)
	}
}

// Concurrent k-NN fan-outs share pooled cascade state (refiners, DP rows)
// and the cross-shard bound; under the race detector this exercises that
// the pools and atomic counters are data-race free, and every concurrent
// caller still gets the exact sequential answer.
func TestShardedConcurrentNearestKCascade(t *testing.T) {
	data := randomWalks(401, 150, 10, 30)
	sharded, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if _, err := sharded.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	const workers, k = 8, 5
	queries := make([][]float64, workers)
	want := make([][]twsim.Match, workers)
	for i := range queries {
		queries[i] = data[(i*37)%len(data)]
		if want[i], err = sharded.NearestK(queries[i], k); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got, err := sharded.NearestK(queries[w], k)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want[w]) {
					errs <- fmt.Errorf("worker %d: %d matches, want %d", w, len(got), len(want[w]))
					return
				}
				for i := range got {
					if got[i] != want[w][i] {
						errs <- fmt.Errorf("worker %d rank %d: %+v, want %+v", w, i, got[i], want[w][i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
