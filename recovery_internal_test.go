package twsim

// Internal (same-package) fault-injection tests for the crash-consistent
// write path: Add/AddAll must be atomic under injected index storage
// faults, and Open must reconcile a database whose previous writer was
// interrupted between the heap append and the index insert.

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pagefile"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// faultPageSize keeps index nodes small (capacity 7 at dim 4) so inserts
// split — and therefore hit the backend — often enough for injected faults
// to fire. With the default 1 KB pages and a pool-resident tree, an insert
// without a split performs no backend I/O at all.
const faultPageSize = 512

// newFaultIndexDB builds an in-memory database whose feature index sits on
// a fault-injectable backend (the heap stays healthy, mirroring the
// "index page write fails" scenario the write path must survive).
func newFaultIndexDB(t *testing.T) (*DB, *pagefile.FaultBackend) {
	t.Helper()
	store, err := seqdb.NewMem(seqdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fb *pagefile.FaultBackend
	index, err := core.NewFeatureIndex(core.IndexOptions{
		PageSize: faultPageSize,
		WrapBackend: func(b pagefile.Backend) pagefile.Backend {
			fb = pagefile.NewFaultBackend(b, -1)
			return fb
		},
	})
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	db := &DB{store: store, index: index, opts: Options{PageSize: faultPageSize}}
	t.Cleanup(func() { db.Close() })
	return db, fb
}

func randSeq(rng *rand.Rand) []float64 {
	s := make([]float64, 4+rng.Intn(12))
	for i := range s {
		s[i] = float64(rng.Intn(50))
	}
	return s
}

// assertOracleEqual checks that the indexed search returns exactly what a
// full sequential scan returns (the no-false-dismissal acceptance check).
func assertOracleEqual(t *testing.T, db *DB, query []float64, epsilon float64) {
	t.Helper()
	res, err := db.Search(query, epsilon)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	oracle := &core.NaiveScan{DB: db.store, Base: db.base}
	truth, err := oracle.Search(seq.Sequence(query), epsilon)
	if err != nil {
		t.Fatalf("NaiveScan: %v", err)
	}
	if len(res.Matches) != len(truth.Matches) {
		t.Fatalf("Search returned %d matches, oracle %d (eps=%g)",
			len(res.Matches), len(truth.Matches), epsilon)
	}
	for i := range res.Matches {
		if res.Matches[i].ID != truth.Matches[i].ID ||
			math.Abs(res.Matches[i].Dist-truth.Matches[i].Dist) > 1e-9 {
			t.Fatalf("match %d: got %+v, oracle %+v", i, res.Matches[i], truth.Matches[i])
		}
	}
}

// Add must either fully succeed or leave store and index in agreement, at
// every injection point. lead = number of backend operations an insert is
// allowed before the fault fires (lead > 0 exercises mid-split and
// root-grow failure windows).
func TestAddAtomicUnderIndexFaults(t *testing.T) {
	for _, lead := range []int{0, 1, 2} {
		rng := rand.New(rand.NewSource(int64(100 + lead)))
		db, fb := newFaultIndexDB(t)
		for i := 0; i < 30; i++ {
			if _, err := db.Add(randSeq(rng)); err != nil {
				t.Fatal(err)
			}
		}
		failures := 0
		for i := 0; i < 60; i++ {
			fb.Arm(lead)
			_, err := db.Add(randSeq(rng))
			fb.Disarm()
			if err != nil {
				failures++
			}
			if s, n := db.store.Len(), db.index.Len(); s != n {
				t.Fatalf("lead %d, insert %d: store holds %d, index holds %d", lead, i, s, n)
			}
		}
		if failures == 0 {
			if lead == 0 {
				t.Fatalf("lead 0: no injected fault fired across 60 inserts")
			}
			continue // deeper failure windows need not occur on this layout
		}
		t.Logf("lead %d: %d of 60 inserts failed and rolled back", lead, failures)
		// A partially applied insert may have damaged the index structure;
		// Repair must restore exact search behavior.
		if _, err := db.Repair(); err != nil {
			t.Fatalf("lead %d: Repair: %v", lead, err)
		}
		if err := db.Verify(); err != nil {
			t.Fatalf("lead %d: Verify after repair: %v", lead, err)
		}
		q := randSeq(rng)
		assertOracleEqual(t, db, q, 3)
		assertOracleEqual(t, db, q, 10)
	}
}

// AddAll on a non-empty database (incremental path) must be all-or-nothing.
func TestAddAllAllOrNothingIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	failures := 0
	for n := 0; n < 25; n++ {
		db, fb := newFaultIndexDB(t)
		if _, err := db.Add([]float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		batch := make([][]float64, 20)
		for i := range batch {
			batch[i] = randSeq(rng)
		}
		fb.Arm(n)
		_, err := db.AddAll(batch)
		fb.Disarm()
		wantLen := 21
		if err != nil {
			failures++
			wantLen = 1 // the whole batch must have been rolled back
		}
		if got := db.store.Len(); got != wantLen {
			t.Fatalf("injection %d: store holds %d sequences, want %d (err=%v)", n, got, wantLen, err)
		}
		if s, i := db.store.Len(), db.index.Len(); s != i {
			t.Fatalf("injection %d: store holds %d, index holds %d", n, s, i)
		}
		// The database must remain usable: a clean retry must succeed.
		if err != nil {
			if _, err := db.AddAll(batch); err != nil {
				t.Fatalf("injection %d: retry after rollback: %v", n, err)
			}
			if _, err := db.Repair(); err != nil {
				t.Fatalf("injection %d: repair: %v", n, err)
			}
			if err := db.Verify(); err != nil {
				t.Fatalf("injection %d: Verify: %v", n, err)
			}
			assertOracleEqual(t, db, batch[3], 2)
		}
	}
	if failures == 0 {
		t.Fatal("no injected fault fired; widen the injection schedule")
	}
}

// AddAll on an empty database (STR bulk-load path) must leave the database
// empty on failure, and a clean retry must succeed.
func TestAddAllAllOrNothingBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	failures := 0
	for n := 0; n < 25; n++ {
		db, fb := newFaultIndexDB(t)
		batch := make([][]float64, 60)
		for i := range batch {
			batch[i] = randSeq(rng)
		}
		fb.Arm(n)
		_, err := db.AddAll(batch)
		fb.Disarm()
		if err != nil {
			failures++
			if s, i := db.store.Len(), db.index.Len(); s != 0 || i != 0 {
				t.Fatalf("injection %d: after failed bulk AddAll store=%d index=%d, want 0/0", n, s, i)
			}
			if _, err := db.AddAll(batch); err != nil {
				t.Fatalf("injection %d: retry after abort: %v", n, err)
			}
		}
		if s, i := db.store.Len(), db.index.Len(); s != len(batch) || i != len(batch) {
			t.Fatalf("injection %d: store=%d index=%d, want %d", n, s, i, len(batch))
		}
		if err := db.Verify(); err != nil {
			t.Fatalf("injection %d: Verify: %v", n, err)
		}
		assertOracleEqual(t, db, batch[0], 4)
	}
	if failures == 0 {
		t.Fatal("no injected fault fired; widen the injection schedule")
	}
}

// mustCreatePopulated creates an on-disk database with count sequences.
func mustCreatePopulated(t *testing.T, dir string, count int) (*DB, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	db, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]float64, count)
	for i := range data {
		data[i] = randSeq(rng)
	}
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	return db, data
}

// A crash between the heap append and the index insert leaves an orphaned
// heap record; Open must re-index it.
func TestOpenReindexesOrphanedHeapRecord(t *testing.T) {
	dir := t.TempDir()
	db, data := mustCreatePopulated(t, dir, 20)
	// Simulate the crash: append to the heap, never insert into the index,
	// then shut down (the heap directory is persisted on Close).
	orphan := []float64{40, 41, 39, 42, 38}
	if _, err := db.store.Append(seq.Sequence(orphan)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after simulated crash: %v", err)
	}
	defer db2.Close()
	rs := db2.LastRepair()
	if rs.Orphans != 1 || !rs.Repaired() {
		t.Fatalf("LastRepair = %+v, want 1 orphan re-indexed", rs)
	}
	if err := db2.Verify(); err != nil {
		t.Fatalf("Verify after reconciliation: %v", err)
	}
	if err := db2.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after reconciliation: %v", err)
	}
	// The orphan must now be findable — no false dismissal after repair.
	res, err := db2.Search(orphan, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("re-indexed orphan not found by Search")
	}
	assertOracleEqual(t, db2, orphan, 0.5)
	assertOracleEqual(t, db2, data[5], 3)

	// A clean reopen must report nothing to repair.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if rs := db3.LastRepair(); rs.Repaired() {
		t.Fatalf("second open repaired again: %+v", rs)
	}
}

// A dangling index entry (insert survived, heap record did not) must be
// deleted by the Open-time reconciliation.
func TestOpenRemovesDanglingIndexEntry(t *testing.T) {
	dir := t.TempDir()
	db, data := mustCreatePopulated(t, dir, 12)
	// Simulate the inverse crash: an index entry pointing at a record the
	// heap never durably wrote.
	if err := db.index.Insert(seq.ID(500), seq.Sequence{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with dangling entry: %v", err)
	}
	defer db2.Close()
	rs := db2.LastRepair()
	if rs.Dangling != 1 {
		t.Fatalf("LastRepair = %+v, want 1 dangling entry removed", rs)
	}
	if err := db2.Verify(); err != nil {
		t.Fatalf("Verify after reconciliation: %v", err)
	}
	assertOracleEqual(t, db2, data[0], 2)
}

// Balanced divergence (one orphan plus one dangling entry) keeps the entry
// counts equal, so Open cannot detect it cheaply — the explicit Repair
// must fix it.
func TestRepairFixesBalancedDivergence(t *testing.T) {
	db, err := OpenMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ids := make([]ID, 0, 10)
	rng := rand.New(rand.NewSource(3))
	var stored [][]float64
	for i := 0; i < 10; i++ {
		v := randSeq(rng)
		id, err := db.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		stored = append(stored, v)
	}
	// Orphan: drop a live record's index entry. Dangling: add a phantom.
	if _, err := db.index.Delete(ids[4], seq.Sequence(stored[4])); err != nil {
		t.Fatal(err)
	}
	if err := db.index.Insert(seq.ID(700), seq.Sequence{1, 2}); err != nil {
		t.Fatal(err)
	}
	if db.store.Len() != db.index.Len() {
		t.Fatal("test setup: counts should balance")
	}
	if err := db.Verify(); err == nil {
		t.Fatal("Verify passed on diverged database")
	}
	rs, err := db.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rs.Orphans != 1 || rs.Dangling != 1 {
		t.Fatalf("Repair = %+v, want 1 orphan + 1 dangling", rs)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("Verify after Repair: %v", err)
	}
	assertOracleEqual(t, db, stored[4], 1)
}

// An index file that cannot be opened at all (corrupt or missing) must be
// rebuilt from the heap, which is the source of truth.
func TestOpenRebuildsUnopenableIndex(t *testing.T) {
	for name, corrupt := range map[string]func(t *testing.T, path string){
		"corrupt": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a page file at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"missing": func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			db, data := mustCreatePopulated(t, dir, 15)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			corrupt(t, filepath.Join(dir, indexFileName))

			db2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open with %s index: %v", name, err)
			}
			defer db2.Close()
			rs := db2.LastRepair()
			if !rs.Rebuilt {
				t.Fatalf("LastRepair = %+v, want Rebuilt", rs)
			}
			if rs.LiveSequences != 15 {
				t.Fatalf("rebuilt from %d sequences, want 15", rs.LiveSequences)
			}
			if err := db2.Verify(); err != nil {
				t.Fatalf("Verify after rebuild: %v", err)
			}
			assertOracleEqual(t, db2, data[7], 3)
		})
	}
}

// Searches must skip dangling index entries instead of failing: dropping a
// candidate with no heap record cannot cause a false dismissal, and it
// keeps reads available until the next repair.
func TestSearchSkipsDanglingEntries(t *testing.T) {
	db, err := OpenMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Add([]float64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	// Phantom entry whose feature sits right where the query will look.
	if err := db.index.Insert(seq.ID(900), seq.Sequence{5, 7, 6}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Search([]float64{5, 6, 7}, 1)
	if err != nil {
		t.Fatalf("Search with dangling candidate: %v", err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ID != 0 {
		t.Fatalf("matches = %+v, want exactly sequence 0", res.Matches)
	}
	matches, err := db.NearestK([]float64{5, 6, 7}, 3)
	if err != nil {
		t.Fatalf("NearestK with dangling candidate: %v", err)
	}
	if len(matches) != 1 || matches[0].ID != 0 {
		t.Fatalf("NearestK = %+v, want exactly sequence 0", matches)
	}
}

// After a rollback the freed ID and heap space must be reused by the next
// append, so a transient fault costs nothing permanently.
func TestAddRollbackReusesIDAndSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, fb := newFaultIndexDB(t)
	fb.Arm(0) // the next insert that touches the backend fails
	failedAt := -1
	var failedSeq []float64
	for i := 0; i < 100; i++ {
		v := randSeq(rng)
		bytesBefore := db.DataBytes()
		lenBefore := db.Len()
		if _, err := db.Add(v); err != nil {
			failedAt = lenBefore
			failedSeq = v
			if db.DataBytes() != bytesBefore {
				t.Fatalf("heap grew from %d to %d across a rolled-back Add", bytesBefore, db.DataBytes())
			}
			if db.Len() != lenBefore {
				t.Fatalf("Len changed from %d to %d across a rolled-back Add", lenBefore, db.Len())
			}
			break
		}
	}
	fb.Disarm()
	if failedAt < 0 {
		t.Fatal("no Add touched the index backend within 100 inserts")
	}
	id, err := db.Add(failedSeq)
	if err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if int(id) != failedAt {
		t.Fatalf("retry got id %d, want rolled-back id %d reused", id, failedAt)
	}
	if _, err := db.Repair(); err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
}
