// Quickstart: store a handful of sequences of different lengths and run a
// time-warping similarity search — the paper's §1 example pair included.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	twsim "repro"
)

func main() {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Sequences of different lengths — the situation the Euclidean
	// distance cannot handle at all.
	sequences := [][]float64{
		{20, 21, 21, 20, 20, 23, 23, 23}, // paper §1: warps exactly onto the query
		{20, 20, 21, 22, 23},
		{30, 31, 32, 30},
		{20, 19, 18, 17, 16, 15},
		{20.5, 21.2, 20.1, 23.4},
	}
	if _, err := db.AddAll(sequences); err != nil {
		log.Fatal(err)
	}

	query := []float64{20, 20, 21, 20, 23}
	fmt.Printf("query: %v\n\n", query)

	for _, eps := range []float64{0.0, 0.5, 1.0} {
		res, err := db.Search(query, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tolerance %.1f -> %d matches (%d candidates from the index)\n",
			eps, len(res.Matches), res.Stats.Candidates)
		for _, m := range res.Matches {
			s, _ := db.Get(m.ID)
			fmt.Printf("   id %d  dist %.3f  %v\n", m.ID, m.Dist, s)
		}
	}

	// The distance function is available directly, along with the optimal
	// warping path (which element mapped to which).
	d, path := twsim.WarpingPath(sequences[0], query, twsim.BaseLInf)
	fmt.Printf("\nDtw(seq0, query) = %g via %d element mappings\n", d, len(path))

	// And the lower bound the index filters with (paper's Definition 3).
	fmt.Printf("Dtw-lb(seq0, query) = %g (never exceeds the true distance)\n",
		twsim.LowerBound(sequences[0], query))

	// Exact k-nearest neighbors under time warping.
	nn, err := db.NearestK(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n3 nearest sequences under time warping:")
	for i, m := range nn {
		fmt.Printf("  %d. id %d  dist %.3f\n", i+1, m.ID, m.Dist)
	}
}
