// Sensors: sequences with different sampling rates — the paper's footnote 1
// motivation for time warping. One logger samples a signal every second,
// another every two seconds; their records have different lengths, so the
// Euclidean distance is simply undefined, yet the time warping distance
// recognizes them as the same signal and the index retrieves the match.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	twsim "repro"
)

// signal is the ground-truth physical process both sensors observe.
func signal(t float64) float64 {
	return 10 + 3*math.Sin(t/5) + math.Sin(t/1.7)
}

// sample records the signal every rate seconds for n readings, with a
// little measurement noise.
func sample(rng *rand.Rand, rate float64, n int, noise float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = signal(float64(i)*rate) + (rng.Float64()*2-1)*noise
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(3))

	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A fleet of sensors, each watching a *different* process (phase
	// shifted / scaled), all sampled at 2 Hz for a minute (120 readings).
	var ids []twsim.ID
	for i := 0; i < 50; i++ {
		phase := float64(i) * 2.3
		scale := 0.5 + rng.Float64()*2
		s := make([]float64, 120)
		for t := range s {
			at := float64(t)*0.5 + phase
			s[t] = 10 + scale*3*math.Sin(at/5) + math.Sin(at/1.7)
		}
		id, err := db.Add(s)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Sensor 50 watches the reference process, also at 2 Hz.
	refID, err := db.Add(sample(rng, 0.5, 120, 0.05))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d sensor records of length 120 (2 Hz)\n", db.Len())

	// The query comes from a cheaper logger: the same reference process
	// sampled at 1 Hz — only 60 readings over the same minute.
	query := sample(rng, 1, 60, 0.05)
	fmt.Printf("query: %d readings at 1 Hz — different length, Euclidean undefined\n\n", len(query))

	res, err := db.Search(query, 0.75)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-warping search (eps 0.75): %d matches from %d candidates\n",
		len(res.Matches), res.Stats.Candidates)
	for _, m := range res.Matches {
		marker := ""
		if m.ID == refID {
			marker = "  <- the same physical process, sampled at twice the interval"
		}
		fmt.Printf("  sensor %-3d dist %.3f%s\n", m.ID, m.Dist, marker)
	}
	if len(res.Matches) == 0 || res.Matches[0].ID != refID {
		log.Fatal("expected the reference sensor as the best match")
	}

	// For contrast: the closest 1 Hz record by warping distance among the
	// unrelated ones is far away.
	best := math.Inf(1)
	for _, id := range ids {
		s, _ := db.Get(id)
		if d := twsim.Distance(s, query, twsim.BaseLInf); d < best {
			best = d
		}
	}
	fmt.Printf("\nnearest *unrelated* sensor is at warping distance %.3f — "+
		"well outside the tolerance\n", best)
}
