// Stocks: whole-matching search over an S&P-500-style collection — the
// paper's motivating application. Builds the 545-sequence simulated stock
// set, picks a stock, perturbs it the way the paper's query generator does,
// and compares TW-Sim-Search against every baseline on the same query.
//
// Run with: go run ./examples/stocks
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	twsim "repro"
	"repro/internal/synth"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	stocks := synth.StockSet(rng, synth.DefaultStockOptions)

	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	raw := make([][]float64, len(stocks))
	for i, s := range stocks {
		raw[i] = s
	}
	start := time.Now()
	if _, err := db.AddAll(raw); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d stock histories (avg length ~231) in %v\n",
		db.Len(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("index: %d pages (~%.1f%% of the %d-byte database)\n\n",
		db.IndexPages(), 100*float64(db.IndexPages()*1024)/float64(db.DataBytes()),
		db.DataBytes())

	// Paper-style query: perturb a random stock element-wise by ±std/2.
	query := synth.Query(rng, stocks)
	const eps = 2.0 // dollars of per-day deviation allowed after warping

	fmt.Printf("searching for stocks within $%.2f of the query pattern under time warping\n\n", eps)

	stf, err := db.BaselineSTFilter(100)
	if err != nil {
		log.Fatal(err)
	}
	methods := []twsim.Searcher{
		db.BaselineNaiveScan(),
		db.BaselineLBScan(),
		stf,
		db.TWSimSearcher(),
	}
	fmt.Printf("%-14s %8s %11s %12s %10s\n", "method", "matches", "candidates", "wall", "dtw-calls")
	var naiveWall, twWall time.Duration
	for _, m := range methods {
		res, err := m.Search(query, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8d %11d %12v %10d\n",
			m.Name(), len(res.Matches), res.Stats.Candidates,
			res.Stats.Wall.Round(time.Microsecond), res.Stats.DTWCalls)
		switch m.Name() {
		case "Naive-Scan":
			naiveWall = res.Stats.Wall
		case "TW-Sim-Search":
			twWall = res.Stats.Wall
		}
	}
	if twWall > 0 {
		fmt.Printf("\nTW-Sim-Search CPU speedup over Naive-Scan on this query: %.1fx\n",
			float64(naiveWall)/float64(twWall))
		fmt.Println("(the paper's elapsed-time gap is larger still: scans also pay full disk I/O)")
	}
}
