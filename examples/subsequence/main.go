// Subsequence: the paper's §6 extension — index the feature vectors of
// sliding windows instead of whole sequences and run the same algorithm to
// find *where inside* long recordings a short pattern occurs under time
// warping.
//
// Run with: go run ./examples/subsequence
package main

import (
	"fmt"
	"log"
	"math/rand"

	twsim "repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A known pattern: a sharp double peak.
	pattern := []float64{5, 5.2, 7.5, 6.0, 7.6, 5.3, 5.1}

	// Long recordings of drifting noise; plant the pattern (time-warped by
	// replicating elements!) into a few of them at known offsets.
	type plant struct {
		id     twsim.ID
		offset int
	}
	var plants []plant
	for i := 0; i < 30; i++ {
		n := 200
		s := make([]float64, 0, n+10)
		v := 5 + rng.Float64()
		for len(s) < n {
			v += (rng.Float64() - 0.5) * 0.2
			s = append(s, v)
		}
		if i%7 == 0 {
			// Warp the pattern: randomly replicate elements, then overwrite
			// a stretch of the recording with it.
			warped := make([]float64, 0, 2*len(pattern))
			for _, pv := range pattern {
				for k := 0; k <= rng.Intn(2); k++ {
					warped = append(warped, pv)
				}
			}
			off := 20 + rng.Intn(150-len(warped))
			copy(s[off:], warped)
			id := twsim.ID(i)
			plants = append(plants, plant{id: id, offset: off})
		}
		if _, err := db.Add(s); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d recordings of length 200; pattern planted in %d of them\n",
		db.Len(), len(plants))

	// Index windows of the plausible warped-pattern lengths.
	idx, err := db.BuildSubseqIndex([]int{7, 9, 11, 13}, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("indexed %d sliding windows\n\n", idx.NumWindows())

	res, err := idx.Search(pattern, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subsequence search (eps 0.25): %d windows matched from %d candidates\n",
		len(res.Matches), res.Stats.Candidates)

	// Report the best window per recording.
	bestPer := map[twsim.ID]twsim.SubMatch{}
	for _, m := range res.Matches {
		if cur, ok := bestPer[m.ID]; !ok || m.Dist < cur.Dist {
			bestPer[m.ID] = m
		}
	}
	for _, p := range plants {
		m, ok := bestPer[p.id]
		if !ok {
			log.Fatalf("planted pattern in recording %d not found", p.id)
		}
		fmt.Printf("  recording %-3d best window at offset %-3d (len %d, dist %.3f) — planted at %d\n",
			m.ID, m.Offset, m.Len, m.Dist, p.offset)
	}
	fmt.Println("\nall planted occurrences located without false dismissal")
}
