// Service: run the sequence database as an HTTP service in-process and use
// the Go client against it — the deployment shape of cmd/twsimd, condensed
// into one runnable example.
//
// Run with: go run ./examples/service
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"

	twsim "repro"
	"repro/internal/server"
	"repro/internal/synth"
)

func main() {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	srv := server.New(db)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("twsim service listening at %s\n", ts.URL)

	client := server.NewClient(ts.URL, ts.Client())
	if err := client.Health(); err != nil {
		log.Fatal(err)
	}

	// Load a workload through the API.
	rng := rand.New(rand.NewSource(5))
	walks := synth.RandomWalkSetVaryLen(rng, 200, 30, 80)
	batch := make([][]float64, len(walks))
	for i, s := range walks {
		batch[i] = s
	}
	if _, err := client.AddBatch(batch); err != nil {
		log.Fatal(err)
	}
	n, bytes, pages, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d sequences (%d bytes of data, %d index pages)\n", n, bytes, pages)

	// Query: a perturbed copy of a stored sequence.
	query := synth.Query(rng, walks)
	res, err := client.Search(query, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search eps=0.2: %d matches from %d candidates (%d µs server-side)\n",
		len(res.Matches), res.Stats.Candidates, res.Stats.WallMicros)
	for i, m := range res.Matches {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(res.Matches)-5)
			break
		}
		fmt.Printf("  id %-5d dist %.4f\n", m.ID, m.Dist)
	}

	// k-NN over HTTP.
	nn, err := client.NearestK(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3 nearest under time warping:")
	for _, m := range nn {
		fmt.Printf("  id %-5d dist %.4f\n", m.ID, m.Dist)
	}

	// Subsequence matching through the service.
	if _, err := client.BuildSubseqIndex([]int{12}, 2); err != nil {
		log.Fatal(err)
	}
	sub, err := client.SearchSubsequences(walks[0][10:22], 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subsequence search: %d windows matched; best at id %d offset %d\n",
		len(sub), sub[0].ID, sub[0].Offset)

	// Delete a sequence and confirm it disappears from results.
	if _, err := client.Remove(uint32(res.Matches[0].ID)); err != nil {
		log.Fatal(err)
	}
	res2, err := client.Search(query, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting the best match: %d matches remain\n", len(res2.Matches))
}
