package twsim_test

import (
	"fmt"
	"math/rand"
	"testing"

	twsim "repro"
)

// knnCorpus builds a deterministic random-walk corpus plus near-miss
// queries shared by the ordering-oracle tests.
func knnCorpus(rng *rand.Rand, n, length, queries int) (data, qs [][]float64) {
	data = make([][]float64, n)
	for i := range data {
		s := make([]float64, length)
		v := rng.NormFloat64()
		for j := range s {
			v += rng.NormFloat64() * 0.1
			s[j] = v
		}
		data[i] = s
	}
	qs = make([][]float64, queries)
	for i := range qs {
		q := append([]float64(nil), data[rng.Intn(n)]...)
		for j := range q {
			q[j] += (rng.Float64() - 0.5) * 0.1
		}
		qs[i] = q
	}
	return data, qs
}

// TestNearestKOrderingOracle is the envelope-ordering bit-identity matrix:
// for every base × backend shape × engine × band × worker budget, a
// database with envelope-sharpened k-NN ordering (the default) and one
// with it disabled must return identical matches — same IDs, same float64
// distances, same order — for every query and k. The ordering tier re-keys
// candidates by sound lower bounds and defers exact DP work; it may only
// reorder and skip work, never change an answer (DESIGN.md §12).
func TestNearestKOrderingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	data, qs := knnCorpus(rng, 120, 64, 4)

	for _, base := range []twsim.Base{twsim.BaseLInf, twsim.BaseL1, twsim.BaseL2Sq} {
		for _, sharded := range []bool{false, true} {
			for _, engine := range []string{twsim.EngineGuttman, twsim.EngineFlat} {
				for _, band := range []int{0, 8} {
					for _, workers := range []int{1, 4} {
						name := fmt.Sprintf("base=%v/sharded=%v/engine=%s/band=%d/workers=%d",
							base, sharded, engine, band, workers)
						t.Run(name, func(t *testing.T) {
							open := func(disable bool) twsim.Backend {
								opts := twsim.Options{
									Base:               base,
									Band:               band,
									RefineWorkers:      workers,
									IndexEngine:        engine,
									FlatMergeThreshold: 32,
									DisableEnvOrdering: disable,
								}
								var b twsim.Backend
								var err error
								if sharded {
									b, err = twsim.OpenMemSharded(twsim.ShardedOptions{Options: opts, Shards: 3})
								} else {
									b, err = twsim.OpenMem(opts)
								}
								if err != nil {
									t.Fatalf("open (disable=%v): %v", disable, err)
								}
								if _, err := b.AddBatch(data); err != nil {
									t.Fatalf("load (disable=%v): %v", disable, err)
								}
								return b
							}
							on := open(false)
							defer on.Close()
							off := open(true)
							defer off.Close()
							for qi, q := range qs {
								for _, k := range []int{1, 7} {
									mOn, err := on.NearestKBand(q, k, band)
									if err != nil {
										t.Fatal(err)
									}
									mOff, err := off.NearestKBand(q, k, band)
									if err != nil {
										t.Fatal(err)
									}
									if !matchesEqual(mOn, mOff) {
										t.Fatalf("query %d k=%d: ordering on/off diverged: on=%v off=%v",
											qi, k, mOn, mOff)
									}
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestNearestKMmapOracle: a flat-engine database answers k-NN and range
// queries bit-identically whether its snapshot slab is mmap'd or read
// eagerly through the TWSIM_NO_MMAP fallback.
func TestNearestKMmapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	data, qs := knnCorpus(rng, 150, 64, 4)
	dir := t.TempDir()

	opts := twsim.Options{Band: 8, IndexEngine: twsim.EngineFlat}
	db, err := twsim.Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	type answers struct {
		knn     [][]twsim.Match
		matches [][]twsim.Match
	}
	collect := func() answers {
		db, err := twsim.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		var a answers
		for _, q := range qs {
			ms, err := db.NearestKBand(q, 5, 8)
			if err != nil {
				t.Fatal(err)
			}
			a.knn = append(a.knn, ms)
			r, err := db.Search(q, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			a.matches = append(a.matches, r.Matches)
		}
		return a
	}

	mapped := collect()
	t.Setenv("TWSIM_NO_MMAP", "1")
	fallback := collect()

	for qi := range qs {
		if !matchesEqual(mapped.knn[qi], fallback.knn[qi]) {
			t.Fatalf("query %d: k-NN diverged between mmap and fallback opens", qi)
		}
		if !matchesEqual(mapped.matches[qi], fallback.matches[qi]) {
			t.Fatalf("query %d: Search diverged between mmap and fallback opens", qi)
		}
	}
}
