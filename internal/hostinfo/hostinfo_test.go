package hostinfo

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNumCPU(t *testing.T) {
	if NumCPU() < 1 {
		t.Fatalf("NumCPU() = %d", NumCPU())
	}
}

func TestCPUModelNonEmpty(t *testing.T) {
	if CPUModel() == "" {
		t.Fatal("CPUModel() returned empty string; want a model or \"unknown\"")
	}
}

func TestReadCPUModel(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		content string
		want    string
	}{
		{"processor\t: 0\nmodel name\t: Intel(R) Xeon(R) CPU @ 2.10GHz\nflags\t: fpu\n", "Intel(R) Xeon(R) CPU @ 2.10GHz"},
		{"Processor\t: ARMv8 Processor rev 1\n", "ARMv8 Processor rev 1"},
		{"processor: 0\nflags: fpu\n", "unknown"},
		{"", "unknown"},
	}
	for i, c := range cases {
		if got := readCPUModel(write("cpuinfo", c.content)); got != c.want {
			t.Errorf("case %d: got %q, want %q", i, got, c.want)
		}
	}
	if got := readCPUModel(filepath.Join(dir, "missing")); got != "unknown" {
		t.Errorf("missing file: got %q", got)
	}
}
