// Package hostinfo reports coarse host facts the benchmark harnesses stamp
// into their result rows, so a BENCH_*.json row is interpretable on its own
// — a "speedup" only means something next to the core count and CPU model
// it was measured on.
package hostinfo

import (
	"bufio"
	"os"
	"runtime"
	"strings"
	"sync"
)

// NumCPU returns the logical CPU count of the host.
func NumCPU() int { return runtime.NumCPU() }

var (
	modelOnce sync.Once
	model     string
)

// CPUModel returns the host CPU model string ("model name" from
// /proc/cpuinfo on Linux), or "unknown" when it cannot be determined. The
// file is read once and cached.
func CPUModel() string {
	modelOnce.Do(func() { model = readCPUModel("/proc/cpuinfo") })
	return model
}

func readCPUModel(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		// x86 exposes "model name"; some arm kernels use "Processor".
		for _, key := range []string{"model name", "Processor"} {
			if strings.HasPrefix(line, key) {
				if i := strings.IndexByte(line, ':'); i >= 0 {
					if v := strings.TrimSpace(line[i+1:]); v != "" {
						return v
					}
				}
			}
		}
	}
	return "unknown"
}
