package rtree

import (
	"math/rand"
	"testing"
)

func TestRStarSplitPreservesEntries(t *testing.T) {
	tree := newTree(t, 2, Options{Split: RStarSplit})
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 500; i++ {
		if err := tree.Insert(NewPoint(randPoint(rng, 2)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRStarSplitDegenerateIdentical(t *testing.T) {
	tree := newTree(t, 2, Options{Split: RStarSplit})
	p := NewPoint([]float64{3, 3})
	for i := 0; i < 80; i++ {
		if err := tree.Insert(p, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRStarSplitDeleteMix(t *testing.T) {
	tree := newTree(t, 4, Options{Split: RStarSplit})
	rng := rand.New(rand.NewSource(73))
	var points [][]float64
	for i := 0; i < 300; i++ {
		p := randPoint(rng, 4)
		points = append(points, p)
		if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		found, err := tree.Delete(NewPoint(points[i]), uint32(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

// On clustered data the R* split should produce node rectangles that
// overlap no more (in aggregate) than the quadratic split — the property
// the heuristic optimizes. We assert a weak version: total leaf-MBR area
// is not dramatically worse.
func TestRStarAreaNotWorseThanQuadratic(t *testing.T) {
	build := func(split SplitStrategy) float64 {
		tree := newTree(t, 2, Options{Split: split})
		rng := rand.New(rand.NewSource(75))
		// Clustered points: 10 gaussian-ish blobs.
		for i := 0; i < 600; i++ {
			cx := float64(i%10) * 50
			cy := float64((i/10)%10) * 50
			p := []float64{cx + rng.Float64()*5, cy + rng.Float64()*5}
			if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
				t.Fatal(err)
			}
		}
		area := 0.0
		if err := tree.Walk(func(_ int, leaf bool, mbr Rect, entries []Entry) error {
			if leaf && len(entries) > 0 {
				area += mbr.Area()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return area
	}
	quad := build(QuadraticSplit)
	rstar := build(RStarSplit)
	if rstar > quad*2 {
		t.Errorf("R* leaf area %.1f more than 2x quadratic %.1f", rstar, quad)
	}
}

func TestIntersectionArea(t *testing.T) {
	a, _ := NewRect([]float64{0, 0}, []float64{4, 4})
	b, _ := NewRect([]float64{2, 2}, []float64{6, 6})
	if got := intersectionArea(a, b); got != 4 {
		t.Errorf("intersectionArea = %g, want 4", got)
	}
	c, _ := NewRect([]float64{10, 10}, []float64{11, 11})
	if got := intersectionArea(a, c); got != 0 {
		t.Errorf("disjoint intersectionArea = %g", got)
	}
	// Touching edges have zero volume.
	d, _ := NewRect([]float64{4, 0}, []float64{8, 4})
	if got := intersectionArea(a, d); got != 0 {
		t.Errorf("touching intersectionArea = %g", got)
	}
}
