package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/pagefile"
)

// Entry is one slot of a node: a bounding rectangle plus either a child
// page (internal nodes) or an opaque data identifier (leaves).
type Entry struct {
	Rect  Rect
	Child uint32 // child PageID for internal nodes, data ID for leaves
}

// node is the in-memory image of one R-tree page.
//
// On-page layout (within the pagefile payload):
//
//	byte    0     kind: 0 = leaf, 1 = internal
//	byte    1..2  entry count, little-endian uint16
//	byte    3..7  reserved
//	entries ...   per entry: dim×float64 lo, dim×float64 hi, uint32 child
type node struct {
	pid     pagefile.PageID
	leaf    bool
	entries []Entry
}

const nodeHeaderLen = 8

// entrySize returns the on-page bytes per entry for dimensionality dim.
func entrySize(dim int) int { return 16*dim + 4 }

// nodeCapacity returns the maximum entry count M for a page payload of the
// given size and dimensionality.
func nodeCapacity(payload, dim int) int {
	return (payload - nodeHeaderLen) / entrySize(dim)
}

// mbr returns the minimal rectangle covering all entries. The node must not
// be empty.
func (n *node) mbr() Rect {
	r := n.entries[0].Rect.Clone()
	for _, e := range n.entries[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// encode serializes n into buf (a page payload).
func (n *node) encode(buf []byte, dim int) {
	if n.leaf {
		buf[0] = 0
	} else {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.entries)))
	buf[3], buf[4], buf[5], buf[6], buf[7] = 0, 0, 0, 0, 0
	off := nodeHeaderLen
	for _, e := range n.entries {
		for i := 0; i < dim; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Lo[i]))
			off += 8
		}
		for i := 0; i < dim; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Hi[i]))
			off += 8
		}
		binary.LittleEndian.PutUint32(buf[off:], e.Child)
		off += 4
	}
}

// decodeNode parses a page payload into a node.
func decodeNode(pid pagefile.PageID, buf []byte, dim int) (*node, error) {
	if len(buf) < nodeHeaderLen {
		return nil, fmt.Errorf("rtree: page %d too small for node header", pid)
	}
	kind := buf[0]
	if kind > 1 {
		return nil, fmt.Errorf("rtree: page %d has invalid node kind %d", pid, kind)
	}
	count := int(binary.LittleEndian.Uint16(buf[1:]))
	need := nodeHeaderLen + count*entrySize(dim)
	if need > len(buf) {
		return nil, fmt.Errorf("rtree: page %d entry count %d exceeds payload", pid, count)
	}
	n := &node{pid: pid, leaf: kind == 0, entries: make([]Entry, count)}
	off := nodeHeaderLen
	for k := 0; k < count; k++ {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for i := 0; i < dim; i++ {
			lo[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for i := 0; i < dim; i++ {
			hi[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		n.entries[k] = Entry{
			Rect:  Rect{Lo: lo, Hi: hi},
			Child: binary.LittleEndian.Uint32(buf[off:]),
		}
		off += 4
	}
	return n, nil
}

// loadNode fetches and decodes the node stored on page pid.
func (t *Tree) loadNode(pid pagefile.PageID) (*node, error) {
	p, err := t.pool.Fetch(pid)
	if err != nil {
		return nil, err
	}
	defer p.Unpin()
	return decodeNode(pid, p.Payload(), t.dim)
}

// storeNode writes n back to its page.
func (t *Tree) storeNode(n *node) error {
	p, err := t.pool.Fetch(n.pid)
	if err != nil {
		return err
	}
	defer p.Unpin()
	n.encode(p.Payload(), t.dim)
	p.MarkDirty()
	return nil
}

// allocNode allocates a page for a node of the given kind, preferring pages
// from the free list over growing the store.
func (t *Tree) allocNode(leaf bool) (*node, error) {
	var p *pagefile.Page
	var err error
	if len(t.free) > 0 {
		pid := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		p, err = t.pool.Fetch(pid)
	} else {
		p, err = t.pool.Alloc()
	}
	if err != nil {
		return nil, err
	}
	defer p.Unpin()
	n := &node{pid: p.ID(), leaf: leaf}
	n.encode(p.Payload(), t.dim)
	p.MarkDirty()
	return n, nil
}
