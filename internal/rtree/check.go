package rtree

import (
	"fmt"

	"repro/internal/pagefile"
)

// CheckInvariants validates the structural invariants of the tree and
// returns the first violation found:
//
//   - every internal entry's rectangle equals the MBR of its child node,
//   - all leaves sit at the same depth, equal to the recorded height,
//   - no node exceeds capacity M,
//   - the recorded size equals the number of data entries.
//
// Minimum fill is deliberately not enforced: bulk loading and root nodes
// legitimately hold fewer than m entries.
func (t *Tree) CheckInvariants() error {
	dataCount := 0
	var visit func(pid pagefile.PageID, depth int) (Rect, error)
	visit = func(pid pagefile.PageID, depth int) (Rect, error) {
		n, err := t.loadNode(pid)
		if err != nil {
			return Rect{}, err
		}
		if len(n.entries) > t.max {
			return Rect{}, fmt.Errorf("rtree: node %d overflows: %d > %d", pid, len(n.entries), t.max)
		}
		if n.leaf {
			if depth != t.height {
				return Rect{}, fmt.Errorf("rtree: leaf %d at depth %d, height %d", pid, depth, t.height)
			}
			dataCount += len(n.entries)
			if len(n.entries) == 0 {
				if pid != t.root {
					return Rect{}, fmt.Errorf("rtree: empty non-root leaf %d", pid)
				}
				return Rect{}, nil
			}
			return n.mbr(), nil
		}
		if len(n.entries) == 0 {
			return Rect{}, fmt.Errorf("rtree: empty internal node %d", pid)
		}
		for i, e := range n.entries {
			childMBR, err := visit(pagefile.PageID(e.Child), depth+1)
			if err != nil {
				return Rect{}, err
			}
			if !e.Rect.Equal(childMBR) {
				return Rect{}, fmt.Errorf("rtree: node %d entry %d rect %v != child mbr %v",
					pid, i, e.Rect, childMBR)
			}
		}
		return n.mbr(), nil
	}
	if _, err := visit(t.root, 1); err != nil {
		return err
	}
	if dataCount != t.size {
		return fmt.Errorf("rtree: size %d but %d data entries found", t.size, dataCount)
	}
	return nil
}
