package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pagefile"
)

// SplitStrategy selects the node splitting heuristic on overflow.
type SplitStrategy int

const (
	// QuadraticSplit is Guttman's quadratic-cost split (the default).
	QuadraticSplit SplitStrategy = iota
	// LinearSplit is Guttman's linear-cost split.
	LinearSplit
	// RStarSplit is the margin/overlap-driven split of the R*-tree
	// (Beckmann et al.), without forced reinsertion.
	RStarSplit
)

func (s SplitStrategy) String() string {
	switch s {
	case LinearSplit:
		return "linear"
	case RStarSplit:
		return "rstar"
	default:
		return "quadratic"
	}
}

const (
	metaMagic   = 0x54575254 // "TWRT"
	metaVersion = 1
	metaPage    = pagefile.PageID(0)
)

// ErrDimension is returned when a rectangle of the wrong dimensionality is
// passed to a tree operation.
var ErrDimension = errors.New("rtree: dimensionality mismatch")

// Tree is a disk-resident R-tree. It is not safe for concurrent mutation;
// concurrent read-only searches are safe with respect to each other.
type Tree struct {
	pool  *pagefile.Pool
	dim   int
	max   int // node capacity M
	min   int // minimum fill m
	split SplitStrategy

	root   pagefile.PageID
	height int // 1 = root is a leaf
	size   int // number of data entries

	free []pagefile.PageID // pages released by delete, reusable by allocNode
}

// Options configures tree creation.
type Options struct {
	// Split selects the overflow split heuristic.
	Split SplitStrategy
	// MaxEntries caps the node fanout below the page-derived capacity
	// (0 = use full capacity). Used by tests to force deep trees.
	MaxEntries int
}

// Create initializes an empty tree of the given dimensionality on pool. The
// pool must be fresh (no allocated pages): the tree claims page 0 for its
// metadata and the remaining pages for nodes.
func Create(pool *pagefile.Pool, dim int, opts Options) (*Tree, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rtree: dimension %d < 1", dim)
	}
	if pool.NumPages() != 0 {
		return nil, errors.New("rtree: Create requires an empty page store")
	}
	max := nodeCapacity(pool.PayloadSize(), dim)
	if opts.MaxEntries > 0 && opts.MaxEntries < max {
		max = opts.MaxEntries
	}
	if max < 4 {
		return nil, fmt.Errorf("rtree: page size too small: node capacity %d < 4", max)
	}
	t := &Tree{
		pool:  pool,
		dim:   dim,
		max:   max,
		min:   minFill(max),
		split: opts.Split,
	}
	meta, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	meta.Unpin()
	if meta.ID() != metaPage {
		return nil, fmt.Errorf("rtree: meta page allocated as %d", meta.ID())
	}
	rootNode, err := t.allocNode(true)
	if err != nil {
		return nil, err
	}
	t.root = rootNode.pid
	t.height = 1
	if err := t.saveMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from pool.
func Open(pool *pagefile.Pool, opts Options) (*Tree, error) {
	p, err := pool.Fetch(metaPage)
	if err != nil {
		return nil, err
	}
	defer p.Unpin()
	buf := p.Payload()
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return nil, errors.New("rtree: bad meta magic")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != metaVersion {
		return nil, fmt.Errorf("rtree: unsupported meta version %d", v)
	}
	dim := int(binary.LittleEndian.Uint32(buf[8:]))
	t := &Tree{
		pool:   pool,
		dim:    dim,
		split:  SplitStrategy(binary.LittleEndian.Uint32(buf[12:])),
		root:   pagefile.PageID(binary.LittleEndian.Uint32(buf[16:])),
		height: int(binary.LittleEndian.Uint32(buf[20:])),
		size:   int(binary.LittleEndian.Uint64(buf[24:])),
		max:    int(binary.LittleEndian.Uint32(buf[32:])),
	}
	t.min = minFill(t.max)
	nfree := int(binary.LittleEndian.Uint32(buf[36:]))
	for i := 0; i < nfree; i++ {
		t.free = append(t.free, pagefile.PageID(binary.LittleEndian.Uint32(buf[40+4*i:])))
	}
	if opts.Split != t.split && opts.Split != QuadraticSplit {
		t.split = opts.Split
	}
	return t, nil
}

func minFill(max int) int {
	m := max * 2 / 5 // 40% fill, within Guttman's m <= M/2
	if m < 2 {
		m = 2
	}
	return m
}

func (t *Tree) saveMeta() error {
	p, err := t.pool.Fetch(metaPage)
	if err != nil {
		return err
	}
	defer p.Unpin()
	buf := p.Payload()
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], metaVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.dim))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.split))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.root))
	binary.LittleEndian.PutUint32(buf[20:], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[24:], uint64(t.size))
	binary.LittleEndian.PutUint32(buf[32:], uint32(t.max))
	// Persist as much of the free list as fits in the meta page; overflow
	// pages are merely leaked, never corrupted.
	maxFree := (len(buf) - 40) / 4
	nfree := len(t.free)
	if nfree > maxFree {
		nfree = maxFree
	}
	binary.LittleEndian.PutUint32(buf[36:], uint32(nfree))
	for i := 0; i < nfree; i++ {
		binary.LittleEndian.PutUint32(buf[40+4*i:], uint32(t.free[i]))
	}
	p.MarkDirty()
	return nil
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of stored data entries.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = the root is a leaf).
func (t *Tree) Height() int { return t.height }

// MaxEntries returns the node capacity M.
func (t *Tree) MaxEntries() int { return t.max }

// NodePages returns the number of pages the tree occupies (incl. metadata).
func (t *Tree) NodePages() int { return t.pool.NumPages() }

// Stats exposes the underlying buffer pool counters.
func (t *Tree) Stats() pagefile.Stats { return t.pool.Stats() }

// ResetStats zeroes the underlying buffer pool counters.
func (t *Tree) ResetStats() { t.pool.ResetStats() }

// Flush persists all dirty pages and the metadata.
func (t *Tree) Flush() error {
	if err := t.saveMeta(); err != nil {
		return err
	}
	return t.pool.FlushAll()
}

// Close flushes and closes the underlying pool.
func (t *Tree) Close() error {
	if err := t.Flush(); err != nil {
		t.pool.Close()
		return err
	}
	return t.pool.Close()
}

// checkDim validates a rectangle's dimensionality.
func (t *Tree) checkDim(r Rect) error {
	if r.Dim() != t.dim {
		return fmt.Errorf("%w: rect dim %d, tree dim %d", ErrDimension, r.Dim(), t.dim)
	}
	return nil
}
