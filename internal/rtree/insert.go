package rtree

import (
	"fmt"

	"repro/internal/pagefile"
)

// Insert adds a data entry with bounding rectangle r and identifier id.
func (t *Tree) Insert(r Rect, id uint32) error {
	if err := t.checkDim(r); err != nil {
		return err
	}
	if err := t.insertAtLevel(Entry{Rect: r.Clone(), Child: id}, 1); err != nil {
		return err
	}
	t.size++
	return t.saveMeta()
}

// insertAtLevel places entry e into a node at the given level (1 = leaf).
// Reinsertion during delete condensation uses levels > 1.
func (t *Tree) insertAtLevel(e Entry, level int) error {
	// Descend, recording the path (node, index-of-chosen-entry-in-parent).
	path, err := t.chooseNode(e.Rect, level)
	if err != nil {
		return err
	}
	target := path[len(path)-1].n
	target.entries = append(target.entries, e)

	var splitNew *node
	if len(target.entries) > t.max {
		splitNew, err = t.splitNode(target)
		if err != nil {
			return err
		}
	} else if err := t.storeNode(target); err != nil {
		return err
	}

	// Adjust MBRs upward, propagating splits.
	for i := len(path) - 2; i >= 0; i-- {
		parent := path[i].n
		childIdx := path[i+1].parentIdx
		parent.entries[childIdx].Rect = path[i+1].n.mbr()
		if splitNew != nil {
			parent.entries = append(parent.entries, Entry{Rect: splitNew.mbr(), Child: uint32(splitNew.pid)})
			if len(parent.entries) > t.max {
				splitNew, err = t.splitNode(parent)
				if err != nil {
					return err
				}
				continue
			}
			splitNew = nil
		}
		if err := t.storeNode(parent); err != nil {
			return err
		}
	}

	// Root split: grow the tree by one level.
	if splitNew != nil {
		oldRoot := path[0].n
		newRoot, err := t.allocNode(false)
		if err != nil {
			return err
		}
		newRoot.entries = []Entry{
			{Rect: oldRoot.mbr(), Child: uint32(oldRoot.pid)},
			{Rect: splitNew.mbr(), Child: uint32(splitNew.pid)},
		}
		if err := t.storeNode(newRoot); err != nil {
			return err
		}
		t.root = newRoot.pid
		t.height++
	}
	return nil
}

// pathElem records one step of a root-to-target descent.
type pathElem struct {
	n         *node
	parentIdx int // index of this node's entry within its parent
}

// chooseNode descends from the root to a node at the requested level
// (1 = leaf), choosing at each step the subtree needing least enlargement
// (ties broken by smaller area), per Guttman's ChooseLeaf.
func (t *Tree) chooseNode(r Rect, level int) ([]pathElem, error) {
	n, err := t.loadNode(t.root)
	if err != nil {
		return nil, err
	}
	path := []pathElem{{n: n, parentIdx: -1}}
	curLevel := t.height
	for curLevel > level {
		if n.leaf {
			return nil, fmt.Errorf("rtree: reached leaf above target level %d", level)
		}
		best := -1
		bestEnl, bestArea := 0.0, 0.0
		for i, e := range n.entries {
			enl := e.Rect.Enlargement(r)
			area := e.Rect.Area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("rtree: empty internal node %d", n.pid)
		}
		child, err := t.loadNode(pagefile.PageID(n.entries[best].Child))
		if err != nil {
			return nil, err
		}
		path = append(path, pathElem{n: child, parentIdx: best})
		n = child
		curLevel--
	}
	return path, nil
}
