package rtree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/pagefile"
)

func newTree(t *testing.T, dim int, opts Options) *Tree {
	t.Helper()
	pool, err := pagefile.NewPool(pagefile.NewMemBackend(512), 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Create(pool, dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tree.Close() })
	return tree
}

func randPoint(rng *rand.Rand, dim int) []float64 {
	p := make([]float64, dim)
	for i := range p {
		p[i] = rng.Float64() * 100
	}
	return p
}

// bruteRange returns the ids of points intersecting query.
func bruteRange(points [][]float64, query Rect) []uint32 {
	var out []uint32
	for id, p := range points {
		if query.Intersects(NewPoint(p)) {
			out = append(out, uint32(id))
		}
	}
	return out
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit, RStarSplit} {
		for _, dim := range []int{2, 4} {
			rng := rand.New(rand.NewSource(int64(dim)))
			tree := newTree(t, dim, Options{Split: split})
			var points [][]float64
			for i := 0; i < 500; i++ {
				p := randPoint(rng, dim)
				points = append(points, p)
				if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("split=%v dim=%d: %v", split, dim, err)
			}
			if tree.Len() != 500 {
				t.Fatalf("Len = %d", tree.Len())
			}
			for trial := 0; trial < 50; trial++ {
				lo := randPoint(rng, dim)
				hi := make([]float64, dim)
				for i := range hi {
					hi[i] = lo[i] + rng.Float64()*30
				}
				query, err := NewRect(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				var got []uint32
				if err := tree.Search(query, func(_ Rect, id uint32) bool {
					got = append(got, id)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				want := bruteRange(points, query)
				if !equalIDs(sortedIDs(got), sortedIDs(want)) {
					t.Fatalf("split=%v dim=%d query %v: got %v, want %v",
						split, dim, query, sortedIDs(got), sortedIDs(want))
				}
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tree := newTree(t, 2, Options{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if err := tree.Insert(NewPoint(randPoint(rng, 2)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	everything, _ := NewRect([]float64{-1, -1}, []float64{101, 101})
	count := 0
	if err := tree.Search(everything, func(_ Rect, _ uint32) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestSearchAll(t *testing.T) {
	tree := newTree(t, 2, Options{})
	for i := 0; i < 10; i++ {
		if err := tree.Insert(NewPoint([]float64{float64(i), 0}), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	query, _ := NewRect([]float64{2.5, -1}, []float64{6.5, 1})
	got, err := tree.SearchAll(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // points 3,4,5,6
		t.Errorf("SearchAll returned %d entries", len(got))
	}
}

func TestDimensionMismatch(t *testing.T) {
	tree := newTree(t, 3, Options{})
	if err := tree.Insert(NewPoint([]float64{1, 2}), 0); err == nil {
		t.Error("Insert accepted wrong dimension")
	}
	if err := tree.Search(NewPoint([]float64{1}), func(Rect, uint32) bool { return true }); err == nil {
		t.Error("Search accepted wrong dimension")
	}
	if _, err := tree.Delete(NewPoint([]float64{1}), 0); err == nil {
		t.Error("Delete accepted wrong dimension")
	}
}

func TestDeleteAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree := newTree(t, 2, Options{})
	var points [][]float64
	alive := map[uint32]bool{}
	for i := 0; i < 300; i++ {
		p := randPoint(rng, 2)
		points = append(points, p)
		alive[uint32(i)] = true
		if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a random 2/3rds, verifying structure along the way.
	perm := rng.Perm(300)
	for k, idx := range perm[:200] {
		id := uint32(idx)
		found, err := tree.Delete(NewPoint(points[idx]), id)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("Delete(%d) not found", id)
		}
		delete(alive, id)
		if k%50 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 100 {
		t.Fatalf("Len after deletes = %d", tree.Len())
	}
	everything, _ := NewRect([]float64{-1, -1}, []float64{101, 101})
	var got []uint32
	if err := tree.Search(everything, func(_ Rect, id uint32) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(alive) {
		t.Fatalf("search found %d, want %d", len(got), len(alive))
	}
	for _, id := range got {
		if !alive[id] {
			t.Fatalf("deleted id %d still present", id)
		}
	}
}

func TestDeleteAbsent(t *testing.T) {
	tree := newTree(t, 2, Options{})
	if err := tree.Insert(NewPoint([]float64{1, 1}), 7); err != nil {
		t.Fatal(err)
	}
	found, err := tree.Delete(NewPoint([]float64{2, 2}), 7)
	if err != nil || found {
		t.Errorf("Delete absent = %v, %v", found, err)
	}
	// Same point, wrong id.
	found, err = tree.Delete(NewPoint([]float64{1, 1}), 8)
	if err != nil || found {
		t.Errorf("Delete wrong id = %v, %v", found, err)
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tree := newTree(t, 2, Options{})
	rng := rand.New(rand.NewSource(11))
	var points [][]float64
	for i := 0; i < 150; i++ {
		p := randPoint(rng, 2)
		points = append(points, p)
		if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range points {
		found, err := tree.Delete(NewPoint(p), uint32(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tree.Len())
	}
	if tree.Height() != 1 {
		t.Errorf("Height = %d after emptying, want 1", tree.Height())
	}
	// Insert again into the emptied tree (exercising free-list reuse).
	pagesBefore := tree.NodePages()
	for i := 0; i < 150; i++ {
		if err := tree.Insert(NewPoint(points[i]), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.NodePages() > pagesBefore+5 {
		t.Errorf("free list not reused: pages %d -> %d", pagesBefore, tree.NodePages())
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.twp")
	backend, err := pagefile.CreateFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pagefile.NewPool(backend, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Create(pool, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var points [][]float64
	for i := 0; i < 200; i++ {
		p := randPoint(rng, 4)
		points = append(points, p)
		if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	backend2, err := pagefile.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := pagefile.NewPool(backend2, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := Open(pool2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	if tree2.Len() != 200 || tree2.Dim() != 4 {
		t.Fatalf("reopened Len=%d Dim=%d", tree2.Len(), tree2.Dim())
	}
	if err := tree2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	query, _ := NewRect([]float64{0, 0, 0, 0}, []float64{50, 50, 50, 50})
	var got []uint32
	if err := tree2.Search(query, func(_ Rect, id uint32) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := bruteRange(points, query)
	if !equalIDs(sortedIDs(got), sortedIDs(want)) {
		t.Fatalf("after reopen: got %d, want %d results", len(got), len(want))
	}
}

func TestRectOps(t *testing.T) {
	a, _ := NewRect([]float64{0, 0}, []float64{2, 3})
	b, _ := NewRect([]float64{1, 1}, []float64{4, 4})
	if got := a.Area(); got != 6 {
		t.Errorf("Area = %g", got)
	}
	if got := a.Margin(); got != 5 {
		t.Errorf("Margin = %g", got)
	}
	u := a.Union(b)
	if !u.Equal(Rect{Lo: []float64{0, 0}, Hi: []float64{4, 4}}) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Enlargement(b); got != 16-6 {
		t.Errorf("Enlargement = %g", got)
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects false for overlapping rects")
	}
	far, _ := NewRect([]float64{10, 10}, []float64{11, 11})
	if a.Intersects(far) {
		t.Error("Intersects true for disjoint rects")
	}
	if !u.Contains(a) || a.Contains(u) {
		t.Error("Contains wrong")
	}
	c := a.Center()
	if c[0] != 1 || c[1] != 1.5 {
		t.Errorf("Center = %v", c)
	}
	if a.Equal(b) {
		t.Error("Equal true for different rects")
	}
}

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewRect([]float64{2}, []float64{1}); err == nil {
		t.Error("inverted rect accepted")
	}
}

func TestMinDist(t *testing.T) {
	r, _ := NewRect([]float64{0, 0}, []float64{2, 2})
	// Inside.
	if got := r.MinDist([]float64{1, 1}, NormLInf); got != 0 {
		t.Errorf("inside MinDist = %g", got)
	}
	// Outside along one axis.
	if got := r.MinDist([]float64{5, 1}, NormLInf); got != 3 {
		t.Errorf("Linf MinDist = %g", got)
	}
	if got := r.MinDist([]float64{5, 6}, NormL2); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 MinDist = %g, want 5", got)
	}
	if got := r.MinDist([]float64{5, 6}, NormLInf); got != 4 {
		t.Errorf("Linf MinDist = %g, want 4", got)
	}
}

func TestMaxEntriesOptionForcesDeepTree(t *testing.T) {
	tree := newTree(t, 2, Options{MaxEntries: 4})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		if err := tree.Insert(NewPoint(randPoint(rng, 2)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Height() < 3 {
		t.Errorf("Height = %d with fanout 4 over 200 points", tree.Height())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateRequiresEmptyPool(t *testing.T) {
	pool, err := pagefile.NewPool(pagefile.NewMemBackend(512), 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin()
	if _, err := Create(pool, 2, Options{}); err == nil {
		t.Error("Create on non-empty pool accepted")
	}
}

func TestCreateRejectsBadDim(t *testing.T) {
	pool, _ := pagefile.NewPool(pagefile.NewMemBackend(512), 512, 8)
	if _, err := Create(pool, 0, Options{}); err == nil {
		t.Error("dim 0 accepted")
	}
}
