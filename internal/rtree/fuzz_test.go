package rtree

import (
	"testing"

	"repro/internal/pagefile"
)

// FuzzDecodeNode ensures node decoding never panics or over-reads on
// arbitrary page payloads (e.g. a corrupted index file).
func FuzzDecodeNode(f *testing.F) {
	// A valid serialized node as one seed.
	n := &node{pid: 1, leaf: true, entries: []Entry{
		{Rect: NewPoint([]float64{1, 2}), Child: 7},
	}}
	buf := make([]byte, 512)
	n.encode(buf, 2)
	f.Add(buf, 2)
	f.Add([]byte{}, 2)
	f.Add([]byte{1, 255, 255, 0, 0, 0, 0, 0}, 4)
	f.Fuzz(func(t *testing.T, data []byte, dim int) {
		if dim < 1 || dim > 16 {
			return
		}
		decoded, err := decodeNode(pagefile.PageID(0), data, dim)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode into the same prefix.
		need := nodeHeaderLen + len(decoded.entries)*entrySize(dim)
		if need > len(data) {
			t.Fatalf("decoded node larger than input: %d > %d", need, len(data))
		}
		out := make([]byte, len(data))
		copy(out, data)
		decoded.encode(out, dim)
		for i := 0; i < need; i++ {
			if i >= 3 && i < 8 {
				continue // reserved bytes are normalized to zero
			}
			if out[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
