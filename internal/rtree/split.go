package rtree

import "math"

// splitNode distributes n's (overflowing) entries between n and a fresh
// sibling according to the tree's split strategy, stores both nodes, and
// returns the sibling.
func (t *Tree) splitNode(n *node) (*node, error) {
	entries := n.entries
	var groupA, groupB []Entry
	switch t.split {
	case LinearSplit:
		groupA, groupB = t.linearSplit(entries)
	case RStarSplit:
		groupA, groupB = t.rstarSplit(entries)
	default:
		groupA, groupB = t.quadraticSplit(entries)
	}
	sibling, err := t.allocNode(n.leaf)
	if err != nil {
		return nil, err
	}
	n.entries = groupA
	sibling.entries = groupB
	if err := t.storeNode(n); err != nil {
		return nil, err
	}
	if err := t.storeNode(sibling); err != nil {
		return nil, err
	}
	return sibling, nil
}

// quadraticSplit implements Guttman's quadratic split: pick the pair of
// entries wasting the most area as seeds, then repeatedly assign the entry
// with the greatest preference difference to its preferred group, subject to
// the minimum fill constraint.
func (t *Tree) quadraticSplit(entries []Entry) (groupA, groupB []Entry) {
	seedA, seedB := pickSeedsQuadratic(entries)
	groupA = append(groupA, entries[seedA])
	groupB = append(groupB, entries[seedB])
	rectA := entries[seedA].Rect.Clone()
	rectB := entries[seedB].Rect.Clone()

	remaining := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, e)
		}
	}

	for len(remaining) > 0 {
		// Honour minimum fill: if one group needs all remaining entries to
		// reach m, hand them over.
		if len(groupA)+len(remaining) <= t.min {
			for _, e := range remaining {
				groupA = append(groupA, e)
				rectA = rectA.Union(e.Rect)
			}
			break
		}
		if len(groupB)+len(remaining) <= t.min {
			for _, e := range remaining {
				groupB = append(groupB, e)
				rectB = rectB.Union(e.Rect)
			}
			break
		}
		// PickNext: the entry with the maximum |d1 - d2|.
		bestIdx, bestDiff := -1, -1.0
		var bestD1, bestD2 float64
		for i, e := range remaining {
			d1 := rectA.Enlargement(e.Rect)
			d2 := rectB.Enlargement(e.Rect)
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestIdx, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		e := remaining[bestIdx]
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		toA := bestD1 < bestD2
		if bestD1 == bestD2 {
			// Resolve ties by smaller area, then fewer entries.
			switch {
			case rectA.Area() != rectB.Area():
				toA = rectA.Area() < rectB.Area()
			default:
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, e)
			rectA = rectA.Union(e.Rect)
		} else {
			groupB = append(groupB, e)
			rectB = rectB.Union(e.Rect)
		}
	}
	return groupA, groupB
}

// pickSeedsQuadratic returns the indexes of the two entries that would waste
// the most area if placed together.
func pickSeedsQuadratic(entries []Entry) (int, int) {
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			joined := entries[i].Rect.Union(entries[j].Rect)
			waste := joined.Area() - entries[i].Rect.Area() - entries[j].Rect.Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	return seedA, seedB
}

// linearSplit implements Guttman's linear split: choose seeds with the
// greatest normalized separation along any dimension, then assign the rest
// by least enlargement in arbitrary order.
func (t *Tree) linearSplit(entries []Entry) (groupA, groupB []Entry) {
	dim := entries[0].Rect.Dim()
	bestDim, seedA, seedB := -1, 0, 1
	bestSep := math.Inf(-1)
	for d := 0; d < dim; d++ {
		// Highest low side and lowest high side, plus overall width.
		hiLo, loHi := 0, 0
		minLo, maxHi := entries[0].Rect.Lo[d], entries[0].Rect.Hi[d]
		for i, e := range entries {
			if e.Rect.Lo[d] > entries[hiLo].Rect.Lo[d] {
				hiLo = i
			}
			if e.Rect.Hi[d] < entries[loHi].Rect.Hi[d] {
				loHi = i
			}
			if e.Rect.Lo[d] < minLo {
				minLo = e.Rect.Lo[d]
			}
			if e.Rect.Hi[d] > maxHi {
				maxHi = e.Rect.Hi[d]
			}
		}
		width := maxHi - minLo
		if width <= 0 || hiLo == loHi {
			continue
		}
		sep := (entries[hiLo].Rect.Lo[d] - entries[loHi].Rect.Hi[d]) / width
		if sep > bestSep {
			bestSep, bestDim, seedA, seedB = sep, d, loHi, hiLo
		}
	}
	if bestDim == -1 {
		// Degenerate: all entries identical along every dimension.
		seedA, seedB = 0, 1
	}
	groupA = append(groupA, entries[seedA])
	groupB = append(groupB, entries[seedB])
	rectA := entries[seedA].Rect.Clone()
	rectB := entries[seedB].Rect.Clone()
	remaining := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, e)
		}
	}
	for k, e := range remaining {
		left := len(remaining) - k // unassigned entries, including e
		switch {
		case len(groupA)+left <= t.min:
			groupA = append(groupA, e)
			rectA = rectA.Union(e.Rect)
			continue
		case len(groupB)+left <= t.min:
			groupB = append(groupB, e)
			rectB = rectB.Union(e.Rect)
			continue
		}
		d1 := rectA.Enlargement(e.Rect)
		d2 := rectB.Enlargement(e.Rect)
		if d1 < d2 || (d1 == d2 && len(groupA) <= len(groupB)) {
			groupA = append(groupA, e)
			rectA = rectA.Union(e.Rect)
		} else {
			groupB = append(groupB, e)
			rectB = rectB.Union(e.Rect)
		}
	}
	return groupA, groupB
}
