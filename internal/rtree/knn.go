package rtree

import (
	"container/heap"
	"fmt"

	"repro/internal/pagefile"
)

// Neighbor is one k-NN result: a data entry plus its distance to the query
// point under the chosen norm.
type Neighbor struct {
	Entry Entry
	Dist  float64
}

// pqItem is either a node (to expand) or a data entry (to emit).
type pqItem struct {
	dist  float64
	israw bool // true: data entry; false: node page
	entry Entry
	pid   pagefile.PageID
}

type pqueue []pqItem

func (q pqueue) Len() int            { return len(q) }
func (q pqueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pqueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pqueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pqueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// NearestK returns the k data entries nearest to point p under norm, in
// non-decreasing distance order, using best-first (Hjaltason–Samet)
// traversal. Distances are point-to-rectangle MinDist values, which for
// point data equal the point-to-point distance.
//
// Because the paper's Dtw-lb is the L∞ metric over feature vectors,
// NearestK with NormLInf enumerates candidates in lower-bound order — the
// basis of the exact k-NN extension in the search layer.
func (t *Tree) NearestK(p []float64, k int, norm Norm) ([]Neighbor, error) {
	out := make([]Neighbor, 0, k)
	err := t.NearestWalk(p, norm, func(n Neighbor) bool {
		out = append(out, n)
		return len(out) < k
	})
	return out, err
}

// NearestWalk streams data entries in non-decreasing MinDist order, calling
// fn for each; fn returning false stops the traversal. This incremental form
// lets callers refine with an exact distance and stop once the lower bound
// exceeds their current k-th best (exact k-NN without a fixed candidate
// count).
func (t *Tree) NearestWalk(p []float64, norm Norm, fn func(Neighbor) bool) error {
	if len(p) != t.dim {
		return fmt.Errorf("%w: point dim %d, tree dim %d", ErrDimension, len(p), t.dim)
	}
	if t.size == 0 {
		return nil
	}
	q := &pqueue{{dist: 0, pid: t.root}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.israw {
			if !fn(Neighbor{Entry: it.entry, Dist: it.dist}) {
				return nil
			}
			continue
		}
		n, err := t.loadNode(it.pid)
		if err != nil {
			return err
		}
		for _, e := range n.entries {
			d := e.Rect.MinDist(p, norm)
			if n.leaf {
				heap.Push(q, pqItem{dist: d, israw: true, entry: e})
			} else {
				heap.Push(q, pqItem{dist: d, pid: pagefile.PageID(e.Child)})
			}
		}
	}
	return nil
}
