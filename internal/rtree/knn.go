package rtree

import (
	"container/heap"
	"fmt"

	"repro/internal/pagefile"
)

// Neighbor is one k-NN result: a data entry plus its distance to the query
// point under the chosen norm.
type Neighbor struct {
	Entry Entry
	Dist  float64
}

// pqItem is either a node (to expand) or a data entry (to emit). raised
// marks an entry whose priority was sharpened by an envelope bound — it is
// emitted at that key without being re-keyed again.
type pqItem struct {
	dist   float64
	israw  bool // true: data entry; false: node page
	raised bool
	entry  Entry
	pid    pagefile.PageID
}

type pqueue []pqItem

func (q pqueue) Len() int            { return len(q) }
func (q pqueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pqueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pqueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pqueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// WalkStats counts one nearest walk's frontier work (same meaning as
// flatidx.WalkStats, so the search layer aggregates both engines alike).
type WalkStats struct {
	Pushes   int64
	Repushes int64
	EnvStops int64
}

// NearestK returns the k data entries nearest to point p under norm, in
// non-decreasing distance order, using best-first (Hjaltason–Samet)
// traversal. Distances are point-to-rectangle MinDist values, which for
// point data equal the point-to-point distance.
//
// Because the paper's Dtw-lb is the L∞ metric over feature vectors,
// NearestK with NormLInf enumerates candidates in lower-bound order — the
// basis of the exact k-NN extension in the search layer.
func (t *Tree) NearestK(p []float64, k int, norm Norm) ([]Neighbor, error) {
	out := make([]Neighbor, 0, k)
	err := t.NearestWalk(p, norm, func(n Neighbor) bool {
		out = append(out, n)
		return len(out) < k
	})
	return out, err
}

// NearestWalk streams data entries in non-decreasing MinDist order, calling
// fn for each; fn returning false stops the traversal. This incremental form
// lets callers refine with an exact distance and stop once the lower bound
// exceeds their current k-th best (exact k-NN without a fixed candidate
// count).
func (t *Tree) NearestWalk(p []float64, norm Norm, fn func(Neighbor) bool) error {
	_, err := t.NearestWalkKeyed(p, norm, nil, nil, fn)
	return err
}

// NearestWalkKeyed is NearestWalk with a two-level envelope-sharpened
// frontier. xform (nil = identity) is a monotone non-decreasing transform
// applied to every MinDist so the caller can key the frontier in its own
// comparable space; sharpen (nil = disabled) maps a surfacing data entry to
// an additional lower bound in that same space, and the entry is re-keyed
// by the max of the two before it is emitted — when the sharpened key no
// longer beats the frontier the entry re-enters the heap and later entries
// surface first. Both levels lower-bound the distance the caller refines
// against, so the emitted key stream stays non-decreasing and the caller's
// stop condition is sound; it just fires earlier than MinDist alone allows.
func (t *Tree) NearestWalkKeyed(p []float64, norm Norm, xform func(float64) float64,
	sharpen func(e *Entry) float64, fn func(Neighbor) bool) (WalkStats, error) {
	var ws WalkStats
	if len(p) != t.dim {
		return ws, fmt.Errorf("%w: point dim %d, tree dim %d", ErrDimension, len(p), t.dim)
	}
	if t.size == 0 {
		return ws, nil
	}
	xf := xform
	if xf == nil {
		xf = func(d float64) float64 { return d }
	}
	q := &pqueue{{dist: 0, pid: t.root}}
	ws.Pushes++
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.israw {
			if !it.raised && sharpen != nil {
				if lb := sharpen(&it.entry); lb > it.dist {
					if q.Len() > 0 && lb > (*q)[0].dist {
						heap.Push(q, pqItem{dist: lb, israw: true, raised: true, entry: it.entry})
						ws.Pushes++
						ws.Repushes++
						continue
					}
					it.dist, it.raised = lb, true
				}
			}
			if !fn(Neighbor{Entry: it.entry, Dist: it.dist}) {
				if it.raised {
					ws.EnvStops++
				}
				return ws, nil
			}
			continue
		}
		n, err := t.loadNode(it.pid)
		if err != nil {
			return ws, err
		}
		for _, e := range n.entries {
			d := xf(e.Rect.MinDist(p, norm))
			if n.leaf {
				heap.Push(q, pqItem{dist: d, israw: true, entry: e})
			} else {
				heap.Push(q, pqItem{dist: d, pid: pagefile.PageID(e.Child)})
			}
			ws.Pushes++
		}
	}
	return ws, nil
}
