package rtree

import (
	"repro/internal/pagefile"
)

// Delete removes the data entry with the exact rectangle r and identifier
// id. It reports whether an entry was found and removed. Underfull nodes
// are dissolved and their entries reinserted at the proper level (Guttman's
// CondenseTree); freed pages go on the tree's free list for reuse.
func (t *Tree) Delete(r Rect, id uint32) (bool, error) {
	if err := t.checkDim(r); err != nil {
		return false, err
	}
	path, idx, err := t.findLeaf(t.root, t.height, r, id)
	if err != nil || path == nil {
		return false, err
	}
	leaf := path[len(path)-1].n
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--

	// CondenseTree: walk the path bottom-up collecting dissolved nodes.
	type orphan struct {
		entries []Entry
		level   int // level the *entries* belong at (1 = data entries)
	}
	var orphans []orphan
	level := 1
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i].n
		parent := path[i-1].n
		pidx := path[i].parentIdx
		if len(n.entries) < t.min {
			parent.entries = append(parent.entries[:pidx], parent.entries[pidx+1:]...)
			if len(n.entries) > 0 {
				orphans = append(orphans, orphan{entries: n.entries, level: level})
			}
			t.free = append(t.free, n.pid)
		} else {
			parent.entries[pidx].Rect = n.mbr()
			if err := t.storeNode(n); err != nil {
				return false, err
			}
		}
		level++
	}
	root := path[0].n
	if err := t.storeNode(root); err != nil {
		return false, err
	}

	// Reinsert orphaned entries at their recorded levels (deepest first so
	// the tree regrows bottom-up).
	for i := len(orphans) - 1; i >= 0; i-- {
		for _, e := range orphans[i].entries {
			if err := t.insertAtLevel(e, orphans[i].level); err != nil {
				return false, err
			}
		}
	}

	// Shrink the root while it is an internal node with a single child.
	for t.height > 1 {
		rn, err := t.loadNode(t.root)
		if err != nil {
			return false, err
		}
		if rn.leaf || len(rn.entries) != 1 {
			break
		}
		t.free = append(t.free, rn.pid)
		t.root = pagefile.PageID(rn.entries[0].Child)
		t.height--
	}
	return true, t.saveMeta()
}

// findLeaf locates the leaf containing the exact (rect, id) entry via a
// depth-first search over intersecting subtrees. It returns the root-to-leaf
// path and the entry's index within the leaf, or a nil path when absent.
func (t *Tree) findLeaf(pid pagefile.PageID, level int, r Rect, id uint32) ([]pathElem, int, error) {
	n, err := t.loadNode(pid)
	if err != nil {
		return nil, 0, err
	}
	if n.leaf {
		for i, e := range n.entries {
			if e.Child == id && e.Rect.Equal(r) {
				return []pathElem{{n: n, parentIdx: -1}}, i, nil
			}
		}
		return nil, 0, nil
	}
	for i, e := range n.entries {
		if !e.Rect.Contains(r) {
			continue
		}
		sub, idx, err := t.findLeaf(pagefile.PageID(e.Child), level-1, r, id)
		if err != nil {
			return nil, 0, err
		}
		if sub != nil {
			sub[0].parentIdx = i
			return append([]pathElem{{n: n, parentIdx: -1}}, sub...), idx, nil
		}
	}
	return nil, 0, nil
}
