package rtree

import (
	"math"
	"sort"
)

// rstarSplit implements the split heuristic of the R*-tree (Beckmann et
// al.), one of the index choices the paper's §4.3.1 lists. It chooses the
// split axis by minimum total margin over all candidate distributions and
// the split point by minimum overlap (ties by minimum combined area).
// Forced reinsertion — the other R*-tree ingredient — is deliberately not
// implemented: it complicates recovery semantics on disk-resident trees and
// the split alone captures most of the clustering benefit for point data.
func (t *Tree) rstarSplit(entries []Entry) (groupA, groupB []Entry) {
	dim := entries[0].Rect.Dim()
	m := t.min
	if m < 1 {
		m = 1
	}
	total := len(entries)

	// distributions along one sorted order: split after k entries for
	// k = m .. total-m.
	marginOf := func(sorted []Entry) float64 {
		margin := 0.0
		// Prefix and suffix MBRs.
		prefix := make([]Rect, total)
		suffix := make([]Rect, total)
		prefix[0] = sorted[0].Rect.Clone()
		for i := 1; i < total; i++ {
			prefix[i] = prefix[i-1].Union(sorted[i].Rect)
		}
		suffix[total-1] = sorted[total-1].Rect.Clone()
		for i := total - 2; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(sorted[i].Rect)
		}
		for k := m; k <= total-m; k++ {
			margin += prefix[k-1].Margin() + suffix[k].Margin()
		}
		return margin
	}

	bestAxis, bestByLo := -1, false
	bestMargin := math.Inf(1)
	for d := 0; d < dim; d++ {
		byLo := append([]Entry(nil), entries...)
		sort.SliceStable(byLo, func(i, j int) bool {
			if byLo[i].Rect.Lo[d] != byLo[j].Rect.Lo[d] {
				return byLo[i].Rect.Lo[d] < byLo[j].Rect.Lo[d]
			}
			return byLo[i].Rect.Hi[d] < byLo[j].Rect.Hi[d]
		})
		byHi := append([]Entry(nil), entries...)
		sort.SliceStable(byHi, func(i, j int) bool {
			if byHi[i].Rect.Hi[d] != byHi[j].Rect.Hi[d] {
				return byHi[i].Rect.Hi[d] < byHi[j].Rect.Hi[d]
			}
			return byHi[i].Rect.Lo[d] < byHi[j].Rect.Lo[d]
		})
		if mg := marginOf(byLo); mg < bestMargin {
			bestMargin, bestAxis, bestByLo = mg, d, true
		}
		if mg := marginOf(byHi); mg < bestMargin {
			bestMargin, bestAxis, bestByLo = mg, d, false
		}
	}

	sorted := append([]Entry(nil), entries...)
	d := bestAxis
	if bestByLo {
		sort.SliceStable(sorted, func(i, j int) bool {
			if sorted[i].Rect.Lo[d] != sorted[j].Rect.Lo[d] {
				return sorted[i].Rect.Lo[d] < sorted[j].Rect.Lo[d]
			}
			return sorted[i].Rect.Hi[d] < sorted[j].Rect.Hi[d]
		})
	} else {
		sort.SliceStable(sorted, func(i, j int) bool {
			if sorted[i].Rect.Hi[d] != sorted[j].Rect.Hi[d] {
				return sorted[i].Rect.Hi[d] < sorted[j].Rect.Hi[d]
			}
			return sorted[i].Rect.Lo[d] < sorted[j].Rect.Lo[d]
		})
	}

	prefix := make([]Rect, total)
	suffix := make([]Rect, total)
	prefix[0] = sorted[0].Rect.Clone()
	for i := 1; i < total; i++ {
		prefix[i] = prefix[i-1].Union(sorted[i].Rect)
	}
	suffix[total-1] = sorted[total-1].Rect.Clone()
	for i := total - 2; i >= 0; i-- {
		suffix[i] = suffix[i+1].Union(sorted[i].Rect)
	}
	bestK := m
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for k := m; k <= total-m; k++ {
		a, b := prefix[k-1], suffix[k]
		overlap := intersectionArea(a, b)
		area := a.Area() + b.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}
	groupA = append(groupA, sorted[:bestK]...)
	groupB = append(groupB, sorted[bestK:]...)
	return groupA, groupB
}

// intersectionArea returns the volume of the intersection of a and b
// (zero when disjoint).
func intersectionArea(a, b Rect) float64 {
	vol := 1.0
	for i := range a.Lo {
		lo := math.Max(a.Lo[i], b.Lo[i])
		hi := math.Min(a.Hi[i], b.Hi[i])
		if hi <= lo {
			return 0
		}
		vol *= hi - lo
	}
	return vol
}
