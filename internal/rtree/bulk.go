package rtree

import (
	"errors"
	"math"
	"sort"

	"repro/internal/pagefile"
)

// BulkLoad builds the tree from a full set of entries using Sort-Tile-
// Recursive (STR) packing. The tree must be empty. Bulk loading produces a
// near-100%-utilized, well-clustered tree far faster than repeated Insert
// (the paper's §4.3.1 recommends bulk loading for initial construction).
//
// BulkLoad is atomic with respect to the tree's visible state: the root,
// height, and size are only switched over after every packed node has been
// written. On any failure the tree is left exactly as before (empty), with
// the partially written pages returned to the free list for reuse, so a
// caller can retry once the storage fault clears.
func (t *Tree) BulkLoad(entries []Entry) error {
	if t.size != 0 {
		return errors.New("rtree: BulkLoad requires an empty tree")
	}
	for _, e := range entries {
		if err := t.checkDim(e.Rect); err != nil {
			return err
		}
	}
	if len(entries) == 0 {
		return nil
	}
	// STR packs nodes to full capacity; slab remainders leave the slack
	// later inserts need.
	fill := t.max

	// Everything below writes only to freshly allocated pages; abort
	// reclaims them and restores the pre-load metadata.
	var allocated []pagefile.PageID
	prevRoot, prevHeight := t.root, t.height
	abort := func(err error) error {
		t.root, t.height, t.size = prevRoot, prevHeight, 0
		t.free = append(t.free, allocated...)
		// Best effort: the free list is a space optimization, the in-memory
		// state above is what correctness needs.
		_ = t.saveMeta()
		return err
	}

	// Pack the data entries into leaves.
	own := make([]Entry, len(entries))
	for i, e := range entries {
		own[i] = Entry{Rect: e.Rect.Clone(), Child: e.Child}
	}
	level := make([]*node, 0, (len(own)+fill-1)/fill)
	for _, chunk := range strTile(own, t.dim, fill) {
		n, err := t.allocNode(true)
		if err != nil {
			return abort(err)
		}
		allocated = append(allocated, n.pid)
		n.entries = chunk
		if err := t.storeNode(n); err != nil {
			return abort(err)
		}
		level = append(level, n)
	}
	height := 1

	// Pack upward until a single root remains.
	for len(level) > 1 {
		parentEntries := make([]Entry, len(level))
		for i, n := range level {
			parentEntries[i] = Entry{Rect: n.mbr(), Child: uint32(n.pid)}
		}
		next := make([]*node, 0, (len(parentEntries)+fill-1)/fill)
		for _, chunk := range strTile(parentEntries, t.dim, fill) {
			n, err := t.allocNode(false)
			if err != nil {
				return abort(err)
			}
			allocated = append(allocated, n.pid)
			n.entries = chunk
			if err := t.storeNode(n); err != nil {
				return abort(err)
			}
			next = append(next, n)
		}
		level = next
		height++
	}
	t.root = level[0].pid
	t.height = height
	t.size = len(entries)
	if err := t.saveMeta(); err != nil {
		return abort(err)
	}
	// The previous (empty) root page is no longer referenced.
	t.free = append(t.free, prevRoot)
	return nil
}

// strTile partitions entries into chunks of at most capacity entries using
// recursive sort-tile partitioning across dims dimensions.
func strTile(entries []Entry, dims, capacity int) [][]Entry {
	if len(entries) <= capacity {
		return [][]Entry{entries}
	}
	if dims <= 1 {
		sortByCenter(entries, 0)
		return chunk(entries, capacity)
	}
	pages := int(math.Ceil(float64(len(entries)) / float64(capacity)))
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dims))))
	if slabs < 1 {
		slabs = 1
	}
	dim := entries[0].Rect.Dim() - dims // current sort dimension
	sortByCenter(entries, dim)
	perSlab := (len(entries) + slabs - 1) / slabs
	var out [][]Entry
	for off := 0; off < len(entries); off += perSlab {
		end := off + perSlab
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, strTile(entries[off:end], dims-1, capacity)...)
	}
	return out
}

func sortByCenter(entries []Entry, dim int) {
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].Rect.Lo[dim] + entries[i].Rect.Hi[dim]
		cj := entries[j].Rect.Lo[dim] + entries[j].Rect.Hi[dim]
		return ci < cj
	})
}

func chunk(entries []Entry, capacity int) [][]Entry {
	var out [][]Entry
	for off := 0; off < len(entries); off += capacity {
		end := off + capacity
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, entries[off:end])
	}
	return out
}
