// Package rtree implements a disk-resident, dimension-generic R-tree after
// Guttman (the index structure the paper employs, §5.1), stored on the paged
// storage layer so that index accesses are charged through the same buffer
// pool cost model as data accesses. Supported operations: insert with
// quadratic or linear node splitting, window (range) search, delete with
// tree condensation, STR bulk loading (§4.3.1 points at bulk loading for
// initial construction), and best-first k-nearest-neighbor search under L∞
// or L2 point-to-rectangle distance.
package rtree

import (
	"fmt"
	"math"
)

// Rect is a d-dimensional axis-aligned rectangle. Points are rectangles
// with Lo == Hi. Lo and Hi always have equal length.
type Rect struct {
	Lo, Hi []float64
}

// NewPoint returns the degenerate rectangle covering exactly p.
func NewPoint(p []float64) Rect {
	lo := make([]float64, len(p))
	hi := make([]float64, len(p))
	copy(lo, p)
	copy(hi, p)
	return Rect{Lo: lo, Hi: hi}
}

// NewRect validates and returns a rectangle.
func NewRect(lo, hi []float64) (Rect, error) {
	if len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("rtree: rect dims differ: %d vs %d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("rtree: rect dim %d inverted: [%g, %g]", i, lo[i], hi[i])
		}
	}
	return Rect{Lo: lo, Hi: hi}, nil
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy.
func (r Rect) Clone() Rect {
	return Rect{Lo: append([]float64(nil), r.Lo...), Hi: append([]float64(nil), r.Hi...)}
}

// Area returns the d-dimensional volume.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of edge lengths (used by the linear split pick).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Union returns the minimal rectangle covering r and s.
func (r Rect) Union(s Rect) Rect {
	out := r.Clone()
	for i := range out.Lo {
		if s.Lo[i] < out.Lo[i] {
			out.Lo[i] = s.Lo[i]
		}
		if s.Hi[i] > out.Hi[i] {
			out.Hi[i] = s.Hi[i]
		}
	}
	return out
}

// Enlargement returns the area increase needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	enlarged := 1.0
	for i := range r.Lo {
		lo, hi := r.Lo[i], r.Hi[i]
		if s.Lo[i] < lo {
			lo = s.Lo[i]
		}
		if s.Hi[i] > hi {
			hi = s.Hi[i]
		}
		enlarged *= hi - lo
	}
	return enlarged - r.Area()
}

// Intersects reports whether r and s share any point (closed rectangles).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Lo[i] > s.Hi[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Contains reports whether s lies entirely inside r.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Equal reports exact equality.
func (r Rect) Equal(s Rect) bool {
	if len(r.Lo) != len(s.Lo) {
		return false
	}
	for i := range r.Lo {
		if r.Lo[i] != s.Lo[i] || r.Hi[i] != s.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the rectangle's center point.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Lo))
	for i := range c {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Norm selects the point-to-rectangle distance used by k-NN search.
type Norm int

const (
	// NormLInf is the Chebyshev distance; it matches the paper's Dtw-lb
	// metric, so best-first search with it yields exact k-NN under the
	// lower-bound distance.
	NormLInf Norm = iota
	// NormL2 is the Euclidean distance (used by the FastMap pipeline).
	NormL2
)

// MinDist returns the minimal distance from point p to rectangle r under
// the norm: 0 when p lies inside r.
func (r Rect) MinDist(p []float64, norm Norm) float64 {
	switch norm {
	case NormLInf:
		max := 0.0
		for i := range p {
			d := axisDist(p[i], r.Lo[i], r.Hi[i])
			if d > max {
				max = d
			}
		}
		return max
	default:
		acc := 0.0
		for i := range p {
			d := axisDist(p[i], r.Lo[i], r.Hi[i])
			acc += d * d
		}
		return math.Sqrt(acc)
	}
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(%v, %v)", r.Lo, r.Hi)
}
