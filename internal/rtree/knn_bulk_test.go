package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func bruteKNN(points [][]float64, q []float64, k int, norm Norm) []float64 {
	dists := make([]float64, len(points))
	for i, p := range points {
		dists[i] = NewPoint(p).MinDist(q, norm)
	}
	sort.Float64s(dists)
	if k > len(dists) {
		k = len(dists)
	}
	return dists[:k]
}

func TestNearestKAgainstBruteForce(t *testing.T) {
	for _, norm := range []Norm{NormLInf, NormL2} {
		rng := rand.New(rand.NewSource(21))
		tree := newTree(t, 3, Options{})
		var points [][]float64
		for i := 0; i < 400; i++ {
			p := randPoint(rng, 3)
			points = append(points, p)
			if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 20; trial++ {
			q := randPoint(rng, 3)
			k := 1 + rng.Intn(10)
			got, err := tree.NearestK(q, k, norm)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(points, q, k, norm)
			if len(got) != len(want) {
				t.Fatalf("norm=%v: got %d results, want %d", norm, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("norm=%v k=%d pos=%d: dist %g, want %g",
						norm, k, i, got[i].Dist, want[i])
				}
				if i > 0 && got[i].Dist < got[i-1].Dist {
					t.Fatalf("results out of order")
				}
			}
		}
	}
}

func TestNearestKMoreThanStored(t *testing.T) {
	tree := newTree(t, 2, Options{})
	for i := 0; i < 5; i++ {
		if err := tree.Insert(NewPoint([]float64{float64(i), 0}), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tree.NearestK([]float64{0, 0}, 10, NormLInf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("NearestK returned %d of 5", len(got))
	}
}

func TestNearestKEmptyTree(t *testing.T) {
	tree := newTree(t, 2, Options{})
	got, err := tree.NearestK([]float64{0, 0}, 3, NormLInf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty tree NearestK = %v, %v", got, err)
	}
}

func TestNearestWalkDimCheck(t *testing.T) {
	tree := newTree(t, 2, Options{})
	if err := tree.NearestWalk([]float64{1}, NormLInf, func(Neighbor) bool { return true }); err == nil {
		t.Error("wrong dimension accepted")
	}
}

func TestNearestWalkEarlyStop(t *testing.T) {
	tree := newTree(t, 2, Options{})
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		if err := tree.Insert(NewPoint(randPoint(rng, 2)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := tree.NearestWalk([]float64{50, 50}, NormLInf, func(Neighbor) bool {
		count++
		return count < 7
	}); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Errorf("walk visited %d", count)
	}
}

func TestBulkLoadMatchesInsertResults(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	var entries []Entry
	var points [][]float64
	for i := 0; i < 1000; i++ {
		p := randPoint(rng, 4)
		points = append(points, p)
		entries = append(entries, Entry{Rect: NewPoint(p), Child: uint32(i)})
	}
	tree := newTree(t, 4, Options{})
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		lo := randPoint(rng, 4)
		hi := make([]float64, 4)
		for i := range hi {
			hi[i] = lo[i] + rng.Float64()*40
		}
		query, _ := NewRect(lo, hi)
		var got []uint32
		if err := tree.Search(query, func(_ Rect, id uint32) bool {
			got = append(got, id)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		want := bruteRange(points, query)
		if !equalIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("bulk-loaded search mismatch: got %d want %d", len(got), len(want))
		}
	}
}

func TestBulkLoadDenser(t *testing.T) {
	// Bulk loading must produce fewer pages than one-by-one insertion.
	rng := rand.New(rand.NewSource(27))
	var entries []Entry
	for i := 0; i < 2000; i++ {
		entries = append(entries, Entry{Rect: NewPoint(randPoint(rng, 4)), Child: uint32(i)})
	}
	bulk := newTree(t, 4, Options{})
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	incr := newTree(t, 4, Options{})
	for _, e := range entries {
		if err := incr.Insert(e.Rect, e.Child); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.NodePages() >= incr.NodePages() {
		t.Errorf("bulk pages %d >= incremental pages %d", bulk.NodePages(), incr.NodePages())
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tree := newTree(t, 2, Options{})
	if err := tree.Insert(NewPoint([]float64{1, 1}), 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad([]Entry{{Rect: NewPoint([]float64{2, 2}), Child: 1}}); err == nil {
		t.Error("BulkLoad on non-empty tree accepted")
	}
}

func TestBulkLoadEmptyAndSmall(t *testing.T) {
	tree := newTree(t, 2, Options{})
	if err := tree.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Error("empty bulk load changed size")
	}
	tree2 := newTree(t, 2, Options{})
	if err := tree2.BulkLoad([]Entry{{Rect: NewPoint([]float64{1, 1}), Child: 42}}); err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != 1 || tree2.Height() != 1 {
		t.Errorf("single-entry bulk: len=%d height=%d", tree2.Len(), tree2.Height())
	}
	if err := tree2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadDimCheck(t *testing.T) {
	tree := newTree(t, 3, Options{})
	if err := tree.BulkLoad([]Entry{{Rect: NewPoint([]float64{1, 1}), Child: 0}}); err == nil {
		t.Error("BulkLoad accepted wrong dimension")
	}
}

func TestInsertAfterBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var entries []Entry
	var points [][]float64
	for i := 0; i < 300; i++ {
		p := randPoint(rng, 2)
		points = append(points, p)
		entries = append(entries, Entry{Rect: NewPoint(p), Child: uint32(i)})
	}
	tree := newTree(t, 2, Options{})
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 400; i++ {
		p := randPoint(rng, 2)
		points = append(points, p)
		if err := tree.Insert(NewPoint(p), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	everything, _ := NewRect([]float64{-1, -1}, []float64{101, 101})
	var got []uint32
	if err := tree.Search(everything, func(_ Rect, id uint32) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Errorf("found %d of 400", len(got))
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	tree := newTree(t, 2, Options{MaxEntries: 4})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		if err := tree.Insert(NewPoint(randPoint(rng, 2)), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	leaves, internals, dataEntries := 0, 0, 0
	err := tree.Walk(func(level int, leaf bool, _ Rect, entries []Entry) error {
		if leaf {
			leaves++
			dataEntries += len(entries)
		} else {
			internals++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dataEntries != 100 {
		t.Errorf("walk saw %d data entries", dataEntries)
	}
	if leaves == 0 || internals == 0 {
		t.Errorf("leaves=%d internals=%d", leaves, internals)
	}
}
