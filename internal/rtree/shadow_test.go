package rtree

import (
	"math/rand"
	"testing"
)

// TestRandomOpsShadowModel drives the tree with a random interleaving of
// inserts, deletes, and range queries for every split strategy, checking
// each query against a brute-force shadow set and the structural
// invariants periodically.
func TestRandomOpsShadowModel(t *testing.T) {
	for _, split := range []SplitStrategy{QuadraticSplit, LinearSplit, RStarSplit} {
		t.Run(split.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2027))
			tree := newTree(t, 2, Options{Split: split, MaxEntries: 8})
			type item struct {
				rect Rect
				id   uint32
			}
			var live []item
			nextID := uint32(0)
			for step := 0; step < 1500; step++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(live) < 5: // insert
					r := randRect(rng, 2)
					if rng.Intn(2) == 0 {
						r = NewPoint(randPoint(rng, 2))
					}
					if err := tree.Insert(r, nextID); err != nil {
						t.Fatalf("step %d: insert: %v", step, err)
					}
					live = append(live, item{rect: r, id: nextID})
					nextID++
				case op < 7: // delete
					i := rng.Intn(len(live))
					found, err := tree.Delete(live[i].rect, live[i].id)
					if err != nil || !found {
						t.Fatalf("step %d: delete(%d) = %v, %v", step, live[i].id, found, err)
					}
					live = append(live[:i], live[i+1:]...)
				default: // range query vs shadow
					query := randRect(rng, 2)
					got := map[uint32]bool{}
					if err := tree.Search(query, func(_ Rect, id uint32) bool {
						got[id] = true
						return true
					}); err != nil {
						t.Fatalf("step %d: search: %v", step, err)
					}
					want := 0
					for _, it := range live {
						if query.Intersects(it.rect) {
							want++
							if !got[it.id] {
								t.Fatalf("step %d: item %d missing from search", step, it.id)
							}
						}
					}
					if len(got) != want {
						t.Fatalf("step %d: search returned %d, shadow has %d", step, len(got), want)
					}
				}
				if step%250 == 249 {
					if err := tree.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if tree.Len() != len(live) {
						t.Fatalf("step %d: Len %d, shadow %d", step, tree.Len(), len(live))
					}
				}
			}
		})
	}
}
