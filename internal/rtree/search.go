package rtree

import "repro/internal/pagefile"

// Search invokes fn for every data entry whose rectangle intersects query.
// fn returning false stops the search early. This is the square-range query
// of the paper's TW-Sim-Search Step-2 when query is the ε-cube around
// Feature(Q).
func (t *Tree) Search(query Rect, fn func(r Rect, id uint32) bool) error {
	if err := t.checkDim(query); err != nil {
		return err
	}
	_, err := t.search(t.root, query, fn)
	return err
}

func (t *Tree) search(pid pagefile.PageID, query Rect, fn func(Rect, uint32) bool) (bool, error) {
	n, err := t.loadNode(pid)
	if err != nil {
		return false, err
	}
	for _, e := range n.entries {
		if !e.Rect.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(e.Rect, e.Child) {
				return false, nil
			}
			continue
		}
		cont, err := t.search(pagefile.PageID(e.Child), query, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// SearchAll collects all data entries intersecting query.
func (t *Tree) SearchAll(query Rect) ([]Entry, error) {
	var out []Entry
	err := t.Search(query, func(r Rect, id uint32) bool {
		out = append(out, Entry{Rect: r, Child: id})
		return true
	})
	return out, err
}

// Walk visits every node of the tree in depth-first order; level 0 is the
// root. Used by integrity checks and tests.
func (t *Tree) Walk(fn func(level int, leaf bool, mbr Rect, entries []Entry) error) error {
	return t.walk(t.root, 0, fn)
}

func (t *Tree) walk(pid pagefile.PageID, level int, fn func(int, bool, Rect, []Entry) error) error {
	n, err := t.loadNode(pid)
	if err != nil {
		return err
	}
	var mbr Rect
	if len(n.entries) > 0 {
		mbr = n.mbr()
	}
	if err := fn(level, n.leaf, mbr, n.entries); err != nil {
		return err
	}
	if n.leaf {
		return nil
	}
	for _, e := range n.entries {
		if err := t.walk(pagefile.PageID(e.Child), level+1, fn); err != nil {
			return err
		}
	}
	return nil
}
