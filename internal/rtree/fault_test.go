package rtree

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/pagefile"
)

// Storage faults during insert must surface as errors, and after the fault
// clears the tree must still pass its integrity check for the entries it
// actually holds.
func TestInsertSurvivesTransientFaults(t *testing.T) {
	fb := pagefile.NewFaultBackend(pagefile.NewMemBackend(512), -1)
	pool, err := pagefile.NewPool(fb, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Create(pool, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(99))
	inserted := 0
	faults := 0
	for i := 0; i < 400; i++ {
		if i%37 == 36 {
			fb.Arm(rng.Intn(3))
		}
		err := tree.Insert(NewPoint(randPoint(rng, 2)), uint32(i))
		fb.Disarm()
		if err != nil {
			if !errors.Is(err, pagefile.ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			faults++
			continue
		}
		inserted++
	}
	if faults == 0 {
		t.Skip("no fault fired; adjust schedule")
	}
	// The tree may have partially-applied inserts (size counts only
	// successful ones), but its structure must remain navigable: a full
	// search must not error and must return at least the successes that
	// completed without any fault.
	everything, _ := NewRect([]float64{-1, -1}, []float64{101, 101})
	count := 0
	if err := tree.Search(everything, func(_ Rect, _ uint32) bool {
		count++
		return true
	}); err != nil {
		t.Fatalf("post-fault search: %v", err)
	}
	if count < inserted {
		t.Errorf("search found %d entries, %d inserts succeeded", count, inserted)
	}
}

// BulkLoad must be all-or-nothing: a storage fault at any point during the
// STR build leaves the tree exactly as it was (empty, valid, and usable),
// and a clean retry succeeds.
func TestBulkLoadAbortsCleanly(t *testing.T) {
	fb := pagefile.NewFaultBackend(pagefile.NewMemBackend(512), -1)
	pool, err := pagefile.NewPool(fb, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Create(pool, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(21))
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{Rect: NewPoint(randPoint(rng, 2)), Child: uint32(i)}
	}
	aborted := 0
	success := false
	for n := 0; n < 400 && !success; n++ {
		fb.Arm(n)
		err := tree.BulkLoad(entries)
		fb.Disarm()
		if err != nil {
			if !errors.Is(err, pagefile.ErrInjected) {
				t.Fatalf("injection %d: unexpected error: %v", n, err)
			}
			aborted++
			if tree.Len() != 0 {
				t.Fatalf("injection %d: aborted BulkLoad left %d entries", n, tree.Len())
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("injection %d: invariants after abort: %v", n, err)
			}
			continue
		}
		success = true
	}
	if aborted == 0 {
		t.Skip("no fault fired; adjust schedule")
	}
	if !success {
		t.Fatal("BulkLoad never succeeded within the injection schedule")
	}
	if tree.Len() != len(entries) {
		t.Fatalf("Len = %d after successful retry, want %d", tree.Len(), len(entries))
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after successful retry: %v", err)
	}
	everything, _ := NewRect([]float64{-1, -1}, []float64{101, 101})
	count := 0
	if err := tree.Search(everything, func(_ Rect, _ uint32) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(entries) {
		t.Fatalf("search found %d entries, want %d", count, len(entries))
	}
}
