package rtree

import (
	"math/rand"
	"testing"
)

// randRect produces a small random rectangle (the tree must handle true
// rectangles, not only points, since internal entries are MBRs).
func randRect(rng *rand.Rand, dim int) Rect {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for i := range lo {
		lo[i] = rng.Float64() * 100
		hi[i] = lo[i] + rng.Float64()*10
	}
	return Rect{Lo: lo, Hi: hi}
}

func TestRectangleEntriesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tree := newTree(t, 3, Options{})
	var rects []Rect
	for i := 0; i < 300; i++ {
		r := randRect(rng, 3)
		rects = append(rects, r)
		if err := tree.Insert(r, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		query := randRect(rng, 3)
		var got []uint32
		if err := tree.Search(query, func(_ Rect, id uint32) bool {
			got = append(got, id)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		var want []uint32
		for id, r := range rects {
			if query.Intersects(r) {
				want = append(want, uint32(id))
			}
		}
		if !equalIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("trial %d: got %d, want %d results", trial, len(got), len(want))
		}
	}
	// Delete a third of the rectangles and re-verify.
	for i := 0; i < 100; i++ {
		found, err := tree.Delete(rects[i], uint32(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	query := randRect(rng, 3)
	var got []uint32
	if err := tree.Search(query, func(_ Rect, id uint32) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		if id < 100 {
			t.Fatalf("deleted rect %d still found", id)
		}
	}
}

func TestDuplicatePointsDistinctIDs(t *testing.T) {
	tree := newTree(t, 2, Options{})
	p := NewPoint([]float64{5, 5})
	for i := 0; i < 50; i++ {
		if err := tree.Insert(p, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []uint32
	if err := tree.Search(p, func(_ Rect, id uint32) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("found %d of 50 duplicates", len(got))
	}
	// Delete one specific duplicate; the rest must remain.
	found, err := tree.Delete(p, 25)
	if err != nil || !found {
		t.Fatalf("delete duplicate: %v %v", found, err)
	}
	got = got[:0]
	if err := tree.Search(p, func(_ Rect, id uint32) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 49 {
		t.Fatalf("after delete: %d, want 49", len(got))
	}
	for _, id := range got {
		if id == 25 {
			t.Fatal("deleted duplicate still present")
		}
	}
}

func TestLinearSplitDegenerateIdenticalEntries(t *testing.T) {
	tree := newTree(t, 2, Options{Split: LinearSplit})
	p := NewPoint([]float64{1, 1})
	for i := 0; i < 100; i++ {
		if err := tree.Insert(p, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
}
