package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Client is a Go client for the twsimd HTTP API.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:7474"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, http: httpClient}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// DefaultRetryAfter is the backoff ErrOverloaded carries when the server
// sent a Retry-After header the client could not interpret: backing off a
// conservative second beats hammering a server that explicitly asked for
// a pause. A missing header still yields RetryAfter 0 (no advice given).
const DefaultRetryAfter = time.Second

// ErrOverloaded is returned when the server shed the request at admission
// control (429). RetryAfter carries the server's suggested backoff, when
// given. Detect it with errors.As and respect RetryAfter before resending.
type ErrOverloaded struct {
	Message    string
	RetryAfter time.Duration
}

func (e *ErrOverloaded) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("twsimd: overloaded: %s (retry after %s)", e.Message, e.RetryAfter)
	}
	return "twsimd: overloaded: " + e.Message
}

func (c *Client) do(method, path string, body, out any) error {
	return c.doCtx(nil, method, path, body, out)
}

// doCtx issues one request; a nil ctx means no cancellation. A 429 response
// becomes *ErrOverloaded with the server's Retry-After parsed.
func (c *Client) doCtx(ctx context.Context, method, path string, body, out any) error {
	var reqBody *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reqBody = bytes.NewReader(raw)
	} else {
		reqBody = bytes.NewReader(nil)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reqBody)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode >= 400 {
		var ae apiError
		if err := dec.Decode(&ae); err != nil || ae.Error == "" {
			ae.Error = resp.Status
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return &ErrOverloaded{Message: ae.Error, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
		}
		if ae.Error == resp.Status {
			return fmt.Errorf("twsimd: %s", resp.Status)
		}
		return fmt.Errorf("twsimd: %s (%s)", ae.Error, resp.Status)
	}
	if out == nil {
		return nil
	}
	return dec.Decode(out)
}

// parseRetryAfter interprets a Retry-After header per RFC 9110 §10.2.3:
// either delay-seconds or an HTTP-date. An absent header means no advice
// (0); a header that is present but unusable — unparseable, or a date
// already in the past — yields DefaultRetryAfter, since the server did ask
// for a pause even if we cannot tell how long.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return DefaultRetryAfter
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return DefaultRetryAfter
}

// Health checks the server's liveness endpoint.
func (c *Client) Health() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}

// Stats returns the database statistics.
func (c *Client) Stats() (sequences int, dataBytes int64, indexPages int, err error) {
	var out struct {
		Sequences  int   `json:"sequences"`
		DataBytes  int64 `json:"data_bytes"`
		IndexPages int   `json:"index_pages"`
	}
	if err := c.do(http.MethodGet, "/stats", nil, &out); err != nil {
		return 0, 0, 0, err
	}
	return out.Sequences, out.DataBytes, out.IndexPages, nil
}

// Add stores one sequence and returns its ID.
func (c *Client) Add(values []float64) (uint32, error) {
	var out struct {
		ID uint32 `json:"id"`
	}
	err := c.do(http.MethodPost, "/sequences", map[string]any{"values": values}, &out)
	return out.ID, err
}

// AddBatch stores many sequences, returning the first assigned ID. Against
// a sharded server the assigned IDs are not consecutive — use AddBatchIDs
// to learn all of them.
func (c *Client) AddBatch(sequences [][]float64) (uint32, error) {
	var out struct {
		FirstID uint32 `json:"first_id"`
	}
	err := c.do(http.MethodPost, "/sequences/batch",
		map[string]any{"sequences": sequences}, &out)
	return out.FirstID, err
}

// AddBatchIDs stores many sequences, returning every assigned ID in input
// order (sharded servers interleave IDs across shards).
func (c *Client) AddBatchIDs(sequences [][]float64) ([]uint32, error) {
	var out struct {
		IDs []uint32 `json:"ids"`
	}
	err := c.do(http.MethodPost, "/sequences/batch",
		map[string]any{"sequences": sequences}, &out)
	return out.IDs, err
}

// Get fetches a stored sequence.
func (c *Client) Get(id uint32) ([]float64, error) {
	var out struct {
		Values []float64 `json:"values"`
	}
	err := c.do(http.MethodGet, fmt.Sprintf("/sequences/%d", id), nil, &out)
	return out.Values, err
}

// Remove deletes a stored sequence, reporting whether it was present.
func (c *Client) Remove(id uint32) (bool, error) {
	var out struct {
		Removed bool `json:"removed"`
	}
	err := c.do(http.MethodDelete, fmt.Sprintf("/sequences/%d", id), nil, &out)
	return out.Removed, err
}

// Search runs a whole-matching similarity query under the server's default
// band.
func (c *Client) Search(query []float64, epsilon float64) (*SearchResponse, error) {
	var out SearchResponse
	err := c.do(http.MethodPost, "/search",
		map[string]any{"query": query, "epsilon": epsilon}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SearchBand is Search under an explicit Sakoe–Chiba band half-width
// (0 = unconstrained, ≥ 1 = banded), overriding the server's default.
func (c *Client) SearchBand(query []float64, epsilon float64, band int) (*SearchResponse, error) {
	var out SearchResponse
	err := c.do(http.MethodPost, "/search",
		map[string]any{"query": query, "epsilon": epsilon, "band": band}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SearchCtx is SearchBand governed by a context: cancelling ctx closes the
// connection, which the server observes and abandons the query server-side
// too. band < 0 means the server's default (the band field is omitted).
func (c *Client) SearchCtx(ctx context.Context, query []float64, epsilon float64, band int) (*SearchResponse, error) {
	body := map[string]any{"query": query, "epsilon": epsilon}
	if band >= 0 {
		body["band"] = band
	}
	var out SearchResponse
	if err := c.doCtx(ctx, http.MethodPost, "/search", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// NearestK returns the k nearest sequences under time warping, under the
// server's default band.
func (c *Client) NearestK(query []float64, k int) ([]MatchJSON, error) {
	var out struct {
		Matches []MatchJSON `json:"matches"`
	}
	err := c.do(http.MethodPost, "/knn", map[string]any{"query": query, "k": k}, &out)
	return out.Matches, err
}

// NearestKBand is NearestK under an explicit Sakoe–Chiba band half-width
// (0 = unconstrained, ≥ 1 = banded), overriding the server's default.
func (c *Client) NearestKBand(query []float64, k, band int) ([]MatchJSON, error) {
	var out struct {
		Matches []MatchJSON `json:"matches"`
	}
	err := c.do(http.MethodPost, "/knn", map[string]any{"query": query, "k": k, "band": band}, &out)
	return out.Matches, err
}

// NearestKCtx is NearestKBand governed by a context (see SearchCtx),
// returning the full response with stats, request ID and cache-hit flag.
// band < 0 means the server's default.
func (c *Client) NearestKCtx(ctx context.Context, query []float64, k, band int) (*SearchResponse, error) {
	body := map[string]any{"query": query, "k": k}
	if band >= 0 {
		body["band"] = band
	}
	var out SearchResponse
	if err := c.doCtx(ctx, http.MethodPost, "/knn", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BuildSubseqIndex builds the server-side subsequence index.
func (c *Client) BuildSubseqIndex(windowLens []int, step int) (int, error) {
	var out struct {
		Windows int `json:"windows"`
	}
	err := c.do(http.MethodPost, "/subseq/build",
		map[string]any{"window_lens": windowLens, "step": step}, &out)
	return out.Windows, err
}

// SearchSubsequences queries the server-side subsequence index.
func (c *Client) SearchSubsequences(query []float64, epsilon float64) ([]SubMatchJSON, error) {
	var out struct {
		Matches []SubMatchJSON `json:"matches"`
	}
	err := c.do(http.MethodPost, "/subseq/search",
		map[string]any{"query": query, "epsilon": epsilon}, &out)
	return out.Matches, err
}
