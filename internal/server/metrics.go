package server

import (
	"net/http"
	"sync/atomic"
	"time"

	twsim "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pagefile"
)

// endpointNames is the fixed set of instrumented endpoints; per-endpoint
// instruments are registered once at construction so the request path only
// touches pre-wired atomics.
var endpointNames = []string{
	"healthz", "stats", "metrics",
	"sequences", "sequence_by_id", "batch",
	"search", "knn",
	"subseq_build", "subseq_search",
	"repl_status", "repl_snapshot", "repl_wal",
}

// endpointMetrics are one endpoint's pre-registered instruments: request
// counters split by status class and one latency histogram.
type endpointMetrics struct {
	ok, clientErr, serverErr *obs.Counter
	latency                  *obs.Histogram
}

// serverMetrics is the server's obs registry plus the instruments the
// request path writes into. Everything else — query totals, buffer pool and
// cache counters, database size — is exported through scrape-time collector
// functions reading the counters the subsystems already keep, so serving
// traffic pays no second accounting path.
type serverMetrics struct {
	reg       *obs.Registry
	endpoints map[string]*endpointMetrics
	filter    *obs.Histogram // per-query filter-phase latency (/search)
	refine    *obs.Histogram // per-query refine-phase latency (/search and /knn)
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg, endpoints: make(map[string]*endpointMetrics, len(endpointNames))}

	for _, ep := range endpointNames {
		label := `endpoint="` + ep + `"`
		m.endpoints[ep] = &endpointMetrics{
			ok:        reg.Counter("twsim_http_requests_total", label+`,code="2xx"`, "HTTP requests served, by endpoint and status class."),
			clientErr: reg.Counter("twsim_http_requests_total", label+`,code="4xx"`, ""),
			serverErr: reg.Counter("twsim_http_requests_total", label+`,code="5xx"`, ""),
			latency:   reg.Histogram("twsim_http_request_duration_seconds", label, "HTTP request latency, by endpoint."),
		}
	}

	m.filter = reg.Histogram("twsim_query_filter_seconds", "", "Filter-phase latency (feature extraction + index range query) per /search.")
	m.refine = reg.Histogram("twsim_query_refine_seconds", "", "Refine-phase latency (candidate fetch + cascade + exact DTW) per /search and /knn.")

	// Query-work totals: scrape-time reads of the same atomics /stats
	// reports, so the conservation law
	// candidates = lb_kim + lb_paa + lb_keogh + lb_yi + lb_improved + corridor + dtw_calls
	// holds between the exported series exactly as it does per query.
	counterOf := func(v *atomic.Int64) func() float64 { return func() float64 { return float64(v.Load()) } }
	reg.CounterFunc("twsim_queries_total", "", "Similarity queries served (/search and /knn).", counterOf(&s.totals.searches))
	reg.CounterFunc("twsim_query_candidates_total", "", "Index candidates produced across all queries.", counterOf(&s.totals.candidates))
	reg.CounterFunc("twsim_query_results_total", "", "Query results returned across all queries.", counterOf(&s.totals.results))
	reg.CounterFunc("twsim_dtw_calls_total", "", "Exact DTW evaluations during refinement.", counterOf(&s.totals.dtwCalls))
	reg.CounterFunc("twsim_dtw_abandoned_total", "", "Dense DTW evaluations that early-abandoned (subset of dtw_calls).", counterOf(&s.totals.dtwAbandoned))
	reg.CounterFunc("twsim_lb_kim_pruned_total", "", "Candidates dismissed by cascade Tier 0 (LB_Kim on the stored index point).", counterOf(&s.totals.lbKimPruned))
	reg.CounterFunc("twsim_lb_paa_pruned_total", "", "Candidates dismissed by cascade Tier 0.5 (LB_PAA on the indexed segment envelope, before the sequence fetch).", counterOf(&s.totals.lbPAAPruned))
	reg.CounterFunc("twsim_lb_keogh_pruned_total", "", "Candidates dismissed by cascade Tier 1a (LB_Keogh envelope bound).", counterOf(&s.totals.lbKeoghPruned))
	reg.CounterFunc("twsim_lb_yi_pruned_total", "", "Candidates dismissed by cascade Tier 1b (two-sided Yi bound).", counterOf(&s.totals.lbYiPruned))
	reg.CounterFunc("twsim_lb_improved_pruned_total", "", "Candidates dismissed by cascade Tier 1c (Lemire's LB_Improved second pass; banded queries only).", counterOf(&s.totals.lbImprovedPruned))
	reg.CounterFunc("twsim_corridor_pruned_total", "", "Candidates dismissed by cascade Tiers 2-3 (sparse corridor DP).", counterOf(&s.totals.corridorPruned))
	reg.CounterFunc("twsim_knn_frontier_repushes_total", "", "k-NN candidates re-entering the walk frontier with an envelope-sharpened priority.", counterOf(&s.totals.knnRepushes))
	reg.CounterFunc("twsim_knn_envelope_cutoffs_total", "", "k-NN walks stopped on an envelope-raised key (the ordering tier ended the walk early).", counterOf(&s.totals.knnEnvCutoffs))

	// Database size gauges.
	reg.GaugeFunc("twsim_sequences", "", "Live sequences stored.", func() float64 { return float64(s.backend.Len()) })
	reg.GaugeFunc("twsim_data_bytes", "", "Logical bytes of stored sequence data.", func() float64 { return float64(s.backend.DataBytes()) })
	reg.GaugeFunc("twsim_index_pages", "", "Feature index size in pages.", func() float64 { return float64(s.backend.IndexPages()) })

	// Flat-engine snapshot/delta instrumentation: every collector snapshots
	// IndexEngineStats at scrape time. Under the Guttman engine the gauges
	// read 0 and the merge histogram stays empty; with shards the counters
	// sum (generation/delta entries across shards, merge observations
	// pooled).
	engine := func(sel func(core.IndexEngineStats) float64) func() float64 {
		return func() float64 { return sel(s.backend.IndexEngineStats()) }
	}
	reg.GaugeFunc("twsim_index_snapshot_generation", "", "Flat-engine snapshot generation (sum over shards; 0 under the Guttman engine).",
		engine(func(st core.IndexEngineStats) float64 { return float64(st.Generation) }))
	reg.GaugeFunc("twsim_index_delta_entries", "", "Flat-engine delta-overlay entries not yet merged into the packed snapshot (adds + tombstones, summed over shards).",
		engine(func(st core.IndexEngineStats) float64 { return float64(st.DeltaEntries) }))
	reg.CounterFunc("twsim_index_merges_total", "", "Flat-engine snapshot rebuilds (delta merged into a new packed slab and atomically swapped in).",
		engine(func(st core.IndexEngineStats) float64 { return float64(st.Merges) }))
	reg.GaugeFunc("twsim_index_mmap_bytes", "", "Flat-engine snapshot bytes served from a live file mapping (0 when heap-backed, summed over shards).",
		engine(func(st core.IndexEngineStats) float64 { return float64(st.MmapBytes) }))
	reg.HistogramFunc("twsim_index_merge_seconds", "", "Flat-engine snapshot merge latency (slab rebuild + atomic swap).",
		func() obs.HistogramData { return s.backend.IndexEngineStats().MergeHist })

	// Storage-layer counters: buffer pools and the decoded-sequence cache.
	// Each collector snapshots StorageStats at scrape time; snapshots are
	// weakly consistent (see twsim.StorageStats), which is fine for ratios.
	pool := func(sel func(twsim.StorageStats) float64) func() float64 {
		return func() float64 { return sel(s.backend.StorageStats()) }
	}
	for _, p := range []struct {
		name string
		get  func(twsim.StorageStats) pagefile.Stats
	}{
		{"data", func(st twsim.StorageStats) pagefile.Stats { return st.Data }},
		{"index", func(st twsim.StorageStats) pagefile.Stats { return st.Index }},
	} {
		get := p.get
		label := `pool="` + p.name + `"`
		reg.CounterFunc("twsim_pool_reads_total", label, "Logical page reads, by buffer pool.", pool(func(st twsim.StorageStats) float64 { return float64(get(st).Reads) }))
		reg.CounterFunc("twsim_pool_misses_total", label, "Page reads that went to the backend, by buffer pool.", pool(func(st twsim.StorageStats) float64 { return float64(get(st).Misses) }))
		reg.CounterFunc("twsim_pool_writes_total", label, "Physical page write-backs, by buffer pool.", pool(func(st twsim.StorageStats) float64 { return float64(get(st).Writes) }))
		reg.GaugeFunc("twsim_pool_hit_ratio", label, "Buffer pool hit ratio (1 - misses/reads).", pool(func(st twsim.StorageStats) float64 { return get(st).HitRatio() }))
	}
	reg.CounterFunc("twsim_seq_cache_hits_total", "", "Decoded-sequence cache hits.", pool(func(st twsim.StorageStats) float64 { return float64(st.Cache.Hits) }))
	reg.CounterFunc("twsim_seq_cache_misses_total", "", "Decoded-sequence cache misses.", pool(func(st twsim.StorageStats) float64 { return float64(st.Cache.Misses) }))
	reg.GaugeFunc("twsim_seq_cache_bytes", "", "Bytes resident in the decoded-sequence cache.", pool(func(st twsim.StorageStats) float64 { return float64(st.Cache.Bytes) }))
	reg.GaugeFunc("twsim_seq_cache_entries", "", "Sequences resident in the decoded-sequence cache.", pool(func(st twsim.StorageStats) float64 { return float64(st.Cache.Entries) }))
	reg.GaugeFunc("twsim_seq_cache_hit_ratio", "", "Decoded-sequence cache hit ratio.", pool(func(st twsim.StorageStats) float64 { return st.Cache.HitRatio() }))

	// Whole-query result cache: collectors snapshot ResultCacheStats at
	// scrape time (all series read 0 with the cache disabled).
	rc := func(sel func(core.ResultCacheStats) float64) func() float64 {
		return func() float64 { return sel(s.backend.ResultCacheStats()) }
	}
	reg.CounterFunc("twsim_result_cache_hits_total", "", "Queries answered from the result cache with zero index/DTW work.",
		rc(func(st core.ResultCacheStats) float64 { return float64(st.Hits) }))
	reg.CounterFunc("twsim_result_cache_misses_total", "", "Result cache lookups that fell through to the index.",
		rc(func(st core.ResultCacheStats) float64 { return float64(st.Misses) }))
	reg.CounterFunc("twsim_result_cache_evictions_total", "", "Result cache entries evicted to stay within the byte budget.",
		rc(func(st core.ResultCacheStats) float64 { return float64(st.Evictions) }))
	reg.CounterFunc("twsim_result_cache_invalidations_total", "", "Result cache entries dropped because a write advanced the database generation.",
		rc(func(st core.ResultCacheStats) float64 { return float64(st.Invalidations) }))
	reg.GaugeFunc("twsim_result_cache_bytes", "", "Bytes resident in the result cache.",
		rc(func(st core.ResultCacheStats) float64 { return float64(st.Bytes) }))
	reg.GaugeFunc("twsim_result_cache_entries", "", "Entries resident in the result cache.",
		rc(func(st core.ResultCacheStats) float64 { return float64(st.Entries) }))
	reg.GaugeFunc("twsim_result_cache_hit_ratio", "", "Result cache hit ratio.",
		rc(func(st core.ResultCacheStats) float64 { return st.HitRatio() }))

	// Admission-control outcomes (see Limits): shed at the queue (429),
	// abandoned on client disconnect (499), abandoned on the per-query
	// deadline (503).
	reg.CounterFunc("twsim_queries_shed_total", "", "Queries rejected at admission control with 429.", counterOf(&s.shed))
	reg.CounterFunc("twsim_queries_cancelled_total", "", "Queries abandoned because the client disconnected (499).", counterOf(&s.cancelled))
	reg.CounterFunc("twsim_queries_deadline_exceeded_total", "", "Queries abandoned on the per-query deadline (503).", counterOf(&s.deadlineExceeded))
	reg.GaugeFunc("twsim_queries_queued", "", "Queries currently waiting for an admission slot.", counterOf(&s.queued))

	// Write-ahead-log counters: scrape-time snapshots of the log's own
	// accounting (all zero with the WAL disabled; summed over shards for a
	// sharded backend). records/fsyncs is the group-commit batching factor.
	wal := func(sel func(twsim.WALStats) float64) func() float64 {
		return func() float64 { return sel(s.backend.WALStats()) }
	}
	reg.CounterFunc("twsim_wal_records_total", "", "Mutations appended to the write-ahead log.",
		wal(func(st twsim.WALStats) float64 { return float64(st.Records) }))
	reg.CounterFunc("twsim_wal_fsyncs_total", "", "WAL fsync batches (group commit makes this grow slower than records under concurrency).",
		wal(func(st twsim.WALStats) float64 { return float64(st.Fsyncs) }))
	reg.CounterFunc("twsim_wal_bytes_total", "", "Bytes appended to the write-ahead log.",
		wal(func(st twsim.WALStats) float64 { return float64(st.Bytes) }))
	reg.CounterFunc("twsim_wal_checkpoints_total", "", "WAL checkpoints (log truncations riding a full flush).",
		wal(func(st twsim.WALStats) float64 { return float64(st.Checkpoints) }))
	reg.GaugeFunc("twsim_wal_file_bytes", "", "Current WAL file size (replay length bound).",
		wal(func(st twsim.WALStats) float64 { return float64(st.FileBytes) }))

	// Replication lag, exported only while the server runs as a replica
	// (the gauges read 0 on a primary or standalone server).
	repl := func(sel func(ReplicaLag) float64) func() float64 {
		return func() float64 {
			rep := s.replica.Load()
			if rep == nil {
				return 0
			}
			return sel(rep.Lag())
		}
	}
	reg.GaugeFunc("twsim_replica_lag_seconds", "", "Seconds since this replica was last fully caught up with the primary (0 when caught up).",
		repl(func(l ReplicaLag) float64 { return l.Seconds }))
	reg.GaugeFunc("twsim_replica_generation_delta", "", "Durable primary mutations not yet applied on this replica.",
		repl(func(l ReplicaLag) float64 { return float64(l.GenerationDelta) }))
	reg.GaugeFunc("twsim_replica_applied_seq", "", "Last primary WAL sequence number applied on this replica.",
		repl(func(l ReplicaLag) float64 { return float64(l.AppliedSeq) }))
	reg.CounterFunc("twsim_replica_resyncs_total", "", "Snapshot re-syncs forced by primary WAL compaction.",
		repl(func(l ReplicaLag) float64 { return float64(l.Resyncs) }))

	return m
}

// observeQuery records one answered query's phase timings into the latency
// histograms (filter only when the query had a distinct filter phase; k-NN
// walks report refine time only).
func (m *serverMetrics) observeQuery(st twsim.QueryStats, hasFilterPhase bool) {
	if hasFilterPhase {
		m.filter.Observe(st.FilterWall)
	}
	m.refine.Observe(st.RefineWall)
}

// statusRecorder captures the status code a handler wrote so the
// instrumentation can classify the request.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the endpoint's request counter and
// latency histogram. The observation is two atomic adds plus one counter
// increment; the recorder is the only per-request allocation.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		em.latency.Observe(time.Since(start))
		switch {
		case rec.status >= 500:
			em.serverErr.Inc()
		case rec.status >= 400:
			em.clientErr.Inc()
		default:
			em.ok.Inc()
		}
	}
}

// handleMetrics serves the Prometheus text exposition of every registered
// instrument.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WriteText(w)
}
