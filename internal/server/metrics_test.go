package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	twsim "repro"
	"repro/internal/obs"
)

// newMetricsServer boots an httptest server over the given backend and
// returns a scraper along with the usual client.
func newMetricsServer(t *testing.T, db twsim.Backend) (*httptest.Server, *Client) {
	t.Helper()
	srv := NewBackend(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return ts, NewClient(ts.URL, ts.Client())
}

func scrape(t *testing.T, ts *httptest.Server) obs.Samples {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return samples
}

func mustValue(t *testing.T, s obs.Samples, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := s.Value(name, labels)
	if !ok {
		t.Fatalf("series %s%v missing from /metrics", name, labels)
	}
	return v
}

// randomWalks returns n random-walk sequences of varying length.
func randomWalks(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, 8+rng.Intn(12))
		s[0] = rng.Float64() * 4
		for j := 1; j < len(s); j++ {
			s[j] = s[j-1] + rng.Float64()*0.6 - 0.3
		}
		out[i] = s
	}
	return out
}

// metricsBackends enumerates the engines × refine-worker budgets the
// conservation tests must hold on.
func metricsBackends(t *testing.T) []struct {
	name string
	open func(t *testing.T) twsim.Backend
} {
	t.Helper()
	var out []struct {
		name string
		open func(t *testing.T) twsim.Backend
	}
	for _, workers := range []int{1, 4} {
		w := workers
		out = append(out,
			struct {
				name string
				open func(t *testing.T) twsim.Backend
			}{fmt.Sprintf("single/workers=%d", w), func(t *testing.T) twsim.Backend {
				db, err := twsim.OpenMem(twsim.Options{RefineWorkers: w})
				if err != nil {
					t.Fatal(err)
				}
				return db
			}},
			struct {
				name string
				open func(t *testing.T) twsim.Backend
			}{fmt.Sprintf("sharded/workers=%d", w), func(t *testing.T) twsim.Backend {
				db, err := twsim.OpenMemSharded(twsim.ShardedOptions{Options: twsim.Options{RefineWorkers: w}, Shards: 3})
				if err != nil {
					t.Fatal(err)
				}
				return db
			}},
		)
	}
	return out
}

// TestMetricsExposition: /metrics serves parseable Prometheus text with the
// per-endpoint request counters, latency histograms, and query counters
// reflecting the traffic actually served.
func TestMetricsExposition(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts, c := newMetricsServer(t, db)
	rng := rand.New(rand.NewSource(7))
	if _, err := c.AddBatch(randomWalks(rng, 20)); err != nil {
		t.Fatal(err)
	}
	q := randomWalks(rng, 1)[0]
	if _, err := c.Search(q, 0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NearestK(q, 3); err != nil {
		t.Fatal(err)
	}
	// One client error: the empty query must land in the 4xx counter.
	if _, err := c.Search(nil, 1); err == nil {
		t.Fatal("empty query unexpectedly accepted")
	}

	s := scrape(t, ts)
	if got := mustValue(t, s, "twsim_queries_total", nil); got != 2 {
		t.Errorf("twsim_queries_total = %g, want 2", got)
	}
	if got := mustValue(t, s, "twsim_http_requests_total", map[string]string{"endpoint": "search", "code": "2xx"}); got != 1 {
		t.Errorf(`search 2xx = %g, want 1`, got)
	}
	if got := mustValue(t, s, "twsim_http_requests_total", map[string]string{"endpoint": "search", "code": "4xx"}); got != 1 {
		t.Errorf(`search 4xx = %g, want 1`, got)
	}
	if got := mustValue(t, s, "twsim_http_requests_total", map[string]string{"endpoint": "knn", "code": "2xx"}); got != 1 {
		t.Errorf(`knn 2xx = %g, want 1`, got)
	}
	if got := mustValue(t, s, "twsim_http_request_duration_seconds_count", map[string]string{"endpoint": "search"}); got != 2 {
		t.Errorf("search latency count = %g, want 2", got)
	}
	if got := mustValue(t, s, "twsim_query_filter_seconds_count", nil); got != 1 {
		t.Errorf("filter-phase observations = %g, want 1 (/search only)", got)
	}
	if got := mustValue(t, s, "twsim_query_refine_seconds_count", nil); got != 2 {
		t.Errorf("refine-phase observations = %g, want 2 (/search + /knn)", got)
	}
	if got := mustValue(t, s, "twsim_sequences", nil); got != 20 {
		t.Errorf("twsim_sequences = %g, want 20", got)
	}
	for _, name := range []string{
		"twsim_data_bytes", "twsim_index_pages",
		"twsim_seq_cache_hits_total", "twsim_seq_cache_misses_total", "twsim_seq_cache_hit_ratio",
	} {
		mustValue(t, s, name, nil)
	}
	for _, pool := range []string{"data", "index"} {
		mustValue(t, s, "twsim_pool_reads_total", map[string]string{"pool": pool})
		mustValue(t, s, "twsim_pool_hit_ratio", map[string]string{"pool": pool})
	}
}

// TestMetricsConservationLaw: across mixed /search + /knn traffic, the
// exported counters obey candidates = Σ per-tier pruned + dtw_calls, on
// both engines at serial and parallel refinement budgets — the scrape-time
// view of the same ledger TestParallelRefineOracle checks per query.
func TestMetricsConservationLaw(t *testing.T) {
	for _, be := range metricsBackends(t) {
		t.Run(be.name, func(t *testing.T) {
			ts, c := newMetricsServer(t, be.open(t))
			rng := rand.New(rand.NewSource(11))
			if _, err := c.AddBatch(randomWalks(rng, 60)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				q := randomWalks(rng, 1)[0]
				if _, err := c.Search(q, 0.2+rng.Float64()); err != nil {
					t.Fatal(err)
				}
				if _, err := c.NearestK(q, 1+rng.Intn(5)); err != nil {
					t.Fatal(err)
				}
			}

			s := scrape(t, ts)
			cand := mustValue(t, s, "twsim_query_candidates_total", nil)
			sum := mustValue(t, s, "twsim_lb_kim_pruned_total", nil) +
				mustValue(t, s, "twsim_lb_paa_pruned_total", nil) +
				mustValue(t, s, "twsim_lb_keogh_pruned_total", nil) +
				mustValue(t, s, "twsim_lb_yi_pruned_total", nil) +
				mustValue(t, s, "twsim_lb_improved_pruned_total", nil) +
				mustValue(t, s, "twsim_corridor_pruned_total", nil) +
				mustValue(t, s, "twsim_dtw_calls_total", nil)
			if cand != sum {
				t.Errorf("conservation law violated: candidates=%g, pruned+dtw=%g", cand, sum)
			}
			if cand == 0 {
				t.Error("no candidates counted; the workload exercised nothing")
			}
			if got := mustValue(t, s, "twsim_queries_total", nil); got != 12 {
				t.Errorf("twsim_queries_total = %g, want 12", got)
			}
		})
	}
}

// TestMetricsScrapeStorm hammers /metrics from many goroutines while mixed
// write/search/k-NN traffic runs — the race detector (make race) watches
// the lock-free counters and scrape-time collectors; afterwards the
// exposition must still parse and balance.
func TestMetricsScrapeStorm(t *testing.T) {
	db, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts, c := newMetricsServer(t, db)
	rng := rand.New(rand.NewSource(13))
	if _, err := c.AddBatch(randomWalks(rng, 30)); err != nil {
		t.Fatal(err)
	}
	queries := randomWalks(rng, 8)

	const scrapers, drivers, iters = 4, 4, 15
	var wg sync.WaitGroup
	errCh := make(chan error, scrapers+drivers)
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if _, err := obs.ParseText(body); err != nil {
					errCh <- fmt.Errorf("mid-traffic exposition does not parse: %w", err)
					return
				}
			}
		}()
	}
	for g := 0; g < drivers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g*iters+i)%len(queries)]
				if _, err := c.Search(q, 0.5); err != nil {
					errCh <- err
					return
				}
				if _, err := c.NearestK(q, 2); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Add(q); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	s := scrape(t, ts)
	cand := mustValue(t, s, "twsim_query_candidates_total", nil)
	sum := mustValue(t, s, "twsim_lb_kim_pruned_total", nil) +
		mustValue(t, s, "twsim_lb_paa_pruned_total", nil) +
		mustValue(t, s, "twsim_lb_keogh_pruned_total", nil) +
		mustValue(t, s, "twsim_lb_yi_pruned_total", nil) +
		mustValue(t, s, "twsim_lb_improved_pruned_total", nil) +
		mustValue(t, s, "twsim_corridor_pruned_total", nil) +
		mustValue(t, s, "twsim_dtw_calls_total", nil)
	if cand != sum {
		t.Errorf("conservation law violated after the storm: candidates=%g, pruned+dtw=%g", cand, sum)
	}
	if got := mustValue(t, s, "twsim_queries_total", nil); got != drivers*iters*2 {
		t.Errorf("twsim_queries_total = %g, want %d", got, drivers*iters*2)
	}
}

// TestNonFiniteHTTP400: numbers that would decode to ±Inf (1e999 overflows
// float64) are rejected with 400 at every write/query endpoint — the wire
// can't even spell NaN in JSON, and the backend validation (ErrNonFinite)
// backstops any path that slips a non-finite value through decoding.
func TestNonFiniteHTTP400(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts, c := newMetricsServer(t, db)
	if _, err := c.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ path, body string }{
		{"/sequences", `{"values": [1, 1e999]}`},
		{"/sequences/batch", `{"sequences": [[1,2],[1e999]]}`},
		{"/search", `{"query": [1e999], "epsilon": 1}`},
		{"/knn", `{"query": [1e999], "k": 1}`},
	} {
		resp, err := ts.Client().Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with overflow value: %s, want 400", tc.path, resp.Status)
		}
	}
	if db.Len() != 1 {
		t.Errorf("rejected writes changed Len to %d", db.Len())
	}
}

// TestSearchResponseRequestID: /search and /knn responses carry distinct
// non-zero request IDs — the join key for the slow-query log.
func TestSearchResponseRequestID(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c := newMetricsServer(t, db)
	rng := rand.New(rand.NewSource(17))
	if _, err := c.AddBatch(randomWalks(rng, 10)); err != nil {
		t.Fatal(err)
	}
	q := randomWalks(rng, 1)[0]
	res1, err := c.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res1.RequestID == 0 || res2.RequestID == 0 {
		t.Fatalf("request IDs not stamped: %d, %d", res1.RequestID, res2.RequestID)
	}
	if res1.RequestID == res2.RequestID {
		t.Fatalf("request ID %d reused", res1.RequestID)
	}
}
