package server

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	twsim "repro"
)

func newBandServer(t *testing.T, opts twsim.Options) *Client {
	t.Helper()
	db, err := twsim.OpenMem(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return NewClient(ts.URL, ts.Client())
}

func bandWalks(seed int64, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, 16)
		s[0] = rng.Float64() * 4
		for j := 1; j < len(s); j++ {
			s[j] = s[j-1] + rng.Float64()*0.4 - 0.2
		}
		out[i] = s
	}
	return out
}

// TestSearchBandRequestField: the "band" field on /search and /knn selects
// the banded distance per request — explicit values override the server's
// default, an omitted field falls back to it, and the answers agree with
// the engine called directly.
func TestSearchBandRequestField(t *testing.T) {
	data := bandWalks(11, 40)
	c := newBandServer(t, twsim.Options{})
	if _, err := c.AddBatchIDs(data); err != nil {
		t.Fatal(err)
	}
	oracle, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if _, err := oracle.AddBatch(data); err != nil {
		t.Fatal(err)
	}

	q, eps, band := data[5], 0.6, 3
	want, err := oracle.SearchBand(q, eps, band)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SearchBand(q, eps, band)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("banded /search: %d matches, engine %d", len(got.Matches), len(want.Matches))
	}
	for i, m := range want.Matches {
		if got.Matches[i].ID != uint32(m.ID) || got.Matches[i].Dist != m.Dist {
			t.Fatalf("banded /search match %d: %+v, engine %+v", i, got.Matches[i], m)
		}
	}

	// Explicit band 0 must agree with the omitted field on a default-band-0
	// server (both unconstrained).
	plain, err := c.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := c.SearchBand(q, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Matches) != len(zero.Matches) {
		t.Fatalf("band 0 (%d matches) != omitted (%d matches)", len(zero.Matches), len(plain.Matches))
	}

	// Banded k-NN through the API agrees with the engine.
	wantK, err := oracle.NearestKBand(q, 5, band)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := c.NearestKBand(q, 5, band)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotK) != len(wantK) {
		t.Fatalf("banded /knn: %d matches, engine %d", len(gotK), len(wantK))
	}
	for i, m := range wantK {
		if gotK[i].ID != uint32(m.ID) || gotK[i].Dist != m.Dist {
			t.Fatalf("banded /knn rank %d: %+v, engine %+v", i, gotK[i], m)
		}
	}
}

// TestServerDefaultBand: a server over a database opened with Options.Band
// answers band-omitted requests under that default.
func TestServerDefaultBand(t *testing.T) {
	data := bandWalks(13, 40)
	const band = 2
	c := newBandServer(t, twsim.Options{Band: band})
	if _, err := c.AddBatchIDs(data); err != nil {
		t.Fatal(err)
	}
	oracle, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if _, err := oracle.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	q, eps := data[9], 0.6
	want, err := oracle.SearchBand(q, eps, band)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Search(q, eps) // band omitted → server default
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("default-band server: %d matches, engine band=%d gives %d",
			len(got.Matches), band, len(want.Matches))
	}
	for i, m := range want.Matches {
		if got.Matches[i].ID != uint32(m.ID) || got.Matches[i].Dist != m.Dist {
			t.Fatalf("default-band match %d: %+v, engine %+v", i, got.Matches[i], m)
		}
	}
}

// TestNegativeBandRejected400: a negative band half-width on /search or
// /knn is a client error — 400 with a named reason, never a query under an
// undefined distance.
func TestNegativeBandRejected400(t *testing.T) {
	c := newBandServer(t, twsim.Options{})
	if _, err := c.Add([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SearchBand([]float64{1, 2, 3}, 0.5, -1); err == nil {
		t.Error("negative band on /search succeeded, want 400")
	} else if !strings.Contains(err.Error(), "negative band") || !strings.Contains(err.Error(), "400") {
		t.Errorf("negative band on /search: error %q, want a 400 naming the band", err)
	}
	if _, err := c.NearestKBand([]float64{1, 2, 3}, 2, -5); err == nil {
		t.Error("negative band on /knn succeeded, want 400")
	} else if !strings.Contains(err.Error(), "negative band") || !strings.Contains(err.Error(), "400") {
		t.Errorf("negative band on /knn: error %q, want a 400 naming the band", err)
	}
}
