package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	twsim "repro"
)

func newTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return srv, NewClient(ts.URL, ts.Client())
}

func TestHealthAndStats(t *testing.T) {
	_, c := newTestServer(t)
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	n, bytes, pages, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || bytes != 0 || pages == 0 {
		t.Errorf("fresh stats = %d, %d, %d", n, bytes, pages)
	}
}

func TestAddGetSearchRoundTrip(t *testing.T) {
	_, c := newTestServer(t)
	s := []float64{20, 21, 21, 20, 20, 23, 23, 23}
	id, err := c.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("Get = %v", got)
	}
	res, err := c.Search([]float64{20, 20, 21, 20, 23}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ID != id || res.Matches[0].Dist != 0 {
		t.Fatalf("Search = %+v", res)
	}
	if res.Stats.Results != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestBatchKNNRemove(t *testing.T) {
	_, c := newTestServer(t)
	rng := rand.New(rand.NewSource(1))
	batch := make([][]float64, 30)
	for i := range batch {
		s := make([]float64, 10+rng.Intn(10))
		s[0] = rng.Float64() * 10
		for j := 1; j < len(s); j++ {
			s[j] = s[j-1] + rng.Float64()*0.2 - 0.1
		}
		batch[i] = s
	}
	first, err := c.AddBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Errorf("first id = %d", first)
	}
	nn, err := c.NearestK(batch[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 || nn[0].ID != 7 || nn[0].Dist != 0 {
		t.Fatalf("NearestK = %+v", nn)
	}
	removed, err := c.Remove(7)
	if err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	removed, err = c.Remove(7)
	if err != nil || removed {
		t.Fatalf("second Remove = %v, %v", removed, err)
	}
	if _, err := c.Get(7); err == nil {
		t.Error("Get of removed id succeeded")
	}
	n, _, _, err := c.Stats()
	if err != nil || n != 29 {
		t.Errorf("Stats after remove = %d, %v", n, err)
	}
}

func TestSubseqEndpoints(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.SearchSubsequences([]float64{1, 2}, 1); err == nil {
		t.Error("subseq search before build succeeded")
	}
	if _, err := c.Add([]float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	windows, err := c.BuildSubseqIndex([]int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if windows != 6 {
		t.Errorf("windows = %d, want 6", windows)
	}
	matches, err := c.SearchSubsequences([]float64{3, 4, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Offset != 2 || matches[0].Len != 3 {
		t.Fatalf("subseq matches = %+v", matches)
	}
}

func TestErrorPaths(t *testing.T) {
	_, c := newTestServer(t)
	// Empty sequence rejected.
	if _, err := c.Add(nil); err == nil {
		t.Error("Add(nil) succeeded")
	}
	// Negative epsilon rejected.
	if _, err := c.Add([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search([]float64{1}, -1); err == nil {
		t.Error("negative epsilon accepted")
	}
	// Unknown id.
	if _, err := c.Get(99); err == nil {
		t.Error("Get(99) succeeded")
	}
	// Negative k.
	if _, err := c.NearestK([]float64{1}, -1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestHTTPLevelValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Wrong method.
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/search", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d", resp.StatusCode)
	}
	// Unknown field.
	resp, err = http.Post(ts.URL+"/search", "application/json",
		strings.NewReader(`{"query":[1],"epsilon":1,"bogus":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field = %d", resp.StatusCode)
	}
	// Trailing garbage.
	resp, err = http.Post(ts.URL+"/search", "application/json",
		strings.NewReader(`{"query":[1],"epsilon":1}{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing garbage = %d", resp.StatusCode)
	}
	// Bad id in path.
	resp, err = http.Get(ts.URL + "/sequences/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id = %d", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, c := newTestServer(t)
	rng := rand.New(rand.NewSource(2))
	seed := make([][]float64, 50)
	for i := range seed {
		s := make([]float64, 12)
		s[0] = rng.Float64() * 10
		for j := 1; j < len(s); j++ {
			s[j] = s[j-1] + rng.Float64()*0.2 - 0.1
		}
		seed[i] = s
	}
	if _, err := c.AddBatch(seed); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 12)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := c.Search(seed[(g*7+i)%50], 0.5); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := c.NearestK(seed[(g*3+i)%50], 2); err != nil {
						errCh <- err
						return
					}
				default:
					if _, err := c.Add(seed[(g+i)%50]); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	n, _, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if n <= 50 {
		t.Errorf("concurrent adds lost: %d sequences", n)
	}
}
