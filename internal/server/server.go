// Package server exposes a twsim database over HTTP with a JSON API — the
// deployment form a downstream user runs (cmd/twsimd) when the library is
// embedded in a service rather than a process. Endpoints:
//
//	GET    /healthz                       liveness probe
//	GET    /stats                         database statistics
//	POST   /sequences                     {"values": [...]} -> {"id": n}
//	POST   /sequences/batch               {"sequences": [[...], ...]} -> {"first_id": n, "count": k}
//	GET    /sequences/{id}                -> {"id": n, "values": [...]}
//	DELETE /sequences/{id}                -> {"removed": bool}
//	POST   /search                        {"query": [...], "epsilon": e} -> matches + stats
//	POST   /knn                           {"query": [...], "k": n} -> matches
//	POST   /subseq/build                  {"window_lens": [...], "step": n} -> {"windows": n}
//	POST   /subseq/search                 {"query": [...], "epsilon": e} -> window matches
//
// Writes (POST/DELETE on sequences) are serialized; searches run
// concurrently. Every error returns JSON {"error": "..."} with an
// appropriate status code.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	twsim "repro"
)

// MaxBodyBytes bounds request bodies to keep a misbehaving client from
// exhausting memory (16 MiB ≈ a 2M-element sequence).
const MaxBodyBytes = 16 << 20

// Server is an http.Handler serving one twsim.DB.
type Server struct {
	mu     sync.RWMutex // writers: Add/Remove; readers: everything else
	db     *twsim.DB
	subseq *twsim.SubseqIndex // built on demand via /subseq/build
	mux    *http.ServeMux
}

// New wraps db in a Server. The Server assumes ownership of queries but
// not of the database lifecycle: callers still Close the db.
func New(db *twsim.DB) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/sequences", s.handleSequences)
	s.mux.HandleFunc("/sequences/", s.handleSequenceByID)
	s.mux.HandleFunc("/sequences/batch", s.handleBatch)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/knn", s.handleKNN)
	s.mux.HandleFunc("/subseq/build", s.handleSubseqBuild)
	s.mux.HandleFunc("/subseq/search", s.handleSubseqSearch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// ---- wire types ----

// MatchJSON is one whole-matching result on the wire.
type MatchJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

// SubMatchJSON is one subsequence result on the wire.
type SubMatchJSON struct {
	ID     uint32  `json:"id"`
	Offset int     `json:"offset"`
	Len    int     `json:"len"`
	Dist   float64 `json:"dist"`
}

// StatsJSON summarizes per-query work on the wire.
type StatsJSON struct {
	Candidates int   `json:"candidates"`
	Results    int   `json:"results"`
	DTWCalls   int   `json:"dtw_calls"`
	WallMicros int64 `json:"wall_us"`
}

// SearchResponse is the /search reply.
type SearchResponse struct {
	Matches []MatchJSON `json:"matches"`
	Stats   StatsJSON   `json:"stats"`
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.db.LastRepair()
	writeJSON(w, http.StatusOK, map[string]any{
		"sequences":   s.db.Len(),
		"data_bytes":  s.db.DataBytes(),
		"index_pages": s.db.IndexPages(),
		"repair": map[string]any{
			"repaired":           rs.Repaired(),
			"rebuilt":            rs.Rebuilt,
			"orphans_reindexed":  rs.Orphans,
			"dangling_removed":   rs.Dangling,
			"mismatched_rekeyed": rs.Mismatched,
		},
	})
}

func (s *Server) handleSequences(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Values []float64 `json:"values"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	id, err := s.db.Add(req.Values)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": uint32(id)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Sequences [][]float64 `json:"sequences"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	first, err := s.db.AddAll(req.Sequences)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"first_id": uint32(first),
		"count":    len(req.Sequences),
	})
}

func (s *Server) handleSequenceByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/sequences/")
	if idStr == "batch" {
		s.handleBatch(w, r)
		return
	}
	id64, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid id %q", idStr))
		return
	}
	id := twsim.ID(id64)
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		values, err := s.db.Get(id)
		s.mu.RUnlock()
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": uint32(id), "values": values})
	case http.MethodDelete:
		s.mu.Lock()
		removed, err := s.db.Remove(id)
		s.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": removed})
	default:
		methodNotAllowed(w)
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query   []float64 `json:"query"`
		Epsilon float64   `json:"epsilon"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.RLock()
	res, err := s.db.Search(req.Query, req.Epsilon)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, toSearchResponse(res))
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query []float64 `json:"query"`
		K     int       `json:"k"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, errors.New("k must be non-negative"))
		return
	}
	s.mu.RLock()
	matches, err := s.db.NearestK(req.Query, req.K)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]MatchJSON, len(matches))
	for i, m := range matches {
		out[i] = MatchJSON{ID: uint32(m.ID), Dist: m.Dist}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

func (s *Server) handleSubseqBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		WindowLens []int `json:"window_lens"`
		Step       int   `json:"step"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.db.BuildSubseqIndex(req.WindowLens, req.Step)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.subseq != nil {
		s.subseq.Close()
	}
	s.subseq = idx
	writeJSON(w, http.StatusCreated, map[string]int{"windows": idx.NumWindows()})
}

func (s *Server) handleSubseqSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query   []float64 `json:"query"`
		Epsilon float64   `json:"epsilon"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	s.mu.RLock()
	idx := s.subseq
	if idx == nil {
		s.mu.RUnlock()
		writeError(w, http.StatusConflict, errors.New("no subsequence index built; POST /subseq/build first"))
		return
	}
	res, err := idx.Search(req.Query, req.Epsilon)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]SubMatchJSON, len(res.Matches))
	for i, m := range res.Matches {
		out[i] = SubMatchJSON{ID: uint32(m.ID), Offset: m.Offset, Len: m.Len, Dist: m.Dist}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

// Close releases server-held resources (the subsequence index, if built).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subseq != nil {
		err := s.subseq.Close()
		s.subseq = nil
		return err
	}
	return nil
}

// ---- helpers ----

func toSearchResponse(res *twsim.Result) SearchResponse {
	out := SearchResponse{
		Matches: make([]MatchJSON, len(res.Matches)),
		Stats: StatsJSON{
			Candidates: res.Stats.Candidates,
			Results:    res.Stats.Results,
			DTWCalls:   res.Stats.DTWCalls,
			WallMicros: res.Stats.Wall.Microseconds(),
		},
	}
	for i, m := range res.Matches {
		out.Matches[i] = MatchJSON{ID: uint32(m.ID), Dist: m.Dist}
	}
	return out
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	// Reject trailing garbage.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func methodNotAllowed(w http.ResponseWriter) {
	writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
}
