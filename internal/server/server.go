// Package server exposes a twsim database over HTTP with a JSON API — the
// deployment form a downstream user runs (cmd/twsimd) when the library is
// embedded in a service rather than a process. Endpoints:
//
//	GET    /healthz                       liveness probe
//	GET    /metrics                       Prometheus text exposition
//	GET    /stats                         database statistics
//	POST   /sequences                     {"values": [...]} -> {"id": n}
//	POST   /sequences/batch               {"sequences": [[...], ...]} -> {"first_id": n, "count": k, "ids": [...]}
//	GET    /sequences/{id}                -> {"id": n, "values": [...]}
//	DELETE /sequences/{id}                -> {"removed": bool}
//	POST   /search                        {"query": [...], "epsilon": e, "band": r?} -> matches + stats
//	POST   /knn                           {"query": [...], "k": n, "band": r?} -> matches
//	POST   /subseq/build                  {"window_lens": [...], "step": n} -> {"windows": n}
//	POST   /subseq/search                 {"query": [...], "epsilon": e} -> window matches
//
// The server runs against any twsim.Backend. With a single *twsim.DB the
// write path is serialized behind one lock (the library's concurrency
// rule); with a *twsim.ShardedDB writes lock per shard inside the engine,
// so POSTs to different shards proceed concurrently, and /stats adds a
// per-shard breakdown ("shards": [{id, sequences, pages, repair, queries},
// ...]) for spotting skew. /stats always carries "query_totals" — the
// cumulative /search work counters including the refinement cascade's
// per-tier prune counts, which each /search response also reports for its
// own query. The subsequence endpoints require a single-database
// backend and answer 501 otherwise. Every error returns JSON
// {"error": "..."} with an appropriate status code; queries containing NaN
// or ±Inf are rejected with 400 (twsim.ErrNonFinite).
//
// Observability: every endpoint is instrumented with request counters (by
// status class) and latency histograms, exported together with the query
// totals, cascade prune counters, buffer pool and sequence-cache counters
// on GET /metrics in the Prometheus text format (see metrics.go for the
// catalog). /search and /knn responses carry the request_id the slow-query
// log records.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	twsim "repro"
	"repro/internal/core"
	"repro/internal/pagefile"
)

// MaxBodyBytes bounds request bodies to keep a misbehaving client from
// exhausting memory (16 MiB ≈ a 2M-element sequence).
const MaxBodyBytes = 16 << 20

// Server is an http.Handler serving one twsim.Backend.
type Server struct {
	backend twsim.Backend
	// db and locked are non-nil only for single-database backends: db
	// powers the subsequence endpoints, locked is the write serialization
	// wrapped around it (a ShardedDB synchronizes internally instead).
	db      *twsim.DB
	locked  *lockedDB
	smu     sync.RWMutex       // guards subseq
	subseq  *twsim.SubseqIndex // built on demand via /subseq/build
	totals  queryTotals        // cumulative /search + /knn work since the server started
	metrics *serverMetrics     // obs registry + per-endpoint instruments (/metrics)
	mux     *http.ServeMux
}

// queryTotals accumulates the work counters of every /search and /knn the
// server has answered, lock-free so concurrent searches never serialize on
// accounting. /stats reports the snapshot as "query_totals" and /metrics
// exports the same atomics as twsim_* counters, giving operators the
// cascade's prune rates in production without scraping per-query responses.
// The counters satisfy the conservation law
// candidates = lb_kim + lb_paa + lb_keogh + lb_yi + lb_improved + corridor + dtw_calls
// (dangling-entry skips aside), which the metrics tests assert.
type queryTotals struct {
	searches, candidates, results                       atomic.Int64
	dtwCalls, dtwAbandoned                              atomic.Int64
	lbKimPruned, lbPAAPruned, lbKeoghPruned, lbYiPruned atomic.Int64
	lbImprovedPruned, corridorPruned                    atomic.Int64
	knnRepushes, knnEnvCutoffs                          atomic.Int64
}

func (t *queryTotals) accumulate(st twsim.QueryStats) {
	t.searches.Add(1)
	t.candidates.Add(int64(st.Candidates))
	t.results.Add(int64(st.Results))
	t.dtwCalls.Add(int64(st.DTWCalls))
	t.dtwAbandoned.Add(int64(st.DTWAbandoned))
	t.lbKimPruned.Add(int64(st.LBKimPruned))
	t.lbPAAPruned.Add(int64(st.LBPAAPruned))
	t.lbKeoghPruned.Add(int64(st.LBKeoghPruned))
	t.lbYiPruned.Add(int64(st.LBYiPruned))
	t.lbImprovedPruned.Add(int64(st.LBImprovedPruned))
	t.corridorPruned.Add(int64(st.CorridorPruned))
	t.knnRepushes.Add(int64(st.KNNRepushes))
	t.knnEnvCutoffs.Add(int64(st.KNNEnvCutoffs))
}

func (t *queryTotals) json() map[string]any {
	return map[string]any{
		"searches":             t.searches.Load(),
		"candidates":           t.candidates.Load(),
		"results":              t.results.Load(),
		"dtw_calls":            t.dtwCalls.Load(),
		"dtw_abandoned":        t.dtwAbandoned.Load(),
		"lb_kim_pruned":        t.lbKimPruned.Load(),
		"lb_paa_pruned":        t.lbPAAPruned.Load(),
		"lb_keogh_pruned":      t.lbKeoghPruned.Load(),
		"lb_yi_pruned":         t.lbYiPruned.Load(),
		"lb_improved_pruned":   t.lbImprovedPruned.Load(),
		"corridor_pruned":      t.corridorPruned.Load(),
		"knn_repushes":         t.knnRepushes.Load(),
		"knn_envelope_cutoffs": t.knnEnvCutoffs.Load(),
	}
}

// lockedDB adapts a *twsim.DB to the Backend concurrency contract the
// server relies on: readers share, writers exclude everything.
type lockedDB struct {
	mu sync.RWMutex
	db *twsim.DB
}

func (l *lockedDB) Add(values []float64) (twsim.ID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.db.Add(values)
}

func (l *lockedDB) AddBatch(values [][]float64) ([]twsim.ID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.db.AddBatch(values)
}

func (l *lockedDB) Remove(id twsim.ID) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.db.Remove(id)
}

func (l *lockedDB) Get(id twsim.ID) ([]float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Get(id)
}

func (l *lockedDB) Search(query []float64, epsilon float64) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Search(query, epsilon)
}

func (l *lockedDB) SearchBand(query []float64, epsilon float64, band int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchBand(query, epsilon, band)
}

func (l *lockedDB) NearestK(query []float64, k int) ([]twsim.Match, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestK(query, k)
}

func (l *lockedDB) NearestKBand(query []float64, k, band int) ([]twsim.Match, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestKBand(query, k, band)
}

func (l *lockedDB) NearestKStats(query []float64, k int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestKStats(query, k)
}

func (l *lockedDB) NearestKStatsBand(query []float64, k, band int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestKStatsBand(query, k, band)
}

func (l *lockedDB) SearchBatch(queries [][]float64, epsilon float64, parallelism int) ([]*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchBatch(queries, epsilon, parallelism)
}

func (l *lockedDB) SearchBatchBand(queries [][]float64, epsilon float64, band, parallelism int) ([]*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchBatchBand(queries, epsilon, band, parallelism)
}

func (l *lockedDB) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Len()
}

func (l *lockedDB) DataBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.DataBytes()
}

func (l *lockedDB) IndexPages() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.IndexPages()
}

func (l *lockedDB) LastRepair() twsim.RepairStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.LastRepair()
}

func (l *lockedDB) StorageStats() twsim.StorageStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.StorageStats()
}

func (l *lockedDB) IndexEngineStats() core.IndexEngineStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.IndexEngineStats()
}

func (l *lockedDB) OpenDiagnostics() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.OpenDiagnostics()
}

func (l *lockedDB) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Verify()
}

func (l *lockedDB) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.db.Flush()
}

func (l *lockedDB) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.db.Close()
}

// New wraps a single database in a Server, serializing its writers behind
// one lock. The Server assumes ownership of queries but not of the
// database lifecycle: callers still Close the db.
func New(db *twsim.DB) *Server { return NewBackend(db) }

// NewBackend wraps any Backend in a Server. A bare *twsim.DB is
// automatically wrapped for write serialization (it is not safe for
// concurrent writers on its own); every other backend — notably
// *twsim.ShardedDB, which locks per shard — is trusted to synchronize
// itself, so concurrent writes flow through untouched.
func NewBackend(b twsim.Backend) *Server {
	s := &Server{backend: b, mux: http.NewServeMux()}
	if db, ok := b.(*twsim.DB); ok {
		s.db = db
		s.locked = &lockedDB{db: db}
		s.backend = s.locked
	}
	s.metrics = newServerMetrics(s)
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealth))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("/sequences", s.instrument("sequences", s.handleSequences))
	s.mux.HandleFunc("/sequences/", s.instrument("sequence_by_id", s.handleSequenceByID))
	s.mux.HandleFunc("/sequences/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	s.mux.HandleFunc("/knn", s.instrument("knn", s.handleKNN))
	s.mux.HandleFunc("/subseq/build", s.instrument("subseq_build", s.handleSubseqBuild))
	s.mux.HandleFunc("/subseq/search", s.instrument("subseq_search", s.handleSubseqSearch))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// ---- wire types ----

// MatchJSON is one whole-matching result on the wire.
type MatchJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

// SubMatchJSON is one subsequence result on the wire.
type SubMatchJSON struct {
	ID     uint32  `json:"id"`
	Offset int     `json:"offset"`
	Len    int     `json:"len"`
	Dist   float64 `json:"dist"`
}

// StatsJSON summarizes per-query work on the wire. The per-tier prune
// counters were added with the refinement cascade; they are additive
// fields, so pre-cascade clients keep decoding the original shape.
type StatsJSON struct {
	Candidates       int   `json:"candidates"`
	Results          int   `json:"results"`
	DTWCalls         int   `json:"dtw_calls"`
	LBKimPruned      int   `json:"lb_kim_pruned"`
	LBPAAPruned      int   `json:"lb_paa_pruned"`
	LBKeoghPruned    int   `json:"lb_keogh_pruned"`
	LBYiPruned       int   `json:"lb_yi_pruned"`
	LBImprovedPruned int   `json:"lb_improved_pruned"`
	CorridorPruned   int   `json:"corridor_pruned"`
	DTWAbandoned     int   `json:"dtw_abandoned"`
	WallMicros       int64 `json:"wall_us"`
}

// SearchResponse is the /search (and /knn) reply. RequestID is the
// process-unique query identifier the slow-query log records; joining the
// two attributes a logged slow query to the client that sent it.
type SearchResponse struct {
	Matches   []MatchJSON `json:"matches"`
	Stats     StatsJSON   `json:"stats"`
	RequestID uint64      `json:"request_id"`
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func shardQueriesJSON(qt twsim.QueryTotals) map[string]any {
	return map[string]any{
		"searches":             qt.Searches,
		"candidates":           qt.Candidates,
		"dtw_calls":            qt.DTWCalls,
		"dtw_abandoned":        qt.DTWAbandoned,
		"lb_kim_pruned":        qt.LBKimPruned,
		"lb_paa_pruned":        qt.LBPAAPruned,
		"lb_keogh_pruned":      qt.LBKeoghPruned,
		"lb_yi_pruned":         qt.LBYiPruned,
		"lb_improved_pruned":   qt.LBImprovedPruned,
		"corridor_pruned":      qt.CorridorPruned,
		"knn_repushes":         qt.KNNRepushes,
		"knn_envelope_cutoffs": qt.KNNEnvCutoffs,
	}
}

// storageJSON renders the storage-layer counters with their derived hit
// ratios (pagefile.Stats.HitRatio, seqdb.CacheStats.HitRatio — 0 before any
// traffic).
func storageJSON(st twsim.StorageStats) map[string]any {
	poolJSON := func(p pagefile.Stats) map[string]any {
		return map[string]any{
			"reads":      p.Reads,
			"misses":     p.Misses,
			"seq_misses": p.SeqMisses,
			"writes":     p.Writes,
			"hit_ratio":  p.HitRatio(),
		}
	}
	return map[string]any{
		"data_pool":  poolJSON(st.Data),
		"index_pool": poolJSON(st.Index),
		"seq_cache": map[string]any{
			"hits":      st.Cache.Hits,
			"misses":    st.Cache.Misses,
			"bytes":     st.Cache.Bytes,
			"entries":   st.Cache.Entries,
			"hit_ratio": st.Cache.HitRatio(),
		},
	}
}

func repairJSON(rs twsim.RepairStats) map[string]any {
	return map[string]any{
		"repaired":           rs.Repaired(),
		"rebuilt":            rs.Rebuilt,
		"orphans_reindexed":  rs.Orphans,
		"dangling_removed":   rs.Dangling,
		"mismatched_rekeyed": rs.Mismatched,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	ies := s.backend.IndexEngineStats()
	out := map[string]any{
		"sequences":    s.backend.Len(),
		"data_bytes":   s.backend.DataBytes(),
		"index_pages":  s.backend.IndexPages(),
		"repair":       repairJSON(s.backend.LastRepair()),
		"query_totals": s.totals.json(),
		"storage":      storageJSON(s.backend.StorageStats()),
		"index_engine": map[string]any{
			"engine":              ies.Engine,
			"snapshot_generation": ies.Generation,
			"delta_entries":       ies.DeltaEntries,
			"merges":              ies.Merges,
			"slab_bytes":          ies.SlabBytes,
		},
	}
	// Sharded backends additionally report a per-shard breakdown so
	// operators can spot skew — in storage (sequences, pages) and in query
	// work (the engine's own cumulative counters, which also cover
	// NearestK and batch traffic the flat totals see only as one search);
	// the single-DB shape stays flat.
	if sb, ok := s.backend.(interface{ ShardStats() []twsim.ShardStat }); ok {
		stats := sb.ShardStats()
		shards := make([]map[string]any, len(stats))
		for i, st := range stats {
			shards[i] = map[string]any{
				"id":         st.ID,
				"sequences":  st.Sequences,
				"data_bytes": st.DataBytes,
				"pages":      st.IndexPages,
				"repair":     repairJSON(st.Repair),
				"queries":    shardQueriesJSON(st.Queries),
			}
		}
		out["shards"] = shards
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSequences(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Values []float64 `json:"values"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	id, err := s.backend.Add(req.Values)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": uint32(id)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Sequences [][]float64 `json:"sequences"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	ids, err := s.backend.AddBatch(req.Sequences)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wireIDs := make([]uint32, len(ids))
	for i, id := range ids {
		wireIDs[i] = uint32(id)
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"first_id": wireIDs[0],
		"count":    len(ids),
		"ids":      wireIDs,
	})
}

func (s *Server) handleSequenceByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/sequences/")
	if idStr == "batch" {
		s.handleBatch(w, r)
		return
	}
	id64, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid id %q", idStr))
		return
	}
	id := twsim.ID(id64)
	switch r.Method {
	case http.MethodGet:
		values, err := s.backend.Get(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": uint32(id), "values": values})
	case http.MethodDelete:
		removed, err := s.backend.Remove(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": removed})
	default:
		methodNotAllowed(w)
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query   []float64 `json:"query"`
		Epsilon float64   `json:"epsilon"`
		// Band is the optional Sakoe–Chiba band half-width this query
		// answers under: omitted = the backend's configured default, 0 =
		// unconstrained, ≥ 1 = banded, negative = 400.
		Band *int `json:"band"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	var res *twsim.Result
	var err error
	if req.Band != nil {
		if *req.Band < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("negative band half-width %d", *req.Band))
			return
		}
		res, err = s.backend.SearchBand(req.Query, req.Epsilon, *req.Band)
	} else {
		res, err = s.backend.Search(req.Query, req.Epsilon)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.totals.accumulate(res.Stats)
	s.metrics.observeQuery(res.Stats, true)
	writeJSON(w, http.StatusOK, toSearchResponse(res))
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query []float64 `json:"query"`
		K     int       `json:"k"`
		// Band as in /search: omitted = backend default, 0 = unconstrained,
		// ≥ 1 = banded, negative = 400.
		Band *int `json:"band"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, errors.New("k must be non-negative"))
		return
	}
	var res *twsim.Result
	var err error
	if req.Band != nil {
		if *req.Band < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("negative band half-width %d", *req.Band))
			return
		}
		res, err = s.backend.NearestKStatsBand(req.Query, req.K, *req.Band)
	} else {
		res, err = s.backend.NearestKStats(req.Query, req.K)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.totals.accumulate(res.Stats)
	s.metrics.observeQuery(res.Stats, false)
	writeJSON(w, http.StatusOK, toSearchResponse(res))
}

func (s *Server) handleSubseqBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	if s.db == nil {
		writeError(w, http.StatusNotImplemented,
			errors.New("subsequence indexing requires a single-database backend"))
		return
	}
	var req struct {
		WindowLens []int `json:"window_lens"`
		Step       int   `json:"step"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	// The build scans the heap, so writers are excluded for its duration;
	// concurrent searches may proceed.
	s.locked.mu.RLock()
	idx, err := s.db.BuildSubseqIndex(req.WindowLens, req.Step)
	s.locked.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.smu.Lock()
	if s.subseq != nil {
		s.subseq.Close()
	}
	s.subseq = idx
	s.smu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]int{"windows": idx.NumWindows()})
}

func (s *Server) handleSubseqSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	if s.db == nil {
		writeError(w, http.StatusNotImplemented,
			errors.New("subsequence search requires a single-database backend"))
		return
	}
	var req struct {
		Query   []float64 `json:"query"`
		Epsilon float64   `json:"epsilon"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	s.smu.RLock()
	idx := s.subseq
	if idx == nil {
		s.smu.RUnlock()
		writeError(w, http.StatusConflict, errors.New("no subsequence index built; POST /subseq/build first"))
		return
	}
	// The subsequence index reads the parent heap, so exclude writers
	// while the query runs (and hold smu so a concurrent /subseq/build
	// cannot close idx mid-search).
	s.locked.mu.RLock()
	res, err := idx.Search(req.Query, req.Epsilon)
	s.locked.mu.RUnlock()
	s.smu.RUnlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]SubMatchJSON, len(res.Matches))
	for i, m := range res.Matches {
		out[i] = SubMatchJSON{ID: uint32(m.ID), Offset: m.Offset, Len: m.Len, Dist: m.Dist}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

// Close releases server-held resources (the subsequence index, if built).
func (s *Server) Close() error {
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.subseq != nil {
		err := s.subseq.Close()
		s.subseq = nil
		return err
	}
	return nil
}

// ---- helpers ----

func toSearchResponse(res *twsim.Result) SearchResponse {
	out := SearchResponse{
		RequestID: res.RequestID,
		Matches:   make([]MatchJSON, len(res.Matches)),
		Stats: StatsJSON{
			Candidates:       res.Stats.Candidates,
			Results:          res.Stats.Results,
			DTWCalls:         res.Stats.DTWCalls,
			LBKimPruned:      res.Stats.LBKimPruned,
			LBPAAPruned:      res.Stats.LBPAAPruned,
			LBKeoghPruned:    res.Stats.LBKeoghPruned,
			LBYiPruned:       res.Stats.LBYiPruned,
			LBImprovedPruned: res.Stats.LBImprovedPruned,
			CorridorPruned:   res.Stats.CorridorPruned,
			DTWAbandoned:     res.Stats.DTWAbandoned,
			WallMicros:       res.Stats.Wall.Microseconds(),
		},
	}
	for i, m := range res.Matches {
		out.Matches[i] = MatchJSON{ID: uint32(m.ID), Dist: m.Dist}
	}
	return out
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	// Reject trailing garbage.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func methodNotAllowed(w http.ResponseWriter) {
	writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
}
