// Package server exposes a twsim database over HTTP with a JSON API — the
// deployment form a downstream user runs (cmd/twsimd) when the library is
// embedded in a service rather than a process. Endpoints:
//
//	GET    /healthz                       liveness probe
//	GET    /metrics                       Prometheus text exposition
//	GET    /stats                         database statistics
//	POST   /sequences                     {"values": [...]} -> {"id": n}
//	POST   /sequences/batch               {"sequences": [[...], ...]} -> {"first_id": n, "count": k, "ids": [...]}
//	GET    /sequences/{id}                -> {"id": n, "values": [...]}
//	DELETE /sequences/{id}                -> {"removed": bool}
//	POST   /search                        {"query": [...], "epsilon": e, "band": r?} -> matches + stats
//	POST   /knn                           {"query": [...], "k": n, "band": r?} -> matches
//	POST   /subseq/build                  {"window_lens": [...], "step": n} -> {"windows": n}
//	POST   /subseq/search                 {"query": [...], "epsilon": e} -> window matches
//
// The server runs against any twsim.Backend. With a single *twsim.DB the
// write path is serialized behind one lock (the library's concurrency
// rule); with a *twsim.ShardedDB writes lock per shard inside the engine,
// so POSTs to different shards proceed concurrently, and /stats adds a
// per-shard breakdown ("shards": [{id, sequences, pages, repair, queries},
// ...]) for spotting skew. /stats always carries "query_totals" — the
// cumulative /search work counters including the refinement cascade's
// per-tier prune counts, which each /search response also reports for its
// own query — plus "result_cache" (the whole-query cache counters) and
// "admission" (in-flight limits and shed/cancelled/deadline outcomes).
// The subsequence endpoints work on both engine shapes: a sharded backend
// builds one window index per shard and merges fan-out results into the
// global ID space. Every error returns JSON {"error": "..."} with an
// appropriate status code; queries containing NaN or ±Inf are rejected
// with 400 (twsim.ErrNonFinite). Queries abandoned because the client
// disconnected answer 499 (nginx's convention); queries past
// Options.QueryDeadline answer 503; queries shed at admission control
// (NewBackendLimits) answer 429 with a Retry-After header.
//
// Observability: every endpoint is instrumented with request counters (by
// status class) and latency histograms, exported together with the query
// totals, cascade prune counters, buffer pool and sequence-cache counters
// on GET /metrics in the Prometheus text format (see metrics.go for the
// catalog). /search and /knn responses carry the request_id the slow-query
// log records.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	twsim "repro"
	"repro/internal/core"
	"repro/internal/pagefile"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when a query was abandoned because the client disconnected
// before the answer was computed. The response is never seen by that
// client; the status exists for the access-side metrics.
const StatusClientClosedRequest = 499

// MaxBodyBytes bounds request bodies to keep a misbehaving client from
// exhausting memory (16 MiB ≈ a 2M-element sequence).
const MaxBodyBytes = 16 << 20

// Limits configures the admission-control tier in front of the query
// endpoints (/search, /knn). The zero value disables admission control.
type Limits struct {
	// MaxInflight bounds the queries executing concurrently. 0 disables
	// admission control entirely (no semaphore, no queue, no shedding).
	MaxInflight int
	// QueueDepth bounds the queries waiting for an execution slot once
	// MaxInflight are running; an arrival finding the queue full is shed
	// with 429 and a Retry-After header. 0 means no waiting: every arrival
	// beyond MaxInflight is shed immediately.
	QueueDepth int
	// RetryAfterSeconds is the Retry-After value sent with a 429
	// (0 = 1 second).
	RetryAfterSeconds int
}

func (l Limits) retryAfter() string {
	if l.RetryAfterSeconds <= 0 {
		return "1"
	}
	return strconv.Itoa(l.RetryAfterSeconds)
}

// Server is an http.Handler serving one twsim.Backend.
type Server struct {
	backend twsim.Backend
	// locked is non-nil only for single-database backends: the write
	// serialization wrapped around the bare *twsim.DB (a ShardedDB
	// synchronizes internally instead).
	locked  *lockedDB
	smu     sync.RWMutex       // guards subseq
	subseq  *twsim.SubseqIndex // built on demand via /subseq/build
	totals  queryTotals        // cumulative /search + /knn work since the server started
	metrics *serverMetrics     // obs registry + per-endpoint instruments (/metrics)
	mux     *http.ServeMux

	// Replication (see repl.go). primary is the raw single database when
	// the backend is one — the only engine shape that serves /repl/* in
	// v1. readOnly switches every mutating endpoint to 403 (replica mode);
	// replica carries the lag the status endpoints export.
	primary  *twsim.DB
	readOnly atomic.Bool
	replica  atomic.Pointer[Replica]

	// Admission control (see Limits). sem is nil when disabled; queued
	// tracks the waiters so arrivals beyond the queue depth shed fast.
	limits Limits
	sem    chan struct{}
	queued atomic.Int64
	// Traffic-shaping outcome counters, exported on /metrics and /stats:
	// queries shed at admission (429), abandoned because the client
	// disconnected (499), and abandoned on the per-query deadline (503).
	shed, cancelled, deadlineExceeded atomic.Int64
}

// queryTotals accumulates the work counters of every /search and /knn the
// server has answered, lock-free so concurrent searches never serialize on
// accounting. /stats reports the snapshot as "query_totals" and /metrics
// exports the same atomics as twsim_* counters, giving operators the
// cascade's prune rates in production without scraping per-query responses.
// The counters satisfy the conservation law
// candidates = lb_kim + lb_paa + lb_keogh + lb_yi + lb_improved + corridor + dtw_calls
// (dangling-entry skips aside), which the metrics tests assert.
type queryTotals struct {
	searches, candidates, results                       atomic.Int64
	dtwCalls, dtwAbandoned                              atomic.Int64
	lbKimPruned, lbPAAPruned, lbKeoghPruned, lbYiPruned atomic.Int64
	lbImprovedPruned, corridorPruned                    atomic.Int64
	knnRepushes, knnEnvCutoffs                          atomic.Int64
}

func (t *queryTotals) accumulate(st twsim.QueryStats) {
	t.searches.Add(1)
	t.candidates.Add(int64(st.Candidates))
	t.results.Add(int64(st.Results))
	t.dtwCalls.Add(int64(st.DTWCalls))
	t.dtwAbandoned.Add(int64(st.DTWAbandoned))
	t.lbKimPruned.Add(int64(st.LBKimPruned))
	t.lbPAAPruned.Add(int64(st.LBPAAPruned))
	t.lbKeoghPruned.Add(int64(st.LBKeoghPruned))
	t.lbYiPruned.Add(int64(st.LBYiPruned))
	t.lbImprovedPruned.Add(int64(st.LBImprovedPruned))
	t.corridorPruned.Add(int64(st.CorridorPruned))
	t.knnRepushes.Add(int64(st.KNNRepushes))
	t.knnEnvCutoffs.Add(int64(st.KNNEnvCutoffs))
}

func (t *queryTotals) json() map[string]any {
	return map[string]any{
		"searches":             t.searches.Load(),
		"candidates":           t.candidates.Load(),
		"results":              t.results.Load(),
		"dtw_calls":            t.dtwCalls.Load(),
		"dtw_abandoned":        t.dtwAbandoned.Load(),
		"lb_kim_pruned":        t.lbKimPruned.Load(),
		"lb_paa_pruned":        t.lbPAAPruned.Load(),
		"lb_keogh_pruned":      t.lbKeoghPruned.Load(),
		"lb_yi_pruned":         t.lbYiPruned.Load(),
		"lb_improved_pruned":   t.lbImprovedPruned.Load(),
		"corridor_pruned":      t.corridorPruned.Load(),
		"knn_repushes":         t.knnRepushes.Load(),
		"knn_envelope_cutoffs": t.knnEnvCutoffs.Load(),
	}
}

// lockedDB adapts a *twsim.DB to the Backend concurrency contract the
// server relies on: readers share, writers exclude everything.
type lockedDB struct {
	mu sync.RWMutex
	db *twsim.DB
}

// Writes use the commit-split API: the mutation is applied (and its WAL
// record enqueued) under the exclusive lock, but the fsync wait happens
// after the lock is released — so N concurrent HTTP writers fall into the
// same group-commit batch and share one fsync instead of serializing
// fsyncs behind the lock.

func (l *lockedDB) Add(values []float64) (twsim.ID, error) {
	l.mu.Lock()
	id, commit, err := l.db.AddCommit(values)
	l.mu.Unlock()
	if err != nil {
		return id, err
	}
	return id, commit()
}

func (l *lockedDB) AddBatch(values [][]float64) ([]twsim.ID, error) {
	l.mu.Lock()
	first, commit, err := l.db.AddAllCommit(values)
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	ids := make([]twsim.ID, len(values))
	for i := range ids {
		ids[i] = first + twsim.ID(i)
	}
	return ids, commit()
}

func (l *lockedDB) Remove(id twsim.ID) (bool, error) {
	l.mu.Lock()
	ok, commit, err := l.db.RemoveCommit(id)
	l.mu.Unlock()
	if err != nil {
		return ok, err
	}
	return ok, commit()
}

func (l *lockedDB) Get(id twsim.ID) ([]float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Get(id)
}

func (l *lockedDB) Search(query []float64, epsilon float64) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Search(query, epsilon)
}

func (l *lockedDB) SearchBand(query []float64, epsilon float64, band int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchBand(query, epsilon, band)
}

func (l *lockedDB) NearestK(query []float64, k int) ([]twsim.Match, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestK(query, k)
}

func (l *lockedDB) NearestKBand(query []float64, k, band int) ([]twsim.Match, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestKBand(query, k, band)
}

func (l *lockedDB) NearestKStats(query []float64, k int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestKStats(query, k)
}

func (l *lockedDB) NearestKStatsBand(query []float64, k, band int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestKStatsBand(query, k, band)
}

func (l *lockedDB) SearchBatch(queries [][]float64, epsilon float64, parallelism int) ([]*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchBatch(queries, epsilon, parallelism)
}

func (l *lockedDB) SearchBatchBand(queries [][]float64, epsilon float64, band, parallelism int) ([]*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchBatchBand(queries, epsilon, band, parallelism)
}

func (l *lockedDB) SearchCtx(ctx context.Context, query []float64, epsilon float64, band int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchCtx(ctx, query, epsilon, band)
}

func (l *lockedDB) NearestKCtx(ctx context.Context, query []float64, k, band int) (*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.NearestKCtx(ctx, query, k, band)
}

func (l *lockedDB) SearchBatchCtx(ctx context.Context, queries [][]float64, epsilon float64, band, parallelism int) ([]*twsim.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.SearchBatchCtx(ctx, queries, epsilon, band, parallelism)
}

func (l *lockedDB) DefaultBand() int {
	return l.db.DefaultBand()
}

func (l *lockedDB) ResultCacheStats() core.ResultCacheStats {
	return l.db.ResultCacheStats()
}

// BuildSubseqIndex scans the heap, so writers are excluded for its
// duration; concurrent searches may proceed (read lock).
func (l *lockedDB) BuildSubseqIndex(windowLens []int, step int) (*twsim.SubseqIndex, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.BuildSubseqIndex(windowLens, step)
}

func (l *lockedDB) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Len()
}

func (l *lockedDB) DataBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.DataBytes()
}

func (l *lockedDB) IndexPages() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.IndexPages()
}

func (l *lockedDB) LastRepair() twsim.RepairStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.LastRepair()
}

func (l *lockedDB) StorageStats() twsim.StorageStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.StorageStats()
}

func (l *lockedDB) IndexEngineStats() core.IndexEngineStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.IndexEngineStats()
}

func (l *lockedDB) OpenDiagnostics() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.OpenDiagnostics()
}

func (l *lockedDB) WALStats() twsim.WALStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.WALStats()
}

func (l *lockedDB) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.db.Verify()
}

func (l *lockedDB) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.db.Flush()
}

func (l *lockedDB) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.db.Close()
}

// New wraps a single database in a Server, serializing its writers behind
// one lock. The Server assumes ownership of queries but not of the
// database lifecycle: callers still Close the db.
func New(db *twsim.DB) *Server { return NewBackend(db) }

// NewBackend wraps any Backend in a Server. A bare *twsim.DB is
// automatically wrapped for write serialization (it is not safe for
// concurrent writers on its own); every other backend — notably
// *twsim.ShardedDB, which locks per shard — is trusted to synchronize
// itself, so concurrent writes flow through untouched.
func NewBackend(b twsim.Backend) *Server { return NewBackendLimits(b, Limits{}) }

// NewBackendLimits is NewBackend with admission control: at most
// limits.MaxInflight queries execute at once, up to limits.QueueDepth more
// wait for a slot (abandoning the wait if the client disconnects), and any
// further arrival is shed immediately with 429 + Retry-After. Mutation and
// introspection endpoints are not throttled — only /search, /knn and
// /subseq/search, the handlers that burn CPU on DTW work.
func NewBackendLimits(b twsim.Backend, limits Limits) *Server {
	s := &Server{backend: b, mux: http.NewServeMux(), limits: limits}
	if db, ok := b.(*twsim.DB); ok {
		s.locked = &lockedDB{db: db}
		s.backend = s.locked
		s.primary = db
	}
	if limits.MaxInflight > 0 {
		s.sem = make(chan struct{}, limits.MaxInflight)
	}
	s.metrics = newServerMetrics(s)
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealth))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("/sequences", s.instrument("sequences", s.handleSequences))
	s.mux.HandleFunc("/sequences/", s.instrument("sequence_by_id", s.handleSequenceByID))
	s.mux.HandleFunc("/sequences/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	s.mux.HandleFunc("/knn", s.instrument("knn", s.handleKNN))
	s.mux.HandleFunc("/subseq/build", s.instrument("subseq_build", s.handleSubseqBuild))
	s.mux.HandleFunc("/subseq/search", s.instrument("subseq_search", s.handleSubseqSearch))
	s.mux.HandleFunc("/repl/status", s.instrument("repl_status", s.handleReplStatus))
	s.mux.HandleFunc("/repl/snapshot", s.instrument("repl_snapshot", s.handleReplSnapshot))
	s.mux.HandleFunc("/repl/wal", s.instrument("repl_wal", s.handleReplWAL))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// ---- wire types ----

// MatchJSON is one whole-matching result on the wire.
type MatchJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

// SubMatchJSON is one subsequence result on the wire.
type SubMatchJSON struct {
	ID     uint32  `json:"id"`
	Offset int     `json:"offset"`
	Len    int     `json:"len"`
	Dist   float64 `json:"dist"`
}

// StatsJSON summarizes per-query work on the wire. The per-tier prune
// counters were added with the refinement cascade; they are additive
// fields, so pre-cascade clients keep decoding the original shape.
type StatsJSON struct {
	Candidates       int   `json:"candidates"`
	Results          int   `json:"results"`
	DTWCalls         int   `json:"dtw_calls"`
	LBKimPruned      int   `json:"lb_kim_pruned"`
	LBPAAPruned      int   `json:"lb_paa_pruned"`
	LBKeoghPruned    int   `json:"lb_keogh_pruned"`
	LBYiPruned       int   `json:"lb_yi_pruned"`
	LBImprovedPruned int   `json:"lb_improved_pruned"`
	CorridorPruned   int   `json:"corridor_pruned"`
	DTWAbandoned     int   `json:"dtw_abandoned"`
	WallMicros       int64 `json:"wall_us"`
}

// SearchResponse is the /search (and /knn) reply. RequestID is the
// process-unique query identifier the slow-query log records; joining the
// two attributes a logged slow query to the client that sent it. CacheHit
// reports the answer came from the result cache without touching the index
// (the stats' work counters are all zero then).
type SearchResponse struct {
	Matches   []MatchJSON `json:"matches"`
	Stats     StatsJSON   `json:"stats"`
	RequestID uint64      `json:"request_id"`
	CacheHit  bool        `json:"cache_hit,omitempty"`
}

// ---- admission control ----

// admit gates a query behind the admission semaphore. It returns a release
// func and true when the query may run; otherwise it has already written
// the refusal (429 when shed, 499 when the client gave up while queued)
// and returns false. With admission control disabled it is a no-op.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	// Fast path: a slot is free.
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
	}
	// All slots busy: queue if there is room, else shed. The counter is
	// incremented optimistically so two racing arrivals cannot both sneak
	// into the last queue slot.
	if s.queued.Add(1) > int64(s.limits.QueueDepth) {
		s.queued.Add(-1)
		s.shed.Add(1)
		w.Header().Set("Retry-After", s.limits.retryAfter())
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server overloaded (%d in flight, %d queued); retry later",
				s.limits.MaxInflight, s.limits.QueueDepth))
		return nil, false
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	case <-r.Context().Done():
		s.cancelled.Add(1)
		writeError(w, StatusClientClosedRequest, r.Context().Err())
		return nil, false
	}
}

// queryError maps a failed query to its status: 499 when the client
// disconnected mid-query, 503 when the per-query deadline expired, 400 for
// everything else (validation). The outcome counters feed /metrics and
// /stats.
func (s *Server) queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.cancelled.Add(1)
		writeError(w, StatusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineExceeded.Add(1)
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// readGuard excludes writers while the caller reads the heap outside the
// Backend methods (the subsequence index keeps direct references into the
// store). For a single-database backend it takes the read lock; a sharded
// backend locks per shard inside its own fan-out, so no outer lock is
// needed.
func (s *Server) readGuard() (unguard func()) {
	if s.locked == nil {
		return func() {}
	}
	s.locked.mu.RLock()
	return s.locked.mu.RUnlock
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func shardQueriesJSON(qt twsim.QueryTotals) map[string]any {
	return map[string]any{
		"searches":             qt.Searches,
		"candidates":           qt.Candidates,
		"dtw_calls":            qt.DTWCalls,
		"dtw_abandoned":        qt.DTWAbandoned,
		"lb_kim_pruned":        qt.LBKimPruned,
		"lb_paa_pruned":        qt.LBPAAPruned,
		"lb_keogh_pruned":      qt.LBKeoghPruned,
		"lb_yi_pruned":         qt.LBYiPruned,
		"lb_improved_pruned":   qt.LBImprovedPruned,
		"corridor_pruned":      qt.CorridorPruned,
		"knn_repushes":         qt.KNNRepushes,
		"knn_envelope_cutoffs": qt.KNNEnvCutoffs,
	}
}

// storageJSON renders the storage-layer counters with their derived hit
// ratios (pagefile.Stats.HitRatio, seqdb.CacheStats.HitRatio — 0 before any
// traffic).
func storageJSON(st twsim.StorageStats) map[string]any {
	poolJSON := func(p pagefile.Stats) map[string]any {
		return map[string]any{
			"reads":      p.Reads,
			"misses":     p.Misses,
			"seq_misses": p.SeqMisses,
			"writes":     p.Writes,
			"hit_ratio":  p.HitRatio(),
		}
	}
	return map[string]any{
		"data_pool":  poolJSON(st.Data),
		"index_pool": poolJSON(st.Index),
		"seq_cache": map[string]any{
			"hits":      st.Cache.Hits,
			"misses":    st.Cache.Misses,
			"bytes":     st.Cache.Bytes,
			"entries":   st.Cache.Entries,
			"hit_ratio": st.Cache.HitRatio(),
		},
	}
}

func repairJSON(rs twsim.RepairStats) map[string]any {
	return map[string]any{
		"repaired":           rs.Repaired(),
		"rebuilt":            rs.Rebuilt,
		"orphans_reindexed":  rs.Orphans,
		"dangling_removed":   rs.Dangling,
		"mismatched_rekeyed": rs.Mismatched,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	ies := s.backend.IndexEngineStats()
	rcs := s.backend.ResultCacheStats()
	out := map[string]any{
		"sequences":    s.backend.Len(),
		"data_bytes":   s.backend.DataBytes(),
		"index_pages":  s.backend.IndexPages(),
		"repair":       repairJSON(s.backend.LastRepair()),
		"query_totals": s.totals.json(),
		"storage":      storageJSON(s.backend.StorageStats()),
		"index_engine": map[string]any{
			"engine":              ies.Engine,
			"snapshot_generation": ies.Generation,
			"delta_entries":       ies.DeltaEntries,
			"merges":              ies.Merges,
			"slab_bytes":          ies.SlabBytes,
		},
		"result_cache": map[string]any{
			"hits":          rcs.Hits,
			"misses":        rcs.Misses,
			"evictions":     rcs.Evictions,
			"invalidations": rcs.Invalidations,
			"bytes":         rcs.Bytes,
			"entries":       rcs.Entries,
			"hit_ratio":     rcs.HitRatio(),
		},
		"admission": map[string]any{
			"max_inflight":      s.limits.MaxInflight,
			"queue_depth":       s.limits.QueueDepth,
			"queued":            s.queued.Load(),
			"shed":              s.shed.Load(),
			"cancelled":         s.cancelled.Load(),
			"deadline_exceeded": s.deadlineExceeded.Load(),
		},
	}
	walEnabled := s.primary != nil && s.primary.WALEnabled()
	if ws := s.backend.WALStats(); walEnabled || ws.Records > 0 || ws.Seq > 0 || ws.Checkpoints > 0 {
		out["wal"] = map[string]any{
			"records":     ws.Records,
			"batches":     ws.Batches,
			"fsyncs":      ws.Fsyncs,
			"bytes":       ws.Bytes,
			"checkpoints": ws.Checkpoints,
			"seq":         ws.Seq,
			"durable_seq": ws.Durable,
			"file_bytes":  ws.FileBytes,
		}
	}
	if rep := s.replica.Load(); rep != nil {
		lag := rep.Lag()
		out["replica"] = map[string]any{
			"primary":          rep.PrimaryURL(),
			"applied_seq":      lag.AppliedSeq,
			"primary_seq":      lag.PrimarySeq,
			"generation_delta": lag.GenerationDelta,
			"lag_seconds":      lag.Seconds,
			"resyncs":          lag.Resyncs,
			"last_error":       rep.LastError(),
		}
	}
	// Sharded backends additionally report a per-shard breakdown so
	// operators can spot skew — in storage (sequences, pages) and in query
	// work (the engine's own cumulative counters, which also cover
	// NearestK and batch traffic the flat totals see only as one search);
	// the single-DB shape stays flat.
	if sb, ok := s.backend.(interface{ ShardStats() []twsim.ShardStat }); ok {
		stats := sb.ShardStats()
		shards := make([]map[string]any, len(stats))
		for i, st := range stats {
			shards[i] = map[string]any{
				"id":         st.ID,
				"sequences":  st.Sequences,
				"data_bytes": st.DataBytes,
				"pages":      st.IndexPages,
				"repair":     repairJSON(st.Repair),
				"queries":    shardQueriesJSON(st.Queries),
			}
		}
		out["shards"] = shards
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSequences(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	if s.denyWrites(w) {
		return
	}
	var req struct {
		Values []float64 `json:"values"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	id, err := s.backend.Add(req.Values)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint32{"id": uint32(id)})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	if s.denyWrites(w) {
		return
	}
	var req struct {
		Sequences [][]float64 `json:"sequences"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	ids, err := s.backend.AddBatch(req.Sequences)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wireIDs := make([]uint32, len(ids))
	for i, id := range ids {
		wireIDs[i] = uint32(id)
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"first_id": wireIDs[0],
		"count":    len(ids),
		"ids":      wireIDs,
	})
}

func (s *Server) handleSequenceByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/sequences/")
	if idStr == "batch" {
		s.handleBatch(w, r)
		return
	}
	id64, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid id %q", idStr))
		return
	}
	id := twsim.ID(id64)
	switch r.Method {
	case http.MethodGet:
		values, err := s.backend.Get(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": uint32(id), "values": values})
	case http.MethodDelete:
		if s.denyWrites(w) {
			return
		}
		removed, err := s.backend.Remove(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"removed": removed})
	default:
		methodNotAllowed(w)
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query   []float64 `json:"query"`
		Epsilon float64   `json:"epsilon"`
		// Band is the optional Sakoe–Chiba band half-width this query
		// answers under: omitted = the backend's configured default, 0 =
		// unconstrained, ≥ 1 = banded, negative = 400.
		Band *int `json:"band"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	band := s.backend.DefaultBand()
	if req.Band != nil {
		if *req.Band < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("negative band half-width %d", *req.Band))
			return
		}
		band = *req.Band
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	res, err := s.backend.SearchCtx(r.Context(), req.Query, req.Epsilon, band)
	if err != nil {
		s.queryError(w, err)
		return
	}
	s.totals.accumulate(res.Stats)
	s.metrics.observeQuery(res.Stats, true)
	writeJSON(w, http.StatusOK, toSearchResponse(res))
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query []float64 `json:"query"`
		K     int       `json:"k"`
		// Band as in /search: omitted = backend default, 0 = unconstrained,
		// ≥ 1 = banded, negative = 400.
		Band *int `json:"band"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, errors.New("k must be non-negative"))
		return
	}
	band := s.backend.DefaultBand()
	if req.Band != nil {
		if *req.Band < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("negative band half-width %d", *req.Band))
			return
		}
		band = *req.Band
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	res, err := s.backend.NearestKCtx(r.Context(), req.Query, req.K, band)
	if err != nil {
		s.queryError(w, err)
		return
	}
	s.totals.accumulate(res.Stats)
	s.metrics.observeQuery(res.Stats, false)
	writeJSON(w, http.StatusOK, toSearchResponse(res))
}

func (s *Server) handleSubseqBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		WindowLens []int `json:"window_lens"`
		Step       int   `json:"step"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	// Single-database backends exclude writers inside
	// lockedDB.BuildSubseqIndex; the sharded build locks per shard inside
	// its own fan-out.
	idx, err := s.backend.BuildSubseqIndex(req.WindowLens, req.Step)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.smu.Lock()
	if s.subseq != nil {
		s.subseq.Close()
	}
	s.subseq = idx
	s.smu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]int{"windows": idx.NumWindows()})
}

func (s *Server) handleSubseqSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w)
		return
	}
	var req struct {
		Query   []float64 `json:"query"`
		Epsilon float64   `json:"epsilon"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.smu.RLock()
	idx := s.subseq
	if idx == nil {
		s.smu.RUnlock()
		writeError(w, http.StatusConflict, errors.New("no subsequence index built; POST /subseq/build first"))
		return
	}
	// The subsequence index reads the parent heap, so exclude writers
	// while the query runs (and hold smu so a concurrent /subseq/build
	// cannot close idx mid-search).
	unguard := s.readGuard()
	res, err := idx.Search(req.Query, req.Epsilon)
	unguard()
	s.smu.RUnlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]SubMatchJSON, len(res.Matches))
	for i, m := range res.Matches {
		out[i] = SubMatchJSON{ID: uint32(m.ID), Offset: m.Offset, Len: m.Len, Dist: m.Dist}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

// Close releases server-held resources (the subsequence index, if built).
func (s *Server) Close() error {
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.subseq != nil {
		err := s.subseq.Close()
		s.subseq = nil
		return err
	}
	return nil
}

// ---- helpers ----

func toSearchResponse(res *twsim.Result) SearchResponse {
	out := SearchResponse{
		RequestID: res.RequestID,
		CacheHit:  res.CacheHit,
		Matches:   make([]MatchJSON, len(res.Matches)),
		Stats: StatsJSON{
			Candidates:       res.Stats.Candidates,
			Results:          res.Stats.Results,
			DTWCalls:         res.Stats.DTWCalls,
			LBKimPruned:      res.Stats.LBKimPruned,
			LBPAAPruned:      res.Stats.LBPAAPruned,
			LBKeoghPruned:    res.Stats.LBKeoghPruned,
			LBYiPruned:       res.Stats.LBYiPruned,
			LBImprovedPruned: res.Stats.LBImprovedPruned,
			CorridorPruned:   res.Stats.CorridorPruned,
			DTWAbandoned:     res.Stats.DTWAbandoned,
			WallMicros:       res.Stats.Wall.Microseconds(),
		},
	}
	for i, m := range res.Matches {
		out.Matches[i] = MatchJSON{ID: uint32(m.ID), Dist: m.Dist}
	}
	return out
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	// Reject trailing garbage.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func methodNotAllowed(w http.ResponseWriter) {
	writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
}
