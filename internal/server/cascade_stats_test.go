package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	twsim "repro"
)

// postSearch drives POST /search through the raw HTTP stack and decodes the
// full wire response (the Client helper drops the stats).
func postSearch(t *testing.T, srv *Server, query []float64, epsilon float64) SearchResponse {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": query, "epsilon": epsilon})
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("POST", "/search", bytes.NewReader(body)))
	if w.Code != 200 {
		t.Fatalf("/search returned %d: %s", w.Code, w.Body.String())
	}
	var res SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	return res
}

func getStats(t *testing.T, srv *Server) map[string]any {
	t.Helper()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/stats", nil))
	if w.Code != 200 {
		t.Fatalf("/stats returned %d: %s", w.Code, w.Body.String())
	}
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSearchResponseTierCounters: each /search reply carries the cascade's
// per-tier prune counters, and they partition the candidate count.
func TestSearchResponseTierCounters(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	t.Cleanup(func() { srv.Close(); db.Close() })
	data := shardedWalks(23, 60, 10, 30)
	if _, err := db.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	var sumCand, sumDTW int
	const queries = 3
	for i := 0; i < queries; i++ {
		res := postSearch(t, srv, data[i*7], 0.3)
		st := res.Stats
		pruned := st.LBKimPruned + st.LBKeoghPruned + st.LBYiPruned + st.CorridorPruned
		if pruned+st.DTWCalls != st.Candidates {
			t.Fatalf("query %d: prunes %d + dtw %d != candidates %d", i, pruned, st.DTWCalls, st.Candidates)
		}
		if st.DTWAbandoned > st.DTWCalls {
			t.Fatalf("query %d: abandoned %d > calls %d", i, st.DTWAbandoned, st.DTWCalls)
		}
		sumCand += st.Candidates
		sumDTW += st.DTWCalls
	}
	// /stats accumulates the same counters across queries.
	totals, ok := getStats(t, srv)["query_totals"].(map[string]any)
	if !ok {
		t.Fatal(`/stats has no "query_totals" object`)
	}
	asInt := func(key string) int {
		v, ok := totals[key].(float64)
		if !ok {
			t.Fatalf("query_totals.%s missing or non-numeric", key)
		}
		return int(v)
	}
	if got := asInt("searches"); got != queries {
		t.Errorf("query_totals.searches = %d, want %d", got, queries)
	}
	if got := asInt("candidates"); got != sumCand {
		t.Errorf("query_totals.candidates = %d, want %d", got, sumCand)
	}
	if got := asInt("dtw_calls"); got != sumDTW {
		t.Errorf("query_totals.dtw_calls = %d, want %d", got, sumDTW)
	}
	for _, key := range []string{"lb_kim_pruned", "lb_keogh_pruned", "lb_yi_pruned", "corridor_pruned", "dtw_abandoned"} {
		asInt(key) // presence check
	}
}

// TestShardedStatsQueryBreakdown: with a sharded backend, /stats reports
// each shard's cumulative query counters alongside the flat totals.
func TestShardedStatsQueryBreakdown(t *testing.T) {
	db, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewBackend(db)
	t.Cleanup(func() { srv.Close(); db.Close() })
	data := shardedWalks(29, 45, 10, 25)
	if _, err := db.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	const queries = 4
	for i := 0; i < queries; i++ {
		postSearch(t, srv, data[i*3], 0.4)
	}
	stats := getStats(t, srv)
	shards, ok := stats["shards"].([]any)
	if !ok || len(shards) != 3 {
		t.Fatalf("/stats shards = %v", stats["shards"])
	}
	for i, raw := range shards {
		sh := raw.(map[string]any)
		q, ok := sh["queries"].(map[string]any)
		if !ok {
			t.Fatalf("shard %d has no queries breakdown", i)
		}
		if got := q["searches"].(float64); int(got) != queries {
			t.Errorf("shard %d searches = %v, want %d", i, got, queries)
		}
		cand := q["candidates"].(float64)
		dtw := q["dtw_calls"].(float64)
		pruned := q["lb_kim_pruned"].(float64) + q["lb_keogh_pruned"].(float64) +
			q["lb_yi_pruned"].(float64) + q["corridor_pruned"].(float64)
		if pruned+dtw != cand {
			t.Errorf("shard %d: prunes %v + dtw %v != candidates %v", i, pruned, dtw, cand)
		}
	}
	if _, ok := stats["query_totals"].(map[string]any); !ok {
		t.Error(`sharded /stats lost the flat "query_totals"`)
	}
}
