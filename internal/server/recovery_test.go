package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	twsim "repro"
)

// newStormServer is newTestServer plus direct access to the underlying
// database and the raw base URL, for tests that bypass the Client or check
// post-storm invariants.
func newStormServer(t *testing.T) (*twsim.DB, *Client, string) {
	t.Helper()
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return db, NewClient(ts.URL, ts.Client()), ts.URL
}

// Oversized request bodies must be rejected with 413 Request Entity Too
// Large, not a generic 400 (clients distinguish "shrink your batch" from
// "your JSON is malformed").
func TestOversizedBodyReturns413(t *testing.T) {
	_, _, base := newStormServer(t)
	// One number whose digits alone cross the body cap.
	body := `{"values":[` + strings.Repeat("9", MaxBodyBytes+16) + `]}`
	resp, err := http.Post(base+"/sequences", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
		t.Fatalf("oversized body: error envelope = %+v, %v", ae, err)
	}
	// A small malformed body is still a plain 400.
	resp2, err := http.Post(base+"/sequences", "application/json", strings.NewReader(`{"values":`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d, want %d", resp2.StatusCode, http.StatusBadRequest)
	}
}

// Concurrent reads must stay correct while writers mutate the database —
// run with -race. After the storm the store and index must still agree.
func TestConcurrentReadsDuringWrites(t *testing.T) {
	db, c, _ := newStormServer(t)
	seedRng := rand.New(rand.NewSource(8))
	seed := make([][]float64, 40)
	for i := range seed {
		s := make([]float64, 8+seedRng.Intn(8))
		for j := range s {
			s[j] = float64(seedRng.Intn(30))
		}
		seed[i] = s
	}
	if _, err := c.AddBatch(seed); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	// Writers keep appending fresh sequences.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				s := make([]float64, 6+rng.Intn(10))
				for j := range s {
					s[j] = float64(rng.Intn(30))
				}
				if _, err := c.Add(s); err != nil {
					report(err)
					return
				}
			}
		}(int64(w))
	}
	// A deleter removes part of the seed data.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := uint32(0); id < 15; id++ {
			if _, err := c.Remove(id); err != nil {
				report(err)
				return
			}
		}
	}()
	// Searchers and getters read through the whole storm. Get may race
	// with the deleter, so not-found responses are expected; transport
	// failures are not.
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 20; i++ {
				q := make([]float64, 5+rng.Intn(8))
				for j := range q {
					q[j] = float64(rng.Intn(30))
				}
				if _, err := c.Search(q, 2); err != nil {
					report(err)
					return
				}
				if _, err := c.NearestK(q, 3); err != nil {
					report(err)
					return
				}
				_, _ = c.Get(uint32(rng.Intn(40))) // may be deleted: error OK
			}
		}(int64(rdr))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("storm request failed: %v", err)
	}

	// After the storm: no store/index divergence.
	if err := db.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants after storm: %v", err)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("Verify after storm: %v", err)
	}
	if db.Len() != 40+2*25-15 {
		t.Fatalf("Len = %d after storm, want %d", db.Len(), 40+2*25-15)
	}
}

// /stats must expose the Open-time repair summary.
func TestStatsReportsRepair(t *testing.T) {
	_, _, base := newStormServer(t)
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Repair *struct {
			Repaired bool `json:"repaired"`
			Rebuilt  bool `json:"rebuilt"`
			Orphans  int  `json:"orphans_reindexed"`
			Dangling int  `json:"dangling_removed"`
		} `json:"repair"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Repair == nil {
		t.Fatal("/stats response is missing the repair section")
	}
	if out.Repair.Repaired || out.Repair.Rebuilt {
		t.Fatalf("fresh database reports repair: %+v", out.Repair)
	}
}
