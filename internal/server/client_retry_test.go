package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseRetryAfterForms(t *testing.T) {
	cases := []struct {
		name, header string
		min, max     time.Duration
	}{
		{"absent", "", 0, 0},
		{"seconds", "7", 7 * time.Second, 7 * time.Second},
		{"zero-seconds", "0", DefaultRetryAfter, DefaultRetryAfter},
		{"http-date", time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat), 25 * time.Second, 30 * time.Second},
		{"past-date", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), DefaultRetryAfter, DefaultRetryAfter},
		{"garbage", "soon", DefaultRetryAfter, DefaultRetryAfter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parseRetryAfter(tc.header)
			if got < tc.min || got > tc.max {
				t.Fatalf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.header, got, tc.min, tc.max)
			}
		})
	}
}

func TestClientRetryAfterBothWireForms(t *testing.T) {
	for _, tc := range []struct {
		name, header string
		min, max     time.Duration
	}{
		{"delay-seconds", "3", 3 * time.Second, 3 * time.Second},
		{"http-date", time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat), 5 * time.Second, 10 * time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", tc.header)
				w.WriteHeader(http.StatusTooManyRequests)
				_, _ = w.Write([]byte(`{"error":"overloaded"}`))
			}))
			defer ts.Close()
			c := NewClient(ts.URL, ts.Client())
			_, err := c.Search([]float64{1, 2, 3}, 1)
			var oe *ErrOverloaded
			if !errors.As(err, &oe) {
				t.Fatalf("error = %v, want *ErrOverloaded", err)
			}
			if oe.RetryAfter < tc.min || oe.RetryAfter > tc.max {
				t.Fatalf("RetryAfter = %v, want in [%v, %v]", oe.RetryAfter, tc.min, tc.max)
			}
		})
	}
}
