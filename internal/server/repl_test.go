package server

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	twsim "repro"
)

// startPrimary runs a WAL-enabled on-disk database behind a test server.
func startPrimary(t *testing.T) (*twsim.DB, *Server, *httptest.Server) {
	t.Helper()
	db, err := twsim.Create(t.TempDir(), twsim.Options{WAL: true, WALFlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return db, srv, ts
}

// startReplica brings up a read-only replica of the given primary,
// bootstrapped but with the polling loop under test control (call
// rep.poll() directly for determinism).
func startReplica(t *testing.T, primaryURL string) (*Replica, *Server, *httptest.Server) {
	t.Helper()
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	rep, err := NewReplica(srv, primaryURL, ReplicaOptions{PollInterval: time.Hour})
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return rep, srv, ts
}

func testSequences(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, length)
		v := rng.Float64() * 10
		for j := range s {
			v += rng.Float64() - 0.5
			s[j] = v
		}
		out[i] = s
	}
	return out
}

func TestReplicaBootstrapStreamsAndAnswersIdentically(t *testing.T) {
	pdb, _, pts := startPrimary(t)
	pc := NewClient(pts.URL, pts.Client())

	seqs := testSequences(40, 32, 1)
	for _, s := range seqs[:20] {
		if _, err := pc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pc.Remove(3); err != nil {
		t.Fatal(err)
	}

	// Bootstrap picks up the pre-existing state, tombstone included.
	rep, _, rts := startReplica(t, pts.URL)
	rc := NewClient(rts.URL, rts.Client())
	if n := mustLen(t, rc); n != 19 {
		t.Fatalf("replica sequences after bootstrap = %d, want 19", n)
	}

	// New primary writes arrive via the WAL tail.
	for _, s := range seqs[20:] {
		if _, err := pc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pc.Remove(25); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pdb, rep)

	// Same generation -> bit-identical query answers.
	query := seqs[7]
	pres, err := pc.Search(query, 50)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rc.Search(query, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Matches) == 0 {
		t.Fatal("primary search found nothing; test is vacuous")
	}
	if len(pres.Matches) != len(rres.Matches) {
		t.Fatalf("match counts differ: primary %d, replica %d", len(pres.Matches), len(rres.Matches))
	}
	for i := range pres.Matches {
		if pres.Matches[i].ID != rres.Matches[i].ID || pres.Matches[i].Dist != rres.Matches[i].Dist {
			t.Fatalf("match %d differs: primary %+v, replica %+v", i, pres.Matches[i], rres.Matches[i])
		}
	}
	pknn, err := pc.NearestK(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	rknn, err := rc.NearestK(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pknn) != len(rknn) {
		t.Fatalf("knn counts differ: %d vs %d", len(pknn), len(rknn))
	}
	for i := range pknn {
		if pknn[i].ID != rknn[i].ID || math.Float64bits(pknn[i].Dist) != math.Float64bits(rknn[i].Dist) {
			t.Fatalf("knn %d differs: primary %+v, replica %+v", i, pknn[i], rknn[i])
		}
	}
}

func TestReplicaRejectsWritesWith403(t *testing.T) {
	_, _, pts := startPrimary(t)
	pc := NewClient(pts.URL, pts.Client())
	if _, err := pc.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_, _, rts := startReplica(t, pts.URL)

	for _, req := range []struct {
		method, path, body string
	}{
		{http.MethodPost, "/sequences", `{"values":[1,2,3]}`},
		{http.MethodPost, "/sequences/batch", `{"sequences":[[1,2,3]]}`},
		{http.MethodDelete, "/sequences/0", ""},
	} {
		hr, err := http.NewRequest(req.method, rts.URL+req.path, strings.NewReader(req.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := rts.Client().Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s %s on replica = %d, want 403", req.method, req.path, resp.StatusCode)
		}
	}
	// Reads still flow.
	resp, err := rts.Client().Get(rts.URL + "/sequences/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /sequences/0 on replica = %d", resp.StatusCode)
	}
}

func TestReplicaResyncsAfterPrimaryCheckpoint(t *testing.T) {
	pdb, _, pts := startPrimary(t)
	pc := NewClient(pts.URL, pts.Client())
	for _, s := range testSequences(10, 16, 2) {
		if _, err := pc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	rep, _, rts := startReplica(t, pts.URL)
	rc := NewClient(rts.URL, rts.Client())

	// Advance the primary past the replica's cursor, then checkpoint so the
	// tail the replica wants is compacted away.
	for _, s := range testSequences(10, 16, 3) {
		if _, err := pc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pc.Remove(4); err != nil {
		t.Fatal(err)
	}
	if err := pdb.Flush(); err != nil {
		t.Fatal(err)
	}
	resyncsBefore := rep.Lag().Resyncs
	waitCaughtUp(t, pdb, rep)
	if rep.Lag().Resyncs != resyncsBefore+1 {
		t.Fatalf("resyncs = %d, want %d (410 path not taken)", rep.Lag().Resyncs, resyncsBefore+1)
	}
	if n := mustLen(t, rc); n != 19 {
		t.Fatalf("replica sequences after resync = %d, want 19", n)
	}
	lag := rep.Lag()
	if lag.GenerationDelta != 0 {
		t.Fatalf("generation delta after catch-up = %d", lag.GenerationDelta)
	}
}

func TestReplicaLagExportedOnMetricsAndStats(t *testing.T) {
	pdb, _, pts := startPrimary(t)
	pc := NewClient(pts.URL, pts.Client())
	if _, err := pc.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	rep, _, rts := startReplica(t, pts.URL)
	waitCaughtUp(t, pdb, rep)

	body := mustGet(t, rts, "/metrics")
	for _, series := range []string{"twsim_replica_lag_seconds", "twsim_replica_generation_delta", "twsim_replica_applied_seq"} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	stats := mustGet(t, rts, "/stats")
	if !strings.Contains(stats, `"replica"`) || !strings.Contains(stats, `"generation_delta"`) {
		t.Errorf("/stats missing replica section: %s", stats)
	}
	status := mustGet(t, rts, "/repl/status")
	if !strings.Contains(status, `"role":"replica"`) {
		t.Errorf("/repl/status = %s", status)
	}
	pstatus := mustGet(t, pts, "/repl/status")
	if !strings.Contains(pstatus, `"role":"primary"`) {
		t.Errorf("primary /repl/status = %s", pstatus)
	}
}

func TestReplEndpointsRequireWALAndSingleDB(t *testing.T) {
	// No WAL -> 412.
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(db)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("/repl/snapshot without WAL = %d, want 412", resp.StatusCode)
	}

	// Sharded backend -> 501.
	sdb, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	ssrv := NewBackend(sdb)
	sts := httptest.NewServer(ssrv)
	defer sts.Close()
	resp, err = sts.Client().Get(sts.URL + "/repl/wal?from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("sharded /repl/wal = %d, want 501", resp.StatusCode)
	}
}

// waitCaughtUp polls the replica until it has applied everything the
// primary's WAL covers.
func waitCaughtUp(t *testing.T, pdb *twsim.DB, rep *Replica) {
	t.Helper()
	target, err := pdb.ReplSeq()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := rep.poll(); err != nil {
			t.Fatalf("replica poll: %v", err)
		}
		if rep.Lag().AppliedSeq >= target {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, want %d", rep.Lag().AppliedSeq, target)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustLen(t *testing.T, c *Client) int {
	t.Helper()
	n, _, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustGet(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, b)
	}
	return string(b)
}
