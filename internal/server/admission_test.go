package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	twsim "repro"
)

func newLimitedServer(t *testing.T, opts twsim.Options, limits Limits) (*Server, *Client, *httptest.Server) {
	t.Helper()
	db, err := twsim.OpenMem(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewBackendLimits(db, limits)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return srv, NewClient(ts.URL, ts.Client()), ts
}

func statsSection(t *testing.T, ts *httptest.Server, key string) map[string]any {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	section, ok := raw[key].(map[string]any)
	if !ok {
		t.Fatalf("/stats is missing the %q section", key)
	}
	return section
}

// TestAdmissionShed: with every slot occupied and no queue, an arriving
// query is refused with 429 + Retry-After, the client surfaces it as
// *ErrOverloaded, and the outcome shows up in /stats and /metrics. A freed
// slot admits the next query normally.
func TestAdmissionShed(t *testing.T) {
	srv, c, ts := newLimitedServer(t, twsim.Options{},
		Limits{MaxInflight: 1, QueueDepth: 0, RetryAfterSeconds: 3})
	if _, err := c.Add([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Occupy the only slot directly; no timing games.
	srv.sem <- struct{}{}
	_, err := c.Search([]float64{1, 2, 3, 4}, 0.1)
	var oe *ErrOverloaded
	if !errors.As(err, &oe) {
		t.Fatalf("search under overload returned %v, want *ErrOverloaded", err)
	}
	if oe.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %s, want 3s", oe.RetryAfter)
	}
	adm := statsSection(t, ts, "admission")
	if adm["shed"].(float64) != 1 {
		t.Fatalf("admission.shed = %v, want 1", adm["shed"])
	}
	if got := mustValue(t, scrape(t, ts), "twsim_queries_shed_total", nil); got != 1 {
		t.Fatalf("twsim_queries_shed_total = %g, want 1", got)
	}
	// Release the slot: service resumes.
	<-srv.sem
	if _, err := c.Search([]float64{1, 2, 3, 4}, 0.1); err != nil {
		t.Fatalf("search after slot release: %v", err)
	}
}

// TestAdmissionQueue: a query arriving with all slots busy but queue room
// waits for a slot rather than shedding, and completes once one frees; a
// second arrival finding the queue full sheds.
func TestAdmissionQueue(t *testing.T) {
	srv, c, _ := newLimitedServer(t, twsim.Options{},
		Limits{MaxInflight: 1, QueueDepth: 1})
	if _, err := c.Add([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	srv.sem <- struct{}{}
	var wg sync.WaitGroup
	wg.Add(1)
	queuedErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := c.Search([]float64{1, 2, 3, 4}, 0.1)
		queuedErr <- err
	}()
	// Wait until the query is parked in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full now: the next arrival sheds.
	_, err := c.Search([]float64{1, 2, 3, 4}, 0.1)
	var oe *ErrOverloaded
	if !errors.As(err, &oe) {
		t.Fatalf("second arrival returned %v, want *ErrOverloaded", err)
	}
	// Free the slot: the queued query must complete successfully.
	<-srv.sem
	wg.Wait()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
}

// TestServerQueryDeadline: a query running past Options.QueryDeadline is
// abandoned and answered with 503, counted on /stats and /metrics.
func TestServerQueryDeadline(t *testing.T) {
	_, c, ts := newLimitedServer(t, twsim.Options{QueryDeadline: time.Nanosecond}, Limits{})
	// Enough data that the deadline fires long before the query finishes.
	walks := shardedWalks(42, 60, 24, 48)
	if _, err := c.AddBatchIDs(walks); err != nil {
		t.Fatal(err)
	}
	_, err := c.Search(walks[0], 1e9)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("deadline query returned %v, want a 503", err)
	}
	adm := statsSection(t, ts, "admission")
	if adm["deadline_exceeded"].(float64) != 1 {
		t.Fatalf("admission.deadline_exceeded = %v, want 1", adm["deadline_exceeded"])
	}
}

// TestServerCacheHitOnWire: with the result cache enabled a repeated
// /search answers cache_hit=true with identical matches and the counters
// appear on /stats and /metrics.
func TestServerCacheHitOnWire(t *testing.T) {
	_, c, ts := newLimitedServer(t, twsim.Options{ResultCacheBytes: 1 << 20}, Limits{})
	walks := shardedWalks(43, 20, 12, 24)
	if _, err := c.AddBatchIDs(walks); err != nil {
		t.Fatal(err)
	}
	cold, err := c.Search(walks[3], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("cold query reported cache_hit")
	}
	hot, err := c.Search(walks[3], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !hot.CacheHit {
		t.Fatal("repeat query did not report cache_hit")
	}
	if hot.Stats.DTWCalls != 0 || hot.Stats.Candidates != 0 {
		t.Fatalf("cache hit did index work: %+v", hot.Stats)
	}
	if len(hot.Matches) != len(cold.Matches) {
		t.Fatalf("cached matches %d, cold %d", len(hot.Matches), len(cold.Matches))
	}
	rc := statsSection(t, ts, "result_cache")
	if rc["hits"].(float64) < 1 {
		t.Fatalf("result_cache.hits = %v, want >= 1", rc["hits"])
	}
	s := scrape(t, ts)
	if got := mustValue(t, s, "twsim_result_cache_hits_total", nil); got != 1 {
		t.Fatalf("twsim_result_cache_hits_total = %g, want 1", got)
	}
	if got := mustValue(t, s, "twsim_result_cache_hit_ratio", nil); got <= 0 || got >= 1 {
		t.Fatalf("twsim_result_cache_hit_ratio = %g, want in (0, 1)", got)
	}
}

// TestServerClientDisconnect: a client abandoning its request mid-query
// makes the server abandon the query too — counted as cancelled — and the
// accounted DTW work stays frozen (abandoned queries never accumulate into
// the query totals), while the server keeps answering other clients.
func TestServerClientDisconnect(t *testing.T) {
	_, c, ts := newLimitedServer(t, twsim.Options{}, Limits{})
	// A workload large enough that the query is still running when the
	// cancellation lands: ~2000 stored walks all forced through exact DTW
	// by the huge epsilon.
	walks := shardedWalks(44, 2000, 80, 120)
	if _, err := c.AddBatchIDs(walks); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.SearchCtx(ctx, walks[0], 1e12, -1); err == nil {
		t.Fatal("cancelled request returned a result")
	}
	// The server notices the disconnect asynchronously; wait for the
	// counter rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		adm := statsSection(t, ts, "admission")
		if adm["cancelled"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancelled query")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Abandoned queries contribute nothing to the totals: no DTW work was
	// accounted, and none trickles in afterwards.
	if got := mustValue(t, scrape(t, ts), "twsim_dtw_calls_total", nil); got != 0 {
		t.Fatalf("twsim_dtw_calls_total = %g after an abandoned query, want 0", got)
	}
	// The server remains healthy for other clients.
	if _, err := c.Search(walks[1][:10], 0.01); err != nil {
		t.Fatalf("follow-up query failed: %v", err)
	}
}

// TestServerStatusCodes pins the new status mapping: 429 carries the JSON
// error envelope and the Retry-After header on the raw wire.
func TestServerStatusCodes(t *testing.T) {
	srv, _, ts := newLimitedServer(t, twsim.Options{}, Limits{MaxInflight: 1})
	srv.sem <- struct{}{}
	resp, err := ts.Client().Post(ts.URL+"/search", "application/json",
		strings.NewReader(`{"query":[1,2,3],"epsilon":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want default \"1\"", resp.Header.Get("Retry-After"))
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
		t.Fatalf("429 body missing error envelope: %v", err)
	}
	<-srv.sem
}
