package server

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	twsim "repro"
)

func newShardedTestServer(t *testing.T, shards int) (*twsim.ShardedDB, *Client, *httptest.Server) {
	t.Helper()
	db, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewBackend(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		db.Close()
	})
	return db, NewClient(ts.URL, ts.Client()), ts
}

func shardedWalks(seed int64, count, minLen, maxLen int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for i := range out {
		n := minLen + rng.Intn(maxLen-minLen+1)
		s := make([]float64, n)
		s[0] = rng.Float64() * 10
		for j := 1; j < n; j++ {
			s[j] = s[j-1] + rng.Float64()*0.4 - 0.2
		}
		out[i] = s
	}
	return out
}

// TestShardedServerRoundTrip drives the unchanged JSON API against a
// sharded backend: batch insert (interleaved IDs), point get, search and
// knn agreeing with direct library calls, and delete.
func TestShardedServerRoundTrip(t *testing.T) {
	db, c, _ := newShardedTestServer(t, 4)
	data := shardedWalks(11, 50, 10, 30)
	ids, err := c.AddBatchIDs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(data) {
		t.Fatalf("AddBatchIDs returned %d ids for %d sequences", len(ids), len(data))
	}
	for i, id := range ids {
		values, err := c.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if len(values) != len(data[i]) {
			t.Fatalf("sequence %d: got %d values, want %d", i, len(values), len(data[i]))
		}
	}
	q := data[7]
	res, err := c.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(want.Matches) {
		t.Fatalf("HTTP search %d matches, library %d", len(res.Matches), len(want.Matches))
	}
	for i, m := range res.Matches {
		if twsim.ID(m.ID) != want.Matches[i].ID || m.Dist != want.Matches[i].Dist {
			t.Fatalf("match %d differs: wire (%d, %g), library (%d, %g)",
				i, m.ID, m.Dist, want.Matches[i].ID, want.Matches[i].Dist)
		}
	}
	knn, err := c.NearestK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(knn) != 3 {
		t.Fatalf("knn returned %d matches", len(knn))
	}
	removed, err := c.Remove(ids[0])
	if err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	if _, err := c.Get(ids[0]); err == nil {
		t.Fatal("removed sequence still fetchable over HTTP")
	}
}

// TestShardedServerStats: /stats keeps the aggregate fields and adds the
// per-shard breakdown; the flat single-DB shape must stay shard-free.
func TestShardedServerStats(t *testing.T) {
	db, c, ts := newShardedTestServer(t, 3)
	data := shardedWalks(5, 31, 8, 16)
	if _, err := c.AddBatchIDs(data); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Sequences int `json:"sequences"`
		Shards    []struct {
			ID        int `json:"id"`
			Sequences int `json:"sequences"`
			Pages     int `json:"pages"`
			Repair    struct {
				Repaired bool `json:"repaired"`
			} `json:"repair"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sequences != len(data) {
		t.Fatalf("stats.sequences = %d, want %d", stats.Sequences, len(data))
	}
	if len(stats.Shards) != db.NumShards() {
		t.Fatalf("stats lists %d shards, want %d", len(stats.Shards), db.NumShards())
	}
	total := 0
	for i, sh := range stats.Shards {
		if sh.ID != i {
			t.Fatalf("shard %d reported id %d", i, sh.ID)
		}
		if sh.Pages == 0 {
			t.Fatalf("shard %d reports zero index pages", i)
		}
		if sh.Repair.Repaired {
			t.Fatalf("fresh shard %d reports repair", i)
		}
		total += sh.Sequences
	}
	if total != len(data) {
		t.Fatalf("per-shard sequences sum to %d, want %d", total, len(data))
	}
}

// TestShardedServerFlatStatsForSingleDB pins the flat /stats shape of the
// unsharded backend (no "shards" key).
func TestShardedServerFlatStatsForSingleDB(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close(); db.Close() })
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["shards"]; ok {
		t.Fatal(`single-DB /stats grew a "shards" key`)
	}
}

// TestShardedServerSubseq: the subsequence endpoints work on a sharded
// backend — per-shard window indexes fanned out and merged — and the
// matches agree (same windows, same distances) with a single-DB server
// built over the same logical contents. Searching before building still
// answers 409.
func TestShardedServerSubseq(t *testing.T) {
	_, c, ts := newShardedTestServer(t, 3)
	data := shardedWalks(23, 24, 16, 32)
	ids, err := c.AddBatchIDs(data)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/subseq/search", "application/json",
		strings.NewReader(`{"query":[1,2,3],"epsilon":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("subseq search before build returned %d, want %d", resp.StatusCode, http.StatusConflict)
	}

	windows, err := c.BuildSubseqIndex([]int{8}, 4)
	if err != nil {
		t.Fatalf("subseq build on sharded backend: %v", err)
	}
	if windows == 0 {
		t.Fatal("sharded subseq index reports zero windows")
	}

	// Single-DB oracle over the same logical contents.
	oracle, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	oracleIDs := make(map[uint32]uint32, len(ids)) // oracle ID -> sharded global ID
	for i, v := range data {
		oid, err := oracle.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		oracleIDs[uint32(oid)] = ids[i]
	}
	oidx, err := oracle.BuildSubseqIndex([]int{8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer oidx.Close()
	if oidx.NumWindows() != windows {
		t.Fatalf("window count: sharded %d, single-DB %d", windows, oidx.NumWindows())
	}

	q := data[5][:8]
	got, err := c.SearchSubsequences(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := oidx.Search(q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("sharded subseq search found nothing (query is an indexed window)")
	}
	if len(got) != len(wantRes.Matches) {
		t.Fatalf("sharded subseq %d matches, single-DB %d", len(got), len(wantRes.Matches))
	}
	// Distances may tie across windows, and tied matches sort by ID — an
	// ordering that differs across the two ID spaces. Compare as sets of
	// (source sequence, offset, len, dist) after translating oracle IDs.
	type key struct {
		id       uint32
		off, ln  int
		distBits uint64
	}
	want := make(map[key]int, len(wantRes.Matches))
	for _, m := range wantRes.Matches {
		want[key{oracleIDs[uint32(m.ID)], m.Offset, m.Len, uint64FromFloat(m.Dist)}]++
	}
	for _, m := range got {
		k := key{m.ID, m.Offset, m.Len, uint64FromFloat(m.Dist)}
		if want[k] == 0 {
			t.Fatalf("sharded match (%d, %d, %d, %g) absent from single-DB result", m.ID, m.Offset, m.Len, m.Dist)
		}
		want[k]--
	}
	// Non-decreasing distance order must hold on the merged result.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatalf("merged matches out of distance order at %d: %g < %g", i, got[i].Dist, got[i-1].Dist)
		}
	}
}

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }

// TestShardedServerConcurrentWrites: POSTs land on different shards and
// proceed concurrently (under -race this exercises the per-shard locking
// path end-to-end through the HTTP stack).
func TestShardedServerConcurrentWrites(t *testing.T) {
	db, c, _ := newShardedTestServer(t, 4)
	const writers = 8
	const perWriter = 10
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			walks := shardedWalks(seed, perWriter, 8, 16)
			for _, v := range walks {
				if _, err := c.Add(v); err != nil {
					errs <- err
					return
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d after %d concurrent adds", got, writers*perWriter)
	}
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
}
