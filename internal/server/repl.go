package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	twsim "repro"
)

// Primary-side replication endpoints. A single-database, WAL-enabled
// server is a primary: it ships full-state snapshots stamped with a WAL
// sequence number and serves the durable WAL tail beyond any cursor, and
// replicas (see replica.go) follow. The sharded engine runs one WAL per
// shard with no global cut across them, so /repl/* answers 501 there —
// replicate per shard behind a router instead.
//
//	GET /repl/status              role, WAL cursor, record count (JSON)
//	GET /repl/snapshot            binary full-state snapshot (X-Twsim-Seq)
//	GET /repl/wal?from=N          raw WAL records after cursor N
//	                              (X-Twsim-Last, X-Twsim-Durable; 410 Gone
//	                              when N predates the last checkpoint)

// maxWALTailBytes caps one /repl/wal response; the replica just polls
// again, so the cap only bounds memory per request.
const maxWALTailBytes = 4 << 20

// SetReadOnly switches every mutating endpoint (POST /sequences,
// /sequences/batch, DELETE /sequences/{id}) to 403 Forbidden. Replicas
// run read-only: their only writer is the replication apply loop, which
// operates on the backend directly, beneath the HTTP surface.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether the server rejects mutations.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// denyWrites is the guard every mutating handler runs first; it reports
// whether the request was rejected (and answered) because the server is
// read-only.
func (s *Server) denyWrites(w http.ResponseWriter) bool {
	if !s.readOnly.Load() {
		return false
	}
	writeError(w, http.StatusForbidden, errors.New("server is read-only (replica mode); write to the primary"))
	return true
}

// replDB returns the raw single database serving /repl/*, or answers the
// request with why there is none.
func (s *Server) replDB(w http.ResponseWriter) (*twsim.DB, bool) {
	if s.primary == nil {
		writeError(w, http.StatusNotImplemented,
			errors.New("replication requires a single-database backend (shard behind a router to replicate a sharded deployment)"))
		return nil, false
	}
	if !s.primary.WALEnabled() {
		writeError(w, http.StatusPreconditionFailed,
			errors.New("replication requires the write-ahead log (twsim.Options.WAL / twsimd -wal)"))
		return nil, false
	}
	return s.primary, true
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	role := "standalone"
	out := map[string]any{}
	if rep := s.replica.Load(); rep != nil {
		role = "replica"
		lag := rep.Lag()
		out["replica"] = map[string]any{
			"primary":          rep.PrimaryURL(),
			"applied_seq":      lag.AppliedSeq,
			"primary_seq":      lag.PrimarySeq,
			"generation_delta": lag.GenerationDelta,
			"lag_seconds":      lag.Seconds,
			"resyncs":          lag.Resyncs,
		}
	} else if s.primary != nil && s.primary.WALEnabled() {
		role = "primary"
	}
	out["role"] = role
	if s.primary != nil && s.primary.WALEnabled() {
		st := s.primary.WALStats()
		out["wal"] = map[string]any{
			"seq":         st.Seq,
			"durable_seq": st.Durable,
			"base":        st.Base,
			"file_bytes":  st.FileBytes,
		}
		out["num_records"] = s.primary.NumRecords()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReplSnapshot streams the full-state snapshot. The lockedDB read
// lock excludes writers for the duration, so the snapshot is a consistent
// cut at the WAL sequence number it carries in X-Twsim-Seq (trailing
// CRC-32 guards the transfer).
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	db, ok := s.replDB(w)
	if !ok {
		return
	}
	s.locked.mu.RLock()
	defer s.locked.mu.RUnlock()
	seqno, err := db.ReplSeq()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Twsim-Seq", strconv.FormatUint(seqno, 10))
	w.WriteHeader(http.StatusOK)
	// Mid-stream failures can only abort the connection; the replica's
	// CRC check catches the truncation.
	_, _ = db.WriteReplSnapshot(w)
}

func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w)
		return
	}
	db, ok := s.replDB(w)
	if !ok {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from cursor: %v", err))
		return
	}
	maxBytes := maxWALTailBytes
	if mb := r.URL.Query().Get("max_bytes"); mb != "" {
		n, err := strconv.Atoi(mb)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid max_bytes %q", mb))
			return
		}
		if n < maxBytes {
			maxBytes = n
		}
	}
	data, last, err := db.WALTail(from, maxBytes)
	if err != nil {
		if errors.Is(err, twsim.ErrWALCompacted) {
			// The tail was checkpointed away; the replica must re-sync
			// from a fresh snapshot.
			writeError(w, http.StatusGone, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st := db.WALStats()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Twsim-Last", strconv.FormatUint(last, 10))
	w.Header().Set("X-Twsim-Durable", strconv.FormatUint(st.Durable, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
