package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	twsim "repro"
)

// Replica follows a primary server: it bootstraps the full state from
// GET /repl/snapshot, then polls GET /repl/wal for the durable record
// tail and applies it through the replica database's normal write path.
// Because the stream replays the primary's mutations in log order over
// the same dense ID space, a replica at applied sequence S holds exactly
// the primary's state at S — Search and NearestK answer bit-identically
// to the primary at the same cut. When the primary checkpoints past the
// replica's cursor (410 Gone), the replica re-syncs from a fresh
// snapshot; existing IDs never change retroactively, so the re-sync is
// an incremental diff, not a rebuild.
//
// The replica's HTTP surface is the owning Server switched read-only:
// queries flow normally, mutations answer 403. The apply loop is the
// sole writer, beneath the HTTP layer, serialized by the same lockedDB
// lock queries share.
type Replica struct {
	srv    *Server
	db     *twsim.DB
	client *http.Client

	primaryURL string
	interval   time.Duration
	maxBytes   int

	applied    atomic.Uint64 // last WAL seq applied locally
	primarySeq atomic.Uint64 // last observed primary durable seq
	caughtUpAt atomic.Int64  // unix nanos of the last applied==primary observation
	resyncs    atomic.Int64
	polls      atomic.Int64
	appliedMut atomic.Int64
	lastErr    atomic.Value // string

	quit chan struct{}
	done chan struct{}
}

// ReplicaLag is the replication-lag snapshot /stats and /metrics export.
type ReplicaLag struct {
	AppliedSeq uint64 // last WAL sequence number applied locally
	PrimarySeq uint64 // primary's durable sequence number at last contact
	// GenerationDelta is PrimarySeq - AppliedSeq: how many durable
	// primary mutations the replica has not applied yet.
	GenerationDelta uint64
	// Seconds since the replica last observed itself fully caught up
	// (0 when caught up at last poll).
	Seconds float64
	Resyncs int64 // snapshot re-syncs forced by WAL compaction (410)
}

// ReplicaOptions configures NewReplica. Zero values get defaults.
type ReplicaOptions struct {
	// PollInterval is the WAL tail polling cadence (default 500ms).
	PollInterval time.Duration
	// MaxBatchBytes caps one tail fetch (default 4 MiB).
	MaxBatchBytes int
	// Client is the HTTP client used against the primary (default
	// http.DefaultClient with a 30s timeout).
	Client *http.Client
}

// NewReplica turns srv — a Server over a fresh or previously-synced
// single in-process database — into a read-only replica of the primary
// at primaryURL. It bootstraps synchronously (snapshot fetch + apply, or
// an incremental diff when the database already has records), then
// Start begins the tail-polling loop.
func NewReplica(srv *Server, primaryURL string, opts ReplicaOptions) (*Replica, error) {
	if srv.primary == nil {
		return nil, errors.New("server: replica requires a single-database backend")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = maxWALTailBytes
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	rep := &Replica{
		srv:        srv,
		db:         srv.primary,
		client:     opts.Client,
		primaryURL: primaryURL,
		interval:   opts.PollInterval,
		maxBytes:   opts.MaxBatchBytes,
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if err := rep.syncSnapshot(); err != nil {
		return nil, fmt.Errorf("server: replica bootstrap: %w", err)
	}
	srv.SetReadOnly(true)
	srv.replica.Store(rep)
	return rep, nil
}

// Start launches the polling loop. Stop to halt it.
func (rep *Replica) Start() {
	go rep.run()
}

// Stop halts the polling loop and waits for it to exit.
func (rep *Replica) Stop() {
	close(rep.quit)
	<-rep.done
}

// PrimaryURL returns the primary this replica follows.
func (rep *Replica) PrimaryURL() string { return rep.primaryURL }

// Lag snapshots the replication lag.
func (rep *Replica) Lag() ReplicaLag {
	lag := ReplicaLag{
		AppliedSeq: rep.applied.Load(),
		PrimarySeq: rep.primarySeq.Load(),
		Resyncs:    rep.resyncs.Load(),
	}
	if lag.PrimarySeq > lag.AppliedSeq {
		lag.GenerationDelta = lag.PrimarySeq - lag.AppliedSeq
		if at := rep.caughtUpAt.Load(); at > 0 {
			lag.Seconds = time.Since(time.Unix(0, at)).Seconds()
		}
	}
	return lag
}

// LastError returns the most recent poll/apply error message ("" when
// the last cycle succeeded).
func (rep *Replica) LastError() string {
	if v := rep.lastErr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

func (rep *Replica) run() {
	defer close(rep.done)
	t := time.NewTicker(rep.interval)
	defer t.Stop()
	for {
		select {
		case <-rep.quit:
			return
		case <-t.C:
			if err := rep.poll(); err != nil {
				rep.lastErr.Store(err.Error())
			} else {
				rep.lastErr.Store("")
			}
		}
	}
}

// poll fetches and applies one WAL tail batch; on ErrWALCompacted it
// re-syncs from a snapshot instead.
func (rep *Replica) poll() error {
	rep.polls.Add(1)
	from := rep.applied.Load()
	url := fmt.Sprintf("%s/repl/wal?from=%d&max_bytes=%d", rep.primaryURL, from, rep.maxBytes)
	resp, err := rep.client.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		// Fall through to apply.
	case http.StatusGone:
		// Checkpointed past our cursor: incremental re-sync from a fresh
		// snapshot.
		rep.resyncs.Add(1)
		return rep.syncSnapshot()
	default:
		return fmt.Errorf("primary answered %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	if durable := resp.Header.Get("X-Twsim-Durable"); durable != "" {
		if d, err := strconv.ParseUint(durable, 10, 64); err == nil {
			rep.primarySeq.Store(d)
		}
	}
	if len(body) > 0 {
		recs, err := twsim.ParseWALRecords(body, from+1)
		if err != nil {
			return err
		}
		applied, last, err := twsim.ApplyWALRecords(rep.srv.backend, rep.db.NumRecords, recs)
		rep.appliedMut.Add(int64(applied))
		if err != nil {
			if errors.Is(err, twsim.ErrReplicaDiverged) {
				rep.resyncs.Add(1)
				return rep.syncSnapshot()
			}
			return err
		}
		rep.applied.Store(last)
	}
	if rep.applied.Load() >= rep.primarySeq.Load() {
		rep.caughtUpAt.Store(time.Now().UnixNano())
	}
	return nil
}

// syncSnapshot fetches the primary's snapshot and diffs the replica up
// to it (both the initial bootstrap and the 410 recovery path).
func (rep *Replica) syncSnapshot() error {
	resp, err := rep.client.Get(rep.primaryURL + "/repl/snapshot")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("primary snapshot answered %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	snap, err := twsim.DecodeReplSnapshot(body)
	if err != nil {
		return err
	}
	if _, _, err := twsim.SyncFromReplSnapshot(rep.srv.backend, rep.db.NumRecords(), snap); err != nil {
		return err
	}
	rep.applied.Store(snap.Seq)
	if snap.Seq >= rep.primarySeq.Load() {
		rep.primarySeq.Store(snap.Seq)
		rep.caughtUpAt.Store(time.Now().UnixNano())
	}
	return nil
}
