package server

import (
	"testing"

	twsim "repro"
)

// TestStatsStorageSection: /stats exposes the storage-layer counters — both
// buffer pools and the decoded-sequence cache — with hit ratios a monitor
// can alert on directly.
func TestStatsStorageSection(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{SeqCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	t.Cleanup(func() { srv.Close(); db.Close() })
	data := shardedWalks(29, 50, 10, 30)
	if _, err := db.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	// Two identical searches: the second runs against warm pools and a warm
	// sequence cache, so every ratio below must end up strictly positive.
	postSearch(t, srv, data[0], 0.4)
	postSearch(t, srv, data[0], 0.4)

	stats := getStats(t, srv)
	storage, ok := stats["storage"].(map[string]any)
	if !ok {
		t.Fatalf(`/stats has no "storage" object: %v`, stats)
	}
	for _, pool := range []string{"data_pool", "index_pool"} {
		p, ok := storage[pool].(map[string]any)
		if !ok {
			t.Fatalf("storage has no %q object: %v", pool, storage)
		}
		if reads, _ := p["reads"].(float64); reads <= 0 {
			t.Errorf("%s.reads = %v, want > 0", pool, p["reads"])
		}
		ratio, _ := p["hit_ratio"].(float64)
		if ratio <= 0 || ratio > 1 {
			t.Errorf("%s.hit_ratio = %v, want in (0, 1]", pool, p["hit_ratio"])
		}
	}
	cache, ok := storage["seq_cache"].(map[string]any)
	if !ok {
		t.Fatalf(`storage has no "seq_cache" object: %v`, storage)
	}
	if hits, _ := cache["hits"].(float64); hits <= 0 {
		t.Errorf("seq_cache.hits = %v, want > 0 after a repeated query", cache["hits"])
	}
	if ratio, _ := cache["hit_ratio"].(float64); ratio <= 0 || ratio > 1 {
		t.Errorf("seq_cache.hit_ratio = %v, want in (0, 1]", cache["hit_ratio"])
	}
}

// TestStatsStorageSharded: the sharded backend aggregates storage counters
// across shards in the same /stats section.
func TestStatsStorageSharded(t *testing.T) {
	db, err := twsim.OpenMemSharded(twsim.ShardedOptions{
		Shards:  3,
		Options: twsim.Options{SeqCacheBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewBackend(db)
	t.Cleanup(func() { srv.Close(); db.Close() })
	data := shardedWalks(31, 60, 10, 30)
	if _, err := db.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	postSearch(t, srv, data[0], 0.4)
	postSearch(t, srv, data[0], 0.4)

	stats := getStats(t, srv)
	storage, ok := stats["storage"].(map[string]any)
	if !ok {
		t.Fatalf(`sharded /stats has no "storage" object: %v`, stats)
	}
	p, ok := storage["data_pool"].(map[string]any)
	if !ok {
		t.Fatalf("storage has no data_pool: %v", storage)
	}
	if reads, _ := p["reads"].(float64); reads <= 0 {
		t.Errorf("aggregated data_pool.reads = %v, want > 0", p["reads"])
	}
}
