// Package fsx holds the small filesystem primitives the durability story
// leans on. The one that matters is RenameAndSyncDir: a temp-file +
// rename is only atomic, not durable — after a power failure the rename
// itself can be rolled back unless the parent directory entry is fsynced.
// Every persistence path in the tree (flat snapshot, envelope sidecar,
// seqdb manifest, WAL creation, shipped replica snapshots) funnels
// through this package so new files inherit the fix automatically.
package fsx

import (
	"os"
	"path/filepath"
)

// SyncDirHook, when non-nil, is consulted by SyncDir before the real
// directory fsync and its error (if any) is returned in place of the
// syscall's. It exists for fault-injection tests that must prove a
// failed directory sync surfaces to the caller instead of being
// swallowed. Production code never sets it.
var SyncDirHook func(dir string) error

// SyncDir fsyncs a directory, making previously-renamed or created
// entries in it durable. POSIX requires an fsync on the containing
// directory before a rename is guaranteed to survive a crash; syncing
// the file alone is not enough.
func SyncDir(dir string) error {
	if hook := SyncDirHook; hook != nil {
		if err := hook(dir); err != nil {
			return err
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// RenameAndSyncDir renames oldpath onto newpath and then fsyncs
// newpath's parent directory, so the rename — not just the file bytes —
// survives a power failure. Callers are expected to have already synced
// the file contents at oldpath.
func RenameAndSyncDir(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(newpath))
}

// WriteFileSync writes data to path via a same-directory temp file:
// write, fsync the file, rename into place, fsync the directory. The
// destination either keeps its old contents or holds exactly data, and
// once WriteFileSync returns nil the new contents survive a crash.
func WriteFileSync(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := RenameAndSyncDir(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
