package fsx

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileSyncRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	if err := WriteFileSync(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileSync: %v", err)
	}
	if err := WriteFileSync(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("WriteFileSync overwrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("got %q, %v; want v2", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %d entries", len(ents))
	}
}

func TestRenameAndSyncDir(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RenameAndSyncDir(src, dst); err != nil {
		t.Fatalf("RenameAndSyncDir: %v", err)
	}
	if _, err := os.Stat(src); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("source still exists: %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "payload" {
		t.Fatalf("dst = %q, %v", got, err)
	}
}

// The fault hook must make a failed directory sync visible to the caller:
// both SyncDir itself and the rename wrapper return the injected error.
func TestSyncDirHookSurfacesError(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected dir-sync failure")
	SyncDirHook = func(d string) error {
		if d == dir {
			return boom
		}
		return nil
	}
	defer func() { SyncDirHook = nil }()

	if err := SyncDir(dir); !errors.Is(err, boom) {
		t.Fatalf("SyncDir error = %v, want injected fault", err)
	}
	src := filepath.Join(dir, "a")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RenameAndSyncDir(src, filepath.Join(dir, "b")); !errors.Is(err, boom) {
		t.Fatalf("RenameAndSyncDir error = %v, want injected fault", err)
	}
	if err := WriteFileSync(filepath.Join(dir, "c"), []byte("y"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("WriteFileSync error = %v, want injected fault", err)
	}
}
