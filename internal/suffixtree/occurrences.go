package suffixtree

import (
	"sort"

	"repro/internal/seq"
)

// Occurrence locates one substring occurrence inside an indexed sequence.
type Occurrence struct {
	ID     seq.ID
	Offset int
}

// SeqOfPosition maps a concatenated-text position to the sequence that
// contains it and the offset within that sequence. The position must not
// point past the final terminator.
func (t *Tree) SeqOfPosition(pos int) (seq.ID, int) {
	// boundaries is sorted ascending; find the last boundary <= pos.
	i := sort.Search(len(t.boundaries), func(i int) bool { return t.boundaries[i] > pos }) - 1
	return seq.ID(i), pos - t.boundaries[i]
}

// OccurrencesBelowAt enumerates where the root path running through n
// occurs in the indexed sequences. Each leaf below n names one suffix of
// the concatenated text; the root path is a prefix of every such suffix,
// so each leaf yields one occurrence (sequence, offset).
//
// depthAtEdgeEnd must be the root-path length, in symbols, at the END of
// n's incoming edge — the ST-Filter traversal tracks this as it walks. A
// match that ends mid-edge has the same leaf set as the edge's target
// node, so callers pass the target node with its full edge counted.
func (t *Tree) OccurrencesBelowAt(n *Node, depthAtEdgeEnd int) []Occurrence {
	var out []Occurrence
	var dfs func(node *Node, depthAtEnd int)
	dfs = func(node *Node, depthAtEnd int) {
		if node.IsLeaf() {
			suffixStart := len(t.text) - depthAtEnd
			id, off := t.SeqOfPosition(suffixStart)
			out = append(out, Occurrence{ID: id, Offset: off})
			return
		}
		node.Children(func(_ int32, c *Node) bool {
			dfs(c, depthAtEnd+t.edgeLength(c))
			return true
		})
	}
	dfs(n, depthAtEdgeEnd)
	return out
}
