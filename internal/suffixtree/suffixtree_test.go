package suffixtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/categorize"
	"repro/internal/seq"
)

func sym(vals ...int) []categorize.Symbol {
	out := make([]categorize.Symbol, len(vals))
	for i, v := range vals {
		out[i] = categorize.Symbol(v)
	}
	return out
}

func TestTerminatorEncoding(t *testing.T) {
	for _, id := range []seq.ID{0, 1, 7, 100000} {
		term := Terminator(id)
		if !IsTerminator(term) {
			t.Errorf("Terminator(%d) = %d not recognized", id, term)
		}
		if got := TerminatorID(term); got != id {
			t.Errorf("round trip: %d -> %d -> %d", id, term, got)
		}
	}
	if IsTerminator(0) || IsTerminator(42) {
		t.Error("category symbols classified as terminators")
	}
}

func TestContainsAllSubstrings(t *testing.T) {
	seqs := [][]categorize.Symbol{
		sym(1, 2, 3, 1, 2),
		sym(2, 2, 2),
		sym(3, 1),
	}
	tree := New(seqs)
	for _, s := range seqs {
		raw := make([]int32, len(s))
		for i, v := range s {
			raw[i] = int32(v)
		}
		for i := 0; i < len(raw); i++ {
			for j := i + 1; j <= len(raw); j++ {
				if !tree.Contains(raw[i:j]) {
					t.Fatalf("missing substring %v", raw[i:j])
				}
			}
		}
	}
	for _, absent := range [][]int32{{9}, {1, 1, 1}, {3, 3}, {2, 3, 2}} {
		if tree.Contains(absent) {
			t.Errorf("Contains(%v) = true", absent)
		}
	}
	if !tree.Contains(nil) {
		t.Error("empty pattern should be contained")
	}
}

func TestSuffixStartsComplete(t *testing.T) {
	seqs := [][]categorize.Symbol{sym(0, 1, 0), sym(1, 1)}
	tree := New(seqs)
	// Text: 0 1 0 $0 1 1 $1 -> 7 suffixes.
	starts := tree.SuffixStarts()
	sort.Ints(starts)
	if len(starts) != 7 {
		t.Fatalf("got %d suffixes, want 7 (%v)", len(starts), starts)
	}
	for i, s := range starts {
		if s != i {
			t.Fatalf("suffix starts %v, want 0..6", starts)
		}
	}
}

func TestSuffixStartsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nSeq := 1 + rng.Intn(5)
		var seqs [][]categorize.Symbol
		total := 0
		for i := 0; i < nSeq; i++ {
			n := 1 + rng.Intn(20)
			s := make([]categorize.Symbol, n)
			for j := range s {
				s[j] = categorize.Symbol(rng.Intn(4))
			}
			seqs = append(seqs, s)
			total += n + 1
		}
		tree := New(seqs)
		starts := tree.SuffixStarts()
		sort.Ints(starts)
		if len(starts) != total {
			t.Fatalf("trial %d: %d suffixes, want %d", trial, len(starts), total)
		}
		for i, s := range starts {
			if s != i {
				t.Fatalf("trial %d: starts %v", trial, starts)
			}
		}
	}
}

func TestContainsRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		s := make([]categorize.Symbol, n)
		raw := make([]int32, n)
		for j := range s {
			v := rng.Intn(3)
			s[j] = categorize.Symbol(v)
			raw[j] = int32(v)
		}
		tree := New([][]categorize.Symbol{s})
		for probe := 0; probe < 50; probe++ {
			m := 1 + rng.Intn(6)
			pat := make([]int32, m)
			for j := range pat {
				pat[j] = int32(rng.Intn(3))
			}
			want := bruteContains(raw, pat)
			if got := tree.Contains(pat); got != want {
				t.Fatalf("Contains(%v) in %v = %v, want %v", pat, raw, got, want)
			}
		}
	}
}

func bruteContains(text, pat []int32) bool {
	for i := 0; i+len(pat) <= len(text); i++ {
		ok := true
		for j := range pat {
			if text[i+j] != pat[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestMetadataAccessors(t *testing.T) {
	seqs := [][]categorize.Symbol{sym(1, 2, 3), sym(4)}
	tree := New(seqs)
	if tree.NumSequences() != 2 {
		t.Errorf("NumSequences = %d", tree.NumSequences())
	}
	if tree.SeqLen(0) != 3 || tree.SeqLen(1) != 1 {
		t.Errorf("SeqLen = %d, %d", tree.SeqLen(0), tree.SeqLen(1))
	}
	if tree.Boundary(0) != 0 || tree.Boundary(1) != 4 {
		t.Errorf("Boundary = %d, %d", tree.Boundary(0), tree.Boundary(1))
	}
	if tree.NumNodes() < 5 {
		t.Errorf("NumNodes = %d", tree.NumNodes())
	}
	if got := tree.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestChildrenIteration(t *testing.T) {
	tree := New([][]categorize.Symbol{sym(1, 2)})
	root := tree.Root()
	if root.IsLeaf() {
		t.Fatal("root is a leaf")
	}
	count := 0
	root.Children(func(first int32, child *Node) bool {
		count++
		label := tree.EdgeSymbols(child)
		if len(label) == 0 || label[0] != first {
			t.Errorf("edge key %d does not match label %v", first, label)
		}
		return true
	})
	if count != root.NumChildren() {
		t.Errorf("iterated %d of %d children", count, root.NumChildren())
	}
	// Early stop.
	count = 0
	root.Children(func(int32, *Node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

// The whole-matching property ST-Filter relies on: each sequence's full
// symbol string followed by its terminator is a root path.
func TestWholeSequencePaths(t *testing.T) {
	seqs := [][]categorize.Symbol{sym(1, 2, 3), sym(1, 2), sym(2, 3)}
	tree := New(seqs)
	for id, s := range seqs {
		pat := make([]int32, 0, len(s)+1)
		for _, v := range s {
			pat = append(pat, int32(v))
		}
		pat = append(pat, Terminator(seq.ID(id)))
		if !tree.Contains(pat) {
			t.Errorf("whole sequence %d with terminator not found", id)
		}
	}
}
