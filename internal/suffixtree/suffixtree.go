// Package suffixtree implements a generalized suffix tree over symbol
// (category) sequences using Ukkonen's online algorithm. It is the index
// structure of the ST-Filter baseline (Park et al., paper §3.4): data
// sequences are categorized, every suffix of every categorized sequence is
// inserted, and query processing walks the tree with a branch-and-bound
// time-warping DP over category intervals.
//
// Each sequence is terminated by a unique negative terminator symbol, so
// the tree of the concatenated text is exactly the generalized suffix tree
// of the collection.
package suffixtree

import (
	"fmt"

	"repro/internal/categorize"
	"repro/internal/seq"
)

// Terminator returns the unique terminator symbol for sequence id.
// Terminators are strictly negative and never collide with category
// symbols, which are >= 0.
func Terminator(id seq.ID) int32 { return -int32(id) - 1 }

// IsTerminator reports whether sym is a terminator symbol.
func IsTerminator(sym int32) bool { return sym < 0 }

// TerminatorID recovers the sequence ID encoded in a terminator symbol.
func TerminatorID(sym int32) seq.ID { return seq.ID(-sym - 1) }

// Node is a suffix tree node. Children are keyed by the first symbol of
// the edge leading to them; the edge label is text[start:end).
type Node struct {
	start    int
	end      *int
	children map[int32]*Node
	link     *Node
}

// Tree is an immutable generalized suffix tree built by New.
type Tree struct {
	text       []int32
	root       *Node
	boundaries []int // start position of each sequence's symbols in text
	lengths    []int // symbol count of each sequence
	nodeCount  int

	// Ukkonen construction state (meaningless after New returns).
	activeNode   *Node
	activeEdge   int
	activeLength int
	remainder    int
	needLink     *Node
	leafEnd      int
}

// New builds the generalized suffix tree of the categorized sequences.
// Sequence i is assigned ID i; its terminator is Terminator(i).
func New(sequences [][]categorize.Symbol) *Tree {
	total := 0
	for _, s := range sequences {
		total += len(s) + 1
	}
	t := &Tree{
		text:       make([]int32, 0, total),
		boundaries: make([]int, len(sequences)),
		lengths:    make([]int, len(sequences)),
	}
	for i, s := range sequences {
		t.boundaries[i] = len(t.text)
		t.lengths[i] = len(s)
		for _, sym := range s {
			t.text = append(t.text, int32(sym))
		}
		t.text = append(t.text, Terminator(seq.ID(i)))
	}
	t.root = t.newNode(-1, new(int))
	*t.root.end = 0
	t.activeNode = t.root
	for i := range t.text {
		t.extend(i)
	}
	return t
}

func (t *Tree) newNode(start int, end *int) *Node {
	t.nodeCount++
	return &Node{start: start, end: end, children: make(map[int32]*Node)}
}

// extend performs Ukkonen phase i.
func (t *Tree) extend(i int) {
	t.leafEnd = i + 1
	t.remainder++
	t.needLink = nil
	for t.remainder > 0 {
		if t.activeLength == 0 {
			t.activeEdge = i
		}
		edgeSym := t.text[t.activeEdge]
		next, ok := t.activeNode.children[edgeSym]
		if !ok {
			// Rule 2: new leaf from activeNode.
			leaf := t.newNode(i, &t.leafEnd)
			t.activeNode.children[t.text[i]] = leaf
			t.addLink(t.activeNode)
		} else {
			edgeLen := t.edgeLength(next)
			if t.activeLength >= edgeLen {
				// Walk down.
				t.activeEdge += edgeLen
				t.activeLength -= edgeLen
				t.activeNode = next
				continue
			}
			if t.text[next.start+t.activeLength] == t.text[i] {
				// Rule 3: already present; stop this phase.
				t.activeLength++
				t.addLink(t.activeNode)
				break
			}
			// Rule 2 with split.
			splitEnd := new(int)
			*splitEnd = next.start + t.activeLength
			split := t.newNode(next.start, splitEnd)
			t.activeNode.children[edgeSym] = split
			leaf := t.newNode(i, &t.leafEnd)
			split.children[t.text[i]] = leaf
			next.start += t.activeLength
			split.children[t.text[next.start]] = next
			t.addLink(split)
		}
		t.remainder--
		if t.activeNode == t.root && t.activeLength > 0 {
			t.activeLength--
			t.activeEdge = i - t.remainder + 1
		} else if t.activeNode != t.root {
			if t.activeNode.link != nil {
				t.activeNode = t.activeNode.link
			} else {
				t.activeNode = t.root
			}
		}
	}
}

func (t *Tree) addLink(n *Node) {
	if t.needLink != nil && t.needLink != t.root {
		t.needLink.link = n
	}
	t.needLink = n
}

func (t *Tree) edgeLength(n *Node) int { return *n.end - n.start }

// Root returns the tree root.
func (t *Tree) Root() *Node { return t.root }

// NumNodes returns the number of nodes, a proxy for the tree's memory
// footprint (the paper's §3.4: the suffix tree grows abnormally large for
// whole matching).
func (t *Tree) NumNodes() int { return t.nodeCount }

// NumSequences returns the number of indexed sequences.
func (t *Tree) NumSequences() int { return len(t.boundaries) }

// SeqLen returns the symbol length of sequence id.
func (t *Tree) SeqLen(id seq.ID) int { return t.lengths[id] }

// EdgeSymbols returns the label of the edge leading into n as a view of the
// internal text.
func (t *Tree) EdgeSymbols(n *Node) []int32 { return t.text[n.start:*n.end] }

// Children iterates over n's outgoing edges in unspecified order.
func (n *Node) Children(fn func(first int32, child *Node) bool) {
	for sym, c := range n.children {
		if !fn(sym, c) {
			return
		}
	}
}

// NumChildren returns the fanout of n.
func (n *Node) NumChildren() int { return len(n.children) }

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// Contains reports whether pattern occurs in the indexed text (exact symbol
// match). Primarily a correctness probe for tests.
func (t *Tree) Contains(pattern []int32) bool {
	n := t.root
	i := 0
	for i < len(pattern) {
		child, ok := n.children[pattern[i]]
		if !ok {
			return false
		}
		label := t.EdgeSymbols(child)
		for j := 0; j < len(label) && i < len(pattern); j++ {
			if label[j] != pattern[i] {
				return false
			}
			i++
		}
		n = child
	}
	return true
}

// SuffixStarts enumerates the starting text positions of every suffix in
// the tree, derived from leaf depths. Used by structural tests.
func (t *Tree) SuffixStarts() []int {
	var out []int
	var dfs func(n *Node, depth int)
	dfs = func(n *Node, depth int) {
		if n.IsLeaf() {
			out = append(out, len(t.text)-depth)
			return
		}
		for _, c := range n.children {
			dfs(c, depth+t.edgeLength(c))
		}
	}
	for _, c := range t.root.children {
		dfs(c, t.edgeLength(c))
	}
	return out
}

// Boundary returns the text start position of sequence id.
func (t *Tree) Boundary(id seq.ID) int { return t.boundaries[id] }

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("suffixtree{%d seqs, %d symbols, %d nodes}",
		len(t.boundaries), len(t.text), t.nodeCount)
}
