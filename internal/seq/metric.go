package seq

import (
	"fmt"
	"math"
)

// Base identifies the per-element base distance Dbase used inside the time
// warping distance. The paper's similarity model (Definition 2) uses LInf;
// the classic DTW from Berndt & Clifford and Yi et al. uses L1. The DP
// combination rule differs: additive bases accumulate with +, LInf combines
// with max.
type Base int

const (
	// LInf takes the maximum element-pair difference along the warping
	// path (paper Definition 2).
	LInf Base = iota
	// L1 sums absolute element-pair differences along the warping path
	// (Definition 1 with p=1).
	L1
	// L2Sq sums squared element-pair differences along the warping path.
	// Note the conventional DTW-with-L2 accumulates squared terms; callers
	// wanting a Euclidean-flavoured value take the square root of the
	// final distance themselves.
	L2Sq
)

// String implements fmt.Stringer.
func (b Base) String() string {
	switch b {
	case LInf:
		return "Linf"
	case L1:
		return "L1"
	case L2Sq:
		return "L2sq"
	default:
		return fmt.Sprintf("Base(%d)", int(b))
	}
}

// Elem returns the base distance between two elements.
func (b Base) Elem(x, y float64) float64 {
	d := x - y
	if d < 0 {
		d = -d
	}
	if b == L2Sq {
		return d * d
	}
	return d
}

// Combine merges an element cost with the best cost of the preceding DP
// cell: addition for accumulating bases, max for LInf.
func (b Base) Combine(elem, prev float64) float64 {
	if b == LInf {
		return math.Max(elem, prev)
	}
	return elem + prev
}

// Lp computes the classic same-length Lp distance of the paper's §2 for
// p = 1, 2 or ∞. It returns an error when the sequences differ in length,
// which is exactly the limitation time warping removes.
func Lp(p float64, s, q Sequence) (float64, error) {
	if len(s) != len(q) {
		return 0, fmt.Errorf("seq: Lp needs equal lengths, got %d and %d", len(s), len(q))
	}
	if math.IsInf(p, 1) {
		max := 0.0
		for i := range s {
			if d := math.Abs(s[i] - q[i]); d > max {
				max = d
			}
		}
		return max, nil
	}
	if p < 1 {
		return 0, fmt.Errorf("seq: Lp needs p >= 1, got %g", p)
	}
	acc := 0.0
	for i := range s {
		acc += math.Pow(math.Abs(s[i]-q[i]), p)
	}
	return math.Pow(acc, 1/p), nil
}

// Euclid is the L2 distance for equal-length sequences.
func Euclid(s, q Sequence) (float64, error) { return Lp(2, s, q) }

// DistToRange returns the distance from value v to the closed interval
// [lo, hi]: zero when v lies inside. Used by the scan-time lower bounds and
// by the suffix-tree traversal over category intervals.
func DistToRange(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}
