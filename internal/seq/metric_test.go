package seq

import (
	"math"
	"testing"
)

func TestBaseString(t *testing.T) {
	cases := map[Base]string{LInf: "Linf", L1: "L1", L2Sq: "L2sq", Base(9): "Base(9)"}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestBaseElem(t *testing.T) {
	if got := LInf.Elem(3, 7); got != 4 {
		t.Errorf("LInf.Elem = %g, want 4", got)
	}
	if got := L1.Elem(7, 3); got != 4 {
		t.Errorf("L1.Elem = %g, want 4", got)
	}
	if got := L2Sq.Elem(3, 7); got != 16 {
		t.Errorf("L2Sq.Elem = %g, want 16", got)
	}
}

func TestBaseCombine(t *testing.T) {
	if got := LInf.Combine(2, 5); got != 5 {
		t.Errorf("LInf.Combine(2,5) = %g, want 5", got)
	}
	if got := LInf.Combine(5, 2); got != 5 {
		t.Errorf("LInf.Combine(5,2) = %g, want 5", got)
	}
	if got := L1.Combine(2, 5); got != 7 {
		t.Errorf("L1.Combine = %g, want 7", got)
	}
	if got := L2Sq.Combine(4, 9); got != 13 {
		t.Errorf("L2Sq.Combine = %g, want 13", got)
	}
}

func TestLp(t *testing.T) {
	s := Sequence{0, 0, 0}
	q := Sequence{3, 4, 0}
	if got, err := Lp(1, s, q); err != nil || got != 7 {
		t.Errorf("L1 = %g, %v; want 7", got, err)
	}
	if got, err := Lp(2, s, q); err != nil || math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %g, %v; want 5", got, err)
	}
	if got, err := Lp(math.Inf(1), s, q); err != nil || got != 4 {
		t.Errorf("Linf = %g, %v; want 4", got, err)
	}
	if got, err := Euclid(s, q); err != nil || math.Abs(got-5) > 1e-12 {
		t.Errorf("Euclid = %g, %v; want 5", got, err)
	}
}

func TestLpErrors(t *testing.T) {
	if _, err := Lp(2, Sequence{1}, Sequence{1, 2}); err == nil {
		t.Error("Lp accepted different lengths")
	}
	if _, err := Lp(0.5, Sequence{1}, Sequence{2}); err == nil {
		t.Error("Lp accepted p < 1")
	}
}

func TestDistToRange(t *testing.T) {
	cases := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 0},
		{0, 0, 10, 0},
		{10, 0, 10, 0},
		{-3, 0, 10, 3},
		{14, 0, 10, 4},
	}
	for _, c := range cases {
		if got := DistToRange(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("DistToRange(%g, %g, %g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
