package seq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSequenceAccessors(t *testing.T) {
	s := Sequence{3, 1, 4, 1, 5, 9, 2, 6}
	if got := s.Len(); got != 8 {
		t.Errorf("Len = %d, want 8", got)
	}
	if s.Empty() {
		t.Error("Empty = true for non-empty sequence")
	}
	if got := s.First(); got != 3 {
		t.Errorf("First = %g, want 3", got)
	}
	if got := s.Last(); got != 6 {
		t.Errorf("Last = %g, want 6", got)
	}
	if got := s.Greatest(); got != 9 {
		t.Errorf("Greatest = %g, want 9", got)
	}
	if got := s.Smallest(); got != 1 {
		t.Errorf("Smallest = %g, want 1", got)
	}
	min, max := s.MinMax()
	if min != 1 || max != 9 {
		t.Errorf("MinMax = (%g, %g), want (1, 9)", min, max)
	}
	rest := s.Rest()
	if rest.Len() != 7 || rest.First() != 1 {
		t.Errorf("Rest = %v", rest)
	}
}

func TestSequenceSingleElement(t *testing.T) {
	s := Sequence{42}
	if s.First() != 42 || s.Last() != 42 || s.Greatest() != 42 || s.Smallest() != 42 {
		t.Errorf("single-element accessors disagree: %v", s)
	}
	if !s.Rest().Empty() {
		t.Error("Rest of single-element sequence should be empty")
	}
}

func TestSequenceEmpty(t *testing.T) {
	var s Sequence
	if !s.Empty() {
		t.Error("zero value should be empty")
	}
	if s.Len() != 0 {
		t.Error("empty Len != 0")
	}
	if _, err := ExtractFeature(s); err != ErrEmpty {
		t.Errorf("ExtractFeature(empty) err = %v, want ErrEmpty", err)
	}
}

func TestMeanStd(t *testing.T) {
	s := Sequence{2, 4, 4, 4, 5, 5, 7, 9}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Std = %g, want 2", got)
	}
	var empty Sequence
	if empty.Mean() != 0 || empty.Std() != 0 {
		t.Error("empty Mean/Std should be 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Sequence{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if !s.Equal(Sequence{1, 2, 3}) {
		t.Error("Equal failed on identical content")
	}
	if s.Equal(c) {
		t.Error("Equal true after divergence")
	}
	if s.Equal(Sequence{1, 2}) {
		t.Error("Equal true for different lengths")
	}
}

func TestStringEliding(t *testing.T) {
	short := Sequence{1, 2}
	if got := short.String(); got != "[1 2]" {
		t.Errorf("String = %q", got)
	}
	long := make(Sequence, 100)
	if got := long.String(); len(got) > 120 {
		t.Errorf("String of long sequence too long: %q", got)
	}
}

func TestExtractFeature(t *testing.T) {
	s := Sequence{5, 1, 9, 3}
	f, err := ExtractFeature(s)
	if err != nil {
		t.Fatal(err)
	}
	want := Feature{First: 5, Last: 3, Greatest: 9, Smallest: 1}
	if f != want {
		t.Errorf("Feature = %+v, want %+v", f, want)
	}
	if !f.Valid() {
		t.Error("extracted feature reported invalid")
	}
	v := f.Vector()
	if v != [4]float64{5, 3, 9, 1} {
		t.Errorf("Vector = %v", v)
	}
}

func TestFeatureDistLInf(t *testing.T) {
	a := Feature{First: 0, Last: 0, Greatest: 10, Smallest: 0}
	b := Feature{First: 1, Last: 3, Greatest: 12, Smallest: -1}
	if got := a.DistLInf(b); got != 3 {
		t.Errorf("DistLInf = %g, want 3", got)
	}
	if got := a.DistLInf(a); got != 0 {
		t.Errorf("self distance = %g, want 0", got)
	}
}

func TestFeatureValid(t *testing.T) {
	bad := Feature{First: 5, Last: 0, Greatest: 1, Smallest: 0} // First > Greatest
	if bad.Valid() {
		t.Error("inconsistent feature reported valid")
	}
	nan := Feature{First: math.NaN()}
	if nan.Valid() {
		t.Error("NaN feature reported valid")
	}
}

func TestMustFeaturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFeature(empty) did not panic")
		}
	}()
	MustFeature(nil)
}

// Property: feature extraction is invariant under time warping, i.e. under
// arbitrary element replication.
func TestFeatureWarpInvariance(t *testing.T) {
	f := func(vals []float64, reps []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := Sequence(vals)
		warped := make(Sequence, 0, len(vals)*2)
		for i, v := range vals {
			n := 1
			if i < len(reps) {
				n += int(reps[i] % 4)
			}
			for k := 0; k < n; k++ {
				warped = append(warped, v)
			}
		}
		return MustFeature(s) == MustFeature(warped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: DistLInf is a metric (symmetry, identity, triangle inequality).
func TestFeatureMetricProperties(t *testing.T) {
	mk := func(a, b, c, d float64) Feature {
		return Feature{First: a, Last: b, Greatest: c, Smallest: d}
	}
	f := func(x, y, z [4]float64) bool {
		fx := mk(x[0], x[1], x[2], x[3])
		fy := mk(y[0], y[1], y[2], y[3])
		fz := mk(z[0], z[1], z[2], z[3])
		dxy := fx.DistLInf(fy)
		dyx := fy.DistLInf(fx)
		dxz := fx.DistLInf(fz)
		dyz := fy.DistLInf(fz)
		const tol = 1e-9
		return dxy == dyx && fx.DistLInf(fx) == 0 && dxz <= dxy+dyz+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
