// Package seq defines the sequence model used throughout the repository:
// variable-length lists of float64 elements, the 4-tuple feature vector that
// is invariant under time warping (First, Last, Greatest, Smallest), and the
// element-wise Lp metrics the distance functions are built from.
package seq

import (
	"errors"
	"fmt"
	"math"
)

// ID identifies a sequence inside a database. IDs are assigned densely by
// the storage layer starting from 0.
type ID uint32

// InvalidID is returned by lookups that fail to resolve a sequence.
const InvalidID = ID(math.MaxUint32)

// Sequence is an ordered list of numeric elements. The zero value is the
// empty sequence. Sequences are value-like: functions in this repository
// never mutate a Sequence they were handed.
type Sequence []float64

// ErrEmpty is returned by operations that are undefined on empty sequences.
var ErrEmpty = errors.New("seq: empty sequence")

// ErrNonFinite is returned by the validating entry points when a sequence
// or query contains a NaN or ±Inf element. Non-finite values poison the
// similarity machinery silently — a NaN feature component makes every
// R-tree MBR comparison false, so the sequence becomes unfindable through
// the index while the L∞ DTW kernels (whose max-style comparisons drop NaN
// costs) can still match it in a sequential scan — an index/scan divergence
// that would break the paper's no-false-dismissal guarantee. Rejecting the
// values at the boundary is what keeps Theorem 1 sound.
var ErrNonFinite = errors.New("seq: non-finite element (NaN or ±Inf)")

// CheckFinite returns nil when every element of s is finite, and an error
// wrapping ErrNonFinite identifying the first offending element otherwise.
// The scan is a single branch per element (v-v is NaN exactly for NaN and
// ±Inf), so validating at every Add/Search boundary costs one pass.
func CheckFinite(s Sequence) error {
	for i, v := range s {
		if v-v != 0 {
			return fmt.Errorf("%w: element %d is %v", ErrNonFinite, i, v)
		}
	}
	return nil
}

// Len returns the number of elements, |S| in the paper's notation.
func (s Sequence) Len() int { return len(s) }

// Empty reports whether the sequence has no elements.
func (s Sequence) Empty() bool { return len(s) == 0 }

// First returns the first element. It panics on an empty sequence; callers
// that may hold empty sequences should check Empty first.
func (s Sequence) First() float64 { return s[0] }

// Last returns the final element. It panics on an empty sequence.
func (s Sequence) Last() float64 { return s[len(s)-1] }

// Rest returns the subsequence from position 2 to the end (paper §2). The
// returned slice aliases the receiver.
func (s Sequence) Rest() Sequence { return s[1:] }

// Greatest returns the largest element. It panics on an empty sequence.
func (s Sequence) Greatest() float64 {
	g := s[0]
	for _, v := range s[1:] {
		if v > g {
			g = v
		}
	}
	return g
}

// Smallest returns the smallest element. It panics on an empty sequence.
func (s Sequence) Smallest() float64 {
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// MinMax returns the smallest and greatest element in one pass.
func (s Sequence) MinMax() (min, max float64) {
	min, max = s[0], s[0]
	for _, v := range s[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Mean returns the arithmetic mean of the elements.
func (s Sequence) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation of the elements. The paper's
// query generator perturbs each element by a random value in [-std/2, std/2].
func (s Sequence) Std() float64 {
	if len(s) == 0 {
		return 0
	}
	mean := s.Mean()
	acc := 0.0
	for _, v := range s {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// Clone returns an independent copy of the sequence.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

// Equal reports exact element-wise equality.
func (s Sequence) Equal(t Sequence) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders a short, human-readable form, eliding long sequences.
func (s Sequence) String() string {
	const maxShown = 8
	if len(s) <= maxShown {
		return fmt.Sprintf("%v", []float64(s))
	}
	return fmt.Sprintf("%v...(len %d)", []float64(s[:maxShown]), len(s))
}

// Feature is the paper's 4-tuple feature vector,
// (First(S), Last(S), Greatest(S), Smallest(S)). It is invariant under time
// warping: stretching a sequence along the time axis changes none of the
// four components.
type Feature struct {
	First, Last, Greatest, Smallest float64
}

// ExtractFeature computes the feature vector of s in O(|S|).
// It returns ErrEmpty for the empty sequence, whose features are undefined.
func ExtractFeature(s Sequence) (Feature, error) {
	if s.Empty() {
		return Feature{}, ErrEmpty
	}
	min, max := s.MinMax()
	return Feature{
		First:    s.First(),
		Last:     s.Last(),
		Greatest: max,
		Smallest: min,
	}, nil
}

// MustFeature is ExtractFeature for sequences known to be non-empty; it
// panics on an empty sequence.
func MustFeature(s Sequence) Feature {
	f, err := ExtractFeature(s)
	if err != nil {
		panic(err)
	}
	return f
}

// Vector returns the feature as a 4-element point, in the dimension order
// used by the index: first, last, greatest, smallest.
func (f Feature) Vector() [4]float64 {
	return [4]float64{f.First, f.Last, f.Greatest, f.Smallest}
}

// DistLInf is the L∞ distance between two feature vectors. It is exactly the
// paper's lower-bound distance function Dtw-lb (Definition 3).
func (f Feature) DistLInf(g Feature) float64 {
	d := math.Abs(f.First - g.First)
	if v := math.Abs(f.Last - g.Last); v > d {
		d = v
	}
	if v := math.Abs(f.Greatest - g.Greatest); v > d {
		d = v
	}
	if v := math.Abs(f.Smallest - g.Smallest); v > d {
		d = v
	}
	return d
}

// Valid reports whether the feature is internally consistent: every
// component finite (a NaN or ±Inf component makes the R-tree entry
// unreachable or its MBRs degenerate) and Smallest ≤ First,Last ≤ Greatest.
func (f Feature) Valid() bool {
	for _, v := range f.Vector() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return f.Smallest <= f.Greatest &&
		f.Smallest <= f.First && f.First <= f.Greatest &&
		f.Smallest <= f.Last && f.Last <= f.Greatest
}
