package seq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Sequence{
		{},
		{1},
		{1.5, -2.25, math.Pi},
		{math.Inf(1), math.Inf(-1), 0, -0.0},
	}
	for _, s := range cases {
		buf := Encode(nil, s)
		if len(buf) != EncodedSize(s) {
			t.Errorf("encoded %v: size %d, want %d", s, len(buf), EncodedSize(s))
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", s, err)
		}
		if n != len(buf) {
			t.Errorf("decode consumed %d of %d bytes", n, len(buf))
		}
		if !got.Equal(s) {
			t.Errorf("round trip: got %v, want %v", got, s)
		}
	}
}

func TestDecodeConcatenated(t *testing.T) {
	a := Sequence{1, 2}
	b := Sequence{3}
	buf := Encode(Encode(nil, a), b)
	gotA, n, err := Decode(buf)
	if err != nil || !gotA.Equal(a) {
		t.Fatalf("first decode: %v, %v", gotA, err)
	}
	gotB, _, err := Decode(buf[n:])
	if err != nil || !gotB.Equal(b) {
		t.Fatalf("second decode: %v, %v", gotB, err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := Encode(nil, Sequence{1, 2, 3})
	for cut := 0; cut < len(buf); cut++ {
		if cut >= 4 && (cut-4)%8 == 0 && cut == len(buf) {
			continue
		}
		if _, _, err := Decode(buf[:cut]); err == nil && cut < len(buf) {
			// A shorter prefix may still decode if it encodes a valid
			// smaller count — but this exact buffer declares 3 elements.
			t.Errorf("Decode accepted truncation at %d bytes", cut)
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode accepted empty buffer")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(vals []float64) bool {
		s := Sequence(vals)
		got, n, err := Decode(Encode(nil, s))
		if err != nil || n != EncodedSize(s) {
			return false
		}
		if len(got) != len(s) {
			return false
		}
		for i := range s {
			// NaN round-trips bit-exactly but != itself.
			if got[i] != s[i] && !(math.IsNaN(got[i]) && math.IsNaN(s[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
