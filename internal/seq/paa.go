package seq

// PAASegments is the number of segments in a stored PAA envelope. 16 keeps
// the per-record footprint at 16·2 float64s + a length — small enough to
// hold every record's profile in memory alongside the 4-d Kim feature, yet
// fine-grained enough for the segment ranges to separate diverging walks.
const PAASegments = 16

// PAAEnvelope is the piecewise-aggregate min/max profile of a sequence: the
// sequence is cut into PAASegments contiguous segments and each segment
// stores the min and max of its values, plus the original length. It is the
// per-record half of the LB_PAA filter tier — the query side reduces its
// own values over band-expanded segment windows and compares interval gaps,
// so candidate records can be pruned before their sequences are fetched.
type PAAEnvelope struct {
	Len      int
	Min, Max [PAASegments]float64
}

// PAABounds returns the half-open element range [lo, hi) of segment k for a
// sequence of length n. Boundaries are ⌊k·n/PAASegments⌋, so every element
// belongs to exactly one segment; when n < PAASegments some segments are
// empty (lo == hi) and carry zero weight in any bound.
func PAABounds(n, k int) (lo, hi int) {
	return k * n / PAASegments, (k + 1) * n / PAASegments
}

// ExtractPAAEnvelope computes the PAA envelope of s. Empty segments (short
// sequences) store a degenerate single-value range so the record stays
// finite; their query-time weight is zero either way. Returns ErrEmpty for
// the empty sequence, whose profile is undefined.
func ExtractPAAEnvelope(s Sequence) (PAAEnvelope, error) {
	if s.Empty() {
		return PAAEnvelope{}, ErrEmpty
	}
	n := len(s)
	e := PAAEnvelope{Len: n}
	for k := 0; k < PAASegments; k++ {
		lo, hi := PAABounds(n, k)
		if lo >= hi {
			at := lo
			if at > n-1 {
				at = n - 1
			}
			e.Min[k], e.Max[k] = s[at], s[at]
			continue
		}
		mn, mx := s[lo], s[lo]
		for _, v := range s[lo+1 : hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		e.Min[k], e.Max[k] = mn, mx
	}
	return e, nil
}
