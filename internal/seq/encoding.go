package seq

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout of an encoded sequence record:
//
//	uint32 little-endian  element count n
//	n × float64           IEEE-754 bits, little-endian
//
// The layout is stable and is what the heap file in internal/seqdb stores.

// EncodedSize returns the number of bytes Encode will produce for s.
func EncodedSize(s Sequence) int { return 4 + 8*len(s) }

// Encode appends the binary encoding of s to dst and returns the extended
// slice.
func Encode(dst []byte, s Sequence) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	for _, v := range s {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Decode parses one encoded sequence from the front of buf, returning the
// sequence and the number of bytes consumed.
func Decode(buf []byte) (Sequence, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("seq: truncated header: %d bytes", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	need := 4 + 8*n
	if len(buf) < need {
		return nil, 0, fmt.Errorf("seq: truncated body: need %d bytes, have %d", need, len(buf))
	}
	s := make(Sequence, n)
	off := 4
	for i := 0; i < n; i++ {
		s[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return s, need, nil
}
