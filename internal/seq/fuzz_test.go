package seq

import (
	"math"
	"testing"
)

// FuzzDecode ensures Decode never panics or over-reads on arbitrary bytes
// and that anything it accepts round-trips through Encode.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(Encode(nil, Sequence{1.5, -2, math.Pi}))
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		re := Encode(nil, s)
		if len(re) != n {
			t.Fatalf("re-encode size %d != consumed %d", len(re), n)
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}

// FuzzFeature ensures feature extraction is total on non-empty input,
// produces internally consistent features for finite data, and flags any
// non-finite input as invalid (such features make the sequence unreachable
// through the index's range queries).
func FuzzFeature(f *testing.F) {
	f.Add(float64(1), float64(2), float64(3))
	f.Add(float64(-1), math.Inf(1), float64(0))
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		s := Sequence{a, b, c}
		feat, err := ExtractFeature(s)
		if err != nil {
			t.Fatalf("non-empty sequence rejected: %v", err)
		}
		if CheckFinite(s) != nil {
			if feat.Valid() {
				t.Fatalf("feature %+v of non-finite %v reported valid", feat, s)
			}
			return
		}
		if !feat.Valid() {
			t.Fatalf("inconsistent feature %+v for %v", feat, s)
		}
	})
}
