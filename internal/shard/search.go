package shard

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Search fans one whole-matching range query out across all shards (one
// index range query plus exact-DTW verification per shard, run concurrently
// on the engine's worker pool) and merges the partial results: matches are
// concatenated with their IDs lifted to the global space and re-sorted by
// (distance, ID); the statistics sum the per-shard work counters while the
// wall time is the observed fan-out duration (≈ the slowest shard when the
// pool runs all shards concurrently).
func (e *Engine) Search(query []float64, epsilon float64) (*core.Result, error) {
	return e.search(nil, query, epsilon, 0, true)
}

// SearchBand is Search under an explicit Sakoe–Chiba band half-width
// (0 = unconstrained); every shard answers the same banded distance, so the
// merged result equals the single-database banded answer.
func (e *Engine) SearchBand(query []float64, epsilon float64, band int) (*core.Result, error) {
	return e.search(nil, query, epsilon, band, true)
}

// SearchBandCtx is SearchBand governed by a context: a done context abandons
// every shard's work at its next candidate boundary and the fan-out returns
// the context's error. A completed search is bit-identical to SearchBand —
// cancellation can only abandon work, never skip a qualifying candidate.
func (e *Engine) SearchBandCtx(ctx context.Context, query []float64, epsilon float64, band int) (*core.Result, error) {
	return e.search(ctx, query, epsilon, band, true)
}

// perShardWorkers splits the engine's refine budget across the shards one
// search visits concurrently: with C = min(parallelism, shards) shard
// workers in flight, each may spend ⌊budget/C⌋ (at least 1) intra-query
// refinement workers, so one search runs at most ~budget refinement
// goroutines no matter how the shard count and fan-out pool are
// configured. Serial shard visits (SearchBatch's per-query workers) get 1:
// the batch dispatcher already runs one worker per query, and nesting
// intra-query pools under that is what the budget exists to prevent.
func (e *Engine) perShardWorkers(parallel bool) int {
	if !parallel {
		return 1
	}
	conc := e.parallelism
	if conc > len(e.stores) {
		conc = len(e.stores)
	}
	per := e.refineWorkers / conc
	if per < 1 {
		per = 1
	}
	return per
}

func (e *Engine) search(ctx context.Context, query []float64, epsilon float64, band int, parallel bool) (*core.Result, error) {
	start := time.Now()
	workers := e.perShardWorkers(parallel)
	results := make([]*core.Result, len(e.stores))
	run := func(si int) error {
		e.locks[si].RLock()
		res, err := e.stores[si].SearchBandWorkersCtx(ctx, query, epsilon, band, workers)
		e.locks[si].RUnlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		e.counters[si].accumulate(res.Stats)
		results[si] = res
		return nil
	}
	var err error
	if parallel {
		err = e.fanOut(run)
	} else {
		for si := range e.stores {
			if err = run(si); err != nil {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	out := &core.Result{}
	for si, r := range results {
		for _, m := range r.Matches {
			out.Matches = append(out.Matches, core.Match{ID: e.globalID(m.ID, si), Dist: m.Dist})
		}
		out.Stats.Add(r.Stats)
	}
	sortMatches(out.Matches)
	out.Stats.Results = len(out.Matches)
	out.Stats.Wall = time.Since(start)
	return out, nil
}

// NearestK fans the exact k-NN search out across shards. The shards share a
// best-k bound (core.SharedBound): as soon as any shard has k exact
// distances it publishes its k-th best, and every other shard prunes its
// index walk against the minimum published so far, so laggard shards stop
// early. The per-shard survivor lists are merged, re-sorted, and truncated
// to k — identical to the single-database result (modulo ID assignment).
func (e *Engine) NearestK(query []float64, k int) ([]core.Match, error) {
	ms, _, err := e.NearestKStats(query, k)
	return ms, err
}

// NearestKStats is NearestKStatsBand with the unconstrained distance.
func (e *Engine) NearestKStats(query []float64, k int) ([]core.Match, core.QueryStats, error) {
	return e.NearestKStatsBand(query, k, 0)
}

// NearestKStatsBand is NearestK under an explicit Sakoe–Chiba band
// half-width (0 = unconstrained), reporting the summed per-shard query
// work. The per-shard statistics also feed the engine's cumulative
// counters, so k-NN traffic shows up in ShardStats alongside range searches
// and the exported conservation law (Candidates = ΣPruned + DTWCalls)
// covers both kinds of query. Wall is the observed fan-out duration;
// RefineWall sums the shards' walk times (filtering and refinement
// interleave in the k-NN walk, so there is no separate filter phase to
// report).
func (e *Engine) NearestKStatsBand(query []float64, k, band int) ([]core.Match, core.QueryStats, error) {
	return e.NearestKStatsBandCtx(nil, query, k, band)
}

// NearestKStatsBandCtx is NearestKStatsBand governed by a context: a done
// context abandons every shard's walk at its next candidate boundary and the
// fan-out returns the context's error.
func (e *Engine) NearestKStatsBandCtx(ctx context.Context, query []float64, k, band int) ([]core.Match, core.QueryStats, error) {
	var stats core.QueryStats
	if k <= 0 {
		return nil, stats, nil
	}
	start := time.Now()
	bound := core.NewSharedBound()
	workers := e.perShardWorkers(true)
	perShard := make([][]core.Match, len(e.stores))
	perStats := make([]core.QueryStats, len(e.stores))
	err := e.fanOut(func(si int) error {
		e.locks[si].RLock()
		ms, qs, err := e.stores[si].NearestKStatsBandWorkersCtx(ctx, query, k, band, bound, workers)
		e.locks[si].RUnlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		e.counters[si].accumulate(qs)
		for i := range ms {
			ms[i].ID = e.globalID(ms[i].ID, si)
		}
		perShard[si], perStats[si] = ms, qs
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	var merged []core.Match
	for si, ms := range perShard {
		merged = append(merged, ms...)
		stats.Add(perStats[si])
	}
	sortMatches(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	stats.Results = len(merged)
	stats.Wall = time.Since(start)
	return merged, stats, nil
}

// SearchBatch runs many queries concurrently, one worker per query. Each
// worker visits the shards of its query serially: with P workers spread
// over N shards that keeps every buffer pool busy without nesting worker
// pools, which is what maximizes batch throughput. parallelism <= 0 selects
// GOMAXPROCS. The first error aborts the batch: the dispatcher stops
// feeding queries and in-flight workers drain without executing.
func (e *Engine) SearchBatch(queries [][]float64, epsilon float64, parallelism int) ([]*core.Result, error) {
	return e.SearchBatchBand(queries, epsilon, 0, parallelism)
}

// SearchBatchBand is SearchBatch under an explicit Sakoe–Chiba band
// half-width (0 = unconstrained).
func (e *Engine) SearchBatchBand(queries [][]float64, epsilon float64, band, parallelism int) ([]*core.Result, error) {
	return e.SearchBatchBandCtx(nil, queries, epsilon, band, parallelism)
}

// SearchBatchBandCtx is SearchBatchBand governed by a context: a done
// context stops the dispatcher and abandons in-flight queries at their next
// candidate boundary, returning the context's error for the whole batch.
func (e *Engine) SearchBatchBandCtx(ctx context.Context, queries [][]float64, epsilon float64, band, parallelism int) ([]*core.Result, error) {
	if epsilon < 0 {
		return nil, fmt.Errorf("shard: negative tolerance %g", epsilon)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	out := make([]*core.Result, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if failed() {
					continue
				}
				res, err := e.search(ctx, queries[i], epsilon, band, false)
				if err != nil {
					setErr(fmt.Errorf("shard: query %d: %w", i, err))
					continue
				}
				out[i] = res
			}
		}()
	}
	for i := range queries {
		if failed() {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// sortMatches orders matches by ascending distance, breaking ties by ID —
// the same order the single-database engine produces.
func sortMatches(matches []core.Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Dist != matches[j].Dist {
			return matches[i].Dist < matches[j].Dist
		}
		return matches[i].ID < matches[j].ID
	})
}
