// Package shard implements a hash-partitioned sharded query engine over N
// independent single-partition databases. Each shard owns its own heap
// file, feature index, and buffer pools; the engine routes point operations
// (Get/Remove) straight to the owning shard, fans whole-matching searches
// out across shards and merges the partial results, and serializes writers
// per shard only, so inserts into different shards proceed concurrently
// end-to-end.
//
// Sequence IDs carry their placement: a sequence stored at local ID l in
// shard s has global ID l*N + s, so ShardOf(id) = id mod N and the local ID
// is id / N — pure functions of the ID and the shard count, stable across
// Close/Open. Placement of new sequences is modulo-hashing of the insertion
// counter (round-robin), which keeps shards balanced without any directory
// state.
//
// The package is deliberately ignorant of how a shard is built: it
// orchestrates over the Store interface, which *twsim.DB satisfies (the
// root package wires the two together; importing it from here would cycle).
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/seq"
)

// Store is one partition: the slice of the single-database engine the
// router composes. All methods follow *twsim.DB semantics — safe for
// concurrent readers, writers externally serialized (the engine holds one
// RWMutex per shard for exactly that).
type Store interface {
	Add(values []float64) (seq.ID, error)
	AddAll(values [][]float64) (seq.ID, error)
	Remove(id seq.ID) (bool, error)
	Get(id seq.ID) ([]float64, error)
	// SearchBandWorkersCtx and NearestKStatsBandWorkersCtx take the context
	// governing the query (nil never cancels; a done context abandons the
	// shard's work at the next candidate boundary), the Sakoe–Chiba band
	// half-width the query answers under (0 = unconstrained), and the
	// number of intra-query refinement workers the shard may use for this
	// call; the engine computes the latter from its refine budget so
	// fan-out × intra-query parallelism never oversubscribes (workers ≤ 1
	// means serial). NearestKStatsBandWorkersCtx reports the query work
	// alongside the matches so the engine can accumulate k-NN traffic into
	// the per-shard counters.
	SearchBandWorkersCtx(ctx context.Context, query []float64, epsilon float64, band, workers int) (*core.Result, error)
	NearestKStatsBandWorkersCtx(ctx context.Context, query []float64, k, band int, bound *core.SharedBound, workers int) ([]core.Match, core.QueryStats, error)
	StorageStats() core.StorageStats
	IndexEngineStats() core.IndexEngineStats
	OpenDiagnostics() []string
	Len() int
	DataBytes() int64
	IndexPages() int
	LastRepair() core.RepairStats
	Verify() error
	CheckInvariants() error
	Flush() error
	Close() error
}

// Engine routes operations across shards. Unlike Store implementations it
// is safe for fully concurrent use: readers never block each other, and
// writers block only writers of the same shard.
type Engine struct {
	stores        []Store
	locks         []sync.RWMutex
	counters      []queryCounters // cumulative per-shard query work
	next          atomic.Uint32   // insertion counter; placement = next mod N
	parallelism   int             // fan-out worker bound per search
	refineWorkers int             // total intra-query refinement budget per search
}

// New builds an engine over the given shards. parallelism bounds the
// per-search fan-out worker pool; refineWorkers is the total intra-query
// refinement budget one search may spend across all shards it fans out to,
// so fan-out and refinement parallelism multiply to at most
// max(parallelism, refineWorkers) goroutines rather than their product
// (<= 0 means GOMAXPROCS for either).
func New(stores []Store, parallelism, refineWorkers int) (*Engine, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: no shards")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if refineWorkers <= 0 {
		refineWorkers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		stores:        stores,
		locks:         make([]sync.RWMutex, len(stores)),
		counters:      make([]queryCounters, len(stores)),
		parallelism:   parallelism,
		refineWorkers: refineWorkers,
	}
	// Start the insertion counter past the current contents so placement
	// stays balanced when an existing database is reopened.
	total := 0
	for i := range stores {
		total += stores[i].Len()
	}
	e.next.Store(uint32(total))
	return e, nil
}

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.stores) }

// ShardOf returns the shard owning the given global ID.
func (e *Engine) ShardOf(id seq.ID) int { return int(uint32(id) % uint32(len(e.stores))) }

// route splits a global ID into its owning shard and local ID.
func (e *Engine) route(id seq.ID) (shard int, local seq.ID) {
	n := uint32(len(e.stores))
	return int(uint32(id) % n), seq.ID(uint32(id) / n)
}

// globalID maps a shard-local ID back to the global ID space.
func (e *Engine) globalID(local seq.ID, shard int) seq.ID {
	return seq.ID(uint32(local)*uint32(len(e.stores)) + uint32(shard))
}

// GlobalID maps a shard-local ID back to the global ID space — the inverse
// of the routing split (global = local*N + shard). Exported for composite
// read paths built outside this package (the sharded subsequence index)
// whose per-shard results carry local IDs that must be lifted before the
// merge.
func (e *Engine) GlobalID(local seq.ID, shard int) seq.ID {
	return e.globalID(local, shard)
}

// Add stores one sequence in the next shard of the placement rotation,
// holding only that shard's write lock.
func (e *Engine) Add(values []float64) (seq.ID, error) {
	si := int(e.next.Add(1)-1) % len(e.stores)
	e.locks[si].Lock()
	defer e.locks[si].Unlock()
	local, err := e.stores[si].Add(values)
	if err != nil {
		return seq.InvalidID, err
	}
	return e.globalID(local, si), nil
}

// AddAll stores a batch, splitting it across shards along the placement
// rotation and loading the per-shard sub-batches concurrently. It returns
// the global ID of every stored sequence, in input order.
//
// Each per-shard sub-batch is atomic (Store.AddAll semantics). When one
// shard fails, sub-batches already stored on other shards are rolled back
// by removal, so no sequence of a failed batch remains visible — though the
// IDs consumed by the rolled-back sub-batches stay burned (IDs are never
// reused).
func (e *Engine) AddAll(values [][]float64) ([]seq.ID, error) {
	if len(values) == 0 {
		return nil, errors.New("shard: AddAll of empty batch")
	}
	n := len(e.stores)
	cursor := e.next.Add(uint32(len(values))) - uint32(len(values))
	perShard := make([][][]float64, n)
	slots := make([][]int, n) // original batch positions per shard
	for i, v := range values {
		si := int((cursor + uint32(i)) % uint32(n))
		perShard[si] = append(perShard[si], v)
		slots[si] = append(slots[si], i)
	}
	ids := make([]seq.ID, len(values))
	firsts := make([]seq.ID, n)
	stored := make([]bool, n)
	err := e.fanOut(func(si int) error {
		if len(perShard[si]) == 0 {
			return nil
		}
		e.locks[si].Lock()
		first, err := e.stores[si].AddAll(perShard[si])
		e.locks[si].Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		firsts[si], stored[si] = first, true
		for j := range perShard[si] {
			ids[slots[si][j]] = e.globalID(first+seq.ID(j), si)
		}
		return nil
	})
	if err != nil {
		// Best-effort cross-shard rollback; whatever removal cannot undo is
		// caught by each shard's own Open-time reconciliation.
		for si := range e.stores {
			if !stored[si] {
				continue
			}
			e.locks[si].Lock()
			for j := range perShard[si] {
				_, _ = e.stores[si].Remove(firsts[si] + seq.ID(j))
			}
			e.locks[si].Unlock()
		}
		return nil, err
	}
	return ids, nil
}

// Get fetches a sequence from its owning shard.
func (e *Engine) Get(id seq.ID) ([]float64, error) {
	si, local := e.route(id)
	e.locks[si].RLock()
	defer e.locks[si].RUnlock()
	return e.stores[si].Get(local)
}

// Remove deletes a sequence from its owning shard, holding only that
// shard's write lock.
func (e *Engine) Remove(id seq.ID) (bool, error) {
	si, local := e.route(id)
	e.locks[si].Lock()
	defer e.locks[si].Unlock()
	return e.stores[si].Remove(local)
}

// Len returns the number of live sequences across all shards.
func (e *Engine) Len() int {
	total := 0
	for i := range e.stores {
		e.locks[i].RLock()
		total += e.stores[i].Len()
		e.locks[i].RUnlock()
	}
	return total
}

// DataBytes returns the logical data size summed over shards.
func (e *Engine) DataBytes() int64 {
	var total int64
	for i := range e.stores {
		e.locks[i].RLock()
		total += e.stores[i].DataBytes()
		e.locks[i].RUnlock()
	}
	return total
}

// IndexPages returns the index page count summed over shards.
func (e *Engine) IndexPages() int {
	total := 0
	for i := range e.stores {
		e.locks[i].RLock()
		total += e.stores[i].IndexPages()
		e.locks[i].RUnlock()
	}
	return total
}

// StorageStats aggregates the storage-layer counters (buffer pools and
// decoded-sequence caches) across shards.
func (e *Engine) StorageStats() core.StorageStats {
	var total core.StorageStats
	for i := range e.stores {
		e.locks[i].RLock()
		total.Add(e.stores[i].StorageStats())
		e.locks[i].RUnlock()
	}
	return total
}

// IndexEngineStats aggregates the feature-index engine counters across
// shards (snapshot generations, delta sizes, merge counts for the flat
// engine).
func (e *Engine) IndexEngineStats() core.IndexEngineStats {
	var total core.IndexEngineStats
	for i := range e.stores {
		e.locks[i].RLock()
		total.Add(e.stores[i].IndexEngineStats())
		e.locks[i].RUnlock()
	}
	return total
}

// OpenDiagnostics concatenates every shard's open-time notes, each prefixed
// with its shard number.
func (e *Engine) OpenDiagnostics() []string {
	var notes []string
	for i := range e.stores {
		e.locks[i].RLock()
		for _, n := range e.stores[i].OpenDiagnostics() {
			notes = append(notes, fmt.Sprintf("shard %d: %s", i, n))
		}
		e.locks[i].RUnlock()
	}
	return notes
}

// Verify runs each shard's full integrity check concurrently.
func (e *Engine) Verify() error {
	return e.fanOut(func(si int) error {
		e.locks[si].RLock()
		defer e.locks[si].RUnlock()
		if err := e.stores[si].Verify(); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		return nil
	})
}

// CheckInvariants validates every shard's index structure.
func (e *Engine) CheckInvariants() error {
	for si := range e.stores {
		e.locks[si].RLock()
		err := e.stores[si].CheckInvariants()
		e.locks[si].RUnlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return nil
}

// Flush persists every shard.
func (e *Engine) Flush() error {
	var first error
	for si := range e.stores {
		e.locks[si].Lock()
		err := e.stores[si].Flush()
		e.locks[si].Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return first
}

// Close closes every shard, returning the first error but always closing
// all of them.
func (e *Engine) Close() error {
	var first error
	for si := range e.stores {
		e.locks[si].Lock()
		err := e.stores[si].Close()
		e.locks[si].Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return first
}

// FanOutRead runs fn(shard) for every shard on the engine's bounded worker
// pool while holding that shard's read lock, returning the first error.
// It is the building block for composite read paths assembled outside this
// package (the sharded subsequence index builds and queries per-shard
// indexes through it): fn observes a quiescent shard — no writer can
// interleave — and fan-out parallelism matches every other read the engine
// performs.
func (e *Engine) FanOutRead(fn func(shard int) error) error {
	return e.fanOut(func(si int) error {
		e.locks[si].RLock()
		defer e.locks[si].RUnlock()
		return fn(si)
	})
}

// fanOut runs fn(shard) for every shard on a worker pool bounded by the
// engine's parallelism, returning the first error. Remaining shards are
// still visited after an error (their work is skipped only by fn itself
// when it chooses to); fanOut guarantees fn was invoked for every shard
// index unless the pool saw the error before dispatching it.
func (e *Engine) fanOut(fn func(shard int) error) error {
	n := len(e.stores)
	workers := e.parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for si := 0; si < n; si++ {
			if err := fn(si); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range work {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue
				}
				if err := fn(si); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for si := 0; si < n; si++ {
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break
		}
		work <- si
	}
	close(work)
	wg.Wait()
	return firstErr
}
