package shard

import (
	"sync/atomic"

	"repro/internal/core"
)

// QueryTotals are one shard's cumulative query work counters since the
// engine was built: how many queries (range searches and k-NN walks)
// touched the shard, how many index candidates they produced, and where
// the refinement cascade dismissed them. Operators read the breakdown to spot skew (a shard doing
// disproportionate DTW work) and to see the cascade's prune rates in
// production rather than only in benchmarks.
type QueryTotals struct {
	Searches         int64
	Candidates       int64
	DTWCalls         int64
	DTWAbandoned     int64
	LBKimPruned      int64
	LBPAAPruned      int64
	LBKeoghPruned    int64
	LBYiPruned       int64
	LBImprovedPruned int64
	CorridorPruned   int64
	KNNRepushes      int64
	KNNEnvCutoffs    int64
}

// queryCounters is the lock-free accumulation form of QueryTotals; the
// fan-out workers of concurrent searches update it without coordination.
type queryCounters struct {
	searches, candidates, dtwCalls, dtwAbandoned      atomic.Int64
	lbKim, lbPAA, lbKeogh, lbYi, lbImproved, corridor atomic.Int64
	knnRepushes, knnEnvCutoffs                        atomic.Int64
}

func (c *queryCounters) accumulate(qs core.QueryStats) {
	c.searches.Add(1)
	c.candidates.Add(int64(qs.Candidates))
	c.dtwCalls.Add(int64(qs.DTWCalls))
	c.dtwAbandoned.Add(int64(qs.DTWAbandoned))
	c.lbKim.Add(int64(qs.LBKimPruned))
	c.lbPAA.Add(int64(qs.LBPAAPruned))
	c.lbKeogh.Add(int64(qs.LBKeoghPruned))
	c.lbYi.Add(int64(qs.LBYiPruned))
	c.lbImproved.Add(int64(qs.LBImprovedPruned))
	c.corridor.Add(int64(qs.CorridorPruned))
	c.knnRepushes.Add(int64(qs.KNNRepushes))
	c.knnEnvCutoffs.Add(int64(qs.KNNEnvCutoffs))
}

func (c *queryCounters) snapshot() QueryTotals {
	return QueryTotals{
		Searches:         c.searches.Load(),
		Candidates:       c.candidates.Load(),
		DTWCalls:         c.dtwCalls.Load(),
		DTWAbandoned:     c.dtwAbandoned.Load(),
		LBKimPruned:      c.lbKim.Load(),
		LBPAAPruned:      c.lbPAA.Load(),
		LBKeoghPruned:    c.lbKeogh.Load(),
		LBYiPruned:       c.lbYi.Load(),
		LBImprovedPruned: c.lbImproved.Load(),
		CorridorPruned:   c.corridor.Load(),
		KNNRepushes:      c.knnRepushes.Load(),
		KNNEnvCutoffs:    c.knnEnvCutoffs.Load(),
	}
}

// ShardStat is one shard's contribution to the database statistics —
// operators watch the per-shard breakdown for skew (a hot shard shows up as
// an outlying sequence or page count).
type ShardStat struct {
	// ID is the shard number (the residue class id mod N it owns).
	ID int
	// Sequences is the shard's live sequence count.
	Sequences int
	// DataBytes is the logical size of the shard's heap data.
	DataBytes int64
	// IndexPages is the shard's feature index size in pages.
	IndexPages int
	// Repair is what the shard's Open-time reconciliation had to fix.
	Repair core.RepairStats
	// Queries is the shard's cumulative query work since the engine was
	// built, including the per-tier cascade prune counters.
	Queries QueryTotals
}

// ShardStats returns the per-shard breakdown, indexed by shard ID.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.stores))
	for si := range e.stores {
		e.locks[si].RLock()
		out[si] = ShardStat{
			ID:         si,
			Sequences:  e.stores[si].Len(),
			DataBytes:  e.stores[si].DataBytes(),
			IndexPages: e.stores[si].IndexPages(),
			Repair:     e.stores[si].LastRepair(),
			Queries:    e.counters[si].snapshot(),
		}
		e.locks[si].RUnlock()
	}
	return out
}

// LastRepair aggregates the per-shard Open-time repair statistics: counters
// sum; Rebuilt reports whether any shard's index was rebuilt outright.
func (e *Engine) LastRepair() core.RepairStats {
	var agg core.RepairStats
	for si := range e.stores {
		e.locks[si].RLock()
		rs := e.stores[si].LastRepair()
		e.locks[si].RUnlock()
		agg.LiveSequences += rs.LiveSequences
		agg.IndexedBefore += rs.IndexedBefore
		agg.Orphans += rs.Orphans
		agg.Dangling += rs.Dangling
		agg.Mismatched += rs.Mismatched
		agg.Rebuilt = agg.Rebuilt || rs.Rebuilt
	}
	return agg
}
