package shard

import "repro/internal/core"

// ShardStat is one shard's contribution to the database statistics —
// operators watch the per-shard breakdown for skew (a hot shard shows up as
// an outlying sequence or page count).
type ShardStat struct {
	// ID is the shard number (the residue class id mod N it owns).
	ID int
	// Sequences is the shard's live sequence count.
	Sequences int
	// DataBytes is the logical size of the shard's heap data.
	DataBytes int64
	// IndexPages is the shard's feature index size in pages.
	IndexPages int
	// Repair is what the shard's Open-time reconciliation had to fix.
	Repair core.RepairStats
}

// ShardStats returns the per-shard breakdown, indexed by shard ID.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.stores))
	for si := range e.stores {
		e.locks[si].RLock()
		out[si] = ShardStat{
			ID:         si,
			Sequences:  e.stores[si].Len(),
			DataBytes:  e.stores[si].DataBytes(),
			IndexPages: e.stores[si].IndexPages(),
			Repair:     e.stores[si].LastRepair(),
		}
		e.locks[si].RUnlock()
	}
	return out
}

// LastRepair aggregates the per-shard Open-time repair statistics: counters
// sum; Rebuilt reports whether any shard's index was rebuilt outright.
func (e *Engine) LastRepair() core.RepairStats {
	var agg core.RepairStats
	for si := range e.stores {
		e.locks[si].RLock()
		rs := e.stores[si].LastRepair()
		e.locks[si].RUnlock()
		agg.LiveSequences += rs.LiveSequences
		agg.IndexedBefore += rs.IndexedBefore
		agg.Orphans += rs.Orphans
		agg.Dangling += rs.Dangling
		agg.Mismatched += rs.Mismatched
		agg.Rebuilt = agg.Rebuilt || rs.Rebuilt
	}
	return agg
}
