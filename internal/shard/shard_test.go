package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
)

// fakeStore is an in-memory Store for exercising the router in isolation
// (placement, ID mapping, rollback); the real-engine behavior is covered by
// the root package's oracle tests.
type fakeStore struct {
	mu      sync.Mutex
	seqs    map[seq.ID][]float64
	next    seq.ID
	failAdd bool // fail the next AddAll
}

func newFakeStore() *fakeStore { return &fakeStore{seqs: make(map[seq.ID][]float64)} }

func (f *fakeStore) Add(values []float64) (seq.ID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.next
	f.next++
	f.seqs[id] = values
	return id, nil
}

func (f *fakeStore) AddAll(values [][]float64) (seq.ID, error) {
	f.mu.Lock()
	fail := f.failAdd
	f.mu.Unlock()
	if fail {
		return seq.InvalidID, errors.New("fake: AddAll failure")
	}
	first := seq.InvalidID
	for i, v := range values {
		id, _ := f.Add(v)
		if i == 0 {
			first = id
		}
	}
	return first, nil
}

func (f *fakeStore) Remove(id seq.ID) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.seqs[id]; !ok {
		return false, nil
	}
	delete(f.seqs, id)
	return true, nil
}

func (f *fakeStore) Get(id seq.ID) ([]float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.seqs[id]
	if !ok {
		return nil, fmt.Errorf("fake: id %d not found", id)
	}
	return v, nil
}

func (f *fakeStore) SearchBandWorkersCtx(ctx context.Context, query []float64, epsilon float64, band, workers int) (*core.Result, error) {
	return &core.Result{}, nil
}

func (f *fakeStore) NearestKStatsBandWorkersCtx(ctx context.Context, query []float64, k, band int, bound *core.SharedBound, workers int) ([]core.Match, core.QueryStats, error) {
	return nil, core.QueryStats{}, nil
}

func (f *fakeStore) StorageStats() core.StorageStats { return core.StorageStats{} }

func (f *fakeStore) IndexEngineStats() core.IndexEngineStats {
	return core.IndexEngineStats{Engine: core.EngineGuttman}
}

func (f *fakeStore) OpenDiagnostics() []string { return nil }

func (f *fakeStore) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.seqs)
}

func (f *fakeStore) DataBytes() int64             { return 0 }
func (f *fakeStore) IndexPages() int              { return 0 }
func (f *fakeStore) LastRepair() core.RepairStats { return core.RepairStats{} }
func (f *fakeStore) Verify() error                { return nil }
func (f *fakeStore) CheckInvariants() error       { return nil }
func (f *fakeStore) Flush() error                 { return nil }
func (f *fakeStore) Close() error                 { return nil }

func newFakeEngine(t *testing.T, n int) (*Engine, []*fakeStore) {
	t.Helper()
	fakes := make([]*fakeStore, n)
	stores := make([]Store, n)
	for i := range fakes {
		fakes[i] = newFakeStore()
		stores[i] = fakes[i]
	}
	e, err := New(stores, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e, fakes
}

// TestRouting: global IDs are stable pure functions of (local, shard) and
// placement is balanced round-robin.
func TestRouting(t *testing.T) {
	e, fakes := newFakeEngine(t, 3)
	var ids []seq.ID
	for i := 0; i < 31; i++ {
		id, err := e.Add([]float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if got := e.ShardOf(id); got != int(id)%3 {
			t.Fatalf("ShardOf(%d) = %d, want %d", id, got, int(id)%3)
		}
	}
	// Balanced: no shard holds more than ceil(31/3).
	for i, f := range fakes {
		if f.Len() > 11 {
			t.Fatalf("shard %d holds %d of 31 sequences", i, f.Len())
		}
	}
	for i, id := range ids {
		v, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if v[0] != float64(i) {
			t.Fatalf("Get(%d) = %v, want [%d]", id, v, i)
		}
	}
}

// TestAddAllRollback: when one shard's sub-batch fails, sub-batches already
// stored on the other shards are rolled back — the batch leaves no sequence
// visible.
func TestAddAllRollback(t *testing.T) {
	e, fakes := newFakeEngine(t, 3)
	if _, err := e.AddAll([][]float64{{1}, {2}, {3}, {4}}); err != nil {
		t.Fatal(err)
	}
	before := e.Len()
	fakes[1].failAdd = true
	batch := [][]float64{{10}, {11}, {12}, {13}, {14}, {15}}
	if _, err := e.AddAll(batch); err == nil {
		t.Fatal("AddAll with a failing shard succeeded")
	}
	if got := e.Len(); got != before {
		t.Fatalf("failed batch left %d sequences visible", got-before)
	}
}

// TestAddAllIDsInInputOrder: the returned IDs line up with the input batch.
func TestAddAllIDsInInputOrder(t *testing.T) {
	e, _ := newFakeEngine(t, 4)
	batch := make([][]float64, 10)
	for i := range batch {
		batch[i] = []float64{float64(100 + i)}
	}
	ids, err := e.AddAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		v, err := e.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v[0] != float64(100+i) {
			t.Fatalf("ids[%d] = %d resolves to %v, want [%d]", i, id, v, 100+i)
		}
	}
}

// TestEngineRequiresShards: an empty shard set is rejected.
func TestEngineRequiresShards(t *testing.T) {
	if _, err := New(nil, 0, 0); err == nil {
		t.Fatal("New with no shards succeeded")
	}
}
