//go:build race

package obs

// raceEnabled reports whether the race detector instruments this build.
// Its allocation tracking makes some atomic paths allocate, so the
// zero-allocation regression tests are skipped under -race (the race run
// covers correctness; `go test` covers the alloc budget).
const raceEnabled = true
