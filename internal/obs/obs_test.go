package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 0 and sub-microsecond observations land in bucket 0 (le = 1µs).
	h.Observe(0)
	h.Observe(500 * time.Nanosecond)
	// 1µs has bit length 1 -> bucket 1 (le = 2µs).
	h.Observe(1 * time.Microsecond)
	// 3µs -> bucket 2 (le = 4µs).
	h.Observe(3 * time.Microsecond)
	// An absurd duration clamps into the last bucket.
	h.Observe(200 * time.Hour)
	counts, total := h.snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 || counts[histBuckets-1] != 1 {
		t.Fatalf("bucket counts = %v", counts)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}
	// 90 fast observations (~2µs) and 10 slow ones (~1ms): p50 must land in
	// a small bucket, p99 in the millisecond range.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	if p50 := h.Quantile(0.50); p50 > 8*time.Microsecond {
		t.Fatalf("p50 = %v, want within the fast buckets", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 1*time.Millisecond || p99 > 4*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1-2ms bucket bound", p99)
	}
	if h.Quantile(1.0) < p99 {
		t.Fatalf("quantiles not monotone")
	}
}

func TestRegistryRenderAndParse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("twsim_test_total", `endpoint="search"`, "a test counter")
	c2 := r.Counter("twsim_test_total", `endpoint="knn"`, "a test counter")
	g := r.Gauge("twsim_test_gauge", "", "a gauge")
	h := r.Histogram("twsim_test_seconds", `endpoint="search"`, "a histogram")
	r.CounterFunc("twsim_test_fn_total", "", "a collector", func() float64 { return 42 })
	c.Add(3)
	c2.Inc()
	g.Set(1.5)
	h.Observe(3 * time.Microsecond)
	h.Observe(70 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE twsim_test_total counter",
		"# TYPE twsim_test_seconds histogram",
		`twsim_test_total{endpoint="search"} 3`,
		`twsim_test_total{endpoint="knn"} 1`,
		"twsim_test_gauge 1.5",
		"twsim_test_fn_total 42",
		`le="+Inf"} 2`,
		"twsim_test_seconds_count{" + `endpoint="search"` + "} 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v", err)
	}
	if v, ok := samples.Value("twsim_test_total", map[string]string{"endpoint": "search"}); !ok || v != 3 {
		t.Fatalf("parsed counter = %v, %v", v, ok)
	}
	if v, ok := samples.Value("twsim_test_seconds_count", map[string]string{"endpoint": "search"}); !ok || v != 2 {
		t.Fatalf("parsed histogram count = %v, %v", v, ok)
	}
	sum, ok := samples.Value("twsim_test_seconds_sum", nil)
	if !ok || sum < 72e-6 || sum > 74e-6 {
		t.Fatalf("parsed histogram sum = %v, %v", sum, ok)
	}
	// The 3µs observation is ≤ the 4µs bucket; the 70µs one is not.
	if v, ok := samples.Value("twsim_test_seconds_bucket", map[string]string{"le": "4e-06"}); !ok || v != 1 {
		t.Fatalf("le=4e-06 bucket = %v, %v", v, ok)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"1leading_digit 3\n",
		"name{unterminated 3\n",
		`name{l=unquoted} 3` + "\n",
		"name notafloat\n",
	} {
		if _, err := ParseText([]byte(bad)); err == nil {
			t.Fatalf("ParseText accepted %q", bad)
		}
	}
}

func TestParseTextRejectsNonCumulativeBuckets(t *testing.T) {
	bad := "x_bucket{le=\"1\"} 5\nx_bucket{le=\"2\"} 3\n"
	if _, err := ParseText([]byte(bad)); err == nil {
		t.Fatal("ParseText accepted a shrinking bucket series")
	}
}

func TestRegistryPanicsOnConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind conflict")
		}
	}()
	r.Histogram("x_total", "", "")
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("twsim_conc_seconds", "", "")
	c := r.Counter("twsim_conc_total", "", "")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wid)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(time.Duration(rng.Intn(1000)) * time.Microsecond)
				c.Inc()
			}
		}(w)
	}
	// Scrapes race the writers; every rendered snapshot must still parse
	// and be internally cumulative.
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseText(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if h.Count() != c.Value() {
		t.Fatalf("count mismatch: hist %d, counter %d", h.Count(), c.Value())
	}
}

// TestObserveZeroAllocs pins the acceptance bar: recording one latency
// sample and bumping one counter allocate nothing in steady state.
func TestObserveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	var h Histogram
	var c Counter
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(123 * time.Microsecond)
		c.Inc()
	}); n != 0 {
		t.Fatalf("%v allocs per Observe+Inc", n)
	}
}
