// Package obs is the dependency-free observability core of the serving
// stack: atomic counters, gauges, and lock-free power-of-two-bucket latency
// histograms, collected in a Registry that renders the Prometheus text
// exposition format (version 0.0.4).
//
// Design constraints, in order:
//
//  1. Zero allocations and no locks on the hot path. Counter.Add and
//     Histogram.Observe are single atomic RMW operations; one histogram
//     observation is two atomic adds. Query and request paths record into
//     pre-registered instruments — the registry is only locked at
//     registration time and at scrape time.
//  2. Stdlib only, importable from anywhere in the repository (obs imports
//     no repro package, so every layer — storage, core, shard, server —
//     can depend on it without cycles).
//  3. Honest scrapes. A histogram snapshot derives its _count and +Inf
//     bucket from the same bucket reads it renders, so every scrape is
//     internally consistent (cumulative buckets are monotone and end at
//     _count) even while observations race with the scrape.
//
// Histogram buckets are powers of two in microseconds: bucket i counts
// observations with ⌊d/1µs⌋ in [2^(i-1), 2^i), so upper bounds run
// 1µs, 2µs, 4µs, … ~67s, and p50/p95/p99 are derivable to within a factor
// of two (Quantile). That resolution is exactly what a latency SLO needs,
// and the fixed bucket layout is what makes Observe two atomic adds.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is usable,
// but counters rendered by a Registry must be created through it.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programming error and is
// ignored to keep the exposition monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of power-of-two latency buckets. Bucket i holds
// observations whose microsecond count has bit length i, so the finite
// upper bounds run 2^0 µs … 2^(histBuckets-2) µs ≈ 67 s; anything slower
// lands in the last bucket, rendered only under le="+Inf".
const histBuckets = 28

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Observe is wait-free (two atomic adds) and allocation-free.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(int64(d))
}

// snapshot reads the buckets once and returns per-bucket counts plus the
// total. Concurrent observations may land between reads; the rendered
// cumulative series is still monotone because it is derived from this one
// pass.
func (h *Histogram) snapshot() (counts [histBuckets]int64, total int64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	_, total := h.snapshot()
	return total
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// HistogramData is a plain-value snapshot of a histogram — the mergeable
// form subsystems hand across package boundaries (e.g. per-shard index
// merge histograms summed into one exported series).
type HistogramData struct {
	Counts [histBuckets]int64
	SumNs  int64
}

// Data returns a one-pass snapshot of the histogram.
func (h *Histogram) Data() HistogramData {
	var d HistogramData
	for i := range h.buckets {
		d.Counts[i] = h.buckets[i].Load()
	}
	d.SumNs = h.sumNs.Load()
	return d
}

// Add accumulates other into d.
func (d *HistogramData) Add(other HistogramData) {
	for i := range d.Counts {
		d.Counts[i] += other.Counts[i]
	}
	d.SumNs += other.SumNs
}

// Count returns the total number of observations in the snapshot.
func (d HistogramData) Count() int64 {
	var total int64
	for _, c := range d.Counts {
		total += c
	}
	return total
}

// bucketBound returns the upper bound of bucket i in seconds.
func bucketBound(i int) float64 { return float64(uint64(1)<<uint(i)) / 1e6 }

// Quantile returns an upper bound for the p-quantile (0 < p ≤ 1) of the
// observed durations: the upper bound of the bucket containing the rank-th
// observation, exact to within the factor-of-two bucket resolution. It
// returns 0 when the histogram is empty.
func (h *Histogram) Quantile(p float64) time.Duration {
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			return time.Duration(bucketBound(i) * float64(time.Second))
		}
	}
	return time.Duration(bucketBound(histBuckets-1) * float64(time.Second))
}

// metric kind markers for rendering.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instrument inside a family. Exactly one of the
// value fields is set.
type series struct {
	labels string // rendered inside {...}; "" for an unlabeled series
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64       // scrape-time collector (counter or gauge family)
	hfn    func() HistogramData // scrape-time collector (histogram family)
}

// family groups the series sharing one metric name.
type family struct {
	name, help, kind string
	series           []*series
}

// Registry holds registered instruments and renders them in the Prometheus
// text format. Registration locks; the instruments themselves are
// lock-free. Metric and label syntax is the caller's responsibility —
// registration panics on a name/type conflict, since instruments are wired
// once at startup and a conflict is a programming error.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, labels, help, kind string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if s.labels == labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, labels))
		}
	}
	s := &series{labels: labels}
	f.series = append(f.series, s)
	return s
}

// Counter registers and returns a counter series. labels is the rendered
// label body, e.g. `endpoint="search"` (empty for none).
func (r *Registry) Counter(name, labels, help string) *Counter {
	s := r.register(name, labels, help, kindCounter)
	s.c = &Counter{}
	return s.c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	s := r.register(name, labels, help, kindGauge)
	s.g = &Gauge{}
	return s.g
}

// Histogram registers and returns a latency histogram series.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	s := r.register(name, labels, help, kindHistogram)
	s.h = &Histogram{}
	return s.h
}

// CounterFunc registers a counter whose value is read at scrape time — the
// export hook for subsystems that already keep their own atomic counters
// (buffer pools, caches, query totals) so scraping them adds no second
// accounting path.
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	s := r.register(name, labels, help, kindCounter)
	s.fn = fn
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	s := r.register(name, labels, help, kindGauge)
	s.fn = fn
}

// HistogramFunc registers a histogram whose buckets are collected at scrape
// time — the export hook for subsystems that keep their own obs.Histogram
// (or an aggregate of several) without registering it directly.
func (r *Registry) HistogramFunc(name, labels, help string, fn func() HistogramData) {
	s := r.register(name, labels, help, kindHistogram)
	s.hfn = fn
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, families in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			renderSeries(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func renderSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.h != nil:
		counts, total := s.h.snapshot()
		renderHistogram(b, f, s, counts, total, s.h.Sum().Seconds())
	case s.hfn != nil:
		d := s.hfn()
		renderHistogram(b, f, s, d.Counts, d.Count(), time.Duration(d.SumNs).Seconds())
	case s.fn != nil:
		writeSample(b, f.name, s.labels, s.fn())
	case s.c != nil:
		writeSample(b, f.name, s.labels, float64(s.c.Value()))
	case s.g != nil:
		writeSample(b, f.name, s.labels, s.g.Value())
	}
}

func renderHistogram(b *strings.Builder, f *family, s *series, counts [histBuckets]int64, total int64, sumSeconds float64) {
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += counts[i]
		writeSample(b, f.name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(bucketBound(i))+`"`), float64(cum))
	}
	writeSample(b, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(total))
	writeSample(b, f.name+"_sum", s.labels, sumSeconds)
	writeSample(b, f.name+"_count", s.labels, float64(total))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- exposition parsing (tests and the CI smoke) ----

// Sample is one parsed exposition line: a metric name, its label set, and
// the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Samples indexes a parsed exposition.
type Samples []Sample

// Value returns the first sample matching name whose labels include every
// pair of want (nil matches any), and whether one was found.
func (ss Samples) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range ss {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// Names returns the sorted set of distinct metric names.
func (ss Samples) Names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range ss {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ParseText parses a Prometheus text exposition, validating its syntax
// strictly enough to catch rendering bugs: every non-comment line must be
// `name[{label="value",…}] float`, names must be valid metric identifiers,
// and histogram bucket series must be cumulative (non-decreasing in file
// order and ending at the _count value).
func ParseText(data []byte) (Samples, error) {
	var out Samples
	lastBucket := make(map[string]float64) // histogram name+labels-sans-le -> last cumulative value
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", ln+1, err)
		}
		if strings.HasSuffix(s.Name, "_bucket") {
			key := s.Name + "|" + labelsSansLe(s.Labels)
			if prev, ok := lastBucket[key]; ok && s.Value < prev {
				return nil, fmt.Errorf("obs: line %d: bucket series %s not cumulative (%g < %g)", ln+1, s.Name, s.Value, prev)
			}
			lastBucket[key] = s.Value
		}
		out = append(out, s)
	}
	return out, nil
}

func labelsSansLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

func parseLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	s.Name = rest[:i]
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		if body != "" {
			for _, pair := range splitLabelPairs(body) {
				eq := strings.Index(pair, "=")
				if eq < 0 {
					return s, fmt.Errorf("malformed label %q", pair)
				}
				k, v := pair[:eq], pair[eq+1:]
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return s, fmt.Errorf("unquoted label value %q", pair)
				}
				s.Labels[k] = v[1 : len(v)-1]
			}
		}
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// The value may be followed by an optional timestamp; take field 0.
	fields := strings.Fields(rest)
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
