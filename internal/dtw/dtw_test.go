package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

// refDistance is a direct memoized transcription of the paper's recursive
// Definition 1/2, used as the ground truth for the DP implementation.
func refDistance(s, q seq.Sequence, base seq.Base) float64 {
	switch {
	case s.Empty() && q.Empty():
		return 0
	case s.Empty() || q.Empty():
		return Inf
	}
	memo := make(map[[2]int]float64)
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		// rec computes Dtw over s[i:], q[j:].
		if i == len(s) && j == len(q) {
			return 0
		}
		if i == len(s) || j == len(q) {
			return Inf
		}
		key := [2]int{i, j}
		if v, ok := memo[key]; ok {
			return v
		}
		e := base.Elem(s[i], q[j])
		m := rec(i, j+1)
		if v := rec(i+1, j); v < m {
			m = v
		}
		if v := rec(i+1, j+1); v < m {
			m = v
		}
		var out float64
		if math.IsInf(m, 1) {
			// Terminal cell: both final elements consumed together.
			if i == len(s)-1 && j == len(q)-1 {
				out = e
			} else {
				out = Inf
			}
		} else {
			out = base.Combine(e, m)
		}
		memo[key] = out
		return out
	}
	return rec(0, 0)
}

func randSeq(rng *rand.Rand, maxLen int) seq.Sequence {
	n := 1 + rng.Intn(maxLen)
	s := make(seq.Sequence, n)
	for i := range s {
		s[i] = rng.Float64()*20 - 10
	}
	return s
}

func TestDistancePaperExample(t *testing.T) {
	// §1: these two warp onto the same sequence, so their distance is 0.
	s := seq.Sequence{20, 21, 21, 20, 20, 23, 23, 23}
	q := seq.Sequence{20, 20, 21, 20, 23}
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		if got := Distance(s, q, base); got != 0 {
			t.Errorf("base %v: Distance = %g, want 0", base, got)
		}
	}
}

func TestDistanceEmpty(t *testing.T) {
	var empty seq.Sequence
	s := seq.Sequence{1, 2}
	if got := Distance(empty, empty, seq.LInf); got != 0 {
		t.Errorf("Dtw(<>, <>) = %g, want 0", got)
	}
	if got := Distance(s, empty, seq.LInf); !math.IsInf(got, 1) {
		t.Errorf("Dtw(S, <>) = %g, want +Inf", got)
	}
	if got := Distance(empty, s, seq.LInf); !math.IsInf(got, 1) {
		t.Errorf("Dtw(<>, Q) = %g, want +Inf", got)
	}
}

func TestDistanceSingletons(t *testing.T) {
	if got := Distance(seq.Sequence{3}, seq.Sequence{7}, seq.LInf); got != 4 {
		t.Errorf("Distance = %g, want 4", got)
	}
	if got := Distance(seq.Sequence{3}, seq.Sequence{7}, seq.L2Sq); got != 16 {
		t.Errorf("Distance L2sq = %g, want 16", got)
	}
	// One element vs many: the single element must match all of them.
	if got := Distance(seq.Sequence{5}, seq.Sequence{4, 6, 5}, seq.L1); got != 2 {
		t.Errorf("Distance L1 = %g, want 2", got)
	}
	if got := Distance(seq.Sequence{5}, seq.Sequence{4, 6, 5}, seq.LInf); got != 1 {
		t.Errorf("Distance Linf = %g, want 1", got)
	}
}

func TestDistanceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		for trial := 0; trial < 200; trial++ {
			s := randSeq(rng, 12)
			q := randSeq(rng, 12)
			want := refDistance(s, q, base)
			got := Distance(s, q, base)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("base %v: Distance(%v, %v) = %g, ref %g", base, s, q, got, want)
			}
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		s := randSeq(rng, 20)
		q := randSeq(rng, 20)
		for _, base := range []seq.Base{seq.LInf, seq.L1} {
			a := Distance(s, q, base)
			b := Distance(q, s, base)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("base %v asymmetric: %g vs %g", base, a, b)
			}
		}
	}
}

func TestDistanceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		s := randSeq(rng, 30)
		if got := Distance(s, s, seq.LInf); got != 0 {
			t.Fatalf("Distance(s, s) = %g", got)
		}
	}
}

// Time warping invariance: replicating elements never changes the distance.
func TestDistanceWarpInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		s := randSeq(rng, 10)
		q := randSeq(rng, 10)
		warped := make(seq.Sequence, 0, 2*len(s))
		for _, v := range s {
			for k := 0; k <= rng.Intn(3); k++ {
				warped = append(warped, v)
			}
		}
		a := Distance(s, q, seq.LInf)
		b := Distance(warped, q, seq.LInf)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("warping changed Linf distance: %g vs %g (%v -> %v)", a, b, s, warped)
		}
	}
}

func TestDistanceWithinAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		for trial := 0; trial < 300; trial++ {
			s := randSeq(rng, 15)
			q := randSeq(rng, 15)
			exact := Distance(s, q, base)
			eps := rng.Float64() * 10
			d, ok := DistanceWithin(s, q, base, eps)
			if ok != (exact <= eps) {
				t.Fatalf("base %v eps %g: ok=%v but exact=%g", base, eps, ok, exact)
			}
			if ok && math.Abs(d-exact) > 1e-9 {
				t.Fatalf("base %v: within returned %g, exact %g", base, d, exact)
			}
			if !ok && !math.IsInf(d, 1) {
				t.Fatalf("abandoned computation returned finite %g", d)
			}
		}
	}
}

func TestDistanceWithinEdgeCases(t *testing.T) {
	s := seq.Sequence{1, 2}
	if _, ok := DistanceWithin(s, s, seq.LInf, -1); ok {
		t.Error("negative epsilon accepted")
	}
	if d, ok := DistanceWithin(nil, nil, seq.LInf, 0); !ok || d != 0 {
		t.Errorf("empty-empty = (%g, %v), want (0, true)", d, ok)
	}
	if _, ok := DistanceWithin(s, nil, seq.LInf, 100); ok {
		t.Error("empty vs non-empty accepted")
	}
	// First/last pre-check must fire.
	if _, ok := DistanceWithin(seq.Sequence{0, 5}, seq.Sequence{0, 50}, seq.LInf, 1); ok {
		t.Error("last-element pre-check failed")
	}
}

func TestWithin(t *testing.T) {
	s := seq.Sequence{1, 2, 3}
	q := seq.Sequence{1, 2, 4}
	if !Within(s, q, seq.LInf, 1) {
		t.Error("Within(s, q, 1) = false, distance is 1")
	}
	if Within(s, q, seq.LInf, 0.5) {
		t.Error("Within(s, q, 0.5) = true, distance is 1")
	}
}

func TestBandDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		s := randSeq(rng, 12)
		q := randSeq(rng, 12)
		full := Distance(s, q, seq.LInf)
		// No band: identical to the unconstrained distance.
		if got := BandDistance(s, q, seq.LInf, -1); math.Abs(got-full) > 1e-9 {
			t.Fatalf("BandDistance(r=-1) = %g, want %g", got, full)
		}
		// A huge band imposes no constraint.
		if got := BandDistance(s, q, seq.LInf, 1000); math.Abs(got-full) > 1e-9 {
			t.Fatalf("BandDistance(r=1000) = %g, want %g", got, full)
		}
		// Any band can only increase the distance.
		for _, r := range []int{0, 1, 2, 5} {
			if got := BandDistance(s, q, seq.LInf, r); got < full-1e-9 {
				t.Fatalf("BandDistance(r=%d) = %g < unconstrained %g", r, got, full)
			}
		}
	}
}

func TestBandDistanceZeroWidthDiagonal(t *testing.T) {
	// r=0 on equal-length sequences is the element-wise distance.
	s := seq.Sequence{1, 2, 3}
	q := seq.Sequence{2, 2, 5}
	if got := BandDistance(s, q, seq.LInf, 0); got != 2 {
		t.Errorf("BandDistance(r=0) = %g, want 2", got)
	}
	if got := BandDistance(s, q, seq.L1, 0); got != 3 {
		t.Errorf("BandDistance L1 (r=0) = %g, want 3", got)
	}
}

func TestBandDistanceEmpty(t *testing.T) {
	if got := BandDistance(nil, nil, seq.LInf, 2); got != 0 {
		t.Errorf("BandDistance(<>, <>) = %g", got)
	}
	if got := BandDistance(seq.Sequence{1}, nil, seq.LInf, 2); !math.IsInf(got, 1) {
		t.Errorf("BandDistance(S, <>) = %g", got)
	}
}

// Property (quick): DP distance equals the recursive reference.
func TestDistanceQuick(t *testing.T) {
	f := func(sv, qv []float64) bool {
		if len(sv) == 0 || len(qv) == 0 {
			return true
		}
		if len(sv) > 10 {
			sv = sv[:10]
		}
		if len(qv) > 10 {
			qv = qv[:10]
		}
		s, q := seq.Sequence(sv), seq.Sequence(qv)
		for _, v := range append(append([]float64{}, sv...), qv...) {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true // avoid overflow in element differences
			}
		}
		return math.Abs(Distance(s, q, seq.LInf)-refDistance(s, q, seq.LInf)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedDistance(t *testing.T) {
	s := seq.Sequence{1, 2, 3}
	q := seq.Sequence{1, 2, 3}
	if got := NormalizedDistance(s, q, seq.L1); got != 0 {
		t.Errorf("identical normalized = %g", got)
	}
	// LInf passes through unchanged.
	a := seq.Sequence{0, 5}
	b := seq.Sequence{0, 6}
	if got, want := NormalizedDistance(a, b, seq.LInf), Distance(a, b, seq.LInf); got != want {
		t.Errorf("Linf normalized %g != raw %g", got, want)
	}
	// Replicating both sequences leaves the normalized L1 distance roughly
	// stable while the raw distance grows with length.
	long := make(seq.Sequence, 0, 20)
	longQ := make(seq.Sequence, 0, 20)
	for i := 0; i < 10; i++ {
		long = append(long, 1, 1)
		longQ = append(longQ, 2, 2)
	}
	short := seq.Sequence{1, 1}
	shortQ := seq.Sequence{2, 2}
	rawShort := Distance(short, shortQ, seq.L1)
	rawLong := Distance(long, longQ, seq.L1)
	if rawLong <= rawShort {
		t.Fatalf("raw L1 did not grow with length: %g vs %g", rawLong, rawShort)
	}
	nShort := NormalizedDistance(short, shortQ, seq.L1)
	nLong := NormalizedDistance(long, longQ, seq.L1)
	if math.Abs(nShort-nLong) > 1e-9 {
		t.Errorf("normalized L1 not length-stable: %g vs %g", nShort, nLong)
	}
	// Empty handling mirrors Distance.
	if got := NormalizedDistance(nil, nil, seq.L1); got != 0 {
		t.Errorf("empty normalized = %g", got)
	}
}
