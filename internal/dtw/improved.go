package dtw

import (
	"math"

	"repro/internal/seq"
)

// This file implements Lemire's two-pass LB_Improved lower bound for the
// Sakoe–Chiba banded time warping distance ("Faster Retrieval with a
// Two-Pass Dynamic-Time-Warping Lower Bound", Pattern Recognition 2009).
//
// Pass 1 is the classic LB_Keogh(S, Env_r(Q)). Pass 2 projects S onto the
// envelope — H[i] = clamp(S[i] into [Lower[i], Upper[i]]) — and measures how
// far Q lies outside the envelope of H: LB_Keogh(Q, Env_r(H)). For a matched
// pair (i, j) of any banded path (|i−j| ≤ r):
//
//   - additive bases: e(s_i, q_j) ≥ e(s_i, h_i) + e(h_i, q_j), because
//     q_j ∈ [Lower_i, Upper_i] and h_i is the projection of s_i onto that
//     interval, so h_i lies between s_i and q_j (|x−y| = |x−h|+|h−y| for
//     collinear reals; (x−y)² ≥ (x−h)² + (h−y)² follows from (a+b)² ≥ a²+b²
//     for a, b ≥ 0). Summing the s-side terms over i (each matched ≥ once)
//     gives pass 1; summing the q-side terms over j, with e(h_i, q_j) ≥
//     dist(q_j, Env_r(H)_j) because |i−j| ≤ r puts h_i inside q_j's window,
//     gives pass 2. Their SUM lower-bounds the banded distance.
//   - L∞: each pass individually lower-bounds the banded distance (the same
//     per-pair inequalities, taken under max instead of sum), so their MAX
//     does too.
//
// CombineImproved encodes the sum-vs-max rule.

// ImprovedScratch holds the reusable buffers LBImprovedPass2 needs (the
// projected sequence H, its envelope, and deque storage), so steady-state
// cascade calls allocate nothing. The zero value is ready to use.
type ImprovedScratch struct {
	h, lo, hi []float64
	idx       []int32
}

func (sc *ImprovedScratch) grow(n int) {
	if cap(sc.h) < n {
		sc.h = make([]float64, n)
		sc.lo = make([]float64, n)
		sc.hi = make([]float64, n)
		sc.idx = make([]int32, 2*n)
	}
	sc.h, sc.lo, sc.hi = sc.h[:n], sc.lo[:n], sc.hi[:n]
}

// LBImprovedPass2 computes the second pass of LB_Improved: LB_Keogh(Q,
// Env_r(H)) where H is S clamped into env. The caller must guarantee env is
// a banded envelope of q with |S| = |Q| = len(env) (LBImproved checks;
// the cascade guarantees it by construction). Cost is O(|S|) — one clamp
// pass, one deque envelope pass, one scan.
func LBImprovedPass2(s, q seq.Sequence, env Envelope, base seq.Base, sc *ImprovedScratch) float64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	sc.grow(n)
	h := sc.h
	for i, v := range s {
		switch {
		case v > env.Upper[i]:
			h[i] = env.Upper[i]
		case v < env.Lower[i]:
			h[i] = env.Lower[i]
		default:
			h[i] = v
		}
	}
	slidingMinMax(h, env.band, sc.lo, sc.hi, sc.idx[:n], sc.idx[n:])
	if base == seq.LInf {
		max := 0.0
		for j, v := range q {
			if d := seq.DistToRange(v, sc.lo[j], sc.hi[j]); d > max {
				max = d
			}
		}
		return max
	}
	acc := 0.0
	for j, v := range q {
		acc += base.Elem(0, seq.DistToRange(v, sc.lo[j], sc.hi[j]))
	}
	return acc
}

// CombineImproved merges pass 1 (LB_Keogh(S, Env_r(Q))) and pass 2 into the
// full LB_Improved value: the passes add for additive bases and take the max
// under L∞ (see the soundness note at the top of this file).
func CombineImproved(pass1, pass2 float64, base seq.Base) float64 {
	if base == seq.LInf {
		return math.Max(pass1, pass2)
	}
	return pass1 + pass2
}

// LBImproved computes Lemire's two-pass lower bound of BandDistance(s, q,
// base, band). env must be the banded envelope of q built with the same
// half-width (NewEnvelope(q, band)) and the lengths must match — every
// other combination has no sound bound and returns ErrUnsoundBound, exactly
// like LBKeoghSafe. The convenience form allocates its own scratch; the
// cascade uses LBImprovedPass2 with a per-query ImprovedScratch instead.
func LBImproved(s, q seq.Sequence, env Envelope, base seq.Base, band int) (float64, error) {
	if s.Empty() && q.Empty() {
		return 0, nil
	}
	if env.full || band < 0 || band != env.band || len(s) != len(q) || len(s) != len(env.Lower) {
		return 0, ErrUnsoundBound
	}
	pass1 := LBKeogh(s, env, base)
	var sc ImprovedScratch
	pass2 := LBImprovedPass2(s, q, env, base, &sc)
	return CombineImproved(pass1, pass2, base), nil
}
