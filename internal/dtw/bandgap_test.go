package dtw

// Regression tests for the band-gap bug: with very different sequence
// lengths the slope-normalized Sakoe–Chiba band used to produce disjoint
// row ranges (consecutive row centers advance by ⌈slope⌉ > 2r+1 columns),
// so no banded warping path existed and BandDistance returned a spurious
// +Inf. The fix floors the effective half-width so consecutive ranges
// always connect.

import (
	"math"
	"testing"

	"repro/internal/seq"
)

func ramp(n int) seq.Sequence {
	s := make(seq.Sequence, n)
	for i := range s {
		s[i] = float64(i)
	}
	return s
}

// BandDistance must be finite for every non-empty pair and every r ≥ 0 —
// in particular for steep slopes like |S|=2 vs |Q|=10 that used to yield
// disjoint band rows.
func TestBandDistanceFiniteForSteepSlopes(t *testing.T) {
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		for n := 1; n <= 10; n++ {
			for m := 1; m <= 10; m++ {
				for r := 0; r <= 3; r++ {
					d := BandDistance(ramp(n), ramp(m), base, r)
					if math.IsInf(d, 1) {
						t.Fatalf("BandDistance(|s|=%d, |q|=%d, %v, r=%d) = +Inf", n, m, base, r)
					}
					// A band constrains warpings, so the result can never
					// drop below the unconstrained distance.
					if full := Distance(ramp(n), ramp(m), base); d < full-1e-9 {
						t.Fatalf("BandDistance(|s|=%d, |q|=%d, %v, r=%d) = %g below unconstrained %g",
							n, m, base, r, d, full)
					}
				}
			}
		}
	}
}

// The original failure shape from the bug report: a short query against a
// long sequence with a narrow band.
func TestBandDistanceShortVsLong(t *testing.T) {
	s := seq.Sequence{0, 9}
	q := ramp(10)
	for r := 0; r <= 2; r++ {
		if d := BandDistance(s, q, seq.LInf, r); math.IsInf(d, 1) {
			t.Fatalf("r=%d: +Inf for 2-vs-10 sequences", r)
		}
		// Symmetric orientation.
		if d := BandDistance(q, s, seq.LInf, r); math.IsInf(d, 1) {
			t.Fatalf("r=%d: +Inf for 10-vs-2 sequences", r)
		}
	}
}

// A band wide enough to cover the whole matrix must agree exactly with the
// unconstrained distance.
func TestBandDistanceWideBandMatchesDistance(t *testing.T) {
	pairs := [][2]seq.Sequence{
		{{4, 5, 6, 7, 6}, {4, 4, 6, 6, 6, 7, 7}},
		{{1, 2}, ramp(9)},
		{ramp(12), {3, 1, 4}},
		{{2, 2, 2}, {2, 2, 2}},
	}
	for _, base := range []seq.Base{seq.LInf, seq.L1} {
		for _, p := range pairs {
			s, q := p[0], p[1]
			r := len(s) + len(q) // covers everything
			got := BandDistance(s, q, base, r)
			want := Distance(s, q, base)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("BandDistance(%v, %v, %v, r=%d) = %g, want %g", s, q, base, r, got, want)
			}
		}
	}
}

// Single-element sequences bypass the band entirely: every warping path
// must traverse the whole other sequence.
func TestBandDistanceSingleton(t *testing.T) {
	s := seq.Sequence{5}
	q := seq.Sequence{3, 4, 5, 6}
	for r := 0; r <= 2; r++ {
		got := BandDistance(s, q, seq.LInf, r)
		want := Distance(s, q, seq.LInf)
		if got != want {
			t.Fatalf("r=%d: BandDistance = %g, want %g", r, got, want)
		}
	}
}

// NewEnvelope must tolerate degenerate half-widths instead of panicking or
// producing inverted windows.
func TestNewEnvelopeDegenerateR(t *testing.T) {
	q := seq.Sequence{3, 1, 4, 1, 5}
	neg := NewEnvelope(q, -3)
	zero := NewEnvelope(q, 0)
	for i := range q {
		if neg.Lower[i] != q[i] || neg.Upper[i] != q[i] {
			t.Fatalf("NewEnvelope(q, -3) at %d = [%g, %g], want degenerate [%g, %g]",
				i, neg.Lower[i], neg.Upper[i], q[i], q[i])
		}
		if zero.Lower[i] != q[i] || zero.Upper[i] != q[i] {
			t.Fatalf("NewEnvelope(q, 0) at %d not degenerate", i)
		}
	}
	// r beyond the sequence length clamps to the full range.
	wide := NewEnvelope(q, len(q)+10)
	min, max := q.MinMax()
	for i := range q {
		if wide.Lower[i] != min || wide.Upper[i] != max {
			t.Fatalf("NewEnvelope(q, big) at %d = [%g, %g], want [%g, %g]",
				i, wide.Lower[i], wide.Upper[i], min, max)
		}
	}
	// Empty query: no panic, empty envelope.
	empty := NewEnvelope(nil, -1)
	if len(empty.Lower) != 0 || len(empty.Upper) != 0 {
		t.Fatal("NewEnvelope(nil, -1) returned non-empty envelope")
	}
}
