package dtw

import (
	"sync"

	"repro/internal/seq"
)

// Verdict classifies the outcome of Refiner.DistanceWithin.
type Verdict int

const (
	// VerdictPruned means the sparse corridor pass proved Dtw(s,q) > epsilon
	// without completing an exact DP: the set of cells whose DP value stays
	// within epsilon never reaches the final cell. The pass costs O(alive
	// cells), so hopeless candidates die at a fraction of the dense DP's
	// cost.
	VerdictPruned Verdict = iota
	// VerdictWithin means Dtw(s,q) ≤ epsilon; the returned distance is exact
	// (bit-identical to DistanceWithin).
	VerdictWithin
	// VerdictAbandoned means a dense early-abandoning DP ran to rejection.
	// The fused corridor pass never reports this — its rejections are
	// corridor prunes — so it only arises on the generic fallback for bases
	// without a corridor soundness argument.
	VerdictAbandoned
)

// Refiner is the filter-and-refine DTW evaluator behind the cascade's last
// two tiers, fused into one sparse pass over the DP matrix. A cell is alive
// when its exact DP value is ≤ epsilon; values never decrease along a
// warping path (max-combine for seq.LInf, non-negative additions for
// seq.L1/seq.L2Sq), so dead cells can never lie on a qualifying path and
// the pass visits only cells adjacent to the previous row's alive runs.
// Dead predecessors enter the minimum as +Inf, which is exact: an alive
// cell's smallest predecessor is itself alive (a dead minimum would push
// the cell over epsilon), so the values of visited alive cells — and the
// final distance of a surviving candidate — are bit-identical to the dense
// DP's.
//
// The two tiers of the old split design remain visible in the verdict: a
// candidate whose alive region dies before the final cell is "corridor
// pruned" (no DP completed; for rejects the pass does reachability work,
// not a full evaluation), while a survivor's verdict carries the exact
// distance with no second pass over the matrix.
//
// A Refiner owns pooled run buffers; acquire one per query with
// AcquireRefiner, use it for every candidate, and Release it when the query
// completes. A Refiner is not safe for concurrent use.
type Refiner struct {
	runs  []int32 // one row's alive [start,end) column pairs
	runs2 []int32 // the adjacent row's pairs (buffers swap per row)
}

var refinerPool = sync.Pool{New: func() any { return &Refiner{} }}

// AcquireRefiner returns a pooled Refiner.
func AcquireRefiner() *Refiner { return refinerPool.Get().(*Refiner) }

// Release returns the Refiner (and its buffers) to the pool.
func (r *Refiner) Release() { refinerPool.Put(r) }

// DistanceWithin is DistanceWithin with the sparse corridor fused in: it
// returns the same (distance, within) outcome — VerdictWithin carries the
// bit-identical exact distance, VerdictPruned/VerdictAbandoned correspond
// to (+Inf, false) — plus which mechanism decided, so callers can account
// corridor dismissals separately from completed DP evaluations.
func (r *Refiner) DistanceWithin(s, q seq.Sequence, base seq.Base, epsilon float64) (float64, Verdict) {
	switch {
	case s.Empty() && q.Empty():
		if 0 <= epsilon {
			return 0, VerdictWithin
		}
		return Inf, VerdictPruned
	case s.Empty() || q.Empty():
		return Inf, VerdictPruned
	}
	if epsilon < 0 {
		return Inf, VerdictPruned
	}
	// The O(1) endpoint check is the corridor's first/last-cell test.
	if base.Elem(s[0], q[0]) > epsilon || base.Elem(s[len(s)-1], q[len(q)-1]) > epsilon {
		return Inf, VerdictPruned
	}
	if len(q) > len(s) {
		s, q = q, s
	}
	var (
		d  float64
		ok bool
	)
	switch base {
	case seq.LInf:
		d, ok = r.fusedLInf(s, q, epsilon)
	case seq.L1:
		d, ok = r.fusedAdd(s, q, false, epsilon)
	case seq.L2Sq:
		d, ok = r.fusedAdd(s, q, true, epsilon)
	default:
		// No corridor soundness argument on file for future bases: run the
		// plain early-abandoning DP.
		if d, ok := withinGeneric(s, q, base, epsilon); ok {
			return d, VerdictWithin
		}
		return Inf, VerdictAbandoned
	}
	if !ok {
		return Inf, VerdictPruned
	}
	return d, VerdictWithin
}

// fusedLInf runs the sparse alive-run DP under the L∞ (max) combine.
// Requires len(q) <= len(s), non-empty inputs, and a passing endpoint
// check. Reports (exact distance, true) when Dtw ≤ epsilon.
func (r *Refiner) fusedLInf(s, q []float64, epsilon float64) (float64, bool) {
	n, m := len(s), len(q)
	rp := acquireRows(m)
	defer releaseRows(rp)
	prev, cur := rp.prev, rp.cur
	pruns, cruns := r.runs[:0], r.runs2[:0]

	// Row 0 is a single combine chain, so its values never decrease and the
	// alive set is a prefix (non-empty: the endpoint check passed cell 0).
	s0 := s[0]
	v := s0 - q[0]
	if v < 0 {
		v = -v
	}
	prev[0] = v
	e0 := 1
	for ; e0 < m; e0++ {
		e := s0 - q[e0]
		if e < 0 {
			e = -e
		}
		if prev[e0-1] > e {
			e = prev[e0-1]
		}
		if e > epsilon {
			break
		}
		prev[e0] = e
	}
	pruns = append(pruns, 0, int32(e0))

	for i := 1; i < n; i++ {
		si := s[i]
		cruns = cruns[:0]
		inRun := false
		j := 0
		for p := 0; p < len(pruns); p += 2 {
			lo, hi0 := int(pruns[p]), int(pruns[p+1])
			// Seeds: the run's columns plus one diagonal step.
			hi := hi0 + 1
			if hi > m {
				hi = m
			}
			if j < lo {
				j = lo // the fill (if any) died before this segment
			}
			for ; j < hi; j++ {
				// Membership is segment-local: vertical for the run's own
				// columns, diagonal shifted one right, horizontal only while
				// the current run is open. Dead predecessors stand in as
				// +Inf (exact: see the type comment).
				best := Inf
				if j < hi0 {
					best = prev[j]
				}
				if j > lo && j <= hi0 && prev[j-1] < best {
					best = prev[j-1]
				}
				if inRun && cur[j-1] < best {
					best = cur[j-1]
				}
				e := si - q[j]
				if e < 0 {
					e = -e
				}
				if best > e {
					e = best
				}
				cur[j] = e
				if e <= epsilon {
					if !inRun {
						cruns = append(cruns, int32(j))
						inRun = true
					}
				} else if inRun {
					cruns = append(cruns, int32(j))
					inRun = false
				}
			}
			// Beyond the seeds only a horizontal fill extends the run — but
			// never into the next segment's columns, whose cells have alive
			// vertical/diagonal predecessors the fill would ignore.
			stop := m
			if p+2 < len(pruns) {
				stop = int(pruns[p+2])
			}
			for inRun && j < stop {
				e := si - q[j]
				if e < 0 {
					e = -e
				}
				if cur[j-1] > e {
					e = cur[j-1]
				}
				if e > epsilon {
					cruns = append(cruns, int32(j))
					inRun = false
					break
				}
				cur[j] = e
				j++
			}
		}
		if inRun {
			cruns = append(cruns, int32(m))
		}
		if len(cruns) == 0 {
			r.runs, r.runs2 = pruns, cruns
			return Inf, false // whole row dead: no completion possible
		}
		prev, cur = cur, prev
		pruns, cruns = cruns, pruns
	}
	alive := int(pruns[len(pruns)-1]) == m
	d := prev[m-1]
	r.runs, r.runs2 = pruns, cruns
	if !alive {
		return Inf, false
	}
	return d, true
}

// fusedAdd is fusedLInf under an additive combine; squared selects the
// seq.L2Sq element cost. Cumulative sums make the alive predicate stronger
// than any per-element test, so the corridor here prunes everything the old
// element-wise corridor did and more — including candidates the dense DP
// would only reject after a full evaluation.
func (r *Refiner) fusedAdd(s, q []float64, squared bool, epsilon float64) (float64, bool) {
	n, m := len(s), len(q)
	rp := acquireRows(m)
	defer releaseRows(rp)
	prev, cur := rp.prev, rp.cur
	pruns, cruns := r.runs[:0], r.runs2[:0]

	s0 := s[0]
	v := s0 - q[0]
	if v < 0 {
		v = -v
	}
	if squared {
		v = v * v
	}
	prev[0] = v
	e0 := 1
	for ; e0 < m; e0++ {
		e := s0 - q[e0]
		if e < 0 {
			e = -e
		}
		if squared {
			e = e * e
		}
		e += prev[e0-1]
		if e > epsilon {
			break
		}
		prev[e0] = e
	}
	pruns = append(pruns, 0, int32(e0))

	for i := 1; i < n; i++ {
		si := s[i]
		cruns = cruns[:0]
		inRun := false
		j := 0
		for p := 0; p < len(pruns); p += 2 {
			lo, hi0 := int(pruns[p]), int(pruns[p+1])
			hi := hi0 + 1
			if hi > m {
				hi = m
			}
			if j < lo {
				j = lo
			}
			for ; j < hi; j++ {
				best := Inf
				if j < hi0 {
					best = prev[j]
				}
				if j > lo && j <= hi0 && prev[j-1] < best {
					best = prev[j-1]
				}
				if inRun && cur[j-1] < best {
					best = cur[j-1]
				}
				e := si - q[j]
				if e < 0 {
					e = -e
				}
				if squared {
					e = e * e
				}
				e += best
				cur[j] = e
				if e <= epsilon {
					if !inRun {
						cruns = append(cruns, int32(j))
						inRun = true
					}
				} else if inRun {
					cruns = append(cruns, int32(j))
					inRun = false
				}
			}
			stop := m
			if p+2 < len(pruns) {
				stop = int(pruns[p+2])
			}
			for inRun && j < stop {
				e := si - q[j]
				if e < 0 {
					e = -e
				}
				if squared {
					e = e * e
				}
				e += cur[j-1]
				if e > epsilon {
					cruns = append(cruns, int32(j))
					inRun = false
					break
				}
				cur[j] = e
				j++
			}
		}
		if inRun {
			cruns = append(cruns, int32(m))
		}
		if len(cruns) == 0 {
			r.runs, r.runs2 = pruns, cruns
			return Inf, false
		}
		prev, cur = cur, prev
		pruns, cruns = cruns, pruns
	}
	alive := int(pruns[len(pruns)-1]) == m
	d := prev[m-1]
	r.runs, r.runs2 = pruns, cruns
	if !alive {
		return Inf, false
	}
	return d, true
}
