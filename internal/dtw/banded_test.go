package dtw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

// TestNewEnvelopeMatchesScanOracle: the O(n) deque construction must be
// bit-identical to the naive O(n·r) rescan it replaced, across lengths and
// band widths (including r = 0, r ≥ n, and negative r, which clamps to 0).
func TestNewEnvelopeMatchesScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 500; trial++ {
		q := randSeq(rng, 80)
		r := rng.Intn(24) - 2
		got := NewEnvelope(q, r)
		want := newEnvelopeScan(q, r)
		if got.band != want.band || got.full != want.full {
			t.Fatalf("r=%d: metadata mismatch: got (%d,%v) want (%d,%v)",
				r, got.band, got.full, want.band, want.full)
		}
		for i := range q {
			if got.Lower[i] != want.Lower[i] || got.Upper[i] != want.Upper[i] {
				t.Fatalf("r=%d |q|=%d i=%d: deque (%v,%v) != scan (%v,%v)",
					r, len(q), i, got.Lower[i], got.Upper[i], want.Lower[i], want.Upper[i])
			}
		}
	}
}

// FuzzEnvelopeDeque cross-checks the deque envelope against the scan oracle
// on fuzzer-chosen inputs; `make fuzz-smoke` runs it briefly in CI.
func FuzzEnvelopeDeque(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 0, 9}, 2)
	f.Add([]byte{255, 0, 255, 0}, 0)
	f.Add([]byte{7}, 100)
	f.Fuzz(func(t *testing.T, raw []byte, r int) {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		if r > 1<<20 {
			r = 1 << 20
		}
		q := make(seq.Sequence, len(raw))
		for i, b := range raw {
			q[i] = float64(b)/16 - 8
		}
		got := NewEnvelope(q, r)
		want := newEnvelopeScan(q, r)
		for i := range q {
			if got.Lower[i] != want.Lower[i] || got.Upper[i] != want.Upper[i] {
				t.Fatalf("r=%d i=%d: deque (%v,%v) != scan (%v,%v)",
					r, i, got.Lower[i], got.Upper[i], want.Lower[i], want.Upper[i])
			}
		}
	})
}

// FuzzBandedBoundChain fuzzes the tier ordering the banded cascade relies
// on — LBKeogh ≤ LB_Improved ≤ BandDistance, and BandDistance ≥ Distance —
// on fuzzer-chosen equal-length pairs under every base; `make fuzz-smoke`
// runs it briefly in CI.
func FuzzBandedBoundChain(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{4, 3, 2, 1}, 1)
	f.Add([]byte{0, 255, 0, 255, 128}, []byte{128, 128, 128, 128, 128}, 2)
	f.Add([]byte{9}, []byte{200}, 0)
	f.Fuzz(func(t *testing.T, sraw, qraw []byte, r int) {
		n := len(sraw)
		if len(qraw) < n {
			n = len(qraw)
		}
		if n == 0 {
			return
		}
		if n > 128 {
			n = 128
		}
		if r < 0 {
			r = -r
		}
		r %= n + 4
		s := make(seq.Sequence, n)
		q := make(seq.Sequence, n)
		for i := 0; i < n; i++ {
			s[i] = float64(sraw[i])/16 - 8
			q[i] = float64(qraw[i])/16 - 8
		}
		for _, base := range cascadeBases {
			env := NewEnvelope(q, r)
			keogh := LBKeogh(s, env, base)
			improved, err := LBImproved(s, q, env, base, r)
			if err != nil {
				t.Fatalf("LBImproved on a matching banded envelope: %v", err)
			}
			bd := BandDistance(s, q, base, r)
			if keogh > improved+1e-9 {
				t.Fatalf("base %v r=%d n=%d: LBKeogh=%v > LBImproved=%v", base, r, n, keogh, improved)
			}
			if improved > bd+1e-9 {
				t.Fatalf("base %v r=%d n=%d: LBImproved=%v > BandDistance=%v", base, r, n, improved, bd)
			}
			if d := Distance(s, q, base); bd < d {
				t.Fatalf("base %v r=%d n=%d: BandDistance=%v < Distance=%v", base, r, n, bd, d)
			}
		}
	})
}

// TestBandDistanceAtLeastUnconstrained: a band only removes permissible
// warpings, so BandDistance ≥ Distance for every r — the fact that keeps all
// unconstrained lower bounds sound for banded queries.
func TestBandDistanceAtLeastUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, base := range cascadeBases {
		for trial := 0; trial < 300; trial++ {
			s := randSeq(rng, 48)
			q := randSeq(rng, 48)
			r := rng.Intn(12)
			bd := BandDistance(s, q, base, r)
			d := Distance(s, q, base)
			if bd < d {
				t.Fatalf("base %v r=%d: BandDistance=%v < Distance=%v", base, r, bd, d)
			}
			if math.IsInf(bd, 1) {
				t.Fatalf("base %v r=%d |s|=%d |q|=%d: banded distance is +Inf", base, r, len(s), len(q))
			}
		}
	}
}

// TestBandedBoundChain: for random equal-length s, q and band r,
// LBKeogh(s, Env_r(q)) ≤ LB_Improved ≤ BandDistance(s, q, r) under every
// base — the tier ordering the banded cascade relies on.
func TestBandedBoundChain(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, base := range cascadeBases {
		for trial := 0; trial < 400; trial++ {
			n := 1 + rng.Intn(64)
			s := make(seq.Sequence, n)
			q := make(seq.Sequence, n)
			for i := range s {
				s[i] = rng.NormFloat64() * 2
				q[i] = rng.NormFloat64() * 2
			}
			r := rng.Intn(10)
			env := NewEnvelope(q, r)
			keogh := LBKeogh(s, env, base)
			improved, err := LBImproved(s, q, env, base, r)
			if err != nil {
				t.Fatalf("LBImproved on a matching banded envelope: %v", err)
			}
			bd := BandDistance(s, q, base, r)
			if keogh > improved+1e-9 {
				t.Fatalf("base %v r=%d n=%d: LBKeogh=%v > LBImproved=%v", base, r, n, keogh, improved)
			}
			if improved > bd+1e-9 {
				t.Fatalf("base %v r=%d n=%d: LBImproved=%v > BandDistance=%v", base, r, n, improved, bd)
			}
			// The safe router must agree with the direct banded bound when
			// the caller's band matches.
			safe, err := LBKeoghSafe(s, env, base, r)
			if err != nil || safe != keogh {
				t.Fatalf("LBKeoghSafe(band=%d) = (%v, %v), want (%v, nil)", r, safe, err, keogh)
			}
		}
	}
}

// TestLBKeoghSafeUnsoundCombinations: every combination with no sound bound
// must surface ErrUnsoundBound instead of a silent 0.
func TestLBKeoghSafeUnsoundCombinations(t *testing.T) {
	q := seq.Sequence{0, 1, 2, 3, 4, 5, 6, 7}
	s := seq.Sequence{7, 6, 5, 4, 3, 2, 1, 0}
	short := seq.Sequence{1, 2, 3}
	env := NewEnvelope(q, 2)
	cases := []struct {
		name string
		s    seq.Sequence
		band int
	}{
		{"unconstrained query", s, -1},
		{"band mismatch", s, 3},
		{"length mismatch", short, 2},
	}
	for _, tc := range cases {
		if lb, err := LBKeoghSafe(tc.s, env, seq.LInf, tc.band); err != ErrUnsoundBound || lb != 0 {
			t.Fatalf("%s: got (%v, %v), want (0, ErrUnsoundBound)", tc.name, lb, err)
		}
	}
	// LBImproved enforces the same preconditions.
	if _, err := LBImproved(s, q, env, seq.LInf, 3); err != ErrUnsoundBound {
		t.Fatalf("LBImproved band mismatch: got %v, want ErrUnsoundBound", err)
	}
	if _, err := LBImproved(short, q, env, seq.L1, 2); err != ErrUnsoundBound {
		t.Fatalf("LBImproved length mismatch: got %v, want ErrUnsoundBound", err)
	}
	if _, err := LBImproved(s, q, GlobalEnvelope(q), seq.L1, 2); err != ErrUnsoundBound {
		t.Fatalf("LBImproved on a global envelope: got %v, want ErrUnsoundBound", err)
	}
}

// TestBandDistanceWithinMatchesOracle: the early-abandoning banded DP must
// agree with BandDistance exactly — bit-identical values when within the
// tolerance, and never a false abandon.
func TestBandDistanceWithinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, base := range cascadeBases {
		for trial := 0; trial < 400; trial++ {
			s := randSeq(rng, 40)
			q := randSeq(rng, 40)
			r := rng.Intn(8)
			d := BandDistance(s, q, base, r)
			eps := d * (0.5 + rng.Float64()) // straddles d from both sides
			if trial%7 == 0 {
				eps = d // boundary: within must hold at equality
			}
			got, ok := BandDistanceWithin(s, q, base, r, eps)
			if d <= eps {
				if !ok || got != d {
					t.Fatalf("base %v r=%d eps=%v: got (%v,%v), want exact %v", base, r, eps, got, ok, d)
				}
			} else if ok {
				t.Fatalf("base %v r=%d: within reported ok for d=%v > eps=%v", base, r, d, eps)
			}
		}
	}
}
