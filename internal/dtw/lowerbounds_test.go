package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

// Theorem 1: Dtw(S,Q) >= LBKim(S,Q) for the L∞ base.
func TestLBKimLowerBoundsTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		s := randSeq(rng, 20)
		q := randSeq(rng, 20)
		lb := LBKim(s, q)
		d := Distance(s, q, seq.LInf)
		if lb > d+1e-9 {
			t.Fatalf("Theorem 1 violated: LBKim=%g > Dtw=%g for s=%v q=%v", lb, d, s, q)
		}
	}
}

// Theorem 1, property-based over arbitrary generated inputs.
func TestLBKimTheorem1Quick(t *testing.T) {
	f := func(sv, qv []float64) bool {
		if len(sv) == 0 || len(qv) == 0 {
			return true
		}
		if len(sv) > 12 {
			sv = sv[:12]
		}
		if len(qv) > 12 {
			qv = qv[:12]
		}
		for _, v := range append(append([]float64{}, sv...), qv...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s, q := seq.Sequence(sv), seq.Sequence(qv)
		return LBKim(s, q) <= Distance(s, q, seq.LInf)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Theorem 2: LBKim satisfies the triangular inequality.
func TestLBKimTriangleTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		x := randSeq(rng, 15)
		y := randSeq(rng, 15)
		z := randSeq(rng, 15)
		dxz := LBKim(x, z)
		dxy := LBKim(x, y)
		dyz := LBKim(y, z)
		if dxz > dxy+dyz+1e-9 {
			t.Fatalf("Theorem 2 violated: d(x,z)=%g > d(x,y)+d(y,z)=%g", dxz, dxy+dyz)
		}
	}
}

// Corollary 1: Dtw <= eps implies LBKim <= eps (the no-false-dismissal
// condition of the filtering step).
func TestLBKimCorollary1(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		s := randSeq(rng, 15)
		q := randSeq(rng, 15)
		eps := Distance(s, q, seq.LInf) // tightest qualifying tolerance
		if LBKim(s, q) > eps+1e-9 {
			t.Fatalf("Corollary 1 violated for s=%v q=%v", s, q)
		}
	}
}

func TestLBKimKnownValue(t *testing.T) {
	s := seq.Sequence{1, 5, 0, 2} // F=1 L=2 G=5 Sm=0
	q := seq.Sequence{2, 3, 9}    // F=2 L=9 G=9 Sm=2
	// |1-2|=1, |2-9|=7, |5-9|=4, |0-2|=2 -> max 7.
	if got := LBKim(s, q); got != 7 {
		t.Errorf("LBKim = %g, want 7", got)
	}
}

func TestLBKimEmpty(t *testing.T) {
	if got := LBKim(nil, nil); got != 0 {
		t.Errorf("LBKim(<>, <>) = %g", got)
	}
	if got := LBKim(seq.Sequence{1}, nil); !math.IsInf(got, 1) {
		t.Errorf("LBKim(S, <>) = %g", got)
	}
}

func TestLBKimFeatures(t *testing.T) {
	s := seq.Sequence{1, 5, 0, 2}
	q := seq.Sequence{2, 3, 9}
	direct := LBKim(s, q)
	viaFeatures := LBKimFeatures(seq.MustFeature(s), seq.MustFeature(q))
	if direct != viaFeatures {
		t.Errorf("feature form %g != direct form %g", viaFeatures, direct)
	}
}

// LBYi must lower-bound the DTW for every base.
func TestLBYiLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		for trial := 0; trial < 300; trial++ {
			s := randSeq(rng, 15)
			q := randSeq(rng, 15)
			lb := LBYi(s, q, base)
			d := Distance(s, q, base)
			if lb > d+1e-9 {
				t.Fatalf("base %v: LBYi=%g > Dtw=%g for s=%v q=%v", base, lb, d, s, q)
			}
		}
	}
}

func TestLBYiEmpty(t *testing.T) {
	if got := LBYi(nil, nil, seq.LInf); got != 0 {
		t.Errorf("LBYi(<>, <>) = %g", got)
	}
	if got := LBYi(nil, seq.Sequence{1}, seq.L1); !math.IsInf(got, 1) {
		t.Errorf("LBYi(<>, Q) = %g", got)
	}
}

func TestLBYiOverlappingRangesIsZero(t *testing.T) {
	// When every element of each sequence lies inside the other's range,
	// the bound is 0 even though the sequences differ.
	s := seq.Sequence{0, 5, 10}
	q := seq.Sequence{10, 0}
	if got := LBYi(q, s, seq.LInf); got != 0 {
		t.Errorf("LBYi = %g, want 0", got)
	}
	// One-sided containment is not enough: q's range [3,7] leaves s's
	// endpoints 3 away.
	s2 := seq.Sequence{0, 10}
	q2 := seq.Sequence{3, 7}
	if got := LBYi(s2, q2, seq.LInf); got != 3 {
		t.Errorf("LBYi = %g, want 3", got)
	}
}

func TestLBYiDisjointRanges(t *testing.T) {
	s := seq.Sequence{0, 1}
	q := seq.Sequence{5, 6}
	// Every element of s is >= 4 away from [5,6]; max is |0-5|=5... element 0
	// distance to [5,6] is 5, element 1 is 4; q side: 5 to [0,1] is 4, 6 is 5.
	if got := LBYi(s, q, seq.LInf); got != 5 {
		t.Errorf("LBYi Linf = %g, want 5", got)
	}
	// Additive: sum s-side = 5+4=9, q-side = 4+5=9, max = 9.
	if got := LBYi(s, q, seq.L1); got != 9 {
		t.Errorf("LBYi L1 = %g, want 9", got)
	}
}

// LBKeogh must lower-bound the banded DTW for equal-length sequences.
func TestLBKeoghLowerBoundsBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, base := range []seq.Base{seq.LInf, seq.L1} {
		for trial := 0; trial < 200; trial++ {
			n := 2 + rng.Intn(15)
			s := randSeq(rng, 1)[:0]
			q := randSeq(rng, 1)[:0]
			for i := 0; i < n; i++ {
				s = append(s, rng.Float64()*10)
				q = append(q, rng.Float64()*10)
			}
			r := rng.Intn(5)
			env := NewEnvelope(q, r)
			lb := LBKeogh(s, env, base)
			d := BandDistance(s, q, base, r)
			if lb > d+1e-9 {
				t.Fatalf("base %v r=%d: LBKeogh=%g > band Dtw=%g", base, r, lb, d)
			}
		}
	}
}

func TestLBKeoghLengthMismatch(t *testing.T) {
	env := NewEnvelope(seq.Sequence{1, 2, 3}, 1)
	if got := LBKeogh(seq.Sequence{1, 2}, env, seq.LInf); !math.IsInf(got, 1) {
		t.Errorf("length mismatch returned %g, want +Inf", got)
	}
}

func TestEnvelopeShape(t *testing.T) {
	q := seq.Sequence{1, 5, 2, 8}
	env := NewEnvelope(q, 1)
	wantU := []float64{5, 5, 8, 8}
	wantL := []float64{1, 1, 2, 2}
	for i := range q {
		if env.Upper[i] != wantU[i] || env.Lower[i] != wantL[i] {
			t.Fatalf("envelope[%d] = (%g, %g), want (%g, %g)",
				i, env.Lower[i], env.Upper[i], wantL[i], wantU[i])
		}
	}
	// r=0 degenerates to the sequence itself.
	env0 := NewEnvelope(q, 0)
	for i := range q {
		if env0.Upper[i] != q[i] || env0.Lower[i] != q[i] {
			t.Fatalf("r=0 envelope[%d] != value", i)
		}
	}
}

// The paper's motivation for the feature vector: LBKim prunes at least as
// well as comparing first elements alone, and is tighter on sequences that
// agree at the endpoints but differ in extremes.
func TestLBKimTighterThanEndpoints(t *testing.T) {
	s := seq.Sequence{0, 100, 0}
	q := seq.Sequence{0, 0, 0}
	if got := LBKim(s, q); got != 100 {
		t.Errorf("LBKim = %g, want 100 (greatest difference)", got)
	}
}
