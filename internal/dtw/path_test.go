package dtw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestDistancePathMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		for trial := 0; trial < 200; trial++ {
			s := randSeq(rng, 12)
			q := randSeq(rng, 12)
			d, p := DistancePath(s, q, base)
			if want := Distance(s, q, base); math.Abs(d-want) > 1e-9 {
				t.Fatalf("base %v: DistancePath=%g, Distance=%g", base, d, want)
			}
			if !p.Valid(len(s), len(q)) {
				t.Fatalf("invalid path %v for lens (%d, %d)", p, len(s), len(q))
			}
			if cost := p.Cost(s, q, base); math.Abs(cost-d) > 1e-9 {
				t.Fatalf("base %v: path cost %g != distance %g (path %v)", base, cost, d, p)
			}
		}
	}
}

func TestDistancePathEmpty(t *testing.T) {
	d, p := DistancePath(nil, nil, seq.LInf)
	if d != 0 || p != nil {
		t.Errorf("empty-empty = (%g, %v)", d, p)
	}
	d, p = DistancePath(seq.Sequence{1}, nil, seq.LInf)
	if !math.IsInf(d, 1) || p != nil {
		t.Errorf("S-empty = (%g, %v)", d, p)
	}
}

func TestPathValid(t *testing.T) {
	good := Path{{0, 0}, {1, 0}, {1, 1}, {2, 2}}
	if !good.Valid(3, 3) {
		t.Error("good path rejected")
	}
	cases := []struct {
		name string
		p    Path
	}{
		{"wrong start", Path{{1, 0}, {2, 2}}},
		{"wrong end", Path{{0, 0}, {1, 1}}},
		{"backward step", Path{{0, 0}, {1, 1}, {0, 2}, {2, 2}}},
		{"jump", Path{{0, 0}, {2, 2}}},
		{"stall", Path{{0, 0}, {0, 0}, {2, 2}}},
	}
	for _, c := range cases {
		if c.p.Valid(3, 3) {
			t.Errorf("%s accepted: %v", c.name, c.p)
		}
	}
	if !(Path{}).Valid(0, 0) {
		t.Error("empty path for empty sequences rejected")
	}
	if (Path{}).Valid(1, 0) {
		t.Error("empty path accepted for non-empty sequence")
	}
}

func TestPathCostEmpty(t *testing.T) {
	if got := (Path{}).Cost(nil, nil, seq.L1); got != 0 {
		t.Errorf("empty path cost = %g", got)
	}
}

func TestPathString(t *testing.T) {
	p := Path{{0, 0}, {1, 1}}
	if got := p.String(); got != "(0,0)(1,1)" {
		t.Errorf("String = %q", got)
	}
}

func TestPathCoversPaperExample(t *testing.T) {
	s := seq.Sequence{20, 21, 21, 20, 20, 23, 23, 23}
	q := seq.Sequence{20, 20, 21, 20, 23}
	d, p := DistancePath(s, q, seq.LInf)
	if d != 0 {
		t.Fatalf("distance = %g, want 0", d)
	}
	for _, st := range p {
		if s[st.I] != q[st.J] {
			t.Fatalf("zero-cost path maps %g to %g at %v", s[st.I], q[st.J], st)
		}
	}
}
