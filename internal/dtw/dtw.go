// Package dtw implements the time warping distance of the paper
// (Definitions 1 and 2) with a dynamic program, an early-abandoning variant
// driven by a search tolerance, warping path recovery, a Sakoe–Chiba banded
// variant, and the family of lower-bound functions the evaluated methods
// rely on: Yi et al.'s scan-time bound (LB-Scan), the paper's Dtw-lb
// (LB_Kim), and LB_Keogh as a later-work extension.
//
// Conventions: every Distance-style function returns +Inf when either input
// is empty (Definition 1: Dtw(S, <>) = Dtw(<>, Q) = ∞) except for the pair
// of empty sequences, whose distance is 0.
package dtw

import (
	"math"

	"repro/internal/seq"
)

// Inf is the distance reported for undefined comparisons and by abandoned
// computations.
var Inf = math.Inf(1)

// Distance computes the exact time warping distance between s and q under
// the given base distance using the standard O(|S|·|Q|) dynamic program with
// O(min(|S|,|Q|)) memory.
//
// For base seq.LInf this is Definition 2: the cost of a warping path is the
// maximum element-pair difference along it, and the distance is the minimum
// over all paths. For seq.L1/seq.L2Sq costs accumulate additively
// (Definition 1).
//
// The DP rows come from a sync.Pool and the inner loop is specialized per
// base (see kernel.go), so steady-state calls allocate nothing for
// sequences up to PooledRowCap.
func Distance(s, q seq.Sequence, base seq.Base) float64 {
	switch {
	case s.Empty() && q.Empty():
		return 0
	case s.Empty() || q.Empty():
		return Inf
	}
	// Keep the inner loop over the shorter sequence to bound memory.
	if len(q) > len(s) {
		s, q = q, s
	}
	switch base {
	case seq.LInf:
		return distKernelLInf(s, q)
	case seq.L1:
		return distKernelAdd(s, q, false)
	case seq.L2Sq:
		return distKernelAdd(s, q, true)
	default:
		return distanceGeneric(s, q, base)
	}
}

// DistanceWithin computes the time warping distance but abandons as soon as
// it can prove the result exceeds epsilon, returning (+Inf, false) in that
// case. When the distance is within epsilon it returns (d, true) with the
// exact value d.
//
// Early abandoning exploits the DP's monotonicity: cell values never
// decrease along a path, so once every cell of a row exceeds epsilon no
// completion can come back under it. With the L∞ base this triggers
// especially early (§4.1: "the decisions happen each time the distance
// between any element pair exceeds a tolerance").
func DistanceWithin(s, q seq.Sequence, base seq.Base, epsilon float64) (float64, bool) {
	switch {
	case s.Empty() && q.Empty():
		return 0, 0 <= epsilon
	case s.Empty() || q.Empty():
		return Inf, false
	}
	if epsilon < 0 {
		return Inf, false
	}
	// Cheap O(1) pre-check: the first and last elements always map to each
	// other in any warping path.
	if base.Elem(s[0], q[0]) > epsilon || base.Elem(s[len(s)-1], q[len(q)-1]) > epsilon {
		return Inf, false
	}
	if len(q) > len(s) {
		s, q = q, s
	}
	switch base {
	case seq.LInf:
		return withinKernelLInf(s, q, epsilon)
	case seq.L1:
		return withinKernelAdd(s, q, false, epsilon)
	case seq.L2Sq:
		return withinKernelAdd(s, q, true, epsilon)
	default:
		return withinGeneric(s, q, base, epsilon)
	}
}

// Within reports whether Dtw(s,q) ≤ epsilon, abandoning early when possible.
func Within(s, q seq.Sequence, base seq.Base, epsilon float64) bool {
	_, ok := DistanceWithin(s, q, base, epsilon)
	return ok
}

// BandDistance computes the time warping distance restricted to a
// Sakoe–Chiba band of half-width r around the diagonal: cell (i,j) is only
// reachable when |i·|Q|/|S| − j| ≤ r after slope normalization. r < 0 means
// no band (identical to Distance). A band is an *extension* relative to the
// paper — it constrains permissible warpings and therefore returns a value
// ≥ the unconstrained distance.
//
// The effective half-width is never allowed below ⌈⌈slope⌉−1⌉/2: when the
// lengths are very different (steep slope) consecutive rows' band ranges
// would otherwise be disjoint and no banded path would exist at all.
// With that floor a banded path always exists, so BandDistance is finite
// for any r ≥ 0 whenever both sequences are non-empty.
func BandDistance(s, q seq.Sequence, base seq.Base, r int) float64 {
	if r < 0 {
		return Distance(s, q, base)
	}
	switch {
	case s.Empty() && q.Empty():
		return 0
	case s.Empty() || q.Empty():
		return Inf
	}
	n, m := len(s), len(q)
	if n == 1 || m == 1 {
		// A single row (or column) must traverse the whole other sequence;
		// no band can constrain it.
		return Distance(s, q, base)
	}
	// Slope-normalize the band so corner cells stay reachable for unequal
	// lengths: the band follows the stretched diagonal j ≈ i·(m-1)/(n-1).
	slope := float64(m-1) / float64(n-1)
	// Consecutive row centers advance by up to ⌈slope⌉ columns; ranges of
	// half-width w connect (lo_i ≤ hi_{i-1}+1) iff that advance is ≤ 2w+1.
	// Widen r to the smallest w that guarantees it, ⌈(⌈slope⌉−1)/2⌉, which
	// is 0 for slope ≤ 1 (the classic equal-length band is untouched).
	halfWidth := r
	if minHalf := int(math.Ceil(slope)) / 2; minHalf > halfWidth {
		halfWidth = minHalf
	}
	rp := acquireRows(m)
	defer releaseRows(rp)
	prev, cur := rp.prev, rp.cur
	for j := range prev {
		prev[j] = Inf
		cur[j] = Inf
	}
	lo0, hi0 := bandRange(0, slope, halfWidth, m)
	for j := lo0; j <= hi0; j++ {
		e := base.Elem(s[0], q[j])
		if j == 0 {
			prev[j] = e
		} else if prev[j-1] < Inf {
			prev[j] = base.Combine(e, prev[j-1])
		}
	}
	for i := 1; i < n; i++ {
		lo, hi := bandRange(i, slope, halfWidth, m)
		for j := 0; j < m; j++ {
			cur[j] = Inf
		}
		for j := lo; j <= hi; j++ {
			best := prev[j]
			if j > 0 {
				if cur[j-1] < best {
					best = cur[j-1]
				}
				if prev[j-1] < best {
					best = prev[j-1]
				}
			}
			if math.IsInf(best, 1) {
				continue
			}
			cur[j] = base.Combine(base.Elem(s[i], q[j]), best)
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}

// BandDistanceWithin is BandDistance with early abandoning: it returns
// (d, true) with the exact banded distance when d ≤ epsilon and (+Inf,
// false) as soon as every cell of a band row exceeds epsilon (cell values
// never decrease along a path, so no completion can come back under it).
// The banded refine path uses this the way the unbanded one uses the
// corridor refiner. r < 0 falls back to DistanceWithin.
func BandDistanceWithin(s, q seq.Sequence, base seq.Base, r int, epsilon float64) (float64, bool) {
	if r < 0 {
		return DistanceWithin(s, q, base, epsilon)
	}
	switch {
	case s.Empty() && q.Empty():
		return 0, 0 <= epsilon
	case s.Empty() || q.Empty():
		return Inf, false
	}
	if epsilon < 0 {
		return Inf, false
	}
	// O(1) pre-check: the corner cells lie on every path, banded or not.
	if base.Elem(s[0], q[0]) > epsilon || base.Elem(s[len(s)-1], q[len(q)-1]) > epsilon {
		return Inf, false
	}
	n, m := len(s), len(q)
	if n == 1 || m == 1 {
		return DistanceWithin(s, q, base, epsilon)
	}
	slope := float64(m-1) / float64(n-1)
	halfWidth := r
	if minHalf := int(math.Ceil(slope)) / 2; minHalf > halfWidth {
		halfWidth = minHalf
	}
	rp := acquireRows(m)
	defer releaseRows(rp)
	prev, cur := rp.prev, rp.cur
	for j := range prev {
		prev[j] = Inf
		cur[j] = Inf
	}
	lo0, hi0 := bandRange(0, slope, halfWidth, m)
	for j := lo0; j <= hi0; j++ {
		e := base.Elem(s[0], q[j])
		if j == 0 {
			prev[j] = e
		} else if prev[j-1] < Inf {
			prev[j] = base.Combine(e, prev[j-1])
		}
	}
	for i := 1; i < n; i++ {
		lo, hi := bandRange(i, slope, halfWidth, m)
		for j := 0; j < m; j++ {
			cur[j] = Inf
		}
		alive := false
		for j := lo; j <= hi; j++ {
			best := prev[j]
			if j > 0 {
				if cur[j-1] < best {
					best = cur[j-1]
				}
				if prev[j-1] < best {
					best = prev[j-1]
				}
			}
			if math.IsInf(best, 1) {
				continue
			}
			v := base.Combine(base.Elem(s[i], q[j]), best)
			cur[j] = v
			if v <= epsilon {
				alive = true
			}
		}
		if !alive {
			return Inf, false
		}
		prev, cur = cur, prev
	}
	if d := prev[m-1]; d <= epsilon {
		return d, true
	}
	return Inf, false
}

func bandRange(i int, slope float64, r, m int) (lo, hi int) {
	center := int(math.Round(float64(i) * slope))
	lo, hi = center-r, center+r
	if lo < 0 {
		lo = 0
	}
	if hi > m-1 {
		hi = m - 1
	}
	return lo, hi
}

// NormalizedDistance returns the time warping distance divided by the
// length of an optimal warping path — the classical per-step normalization
// for additive bases, which makes tolerances comparable across sequence
// lengths without switching to the L∞ base. For seq.LInf the distance is
// already length-independent (the paper's §4.1 argument) and is returned
// unchanged.
func NormalizedDistance(s, q seq.Sequence, base seq.Base) float64 {
	if base == seq.LInf {
		return Distance(s, q, base)
	}
	d, path := DistancePath(s, q, base)
	if len(path) == 0 {
		return d
	}
	return d / float64(len(path))
}
