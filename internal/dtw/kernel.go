package dtw

import (
	"sync"

	"repro/internal/seq"
)

// PooledRowCap is the DP row capacity the buffer pool hands out by default.
// Sequences up to this length (after the shorter-side swap) run the DP with
// zero per-call allocations in steady state; longer sequences grow the
// pooled buffers on first use and are allocation-free afterwards.
const PooledRowCap = 4096

// rowPair is one reusable pair of DP rows. Pooling the pair (rather than
// two single rows) halves the pool traffic per call.
type rowPair struct {
	prev, cur []float64
}

var rowPool = sync.Pool{
	New: func() any {
		return &rowPair{
			prev: make([]float64, PooledRowCap),
			cur:  make([]float64, PooledRowCap),
		}
	},
}

// acquireRows returns a pooled row pair sized to m columns.
func acquireRows(m int) *rowPair {
	rp := rowPool.Get().(*rowPair)
	if cap(rp.prev) < m {
		rp.prev = make([]float64, m)
		rp.cur = make([]float64, m)
	}
	rp.prev = rp.prev[:m]
	rp.cur = rp.cur[:m]
	return rp
}

func releaseRows(rp *rowPair) { rowPool.Put(rp) }

// The three kernels below are concrete per-base specializations of the DP
// inner loop: the generic loop pays a Combine branch (and, for LInf, a
// math.Max call) per cell, which dominates once the rows come from the
// pool. Each kernel mirrors the generic recurrence exactly — same element
// expression, same predecessor comparison order — so results are
// bit-identical to the generic form for all non-NaN inputs.
//
// All kernels require the caller to have already handled empty inputs and
// swapped so len(q) <= len(s).

// distKernelLInf is Distance for seq.LInf: path cost is the maximum
// element-pair difference (paper Definition 2).
func distKernelLInf(s, q []float64) float64 {
	rp := acquireRows(len(q))
	prev, cur := rp.prev, rp.cur
	v := s[0] - q[0]
	if v < 0 {
		v = -v
	}
	prev[0] = v
	for j := 1; j < len(q); j++ {
		e := s[0] - q[j]
		if e < 0 {
			e = -e
		}
		if prev[j-1] > e {
			e = prev[j-1]
		}
		prev[j] = e
	}
	for i := 1; i < len(s); i++ {
		si := s[i]
		e := si - q[0]
		if e < 0 {
			e = -e
		}
		if prev[0] > e {
			e = prev[0]
		}
		cur[0] = e
		for j := 1; j < len(q); j++ {
			e := si - q[j]
			if e < 0 {
				e = -e
			}
			best := prev[j]
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if best > e {
				e = best
			}
			cur[j] = e
		}
		prev, cur = cur, prev
	}
	d := prev[len(q)-1]
	releaseRows(rp)
	return d
}

// distKernelAdd is Distance for the additive bases; squared selects the
// seq.L2Sq element cost (the flag is hoisted out of the hot cell math —
// a single predictable branch per cell, no interface-style dispatch).
func distKernelAdd(s, q []float64, squared bool) float64 {
	rp := acquireRows(len(q))
	prev, cur := rp.prev, rp.cur
	elem := func(x, y float64) float64 {
		d := x - y
		if d < 0 {
			d = -d
		}
		if squared {
			return d * d
		}
		return d
	}
	prev[0] = elem(s[0], q[0])
	for j := 1; j < len(q); j++ {
		prev[j] = elem(s[0], q[j]) + prev[j-1]
	}
	for i := 1; i < len(s); i++ {
		si := s[i]
		cur[0] = elem(si, q[0]) + prev[0]
		for j := 1; j < len(q); j++ {
			best := prev[j]
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if prev[j-1] < best {
				best = prev[j-1]
			}
			cur[j] = elem(si, q[j]) + best
		}
		prev, cur = cur, prev
	}
	d := prev[len(q)-1]
	releaseRows(rp)
	return d
}

// withinKernelLInf is DistanceWithin's DP for seq.LInf with row-aliveness
// early abandoning.
func withinKernelLInf(s, q []float64, epsilon float64) (float64, bool) {
	rp := acquireRows(len(q))
	prev, cur := rp.prev, rp.cur
	alive := false
	v := s[0] - q[0]
	if v < 0 {
		v = -v
	}
	prev[0] = v
	if v <= epsilon {
		alive = true
	}
	for j := 1; j < len(q); j++ {
		e := s[0] - q[j]
		if e < 0 {
			e = -e
		}
		if prev[j-1] > e {
			e = prev[j-1]
		}
		prev[j] = e
		if e <= epsilon {
			alive = true
		}
	}
	if !alive {
		releaseRows(rp)
		return Inf, false
	}
	for i := 1; i < len(s); i++ {
		si := s[i]
		alive = false
		e := si - q[0]
		if e < 0 {
			e = -e
		}
		if prev[0] > e {
			e = prev[0]
		}
		cur[0] = e
		if e <= epsilon {
			alive = true
		}
		for j := 1; j < len(q); j++ {
			e := si - q[j]
			if e < 0 {
				e = -e
			}
			best := prev[j]
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if best > e {
				e = best
			}
			cur[j] = e
			if e <= epsilon {
				alive = true
			}
		}
		if !alive {
			releaseRows(rp)
			return Inf, false
		}
		prev, cur = cur, prev
	}
	d := prev[len(q)-1]
	releaseRows(rp)
	if d > epsilon {
		return Inf, false
	}
	return d, true
}

// withinKernelAdd is DistanceWithin's DP for the additive bases.
func withinKernelAdd(s, q []float64, squared bool, epsilon float64) (float64, bool) {
	rp := acquireRows(len(q))
	prev, cur := rp.prev, rp.cur
	elem := func(x, y float64) float64 {
		d := x - y
		if d < 0 {
			d = -d
		}
		if squared {
			return d * d
		}
		return d
	}
	alive := false
	prev[0] = elem(s[0], q[0])
	if prev[0] <= epsilon {
		alive = true
	}
	for j := 1; j < len(q); j++ {
		prev[j] = elem(s[0], q[j]) + prev[j-1]
		if prev[j] <= epsilon {
			alive = true
		}
	}
	if !alive {
		releaseRows(rp)
		return Inf, false
	}
	for i := 1; i < len(s); i++ {
		si := s[i]
		alive = false
		cur[0] = elem(si, q[0]) + prev[0]
		if cur[0] <= epsilon {
			alive = true
		}
		for j := 1; j < len(q); j++ {
			best := prev[j]
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if prev[j-1] < best {
				best = prev[j-1]
			}
			cur[j] = elem(si, q[j]) + best
			if cur[j] <= epsilon {
				alive = true
			}
		}
		if !alive {
			releaseRows(rp)
			return Inf, false
		}
		prev, cur = cur, prev
	}
	d := prev[len(q)-1]
	releaseRows(rp)
	if d > epsilon {
		return Inf, false
	}
	return d, true
}

// distanceGeneric is the original interface-style DP, kept as the fallback
// for base values outside the three specialized ones (none exist today; the
// fallback guards future Base additions) and as the reference the kernel
// equivalence tests compare against.
func distanceGeneric(s, q seq.Sequence, base seq.Base) float64 {
	rp := acquireRows(len(q))
	prev, cur := rp.prev, rp.cur
	for j := range prev {
		e := base.Elem(s[0], q[j])
		if j == 0 {
			prev[j] = e
		} else {
			prev[j] = base.Combine(e, prev[j-1])
		}
	}
	for i := 1; i < len(s); i++ {
		for j := range cur {
			e := base.Elem(s[i], q[j])
			best := prev[j]
			if j > 0 {
				if cur[j-1] < best {
					best = cur[j-1]
				}
				if prev[j-1] < best {
					best = prev[j-1]
				}
			}
			cur[j] = base.Combine(e, best)
		}
		prev, cur = cur, prev
	}
	d := prev[len(q)-1]
	releaseRows(rp)
	return d
}

// withinGeneric is the original early-abandoning DP kept as the
// unspecialized fallback (see distanceGeneric).
func withinGeneric(s, q seq.Sequence, base seq.Base, epsilon float64) (float64, bool) {
	rp := acquireRows(len(q))
	prev, cur := rp.prev, rp.cur
	alive := false
	for j := range prev {
		e := base.Elem(s[0], q[j])
		if j == 0 {
			prev[j] = e
		} else {
			prev[j] = base.Combine(e, prev[j-1])
		}
		if prev[j] <= epsilon {
			alive = true
		}
	}
	if !alive {
		releaseRows(rp)
		return Inf, false
	}
	for i := 1; i < len(s); i++ {
		alive = false
		for j := range cur {
			e := base.Elem(s[i], q[j])
			best := prev[j]
			if j > 0 {
				if cur[j-1] < best {
					best = cur[j-1]
				}
				if prev[j-1] < best {
					best = prev[j-1]
				}
			}
			cur[j] = base.Combine(e, best)
			if cur[j] <= epsilon {
				alive = true
			}
		}
		if !alive {
			releaseRows(rp)
			return Inf, false
		}
		prev, cur = cur, prev
	}
	d := prev[len(q)-1]
	releaseRows(rp)
	if d > epsilon {
		return Inf, false
	}
	return d, true
}
