package dtw

import (
	"fmt"

	"repro/internal/seq"
)

// Step is one element mapping m_h = (i, j) of a warping path: element i of S
// matched with element j of Q (0-based indices).
type Step struct {
	I, J int
}

// Path is a complete warping path: a monotone sequence of element mappings
// from (0,0) to (|S|-1, |Q|-1) where each step advances i, j, or both by one.
type Path []Step

// Valid reports whether p is a legal warping path for sequences of the given
// lengths.
func (p Path) Valid(lenS, lenQ int) bool {
	if len(p) == 0 {
		return lenS == 0 && lenQ == 0
	}
	if p[0] != (Step{0, 0}) || p[len(p)-1] != (Step{lenS - 1, lenQ - 1}) {
		return false
	}
	for k := 1; k < len(p); k++ {
		di := p[k].I - p[k-1].I
		dj := p[k].J - p[k-1].J
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			return false
		}
	}
	return true
}

// Cost evaluates the warping cost of path p between s and q under base:
// max of element costs for LInf, their sum otherwise.
func (p Path) Cost(s, q seq.Sequence, base seq.Base) float64 {
	if len(p) == 0 {
		return 0
	}
	acc := base.Elem(s[p[0].I], q[p[0].J])
	for _, st := range p[1:] {
		acc = base.Combine(base.Elem(s[st.I], q[st.J]), acc)
	}
	return acc
}

// String renders the path compactly, e.g. "(0,0)(1,0)(2,1)".
func (p Path) String() string {
	out := make([]byte, 0, len(p)*6)
	for _, st := range p {
		out = fmt.Appendf(out, "(%d,%d)", st.I, st.J)
	}
	return string(out)
}

// DistancePath computes the exact time warping distance together with one
// optimal warping path. It keeps the full O(|S|·|Q|) DP matrix, so prefer
// Distance when the path itself is not needed.
func DistancePath(s, q seq.Sequence, base seq.Base) (float64, Path) {
	switch {
	case s.Empty() && q.Empty():
		return 0, nil
	case s.Empty() || q.Empty():
		return Inf, nil
	}
	n, m := len(s), len(q)
	d := make([]float64, n*m)
	at := func(i, j int) float64 { return d[i*m+j] }
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			e := base.Elem(s[i], q[j])
			switch {
			case i == 0 && j == 0:
				d[i*m+j] = e
			case i == 0:
				d[i*m+j] = base.Combine(e, at(0, j-1))
			case j == 0:
				d[i*m+j] = base.Combine(e, at(i-1, 0))
			default:
				best := at(i-1, j)
				if v := at(i, j-1); v < best {
					best = v
				}
				if v := at(i-1, j-1); v < best {
					best = v
				}
				d[i*m+j] = base.Combine(e, best)
			}
		}
	}
	// Backtrack greedily toward the smallest predecessor.
	path := make(Path, 0, n+m)
	i, j := n-1, m-1
	for {
		path = append(path, Step{i, j})
		if i == 0 && j == 0 {
			break
		}
		bi, bj := i, j
		best := Inf
		if i > 0 && at(i-1, j) < best {
			best, bi, bj = at(i-1, j), i-1, j
		}
		if j > 0 && at(i, j-1) < best {
			best, bi, bj = at(i, j-1), i, j-1
		}
		if i > 0 && j > 0 && at(i-1, j-1) <= best {
			bi, bj = i-1, j-1
		}
		i, j = bi, bj
	}
	// Reverse into forward order.
	for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
		path[a], path[b] = path[b], path[a]
	}
	return at(n-1, m-1), path
}
