package dtw

import (
	"errors"
	"math"

	"repro/internal/seq"
)

// LBKim is the paper's lower-bound distance Dtw-lb (Definition 3): the L∞
// distance between the two 4-tuple feature vectors
// (First, Last, Greatest, Smallest). Theorem 1 proves LBKim(s,q) ≤
// Dtw(s,q) for the L∞ base; Theorem 2 notes it is a metric, which makes it
// safe as the distance function of a spatial index.
func LBKim(s, q seq.Sequence) float64 {
	if s.Empty() || q.Empty() {
		if s.Empty() && q.Empty() {
			return 0
		}
		return Inf
	}
	return seq.MustFeature(s).DistLInf(seq.MustFeature(q))
}

// LBKimFeatures is LBKim evaluated on pre-extracted feature vectors; the
// index uses this form so data sequences never need to be fetched during
// filtering.
func LBKimFeatures(fs, fq seq.Feature) float64 { return fs.DistLInf(fq) }

// LBYi is the scan-time lower bound of Yi, Jagadish & Faloutsos used by the
// LB-Scan baseline, adapted to the requested base distance. Every element of
// S must match at least one element of Q on any warping path, so its base
// distance to the range [Smallest(Q), Greatest(Q)] lower-bounds its matched
// cost; symmetrically for elements of Q against the range of S.
//
// For the L∞ base the bound is the maximum such element-to-range distance;
// for additive bases it is the larger of the two one-sided sums (each
// element contributes to ≥ 1 mapping, so each one-sided sum is a valid
// bound, but their sum is not). Complexity O(|S|+|Q|) after the O(1) range
// computation.
func LBYi(s, q seq.Sequence, base seq.Base) float64 {
	if s.Empty() || q.Empty() {
		if s.Empty() && q.Empty() {
			return 0
		}
		return Inf
	}
	sMin, sMax := s.MinMax()
	qMin, qMax := q.MinMax()
	if base == seq.LInf {
		max := 0.0
		for _, v := range s {
			if d := seq.DistToRange(v, qMin, qMax); d > max {
				max = d
			}
		}
		for _, v := range q {
			if d := seq.DistToRange(v, sMin, sMax); d > max {
				max = d
			}
		}
		return max
	}
	sumS, sumQ := 0.0, 0.0
	for _, v := range s {
		sumS += base.Elem(0, seq.DistToRange(v, qMin, qMax))
	}
	for _, v := range q {
		sumQ += base.Elem(0, seq.DistToRange(v, sMin, sMax))
	}
	return math.Max(sumS, sumQ)
}

// Envelope is the Keogh upper/lower envelope of a query under a Sakoe–Chiba
// band of half-width r: Upper[i] = max(q[i-r..i+r]), Lower[i] = min(...).
type Envelope struct {
	Lower, Upper []float64
	// band is the half-width the envelope was built with; only meaningful
	// when !full. LBKeoghSafe refuses to use a banded envelope for a query
	// searching under any other band.
	band int
	// full marks a GlobalEnvelope: every window is the whole query's range,
	// which is the only envelope shape whose bound survives unconstrained
	// (band-free) warping and unequal lengths. See LBKeoghSafe.
	full bool
}

// Band returns the Sakoe–Chiba half-width the envelope was built with.
// It is meaningful only for banded envelopes (Full() == false).
func (e Envelope) Band() int { return e.band }

// Full reports whether e is a GlobalEnvelope (position-independent windows).
func (e Envelope) Full() bool { return e.full }

// NewEnvelope builds the envelope of q for band half-width r in O(|Q|) time
// using Lemire's monotonic-deque streaming min/max. A negative r is clamped
// to 0 (the degenerate envelope Lower = Upper = q) instead of producing
// inverted, out-of-range windows.
func NewEnvelope(q seq.Sequence, r int) Envelope {
	if r < 0 {
		r = 0
	}
	n := len(q)
	env := Envelope{Lower: make([]float64, n), Upper: make([]float64, n), band: r}
	if n == 0 {
		return env
	}
	idx := make([]int32, 2*n)
	slidingMinMax(q, r, env.Lower, env.Upper, idx[:n], idx[n:])
	return env
}

// newEnvelopeScan is the pre-deque O(|Q|·r) envelope construction (a nested
// rescan per window). It is kept purely as the test/fuzz oracle for
// NewEnvelope — do not use it on hot paths.
func newEnvelopeScan(q seq.Sequence, r int) Envelope {
	if r < 0 {
		r = 0
	}
	n := len(q)
	env := Envelope{Lower: make([]float64, n), Upper: make([]float64, n), band: r}
	for i := 0; i < n; i++ {
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		min, max := q[lo], q[lo]
		for j := lo + 1; j <= hi; j++ {
			if q[j] < min {
				min = q[j]
			}
			if q[j] > max {
				max = q[j]
			}
		}
		env.Lower[i], env.Upper[i] = min, max
	}
	return env
}

// slidingMinMax fills lo[i] = min(q[i-r..i+r]) and hi[i] = max(q[i-r..i+r])
// (windows clipped to the sequence) using two monotonic index deques, one
// ascending for the minimum and one descending for the maximum. Every index
// is pushed and popped at most once, so the whole pass is O(|q|) regardless
// of r. minq and maxq are caller-provided deque storage of len(q) each.
func slidingMinMax(q []float64, r int, lo, hi []float64, minq, maxq []int32) {
	n := len(q)
	minh, mint := 0, 0 // deque occupies minq[minh:mint], values ascending
	maxh, maxt := 0, 0 // deque occupies maxq[maxh:maxt], values descending
	right := 0         // next element to admit into the deques
	for i := 0; i < n; i++ {
		end := i + r
		if end > n-1 {
			end = n - 1
		}
		for ; right <= end; right++ {
			v := q[right]
			for mint > minh && q[minq[mint-1]] >= v {
				mint--
			}
			minq[mint] = int32(right)
			mint++
			for maxt > maxh && q[maxq[maxt-1]] <= v {
				maxt--
			}
			maxq[maxt] = int32(right)
			maxt++
		}
		start := int32(i - r)
		for minq[minh] < start {
			minh++
		}
		for maxq[maxh] < start {
			maxh++
		}
		lo[i] = q[minq[minh]]
		hi[i] = q[maxq[maxh]]
	}
}

// GlobalEnvelope builds the degenerate full-band envelope of q: every window
// is [Smallest(Q), Greatest(Q)]. Unlike a banded envelope it lower-bounds the
// *unconstrained* time warping distance of the paper, because any warping
// path matches each element of S to some element of Q, which necessarily lies
// inside the global range — no band assumption needed. It is also the only
// envelope that remains sound when |S| ≠ |Q| (the window is
// position-independent). The resulting LBKeoghSafe value equals the S-side
// of LBYi; the cascade uses it as the first half of the two-pass Yi bound so
// the cheap half can prune before s.MinMax() is ever taken.
func GlobalEnvelope(q seq.Sequence) Envelope {
	n := len(q)
	env := Envelope{Lower: make([]float64, n), Upper: make([]float64, n), full: true}
	if n == 0 {
		return env
	}
	min, max := q.MinMax()
	for i := range env.Lower {
		env.Lower[i], env.Upper[i] = min, max
	}
	return env
}

// ErrUnsoundBound reports an envelope/band combination for which no sound
// Keogh-style lower bound exists: pruning on any value the function could
// return might falsely dismiss a true match. Callers must treat it as "this
// tier cannot run", never as "the bound is 0".
var ErrUnsoundBound = errors.New("dtw: envelope cannot soundly bound the requested distance")

// LBKeoghSafe is the cascade-safe form of LBKeogh: the returned value never
// exceeds BandDistance(s, q, base, band) for the query the envelope was
// built from, so pruning on it can never falsely dismiss. band follows the
// BandDistance convention: negative means the unconstrained distance,
// band ≥ 0 the Sakoe–Chiba half-width the caller searches under.
//
// Routing:
//
//   - A GlobalEnvelope is sound for every band: it bounds the unconstrained
//     distance (any warping path matches each element of S to some element
//     of Q inside the global range), and BandDistance ≥ Distance because a
//     band only removes permissible paths. Works for unequal lengths too —
//     the window is position-independent.
//   - A banded envelope bounds only the *banded* distance with the same
//     half-width it was built from, and only for equal lengths (a
//     counterexample for the unconstrained case: s = 0…0,5 and q = 0,5…5
//     have Dtw = 0 under L∞ but banded LBKeogh ≈ 5). When the caller's band
//     matches and |S| = |Q|, this routes to the sound banded LBKeogh.
//   - Every other combination — banded envelope with an unconstrained query,
//     a different band, or unequal lengths — has no sound bound here and
//     returns ErrUnsoundBound. Earlier revisions silently returned the
//     vacuous bound 0 instead, which hid exactly this class of caller bug
//     and made the envelope tier dead weight.
func LBKeoghSafe(s seq.Sequence, env Envelope, base seq.Base, band int) (float64, error) {
	if len(env.Lower) == 0 || s.Empty() {
		return 0, nil
	}
	if !env.full {
		if band < 0 || band != env.band || len(s) != len(env.Lower) {
			return 0, ErrUnsoundBound
		}
		return LBKeogh(s, env, base), nil
	}
	lo, hi := env.Lower[0], env.Upper[0]
	if base == seq.LInf {
		max := 0.0
		for _, v := range s {
			if d := seq.DistToRange(v, lo, hi); d > max {
				max = d
			}
		}
		return max, nil
	}
	acc := 0.0
	for _, v := range s {
		acc += base.Elem(0, seq.DistToRange(v, lo, hi))
	}
	return acc, nil
}

// LBKeogh computes Keogh's envelope lower bound of the *banded* time warping
// distance BandDistance(s, q, base, r), where env must have been built from
// q with the same r and |S| must equal |Q| (the bound is defined for
// equal-length sequences). It returns +Inf when the lengths differ, which is
// trivially a safe answer only for pruning equal-length workloads — callers
// handle mixed-length data with LBKim/LBYi instead.
//
// This is a post-paper extension included for the ablation benches.
func LBKeogh(s seq.Sequence, env Envelope, base seq.Base) float64 {
	if len(s) != len(env.Lower) {
		return Inf
	}
	if base == seq.LInf {
		max := 0.0
		for i, v := range s {
			if d := seq.DistToRange(v, env.Lower[i], env.Upper[i]); d > max {
				max = d
			}
		}
		return max
	}
	acc := 0.0
	for i, v := range s {
		acc += base.Elem(0, seq.DistToRange(v, env.Lower[i], env.Upper[i]))
	}
	return acc
}
