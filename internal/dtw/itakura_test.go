package dtw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestItakuraNeverBelowUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		s := randSeq(rng, 15)
		q := randSeq(rng, 15)
		full := Distance(s, q, seq.LInf)
		it := ItakuraDistance(s, q, seq.LInf)
		if it < full-1e-9 {
			t.Fatalf("Itakura %g < unconstrained %g (s=%v q=%v)", it, full, s, q)
		}
	}
}

func TestItakuraEqualOnDiagonalFriendlyPairs(t *testing.T) {
	// Equal-length sequences that are element-wise close: the diagonal is
	// a legal Itakura path, so the optimal unconstrained path is available
	// whenever it is itself the diagonal.
	s := seq.Sequence{1, 2, 3, 4}
	if got := ItakuraDistance(s, s, seq.LInf); got != 0 {
		t.Errorf("self distance = %g", got)
	}
	q := seq.Sequence{1.5, 2.5, 3.5, 4.5}
	if got := ItakuraDistance(s, q, seq.LInf); got != 0.5 {
		t.Errorf("near-diagonal distance = %g, want 0.5", got)
	}
}

func TestItakuraInfeasibleLengthRatio(t *testing.T) {
	// |S| more than twice |Q| leaves no legal path.
	s := seq.Sequence{1, 1, 1, 1, 1, 1, 1}
	q := seq.Sequence{1, 1}
	if got := ItakuraDistance(s, q, seq.LInf); !math.IsInf(got, 1) {
		t.Errorf("infeasible ratio gave %g, want +Inf", got)
	}
	// A moderate length ratio (15 vs 10) leaves the parallelogram roomy.
	s2 := make(seq.Sequence, 10)
	q2 := make(seq.Sequence, 15)
	for i := range s2 {
		s2[i] = 1
	}
	for i := range q2 {
		q2[i] = 1
	}
	if got := ItakuraDistance(s2, q2, seq.LInf); got != 0 {
		t.Errorf("constant 10v15 = %g, want 0", got)
	}
}

func TestItakuraEmpty(t *testing.T) {
	if got := ItakuraDistance(nil, nil, seq.LInf); got != 0 {
		t.Errorf("empty-empty = %g", got)
	}
	if got := ItakuraDistance(seq.Sequence{1}, nil, seq.LInf); !math.IsInf(got, 1) {
		t.Errorf("S-empty = %g", got)
	}
}

func TestItakuraSingletons(t *testing.T) {
	if got := ItakuraDistance(seq.Sequence{3}, seq.Sequence{5}, seq.LInf); got != 2 {
		t.Errorf("singleton = %g", got)
	}
	// 1 vs 2 elements: the endpoint slope constraint leaves no legal path
	// (the unconstrained DTW would happily replicate the single element).
	if got := ItakuraDistance(seq.Sequence{3}, seq.Sequence{3, 4}, seq.L1); !math.IsInf(got, 1) {
		t.Errorf("1v2 = %g, want +Inf under Itakura", got)
	}
}

func TestItakuraTighterThanChibaWideBand(t *testing.T) {
	// With a full-width Sakoe–Chiba band the banded distance equals the
	// unconstrained one, while Itakura may still exclude extreme warpings:
	// Itakura >= full must always hold, with strict inequality on some
	// input that needs slope > 2.
	s := seq.Sequence{0, 10, 10, 10, 10, 10}
	q := seq.Sequence{0, 0, 0, 0, 0, 10}
	full := Distance(s, q, seq.LInf)
	it := ItakuraDistance(s, q, seq.LInf)
	if it < full {
		t.Fatalf("it=%g < full=%g", it, full)
	}
}
