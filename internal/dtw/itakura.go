package dtw

import (
	"math"

	"repro/internal/seq"
)

// ItakuraDistance computes the time warping distance restricted to the
// Itakura parallelogram: warping paths whose global slope stays within
// [1/2, 2] relative to the diagonal. Together with the Sakoe–Chiba band
// (BandDistance) these are the two classical global path constraints from
// the speech-recognition literature the paper's Definition 1 descends
// from. A constraint can only remove paths, so the result is ≥ the
// unconstrained Distance; it is +Inf when no legal path exists (e.g. when
// one sequence is more than twice the length of the other).
func ItakuraDistance(s, q seq.Sequence, base seq.Base) float64 {
	switch {
	case s.Empty() && q.Empty():
		return 0
	case s.Empty() || q.Empty():
		return Inf
	}
	n, m := len(s), len(q)
	// Cell (i, j) is legal when it is reachable from (0,0) and can reach
	// (n-1, m-1) under slope limits [1/2, 2]:
	//   j <= 2i,            j >= i/2            (from the start corner)
	//   m-1-j <= 2(n-1-i),  m-1-j >= (n-1-i)/2  (to the end corner)
	legal := func(i, j int) bool {
		if 2*i < j || 2*j < i {
			return false
		}
		ri, rj := n-1-i, m-1-j
		if 2*ri < rj || 2*rj < ri {
			return false
		}
		return true
	}
	if !legal(0, 0) || !legal(n-1, m-1) {
		return Inf
	}
	prev := make([]float64, m)
	cur := make([]float64, m)
	for j := range prev {
		prev[j] = Inf
	}
	for j := 0; j < m && legal(0, j); j++ {
		e := base.Elem(s[0], q[j])
		if j == 0 {
			prev[0] = e
		} else if !math.IsInf(prev[j-1], 1) {
			prev[j] = base.Combine(e, prev[j-1])
		}
	}
	for i := 1; i < n; i++ {
		for j := range cur {
			cur[j] = Inf
		}
		for j := 0; j < m; j++ {
			if !legal(i, j) {
				continue
			}
			best := prev[j]
			if j > 0 {
				if cur[j-1] < best {
					best = cur[j-1]
				}
				if prev[j-1] < best {
					best = prev[j-1]
				}
			}
			if math.IsInf(best, 1) {
				continue
			}
			cur[j] = base.Combine(base.Elem(s[i], q[j]), best)
		}
		prev, cur = cur, prev
	}
	return prev[m-1]
}
