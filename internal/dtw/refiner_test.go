package dtw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

var cascadeBases = []seq.Base{seq.LInf, seq.L1, seq.L2Sq}

// TestKernelsMatchGeneric pins the per-base specialized kernels to the
// generic interface-style DP bit for bit, across random mixed-length pairs.
func TestKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, base := range cascadeBases {
		for trial := 0; trial < 300; trial++ {
			s := randSeq(rng, 40)
			q := randSeq(rng, 40)
			if len(q) > len(s) {
				s, q = q, s
			}
			want := distanceGeneric(s, q, base)
			got := Distance(s, q, base)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("base %v: Distance=%v generic=%v", base, got, want)
			}
			d := refDistance(s, q, base)
			for _, eps := range []float64{d * 0.5, d * 0.99, d, d * 1.01, d * 2, rng.Float64() * 10} {
				wd, wok := withinGeneric(s, q, base, eps)
				gd, gok := DistanceWithin(s, q, base, eps)
				if gok != wok {
					// The exported function adds the O(1) endpoint
					// pre-check; both must still agree on the verdict.
					t.Fatalf("base %v eps=%v: within ok %v vs generic %v", base, eps, gok, wok)
				}
				if wok && math.Float64bits(gd) != math.Float64bits(wd) {
					t.Fatalf("base %v eps=%v: within d=%v generic=%v", base, eps, gd, wd)
				}
			}
		}
	}
}

// TestRefinerMatchesDistanceWithin is the refine-tier oracle: across all
// bases and random mixed-length pairs, the Refiner's verdict must agree
// with DistanceWithin, and an in-tolerance distance must be bit-identical.
func TestRefinerMatchesDistanceWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := AcquireRefiner()
	defer r.Release()
	for _, base := range cascadeBases {
		for trial := 0; trial < 400; trial++ {
			s := randSeq(rng, 48)
			q := randSeq(rng, 48)
			d := Distance(s, q, base)
			for _, eps := range []float64{-1, 0, d * 0.5, d * 0.99, d, d * 1.01, d * 2, rng.Float64() * 12} {
				wd, wok := DistanceWithin(s, q, base, eps)
				rd, verdict := r.DistanceWithin(s, q, base, eps)
				if wok != (verdict == VerdictWithin) {
					t.Fatalf("base %v eps=%v |s|=%d |q|=%d: refiner verdict %d, DistanceWithin ok=%v",
						base, eps, len(s), len(q), verdict, wok)
				}
				if wok && math.Float64bits(rd) != math.Float64bits(wd) {
					t.Fatalf("base %v eps=%v: refiner d=%v DistanceWithin d=%v", base, eps, rd, wd)
				}
				if base == seq.LInf && verdict == VerdictAbandoned && len(s) > 0 && len(q) > 0 {
					// For L∞ the corridor decision is exact, so a survivor
					// can never abandon.
					t.Fatalf("LInf corridor let an over-epsilon candidate through: eps=%v d=%v", eps, d)
				}
			}
		}
	}
}

func TestRefinerEdgeCases(t *testing.T) {
	r := AcquireRefiner()
	defer r.Release()
	empty := seq.Sequence{}
	one := seq.Sequence{1}
	if d, v := r.DistanceWithin(empty, empty, seq.LInf, 0); v != VerdictWithin || d != 0 {
		t.Fatalf("empty/empty: got (%v, %d)", d, v)
	}
	if _, v := r.DistanceWithin(empty, empty, seq.LInf, -1); v != VerdictPruned {
		t.Fatalf("empty/empty negative eps: got verdict %d", v)
	}
	if _, v := r.DistanceWithin(empty, one, seq.LInf, 100); v != VerdictPruned {
		t.Fatalf("empty/one: got verdict %d", v)
	}
	if _, v := r.DistanceWithin(one, one, seq.L1, -0.5); v != VerdictPruned {
		t.Fatalf("negative eps: got verdict %d", v)
	}
	if d, v := r.DistanceWithin(one, seq.Sequence{1, 1, 1}, seq.L2Sq, 0); v != VerdictWithin || d != 0 {
		t.Fatalf("exact zero-distance pair: got (%v, %d)", d, v)
	}
}

// TestLBKeoghSafeSoundness: the safe bound never exceeds the unconstrained
// distance, for any base and any length combination — so pruning on it can
// never falsely dismiss.
func TestLBKeoghSafeSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, base := range cascadeBases {
		for trial := 0; trial < 400; trial++ {
			s := randSeq(rng, 40)
			q := randSeq(rng, 40)
			env := GlobalEnvelope(q)
			lb, err := LBKeoghSafe(s, env, base, -1)
			if err != nil {
				t.Fatalf("global envelope must always be sound: %v", err)
			}
			d := Distance(s, q, base)
			if lb > d {
				t.Fatalf("base %v |s|=%d |q|=%d: LBKeoghSafe=%v > Dtw=%v", base, len(s), len(q), lb, d)
			}
			// A banded (non-global) envelope is not sound for the
			// unconstrained distance: the guard must refuse it loudly.
			banded := NewEnvelope(q, 2)
			if got, err := LBKeoghSafe(s, banded, base, -1); err != ErrUnsoundBound || got != 0 {
				t.Fatalf("banded envelope for unconstrained query: got (%v, %v), want (0, ErrUnsoundBound)", got, err)
			}
		}
	}
}

// TestLBKeoghBandedUnsoundForUnconstrained documents why the guard exists:
// the classic banded LB_Keogh can exceed the unconstrained distance, so
// using it as a prune for the paper's Dtw would falsely dismiss.
func TestLBKeoghBandedUnsoundForUnconstrained(t *testing.T) {
	s := seq.Sequence{0, 0, 0, 0, 0, 0, 0, 5}
	q := seq.Sequence{0, 5, 5, 5, 5, 5, 5, 5}
	if d := Distance(s, q, seq.LInf); d != 0 {
		t.Fatalf("warp-equivalent pair should have Dtw 0, got %v", d)
	}
	env := NewEnvelope(q, 1)
	if lb := LBKeogh(s, env, seq.LInf); lb <= 0 {
		t.Skipf("expected the banded bound to overshoot here, got %v", lb)
	}
	// The same pair through the safe path: no false dismissal possible.
	if lb, err := LBKeoghSafe(s, GlobalEnvelope(q), seq.LInf, -1); err != nil || lb > 0 {
		t.Fatalf("LBKeoghSafe overshot a zero-distance pair: (%v, %v)", lb, err)
	}
	if lb, err := LBKeoghSafe(s, env, seq.LInf, -1); err != ErrUnsoundBound || lb != 0 {
		t.Fatalf("banded envelope for unconstrained query must error, got (%v, %v)", lb, err)
	}
}

// TestGlobalEnvelopeMatchesYiSide: the full-envelope Keogh bound is exactly
// the S-side of LBYi, which is what lets the cascade split Yi's bound into
// two passes without changing any value.
func TestGlobalEnvelopeMatchesYiSide(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, base := range cascadeBases {
		for trial := 0; trial < 200; trial++ {
			s := randSeq(rng, 32)
			q := randSeq(rng, 32)
			env := GlobalEnvelope(q)
			kS, err := LBKeoghSafe(s, env, base, -1)
			if err != nil {
				t.Fatalf("global envelope must always be sound: %v", err)
			}
			yi := LBYi(s, q, base)
			if kS > yi {
				t.Fatalf("base %v: S-side %v exceeds two-sided LBYi %v", base, kS, yi)
			}
		}
	}
}

func warmPools(s, q seq.Sequence) {
	// First calls grow pool buffers and the refiner's run storage.
	for i := 0; i < 4; i++ {
		Distance(s, q, seq.LInf)
		DistanceWithin(s, q, seq.L1, 1)
		r := AcquireRefiner()
		r.DistanceWithin(s, q, seq.L2Sq, 1)
		r.Release()
	}
}

// TestDistanceWithinZeroAllocs: the steady-state kernel path must not
// allocate for sequences up to the pooled row capacity.
func TestDistanceWithinZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes pool operations allocate")
	}
	rng := rand.New(rand.NewSource(41))
	s := randSeq(rng, 1)
	q := randSeq(rng, 1)
	s = append(s[:0], make([]float64, 512)...)
	q = append(q[:0], make([]float64, 512)...)
	for i := range s {
		s[i] = rng.Float64()
	}
	for i := range q {
		q[i] = rng.Float64()
	}
	warmPools(s, q)
	for _, base := range cascadeBases {
		base := base
		if n := testing.AllocsPerRun(100, func() {
			DistanceWithin(s, q, base, 0.35)
			Distance(s, q, base)
		}); n != 0 {
			t.Fatalf("base %v: %v allocs/op in steady state", base, n)
		}
	}
}

// TestRefinerZeroAllocs: a warmed Refiner must evaluate candidates without
// allocating — the cascade holds one per query across all candidates.
func TestRefinerZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes pool operations allocate")
	}
	rng := rand.New(rand.NewSource(43))
	s := make(seq.Sequence, 512)
	q := make(seq.Sequence, 512)
	for i := range s {
		s[i] = rng.Float64()
	}
	for i := range q {
		q[i] = rng.Float64()
	}
	warmPools(s, q)
	r := AcquireRefiner()
	defer r.Release()
	for _, base := range cascadeBases {
		base := base
		r.DistanceWithin(s, q, base, 0.35) // grow run storage for this shape
		if n := testing.AllocsPerRun(100, func() {
			r.DistanceWithin(s, q, base, 0.35)
		}); n != 0 {
			t.Fatalf("base %v: %v allocs/op in steady state", base, n)
		}
	}
}
