package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/seq"
)

// Record types. The WAL mirrors the three heap mutations exactly.
const (
	TypeAdd      byte = 1 // one sequence appended at ID
	TypeAddBatch byte = 2 // len(Data) sequences appended at consecutive IDs from ID
	TypeRemove   byte = 3 // ID tombstoned
)

// Record is one logged heap mutation. Seq is the log sequence number:
// assigned densely by the log, monotone across checkpoints, never reused.
// ID is the heap record ID the mutation applies at (first ID for a
// batch). Data carries the appended sequence(s); nil for removes.
type Record struct {
	Seq  uint64
	Type byte
	ID   seq.ID
	Data []seq.Sequence
}

// NewAdd builds an unsequenced add record (Seq is assigned at append).
func NewAdd(id seq.ID, s seq.Sequence) Record {
	return Record{Type: TypeAdd, ID: id, Data: []seq.Sequence{s}}
}

// NewAddBatch builds an unsequenced add-batch record; first is the ID of
// ss[0], the rest follow consecutively.
func NewAddBatch(first seq.ID, ss []seq.Sequence) Record {
	return Record{Type: TypeAddBatch, ID: first, Data: ss}
}

// NewRemove builds an unsequenced remove record.
func NewRemove(id seq.ID) Record {
	return Record{Type: TypeRemove, ID: id}
}

// On-disk record layout, little-endian:
//
//	u32 n        — byte length of the framed body (type..payload, no CRC)
//	u8  type
//	u64 seq
//	payload      — type-specific, see below
//	u32 crc      — CRC-32 (IEEE) of the framed body
//
// Payloads:
//
//	add:       u32 id | seq.Encode bytes
//	add-batch: u32 firstID | u32 count | count × (seq.Encode bytes)
//	add-batch sequences are self-framing (seq.Encode leads with a length)
//	remove:    u32 id
//
// A record is valid only if the frame fits the remaining bytes, the CRC
// matches, and its seq is exactly the predecessor's seq + 1 (seqs are
// dense within a log file, starting at the header's base). Anything else
// is treated as the torn tail.
const recHeaderLen = 4

var crcTable = crc32.MakeTable(crc32.IEEE)

// ErrCorrupt reports a structurally-invalid record mid-scan.
var ErrCorrupt = errors.New("wal: corrupt record")

func appendRecord(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // frame length, patched below
	body := len(dst)
	dst = append(dst, r.Type)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	switch r.Type {
	case TypeAdd:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.ID))
		dst = seq.Encode(dst, r.Data[0])
	case TypeAddBatch:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.ID))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Data)))
		for _, s := range r.Data {
			dst = seq.Encode(dst, s)
		}
	case TypeRemove:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.ID))
	default:
		panic(fmt.Sprintf("wal: unknown record type %d", r.Type))
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-body))
	crc := crc32.Checksum(dst[body:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// parseRecord decodes one record from the front of buf. It returns the
// record and the total bytes consumed, or ErrCorrupt (wrapped with
// detail) if the frame is torn or fails its checks.
func parseRecord(buf []byte) (Record, int, error) {
	if len(buf) < recHeaderLen {
		return Record{}, 0, fmt.Errorf("%w: torn frame header", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(buf))
	total := recHeaderLen + n + 4
	if n < 1+8 || len(buf) < total {
		return Record{}, 0, fmt.Errorf("%w: torn frame (%d body bytes, %d available)", ErrCorrupt, n, len(buf)-recHeaderLen)
	}
	body := buf[recHeaderLen : recHeaderLen+n]
	want := binary.LittleEndian.Uint32(buf[recHeaderLen+n:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	r := Record{Type: body[0], Seq: binary.LittleEndian.Uint64(body[1:])}
	payload := body[9:]
	switch r.Type {
	case TypeAdd:
		if len(payload) < 4 {
			return Record{}, 0, fmt.Errorf("%w: short add payload", ErrCorrupt)
		}
		r.ID = seq.ID(binary.LittleEndian.Uint32(payload))
		s, used, err := seq.Decode(payload[4:])
		if err != nil || used != len(payload)-4 {
			return Record{}, 0, fmt.Errorf("%w: add payload: %v", ErrCorrupt, err)
		}
		r.Data = []seq.Sequence{s}
	case TypeAddBatch:
		if len(payload) < 8 {
			return Record{}, 0, fmt.Errorf("%w: short batch payload", ErrCorrupt)
		}
		r.ID = seq.ID(binary.LittleEndian.Uint32(payload))
		count := int(binary.LittleEndian.Uint32(payload[4:]))
		rest := payload[8:]
		if count <= 0 || count > len(rest) {
			return Record{}, 0, fmt.Errorf("%w: batch count %d", ErrCorrupt, count)
		}
		r.Data = make([]seq.Sequence, 0, count)
		for i := 0; i < count; i++ {
			s, used, err := seq.Decode(rest)
			if err != nil {
				return Record{}, 0, fmt.Errorf("%w: batch sequence %d: %v", ErrCorrupt, i, err)
			}
			r.Data = append(r.Data, s)
			rest = rest[used:]
		}
		if len(rest) != 0 {
			return Record{}, 0, fmt.Errorf("%w: %d trailing batch bytes", ErrCorrupt, len(rest))
		}
	case TypeRemove:
		if len(payload) != 4 {
			return Record{}, 0, fmt.Errorf("%w: remove payload length %d", ErrCorrupt, len(payload))
		}
		r.ID = seq.ID(binary.LittleEndian.Uint32(payload))
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown type %d", ErrCorrupt, r.Type)
	}
	return r, total, nil
}

// ScanRecords parses consecutive records from buf, enforcing that seqs
// are dense starting at base. It returns the valid prefix, the number of
// bytes it spans, and a non-nil error describing why the scan stopped
// early (nil when buf was consumed exactly). A torn or corrupt record —
// including a seq discontinuity — ends the valid prefix; the records
// before it are still returned.
func ScanRecords(buf []byte, base uint64) (recs []Record, n int, err error) {
	next := base
	for n < len(buf) {
		r, used, perr := parseRecord(buf[n:])
		if perr != nil {
			return recs, n, perr
		}
		if r.Seq != next {
			return recs, n, fmt.Errorf("%w: sequence gap (got %d want %d)", ErrCorrupt, r.Seq, next)
		}
		recs = append(recs, r)
		next++
		n += used
	}
	return recs, n, nil
}
