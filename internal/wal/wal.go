// Package wal implements the group-commit write-ahead log that sits in
// front of the sequence heap. Writers enqueue typed records (add /
// add-batch / remove) into an in-memory batch and block only until the
// fsync covering their record completes; a single committer goroutine
// flushes the batch when it grows past Options.FlushBytes or when
// Options.FlushInterval elapses, so N concurrent writers share one fsync
// instead of paying one each. Open scans the log, truncates a torn tail
// at the first invalid record, and hands the valid prefix back for
// replay; Checkpoint (taken after the heap, index, and sidecars are
// durable by other means) resets the log to an empty file with a higher
// base sequence number. Sequence numbers are dense, monotone across
// checkpoints, and never reused — they double as the replication cursor.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fsx"
)

const (
	fileMagic   = 0x4C415754 // "TWAL"
	fileVersion = 1
	headerLen   = 16
)

// DefaultFlushInterval is the committer's timer when Options leaves it
// zero: long enough for concurrent writers to pile into one batch, short
// enough that a lone writer's latency stays in interactive territory.
const DefaultFlushInterval = 2 * time.Millisecond

// DefaultFlushBytes triggers an early flush when the pending batch grows
// past this size, bounding replay length and memory under bulk load.
const DefaultFlushBytes = 256 << 10

// ErrClosed is returned by appends against a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCompacted is returned by TailSince when the requested position
// precedes the log's base — a checkpoint discarded it, and the caller
// (a replica) must re-bootstrap from a snapshot instead.
var ErrCompacted = errors.New("wal: position compacted away by checkpoint")

// Options tunes the group-commit policy.
type Options struct {
	// FlushInterval is how long the committer waits after the first
	// record of a batch before fsyncing (0 = DefaultFlushInterval;
	// negative = flush immediately, effectively one fsync per wakeup).
	FlushInterval time.Duration
	// FlushBytes flushes the batch early once the pending bytes exceed
	// it (0 = DefaultFlushBytes).
	FlushBytes int
}

func (o Options) withDefaults() Options {
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.FlushBytes == 0 {
		o.FlushBytes = DefaultFlushBytes
	}
	return o
}

// Stats are the log's cumulative counters. Fsyncs / Records is the
// group-commit batching factor the bench harness fences on.
type Stats struct {
	Records     int64 // records appended
	Batches     int64 // group flushes (one fsync each)
	Fsyncs      int64 // total fsyncs, including checkpoint resets
	Bytes       int64 // record bytes written
	Checkpoints int64
	Seq         uint64 // highest assigned sequence number (0 = none)
	Durable     uint64 // highest sequence number covered by an fsync
	Base        uint64 // first sequence number still in the file
	FileBytes   int64  // current log file size including pending bytes
}

// Add accumulates counters (for summing per-shard logs).
func (s *Stats) Add(o Stats) {
	s.Records += o.Records
	s.Batches += o.Batches
	s.Fsyncs += o.Fsyncs
	s.Bytes += o.Bytes
	s.Checkpoints += o.Checkpoints
	s.FileBytes += o.FileBytes
	if o.Seq > s.Seq {
		s.Seq = o.Seq
	}
	if o.Durable > s.Durable {
		s.Durable = o.Durable
	}
	if o.Base > s.Base {
		s.Base = o.Base
	}
}

// Commit blocks until the fsync covering the records it was returned for
// has completed (or returns the flush error). It may be called at most
// once from any goroutine, and crucially may be called after the caller
// has released whatever lock serialized the append — that window is what
// lets other writers join the same batch.
type Commit func() error

// Log is a single-file group-commit WAL. Append order must match apply
// order (callers serialize mutations externally, as the heap already
// requires); the log itself is safe for concurrent use.
type Log struct {
	opts Options
	path string

	// io serializes file writes: the committer's flush, checkpoint
	// resets, and tail reads never interleave.
	io sync.Mutex

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File

	base    uint64 // seq of the first record in the file
	seq     uint64 // next seq to assign
	durable uint64 // highest fsynced seq
	err     error  // sticky flush/checkpoint error
	closed  bool
	buf     []byte  // pending serialized records
	spare   []byte  // recycled flush buffer
	offs    []int64 // file offset of record base+i
	endOff  int64   // file offset past the last enqueued record
	durOff  int64   // file offset past the last durable record

	stats Stats

	wake    chan struct{}
	bigWake chan struct{}
	quit    chan struct{}
	done    chan struct{}
}

func encodeHeader(base uint64) []byte {
	h := make([]byte, headerLen)
	binary.LittleEndian.PutUint32(h[0:], fileMagic)
	binary.LittleEndian.PutUint32(h[4:], fileVersion)
	binary.LittleEndian.PutUint64(h[8:], base)
	return h
}

func newLog(path string, f *os.File, base uint64, opts Options) *Log {
	l := &Log{
		opts:    opts.withDefaults(),
		path:    path,
		f:       f,
		base:    base,
		seq:     base,
		durable: base - 1,
		endOff:  headerLen,
		durOff:  headerLen,
		wake:    make(chan struct{}, 1),
		bigWake: make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// Create starts a fresh log at path (truncating any previous file) with
// the given base sequence number, fsyncing the file and its directory so
// the empty log itself survives a crash.
func Create(path string, base uint64, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeHeader(base)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fsx.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return newLog(path, f, base, opts), nil
}

// Open opens (or creates) the log at path, scans it, truncates any torn
// or corrupt tail, and returns the valid records for replay. note is a
// human-readable description of a truncation ("" when the file was
// clean); an unreadable header is an error — the file is not a WAL.
func Open(path string, opts Options) (l *Log, recs []Record, note string, err error) {
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			l, err = Create(path, 1, opts)
			return l, nil, "", err
		}
		return nil, nil, "", rerr
	}
	if len(raw) < headerLen {
		return nil, nil, "", fmt.Errorf("wal: %s: short header (%d bytes)", path, len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:]) != fileMagic {
		return nil, nil, "", fmt.Errorf("wal: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != fileVersion {
		return nil, nil, "", fmt.Errorf("wal: %s: unsupported version %d", path, v)
	}
	base := binary.LittleEndian.Uint64(raw[8:])
	if base == 0 {
		return nil, nil, "", fmt.Errorf("wal: %s: zero base sequence", path)
	}

	body := raw[headerLen:]
	var offs []int64
	n := 0
	next := base
	var scanErr error
	for n < len(body) {
		r, used, perr := parseRecord(body[n:])
		if perr == nil && r.Seq != next {
			perr = fmt.Errorf("%w: sequence gap (got %d want %d)", ErrCorrupt, r.Seq, next)
		}
		if perr != nil {
			scanErr = perr
			break
		}
		offs = append(offs, int64(headerLen+n))
		recs = append(recs, r)
		next++
		n += used
	}

	f, ferr := os.OpenFile(path, os.O_RDWR, 0o644)
	if ferr != nil {
		return nil, nil, "", ferr
	}
	valid := int64(headerLen + n)
	if scanErr != nil {
		dropped := int64(len(raw)) - valid
		note = fmt.Sprintf("wal: truncated %d torn/corrupt tail bytes after record %d (%v)", dropped, next-1, scanErr)
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, "", err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, "", err
		}
	}
	l = newLog(path, f, base, opts)
	l.seq = next
	l.durable = next - 1
	l.offs = offs
	l.endOff = valid
	l.durOff = valid
	return l, recs, note, nil
}

// Begin serializes recs into the pending batch, assigning them dense
// sequence numbers, and returns a Commit that blocks until they are
// fsynced. The records become durable in the background even if Commit
// is never invoked. Callers must serialize Begin with the corresponding
// state mutation so log order equals apply order.
func (l *Log) Begin(recs ...Record) (Commit, error) {
	if len(recs) == 0 {
		return func() error { return nil }, nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	for i := range recs {
		recs[i].Seq = l.seq
		l.seq++
		l.offs = append(l.offs, l.endOff)
		before := len(l.buf)
		l.buf = appendRecord(l.buf, &recs[i])
		l.endOff += int64(len(l.buf) - before)
	}
	l.stats.Records += int64(len(recs))
	top := l.seq - 1
	big := len(l.buf) >= l.opts.FlushBytes
	l.mu.Unlock()

	select {
	case l.wake <- struct{}{}:
	default:
	}
	if big {
		select {
		case l.bigWake <- struct{}{}:
		default:
		}
	}
	return func() error { return l.waitDurable(top) }, nil
}

// Append is Begin plus an immediate wait: the caller blocks until the
// fsync covering recs completes.
func (l *Log) Append(recs ...Record) error {
	commit, err := l.Begin(recs...)
	if err != nil {
		return err
	}
	return commit()
}

func (l *Log) waitDurable(s uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < s && l.err == nil {
		l.cond.Wait()
	}
	if l.durable >= s {
		return nil
	}
	return l.err
}

// run is the committer: it sleeps until a record arrives, lingers for
// FlushInterval so concurrent writers can join the batch (a full batch
// cuts the linger short), then writes and fsyncs the whole batch once.
func (l *Log) run() {
	defer close(l.done)
	for {
		select {
		case <-l.wake:
		case <-l.quit:
			l.flush()
			return
		}
		if iv := l.opts.FlushInterval; iv > 0 {
			t := time.NewTimer(iv)
			select {
			case <-t.C:
			case <-l.bigWake:
				t.Stop()
			case <-l.quit:
				t.Stop()
				l.flush()
				return
			}
		}
		l.flush()
	}
}

func (l *Log) flush() {
	l.io.Lock()
	defer l.io.Unlock()
	l.mu.Lock()
	if l.err != nil || len(l.buf) == 0 {
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	buf := l.buf
	l.buf = l.spare[:0]
	top := l.seq - 1
	off := l.durOff
	l.mu.Unlock()

	_, werr := l.f.WriteAt(buf, off)
	if werr == nil {
		werr = l.f.Sync()
	}

	l.mu.Lock()
	l.spare = buf[:0]
	if werr != nil {
		if l.err == nil {
			l.err = werr
		}
	} else {
		l.durable = top
		l.durOff = off + int64(len(buf))
		l.stats.Fsyncs++
		l.stats.Batches++
		l.stats.Bytes += int64(len(buf))
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Checkpoint resets the log to an empty file whose base is the next
// unassigned sequence number. The caller must have made every applied
// mutation durable by other means first (heap pages fsynced, manifest
// renamed and dir-synced): pending un-fsynced records are simply dropped
// — their effects are already durable — and their waiters are released.
func (l *Log) Checkpoint() error {
	l.io.Lock()
	defer l.io.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	base := l.seq
	var err error
	if terr := l.f.Truncate(headerLen); terr != nil {
		err = terr
	}
	if err == nil {
		_, err = l.f.WriteAt(encodeHeader(base), 0)
	}
	if err == nil {
		err = l.f.Sync()
		l.stats.Fsyncs++
	}
	if err != nil {
		l.err = err
		l.cond.Broadcast()
		return err
	}
	l.base = base
	l.durable = base - 1
	l.buf = l.buf[:0]
	l.offs = l.offs[:0]
	l.endOff = headerLen
	l.durOff = headerLen
	l.stats.Checkpoints++
	l.cond.Broadcast()
	return nil
}

// TailSince returns the serialized durable records with sequence numbers
// > from, capped near maxBytes on a record boundary (at least one record
// is returned when any is available). last is the sequence number of the
// final record in data (== from when data is empty). ErrCompacted means
// from precedes the file's base and the caller must re-bootstrap.
func (l *Log) TailSince(from uint64, maxBytes int) (data []byte, last uint64, err error) {
	l.io.Lock()
	defer l.io.Unlock()
	l.mu.Lock()
	if from+1 < l.base {
		l.mu.Unlock()
		return nil, from, ErrCompacted
	}
	durableCount := int(l.durable + 1 - l.base)
	idx := int(from + 1 - l.base)
	if idx >= durableCount {
		l.mu.Unlock()
		return nil, from, nil
	}
	endOf := func(i int) int64 {
		if i+1 < len(l.offs) {
			return l.offs[i+1]
		}
		return l.endOff
	}
	startOff := l.offs[idx]
	stopIdx := idx
	stopOff := endOf(idx)
	for k := idx + 1; k < durableCount; k++ {
		e := endOf(k)
		if e-startOff > int64(maxBytes) {
			break
		}
		stopIdx, stopOff = k, e
	}
	base := l.base
	l.mu.Unlock()

	data = make([]byte, stopOff-startOff)
	if _, err := l.f.ReadAt(data, startOff); err != nil {
		return nil, from, err
	}
	return data, base + uint64(stopIdx), nil
}

// Base returns the first sequence number still present in the file.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// LastSeq returns the highest assigned sequence number (0 when the log
// has never seen a record).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - 1
}

// FileBytes returns the log file size including not-yet-flushed bytes —
// the auto-checkpoint trigger reads it on every write.
func (l *Log) FileBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.endOff
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Seq = l.seq - 1
	s.Durable = l.durable
	s.Base = l.base
	s.FileBytes = l.endOff
	return s
}

// Close flushes any pending batch, stops the committer, and closes the
// file. Records appended before Close are durable when it returns nil.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
