package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/seq"
)

func tmpLog(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, 1, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return l, path
}

func s(vals ...float64) seq.Sequence { return seq.Sequence(vals) }

func TestAppendReplayRoundtrip(t *testing.T) {
	l, path := tmpLog(t, Options{FlushInterval: time.Millisecond})
	want := []Record{
		NewAdd(0, s(1, 2, 3)),
		NewAddBatch(1, []seq.Sequence{s(4), s(5, 6)}),
		NewRemove(1),
	}
	for i := range want {
		if err := l.Append(want[i]); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, recs, note, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if note != "" {
		t.Fatalf("unexpected truncation note %q", note)
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d", i, r.Seq)
		}
		if r.Type != want[i].Type || r.ID != want[i].ID || !reflect.DeepEqual(r.Data, want[i].Data) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, r, want[i])
		}
	}
	if got := l2.LastSeq(); got != 3 {
		t.Fatalf("LastSeq after reopen = %d", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := tmpLog(t, Options{FlushInterval: -1})
	for i := 0; i < 5; i++ {
		if err := l.Append(NewAdd(seq.ID(i), s(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the final record.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs, note, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open torn: %v", err)
	}
	if note == "" {
		t.Fatal("expected truncation note")
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	// The log must keep appending cleanly where the valid prefix ended.
	if err := l2.Append(NewAdd(4, s(99))); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, note, err = Open(path, Options{})
	if err != nil || note != "" {
		t.Fatalf("reopen after heal: %v note=%q", err, note)
	}
	if len(recs) != 5 || recs[4].Data[0][0] != 99 {
		t.Fatalf("post-heal replay wrong: %d records", len(recs))
	}
}

func TestCorruptMiddleStopsScan(t *testing.T) {
	l, path := tmpLog(t, Options{FlushInterval: -1})
	for i := 0; i < 5; i++ {
		if err := l.Append(NewAdd(seq.ID(i), s(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, serr := ScanRecords(raw[headerLen:], 1)
	if serr != nil || len(recs) != 5 {
		t.Fatalf("precondition scan: %d recs, %v", len(recs), serr)
	}
	// Flip one payload byte in the third record.
	mid := len(raw) / 2
	raw[mid] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs, note, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open corrupt: %v", err)
	}
	defer l2.Close()
	if note == "" {
		t.Fatal("expected truncation note for corrupt record")
	}
	if len(recs) >= 5 {
		t.Fatalf("scan did not stop at corruption: %d records", len(recs))
	}
	for i, r := range recs {
		if r.Data[0][0] != float64(i) {
			t.Fatalf("surviving record %d corrupted: %v", i, r.Data[0])
		}
	}
}

func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	l, _ := tmpLog(t, Options{FlushInterval: 5 * time.Millisecond})
	defer l.Close()
	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	var mu sync.Mutex // stands in for the DB's writer serialization
	next := 0
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				mu.Lock()
				id := next
				next++
				commit, err := l.Begin(NewAdd(seq.ID(id), s(float64(id))))
				mu.Unlock()
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				if err := commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != writers*perWriter {
		t.Fatalf("records = %d", st.Records)
	}
	if st.Fsyncs >= st.Records {
		t.Fatalf("no batching: %d fsyncs for %d records", st.Fsyncs, st.Records)
	}
	if st.Durable != st.Seq {
		t.Fatalf("durable %d != seq %d after all commits", st.Durable, st.Seq)
	}
}

func TestCheckpointResetsAndSeqStaysMonotone(t *testing.T) {
	l, path := tmpLog(t, Options{FlushInterval: -1})
	for i := 0; i < 3; i++ {
		if err := l.Append(NewAdd(seq.ID(i), s(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if base := l.Base(); base != 4 {
		t.Fatalf("base after checkpoint = %d, want 4", base)
	}
	if err := l.Append(NewAdd(3, s(42))); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, note, err := Open(path, Options{})
	if err != nil || note != "" {
		t.Fatalf("reopen: %v note=%q", err, note)
	}
	defer l2.Close()
	if len(recs) != 1 || recs[0].Seq != 4 || recs[0].ID != 3 {
		t.Fatalf("post-checkpoint replay: %+v", recs)
	}
}

func TestTailSinceServesDurableRecordsAndCompaction(t *testing.T) {
	l, _ := tmpLog(t, Options{FlushInterval: -1})
	defer l.Close()
	for i := 0; i < 4; i++ {
		if err := l.Append(NewAdd(seq.ID(i), s(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	data, last, err := l.TailSince(0, 1<<20)
	if err != nil {
		t.Fatalf("TailSince: %v", err)
	}
	if last != 4 {
		t.Fatalf("last = %d, want 4", last)
	}
	recs, _, serr := ScanRecords(data, 1)
	if serr != nil || len(recs) != 4 {
		t.Fatalf("tail scan: %d recs, %v", len(recs), serr)
	}

	// Byte cap lands on a record boundary and still returns progress.
	data, last, err = l.TailSince(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, serr = ScanRecords(data, 1)
	if serr != nil || len(recs) != 1 || last != 1 {
		t.Fatalf("capped tail: %d recs, last=%d, %v", len(recs), last, serr)
	}

	// Mid-stream cursor.
	data, last, err = l.TailSince(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, serr = ScanRecords(data, 3)
	if serr != nil || len(recs) != 2 || last != 4 {
		t.Fatalf("mid tail: %d recs, last=%d, %v", len(recs), last, serr)
	}

	// Caught up.
	data, last, err = l.TailSince(4, 1<<20)
	if err != nil || len(data) != 0 || last != 4 {
		t.Fatalf("caught-up tail: %d bytes, last=%d, %v", len(data), last, err)
	}

	// After a checkpoint an old cursor must demand a re-bootstrap.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.TailSince(2, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("stale cursor error = %v, want ErrCompacted", err)
	}
	// The post-checkpoint cursor (seq 4 = everything applied) is valid.
	if _, last, err := l.TailSince(4, 1<<20); err != nil || last != 4 {
		t.Fatalf("fresh cursor after checkpoint: last=%d, %v", last, err)
	}
}

func TestCommitAfterCloseAndStickySemantics(t *testing.T) {
	l, _ := tmpLog(t, Options{FlushInterval: time.Hour}) // timer never fires
	commit, err := l.Begin(NewAdd(0, s(1)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- commit() }()
	// Close must flush the pending batch and release the waiter with nil.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("commit after close-flush: %v", err)
	}
	if _, err := l.Begin(NewAdd(1, s(2))); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin on closed log: %v", err)
	}
}
