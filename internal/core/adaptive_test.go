package core

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/synth"
)

func TestAdaptiveAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data := synth.RandomWalkSetVaryLen(rng, 100, 10, 30)
	db, idx := buildFixture(t, data)
	naive := &NaiveScan{DB: db, Base: seq.LInf}
	adaptive := &AdaptiveSearch{DB: db, Index: idx, Base: seq.LInf}
	// Small tolerances (fetch path) and huge ones (sweep path).
	for _, eps := range []float64{0.05, 0.3, 1, 100} {
		q := synth.Query(rng, data)
		truth, err := naive.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := adaptive.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(matchIDs(res), matchIDs(truth)) {
			t.Fatalf("eps %g: adaptive disagrees with naive", eps)
		}
	}
}

func TestAdaptiveChoosesSweepAtHugeTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	data := synth.RandomWalkSet(rng, 200, 50)
	db, idx := buildFixture(t, data)
	adaptive := &AdaptiveSearch{DB: db, Index: idx, Base: seq.LInf}
	// eps large enough that every sequence is a candidate.
	if !adaptive.useSweep(200, DefaultCostModel) {
		t.Error("200/200 candidates should choose the sweep")
	}
	if adaptive.useSweep(1, DefaultCostModel) {
		t.Error("1 candidate should choose the fetch path")
	}
	// End-to-end: with all candidates, the sweep path produces sequential
	// data misses rather than random ones.
	db.ResetStats()
	res, err := adaptive.Search(synth.Query(rng, data), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != 200 {
		t.Fatalf("candidates = %d", res.Stats.Candidates)
	}
	if res.Stats.Results != 200 {
		t.Fatalf("results = %d", res.Stats.Results)
	}
	if res.Stats.DataMisses > 0 && res.Stats.DataSeqMisses == 0 {
		t.Error("sweep path produced no sequential misses")
	}
}

func TestAdaptiveEmptyDatabase(t *testing.T) {
	db, idx := buildFixture(t, nil)
	adaptive := &AdaptiveSearch{DB: db, Index: idx, Base: seq.LInf}
	res, err := adaptive.Search(seq.Sequence{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("matches in empty db")
	}
}
