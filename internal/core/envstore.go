package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/fsx"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// EnvStore holds the PAA-reduced upper/lower envelope of every live
// sequence, indexed by sequence ID, alongside the 4-d Kim feature the
// R-tree stores. The filter phase uses it for the LB_PAA cascade tier: a
// candidate streamed from the index can be pruned against its stored
// segment profile before its sequence is ever fetched from the heap.
//
// The store is an in-memory slab (IDs are dense, so a slice indexed by ID)
// with an optional sidecar file next to the heap. It is derived data — the
// heap remains the single source of truth — so any doubt about the sidecar
// (missing, corrupt, count mismatch) is resolved by rebuilding from a heap
// scan, exactly like the feature index. Concurrency follows *seqdb.DB
// semantics: safe for concurrent readers, writers externally serialized.
type EnvStore struct {
	envs []seq.PAAEnvelope // envs[id]; Len == 0 marks an absent record
	n    int               // live entries
}

// NewEnvStore returns an empty store.
func NewEnvStore() *EnvStore { return &EnvStore{} }

// Put records the envelope for id, replacing any existing entry. All
// methods tolerate a nil receiver as an always-empty store, so callers
// composing the engine by hand (tests, tools) need not wire envelopes in.
func (es *EnvStore) Put(id seq.ID, env seq.PAAEnvelope) {
	if es == nil || env.Len == 0 {
		return
	}
	for int(id) >= len(es.envs) {
		es.envs = append(es.envs, seq.PAAEnvelope{})
	}
	if es.envs[id].Len == 0 {
		es.n++
	}
	es.envs[id] = env
}

// Get returns the envelope stored for id.
func (es *EnvStore) Get(id seq.ID) (seq.PAAEnvelope, bool) {
	if es == nil || int(id) >= len(es.envs) || es.envs[id].Len == 0 {
		return seq.PAAEnvelope{}, false
	}
	return es.envs[id], true
}

// Remove drops the envelope stored for id, if any.
func (es *EnvStore) Remove(id seq.ID) {
	if es != nil && int(id) < len(es.envs) && es.envs[id].Len != 0 {
		es.envs[id] = seq.PAAEnvelope{}
		es.n--
	}
}

// Len returns the number of live entries.
func (es *EnvStore) Len() int {
	if es == nil {
		return 0
	}
	return es.n
}

// Sidecar file format (little endian):
//
//	magic "TWPE" | version u32 | segments u32 | count u64
//	count × ( id u32 | len u32 | segments × min f64 | segments × max f64 )
//	crc32(IEEE) of everything above, u32
const (
	envMagic   = "TWPE"
	envVersion = 1
)

// Save writes the store to path atomically (temp file + rename). The
// sidecar is a pure cache: a crash between heap append and Save simply
// means the next Open falls back to a rebuild.
func (es *EnvStore) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(f, crc))
	if _, err := bw.WriteString(envMagic); err != nil {
		f.Close()
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := writeU32(envVersion); err == nil {
		err = writeU32(seq.PAASegments)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := writeU64(uint64(es.n)); err != nil {
		f.Close()
		return err
	}
	for id := range es.envs {
		e := &es.envs[id]
		if e.Len == 0 {
			continue
		}
		if err := writeU32(uint32(id)); err != nil {
			f.Close()
			return err
		}
		if err := writeU32(uint32(e.Len)); err != nil {
			f.Close()
			return err
		}
		for k := 0; k < seq.PAASegments; k++ {
			if err := writeU64(binFloat(e.Min[k])); err != nil {
				f.Close()
				return err
			}
		}
		for k := 0; k < seq.PAASegments; k++ {
			if err := writeU64(binFloat(e.Max[k])); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	if _, err := f.Write(scratch[:4]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsx.RenameAndSyncDir(tmp, path)
}

// LoadEnvStore reads a sidecar written by Save, verifying magic, version,
// segment count, and checksum. Any inconsistency is an error — the caller
// rebuilds from the heap instead of trusting a damaged cache.
func LoadEnvStore(path string) (*EnvStore, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	const header = 4 + 4 + 4 + 8
	if len(raw) < header+4 {
		return nil, fmt.Errorf("envstore: %s: truncated (%d bytes)", path, len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("envstore: %s: checksum mismatch", path)
	}
	if string(body[:4]) != envMagic {
		return nil, fmt.Errorf("envstore: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != envVersion {
		return nil, fmt.Errorf("envstore: %s: unsupported version %d", path, v)
	}
	if segs := binary.LittleEndian.Uint32(body[8:12]); segs != seq.PAASegments {
		return nil, fmt.Errorf("envstore: %s: segment count %d, built with %d", path, segs, seq.PAASegments)
	}
	count := binary.LittleEndian.Uint64(body[12:header])
	recSize := 4 + 4 + 16*seq.PAASegments
	if uint64(len(body)-header) != count*uint64(recSize) {
		return nil, fmt.Errorf("envstore: %s: %d records do not fit %d payload bytes",
			path, count, len(body)-header)
	}
	es := NewEnvStore()
	off := header
	for i := uint64(0); i < count; i++ {
		id := seq.ID(binary.LittleEndian.Uint32(body[off:]))
		n := int(binary.LittleEndian.Uint32(body[off+4:]))
		if n <= 0 {
			return nil, fmt.Errorf("envstore: %s: record %d has length %d", path, id, n)
		}
		var e seq.PAAEnvelope
		e.Len = n
		p := off + 8
		for k := 0; k < seq.PAASegments; k++ {
			e.Min[k] = floatBin(binary.LittleEndian.Uint64(body[p:]))
			p += 8
		}
		for k := 0; k < seq.PAASegments; k++ {
			e.Max[k] = floatBin(binary.LittleEndian.Uint64(body[p:]))
			p += 8
		}
		es.Put(id, e)
		off += recSize
	}
	return es, nil
}

// BuildEnvStore derives the store from a full heap scan — the
// rebuild-on-open migration path for databases created before envelopes
// existed, and the recovery path for a damaged sidecar.
func BuildEnvStore(db *seqdb.DB) (*EnvStore, error) {
	es := NewEnvStore()
	err := db.Scan(func(id seq.ID, s seq.Sequence) error {
		e, err := seq.ExtractPAAEnvelope(s)
		if err != nil {
			return fmt.Errorf("envstore: sequence %d: %w", id, err)
		}
		es.Put(id, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return es, nil
}

func binFloat(v float64) uint64 { return math.Float64bits(v) }
func floatBin(b uint64) float64 { return math.Float64frombits(b) }
