package core

import (
	"math/rand"
	"testing"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/synth"
)

func TestSubseqIndexAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := synth.RandomWalkSetVaryLen(rng, 40, 15, 40)
	db, _ := buildFixture(t, data)
	lens := []int{8, 12}
	si, err := BuildSubseqIndex(db, seq.LInf, lens, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()

	// Brute force over the same window set.
	type key struct {
		id      seq.ID
		off, ln int
	}
	for trial := 0; trial < 10; trial++ {
		q := synth.Query(rng, data)[:10]
		eps := 0.1 + rng.Float64()*0.3
		want := map[key]float64{}
		for i, s := range data {
			for _, w := range lens {
				for off := 0; off+w <= len(s); off++ {
					d := dtw.Distance(s[off:off+w], q, seq.LInf)
					if d <= eps {
						want[key{seq.ID(i), off, w}] = d
					}
				}
			}
		}
		res, err := si.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != len(want) {
			t.Fatalf("trial %d eps %g: %d matches, want %d", trial, eps, len(res.Matches), len(want))
		}
		for _, m := range res.Matches {
			d, ok := want[key{m.ID, m.Offset, m.Len}]
			if !ok {
				t.Fatalf("unexpected match %+v", m)
			}
			if d != m.Dist {
				t.Fatalf("match %+v: dist %g, want %g", m, m.Dist, d)
			}
		}
		if res.Stats.Candidates < len(want) {
			t.Fatalf("candidates %d < answers %d", res.Stats.Candidates, len(want))
		}
	}
}

func TestSubseqIndexStep(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := synth.RandomWalkSet(rng, 10, 30)
	db, _ := buildFixture(t, data)
	dense, err := BuildSubseqIndex(db, seq.LInf, []int{10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	sparse, err := BuildSubseqIndex(db, seq.LInf, []int{10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer sparse.Close()
	// 21 offsets per sequence at step 1, 5 at step 5.
	if dense.NumWindows() != 10*21 {
		t.Errorf("dense windows = %d, want 210", dense.NumWindows())
	}
	if sparse.NumWindows() != 10*5 {
		t.Errorf("sparse windows = %d, want 50", sparse.NumWindows())
	}
	if got := dense.WindowLengths(); len(got) != 1 || got[0] != 10 {
		t.Errorf("WindowLengths = %v", got)
	}
}

func TestSubseqIndexMatchesAreSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := synth.RandomWalkSet(rng, 20, 40)
	db, _ := buildFixture(t, data)
	si, err := BuildSubseqIndex(db, seq.LInf, []int{10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	q := data[0][5:15]
	res, err := si.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].Dist < res.Matches[i-1].Dist {
			t.Fatal("matches not sorted by distance")
		}
	}
	// The query window itself must be found at distance 0... it was cut at
	// offset 5 (odd) while step 2 indexes even offsets, so instead check a
	// step-aligned cut.
	q2 := data[1][4:14]
	res2, err := si.Search(q2, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res2.Matches {
		if m.ID == 1 && m.Offset == 4 && m.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Error("exact window not found at distance 0")
	}
}

func TestSubseqIndexValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	data := synth.RandomWalkSet(rng, 5, 20)
	db, _ := buildFixture(t, data)
	if _, err := BuildSubseqIndex(db, seq.LInf, nil, 1); err == nil {
		t.Error("no window lengths accepted")
	}
	if _, err := BuildSubseqIndex(db, seq.LInf, []int{0}, 1); err == nil {
		t.Error("zero window length accepted")
	}
	si, err := BuildSubseqIndex(db, seq.LInf, []int{10}, 0) // step 0 -> 1
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	if _, err := si.Search(nil, 1); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSubseqWindowsLongerThanSequences(t *testing.T) {
	db, _ := buildFixture(t, []seq.Sequence{{1, 2, 3}})
	si, err := BuildSubseqIndex(db, seq.LInf, []int{10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	if si.NumWindows() != 0 {
		t.Errorf("NumWindows = %d for too-short data", si.NumWindows())
	}
	res, err := si.Search(seq.Sequence{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("matches from empty window set")
	}
}
