package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/seqdb"
	"repro/internal/synth"
)

// buildFixture stores data in a fresh in-memory DB with a bulk-loaded
// feature index.
func buildFixture(t *testing.T, data []seq.Sequence) (*seqdb.DB, *FeatureIndex) {
	t.Helper()
	db, err := seqdb.NewMem(seqdb.Options{PageSize: 256, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	idx, err := NewFeatureIndex(IndexOptions{PageSize: 512, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ids := make([]seq.ID, len(data))
	features := make([]seq.Feature, len(data))
	for i, s := range data {
		id, err := db.Append(s)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		features[i] = seq.MustFeature(s)
	}
	if err := idx.BulkLoad(ids, features); err != nil {
		t.Fatal(err)
	}
	return db, idx
}

func matchIDs(r *Result) []seq.ID {
	ids := append([]seq.ID(nil), r.IDs()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(a, b []seq.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// All exact methods must return identical result sets for identical queries.
func TestExactMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := synth.RandomWalkSetVaryLen(rng, 120, 10, 40)
	db, idx := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 20)
	if err != nil {
		t.Fatal(err)
	}
	methods := []Searcher{
		&NaiveScan{DB: db, Base: seq.LInf},
		&LBScan{DB: db, Base: seq.LInf},
		stf,
		&TWSimSearch{DB: db, Index: idx, Base: seq.LInf},
	}
	queries := synth.Queries(rng, data, 15)
	for qi, q := range queries {
		for _, eps := range []float64{0.05, 0.2, 0.5, 1.5} {
			var want []seq.ID
			for mi, m := range methods {
				res, err := m.Search(q, eps)
				if err != nil {
					t.Fatalf("%s: %v", m.Name(), err)
				}
				got := matchIDs(res)
				if mi == 0 {
					want = got
					continue
				}
				if !sameIDs(got, want) {
					t.Fatalf("query %d eps %g: %s returned %v, Naive-Scan %v",
						qi, eps, m.Name(), got, want)
				}
				if res.Stats.Results != len(got) {
					t.Errorf("%s: Results stat %d != %d", m.Name(), res.Stats.Results, len(got))
				}
			}
		}
	}
}

// The reported distances must equal the exact DTW.
func TestReportedDistancesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := synth.RandomWalkSetVaryLen(rng, 60, 10, 30)
	db, idx := buildFixture(t, data)
	m := &TWSimSearch{DB: db, Index: idx, Base: seq.LInf}
	q := synth.Query(rng, data)
	res, err := m.Search(q, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Skip("no matches at this tolerance")
	}
	for _, match := range res.Matches {
		s, err := db.Get(match.ID)
		if err != nil {
			t.Fatal(err)
		}
		want := dtw.Distance(s, q, seq.LInf)
		if match.Dist != want {
			t.Errorf("id %d: reported %g, exact %g", match.ID, match.Dist, want)
		}
		if match.Dist > 1.0 {
			t.Errorf("id %d: distance %g exceeds tolerance", match.ID, match.Dist)
		}
	}
	// Matches must be sorted by distance.
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].Dist < res.Matches[i-1].Dist {
			t.Error("matches not sorted by distance")
		}
	}
}

// Candidate sets must be supersets of the answer set (no false dismissal)
// for every exact method.
func TestCandidateSupersets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := synth.RandomWalkSetVaryLen(rng, 100, 10, 30)
	db, idx := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 15)
	if err != nil {
		t.Fatal(err)
	}
	naive := &NaiveScan{DB: db, Base: seq.LInf}
	filtered := []Searcher{
		&LBScan{DB: db, Base: seq.LInf},
		stf,
		&TWSimSearch{DB: db, Index: idx, Base: seq.LInf},
	}
	for trial := 0; trial < 10; trial++ {
		q := synth.Query(rng, data)
		eps := 0.1 + rng.Float64()
		truth, err := naive.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range filtered {
			res, err := m.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Candidates < len(truth.Matches) {
				t.Errorf("%s: %d candidates < %d true answers",
					m.Name(), res.Stats.Candidates, len(truth.Matches))
			}
			if !sameIDs(matchIDs(res), matchIDs(truth)) {
				t.Errorf("%s: false dismissal or false positive", m.Name())
			}
		}
	}
}

// The paper's Figure 2 ordering: TW-Sim-Search filters at least as well as
// LB-Scan on paper-style workloads (its candidate set cannot be wildly
// larger; on average it is smaller).
func TestTWSimFiltersBetterThanLBScanOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := synth.StockSet(rng, synth.StockOptions{Count: 120, MeanLen: 40, LenSpread: 10})
	db, idx := buildFixture(t, data)
	lb := &LBScan{DB: db, Base: seq.LInf}
	tw := &TWSimSearch{DB: db, Index: idx, Base: seq.LInf}
	var lbCand, twCand int
	for trial := 0; trial < 20; trial++ {
		q := synth.Query(rng, data)
		eps := 0.5
		lbRes, err := lb.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		twRes, err := tw.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		lbCand += lbRes.Stats.Candidates
		twCand += twRes.Stats.Candidates
	}
	if twCand > lbCand {
		t.Errorf("TW-Sim-Search candidates %d > LB-Scan %d in aggregate", twCand, lbCand)
	}
}

func TestNearestKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := synth.RandomWalkSetVaryLen(rng, 80, 10, 30)
	db, idx := buildFixture(t, data)
	tw := &TWSimSearch{DB: db, Index: idx, Base: seq.LInf}
	for trial := 0; trial < 10; trial++ {
		q := synth.Query(rng, data)
		k := 1 + rng.Intn(8)
		got, err := tw.NearestK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		type pair struct {
			id seq.ID
			d  float64
		}
		var all []pair
		for i, s := range data {
			all = append(all, pair{seq.ID(i), dtw.Distance(s, q, seq.LInf)})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return all[i].id < all[j].id
		})
		if len(got) != k {
			t.Fatalf("NearestK returned %d of %d", len(got), k)
		}
		for i := range got {
			if got[i].Dist != all[i].d {
				t.Fatalf("trial %d k=%d pos %d: dist %g, want %g (id %d vs %d)",
					trial, k, i, got[i].Dist, all[i].d, got[i].ID, all[i].id)
			}
		}
	}
}

func TestNearestKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := synth.RandomWalkSetVaryLen(rng, 10, 5, 10)
	db, idx := buildFixture(t, data)
	tw := &TWSimSearch{DB: db, Index: idx, Base: seq.LInf}
	q := synth.Query(rng, data)
	if got, err := tw.NearestK(q, 0); err != nil || got != nil {
		t.Errorf("k=0: %v, %v", got, err)
	}
	got, err := tw.NearestK(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("k>n returned %d of 10", len(got))
	}
}

// LB-Scan statistics: it must evaluate the lower bound for every sequence
// but the full DTW only for candidates.
func TestLBScanStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := synth.RandomWalkSetVaryLen(rng, 50, 10, 20)
	db, _ := buildFixture(t, data)
	lb := &LBScan{DB: db, Base: seq.LInf}
	res, err := lb.Search(synth.Query(rng, data), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LowerBoundCalls != 50 {
		t.Errorf("LowerBoundCalls = %d, want 50", res.Stats.LowerBoundCalls)
	}
	// Every candidate is either corridor-pruned or runs the DP; the DTW
	// counter records only the invocations that actually ran.
	if res.Stats.DTWCalls+res.Stats.CorridorPruned != res.Stats.Candidates {
		t.Errorf("DTWCalls %d + CorridorPruned %d != Candidates %d",
			res.Stats.DTWCalls, res.Stats.CorridorPruned, res.Stats.Candidates)
	}
	if res.Stats.DataReads == 0 {
		t.Error("scan reported no data page reads")
	}
}

func TestQueryStatsAggregation(t *testing.T) {
	a := QueryStats{Candidates: 1, Results: 2, DTWCalls: 3, DataReads: 4, Wall: 5}
	a.Add(QueryStats{Candidates: 10, Results: 20, DTWCalls: 30, DataReads: 40, Wall: 50})
	if a.Candidates != 11 || a.Results != 22 || a.DTWCalls != 33 || a.DataReads != 44 || a.Wall != 55 {
		t.Errorf("Add = %+v", a)
	}
	if got := a.CandidateRatio(100); got != 0.11 {
		t.Errorf("CandidateRatio = %g", got)
	}
	if got := (QueryStats{}).CandidateRatio(0); got != 0 {
		t.Errorf("zero-db ratio = %g", got)
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestModeledTime(t *testing.T) {
	s := QueryStats{
		DataMisses: 10, DataSeqMisses: 8,
		IndexMisses: 5, IndexSeqMisses: 0,
		TreePages: 2,
		Wall:      1000,
	}
	cm := CostModel{Seek: 100, Transfer: 10}
	// Random misses: (10-8) + 5 + 2 tree pages = 9 seeks; transfers for
	// all 15 misses + 2 tree pages = 17.
	want := time.Duration(1000 + 9*100 + 17*10)
	if got := s.Modeled(cm); got != want {
		t.Errorf("Modeled = %v, want %v", got, want)
	}
	// A purely sequential scan pays no seeks.
	scan := QueryStats{DataMisses: 100, DataSeqMisses: 100}
	if got := scan.Modeled(cm); got != time.Duration(100*10) {
		t.Errorf("sequential Modeled = %v", got)
	}
}

func TestSearchEmptyDatabase(t *testing.T) {
	db, err := seqdb.NewMem(seqdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := NewFeatureIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for _, m := range []Searcher{
		&NaiveScan{DB: db, Base: seq.LInf},
		&LBScan{DB: db, Base: seq.LInf},
		&TWSimSearch{DB: db, Index: idx, Base: seq.LInf},
	} {
		res, err := m.Search(seq.Sequence{1, 2, 3}, 1)
		if err != nil {
			t.Fatalf("%s on empty db: %v", m.Name(), err)
		}
		if len(res.Matches) != 0 {
			t.Errorf("%s found matches in empty db", m.Name())
		}
	}
}

// The methods must also agree under the L1 base (the paper's footnote 3
// reruns everything with L1).
func TestExactMethodsAgreeL1(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := synth.RandomWalkSetVaryLen(rng, 60, 8, 25)
	db, idx := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.L1, 15)
	if err != nil {
		t.Fatal(err)
	}
	naive := &NaiveScan{DB: db, Base: seq.L1}
	// Dtw_L1 >= Dtw_Linf >= Dtw-lb, so the L∞ feature index remains a
	// valid filter under the L1 base (§4.1's closing remark).
	others := []Searcher{
		&LBScan{DB: db, Base: seq.L1},
		stf,
		&TWSimSearch{DB: db, Index: idx, Base: seq.L1},
	}
	for trial := 0; trial < 8; trial++ {
		q := synth.Query(rng, data)
		eps := 1 + rng.Float64()*5
		truth, err := naive.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range others {
			res, err := m.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(matchIDs(res), matchIDs(truth)) {
				t.Fatalf("%s disagrees with Naive-Scan under L1", m.Name())
			}
		}
	}
}
