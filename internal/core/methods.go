package core

import (
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// Searcher is a whole-matching similarity search method: it returns every
// data sequence S with Dtw(S, Q) ≤ epsilon. All implementations in this
// package are exact (no false dismissal) except FastMapSearch, which is
// provided to reproduce the paper's §3.3 false-dismissal argument.
type Searcher interface {
	// Name identifies the method in experiment output.
	Name() string
	// Search runs one whole-matching similarity query.
	Search(q seq.Sequence, epsilon float64) (*Result, error)
}

// refine runs the post-processing of Algorithm 1 (Step-4..7): fetch each
// candidate sequence and keep it when the exact early-abandoning DTW is
// within epsilon. Matches are returned sorted by distance then ID.
//
// Candidates whose heap record is gone (deleted or never durably written —
// a dangling index entry from an interrupted write) are skipped rather
// than failing the query: dropping them cannot cause a false dismissal,
// and it keeps reads available until the next Repair removes the entries.
func refine(db *seqdb.DB, base seq.Base, q seq.Sequence, epsilon float64,
	candidates []seq.ID, stats *QueryStats) ([]Match, error) {
	var matches []Match
	for _, id := range candidates {
		s, err := db.Get(id)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		stats.DTWCalls++
		if d, ok := dtw.DistanceWithin(s, q, base, epsilon); ok {
			matches = append(matches, Match{ID: id, Dist: d})
		}
	}
	sortMatches(matches)
	return matches, nil
}

func sortMatches(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Dist != matches[j].Dist {
			return matches[i].Dist < matches[j].Dist
		}
		return matches[i].ID < matches[j].ID
	})
}

// NaiveScan is the sequential-scan baseline (§3.1): it reads every data
// sequence and evaluates the (early-abandoning) DTW directly.
type NaiveScan struct {
	DB   *seqdb.DB
	Base seq.Base
}

// Name implements Searcher.
func (n *NaiveScan) Name() string { return "Naive-Scan" }

// Search implements Searcher.
func (n *NaiveScan) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	before := n.DB.Stats()
	res := &Result{}
	err := n.DB.Scan(func(id seq.ID, s seq.Sequence) error {
		res.Stats.DTWCalls++
		if d, ok := dtw.DistanceWithin(s, q, n.Base, epsilon); ok {
			res.Matches = append(res.Matches, Match{ID: id, Dist: d})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortMatches(res.Matches)
	after := n.DB.Stats()
	res.Stats.Results = len(res.Matches)
	// Naive-Scan has no filtering step; following the paper's Experiment 1
	// convention, its candidate count equals its result count.
	res.Stats.Candidates = len(res.Matches)
	res.Stats.DataReads = after.Reads - before.Reads
	res.Stats.DataMisses = after.Misses - before.Misses
	res.Stats.DataSeqMisses = after.SeqMisses - before.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// LBScan is Yi et al.'s sequential scan with the O(|S|+|Q|) lower bound
// D_lb used as a cheap filter before the full DTW (§3.2).
type LBScan struct {
	DB   *seqdb.DB
	Base seq.Base
}

// Name implements Searcher.
func (l *LBScan) Name() string { return "LB-Scan" }

// Search implements Searcher.
func (l *LBScan) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	before := l.DB.Stats()
	res := &Result{}
	err := l.DB.Scan(func(id seq.ID, s seq.Sequence) error {
		res.Stats.LowerBoundCalls++
		if dtw.LBYi(s, q, l.Base) > epsilon {
			return nil
		}
		res.Stats.Candidates++
		res.Stats.DTWCalls++
		if d, ok := dtw.DistanceWithin(s, q, l.Base, epsilon); ok {
			res.Matches = append(res.Matches, Match{ID: id, Dist: d})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortMatches(res.Matches)
	after := l.DB.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = after.Reads - before.Reads
	res.Stats.DataMisses = after.Misses - before.Misses
	res.Stats.DataSeqMisses = after.SeqMisses - before.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// TWSimSearch is the paper's method (Algorithm 1): a square range query on
// the 4-d feature index with Dtw-lb as the pruning metric, followed by
// exact DTW refinement. Theorems 1 and 2 guarantee no false dismissal.
type TWSimSearch struct {
	DB    *seqdb.DB
	Index *FeatureIndex
	Base  seq.Base
}

// Name implements Searcher.
func (t *TWSimSearch) Name() string { return "TW-Sim-Search" }

// Search implements Searcher.
func (t *TWSimSearch) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	dbBefore := t.DB.Stats()
	idxBefore := t.Index.Stats()
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	candidates, err := t.Index.RangeQuery(fq, epsilon)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Stats.Candidates = len(candidates)
	res.Matches, err = refine(t.DB, t.Base, q, epsilon, candidates, &res.Stats)
	if err != nil {
		return nil, err
	}
	dbAfter := t.DB.Stats()
	idxAfter := t.Index.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = dbAfter.Reads - dbBefore.Reads
	res.Stats.DataMisses = dbAfter.Misses - dbBefore.Misses
	res.Stats.DataSeqMisses = dbAfter.SeqMisses - dbBefore.SeqMisses
	res.Stats.IndexReads = idxAfter.Reads - idxBefore.Reads
	res.Stats.IndexMisses = idxAfter.Misses - idxBefore.Misses
	res.Stats.IndexSeqMisses = idxAfter.SeqMisses - idxBefore.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// NearestK returns the k sequences with the smallest exact DTW distance to
// q (an extension enabled by Dtw-lb being a true lower bound): candidates
// stream from the index in lower-bound order and refinement stops once the
// next lower bound exceeds the current k-th best exact distance.
func (t *TWSimSearch) NearestK(q seq.Sequence, k int) ([]Match, error) {
	return t.NearestKShared(q, k, nil)
}

// NearestKShared is NearestK with an optional cross-partition pruning bound
// (see SharedBound). The walk stops as soon as the next lower bound exceeds
// the tighter of the local k-th-best distance and the shared bound, and the
// local k-th-best is published to the shared bound as it improves, so
// concurrent walks over disjoint shards prune one another. With a nil bound
// this is exactly NearestK. The returned matches are the walk's survivors
// (at most k, ascending); under a shared bound they are a superset-filter
// for the merged top-k, not necessarily the partition's own true top-k.
func (t *TWSimSearch) NearestKShared(q seq.Sequence, k int, shared *SharedBound) ([]Match, error) {
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	var best []Match // sorted ascending by Dist
	var walkErr error
	err = t.Index.NearestWalk(fq, func(id seq.ID, lb float64) bool {
		cutoff := math.Inf(1)
		if len(best) == k {
			cutoff = best[k-1].Dist
		}
		if shared != nil {
			if g := shared.Load(); g < cutoff {
				cutoff = g
			}
		}
		if lb > cutoff {
			return false // every later candidate has Dtw >= lb > cutoff
		}
		s, err := t.DB.Get(id)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			return true // dangling index entry; skip, do not fail the walk
		}
		if err != nil {
			walkErr = err
			return false
		}
		var d float64
		if math.IsInf(cutoff, 1) {
			d = dtw.Distance(s, q, t.Base)
		} else {
			var ok bool
			d, ok = dtw.DistanceWithin(s, q, t.Base, cutoff)
			if !ok {
				return true
			}
		}
		best = append(best, Match{ID: id, Dist: d})
		sortMatches(best)
		if len(best) > k {
			best = best[:k]
		}
		if shared != nil && len(best) == k {
			shared.Update(best[k-1].Dist)
		}
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return best, err
}
