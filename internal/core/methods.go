package core

import (
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// Searcher is a whole-matching similarity search method: it returns every
// data sequence S with Dtw(S, Q) ≤ epsilon. All implementations in this
// package are exact (no false dismissal) except FastMapSearch, which is
// provided to reproduce the paper's §3.3 false-dismissal argument.
type Searcher interface {
	// Name identifies the method in experiment output.
	Name() string
	// Search runs one whole-matching similarity query.
	Search(q seq.Sequence, epsilon float64) (*Result, error)
}

// refine runs the post-processing of Algorithm 1 (Step-4..7) through the
// tiered cascade: each candidate passes Tier 0 (LB_Kim on its stored index
// point, before any heap fetch), is fetched, and then runs Tiers 1–3 (see
// cascade). The matches are exactly {S : Dtw(S,Q) ≤ ε}, bit-identical to
// the plain fetch-and-DTW loop, sorted by distance then ID.
//
// Candidates whose heap record is gone (deleted or never durably written —
// a dangling index entry from an interrupted write) are skipped rather
// than failing the query: dropping them cannot cause a false dismissal,
// and it keeps reads available until the next Repair removes the entries.
// Skipped candidates never touch DTWCalls — the counter reflects only DP
// invocations that actually ran.
func refine(db *seqdb.DB, base seq.Base, q seq.Sequence, epsilon float64,
	entries []IndexEntry, noCascade bool, stats *QueryStats) ([]Match, error) {
	c := newCascade(q, base, noCascade)
	defer c.close()
	var matches []Match
	for _, e := range entries {
		if !c.admitPoint(e.Point, epsilon, stats) {
			continue
		}
		s, err := db.Get(e.ID)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if d, ok := c.verify(s, epsilon, stats); ok {
			matches = append(matches, Match{ID: e.ID, Dist: d})
		}
	}
	sortMatches(matches)
	return matches, nil
}

// refineIDs is refine for methods whose filter produces bare IDs with no
// stored feature point (FastMap, ST-Filter): Tier 0 is skipped, Tiers 1–3
// run after the fetch.
func refineIDs(db *seqdb.DB, base seq.Base, q seq.Sequence, epsilon float64,
	candidates []seq.ID, noCascade bool, stats *QueryStats) ([]Match, error) {
	c := newCascade(q, base, noCascade)
	defer c.close()
	var matches []Match
	for _, id := range candidates {
		s, err := db.Get(id)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if d, ok := c.verify(s, epsilon, stats); ok {
			matches = append(matches, Match{ID: id, Dist: d})
		}
	}
	sortMatches(matches)
	return matches, nil
}

func sortMatches(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Dist != matches[j].Dist {
			return matches[i].Dist < matches[j].Dist
		}
		return matches[i].ID < matches[j].ID
	})
}

// NaiveScan is the sequential-scan baseline (§3.1): it reads every data
// sequence and evaluates the (early-abandoning) DTW directly.
type NaiveScan struct {
	DB   *seqdb.DB
	Base seq.Base
}

// Name implements Searcher.
func (n *NaiveScan) Name() string { return "Naive-Scan" }

// Search implements Searcher.
func (n *NaiveScan) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	before := n.DB.Stats()
	res := &Result{}
	err := n.DB.Scan(func(id seq.ID, s seq.Sequence) error {
		res.Stats.DTWCalls++
		if d, ok := dtw.DistanceWithin(s, q, n.Base, epsilon); ok {
			res.Matches = append(res.Matches, Match{ID: id, Dist: d})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortMatches(res.Matches)
	after := n.DB.Stats()
	res.Stats.Results = len(res.Matches)
	// Naive-Scan has no filtering step; following the paper's Experiment 1
	// convention, its candidate count equals its result count.
	res.Stats.Candidates = len(res.Matches)
	res.Stats.DataReads = after.Reads - before.Reads
	res.Stats.DataMisses = after.Misses - before.Misses
	res.Stats.DataSeqMisses = after.SeqMisses - before.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// LBScan is Yi et al.'s sequential scan with the O(|S|+|Q|) lower bound
// D_lb used as a cheap filter before the full DTW (§3.2).
type LBScan struct {
	DB   *seqdb.DB
	Base seq.Base
}

// Name implements Searcher.
func (l *LBScan) Name() string { return "LB-Scan" }

// Search implements Searcher.
func (l *LBScan) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	before := l.DB.Stats()
	res := &Result{}
	// LB-Scan's own filter IS the cascade's Tier 1 (the two-sided Yi
	// bound), so survivors go straight to Tiers 2–3; re-running the
	// envelope tiers would recompute the same bound.
	c := newCascade(q, l.Base, false)
	defer c.close()
	err := l.DB.Scan(func(id seq.ID, s seq.Sequence) error {
		res.Stats.LowerBoundCalls++
		if dtw.LBYi(s, q, l.Base) > epsilon {
			return nil
		}
		res.Stats.Candidates++
		if d, ok := c.verifyDP(s, epsilon, &res.Stats); ok {
			res.Matches = append(res.Matches, Match{ID: id, Dist: d})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortMatches(res.Matches)
	after := l.DB.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = after.Reads - before.Reads
	res.Stats.DataMisses = after.Misses - before.Misses
	res.Stats.DataSeqMisses = after.SeqMisses - before.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// TWSimSearch is the paper's method (Algorithm 1): a square range query on
// the 4-d feature index with Dtw-lb as the pruning metric, followed by
// exact DTW refinement. Theorems 1 and 2 guarantee no false dismissal.
type TWSimSearch struct {
	DB    *seqdb.DB
	Index *FeatureIndex
	Base  seq.Base
	// NoCascade disables the tiered refinement cascade, sending every
	// candidate straight to the exact early-abandoning DP (the pre-cascade
	// behavior). Results are bit-identical either way; the flag exists for
	// benchmarks and equivalence tests.
	NoCascade bool
}

// Name implements Searcher.
func (t *TWSimSearch) Name() string { return "TW-Sim-Search" }

// Search implements Searcher.
func (t *TWSimSearch) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	dbBefore := t.DB.Stats()
	idxBefore := t.Index.Stats()
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	entries, err := t.Index.RangeQueryEntries(fq, epsilon)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Stats.Candidates = len(entries)
	res.Matches, err = refine(t.DB, t.Base, q, epsilon, entries, t.NoCascade, &res.Stats)
	if err != nil {
		return nil, err
	}
	dbAfter := t.DB.Stats()
	idxAfter := t.Index.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = dbAfter.Reads - dbBefore.Reads
	res.Stats.DataMisses = dbAfter.Misses - dbBefore.Misses
	res.Stats.DataSeqMisses = dbAfter.SeqMisses - dbBefore.SeqMisses
	res.Stats.IndexReads = idxAfter.Reads - idxBefore.Reads
	res.Stats.IndexMisses = idxAfter.Misses - idxBefore.Misses
	res.Stats.IndexSeqMisses = idxAfter.SeqMisses - idxBefore.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// NearestK returns the k sequences with the smallest exact DTW distance to
// q (an extension enabled by Dtw-lb being a true lower bound): candidates
// stream from the index in lower-bound order and refinement stops once the
// next lower bound exceeds the current k-th best exact distance.
func (t *TWSimSearch) NearestK(q seq.Sequence, k int) ([]Match, error) {
	return t.NearestKShared(q, k, nil)
}

// NearestKShared is NearestK with an optional cross-partition pruning bound
// (see SharedBound). The walk stops as soon as the next lower bound exceeds
// the tighter of the local k-th-best distance and the shared bound, and the
// local k-th-best is published to the shared bound as it improves, so
// concurrent walks over disjoint shards prune one another. With a nil bound
// this is exactly NearestK. The returned matches are the walk's survivors
// (at most k, ascending); under a shared bound they are a superset-filter
// for the merged top-k, not necessarily the partition's own true top-k.
func (t *TWSimSearch) NearestKShared(q seq.Sequence, k int, shared *SharedBound) ([]Match, error) {
	var stats QueryStats
	return t.nearestKShared(q, k, shared, &stats)
}

// nearestKShared is NearestKShared with the per-tier work counters
// exposed. Once k survivors exist the cutoff is finite and every candidate
// runs the full cascade against it (and against the cross-shard bound when
// present), so the tiers tighten as the search proceeds.
func (t *TWSimSearch) nearestKShared(q seq.Sequence, k int, shared *SharedBound, stats *QueryStats) ([]Match, error) {
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	c := newCascade(q, t.Base, t.NoCascade)
	defer c.close()
	var best []Match // sorted ascending by Dist
	var walkErr error
	err = t.Index.NearestWalk(fq, func(id seq.ID, lb float64) bool {
		cutoff := math.Inf(1)
		if len(best) == k {
			cutoff = best[k-1].Dist
		}
		if shared != nil {
			if g := shared.Load(); g < cutoff {
				cutoff = g
			}
		}
		if lb > cutoff {
			return false // every later candidate has Dtw >= lb > cutoff
		}
		// Tier 0 on the walk's own lower bound: for the L2Sq base the
		// squared bound can dismiss this candidate even though the
		// unsquared walk-stop above did not.
		if !c.admitLB(lb, cutoff, stats) {
			return true
		}
		s, err := t.DB.Get(id)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			return true // dangling index entry; skip, do not fail the walk
		}
		if err != nil {
			walkErr = err
			return false
		}
		var d float64
		if math.IsInf(cutoff, 1) {
			stats.DTWCalls++
			d = dtw.Distance(s, q, t.Base)
		} else {
			var ok bool
			d, ok = c.verify(s, cutoff, stats)
			if !ok {
				return true
			}
		}
		best = append(best, Match{ID: id, Dist: d})
		sortMatches(best)
		if len(best) > k {
			best = best[:k]
		}
		if shared != nil && len(best) == k {
			shared.Update(best[k-1].Dist)
		}
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return best, err
}
