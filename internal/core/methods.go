package core

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// ctxErr reports the context's error when it is already done; a nil context
// never cancels. Cancellation is checked at candidate boundaries (one check
// per dispatch slot, never per DP cell), so an abandoned query stops issuing
// DTW calls after at most one in-flight candidate per worker — cheap enough
// to sit on the hot path, prompt enough to matter under load.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Searcher is a whole-matching similarity search method: it returns every
// data sequence S with Dtw(S, Q) ≤ epsilon. All implementations in this
// package are exact (no false dismissal) except FastMapSearch, which is
// provided to reproduce the paper's §3.3 false-dismissal argument.
type Searcher interface {
	// Name identifies the method in experiment output.
	Name() string
	// Search runs one whole-matching similarity query.
	Search(q seq.Sequence, epsilon float64) (*Result, error)
}

// refine runs the post-processing of Algorithm 1 (Step-4..7) through the
// tiered cascade: each candidate passes Tier 0 (LB_Kim on its stored index
// point, before any heap fetch), is fetched, and then runs Tiers 1–3 (see
// cascade). The matches are exactly {S : Dtw(S,Q) ≤ ε}, bit-identical to
// the plain fetch-and-DTW loop, sorted by distance then ID.
//
// Candidates whose heap record is gone (deleted or never durably written —
// a dangling index entry from an interrupted write) are skipped rather
// than failing the query: dropping them cannot cause a false dismissal,
// and it keeps reads available until the next Repair removes the entries.
// Skipped candidates never touch DTWCalls — the counter reflects only DP
// invocations that actually ran.
//
// With workers > 1 the candidates fan out to a bounded worker pool (see
// refineParallel); the matches and the aggregated stats are bit-identical
// to the serial loop because the pruning cutoff is the fixed tolerance ε,
// so every candidate's verdict is independent of evaluation order.
func refine(ctx context.Context, db *seqdb.DB, base seq.Base, q seq.Sequence, epsilon float64,
	entries []IndexEntry, noCascade bool, band int, envs *EnvStore,
	workers int, stats *QueryStats) ([]Match, error) {
	if workers > 1 && len(entries) > 1 {
		return refineParallel(ctx, db, base, q, epsilon, len(entries),
			func(i int) (seq.ID, [4]float64, bool) { return entries[i].ID, entries[i].Point, true },
			noCascade, band, envs, workers, stats)
	}
	c := newCascade(q, base, band, envs, noCascade)
	defer c.close()
	var matches []Match
	for _, e := range entries {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if !c.admitPoint(e.Point, epsilon, stats) {
			continue
		}
		if !c.admitEnvelope(e.ID, epsilon, stats) {
			continue
		}
		s, err := db.Get(e.ID)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if d, ok := c.verify(s, epsilon, stats); ok {
			matches = append(matches, Match{ID: e.ID, Dist: d})
		}
	}
	sortMatches(matches)
	return matches, nil
}

// refineIDs is refine for methods whose filter produces bare IDs with no
// stored feature point (FastMap, ST-Filter): Tier 0 is skipped, Tiers 1–3
// run after the fetch.
func refineIDs(db *seqdb.DB, base seq.Base, q seq.Sequence, epsilon float64,
	candidates []seq.ID, noCascade bool, workers int, stats *QueryStats) ([]Match, error) {
	if workers > 1 && len(candidates) > 1 {
		return refineParallel(nil, db, base, q, epsilon, len(candidates),
			func(i int) (seq.ID, [4]float64, bool) { return candidates[i], [4]float64{}, false },
			noCascade, 0, nil, workers, stats)
	}
	c := newCascade(q, base, 0, nil, noCascade)
	defer c.close()
	var matches []Match
	for _, id := range candidates {
		s, err := db.Get(id)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if d, ok := c.verify(s, epsilon, stats); ok {
			matches = append(matches, Match{ID: id, Dist: d})
		}
	}
	sortMatches(matches)
	return matches, nil
}

// filterRadius converts a query tolerance into the index filter radius.
// The index stores unsquared feature values and Dtw-lb bounds the cost of
// one matched pair, so for the additive L2Sq base — where a matched pair
// contributes the square of its difference — a candidate with feature
// distance f qualifies whenever f² ≤ ε, i.e. f ≤ √ε. The seed passed ε
// through unchanged, which false-dismisses for ε < 1 (where √ε > ε) and
// over-admits for ε > 1; √ε is exact for all ε. The other bases charge the
// pair its absolute difference, so the radius is ε itself.
func filterRadius(base seq.Base, epsilon float64) float64 {
	if base == seq.L2Sq {
		return math.Sqrt(epsilon)
	}
	return epsilon
}

func sortMatches(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Dist != matches[j].Dist {
			return matches[i].Dist < matches[j].Dist
		}
		return matches[i].ID < matches[j].ID
	})
}

// NaiveScan is the sequential-scan baseline (§3.1): it reads every data
// sequence and evaluates the (early-abandoning) DTW directly.
type NaiveScan struct {
	DB   *seqdb.DB
	Base seq.Base
}

// Name implements Searcher.
func (n *NaiveScan) Name() string { return "Naive-Scan" }

// Search implements Searcher.
func (n *NaiveScan) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	before := n.DB.Stats()
	res := &Result{}
	err := n.DB.Scan(func(id seq.ID, s seq.Sequence) error {
		res.Stats.DTWCalls++
		if d, ok := dtw.DistanceWithin(s, q, n.Base, epsilon); ok {
			res.Matches = append(res.Matches, Match{ID: id, Dist: d})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortMatches(res.Matches)
	after := n.DB.Stats()
	res.Stats.Results = len(res.Matches)
	// Naive-Scan has no filtering step; following the paper's Experiment 1
	// convention, its candidate count equals its result count.
	res.Stats.Candidates = len(res.Matches)
	res.Stats.DataReads = after.Reads - before.Reads
	res.Stats.DataMisses = after.Misses - before.Misses
	res.Stats.DataSeqMisses = after.SeqMisses - before.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// LBScan is Yi et al.'s sequential scan with the O(|S|+|Q|) lower bound
// D_lb used as a cheap filter before the full DTW (§3.2).
type LBScan struct {
	DB   *seqdb.DB
	Base seq.Base
}

// Name implements Searcher.
func (l *LBScan) Name() string { return "LB-Scan" }

// Search implements Searcher.
func (l *LBScan) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	before := l.DB.Stats()
	res := &Result{}
	// LB-Scan's own filter IS the cascade's Tier 1 (the two-sided Yi
	// bound), so survivors go straight to Tiers 2–3; re-running the
	// envelope tiers would recompute the same bound.
	c := newCascade(q, l.Base, 0, nil, false)
	defer c.close()
	err := l.DB.Scan(func(id seq.ID, s seq.Sequence) error {
		res.Stats.LowerBoundCalls++
		if dtw.LBYi(s, q, l.Base) > epsilon {
			return nil
		}
		res.Stats.Candidates++
		if d, ok := c.verifyDP(s, epsilon, &res.Stats); ok {
			res.Matches = append(res.Matches, Match{ID: id, Dist: d})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortMatches(res.Matches)
	after := l.DB.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = after.Reads - before.Reads
	res.Stats.DataMisses = after.Misses - before.Misses
	res.Stats.DataSeqMisses = after.SeqMisses - before.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// TWSimSearch is the paper's method (Algorithm 1): a square range query on
// the 4-d feature index with Dtw-lb as the pruning metric, followed by
// exact DTW refinement. Theorems 1 and 2 guarantee no false dismissal.
type TWSimSearch struct {
	DB    *seqdb.DB
	Index Index
	Base  seq.Base
	// NoCascade disables the tiered refinement cascade, sending every
	// candidate straight to the exact early-abandoning DP (the pre-cascade
	// behavior). Results are bit-identical either way; the flag exists for
	// benchmarks and equivalence tests.
	NoCascade bool
	// Workers bounds the intra-query refinement parallelism. Values ≤ 1
	// keep the historical serial execution (the zero value is serial, so
	// direct constructions — including the experiment drivers, whose
	// per-query I/O accounting depends on a deterministic fetch order —
	// are unchanged). The public layer resolves its default to GOMAXPROCS.
	Workers int
	// Band is the Sakoe–Chiba half-width the query searches under: 0 (the
	// zero value) answers the paper's unconstrained distance, ≥ 1 answers
	// dtw.BandDistance with that half-width. The index filter and every
	// unconstrained cascade tier stay sound because a band only removes
	// permissible warpings (BandDistance ≥ Distance); the banded envelope
	// tiers switch on automatically for equal-length candidates.
	Band int
	// Envs, when set, enables the pre-fetch LB_PAA cascade tier against the
	// per-record PAA envelopes.
	Envs *EnvStore
	// NoEnvOrder disables the k-NN walk's envelope-sharpened frontier
	// ordering (the two-level re-key by max(mindist, LB_PAA)), keeping the
	// plain mindist stream. Results are bit-identical either way; the flag
	// exists for benchmarks and equivalence tests. NoCascade implies it.
	NoEnvOrder bool
	// Ctx, when set, cancels the query at the next candidate boundary: the
	// refine loop (serial or parallel) and the k-NN walk check it once per
	// candidate and return its error, so an abandoned query stops issuing
	// DTW calls promptly. Cancellation can only abandon work, never skip a
	// qualifying candidate, so a completed query is bit-identical whether or
	// not a context was attached. Nil never cancels.
	Ctx context.Context
}

// Name implements Searcher.
func (t *TWSimSearch) Name() string { return "TW-Sim-Search" }

// Search implements Searcher.
func (t *TWSimSearch) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	if err := ctxErr(t.Ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	dbBefore := t.DB.Stats()
	idxBefore := t.Index.Stats()
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	var entries []IndexEntry
	envPruned := 0
	// Envelope-tight walk: when the engine packs PAA envelopes next to its
	// leaf entries (the flat engine), the LB_PAA test runs inside the index
	// walk against the true tolerance ε — a walk-pruned candidate never
	// reaches the refine loop. The pruner is byte-for-byte the cascade's
	// Tier 0.5 bound, so results are bit-identical to the other engine and
	// to the in-cascade placement; the pruned count lands in the same
	// LBPAAPruned counter to keep the conservation law intact. Delta-overlay
	// entries pass through unpruned (their envelopes await the next merge)
	// and get the in-cascade tier instead.
	if eti, ok := t.Index.(envTightIndex); ok && !t.NoCascade && len(q) > 0 {
		pruner := newPAAPruner(q, t.Base, t.Band)
		entries, envPruned, err = eti.RangeQueryEntriesEnv(fq, filterRadius(t.Base, epsilon),
			func(id seq.ID, pe *seq.PAAEnvelope) bool { return pruner.lbPAA(pe) <= epsilon })
	} else {
		entries, err = t.Index.RangeQueryEntries(fq, filterRadius(t.Base, epsilon))
	}
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Stats.FilterWall = time.Since(start)
	res.Stats.Candidates = len(entries) + envPruned
	res.Stats.LBPAAPruned = envPruned
	refineStart := time.Now()
	res.Matches, err = refine(t.Ctx, t.DB, t.Base, q, epsilon, entries, t.NoCascade, t.Band, t.Envs, t.Workers, &res.Stats)
	if err != nil {
		return nil, err
	}
	res.Stats.RefineWall = time.Since(refineStart)
	dbAfter := t.DB.Stats()
	idxAfter := t.Index.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = dbAfter.Reads - dbBefore.Reads
	res.Stats.DataMisses = dbAfter.Misses - dbBefore.Misses
	res.Stats.DataSeqMisses = dbAfter.SeqMisses - dbBefore.SeqMisses
	res.Stats.IndexReads = idxAfter.Reads - idxBefore.Reads
	res.Stats.IndexMisses = idxAfter.Misses - idxBefore.Misses
	res.Stats.IndexSeqMisses = idxAfter.SeqMisses - idxBefore.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// NearestK returns the k sequences with the smallest exact DTW distance to
// q (an extension enabled by Dtw-lb being a true lower bound): candidates
// stream from the index in lower-bound order and refinement stops once the
// next lower bound exceeds the current k-th best exact distance.
func (t *TWSimSearch) NearestK(q seq.Sequence, k int) ([]Match, error) {
	return t.NearestKShared(q, k, nil)
}

// NearestKShared is NearestK with an optional cross-partition pruning bound
// (see SharedBound). The walk stops as soon as the next lower bound exceeds
// the tighter of the local k-th-best distance and the shared bound, and the
// local k-th-best is published to the shared bound as it improves, so
// concurrent walks over disjoint shards prune one another. With a nil bound
// this is exactly NearestK. The returned matches are the walk's survivors
// (at most k, ascending); under a shared bound they are a superset-filter
// for the merged top-k, not necessarily the partition's own true top-k.
func (t *TWSimSearch) NearestKShared(q seq.Sequence, k int, shared *SharedBound) ([]Match, error) {
	ms, _, err := t.NearestKSharedStats(q, k, shared)
	return ms, err
}

// NearestKSharedStats is NearestKShared with the query's work counters
// returned alongside the matches — the serving layer accumulates them into
// its exported totals and latency histograms, and the sharded engine into
// its per-shard skew breakdown. Candidates counts every streamed candidate
// that was actually fetched and evaluated, so the conservation law
// Candidates = ΣPruned + DTWCalls holds for k-NN exactly as for range
// search. Wall and RefineWall cover the whole walk (filtering and
// refinement interleave in a k-NN walk, so there is no separate filter
// phase to time).
func (t *TWSimSearch) NearestKSharedStats(q seq.Sequence, k int, shared *SharedBound) ([]Match, QueryStats, error) {
	var stats QueryStats
	start := time.Now()
	ms, err := t.nearestKShared(q, k, shared, &stats)
	stats.Wall = time.Since(start)
	stats.RefineWall = stats.Wall
	stats.Results = len(ms)
	return ms, stats, err
}

// envOrdering reports whether the envelope-tight k-NN tier is active for
// this query: the walk re-keys candidates by max(mindist, LB_PAA) and the
// refine loop seeds its cutoff from aligned-path upper bounds. Off when
// the cascade is off (NoCascade keeps the brute-force baseline honest) or
// explicitly disabled for A/B verification.
func (t *TWSimSearch) envOrdering(q seq.Sequence) bool {
	return !t.NoCascade && !t.NoEnvOrder && len(q) > 0
}

// knnWalk runs the index walk for one k-NN query: fn receives candidates in
// non-decreasing key order, where the key is comparableLB(Base, L∞ mindist)
// raised — when envelope ordering is enabled and the engine supports it —
// to max(·, LB_PAA(Q, stored envelope)). Both halves of the max lower-bound
// the candidate's (banded) DTW distance in comparable space, so a stop on
// `key > cutoff` dismisses only candidates whose exact distance is already
// above the cutoff (DESIGN.md §12), just earlier than the mindist alone
// allows. With ordering off (or unsupported) the same keyed walk runs with
// a nil sharpener, so the stream is the transformed legacy order and the
// frontier counters stay comparable across modes. The walk's frontier
// counters land in stats when it finishes.
func (t *TWSimSearch) knnWalk(q seq.Sequence, fq seq.Feature, stats *QueryStats,
	fn func(id seq.ID, key float64) bool) error {
	xform := func(d float64) float64 { return comparableLB(t.Base, d) }
	useEnv := t.envOrdering(q)
	if w, ok := t.Index.(knnEnvWalker); ok {
		var sharpen func(pe *seq.PAAEnvelope) float64
		if useEnv {
			pruner := newPAAPruner(q, t.Base, t.Band)
			sharpen = pruner.lbPAA
		}
		ws, err := w.NearestWalkEnv(fq, xform, sharpen, fn)
		stats.addKNNWalk(ws)
		return err
	}
	if w, ok := t.Index.(knnKeyedWalker); ok {
		var sharpen func(id seq.ID) float64
		if useEnv && t.Envs.Len() > 0 {
			pruner := newPAAPruner(q, t.Base, t.Band)
			sharpen = func(id seq.ID) float64 {
				if pe, ok := t.Envs.Get(id); ok {
					return pruner.lbPAA(&pe)
				}
				return 0
			}
		}
		ws, err := w.NearestWalkKeyed(fq, xform, sharpen, fn)
		stats.addKNNWalk(ws)
		return err
	}
	// Engines without a keyed walk stream raw mindists; apply the transform
	// here so the stop test is identical.
	return t.Index.NearestWalk(fq, func(id seq.ID, lb float64) bool {
		return fn(id, comparableLB(t.Base, lb))
	})
}

// nearestKShared is NearestKShared with the per-tier work counters
// exposed. Once k survivors exist the cutoff is finite and every candidate
// runs the full cascade against it (and against the cross-shard bound when
// present), so the tiers tighten as the search proceeds.
//
// The walk streams candidates in ascending lower-bound order, so the stop
// test compares the base-comparable form of the bound (squared for L2Sq,
// where a single matched pair contributes its squared difference to the
// additive total) against the cutoff: the comparable bound is monotone in
// the walk order, so stopping dismisses only candidates whose exact
// distance is already above the cutoff. The seed compared the raw bound,
// which for L2Sq cutoffs < 1 kept walking (and fetching) candidates a
// sound bound dismisses — and, worse, was the same unsquared comparison
// the range filter made (see filterRadius).
func (t *TWSimSearch) nearestKShared(q seq.Sequence, k int, shared *SharedBound, stats *QueryStats) ([]Match, error) {
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	if t.Workers > 1 {
		return t.nearestKParallel(q, fq, k, t.Workers, shared, stats)
	}
	c := newCascade(q, t.Base, t.Band, t.Envs, t.NoCascade)
	defer c.close()
	// Deferred resolution pays only where the Tier 1 bounds are sharp: for
	// banded queries the banded Keogh/Improved chain tracks the exact DP
	// closely and the DTW-call floor drops ~35% (BENCH_knn.json). Unbanded
	// bounds are too loose to dismiss anything the immediate loop would
	// not, and the loose aligned-path cutoff just makes the corridor
	// refiner run its pre-passes for nothing — so unbanded queries keep
	// the immediate-refine loop (the walk sharpening above still applies).
	var ub *ubTracker
	var dq deferHeap
	if t.envOrdering(q) && t.Band >= 1 {
		ub = newUBTracker(k)
	}
	var best []Match // sorted ascending by Dist
	cutoffNow := func() float64 {
		cutoff := math.Inf(1)
		if len(best) == k {
			cutoff = best[k-1].Dist
		}
		if ub != nil {
			if u := ub.Kth(); u < cutoff {
				cutoff = u
			}
		}
		if shared != nil {
			if g := shared.Load(); g < cutoff {
				cutoff = g
			}
		}
		return cutoff
	}
	admit := func(id seq.ID, d float64) {
		best = append(best, Match{ID: id, Dist: d})
		sortMatches(best)
		if len(best) > k {
			best = best[:k]
		}
		if shared != nil && len(best) == k {
			shared.Update(best[k-1].Dist)
		}
	}
	var walkErr error
	err = t.knnWalk(q, fq, stats, func(id seq.ID, key float64) bool {
		if cerr := ctxErr(t.Ctx); cerr != nil {
			walkErr = cerr
			return false
		}
		cutoff := cutoffNow()
		if key > cutoff {
			return false // every later candidate has Dtw >= key > cutoff
		}
		// Tier 0.5 runs before the fetch; a candidate it dismisses is still
		// a candidate, so count it here to keep Candidates = ΣPruned +
		// DTWCalls (unpruned candidates are counted after the fetch, where
		// dangling entries are excluded as before).
		if !c.admitEnvelope(id, cutoff, stats) {
			stats.Candidates++
			return true
		}
		s, err := t.DB.Get(id)
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			return true // dangling index entry; skip, do not fail the walk
		}
		if err != nil {
			walkErr = err
			return false
		}
		stats.Candidates++
		if ub == nil {
			// Ordering off (or cascade off): the legacy immediate-refine
			// loop — full DTW while the cutoff is infinite, the cascade
			// afterwards.
			var d float64
			if math.IsInf(cutoff, 1) {
				stats.DTWCalls++
				d = c.exactDistance(s)
			} else {
				var ok bool
				d, ok = c.verify(s, cutoff, stats)
				if !ok {
					return true
				}
			}
			admit(id, d)
			return true
		}
		// Envelope-ordered: no exact DP runs during the walk. The
		// candidate's aligned-path upper bound feeds the k-smallest-UB
		// tracker, whose Kth() keeps the cutoff finite (and the walk stop
		// live) without a single DTW call; the cascade's Tier 1 bounds
		// either dismiss the candidate now or become its defer key, and the
		// exact DP runs later, in ascending strongest-LB order, against a
		// near-final cutoff (DESIGN.md §12).
		if u, ok := c.upperBoundAligned(s); ok {
			if w := ub.Add(u); w < cutoff {
				cutoff = w
				if shared != nil {
					// Kth() bounds this partition's k-th exact distance,
					// which bounds the global one — a valid shared update
					// long before any exact distance exists.
					shared.Update(w)
				}
			}
		}
		lb, tier, pruned := c.bound(s, cutoff, stats)
		if pruned {
			return true
		}
		// The walk key is itself a lower bound (Tiers 0/0.5) and sometimes
		// beats the Tier 1 chain; the defer key is the max of everything
		// known, so resolve-time dismissal loses nothing the walk proved.
		if key > lb {
			lb, tier = key, tierWalkKey
		}
		dq.push(deferred{id: id, s: s, lb: lb, tier: tier})
		// A deferred candidate whose bound is ≤ the current walk key is the
		// global minimum remaining lower bound (walk keys only ascend), so
		// resolving it now IS the ascending-LB order — and its exact
		// distance replaces the UB cutoff with a tighter one, shortening
		// the walk.
		for len(dq) > 0 && dq[0].lb <= key {
			top := dq.pop()
			cutoff := cutoffNow()
			if top.lb > cutoff {
				creditTier(top.tier, stats)
				continue
			}
			if d, ok := c.verifyDP(top.s, cutoff, stats); ok {
				admit(top.id, d)
			}
		}
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if err != nil {
		return nil, err
	}
	// Resolve deferred candidates in ascending strongest-LB order: the
	// cutoff — min(k-th exact of resolved, k-th UB, shared) — is near its
	// final value from the first pop, so each pop either proves the
	// candidate out on its Tier 1 bound or runs the DP the search truly
	// cannot avoid.
	for len(dq) > 0 {
		if err := ctxErr(t.Ctx); err != nil {
			return nil, err
		}
		top := dq.pop()
		cutoff := cutoffNow()
		if top.lb > cutoff {
			creditTier(top.tier, stats)
			continue
		}
		d, ok := c.verifyDP(top.s, cutoff, stats)
		if !ok {
			continue
		}
		admit(top.id, d)
	}
	return best, nil
}
