// Package core implements the paper's primary contribution — the
// TW-Sim-Search method (a 4-dimensional feature index queried through the
// lower-bound metric Dtw-lb) — together with the three baselines it is
// evaluated against (Naive-Scan, LB-Scan, ST-Filter) and the FastMap method
// it contrasts with, all over the shared storage substrates.
package core

import (
	"fmt"
	"time"

	"repro/internal/pagefile"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// CostModel converts buffer pool misses into modeled disk time so elapsed
// time comparisons are independent of the host machine. The default models
// the paper's platform (§5.1: a 9.5 ms-seek disk). Sequential misses (the
// next physical page after the previous miss, as a scan produces) are
// charged transfer cost only; random misses pay a full seek + transfer.
type CostModel struct {
	// Seek is charged for every random (non-sequential) page miss.
	Seek time.Duration
	// Transfer is charged for every page miss, sequential or not.
	Transfer time.Duration
}

// DefaultCostModel mirrors the paper's 9.5 ms-seek disk with a ~10 MB/s
// transfer rate (≈ 0.1 ms per 1 KB page).
var DefaultCostModel = CostModel{Seek: 9500 * time.Microsecond, Transfer: 100 * time.Microsecond}

// QueryStats describes the work one similarity search performed.
type QueryStats struct {
	// Candidates is the size of the candidate set after the filtering
	// step (the numerator of the paper's candidate ratio, Experiment 1).
	Candidates int
	// Results is the number of qualifying sequences.
	Results int
	// DTWCalls counts exact DTW evaluations during refinement
	// (early-abandoned evaluations included). Candidates dismissed by a
	// cascade tier — or whose heap record turned out to be dangling — are
	// not counted: only invocations that actually ran the DP are.
	DTWCalls int
	// LowerBoundCalls counts scan-time lower-bound evaluations (LB-Scan).
	LowerBoundCalls int
	// LBKimPruned counts candidates the cascade dismissed on Tier 0: the
	// paper's Dtw-lb (LB_Kim) re-evaluated against the stored index point,
	// before the heap record is fetched. Nonzero only when the pruning
	// cutoff has tightened below the filter tolerance (k-NN) or the bound
	// is strictly stronger than the filter's (the L2Sq base).
	LBKimPruned int
	// LBPAAPruned counts candidates the cascade dismissed on Tier 0.5:
	// LB_PAA evaluated between the query and the candidate's stored
	// PAA-reduced envelope (EnvStore), after the index point test but still
	// before the heap record is fetched.
	LBPAAPruned int
	// LBKeoghPruned counts candidates dismissed on Tier 1a: the
	// global-envelope LB_Keogh bound (the S-side half of LB_Yi), computed
	// after the fetch but before the query-side scan.
	LBKeoghPruned int
	// LBYiPruned counts candidates dismissed on Tier 1b: the completed
	// two-sided Yi et al. bound.
	LBYiPruned int
	// LBImprovedPruned counts candidates dismissed on Tier 1c: the second
	// pass of Lemire's LB_Improved on top of the banded LB_Keogh. The tier
	// only runs for banded queries over equal-length pairs — the bound is
	// undefined otherwise — so this stays zero for unbanded searches.
	LBImprovedPruned int
	// CorridorPruned counts candidates dismissed on Tier 2: the fused
	// sparse DP's alive region died before the final cell, proving
	// Dtw > epsilon while visiting only the within-cutoff part of the
	// matrix (this subsumes the O(1) endpoint pre-check and everything a
	// dense DP would have early-abandoned).
	CorridorPruned int
	// DTWAbandoned counts dense DP invocations that early-abandoned
	// (included in DTWCalls). With the cascade enabled those rejections
	// surface as CorridorPruned instead, so this is nonzero mainly when
	// the cascade is disabled.
	DTWAbandoned int
	// KNNFrontierPushes counts k-NN walk frontier pushes (nodes, items, and
	// envelope re-keys) across both engines' keyed walks.
	KNNFrontierPushes int
	// KNNRepushes counts k-NN candidates that re-entered the walk frontier
	// with an envelope-sharpened priority.
	KNNRepushes int
	// KNNEnvCutoffs counts k-NN walks stopped on an envelope-raised key —
	// walks the ordering tier ended earlier than the mindist alone would
	// have.
	KNNEnvCutoffs int
	// TreeNodes counts suffix tree nodes visited (ST-Filter).
	TreeNodes int
	// TreePages is the modeled number of suffix-tree pages a disk-resident
	// tree of this size would have touched (the tree itself is memory
	// resident; the paper's was not, and its size is exactly why ST-Filter
	// loses on whole matching). Charged as random misses by Modeled.
	TreePages int64
	// DataReads/DataMisses/DataSeqMisses are the sequence heap file's
	// buffer pool counters for this query.
	DataReads, DataMisses, DataSeqMisses int64
	// IndexReads/IndexMisses/IndexSeqMisses are the index buffer pool
	// counters (R-tree based methods).
	IndexReads, IndexMisses, IndexSeqMisses int64
	// Wall is the measured wall-clock duration.
	Wall time.Duration
	// FilterWall is the wall time of the filtering phase (feature
	// extraction plus the index range query for TW-Sim-Search; zero for
	// methods without a separate filter phase). Together with RefineWall it
	// feeds the serving layer's per-phase latency histograms.
	FilterWall time.Duration
	// RefineWall is the wall time of the refinement phase (candidate
	// fetches, the lower-bound cascade, and exact DTW; for k-NN it covers
	// the whole index walk, whose filtering and refinement interleave).
	RefineWall time.Duration
}

// Modeled returns the modeled elapsed time: measured wall time plus the
// cost-model disk charge. Sequential misses pay transfer only; random
// misses (and modeled suffix-tree pages) pay seek + transfer.
func (s QueryStats) Modeled(cm CostModel) time.Duration {
	misses := s.DataMisses + s.IndexMisses
	seq := s.DataSeqMisses + s.IndexSeqMisses
	random := misses - seq + s.TreePages
	return s.Wall + time.Duration(random)*cm.Seek + time.Duration(misses+s.TreePages)*cm.Transfer
}

// Add accumulates other into s (used to aggregate over query batches).
func (s *QueryStats) Add(other QueryStats) {
	s.Candidates += other.Candidates
	s.Results += other.Results
	s.DTWCalls += other.DTWCalls
	s.LowerBoundCalls += other.LowerBoundCalls
	s.LBKimPruned += other.LBKimPruned
	s.LBPAAPruned += other.LBPAAPruned
	s.LBKeoghPruned += other.LBKeoghPruned
	s.LBYiPruned += other.LBYiPruned
	s.LBImprovedPruned += other.LBImprovedPruned
	s.CorridorPruned += other.CorridorPruned
	s.DTWAbandoned += other.DTWAbandoned
	s.KNNFrontierPushes += other.KNNFrontierPushes
	s.KNNRepushes += other.KNNRepushes
	s.KNNEnvCutoffs += other.KNNEnvCutoffs
	s.TreeNodes += other.TreeNodes
	s.TreePages += other.TreePages
	s.DataReads += other.DataReads
	s.DataMisses += other.DataMisses
	s.DataSeqMisses += other.DataSeqMisses
	s.IndexReads += other.IndexReads
	s.IndexMisses += other.IndexMisses
	s.IndexSeqMisses += other.IndexSeqMisses
	s.Wall += other.Wall
	s.FilterWall += other.FilterWall
	s.RefineWall += other.RefineWall
}

// addKNNWalk folds one index walk's frontier counters into s.
func (s *QueryStats) addKNNWalk(ws KNNWalkStats) {
	s.KNNFrontierPushes += int(ws.Pushes)
	s.KNNRepushes += int(ws.Repushes)
	s.KNNEnvCutoffs += int(ws.EnvStops)
}

// CandidateRatio returns Candidates divided by the database size n
// (Experiment 1's metric).
func (s QueryStats) CandidateRatio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(s.Candidates) / float64(n)
}

// String renders a compact summary.
func (s QueryStats) String() string {
	return fmt.Sprintf("cand=%d res=%d dtw=%d(ab=%d) lb=%d pruned=%d/%d/%d/%d/%d/%d nodes=%d dataIO=%d/%d idxIO=%d/%d wall=%v",
		s.Candidates, s.Results, s.DTWCalls, s.DTWAbandoned, s.LowerBoundCalls,
		s.LBKimPruned, s.LBPAAPruned, s.LBKeoghPruned, s.LBYiPruned, s.LBImprovedPruned,
		s.CorridorPruned, s.TreeNodes,
		s.DataReads, s.DataMisses, s.IndexReads, s.IndexMisses, s.Wall)
}

// StorageStats is a point-in-time snapshot of the storage-layer counters:
// the heap file's and index's buffer pools plus the decoded-sequence
// cache. Each component snapshot is wait-free for its counters and the
// three are taken one after another, so the whole is weakly consistent —
// good for monitoring ratios, not for exact cross-component accounting.
type StorageStats struct {
	Data  pagefile.Stats
	Index pagefile.Stats
	Cache seqdb.CacheStats
}

// Add accumulates other into s (used to aggregate across shards).
func (s *StorageStats) Add(other StorageStats) {
	s.Data.Add(other.Data)
	s.Index.Add(other.Index)
	s.Cache.Add(other.Cache)
}

// Match is one qualifying sequence with its exact time warping distance.
type Match struct {
	ID   seq.ID
	Dist float64
}

// Result is the outcome of one similarity search.
type Result struct {
	Matches []Match
	Stats   QueryStats
	// RequestID is a process-unique query identifier the public layer
	// stamps on every search. The serving layer returns it to the client
	// and the slow-query log records it, so a slow request in the log can
	// be joined with the response that produced it.
	RequestID uint64
	// CacheHit reports that the matches were served from the whole-query
	// result cache: Stats then carries zero work counters (no index walk,
	// no fetch, no DTW ran — the conservation law holds trivially as 0=0)
	// and only Results and Wall are populated.
	CacheHit bool
}

// IDs returns the matched sequence IDs in result order.
func (r *Result) IDs() []seq.ID {
	out := make([]seq.ID, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = m.ID
	}
	return out
}
