package core

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/synth"
)

func TestFeatureIndexInsertRangeQuery(t *testing.T) {
	idx, err := NewFeatureIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewSource(1))
	data := synth.RandomWalkSetVaryLen(rng, 200, 5, 30)
	for i, s := range data {
		if err := idx.Insert(seq.ID(i), s); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 200 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The range query must return exactly { S : LBKim(S, Q) <= eps }.
	for trial := 0; trial < 20; trial++ {
		q := synth.Query(rng, data)
		eps := rng.Float64() * 2
		fq := seq.MustFeature(q)
		got, err := idx.RangeQuery(fq, eps)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []seq.ID
		for i, s := range data {
			if dtw.LBKim(s, q) <= eps {
				want = append(want, seq.ID(i))
			}
		}
		if !sameIDs(got, want) {
			t.Fatalf("eps %g: got %v, want %v", eps, got, want)
		}
	}
}

func TestFeatureIndexDelete(t *testing.T) {
	idx, err := NewFeatureIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	s := seq.Sequence{1, 2, 3}
	if err := idx.Insert(7, s); err != nil {
		t.Fatal(err)
	}
	found, err := idx.Delete(7, s)
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if idx.Len() != 0 {
		t.Errorf("Len = %d after delete", idx.Len())
	}
	found, err = idx.Delete(7, s)
	if err != nil || found {
		t.Errorf("second Delete = %v, %v", found, err)
	}
}

func TestFeatureIndexEmptySequenceRejected(t *testing.T) {
	idx, err := NewFeatureIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.Insert(0, nil); err == nil {
		t.Error("Insert of empty sequence accepted")
	}
	if _, err := idx.Delete(0, nil); err == nil {
		t.Error("Delete of empty sequence accepted")
	}
}

func TestFeatureIndexBulkLoadMismatch(t *testing.T) {
	idx, err := NewFeatureIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.BulkLoad([]seq.ID{1}, nil); err == nil {
		t.Error("mismatched BulkLoad accepted")
	}
}

func TestFeatureIndexPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.rtree")
	idx, err := NewFeatureIndex(IndexOptions{OnDiskPath: path})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := synth.RandomWalkSetVaryLen(rng, 100, 5, 20)
	for i, s := range data {
		if err := idx.Insert(seq.ID(i), s); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	idx2, err := OpenFeatureIndex(path, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	if idx2.Len() != 100 {
		t.Fatalf("reopened Len = %d", idx2.Len())
	}
	q := synth.Query(rng, data)
	fq := seq.MustFeature(q)
	got, err := idx2.RangeQuery(fq, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, s := range data {
		if dtw.LBKim(s, q) <= 1.0 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("after reopen: %d candidates, want %d", len(got), want)
	}
}

func TestFeatureIndexNearestWalkOrder(t *testing.T) {
	idx, err := NewFeatureIndex(IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewSource(3))
	data := synth.RandomWalkSetVaryLen(rng, 100, 5, 20)
	for i, s := range data {
		if err := idx.Insert(seq.ID(i), s); err != nil {
			t.Fatal(err)
		}
	}
	q := synth.Query(rng, data)
	fq := seq.MustFeature(q)
	prev := -1.0
	count := 0
	err = idx.NearestWalk(fq, func(id seq.ID, lb float64) bool {
		if lb < prev {
			t.Fatalf("lower bounds out of order: %g after %g", lb, prev)
		}
		if want := dtw.LBKim(data[id], q); lb != want {
			t.Fatalf("id %d: walk lb %g, direct %g", id, lb, want)
		}
		prev = lb
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("walk visited %d of 100", count)
	}
}

func TestIndexPagesSmallFractionOfData(t *testing.T) {
	// The paper: "the R-tree whose size is less than 4% of the database
	// size" (§5.2). With 1 KB pages and length-200+ sequences the ratio
	// here is similar.
	rng := rand.New(rand.NewSource(4))
	data := synth.StockSet(rng, synth.StockOptions{Count: 300, MeanLen: 200, LenSpread: 30})
	db, idx := buildFixture(t, data)
	idxBytes := int64(idx.Pages()) * 512
	dataBytes := db.Bytes()
	if ratio := float64(idxBytes) / float64(dataBytes); ratio > 0.08 {
		t.Errorf("index/data ratio %.3f too large (idx %d B, data %d B)",
			ratio, idxBytes, dataBytes)
	}
}
