package core

import (
	"time"

	"repro/internal/seq"
	"repro/internal/seqdb"
)

// AdaptiveSearch is a cost-based hybrid of TW-Sim-Search and LB-Scan. The
// index range query always runs (it is cheap and exact); the *refinement*
// strategy is then chosen from the candidate count:
//
//   - few candidates: fetch them individually (random I/O), as in the
//     paper's Algorithm 1;
//   - many candidates: one sequential sweep over the heap file, evaluating
//     the exact DTW only at candidate IDs.
//
// At large tolerances the candidate set approaches the whole database and
// per-candidate random fetches lose to a sequential sweep (visible in
// Experiment 2's largest-tolerance row, where LB-Scan edges out plain
// TW-Sim-Search). The crossover follows from the cost model: a random
// fetch costs roughly Seek+Transfer per candidate record, a sweep costs
// Transfer per data page plus one seek. Either path returns exactly
// {S : Dtw(S,Q) ≤ ε}.
type AdaptiveSearch struct {
	DB    *seqdb.DB
	Index Index
	Base  seq.Base
	// Cost drives the refinement choice; the zero value means
	// DefaultCostModel.
	Cost CostModel
}

// Name implements Searcher.
func (a *AdaptiveSearch) Name() string { return "Adaptive" }

// Search implements Searcher.
func (a *AdaptiveSearch) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	cm := a.Cost
	if cm.Seek == 0 && cm.Transfer == 0 {
		cm = DefaultCostModel
	}
	dbBefore := a.DB.Stats()
	idxBefore := a.Index.Stats()
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	entries, err := a.Index.RangeQueryEntries(fq, filterRadius(a.Base, epsilon))
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Stats.Candidates = len(entries)

	if a.useSweep(len(entries), cm) {
		c := newCascade(q, a.Base, 0, nil, false)
		defer c.close()
		// Tier 0 runs while building the sweep's membership set, so pruned
		// candidates never even get their heap record inspected.
		candSet := make(map[seq.ID]bool, len(entries))
		for _, e := range entries {
			if c.admitPoint(e.Point, epsilon, &res.Stats) {
				candSet[e.ID] = true
			}
		}
		err = a.DB.Scan(func(id seq.ID, s seq.Sequence) error {
			if !candSet[id] {
				return nil
			}
			if d, ok := c.verify(s, epsilon, &res.Stats); ok {
				res.Matches = append(res.Matches, Match{ID: id, Dist: d})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sortMatches(res.Matches)
	} else {
		res.Matches, err = refine(nil, a.DB, a.Base, q, epsilon, entries, false, 0, nil, 1, &res.Stats)
		if err != nil {
			return nil, err
		}
	}

	dbAfter := a.DB.Stats()
	idxAfter := a.Index.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = dbAfter.Reads - dbBefore.Reads
	res.Stats.DataMisses = dbAfter.Misses - dbBefore.Misses
	res.Stats.DataSeqMisses = dbAfter.SeqMisses - dbBefore.SeqMisses
	res.Stats.IndexReads = idxAfter.Reads - idxBefore.Reads
	res.Stats.IndexMisses = idxAfter.Misses - idxBefore.Misses
	res.Stats.IndexSeqMisses = idxAfter.SeqMisses - idxBefore.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// useSweep decides whether a sequential sweep beats per-candidate fetches
// under the cost model.
func (a *AdaptiveSearch) useSweep(candidates int, cm CostModel) bool {
	n := a.DB.Len()
	if n == 0 || candidates == 0 {
		return false
	}
	// Average pages per sequence record (>= 1 page touched per fetch).
	pagesPerSeq := float64(a.DB.Bytes()) / float64(n) / 1024
	if pagesPerSeq < 1 {
		pagesPerSeq = 1
	}
	randomCost := float64(candidates) * (float64(cm.Seek) + pagesPerSeq*float64(cm.Transfer))
	totalPages := float64(a.DB.Bytes())/1024 + 1
	sweepCost := float64(cm.Seek) + totalPages*float64(cm.Transfer)
	return sweepCost < randomCost
}
