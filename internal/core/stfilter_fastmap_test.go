package core

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/synth"
)

func TestSTFilterCandidatesIncludeAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := synth.RandomWalkSetVaryLen(rng, 80, 8, 25)
	db, _ := buildFixture(t, data)
	for _, categories := range []int{5, 20, 100} {
		stf, err := BuildSTFilter(db, seq.LInf, categories)
		if err != nil {
			t.Fatal(err)
		}
		naive := &NaiveScan{DB: db, Base: seq.LInf}
		for trial := 0; trial < 5; trial++ {
			q := synth.Query(rng, data)
			eps := 0.1 + rng.Float64()*0.5
			truth, err := naive.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			res, err := stf.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(matchIDs(res), matchIDs(truth)) {
				t.Fatalf("categories=%d: ST-Filter disagrees with Naive-Scan", categories)
			}
		}
	}
}

// More categories must not increase the candidate count (finer intervals
// tighten the traversal lower bound) — the §3.4 trade-off's first half.
func TestSTFilterCategoryGranularityTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := synth.RandomWalkSetVaryLen(rng, 100, 10, 30)
	db, _ := buildFixture(t, data)
	coarse, err := BuildSTFilter(db, seq.LInf, 4)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := BuildSTFilter(db, seq.LInf, 200)
	if err != nil {
		t.Fatal(err)
	}
	var coarseCand, fineCand, coarseNodes, fineNodes int
	for trial := 0; trial < 10; trial++ {
		q := synth.Query(rng, data)
		cRes, err := coarse.Search(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		fRes, err := fine.Search(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		coarseCand += cRes.Stats.Candidates
		fineCand += fRes.Stats.Candidates
		coarseNodes += cRes.Stats.TreeNodes
		fineNodes += fRes.Stats.TreeNodes
	}
	if fineCand > coarseCand {
		t.Errorf("finer categories produced more candidates: %d > %d", fineCand, coarseCand)
	}
	// The second half of the trade-off: the finer tree is larger.
	if fine.Tree.NumNodes() <= coarse.Tree.NumNodes() {
		t.Errorf("finer tree not larger: %d <= %d nodes",
			fine.Tree.NumNodes(), coarse.Tree.NumNodes())
	}
}

func TestSTFilterEmptyQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := synth.RandomWalkSetVaryLen(rng, 20, 5, 10)
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stf.Search(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("empty query matched sequences")
	}
}

func TestSTFilterStatsTrackTreeNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := synth.RandomWalkSetVaryLen(rng, 50, 10, 20)
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stf.Search(synth.Query(rng, data), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TreeNodes == 0 {
		t.Error("traversal visited no tree nodes")
	}
}

// The FastMap method must return a subset of the true answers — and, run
// over enough queries, actually demonstrate a false dismissal (§3.3's
// deficiency; this is the reason the paper excludes it).
func TestFastMapSubsetAndFalseDismissal(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := synth.RandomWalkSetVaryLen(rng, 120, 8, 25)
	db, _ := buildFixture(t, data)
	fm, err := BuildFastMapSearch(db, seq.LInf, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	naive := &NaiveScan{DB: db, Base: seq.LInf}
	dismissed := 0
	for trial := 0; trial < 30; trial++ {
		q := synth.Query(rng, data)
		eps := 0.2 + rng.Float64()*0.6
		truth, err := naive.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fm.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		// Every reported match must be correct (refinement is exact)...
		truthSet := map[seq.ID]bool{}
		for _, m := range truth.Matches {
			truthSet[m.ID] = true
		}
		for _, m := range res.Matches {
			if !truthSet[m.ID] {
				t.Fatalf("FastMap returned non-answer %d", m.ID)
			}
		}
		// ...but some answers may be missing.
		dismissed += len(truth.Matches) - len(res.Matches)
	}
	if dismissed == 0 {
		t.Log("no false dismissal observed in 30 queries (can happen; embedding was lucky)")
	}
}

func TestFastMapSlackWidensCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data := synth.RandomWalkSetVaryLen(rng, 60, 8, 20)
	db, _ := buildFixture(t, data)
	fm, err := BuildFastMapSearch(db, seq.LInf, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	q := synth.Query(rng, data)
	fm.Slack = 1
	narrow, err := fm.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fm.Slack = 3
	wide, err := fm.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Stats.Candidates < narrow.Stats.Candidates {
		t.Errorf("slack 3 candidates %d < slack 1 candidates %d",
			wide.Stats.Candidates, narrow.Stats.Candidates)
	}
	if len(wide.Matches) < len(narrow.Matches) {
		t.Errorf("wider slack found fewer matches")
	}
}

func TestBuildFastMapSearchTooFewObjects(t *testing.T) {
	db, _ := buildFixture(t, []seq.Sequence{{1, 2, 3}})
	if _, err := BuildFastMapSearch(db, seq.LInf, 2, 1); err == nil {
		t.Error("FastMap fit with 1 object accepted")
	}
}
