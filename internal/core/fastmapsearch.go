package core

import (
	"math/rand"
	"time"

	"repro/internal/dtw"
	"repro/internal/fastmap"
	"repro/internal/pagefile"
	"repro/internal/rtree"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// FastMapSearch is the FastMap method of Yi et al. (§3.3): sequences are
// embedded into k-dimensional Euclidean space with FastMap over the DTW
// distance and indexed in an R-tree; a query projects into the same space
// and runs a range query before exact refinement.
//
// Because the embedding does not lower-bound DTW, qualifying sequences can
// fall outside the query cube: FastMapSearch may produce FALSE DISMISSALS.
// It is included to reproduce the paper's argument for excluding it, not as
// an exact method.
type FastMapSearch struct {
	DB   *seqdb.DB
	Map  *fastmap.Map
	Tree *rtree.Tree
	Base seq.Base
	// Slack widens the range query cube by a multiplicative factor
	// (1 = the plain ε cube). Larger slack trades candidates for fewer
	// dismissals; no finite slack guarantees zero.
	Slack float64
}

// BuildFastMapSearch fits a k-dimensional FastMap embedding of every
// sequence in db (using DTW with the given base as the distance) and bulk
// loads the embedded points into an R-tree.
func BuildFastMapSearch(db *seqdb.DB, base seq.Base, k int, seed int64) (*FastMapSearch, error) {
	var data []seq.Sequence
	var ids []seq.ID
	if err := db.Scan(func(id seq.ID, s seq.Sequence) error {
		data = append(data, s.Clone())
		ids = append(ids, id)
		return nil
	}); err != nil {
		return nil, err
	}
	dist := func(a, b seq.Sequence) float64 { return dtw.Distance(a, b, base) }
	m, coords, err := fastmap.Fit(data, k, dist, 5, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	pool, err := pagefile.NewPool(pagefile.NewMemBackend(pagefile.DefaultPageSize), pagefile.DefaultPageSize, 64)
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Create(pool, k, rtree.Options{})
	if err != nil {
		pool.Close()
		return nil, err
	}
	entries := make([]rtree.Entry, len(ids))
	for i, id := range ids {
		entries[i] = rtree.Entry{Rect: rtree.NewPoint(coords[i]), Child: uint32(id)}
	}
	if err := tree.BulkLoad(entries); err != nil {
		tree.Close()
		return nil, err
	}
	return &FastMapSearch{DB: db, Map: m, Tree: tree, Base: base, Slack: 1}, nil
}

// Name implements Searcher.
func (f *FastMapSearch) Name() string { return "FastMap" }

// Search implements Searcher. The result may omit qualifying sequences.
func (f *FastMapSearch) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	dbBefore := f.DB.Stats()
	idxBefore := f.Tree.Stats()
	center := f.Map.Project(q)
	slack := f.Slack
	if slack <= 0 {
		slack = 1
	}
	lo := make([]float64, len(center))
	hi := make([]float64, len(center))
	for i, c := range center {
		lo[i] = c - epsilon*slack
		hi[i] = c + epsilon*slack
	}
	query, err := rtree.NewRect(lo, hi)
	if err != nil {
		return nil, err
	}
	var candidates []seq.ID
	if err := f.Tree.Search(query, func(_ rtree.Rect, id uint32) bool {
		candidates = append(candidates, seq.ID(id))
		return true
	}); err != nil {
		return nil, err
	}
	res := &Result{}
	res.Stats.Candidates = len(candidates)
	res.Matches, err = refineIDs(f.DB, f.Base, q, epsilon, candidates, false, 1, &res.Stats)
	if err != nil {
		return nil, err
	}
	dbAfter := f.DB.Stats()
	idxAfter := f.Tree.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = dbAfter.Reads - dbBefore.Reads
	res.Stats.DataMisses = dbAfter.Misses - dbBefore.Misses
	res.Stats.DataSeqMisses = dbAfter.SeqMisses - dbBefore.SeqMisses
	res.Stats.IndexReads = idxAfter.Reads - idxBefore.Reads
	res.Stats.IndexMisses = idxAfter.Misses - idxBefore.Misses
	res.Stats.IndexSeqMisses = idxAfter.SeqMisses - idxBefore.SeqMisses
	res.Stats.Wall = time.Since(start)
	return res, nil
}
