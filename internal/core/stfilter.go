package core

import (
	"sort"
	"time"

	"repro/internal/categorize"
	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/seqdb"
	"repro/internal/suffixtree"
)

// STFilter is the suffix-tree baseline (Park et al., §3.4) adapted to whole
// matching. Data sequences are converted to category sequences; a
// generalized suffix tree over them is traversed with a branch-and-bound
// time-warping DP where each category contributes its interval's minimum
// distance to the query element — a lower bound of the true per-element
// cost, so the traversal never dismisses a qualifying sequence.
//
// A sequence becomes a candidate when the traversal consumes its *entire*
// category string (the path ends at the sequence's terminator at full
// depth) with a DP value within epsilon; the exact DTW then refines
// candidates. The tree contains every suffix, which is why the method's
// filtering cost balloons for whole matching — the behaviour the paper
// reports.
type STFilter struct {
	DB   *seqdb.DB
	Cat  categorize.Scheme
	Tree *suffixtree.Tree
	Base seq.Base
}

// treeNodesPerPage is the modeled packing density of suffix-tree nodes on
// 1 KB disk pages (~32 bytes per node: offsets, child pointer, sibling
// pointer, suffix link).
const treeNodesPerPage = 32

// BuildSTFilter categorizes every sequence in db with numCategories
// equal-width categories (the paper's experiments use 100) and builds the
// generalized suffix tree.
func BuildSTFilter(db *seqdb.DB, base seq.Base, numCategories int) (*STFilter, error) {
	return buildSTFilter(db, base, func(data []seq.Sequence) (categorize.Scheme, error) {
		return categorize.FromData(data, numCategories)
	})
}

// BuildSTFilterQuantile is BuildSTFilter with equal-frequency (quantile)
// categories instead of equal-width ones — an ablation of the §3.4
// categorization choice. The traversal's no-false-dismissal property is
// preserved by the Scheme contract.
func BuildSTFilterQuantile(db *seqdb.DB, base seq.Base, numCategories int) (*STFilter, error) {
	return buildSTFilter(db, base, func(data []seq.Sequence) (categorize.Scheme, error) {
		return categorize.NewQuantile(data, numCategories)
	})
}

func buildSTFilter(db *seqdb.DB, base seq.Base,
	newScheme func([]seq.Sequence) (categorize.Scheme, error)) (*STFilter, error) {
	var data []seq.Sequence
	if err := db.Scan(func(_ seq.ID, s seq.Sequence) error {
		data = append(data, s.Clone())
		return nil
	}); err != nil {
		return nil, err
	}
	cat, err := newScheme(data)
	if err != nil {
		return nil, err
	}
	symbols := make([][]categorize.Symbol, len(data))
	for i, s := range data {
		symbols[i] = cat.Encode(s)
	}
	return &STFilter{
		DB:   db,
		Cat:  cat,
		Tree: suffixtree.New(symbols),
		Base: base,
	}, nil
}

// Name implements Searcher.
func (f *STFilter) Name() string { return "ST-Filter" }

// Search implements Searcher.
func (f *STFilter) Search(q seq.Sequence, epsilon float64) (*Result, error) {
	start := time.Now()
	dbBefore := f.DB.Stats()
	res := &Result{}
	candidates := f.collectCandidates(q, epsilon, &res.Stats)
	res.Stats.Candidates = len(candidates)
	var err error
	res.Matches, err = refineIDs(f.DB, f.Base, q, epsilon, candidates, false, 1, &res.Stats)
	if err != nil {
		return nil, err
	}
	dbAfter := f.DB.Stats()
	res.Stats.Results = len(res.Matches)
	res.Stats.DataReads = dbAfter.Reads - dbBefore.Reads
	res.Stats.DataMisses = dbAfter.Misses - dbBefore.Misses
	res.Stats.DataSeqMisses = dbAfter.SeqMisses - dbBefore.SeqMisses
	// The suffix tree lives in memory here but would not in the paper's
	// setting (§3.4: the tree is abnormally large for whole matching).
	// Model its disk footprint: visited nodes packed treeNodesPerPage to a
	// page, charged as random reads by the cost model.
	res.Stats.TreePages = int64((res.Stats.TreeNodes + treeNodesPerPage - 1) / treeNodesPerPage)
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// collectCandidates walks the suffix tree with the branch-and-bound DP.
func (f *STFilter) collectCandidates(q seq.Sequence, epsilon float64, stats *QueryStats) []seq.ID {
	if q.Empty() {
		return nil
	}
	m := len(q)
	seen := make(map[seq.ID]bool)
	var candidates []seq.ID

	// advance extends the DP by one symbol. row == nil encodes "no symbols
	// consumed yet". Returns the new row and whether any cell remains
	// within epsilon.
	advance := func(row []float64, sym int32) ([]float64, bool) {
		next := make([]float64, m)
		alive := false
		lo, hi := f.Cat.Interval(categorize.Symbol(sym))
		for j := 0; j < m; j++ {
			e := f.Base.Elem(0, seq.DistToRange(q[j], lo, hi))
			var best float64
			switch {
			case row == nil && j == 0:
				best = 0
			case row == nil:
				best = next[j-1]
			case j == 0:
				best = row[0]
			default:
				best = row[j]
				if row[j-1] < best {
					best = row[j-1]
				}
				if next[j-1] < best {
					best = next[j-1]
				}
			}
			if row == nil && j == 0 {
				next[j] = e
			} else {
				next[j] = f.Base.Combine(e, best)
			}
			if next[j] <= epsilon {
				alive = true
			}
		}
		return next, alive
	}

	var walk func(n *suffixtree.Node, row []float64, depth int)
	walk = func(n *suffixtree.Node, row []float64, depth int) {
		n.Children(func(_ int32, child *suffixtree.Node) bool {
			stats.TreeNodes++
			label := f.Tree.EdgeSymbols(child)
			cur := row
			d := depth
			for _, sym := range label {
				if suffixtree.IsTerminator(sym) {
					// The path spells a complete suffix of sequence id; it
					// is the whole sequence exactly when the depth matches.
					id := suffixtree.TerminatorID(sym)
					if d == f.Tree.SeqLen(id) && cur != nil && cur[m-1] <= epsilon && !seen[id] {
						seen[id] = true
						candidates = append(candidates, id)
					}
					return true // nothing relevant beyond a terminator
				}
				var alive bool
				cur, alive = advance(cur, sym)
				d++
				if !alive {
					return true // prune this subtree
				}
			}
			walk(child, cur, d)
			return true
		})
	}
	walk(f.Tree.Root(), nil, 0)
	return candidates
}

// SearchSubsequences runs the ST-Filter method for its original purpose,
// subsequence matching (Park et al.): find every subsequence — any start
// offset, any length — of any data sequence whose time warping distance to
// q is at most epsilon. The suffix tree traversal evaluates the same
// branch-and-bound DP; whenever the full-query DP cell falls within epsilon
// at depth d, the current root path names a length-d substring occurring at
// every suffix below the current edge, and those occurrences become
// candidates for exact refinement.
func (f *STFilter) SearchSubsequences(q seq.Sequence, epsilon float64) (*SubseqResult, error) {
	if q.Empty() {
		return nil, seq.ErrEmpty
	}
	start := time.Now()
	dbBefore := f.DB.Stats()
	res := &SubseqResult{}
	m := len(q)

	type candKey struct {
		id      seq.ID
		off, ln int32
	}
	seen := make(map[candKey]bool)
	var cands []candKey

	advance := func(row []float64, sym int32) ([]float64, bool) {
		next := make([]float64, m)
		alive := false
		lo, hi := f.Cat.Interval(categorize.Symbol(sym))
		for j := 0; j < m; j++ {
			e := f.Base.Elem(0, seq.DistToRange(q[j], lo, hi))
			var best float64
			switch {
			case row == nil && j == 0:
				best = 0
			case row == nil:
				best = next[j-1]
			case j == 0:
				best = row[0]
			default:
				best = row[j]
				if row[j-1] < best {
					best = row[j-1]
				}
				if next[j-1] < best {
					best = next[j-1]
				}
			}
			if row == nil && j == 0 {
				next[j] = e
			} else {
				next[j] = f.Base.Combine(e, best)
			}
			if next[j] <= epsilon {
				alive = true
			}
		}
		return next, alive
	}

	var walk func(n *suffixtree.Node, row []float64, depth int)
	walk = func(n *suffixtree.Node, row []float64, depth int) {
		n.Children(func(_ int32, child *suffixtree.Node) bool {
			res.Stats.TreeNodes++
			label := f.Tree.EdgeSymbols(child)
			edgeEnd := depth + len(label)
			cur := row
			d := depth
			for _, sym := range label {
				if suffixtree.IsTerminator(sym) {
					return true
				}
				var alive bool
				cur, alive = advance(cur, sym)
				d++
				if !alive {
					return true
				}
				if cur[m-1] <= epsilon {
					// Every suffix below this edge starts a length-d match.
					for _, occ := range f.Tree.OccurrencesBelowAt(child, edgeEnd) {
						key := candKey{id: occ.ID, off: int32(occ.Offset), ln: int32(d)}
						if !seen[key] {
							seen[key] = true
							cands = append(cands, key)
						}
					}
				}
			}
			walk(child, cur, d)
			return true
		})
	}
	walk(f.Tree.Root(), nil, 0)
	res.Stats.Candidates = len(cands)

	// Refine with the exact DTW, fetching each source sequence once per
	// contiguous group.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].id != cands[j].id {
			return cands[i].id < cands[j].id
		}
		if cands[i].off != cands[j].off {
			return cands[i].off < cands[j].off
		}
		return cands[i].ln < cands[j].ln
	})
	var cur seq.Sequence
	curID := seq.InvalidID
	for _, c := range cands {
		if c.id != curID {
			s, err := f.DB.Get(c.id)
			if err != nil {
				return nil, err
			}
			cur, curID = s, c.id
		}
		window := cur[c.off : c.off+c.ln]
		res.Stats.DTWCalls++
		if d, ok := dtw.DistanceWithin(window, q, f.Base, epsilon); ok {
			res.Matches = append(res.Matches, SubMatch{
				ID:     c.id,
				Offset: int(c.off),
				Len:    int(c.ln),
				Dist:   d,
			})
		}
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		a, b := res.Matches[i], res.Matches[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return a.Len < b.Len
	})
	res.Stats.Results = len(res.Matches)
	dbAfter := f.DB.Stats()
	res.Stats.DataReads = dbAfter.Reads - dbBefore.Reads
	res.Stats.DataMisses = dbAfter.Misses - dbBefore.Misses
	res.Stats.DataSeqMisses = dbAfter.SeqMisses - dbBefore.SeqMisses
	res.Stats.TreePages = int64((res.Stats.TreeNodes + treeNodesPerPage - 1) / treeNodesPerPage)
	res.Stats.Wall = time.Since(start)
	return res, nil
}
