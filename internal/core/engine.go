package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/pagefile"
	"repro/internal/seq"
)

// Index is the feature-index seam the search and storage layers program
// against. Two engines implement it: FeatureIndex (paged Guttman R-tree)
// and FlatIndex (immutable packed snapshot + mutable delta, internal/flatidx).
// Both index the paper's 4-d feature vectors under the Dtw-lb (L∞) metric
// and are required to produce bit-identical query results.
type Index interface {
	Insert(id seq.ID, s seq.Sequence) error
	InsertFeature(id seq.ID, f seq.Feature) error
	Delete(id seq.ID, s seq.Sequence) (bool, error)
	DeleteEntry(id seq.ID, point [4]float64) (bool, error)
	Entries() ([]IndexEntry, error)
	BulkLoad(ids []seq.ID, features []seq.Feature) error
	RangeQuery(fq seq.Feature, epsilon float64) ([]seq.ID, error)
	RangeQueryEntries(fq seq.Feature, epsilon float64) ([]IndexEntry, error)
	NearestWalk(fq seq.Feature, fn func(id seq.ID, lowerBound float64) bool) error
	Len() int
	Pages() int
	Stats() pagefile.Stats
	ResetStats()
	EngineStats() IndexEngineStats
	CheckInvariants() error
	Flush() error
	Close() error
}

// EnvBulkLoader is implemented by engines that can store per-sequence PAA
// envelopes inside the index itself (the flat engine packs them next to
// the leaf entries so the range walk is envelope-tight). Load paths probe
// for it and fall back to plain BulkLoad.
type EnvBulkLoader interface {
	BulkLoadEnv(ids []seq.ID, features []seq.Feature, envs []seq.PAAEnvelope) error
}

// envInserter is implemented by engines that accept a PAA envelope
// alongside a feature insert.
type envInserter interface {
	InsertFeatureEnv(id seq.ID, f seq.Feature, env *seq.PAAEnvelope) error
}

// envTightIndex is implemented by engines whose range walk can apply an
// envelope admission test in the tree itself; the search layer probes for
// it to move LB_PAA pruning from the refine cascade into the walk.
type envTightIndex interface {
	RangeQueryEntriesEnv(fq seq.Feature, epsilon float64, admit func(id seq.ID, pe *seq.PAAEnvelope) bool) ([]IndexEntry, int, error)
}

// KNNWalkStats counts one k-NN walk's frontier work, engine-independent
// (both engines' walks report the same three counters).
type KNNWalkStats struct {
	// Pushes is the total number of frontier pushes (nodes, items, and
	// envelope re-keys).
	Pushes int64
	// Repushes counts items that re-entered the frontier with an
	// envelope-sharpened priority.
	Repushes int64
	// EnvStops is 1 when the walk was stopped on an item whose key had been
	// raised above its mindist by the envelope bound — the ordering tier
	// ended the walk earlier than the mindist alone would have.
	EnvStops int64
}

// knnEnvWalker is implemented by engines whose k-NN walk reads stored PAA
// envelopes out of its own leaf storage (the flat engine's slab) to re-key
// each surfacing candidate. xform is a monotone transform applied to every
// mindist so the stream is keyed in the caller's comparable space; sharpen
// (nil = plain mindist ordering) maps a stored envelope to an additional
// lower bound in that space.
type knnEnvWalker interface {
	NearestWalkEnv(fq seq.Feature, xform func(float64) float64,
		sharpen func(pe *seq.PAAEnvelope) float64, fn func(id seq.ID, key float64) bool) (KNNWalkStats, error)
}

// knnKeyedWalker is implemented by engines without in-index envelopes whose
// walk still accepts a per-candidate sharpen callback (the guttman engine;
// the search layer resolves envelopes from the EnvStore).
type knnKeyedWalker interface {
	NearestWalkKeyed(fq seq.Feature, xform func(float64) float64,
		sharpen func(id seq.ID) float64, fn func(id seq.ID, key float64) bool) (KNNWalkStats, error)
}

// IndexEngineStats describes an index engine instance for /stats and
// /metrics. The snapshot/delta fields are zero for the guttman engine.
type IndexEngineStats struct {
	// Engine is the engine name; "mixed" after aggregating across shards
	// running different engines.
	Engine string `json:"engine"`
	// Generation is the current snapshot generation (flat engine; summed
	// across shards).
	Generation uint64 `json:"generation"`
	// DeltaEntries is the current delta size: adds + tombstones awaiting a
	// merge (flat engine).
	DeltaEntries int `json:"delta_entries"`
	// Merges is the number of delta merges performed.
	Merges int64 `json:"merges"`
	// SlabBytes is the packed snapshot size in bytes (flat engine).
	SlabBytes int64 `json:"slab_bytes"`
	// MmapBytes is the size of the snapshot's live file mapping, 0 when the
	// snapshot is heap-backed (flat engine; summed across shards).
	MmapBytes int64 `json:"mmap_bytes"`
	// MergeHist is the merge-duration histogram (flat engine); it feeds the
	// twsim_index_merge_seconds series.
	MergeHist obs.HistogramData `json:"-"`
}

// Add accumulates other into s (shard aggregation).
func (s *IndexEngineStats) Add(other IndexEngineStats) {
	if s.Engine == "" {
		s.Engine = other.Engine
	} else if other.Engine != "" && other.Engine != s.Engine {
		s.Engine = "mixed"
	}
	s.Generation += other.Generation
	s.DeltaEntries += other.DeltaEntries
	s.Merges += other.Merges
	s.SlabBytes += other.SlabBytes
	s.MmapBytes += other.MmapBytes
	s.MergeHist.Add(other.MergeHist)
}

// EngineStats identifies the guttman engine (no snapshot/delta machinery).
func (fi *FeatureIndex) EngineStats() IndexEngineStats {
	return IndexEngineStats{Engine: EngineGuttman}
}

// NewIndex creates an empty feature index with the engine selected by
// opts.Engine.
func NewIndex(opts IndexOptions) (Index, error) {
	switch opts.Engine {
	case "", EngineGuttman:
		return NewFeatureIndex(opts)
	case EngineFlat:
		return NewFlatIndex(opts)
	default:
		return nil, fmt.Errorf("core: unknown index engine %q", opts.Engine)
	}
}

// OpenIndex opens a previously created on-disk feature index with the
// engine selected by opts.Engine.
func OpenIndex(path string, opts IndexOptions) (Index, error) {
	switch opts.Engine {
	case "", EngineGuttman:
		return OpenFeatureIndex(path, opts)
	case EngineFlat:
		return OpenFlatIndex(path, opts)
	default:
		return nil, fmt.Errorf("core: unknown index engine %q", opts.Engine)
	}
}

var (
	_ Index          = (*FeatureIndex)(nil)
	_ Index          = (*FlatIndex)(nil)
	_ knnKeyedWalker = (*FeatureIndex)(nil)
)
