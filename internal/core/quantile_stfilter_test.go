package core

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/synth"
)

// The quantile-categorized ST-Filter must remain exact.
func TestSTFilterQuantileAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := synth.RandomWalkSetVaryLen(rng, 60, 10, 30)
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilterQuantile(db, seq.LInf, 25)
	if err != nil {
		t.Fatal(err)
	}
	naive := &NaiveScan{DB: db, Base: seq.LInf}
	for trial := 0; trial < 8; trial++ {
		q := synth.Query(rng, data)
		eps := 0.1 + rng.Float64()*0.5
		truth, err := naive.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := stf.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(matchIDs(res), matchIDs(truth)) {
			t.Fatalf("quantile ST-Filter disagrees with Naive-Scan at eps %g", eps)
		}
	}
}

// On skewed data, quantile categories should filter no worse than
// equal-width ones on average (they concentrate resolution where values
// live).
func TestSTFilterQuantileOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Skewed workload: most sequences live in a narrow low band; a few
	// outliers stretch the global range.
	var data []seq.Sequence
	for i := 0; i < 80; i++ {
		s := synth.RandomWalk(rng, 30)
		if i%20 == 0 {
			for j := range s {
				s[j] *= 50 // outlier band
			}
		}
		data = append(data, s)
	}
	db, _ := buildFixture(t, data)
	ew, err := BuildSTFilter(db, seq.LInf, 30)
	if err != nil {
		t.Fatal(err)
	}
	qt, err := BuildSTFilterQuantile(db, seq.LInf, 30)
	if err != nil {
		t.Fatal(err)
	}
	var ewCand, qtCand int
	for trial := 0; trial < 10; trial++ {
		q := synth.Query(rng, data)
		ewRes, err := ew.Search(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		qtRes, err := qt.Search(q, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		ewCand += ewRes.Stats.Candidates
		qtCand += qtRes.Stats.Candidates
		// Both exact.
		if ewRes.Stats.Results != qtRes.Stats.Results {
			t.Fatalf("result counts differ: %d vs %d", ewRes.Stats.Results, qtRes.Stats.Results)
		}
	}
	if qtCand > ewCand {
		t.Logf("note: quantile candidates %d > equal-width %d on this workload", qtCand, ewCand)
	}
}

// Subsequence search also works through the quantile scheme.
func TestSTFilterQuantileSubsequences(t *testing.T) {
	data := []seq.Sequence{{1, 2, 3, 4, 5}, {9, 1, 2, 3, 9}}
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilterQuantile(db, seq.LInf, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stf.SearchSubsequences(seq.Sequence{1, 2, 3}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int]bool{}
	for _, m := range res.Matches {
		if m.Len == 3 {
			found[[2]int{int(m.ID), m.Offset}] = true
		}
	}
	if !found[[2]int{0, 0}] || !found[[2]int{1, 1}] {
		t.Errorf("occurrences missing: %v", found)
	}
}
