package core

import (
	"fmt"

	"repro/internal/pagefile"
	"repro/internal/rtree"
	"repro/internal/seq"
)

// FeatureIndex is the paper's 4-dimensional index: an R-tree over the
// time-warping-invariant feature vectors
// (First(S), Last(S), Greatest(S), Smallest(S)) with Dtw-lb (= L∞ over
// those vectors) as its distance function (§4.3.1).
type FeatureIndex struct {
	tree *rtree.Tree
}

// Index engine names accepted by IndexOptions.Engine.
const (
	// EngineGuttman is the classic paged Guttman R-tree (the default).
	EngineGuttman = "guttman"
	// EngineFlat is the flat snapshot + delta engine: an immutable packed
	// tree with a mutable overlay and atomic snapshot swap (internal/flatidx).
	EngineFlat = "flat"
)

// IndexOptions configures feature index construction.
type IndexOptions struct {
	// Engine selects the index engine: EngineGuttman (default when empty)
	// or EngineFlat.
	Engine string
	// PageSize is the index page size (0 = pagefile.DefaultPageSize, the
	// paper's 1 KB).
	PageSize int
	// PoolPages is the index buffer pool capacity (0 = 64).
	PoolPages int
	// Split selects the R-tree overflow heuristic.
	Split rtree.SplitStrategy
	// OnDiskPath, when non-empty, stores the index in a page file (guttman)
	// or a CRC-checked snapshot file (flat) at that path instead of in
	// memory.
	OnDiskPath string
	// WrapBackend, when non-nil, wraps the raw page backend before the
	// buffer pool is built on it. Fault-injection tests use it to fail
	// index writes at chosen points. Guttman engine only.
	WrapBackend func(pagefile.Backend) pagefile.Backend
	// FlatMergeThreshold is the flat engine's delta size that schedules a
	// background merge (0 = flatidx.DefaultMergeThreshold, negative
	// disables automatic merging). Ignored by the guttman engine.
	FlatMergeThreshold int
}

func (o IndexOptions) withDefaults() IndexOptions {
	if o.PageSize == 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.PoolPages == 0 {
		o.PoolPages = 64
	}
	return o
}

// NewFeatureIndex creates an empty feature index.
func NewFeatureIndex(opts IndexOptions) (*FeatureIndex, error) {
	opts = opts.withDefaults()
	var backend pagefile.Backend
	if opts.OnDiskPath != "" {
		fb, err := pagefile.CreateFile(opts.OnDiskPath, opts.PageSize)
		if err != nil {
			return nil, err
		}
		backend = fb
	} else {
		backend = pagefile.NewMemBackend(opts.PageSize)
	}
	if opts.WrapBackend != nil {
		backend = opts.WrapBackend(backend)
	}
	pool, err := pagefile.NewPool(backend, opts.PageSize, opts.PoolPages)
	if err != nil {
		backend.Close()
		return nil, err
	}
	tree, err := rtree.Create(pool, 4, rtree.Options{Split: opts.Split})
	if err != nil {
		pool.Close()
		return nil, err
	}
	return &FeatureIndex{tree: tree}, nil
}

// OpenFeatureIndex opens a previously created on-disk feature index.
func OpenFeatureIndex(path string, opts IndexOptions) (*FeatureIndex, error) {
	opts = opts.withDefaults()
	fb, err := pagefile.OpenFile(path)
	if err != nil {
		return nil, err
	}
	var backend pagefile.Backend = fb
	if opts.WrapBackend != nil {
		backend = opts.WrapBackend(backend)
	}
	pool, err := pagefile.NewPool(backend, fb.PageSize(), opts.PoolPages)
	if err != nil {
		backend.Close()
		return nil, err
	}
	tree, err := rtree.Open(pool, rtree.Options{Split: opts.Split})
	if err != nil {
		pool.Close()
		return nil, err
	}
	if tree.Dim() != 4 {
		tree.Close()
		return nil, fmt.Errorf("core: index at %s has dimension %d, want 4", path, tree.Dim())
	}
	return &FeatureIndex{tree: tree}, nil
}

// Insert adds the entry <Feature(S), ID(S)> for a sequence (§4.3.1).
func (fi *FeatureIndex) Insert(id seq.ID, s seq.Sequence) error {
	f, err := seq.ExtractFeature(s)
	if err != nil {
		return err
	}
	return fi.InsertFeature(id, f)
}

// InsertFeature adds the entry <f, id> from a pre-extracted feature vector
// (used by the Open-time reconciliation pass, which has already derived
// features from the heap records).
func (fi *FeatureIndex) InsertFeature(id seq.ID, f seq.Feature) error {
	v := f.Vector()
	return fi.tree.Insert(rtree.NewPoint(v[:]), uint32(id))
}

// Delete removes a sequence's entry, reporting whether it was present.
func (fi *FeatureIndex) Delete(id seq.ID, s seq.Sequence) (bool, error) {
	f, err := seq.ExtractFeature(s)
	if err != nil {
		return false, err
	}
	return fi.DeleteEntry(id, f.Vector())
}

// DeleteEntry removes the entry keyed at exactly the given point. The
// reconciliation pass uses this form to remove dangling or stale entries
// whose stored point no longer matches any live sequence's feature (so the
// point cannot be re-derived from data).
func (fi *FeatureIndex) DeleteEntry(id seq.ID, point [4]float64) (bool, error) {
	return fi.tree.Delete(rtree.NewPoint(point[:]), uint32(id))
}

// IndexEntry is one <point, id> pair stored in the index, as reported by
// Entries.
type IndexEntry struct {
	ID    seq.ID
	Point [4]float64
}

// Entries returns every data entry the index currently holds, in tree
// order. The reconciliation pass diffs this listing against the live heap
// records.
func (fi *FeatureIndex) Entries() ([]IndexEntry, error) {
	var out []IndexEntry
	err := fi.tree.Walk(func(_ int, leaf bool, _ rtree.Rect, entries []rtree.Entry) error {
		if !leaf {
			return nil
		}
		for _, e := range entries {
			var pt [4]float64
			copy(pt[:], e.Rect.Lo)
			out = append(out, IndexEntry{ID: seq.ID(e.Child), Point: pt})
		}
		return nil
	})
	return out, err
}

// BulkLoad builds the index from all (id, feature) pairs at once using STR
// packing. The index must be empty.
func (fi *FeatureIndex) BulkLoad(ids []seq.ID, features []seq.Feature) error {
	if len(ids) != len(features) {
		return fmt.Errorf("core: %d ids but %d features", len(ids), len(features))
	}
	entries := make([]rtree.Entry, len(ids))
	for i := range ids {
		v := features[i].Vector()
		entries[i] = rtree.Entry{Rect: rtree.NewPoint(v[:]), Child: uint32(ids[i])}
	}
	return fi.tree.BulkLoad(entries)
}

// RangeQuery performs the paper's Step-2: a square range query with
// Feature(Q) as the center and ε as the per-dimension half-extent, returning
// candidate sequence IDs. Exactly the sequences with
// Dtw-lb(S,Q) ≤ ε are returned.
func (fi *FeatureIndex) RangeQuery(fq seq.Feature, epsilon float64) ([]seq.ID, error) {
	center := fq.Vector()
	lo := make([]float64, 4)
	hi := make([]float64, 4)
	for i := range center {
		lo[i] = center[i] - epsilon
		hi[i] = center[i] + epsilon
	}
	query, err := rtree.NewRect(lo, hi)
	if err != nil {
		return nil, err
	}
	var ids []seq.ID
	err = fi.tree.Search(query, func(_ rtree.Rect, id uint32) bool {
		ids = append(ids, seq.ID(id))
		return true
	})
	return ids, err
}

// RangeQueryEntries is RangeQuery returning each candidate's stored point
// alongside its ID. The refinement cascade's Tier 0 re-evaluates Dtw-lb
// against these points without fetching the heap record, so the filter
// tolerance and the (possibly tighter) pruning cutoff can diverge for free.
func (fi *FeatureIndex) RangeQueryEntries(fq seq.Feature, epsilon float64) ([]IndexEntry, error) {
	center := fq.Vector()
	lo := make([]float64, 4)
	hi := make([]float64, 4)
	for i := range center {
		lo[i] = center[i] - epsilon
		hi[i] = center[i] + epsilon
	}
	query, err := rtree.NewRect(lo, hi)
	if err != nil {
		return nil, err
	}
	var entries []IndexEntry
	err = fi.tree.Search(query, func(r rtree.Rect, id uint32) bool {
		var pt [4]float64
		copy(pt[:], r.Lo)
		entries = append(entries, IndexEntry{ID: seq.ID(id), Point: pt})
		return true
	})
	return entries, err
}

// NearestWalk streams sequence IDs in non-decreasing Dtw-lb order from the
// query feature. The L∞ norm makes the stream order consistent with the
// lower-bound metric, enabling exact k-NN refinement.
func (fi *FeatureIndex) NearestWalk(fq seq.Feature, fn func(id seq.ID, lowerBound float64) bool) error {
	center := fq.Vector()
	return fi.tree.NearestWalk(center[:], rtree.NormLInf, func(n rtree.Neighbor) bool {
		return fn(seq.ID(n.Entry.Child), n.Dist)
	})
}

// NearestWalkKeyed streams IDs in non-decreasing key order with the
// two-level envelope-sharpened frontier: keys are xform(L∞ mindist) raised
// by sharpen(id) for candidates the callback can bound (the search layer
// resolves envelopes from the EnvStore). With nil sharpen the stream
// reduces to the transformed NearestWalk order.
func (fi *FeatureIndex) NearestWalkKeyed(fq seq.Feature, xform func(float64) float64,
	sharpen func(id seq.ID) float64, fn func(id seq.ID, key float64) bool) (KNNWalkStats, error) {
	center := fq.Vector()
	var sh func(e *rtree.Entry) float64
	if sharpen != nil {
		sh = func(e *rtree.Entry) float64 { return sharpen(seq.ID(e.Child)) }
	}
	ws, err := fi.tree.NearestWalkKeyed(center[:], rtree.NormLInf, xform, sh, func(n rtree.Neighbor) bool {
		return fn(seq.ID(n.Entry.Child), n.Dist)
	})
	return KNNWalkStats{Pushes: ws.Pushes, Repushes: ws.Repushes, EnvStops: ws.EnvStops}, err
}

// Len returns the number of indexed sequences.
func (fi *FeatureIndex) Len() int { return fi.tree.Len() }

// Pages returns the number of pages the index occupies.
func (fi *FeatureIndex) Pages() int { return fi.tree.NodePages() }

// Stats exposes the index buffer pool counters.
func (fi *FeatureIndex) Stats() pagefile.Stats { return fi.tree.Stats() }

// ResetStats zeroes the index buffer pool counters.
func (fi *FeatureIndex) ResetStats() { fi.tree.ResetStats() }

// CheckInvariants validates the stored feature points and the underlying
// R-tree structure. The point check runs first: an entry whose feature is
// not Valid (a NaN or ±Inf component, or Smallest/Greatest out of order)
// is invisible to MBR comparisons — the sequence can never be returned by
// an index query, a silent false dismissal — and it also degrades the
// structural check's MBR arithmetic, so diagnosing it by name beats the
// cryptic rect-mismatch error the tree walk would produce. Databases
// poisoned by non-finite inserts predating input validation surface here.
func (fi *FeatureIndex) CheckInvariants() error {
	entries, err := fi.Entries()
	if err != nil {
		return err
	}
	for _, e := range entries {
		f := seq.Feature{First: e.Point[0], Last: e.Point[1], Greatest: e.Point[2], Smallest: e.Point[3]}
		if !f.Valid() {
			return fmt.Errorf("core: index entry for sequence %d has invalid feature %+v (non-finite or inconsistent); the sequence is unreachable through the index", e.ID, f)
		}
	}
	return fi.tree.CheckInvariants()
}

// Flush persists the index.
func (fi *FeatureIndex) Flush() error { return fi.tree.Flush() }

// Close flushes and releases the index.
func (fi *FeatureIndex) Close() error { return fi.tree.Close() }
