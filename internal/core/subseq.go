package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dtw"
	"repro/internal/pagefile"
	"repro/internal/rtree"
	"repro/internal/seq"
	"repro/internal/seqdb"
)

// SubseqIndex implements the paper's §6 subsequence-matching extension: "It
// builds the same index on the feature vectors from subsequences rather
// than whole sequences. It also applies the same algorithm for query
// processing."
//
// The index enumerates sliding windows of the configured lengths (advanced
// by Step) over every data sequence and inserts each window's 4-tuple
// feature vector. A range query with tolerance ε returns, without false
// dismissal over the indexed window set, every window whose time warping
// distance to the query is at most ε.
type SubseqIndex struct {
	DB   *seqdb.DB
	Base seq.Base

	tree    *rtree.Tree
	windows []windowRef
	lens    []int
	step    int
}

// windowRef locates one indexed window inside its source sequence.
type windowRef struct {
	id     seq.ID
	offset int32
	length int32
}

// SubMatch is one qualifying subsequence.
type SubMatch struct {
	ID     seq.ID  // source sequence
	Offset int     // window start within the source
	Len    int     // window length
	Dist   float64 // exact time warping distance to the query
}

// SubseqResult carries subsequence matches and query statistics.
type SubseqResult struct {
	Matches []SubMatch
	Stats   QueryStats
}

// BuildSubseqIndex indexes sliding windows of each length in windowLens
// (advanced by step positions; step 0 means 1) over every sequence in db.
func BuildSubseqIndex(db *seqdb.DB, base seq.Base, windowLens []int, step int) (*SubseqIndex, error) {
	if len(windowLens) == 0 {
		return nil, fmt.Errorf("core: no window lengths given")
	}
	for _, w := range windowLens {
		if w < 1 {
			return nil, fmt.Errorf("core: invalid window length %d", w)
		}
	}
	if step <= 0 {
		step = 1
	}
	pool, err := pagefile.NewPool(pagefile.NewMemBackend(pagefile.DefaultPageSize),
		pagefile.DefaultPageSize, 64)
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Create(pool, 4, rtree.Options{})
	if err != nil {
		pool.Close()
		return nil, err
	}
	si := &SubseqIndex{
		DB:   db,
		Base: base,
		tree: tree,
		lens: append([]int(nil), windowLens...),
		step: step,
	}
	var entries []rtree.Entry
	err = db.Scan(func(id seq.ID, s seq.Sequence) error {
		for _, w := range windowLens {
			for off := 0; off+w <= len(s); off += step {
				f, err := seq.ExtractFeature(s[off : off+w])
				if err != nil {
					return err
				}
				ref := windowRef{id: id, offset: int32(off), length: int32(w)}
				v := f.Vector()
				entries = append(entries, rtree.Entry{
					Rect:  rtree.NewPoint(v[:]),
					Child: uint32(len(si.windows)),
				})
				si.windows = append(si.windows, ref)
			}
		}
		return nil
	})
	if err != nil {
		tree.Close()
		return nil, err
	}
	if err := tree.BulkLoad(entries); err != nil {
		tree.Close()
		return nil, err
	}
	return si, nil
}

// NumWindows returns the number of indexed windows.
func (si *SubseqIndex) NumWindows() int { return len(si.windows) }

// WindowLengths returns the indexed window lengths.
func (si *SubseqIndex) WindowLengths() []int { return append([]int(nil), si.lens...) }

// Search returns every indexed window whose time warping distance to q is
// at most epsilon, sorted by distance (then source id, then offset).
func (si *SubseqIndex) Search(q seq.Sequence, epsilon float64) (*SubseqResult, error) {
	if q.Empty() {
		return nil, seq.ErrEmpty
	}
	start := time.Now()
	fq, err := seq.ExtractFeature(q)
	if err != nil {
		return nil, err
	}
	center := fq.Vector()
	lo := make([]float64, 4)
	hi := make([]float64, 4)
	for i := range center {
		lo[i] = center[i] - epsilon
		hi[i] = center[i] + epsilon
	}
	query, err := rtree.NewRect(lo, hi)
	if err != nil {
		return nil, err
	}
	res := &SubseqResult{}
	var candidates []windowRef
	if err := si.tree.Search(query, func(_ rtree.Rect, wid uint32) bool {
		candidates = append(candidates, si.windows[wid])
		return true
	}); err != nil {
		return nil, err
	}
	res.Stats.Candidates = len(candidates)

	// Refine, fetching each source sequence once per contiguous candidate
	// group (candidates are grouped by sequence to bound Get calls).
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].id != candidates[j].id {
			return candidates[i].id < candidates[j].id
		}
		if candidates[i].offset != candidates[j].offset {
			return candidates[i].offset < candidates[j].offset
		}
		return candidates[i].length < candidates[j].length
	})
	var cur seq.Sequence
	curID := seq.InvalidID
	for _, ref := range candidates {
		if ref.id != curID {
			s, err := si.DB.Get(ref.id)
			if err != nil {
				return nil, err
			}
			cur, curID = s, ref.id
		}
		window := cur[ref.offset : ref.offset+ref.length]
		res.Stats.DTWCalls++
		if d, ok := dtw.DistanceWithin(window, q, si.Base, epsilon); ok {
			res.Matches = append(res.Matches, SubMatch{
				ID:     ref.id,
				Offset: int(ref.offset),
				Len:    int(ref.length),
				Dist:   d,
			})
		}
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		a, b := res.Matches[i], res.Matches[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Offset < b.Offset
	})
	res.Stats.Results = len(res.Matches)
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// Close releases the index.
func (si *SubseqIndex) Close() error { return si.tree.Close() }
