package core

import (
	"math/rand"
	"testing"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/synth"
)

// The ST-Filter subsequence search must find exactly the substrings (any
// offset, any length) within tolerance — verified against brute force.
func TestSTFilterSubsequencesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := synth.RandomWalkSetVaryLen(rng, 15, 10, 25)
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 30)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		id      seq.ID
		off, ln int
	}
	for trial := 0; trial < 8; trial++ {
		q := synth.Query(rng, data)
		if len(q) > 8 {
			q = q[:8]
		}
		eps := 0.05 + rng.Float64()*0.25
		want := map[key]float64{}
		for i, s := range data {
			for off := 0; off < len(s); off++ {
				for ln := 1; off+ln <= len(s); ln++ {
					d := dtw.Distance(s[off:off+ln], q, seq.LInf)
					if d <= eps {
						want[key{seq.ID(i), off, ln}] = d
					}
				}
			}
		}
		res, err := stf.SearchSubsequences(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != len(want) {
			t.Fatalf("trial %d eps %g: %d matches, want %d", trial, eps, len(res.Matches), len(want))
		}
		for _, m := range res.Matches {
			d, ok := want[key{m.ID, m.Offset, m.Len}]
			if !ok {
				t.Fatalf("unexpected match %+v", m)
			}
			if d != m.Dist {
				t.Fatalf("match %+v: dist %g, want %g", m, m.Dist, d)
			}
		}
	}
}

func TestSTFilterSubsequencesEmptyQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	data := synth.RandomWalkSet(rng, 5, 15)
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stf.SearchSubsequences(nil, 1); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSTFilterSubsequencesFindsPlantedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pattern := seq.Sequence{2, 8, 2, 8, 2}
	var data []seq.Sequence
	for i := 0; i < 10; i++ {
		s := synth.RandomWalk(rng, 60)
		if i == 4 {
			copy(s[30:], pattern)
		}
		data = append(data, s)
	}
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stf.SearchSubsequences(pattern, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.Matches {
		if m.ID == 4 && m.Offset == 30 && m.Len == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted pattern not located; matches: %+v", res.Matches)
	}
}

// The subsequence search via the suffix tree and via the window feature
// index must agree on the window lengths both cover.
func TestSTFilterAndSubseqIndexAgreeOnCommonLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	data := synth.RandomWalkSetVaryLen(rng, 10, 15, 25)
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 40)
	if err != nil {
		t.Fatal(err)
	}
	si, err := BuildSubseqIndex(db, seq.LInf, []int{6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	for trial := 0; trial < 5; trial++ {
		q := synth.Query(rng, data)[:6]
		eps := 0.1 + rng.Float64()*0.2
		stRes, err := stf.SearchSubsequences(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		siRes, err := si.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		type key struct {
			id      seq.ID
			off, ln int
		}
		st := map[key]bool{}
		for _, m := range stRes.Matches {
			if m.Len == 6 {
				st[key{m.ID, m.Offset, m.Len}] = true
			}
		}
		wi := map[key]bool{}
		for _, m := range siRes.Matches {
			wi[key{m.ID, m.Offset, m.Len}] = true
		}
		if len(st) != len(wi) {
			t.Fatalf("trial %d: suffix tree found %d length-6 windows, feature index %d",
				trial, len(st), len(wi))
		}
		for k := range st {
			if !wi[k] {
				t.Fatalf("window %+v found by suffix tree only", k)
			}
		}
	}
}

func TestOccurrencesMappingViaSearch(t *testing.T) {
	// Two sequences sharing a common prefix: subsequence search for that
	// prefix must report occurrences in both.
	data := []seq.Sequence{
		{1, 2, 3, 9, 9},
		{1, 2, 3, 4, 4},
		{7, 7, 1, 2, 3},
	}
	db, _ := buildFixture(t, data)
	stf, err := BuildSTFilter(db, seq.LInf, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stf.SearchSubsequences(seq.Sequence{1, 2, 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]bool{}
	for _, m := range res.Matches {
		if m.Len == 3 {
			got[[2]int{int(m.ID), m.Offset}] = true
		}
	}
	for _, want := range [][2]int{{0, 0}, {1, 0}, {2, 2}} {
		if !got[want] {
			t.Errorf("occurrence %v not found (got %v)", want, got)
		}
	}
}
