package core

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/synth"
)

// The cascade is an optimization, not a semantics change: with and without
// it, every search method must return bit-identical matches (same IDs, same
// float64 distances) on length-mismatched corpora under all three bases.
func TestCascadeOracleBitIdentical(t *testing.T) {
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		t.Run(base.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			data := synth.RandomWalkSetVaryLen(rng, 150, 5, 40)
			db, idx := buildFixture(t, data)
			plain := &TWSimSearch{DB: db, Index: idx, Base: base, NoCascade: true}
			cascaded := &TWSimSearch{DB: db, Index: idx, Base: base}
			// L2Sq distances are squared, so stretch the tolerance ladder.
			epsilons := []float64{0.05, 0.2, 0.5, 1.5}
			if base == seq.L2Sq || base == seq.L1 {
				epsilons = []float64{0.5, 2, 8, 30}
			}
			for qi, q := range synth.Queries(rng, data, 12) {
				for _, eps := range epsilons {
					want, err := plain.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					got, err := cascaded.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if len(got.Matches) != len(want.Matches) {
						t.Fatalf("query %d eps %g: cascade %d matches, plain %d",
							qi, eps, len(got.Matches), len(want.Matches))
					}
					for i := range want.Matches {
						if got.Matches[i] != want.Matches[i] {
							t.Fatalf("query %d eps %g pos %d: cascade %+v, plain %+v",
								qi, eps, i, got.Matches[i], want.Matches[i])
						}
					}
					if got.Stats.Candidates != want.Stats.Candidates {
						t.Fatalf("query %d eps %g: candidate sets differ (%d vs %d)",
							qi, eps, got.Stats.Candidates, want.Stats.Candidates)
					}
				}
			}
		})
	}
}

// k-NN through the cascade must reproduce the plain walk exactly, with and
// without a cross-partition shared bound (the bound evolution is identical
// because every admitted candidate yields the same exact distance).
func TestCascadeNearestKOracle(t *testing.T) {
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		t.Run(base.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			data := synth.RandomWalkSetVaryLen(rng, 120, 5, 35)
			db, idx := buildFixture(t, data)
			plain := &TWSimSearch{DB: db, Index: idx, Base: base, NoCascade: true}
			cascaded := &TWSimSearch{DB: db, Index: idx, Base: base}
			for trial := 0; trial < 10; trial++ {
				q := synth.Query(rng, data)
				k := 1 + rng.Intn(9)
				want, err := plain.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cascaded.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d k=%d: cascade %d, plain %d", trial, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d k=%d pos %d: cascade %+v, plain %+v",
							trial, k, i, got[i], want[i])
					}
				}
				// Same walk under a shared bound seeded by another partition's
				// published k-th best.
				wb, gb := NewSharedBound(), NewSharedBound()
				if len(want) > 0 {
					wb.Update(want[len(want)-1].Dist * 1.5)
					gb.Update(want[len(want)-1].Dist * 1.5)
				}
				wantS, err := plain.NearestKShared(q, k, wb)
				if err != nil {
					t.Fatal(err)
				}
				gotS, err := cascaded.NearestKShared(q, k, gb)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotS) != len(wantS) {
					t.Fatalf("trial %d shared k=%d: cascade %d, plain %d",
						trial, k, len(gotS), len(wantS))
				}
				for i := range wantS {
					if gotS[i] != wantS[i] {
						t.Fatalf("trial %d shared pos %d: cascade %+v, plain %+v",
							trial, i, gotS[i], wantS[i])
					}
				}
			}
		})
	}
}

// Conservation of candidates: every index candidate is dismissed by exactly
// one tier or runs the DP, so the per-tier counters partition the candidate
// count. This is the accounting contract the benchmarks and /stats rely on.
func TestCascadeCounterConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := synth.RandomWalkSetVaryLen(rng, 200, 8, 40)
	db, idx := buildFixture(t, data)
	tw := &TWSimSearch{DB: db, Index: idx, Base: seq.LInf}
	for trial := 0; trial < 10; trial++ {
		q := synth.Query(rng, data)
		eps := 0.05 + rng.Float64()*0.5
		res, err := tw.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		pruned := st.LBKimPruned + st.LBKeoghPruned + st.LBYiPruned + st.CorridorPruned
		if pruned+st.DTWCalls != st.Candidates {
			t.Fatalf("trial %d: tiers %d + dtw %d != candidates %d (%+v)",
				trial, pruned, st.DTWCalls, st.Candidates, st)
		}
		if st.DTWAbandoned > st.DTWCalls {
			t.Fatalf("trial %d: abandoned %d > calls %d", trial, st.DTWAbandoned, st.DTWCalls)
		}
		if st.Results+st.DTWAbandoned != st.DTWCalls {
			t.Fatalf("trial %d: results %d + abandoned %d != dtw calls %d",
				trial, st.Results, st.DTWAbandoned, st.DTWCalls)
		}
	}
}

// Dangling index entries (heap record deleted behind the index's back, as an
// interrupted write leaves them) must be skipped without touching DTWCalls:
// the counter reflects only DP invocations that actually ran.
func TestDanglingEntriesNotCountedAsDTWCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := synth.RandomWalkSet(rng, 50, 20)
	db, idx := buildFixture(t, data)
	// Tombstone 10 heap records directly, leaving their index entries in
	// place — exactly the state an interrupted write leaves behind.
	const dangling = 10
	for i := 0; i < dangling; i++ {
		if _, err := db.Delete(seq.ID(i * 5)); err != nil {
			t.Fatal(err)
		}
	}
	q := synth.Query(rng, data)
	const eps = 1e9 // admit everything: no tier can prune at this tolerance
	for _, noCascade := range []bool{true, false} {
		tw := &TWSimSearch{DB: db, Index: idx, Base: seq.LInf, NoCascade: noCascade}
		res, err := tw.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if st.Candidates != 50 {
			t.Fatalf("noCascade=%v: candidates %d, want 50 (index untouched)", noCascade, st.Candidates)
		}
		pruned := st.LBKimPruned + st.LBKeoghPruned + st.LBYiPruned + st.CorridorPruned
		if pruned != 0 {
			t.Fatalf("noCascade=%v: %d tier prunes at eps=%g", noCascade, pruned, eps)
		}
		if st.DTWCalls != 50-dangling {
			t.Fatalf("noCascade=%v: DTWCalls %d, want %d (dangling entries must not count)",
				noCascade, st.DTWCalls, 50-dangling)
		}
		if len(res.Matches) != 50-dangling {
			t.Fatalf("noCascade=%v: %d matches, want %d", noCascade, len(res.Matches), 50-dangling)
		}
		for _, m := range res.Matches {
			if m.ID%5 == 0 && int(m.ID) < dangling*5 {
				t.Fatalf("noCascade=%v: deleted sequence %d resurfaced", noCascade, m.ID)
			}
		}
	}
}
