package core

import (
	"math"

	"repro/internal/dtw"
	"repro/internal/seq"
)

// cascade is the tiered filter-and-refine engine every exact search method
// funnels candidates through. Tiers run cheapest first, and each one is a
// true lower bound of the distance being answered — the unconstrained time
// warping distance by default, or BandDistance when the query carries a
// Sakoe–Chiba band — so a dismissal at any tier can never be a false
// dismissal (the guarantee the paper's Theorem 1 establishes for the index
// filter extends to every tier):
//
//	Tier 0    admitPoint    — LB_Kim on the stored index 4-tuple, no heap fetch
//	Tier 0.5  admitEnvelope — LB_PAA on the stored PAA envelope (EnvStore),
//	                          still before any heap fetch
//	Tier 1a   verify        — LB_Keogh: the banded envelope when the query
//	                          has a band and the lengths match (sound for
//	                          BandDistance), else the global envelope (the
//	                          S-side of LB_Yi, sound for both distances)
//	Tier 1b   verify        — the completed two-sided LB_Yi
//	Tier 1c   verify        — the second pass of Lemire's LB_Improved
//	                          (banded equal-length queries only)
//	Tier 2–3  verify        — the exact DP: the sparse alive-run corridor
//	                          (dtw.Refiner) for unconstrained queries, the
//	                          early-abandoning banded DP for banded ones
//
// Every unconstrained bound stays sound for banded queries because a band
// only removes permissible warpings: BandDistance ≥ Distance ≥ each bound.
//
// The cutoff is the query tolerance for range search and the shrinking
// k-th-best bound for k-NN (including the cross-shard SharedBound), so the
// tiers tighten as a k-NN search proceeds.
//
// A cascade holds a pooled dtw.Refiner; build one per query with newCascade
// and close it when the query completes. Not safe for concurrent use.
type cascade struct {
	// paaPruner carries q, base, band, and the cached query-side PAA
	// reductions; embedding it gives the cascade Tier 0.5 and lets the
	// flat engine's envelope-tight walk share the identical bound (see
	// newPAAPruner).
	paaPruner
	fq       [4]float64
	fqOK     bool
	env      dtw.Envelope // global envelope: sound for every query
	bandEnv  dtw.Envelope // banded envelope of q; built only when band ≥ 1
	envs     *EnvStore
	impr     dtw.ImprovedScratch
	refiner  *dtw.Refiner
	disabled bool
}

// paaPruner is the query-side state of the LB_PAA bound, shared between the
// cascade's Tier 0.5 and the flat engine's envelope-tight index walk. The
// two call sites evaluating the same pruner on the same envelope compute
// bit-identical bounds, which is what keeps the engines' query results (and
// the conservation law) independent of where the pruning happens. Not safe
// for concurrent use (the cached reductions fill lazily).
type paaPruner struct {
	q    seq.Sequence
	base seq.Base
	// band is the Sakoe–Chiba half-width the query searches under: 0 means
	// the paper's unconstrained distance, ≥ 1 answers dtw.BandDistance.
	band int
	paa  paaQuery
}

// newPAAPruner builds a standalone pruner for the index walk — the cheap
// subset of newCascade (no envelopes, no refiner pool round-trip).
func newPAAPruner(q seq.Sequence, base seq.Base, band int) *paaPruner {
	if band < 0 {
		band = 0
	}
	return &paaPruner{q: q, base: base, band: band}
}

// paaQuery caches the query-side reductions LB_PAA needs: the global range
// of Q (any length, any band) and, for banded equal-length candidates, the
// per-segment min/max of Q over band-expanded segment windows. Both are
// computed once per query, on first use.
type paaQuery struct {
	qMin, qMax     float64
	globalReady    bool
	segMin, segMax [seq.PAASegments]float64
	segReady       bool
}

// newCascade prepares the per-query state: the query feature vector
// (Tier 0), the envelopes (Tiers 0.5–1c, computed once per query), and a
// pooled refiner (Tiers 2–3). band ≥ 1 switches the exact distance to
// dtw.BandDistance with that half-width; envs enables the pre-fetch LB_PAA
// tier. With disabled=true every candidate goes straight to the exact DP —
// the seed's behavior, kept for benchmarks and oracle tests (the band still
// applies: a disabled banded cascade is the brute-force banded scan).
func newCascade(q seq.Sequence, base seq.Base, band int, envs *EnvStore, disabled bool) *cascade {
	if band < 0 {
		band = 0 // public layers validate; never let a bad band weaken a bound
	}
	c := &cascade{paaPruner: paaPruner{q: q, base: base, band: band}, envs: envs, disabled: disabled}
	if disabled {
		return c
	}
	if f, err := seq.ExtractFeature(q); err == nil {
		c.fq = f.Vector()
		c.fqOK = true
	}
	c.env = dtw.GlobalEnvelope(q)
	if band >= 1 {
		c.bandEnv = dtw.NewEnvelope(q, band)
	}
	c.refiner = dtw.AcquireRefiner()
	return c
}

func (c *cascade) close() {
	if c.refiner != nil {
		c.refiner.Release()
		c.refiner = nil
	}
}

// dtwBand returns the band in dtw-package convention: negative for the
// unconstrained distance, the half-width otherwise.
func (c *cascade) dtwBand() int {
	if c.band >= 1 {
		return c.band
	}
	return -1
}

// exactDistance is the distance the query answers: BandDistance for banded
// queries, the paper's unconstrained distance otherwise. k-NN uses it while
// the cutoff is still infinite.
func (c *cascade) exactDistance(s seq.Sequence) float64 {
	if c.band >= 1 {
		return dtw.BandDistance(s, c.q, c.base, c.band)
	}
	return dtw.Distance(s, c.q, c.base)
}

// admitPoint is Tier 0: LB_Kim evaluated between the query feature and a
// candidate's stored index point — no heap fetch needed. Sound per
// Theorem 1 (L∞ base) and because every feature difference is bounded by
// some single matched-pair cost on any warping path (L1); for L2Sq that
// single pair contributes its square to the additive total, so the bound
// must be squared before comparing. Banded queries change nothing here:
// LB_Kim ≤ Distance ≤ BandDistance.
func (c *cascade) admitPoint(pt [4]float64, cutoff float64, stats *QueryStats) bool {
	if c.disabled || !c.fqOK || math.IsInf(cutoff, 1) {
		return true
	}
	lb := 0.0
	for i := range pt {
		d := pt[i] - c.fq[i]
		if d < 0 {
			d = -d
		}
		if d > lb {
			lb = d
		}
	}
	if c.base == seq.L2Sq {
		lb = lb * lb
	}
	if lb > cutoff {
		stats.LBKimPruned++
		return false
	}
	return true
}

// admitEnvelope is Tier 0.5: LB_PAA evaluated between the query and the
// candidate's stored PAA envelope — still before any heap fetch. Candidates
// without a stored envelope pass through unharmed.
func (c *cascade) admitEnvelope(id seq.ID, cutoff float64, stats *QueryStats) bool {
	if c.disabled || c.envs == nil || len(c.q) == 0 || math.IsInf(cutoff, 1) {
		return true
	}
	pe, ok := c.envs.Get(id)
	if !ok {
		return true
	}
	if c.lbPAA(&pe) > cutoff {
		stats.LBPAAPruned++
		return false
	}
	return true
}

// lbPAA computes the LB_PAA bound between the query and one stored record
// profile. For a banded query over an equal-length record, segment k's
// elements s_i (i ∈ [lo_k, hi_k)) can only match q_j with |i−j| ≤ band, so
// every matched element lies in Q's band-expanded segment window
// [lo_k−band, hi_k−1+band]; the per-element cost is at least the interval
// gap between the record's segment range and that window's range. In every
// other case the window degrades to Q's global range — each element of S
// matches *some* element of Q (a segment-wise refinement of the S-side of
// LB_Yi), sound for the unconstrained distance and therefore for the banded
// one too. Additive bases sum weight·Elem(0, gap) over segments (each
// element is matched at least once); L∞ takes the max over non-empty
// segments. Either way LB_PAA ≤ LB_Keogh of the corresponding envelope, so
// the tier ordering is monotone.
func (c *paaPruner) lbPAA(pe *seq.PAAEnvelope) float64 {
	banded := c.band >= 1 && pe.Len == len(c.q)
	if banded {
		c.ensureSegWindows()
	} else {
		c.ensureGlobalRange()
	}
	if c.base == seq.LInf {
		max := 0.0
		for k := 0; k < seq.PAASegments; k++ {
			lo, hi := seq.PAABounds(pe.Len, k)
			if lo >= hi {
				continue
			}
			qlo, qhi := c.paaWindow(banded, k)
			if g := intervalGap(pe.Min[k], pe.Max[k], qlo, qhi); g > max {
				max = g
			}
		}
		return max
	}
	acc := 0.0
	for k := 0; k < seq.PAASegments; k++ {
		lo, hi := seq.PAABounds(pe.Len, k)
		if lo >= hi {
			continue
		}
		qlo, qhi := c.paaWindow(banded, k)
		if g := intervalGap(pe.Min[k], pe.Max[k], qlo, qhi); g > 0 {
			acc += float64(hi-lo) * c.base.Elem(0, g)
		}
	}
	return acc
}

func (c *paaPruner) paaWindow(banded bool, k int) (float64, float64) {
	if banded {
		return c.paa.segMin[k], c.paa.segMax[k]
	}
	return c.paa.qMin, c.paa.qMax
}

func (c *paaPruner) ensureGlobalRange() {
	if c.paa.globalReady {
		return
	}
	c.paa.qMin, c.paa.qMax = c.q.MinMax()
	c.paa.globalReady = true
}

func (c *paaPruner) ensureSegWindows() {
	if c.paa.segReady {
		return
	}
	n := len(c.q)
	for k := 0; k < seq.PAASegments; k++ {
		lo, hi := seq.PAABounds(n, k)
		if lo >= hi {
			continue
		}
		wlo, whi := lo-c.band, hi-1+c.band
		if wlo < 0 {
			wlo = 0
		}
		if whi > n-1 {
			whi = n - 1
		}
		mn, mx := c.q[wlo], c.q[wlo]
		for _, v := range c.q[wlo+1 : whi+1] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		c.paa.segMin[k], c.paa.segMax[k] = mn, mx
	}
	c.paa.segReady = true
}

// intervalGap is the smallest distance between a point of [aLo, aHi] and a
// point of [bLo, bHi]: 0 when the intervals overlap.
func intervalGap(aLo, aHi, bLo, bHi float64) float64 {
	switch {
	case aLo > bHi:
		return aLo - bHi
	case bLo > aHi:
		return bLo - aHi
	default:
		return 0
	}
}

// comparableLB converts a raw LB_Kim feature distance into the form
// comparable against a DTW distance under base: for the additive L2Sq base
// the single matched pair the bound describes contributes its squared
// difference, so the comparable bound is the square. Used by the k-NN
// walk-stop test; since x ↦ x² is monotone on the walk's nonnegative
// ascending bounds, the converted stream stays ascending and stopping on
// it is sound.
func comparableLB(base seq.Base, lb float64) float64 {
	if base == seq.L2Sq {
		return lb * lb
	}
	return lb
}

// verify runs Tiers 1–3 on a fetched candidate: it returns (d, true) with
// the exact distance iff the query's distance (banded or unconstrained) is
// ≤ cutoff, bit-identical to the corresponding brute-force DP, while
// attributing each dismissal to the tier that made it. Only real DP
// invocations increment DTWCalls.
func (c *cascade) verify(s seq.Sequence, cutoff float64, stats *QueryStats) (float64, bool) {
	if c.disabled || s.Empty() {
		// No range to bound against; the DP handles the degenerate case with
		// its own empty-input convention.
		return c.verifyDP(s, cutoff, stats)
	}
	if c.band >= 1 && len(s) == len(c.q) {
		return c.verifyBanded(s, cutoff, stats)
	}
	// Tier 1a: the S-side of LB_Yi via the global envelope — O(|S|), no
	// min/max of s needed yet. Sound for banded queries too (the global
	// envelope bounds the unconstrained distance, which BandDistance
	// dominates); LBKeoghSafe can only fail on a banded envelope, which this
	// call never passes.
	kS, err := dtw.LBKeoghSafe(s, c.env, c.base, -1)
	if err != nil {
		kS = 0
	}
	if kS > cutoff {
		stats.LBKeoghPruned++
		return dtw.Inf, false
	}
	// Tier 1b: complete the two-sided Yi et al. bound with the Q-side.
	if c.yiComplete(s, kS) > cutoff {
		stats.LBYiPruned++
		return dtw.Inf, false
	}
	return c.verifyDP(s, cutoff, stats)
}

// verifyBanded is the equal-length banded tier chain: banded LB_Keogh,
// the two-sided Yi bound seeded with it, then LB_Improved's second pass.
// The band and lengths are matched by construction, so the safe router
// cannot fail here; if it ever did, the tier degrades to the vacuous bound
// rather than pruning on an unsound value.
func (c *cascade) verifyBanded(s seq.Sequence, cutoff float64, stats *QueryStats) (float64, bool) {
	// Tier 1a: banded LB_Keogh — sound for BandDistance with this exact
	// band (Keogh's theorem; see LBKeoghSafe for the routing rules).
	kB, err := dtw.LBKeoghSafe(s, c.bandEnv, c.base, c.band)
	if err != nil {
		kB = 0
	}
	if kB > cutoff {
		stats.LBKeoghPruned++
		return dtw.Inf, false
	}
	// Tier 1b: the two-sided Yi bound, combined with the banded Keogh value
	// by max — both individually sound for BandDistance, so their max is.
	if c.yiComplete(s, kB) > cutoff {
		stats.LBYiPruned++
		return dtw.Inf, false
	}
	// Tier 1c: Lemire's second pass on top of the banded Keogh value.
	imp := dtw.CombineImproved(kB, dtw.LBImprovedPass2(s, c.q, c.bandEnv, c.base, &c.impr), c.base)
	if imp > cutoff {
		stats.LBImprovedPruned++
		return dtw.Inf, false
	}
	return c.verifyDP(s, cutoff, stats)
}

// Tier identifiers for deferred k-NN resolution: a deferred candidate
// carries the tier that produced its strongest lower bound, so a dismissal
// at resolve time credits the tier that actually proved it (keeping
// Candidates = ΣPruned + DTWCalls exact).
const (
	tierNone = iota
	tierKeogh
	tierYi
	tierImproved
	// tierWalkKey marks a defer key inherited from the index walk — the
	// max of the Tier 0 feature mindist and the Tier 0.5 stored-envelope
	// LB_PAA. Dismissals credit the Tier 0 counter (the two components are
	// not separable at resolve time and Tier 0 is the walk's native bound).
	tierWalkKey
)

// bound runs Tiers 1a–1c on a fetched candidate without the exact DP. It
// returns the strongest lower bound computed and the tier that produced
// it; pruned=true (tier counter incremented) when that bound already
// exceeds cutoff. When pruned=false no counter moves — the caller defers
// the candidate and later either dismisses it (creditTier) or resolves it
// with verifyDP. The tier chain and prune attribution mirror verify /
// verifyBanded exactly.
func (c *cascade) bound(s seq.Sequence, cutoff float64, stats *QueryStats) (lb float64, tier int, pruned bool) {
	if c.disabled || s.Empty() {
		return 0, tierNone, false
	}
	if c.band >= 1 && len(s) == len(c.q) {
		kB, err := dtw.LBKeoghSafe(s, c.bandEnv, c.base, c.band)
		if err != nil {
			kB = 0
		}
		if kB > cutoff {
			stats.LBKeoghPruned++
			return kB, tierKeogh, true
		}
		yi := c.yiComplete(s, kB)
		if yi > cutoff {
			stats.LBYiPruned++
			return yi, tierYi, true
		}
		imp := dtw.CombineImproved(kB, dtw.LBImprovedPass2(s, c.q, c.bandEnv, c.base, &c.impr), c.base)
		if imp > cutoff {
			stats.LBImprovedPruned++
			return imp, tierImproved, true
		}
		// Both yi and imp are sound, so the max is the sharpest defer key.
		if yi > imp {
			return yi, tierYi, false
		}
		return imp, tierImproved, false
	}
	kS, err := dtw.LBKeoghSafe(s, c.env, c.base, -1)
	if err != nil {
		kS = 0
	}
	if kS > cutoff {
		stats.LBKeoghPruned++
		return kS, tierKeogh, true
	}
	yi := c.yiComplete(s, kS)
	if yi > cutoff {
		stats.LBYiPruned++
		return yi, tierYi, true
	}
	return yi, tierYi, false
}

// creditTier attributes a deferred candidate's resolve-time dismissal to
// the tier whose bound proved it.
func creditTier(tier int, stats *QueryStats) {
	switch tier {
	case tierKeogh:
		stats.LBKeoghPruned++
	case tierYi:
		stats.LBYiPruned++
	case tierImproved:
		stats.LBImprovedPruned++
	case tierWalkKey:
		stats.LBKimPruned++
	default:
		// tierNone bounds are 0 and can never exceed a nonnegative cutoff;
		// defensive: attribute to the corridor, which verifyDP owns.
		stats.CorridorPruned++
	}
}

// verifyDP runs only Tiers 2–3 (the exact DP). LB-Scan uses this directly:
// its own LB_Yi filter already ran, so re-running Tier 1 would double-count
// work without pruning anything new. Unconstrained queries use the fused
// sparse corridor; banded queries run the early-abandoning banded DP — the
// corridor computes the unconstrained distance, which is not the value a
// banded query answers, and the band already restricts each DP row to
// O(band) cells.
func (c *cascade) verifyDP(s seq.Sequence, cutoff float64, stats *QueryStats) (float64, bool) {
	if c.band >= 1 {
		stats.DTWCalls++
		d, ok := dtw.BandDistanceWithin(s, c.q, c.base, c.band, cutoff)
		if !ok {
			stats.DTWAbandoned++
		}
		return d, ok
	}
	if c.disabled {
		stats.DTWCalls++
		d, ok := dtw.DistanceWithin(s, c.q, c.base, cutoff)
		if !ok {
			stats.DTWAbandoned++
		}
		return d, ok
	}
	d, verdict := c.refiner.DistanceWithin(s, c.q, c.base, cutoff)
	switch verdict {
	case dtw.VerdictPruned:
		stats.CorridorPruned++
		return dtw.Inf, false
	case dtw.VerdictAbandoned:
		stats.DTWCalls++
		stats.DTWAbandoned++
		return dtw.Inf, false
	default:
		stats.DTWCalls++
		return d, true
	}
}

// yiComplete finishes LB_Yi given the already-computed S-side: it scans q
// against the range of s and combines per the base. Seeded with the global
// Keogh value the combined value equals dtw.LBYi(s, q, base) exactly — the
// two-pass split changes the evaluation order, not the bound. Seeded with
// the banded Keogh value it is max(banded Keogh, Q-side Yi), a sound bound
// of BandDistance because each part is.
func (c *cascade) yiComplete(s seq.Sequence, kS float64) float64 {
	sMin, sMax := s.MinMax()
	if c.base == seq.LInf {
		max := kS
		for _, v := range c.q {
			if d := seq.DistToRange(v, sMin, sMax); d > max {
				max = d
			}
		}
		return max
	}
	sumQ := 0.0
	for _, v := range c.q {
		sumQ += c.base.Elem(0, seq.DistToRange(v, sMin, sMax))
	}
	return math.Max(kS, sumQ)
}
