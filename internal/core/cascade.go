package core

import (
	"math"

	"repro/internal/dtw"
	"repro/internal/seq"
)

// cascade is the tiered filter-and-refine engine every exact search method
// funnels candidates through. Tiers run cheapest first, and each one is a
// true lower bound of the unconstrained time warping distance, so a
// dismissal at any tier can never be a false dismissal (the guarantee the
// paper's Theorem 1 establishes for the index filter extends to every tier):
//
//	Tier 0  admitPoint — LB_Kim on the stored index 4-tuple, no heap fetch
//	Tier 1  verify     — LB_Keogh vs. the per-query global envelope (the
//	                     S-side of LB_Yi), then the completed two-sided LB_Yi
//	Tier 2  verify     — the sparse alive-run corridor (dtw.Refiner), which
//	                     proves Dtw > cutoff while visiting only the cells
//	                     whose exact DP value stays within the cutoff
//	Tier 3  verify     — the exact distance, produced by the same fused
//	                     pass when the corridor survives to the final cell
//
// The cutoff is the query tolerance for range search and the shrinking
// k-th-best bound for k-NN (including the cross-shard SharedBound), so the
// tiers tighten as a k-NN search proceeds.
//
// A cascade holds a pooled dtw.Refiner; build one per query with newCascade
// and close it when the query completes. Not safe for concurrent use.
type cascade struct {
	q        seq.Sequence
	base     seq.Base
	fq       [4]float64
	fqOK     bool
	env      dtw.Envelope
	refiner  *dtw.Refiner
	disabled bool
}

// newCascade prepares the per-query state: the query feature vector
// (Tier 0), the global envelope (Tier 1, computed once per query), and a
// pooled refiner (Tiers 2–3). With disabled=true every candidate goes
// straight to the exact DP — the seed's behavior, kept for benchmarks and
// oracle tests.
func newCascade(q seq.Sequence, base seq.Base, disabled bool) *cascade {
	c := &cascade{q: q, base: base, disabled: disabled}
	if disabled {
		return c
	}
	if f, err := seq.ExtractFeature(q); err == nil {
		c.fq = f.Vector()
		c.fqOK = true
	}
	c.env = dtw.GlobalEnvelope(q)
	c.refiner = dtw.AcquireRefiner()
	return c
}

func (c *cascade) close() {
	if c.refiner != nil {
		c.refiner.Release()
		c.refiner = nil
	}
}

// admitPoint is Tier 0: LB_Kim evaluated between the query feature and a
// candidate's stored index point — no heap fetch needed. Sound per
// Theorem 1 (L∞ base) and because every feature difference is bounded by
// some single matched-pair cost on any warping path (L1); for L2Sq that
// single pair contributes its square to the additive total, so the bound
// must be squared before comparing.
func (c *cascade) admitPoint(pt [4]float64, cutoff float64, stats *QueryStats) bool {
	if c.disabled || !c.fqOK || math.IsInf(cutoff, 1) {
		return true
	}
	lb := 0.0
	for i := range pt {
		d := pt[i] - c.fq[i]
		if d < 0 {
			d = -d
		}
		if d > lb {
			lb = d
		}
	}
	if c.base == seq.L2Sq {
		lb = lb * lb
	}
	if lb > cutoff {
		stats.LBKimPruned++
		return false
	}
	return true
}

// comparableLB converts a raw LB_Kim feature distance into the form
// comparable against a DTW distance under base: for the additive L2Sq base
// the single matched pair the bound describes contributes its squared
// difference, so the comparable bound is the square. Used by the k-NN
// walk-stop test; since x ↦ x² is monotone on the walk's nonnegative
// ascending bounds, the converted stream stays ascending and stopping on
// it is sound.
func comparableLB(base seq.Base, lb float64) float64 {
	if base == seq.L2Sq {
		return lb * lb
	}
	return lb
}

// verify runs Tiers 1–3 on a fetched candidate: it returns (d, true) with
// the exact distance iff Dtw(s, q) ≤ cutoff, bit-identical to
// dtw.DistanceWithin, while attributing each dismissal to the tier that
// made it. Only real DP invocations increment DTWCalls.
func (c *cascade) verify(s seq.Sequence, cutoff float64, stats *QueryStats) (float64, bool) {
	if c.disabled {
		stats.DTWCalls++
		d, ok := dtw.DistanceWithin(s, c.q, c.base, cutoff)
		if !ok {
			stats.DTWAbandoned++
		}
		return d, ok
	}
	if s.Empty() {
		// No range to bound against; the refiner handles the degenerate
		// case with the DP's own empty-input convention.
		return c.verifyDP(s, cutoff, stats)
	}
	// Tier 1a: the S-side of LB_Yi via the global envelope — O(|S|), no
	// min/max of s needed yet.
	kS := dtw.LBKeoghSafe(s, c.env, c.base)
	if kS > cutoff {
		stats.LBKeoghPruned++
		return dtw.Inf, false
	}
	// Tier 1b: complete the two-sided Yi et al. bound with the Q-side.
	if c.yiComplete(s, kS) > cutoff {
		stats.LBYiPruned++
		return dtw.Inf, false
	}
	return c.verifyDP(s, cutoff, stats)
}

// verifyDP runs only Tiers 2–3 (the fused sparse DP). LB-Scan uses
// this directly: its own LB_Yi filter already ran, so re-running Tier 1
// would double-count work without pruning anything new.
func (c *cascade) verifyDP(s seq.Sequence, cutoff float64, stats *QueryStats) (float64, bool) {
	if c.disabled {
		stats.DTWCalls++
		d, ok := dtw.DistanceWithin(s, c.q, c.base, cutoff)
		if !ok {
			stats.DTWAbandoned++
		}
		return d, ok
	}
	d, verdict := c.refiner.DistanceWithin(s, c.q, c.base, cutoff)
	switch verdict {
	case dtw.VerdictPruned:
		stats.CorridorPruned++
		return dtw.Inf, false
	case dtw.VerdictAbandoned:
		stats.DTWCalls++
		stats.DTWAbandoned++
		return dtw.Inf, false
	default:
		stats.DTWCalls++
		return d, true
	}
}

// yiComplete finishes LB_Yi given the already-computed S-side: it scans q
// against the range of s and combines per the base. The combined value
// equals dtw.LBYi(s, q, base) exactly — the two-pass split changes the
// evaluation order of Lemire's two passes, not the bound.
func (c *cascade) yiComplete(s seq.Sequence, kS float64) float64 {
	sMin, sMax := s.MinMax()
	if c.base == seq.LInf {
		max := kS
		for _, v := range c.q {
			if d := seq.DistToRange(v, sMin, sMax); d > max {
				max = d
			}
		}
		return max
	}
	sumQ := 0.0
	for _, v := range c.q {
		sumQ += c.base.Elem(0, seq.DistToRange(v, sMin, sMax))
	}
	return math.Max(kS, sumQ)
}
