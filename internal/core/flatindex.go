package core

import (
	"fmt"

	"repro/internal/flatidx"
	"repro/internal/pagefile"
	"repro/internal/seq"
)

// FlatIndex adapts the flat snapshot + delta engine (internal/flatidx) to
// the Index seam. Where the Guttman engine pays a page-pool round-trip and
// pointer chase per node, the flat engine walks one contiguous slab with
// implicit child offsets: reads are lock-free and allocation-free, writes
// land in a small delta, and a background merge repacks the slab and swaps
// it in atomically.
//
// The flat engine also stores each sequence's 16-segment PAA envelope next
// to its leaf entry (when provided), so range filtering is envelope-tight
// in the walk itself — the Keogh "exact indexing" move, one layer below
// the refine cascade.
type FlatIndex struct {
	idx      *flatidx.Index
	path     string // snapshot file; "" for memory-only
	pageSize int    // page-equivalent unit for Pages()
}

// NewFlatIndex creates an empty flat index. With OnDiskPath set, Flush and
// Close persist the packed snapshot there as a single CRC-checked file.
func NewFlatIndex(opts IndexOptions) (*FlatIndex, error) {
	opts = opts.withDefaults()
	return &FlatIndex{
		idx:      flatidx.New(flatidx.Options{MergeThreshold: opts.FlatMergeThreshold}),
		path:     opts.OnDiskPath,
		pageSize: opts.PageSize,
	}, nil
}

// OpenFlatIndex loads a persisted snapshot file. Corruption (bad CRC,
// structural damage) is an error; callers rebuild from the heap.
func OpenFlatIndex(path string, opts IndexOptions) (*FlatIndex, error) {
	opts = opts.withDefaults()
	idx, err := flatidx.Load(path, flatidx.Options{MergeThreshold: opts.FlatMergeThreshold})
	if err != nil {
		return nil, err
	}
	return &FlatIndex{idx: idx, path: path, pageSize: opts.PageSize}, nil
}

// Insert adds the entry <Feature(S), ID(S)>, deriving and storing the PAA
// envelope alongside it so the entry is envelope-tight after the next
// merge.
func (x *FlatIndex) Insert(id seq.ID, s seq.Sequence) error {
	f, err := seq.ExtractFeature(s)
	if err != nil {
		return err
	}
	env, err := seq.ExtractPAAEnvelope(s)
	if err != nil {
		return err
	}
	return x.InsertFeatureEnv(id, f, &env)
}

// InsertFeature adds <f, id> without an envelope (reconciliation path; the
// entry simply never walk-prunes).
func (x *FlatIndex) InsertFeature(id seq.ID, f seq.Feature) error {
	return x.InsertFeatureEnv(id, f, nil)
}

// InsertFeatureEnv adds <f, id> with an optional PAA envelope.
func (x *FlatIndex) InsertFeatureEnv(id seq.ID, f seq.Feature, env *seq.PAAEnvelope) error {
	x.idx.Insert(flatidx.Entry{ID: id, Point: f.Vector()}, env)
	return nil
}

// Delete removes a sequence's entry, reporting whether it was present.
func (x *FlatIndex) Delete(id seq.ID, s seq.Sequence) (bool, error) {
	f, err := seq.ExtractFeature(s)
	if err != nil {
		return false, err
	}
	return x.DeleteEntry(id, f.Vector())
}

// DeleteEntry removes the entry keyed at exactly the given point.
func (x *FlatIndex) DeleteEntry(id seq.ID, point [4]float64) (bool, error) {
	return x.idx.Delete(flatidx.Entry{ID: id, Point: point}), nil
}

// Entries returns every live entry (snapshot minus tombstones plus delta).
func (x *FlatIndex) Entries() ([]IndexEntry, error) {
	flat := x.idx.Entries(nil)
	out := make([]IndexEntry, len(flat))
	for i, e := range flat {
		out[i] = IndexEntry{ID: e.ID, Point: e.Point}
	}
	return out, nil
}

// BulkLoad packs the index from all (id, feature) pairs at once. The index
// must be empty.
func (x *FlatIndex) BulkLoad(ids []seq.ID, features []seq.Feature) error {
	return x.BulkLoadEnv(ids, features, nil)
}

// BulkLoadEnv is BulkLoad with per-sequence PAA envelopes packed into the
// snapshot (envs may be nil, or parallel to ids).
func (x *FlatIndex) BulkLoadEnv(ids []seq.ID, features []seq.Feature, envs []seq.PAAEnvelope) error {
	if len(ids) != len(features) {
		return fmt.Errorf("core: %d ids but %d features", len(ids), len(features))
	}
	if envs != nil && len(envs) != len(ids) {
		return fmt.Errorf("core: %d ids but %d envelopes", len(ids), len(envs))
	}
	entries := make([]flatidx.Entry, len(ids))
	for i := range ids {
		entries[i] = flatidx.Entry{ID: ids[i], Point: features[i].Vector()}
	}
	return x.idx.BulkLoad(entries, envs)
}

// queryRect mirrors FeatureIndex.RangeQuery's rect construction exactly:
// center ± ε per dimension, closed bounds.
func queryRect(fq seq.Feature, epsilon float64) (lo, hi [4]float64) {
	center := fq.Vector()
	for i := range center {
		lo[i] = center[i] - epsilon
		hi[i] = center[i] + epsilon
	}
	return lo, hi
}

// RangeQuery returns candidate IDs with Dtw-lb(S,Q) ≤ ε.
func (x *FlatIndex) RangeQuery(fq seq.Feature, epsilon float64) ([]seq.ID, error) {
	entries, err := x.RangeQueryEntries(fq, epsilon)
	if err != nil {
		return nil, err
	}
	ids := make([]seq.ID, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	return ids, nil
}

// RangeQueryEntries is RangeQuery returning each candidate's stored point.
func (x *FlatIndex) RangeQueryEntries(fq seq.Feature, epsilon float64) ([]IndexEntry, error) {
	lo, hi := queryRect(fq, epsilon)
	flat := x.idx.AppendRange(nil, &lo, &hi)
	out := make([]IndexEntry, len(flat))
	for i, e := range flat {
		out[i] = IndexEntry{ID: e.ID, Point: e.Point}
	}
	return out, nil
}

// RangeQueryEntriesEnv is RangeQueryEntries with envelope-tight admission:
// candidates whose packed PAA envelope fails admit are dropped in the walk
// and counted in pruned instead of returned.
func (x *FlatIndex) RangeQueryEntriesEnv(fq seq.Feature, epsilon float64, admit func(id seq.ID, pe *seq.PAAEnvelope) bool) ([]IndexEntry, int, error) {
	lo, hi := queryRect(fq, epsilon)
	flat, pruned := x.idx.AppendRangeEnv(nil, &lo, &hi, admit)
	out := make([]IndexEntry, len(flat))
	for i, e := range flat {
		out[i] = IndexEntry{ID: e.ID, Point: e.Point}
	}
	return out, pruned, nil
}

// NearestWalk streams IDs in non-decreasing Dtw-lb (L∞) order.
func (x *FlatIndex) NearestWalk(fq seq.Feature, fn func(id seq.ID, lowerBound float64) bool) error {
	p := fq.Vector()
	x.idx.NearestWalk(&p, func(e flatidx.Entry, dist float64) bool {
		return fn(e.ID, dist)
	})
	return nil
}

// NearestWalkEnv streams IDs in non-decreasing key order with the two-level
// envelope-sharpened frontier: keys are xform(L∞ mindist) raised by
// sharpen(stored slab envelope) for candidates that carry one. With nil
// sharpen the stream reduces to the transformed NearestWalk order.
func (x *FlatIndex) NearestWalkEnv(fq seq.Feature, xform func(float64) float64,
	sharpen func(pe *seq.PAAEnvelope) float64, fn func(id seq.ID, key float64) bool) (KNNWalkStats, error) {
	p := fq.Vector()
	ws := x.idx.NearestWalkEnv(&p, xform, sharpen, func(e flatidx.Entry, key float64) bool {
		return fn(e.ID, key)
	})
	return KNNWalkStats{Pushes: ws.Pushes, Repushes: ws.Repushes, EnvStops: ws.EnvStops}, nil
}

// Len returns the number of indexed sequences.
func (x *FlatIndex) Len() int { return x.idx.Len() }

// Pages reports the snapshot slab size in page-size units, so storage
// accounting (`IndexPages`) stays comparable across engines.
func (x *FlatIndex) Pages() int {
	return int((x.idx.SlabBytes() + int64(x.pageSize) - 1) / int64(x.pageSize))
}

// Stats returns zeroes: the flat engine has no buffer pool — reads touch
// the slab directly.
func (x *FlatIndex) Stats() pagefile.Stats { return pagefile.Stats{} }

// ResetStats is a no-op for the flat engine.
func (x *FlatIndex) ResetStats() {}

// EngineStats reports snapshot generation, delta size, merge counters and
// the merge-duration histogram.
func (x *FlatIndex) EngineStats() IndexEngineStats {
	return IndexEngineStats{
		Engine:       EngineFlat,
		Generation:   x.idx.Generation(),
		DeltaEntries: x.idx.DeltaEntries(),
		Merges:       x.idx.Merges(),
		SlabBytes:    x.idx.SlabBytes(),
		MmapBytes:    x.idx.MmapBytes(),
		MergeHist:    x.idx.MergeHist(),
	}
}

// CheckInvariants validates the packed snapshot (layout, containment) and
// the delta invariants, then the stored feature points themselves.
func (x *FlatIndex) CheckInvariants() error {
	if err := x.idx.CheckInvariants(); err != nil {
		return err
	}
	entries, err := x.Entries()
	if err != nil {
		return err
	}
	for _, e := range entries {
		f := seq.Feature{First: e.Point[0], Last: e.Point[1], Greatest: e.Point[2], Smallest: e.Point[3]}
		if !f.Valid() {
			return fmt.Errorf("core: index entry for sequence %d has invalid feature %+v (non-finite or inconsistent); the sequence is unreachable through the index", e.ID, f)
		}
	}
	return nil
}

// Flush merges any pending delta and persists the snapshot (on-disk mode).
func (x *FlatIndex) Flush() error {
	if x.path == "" {
		return nil
	}
	return x.idx.Save(x.path)
}

// Close persists (on-disk mode) and releases the index.
func (x *FlatIndex) Close() error {
	err := x.Flush()
	if cerr := x.idx.Close(); err == nil {
		err = cerr
	}
	return err
}

var (
	_ EnvBulkLoader = (*FlatIndex)(nil)
	_ envInserter   = (*FlatIndex)(nil)
	_ envTightIndex = (*FlatIndex)(nil)
	_ knnEnvWalker  = (*FlatIndex)(nil)
)
