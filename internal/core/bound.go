package core

import (
	"math"
	"sync/atomic"
)

// SharedBound is a monotonically non-increasing distance bound shared by
// concurrent k-NN walks over disjoint partitions of one database. Each
// partition publishes its local k-th-best exact distance as it improves;
// every partition prunes its index walk against the minimum published so
// far. Soundness: the global k-th-best distance is at most the local
// k-th-best of any partition (the partition's own top-k are candidates for
// the global top-k), so a candidate whose lower bound exceeds the shared
// value can never enter the merged result.
type SharedBound struct {
	bits atomic.Uint64 // math.Float64bits of the current bound
}

// NewSharedBound returns a bound initialized to +Inf (nothing published).
func NewSharedBound() *SharedBound {
	b := &SharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the smallest distance published so far (+Inf if none).
func (b *SharedBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Update lowers the bound to d if d is smaller than the current value.
func (b *SharedBound) Update(d float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(d)) {
			return
		}
	}
}
