package core

import (
	"math"

	"repro/internal/seq"
)

// upperBoundAligned returns the cost of the all-diagonal warping path —
// pairing s[i] with q[i] — which is a legal path of the unconstrained DTW
// and of every Sakoe–Chiba band (|i−i| = 0 ≤ r), so its cost upper-bounds
// the exact distance the query answers, banded or not. ok=false when the
// lengths differ: the pure diagonal is not a complete path then, and k-NN
// simply skips the upper bound for that candidate.
func (c *cascade) upperBoundAligned(s seq.Sequence) (float64, bool) {
	if len(s) != len(c.q) || len(s) == 0 {
		return 0, false
	}
	if c.base == seq.LInf {
		max := 0.0
		for i := range s {
			if e := c.base.Elem(s[i], c.q[i]); e > max {
				max = e
			}
		}
		return max, true
	}
	acc := 0.0
	for i := range s {
		acc += c.base.Elem(s[i], c.q[i])
	}
	return acc, true
}

// ubTracker keeps the k smallest DTW upper bounds seen during one k-NN
// search, as a max-heap of size ≤ k. Once full, Kth() upper-bounds the
// k-th smallest exact distance among the candidates seen so far — and the
// global k-th over all candidates can only be smaller — so
// min(k-th best exact, Kth()) is a sound pruning cutoff from the first
// fetched candidate onward, long before k exact distances exist
// (DESIGN.md §12). Without it every early candidate meets an infinite
// cutoff and must be resolved by a full DTW.
type ubTracker struct {
	k int
	h []float64
}

func newUBTracker(k int) *ubTracker {
	return &ubTracker{k: k, h: make([]float64, 0, k)}
}

// Add records one candidate's upper bound and returns the current Kth().
func (t *ubTracker) Add(ub float64) float64 {
	if len(t.h) < t.k {
		t.h = append(t.h, ub)
		// Sift up.
		i := len(t.h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if t.h[p] >= t.h[i] {
				break
			}
			t.h[p], t.h[i] = t.h[i], t.h[p]
			i = p
		}
		return t.Kth()
	}
	if ub >= t.h[0] {
		return t.h[0]
	}
	// Replace the max and sift down.
	t.h[0] = ub
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(t.h) && t.h[l] > t.h[big] {
			big = l
		}
		if r < len(t.h) && t.h[r] > t.h[big] {
			big = r
		}
		if big == i {
			break
		}
		t.h[i], t.h[big] = t.h[big], t.h[i]
		i = big
	}
	return t.h[0]
}

// Kth returns the largest of the k recorded bounds, or +Inf while fewer
// than k candidates have been seen (no sound k-th bound exists yet).
func (t *ubTracker) Kth() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0]
}

// deferred is one k-NN candidate whose exact DP was postponed behind the
// index walk: lb is its strongest Tier 1 bound (the resolve key), tier the
// tier that produced it, and s the fetched sequence (cache slices are
// shared-immutable, so retaining one is safe).
type deferred struct {
	id   seq.ID
	s    seq.Sequence
	lb   float64
	tier int
}

// deferHeap is a hand-rolled min-heap of deferred candidates keyed by
// (lb, id); the id tiebreak keeps the resolve order — and therefore the
// per-tier stat attribution — deterministic.
type deferHeap []deferred

func (h deferHeap) less(i, j int) bool {
	if h[i].lb != h[j].lb {
		return h[i].lb < h[j].lb
	}
	return h[i].id < h[j].id
}

func (h *deferHeap) push(d deferred) {
	*h = append(*h, d)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *deferHeap) pop() deferred {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = deferred{} // release the retained sequence
	*h = a[:n]
	a = a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && a.less(l, small) {
			small = l
		}
		if r < n && a.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		a[i], a[small] = a[small], a[i]
		i = small
	}
	return top
}
