package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
	"repro/internal/seqdb"
)

// refineParallel is the bounded-worker form of refine/refineIDs. Workers
// pull candidate indices from a shared atomic counter; each worker owns a
// private cascade (the pooled refiner is not concurrency-safe) and a
// private QueryStats, summed into stats at the end so the conservation law
// Candidates = ΣPruned + DTWCalls holds exactly as in the serial loop.
//
// Results are bit-identical to the serial loop: the cutoff is the fixed
// tolerance ε, so each candidate's verdict and exact distance are
// independent of evaluation order; accepted matches land in a slot array
// indexed by candidate position and are sorted by (Dist, ID) at the end,
// the same final order sortMatches gives the serial path.
//
// candAt returns the i-th candidate's ID, its stored index point, and
// whether a point exists (Tier 0 is skipped for bare-ID filters).
//
// ctx is checked once per dispatch slot — the moment a worker claims its
// next candidate index, before any fetch or DP — so a cancelled query stops
// issuing DTW calls after at most one in-flight candidate per worker.
func refineParallel(ctx context.Context, db *seqdb.DB, base seq.Base, q seq.Sequence, epsilon float64,
	n int, candAt func(int) (seq.ID, [4]float64, bool),
	noCascade bool, band int, envs *EnvStore, workers int, stats *QueryStats) ([]Match, error) {
	if workers > n {
		workers = n
	}
	type slot struct {
		m  Match
		ok bool
	}
	slots := make([]slot, n)
	workerStats := make([]QueryStats, workers)
	workerErrs := make([]error, workers)
	errAt := make([]int, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &workerStats[w]
			c := newCascade(q, base, band, envs, noCascade)
			defer c.close()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if cerr := ctxErr(ctx); cerr != nil {
					workerErrs[w], errAt[w] = cerr, i
					failed.Store(true)
					return
				}
				id, pt, hasPt := candAt(i)
				if hasPt && !c.admitPoint(pt, epsilon, ws) {
					continue
				}
				if !c.admitEnvelope(id, epsilon, ws) {
					continue
				}
				s, err := db.Get(id)
				if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
					continue
				}
				if err != nil {
					workerErrs[w], errAt[w] = err, i
					failed.Store(true)
					return
				}
				if d, ok := c.verify(s, epsilon, ws); ok {
					slots[i] = slot{m: Match{ID: id, Dist: d}, ok: true}
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		// Surface the failure at the lowest candidate index so the reported
		// error does not depend on goroutine scheduling.
		firstErr, first := error(nil), n
		for w, err := range workerErrs {
			if err != nil && errAt[w] < first {
				firstErr, first = err, errAt[w]
			}
		}
		return nil, firstErr
	}
	for w := range workerStats {
		stats.Add(workerStats[w])
	}
	var matches []Match
	for i := range slots {
		if slots[i].ok {
			matches = append(matches, slots[i].m)
		}
	}
	sortMatches(matches)
	return matches, nil
}

// knnCand is one index-walk candidate handed to a verification worker.
type knnCand struct {
	id seq.ID
	lb float64
}

// nearestKParallel is nearestKShared with the verification fanned out to a
// bounded worker pool. The index walk itself stays sequential (it is cheap
// and must stream candidates in ascending lower-bound order); workers fetch
// and verify concurrently against the shrinking cutoff.
//
// Soundness (no false dismissal) despite workers observing momentarily
// stale cutoffs: the cutoff — min(local k-th best, k-th smallest
// aligned-path upper bound, shared bound) — only ever shrinks (each
// component is monotone non-increasing), so any value a worker or the
// walk-stop test reads is ≥ the final cutoff. A true top-k member m has Dtw(m) ≤ final k-th best ≤ every
// cutoff ever observed, so the walk cannot stop before streaming m
// (comparableLB(m) ≤ Dtw(m) ≤ cutoff) and m's verification cannot reject
// it (verify accepts at ≤ cutoff). Staleness therefore only admits extra
// candidates, which the final sort-and-truncate removes; the returned set
// is the (Dist, ID)-ordered top-k of all streamed candidates — exactly the
// serial result, bit for bit.
func (t *TWSimSearch) nearestKParallel(q seq.Sequence, fq seq.Feature, k, workers int,
	shared *SharedBound, stats *QueryStats) ([]Match, error) {
	var (
		mu   sync.Mutex
		best []Match // sorted ascending by (Dist, ID), ≤ k entries
		ub   *ubTracker
	)
	if t.envOrdering(q) && t.Band >= 1 {
		ub = newUBTracker(k)
	}
	cutoff := func() float64 {
		mu.Lock()
		c := math.Inf(1)
		if len(best) == k {
			c = best[k-1].Dist
		}
		if ub != nil {
			if u := ub.Kth(); u < c {
				c = u
			}
		}
		mu.Unlock()
		if shared != nil {
			if g := shared.Load(); g < c {
				c = g
			}
		}
		return c
	}

	work := make(chan knnCand, workers*2)
	workerStats := make([]QueryStats, workers)
	workerErrs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &workerStats[w]
			c := newCascade(q, t.Base, t.Band, t.Envs, t.NoCascade)
			defer c.close()
			for cand := range work {
				if failed.Load() {
					continue // drain so the producer never blocks
				}
				if cerr := ctxErr(t.Ctx); cerr != nil {
					workerErrs[w] = cerr
					failed.Store(true)
					continue
				}
				// Tier 0.5 before the fetch; dismissed candidates still
				// count so Candidates = ΣPruned + DTWCalls holds.
				if !c.admitEnvelope(cand.id, cutoff(), ws) {
					ws.Candidates++
					continue
				}
				s, err := t.DB.Get(cand.id)
				if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
					continue
				}
				if err != nil {
					workerErrs[w] = err
					failed.Store(true)
					continue
				}
				ws.Candidates++
				cut := cutoff()
				// The candidate's own aligned-path upper bound may tighten
				// the cutoff before its cascade runs; min(k-th exact, k-th
				// UB, shared) stays sound throughout (DESIGN.md §12).
				if ub != nil {
					if u, ok := c.upperBoundAligned(s); ok {
						mu.Lock()
						w := ub.Add(u)
						mu.Unlock()
						if w < cut {
							cut = w
						}
					}
				}
				var d float64
				if math.IsInf(cut, 1) {
					ws.DTWCalls++
					d = c.exactDistance(s)
				} else {
					var ok bool
					if d, ok = c.verify(s, cut, ws); !ok {
						continue
					}
				}
				mu.Lock()
				best = append(best, Match{ID: cand.id, Dist: d})
				sortMatches(best)
				if len(best) > k {
					best = best[:k]
				}
				if shared != nil && len(best) == k {
					shared.Update(best[k-1].Dist)
				}
				mu.Unlock()
			}
		}(w)
	}

	var ctxAbort error
	walkErr := t.knnWalk(q, fq, stats, func(id seq.ID, key float64) bool {
		if failed.Load() {
			return false
		}
		if cerr := ctxErr(t.Ctx); cerr != nil {
			ctxAbort = cerr
			return false
		}
		if key > cutoff() {
			return false // ascending keys: every later candidate is above too
		}
		work <- knnCand{id: id, lb: key}
		return true
	})
	close(work)
	wg.Wait()

	for w := range workerStats {
		stats.Add(workerStats[w])
	}
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}
	if walkErr != nil {
		return nil, walkErr
	}
	if ctxAbort != nil {
		return nil, ctxAbort
	}
	return best, nil
}
