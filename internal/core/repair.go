package core

import (
	"fmt"

	"repro/internal/seq"
	"repro/internal/seqdb"
)

// RepairStats summarizes what an Open-time reconciliation (or an explicit
// Repair call) had to do to restore the store/index agreement the paper's
// no-false-dismissal guarantee depends on.
type RepairStats struct {
	// LiveSequences is the number of live heap records scanned.
	LiveSequences int
	// IndexedBefore is the number of index entries found before repair.
	IndexedBefore int
	// Orphans is the number of live heap records that had no index entry
	// and were re-indexed (e.g. a crash between append and insert).
	Orphans int
	// Dangling is the number of index entries with no live heap record
	// behind them (deleted sequences, duplicates) that were removed.
	Dangling int
	// Mismatched is the number of index entries whose stored point
	// disagreed with the record's actual feature vector and were re-keyed.
	Mismatched int
	// Rebuilt reports that the index could not be opened or walked at all
	// and was rebuilt from scratch by scanning the heap.
	Rebuilt bool
}

// Repaired reports whether the reconciliation changed anything.
func (rs RepairStats) Repaired() bool {
	return rs.Rebuilt || rs.Orphans+rs.Dangling+rs.Mismatched > 0
}

// String renders a one-line human-readable summary.
func (rs RepairStats) String() string {
	if rs.Rebuilt {
		return fmt.Sprintf("index rebuilt from %d live sequences", rs.LiveSequences)
	}
	if !rs.Repaired() {
		return fmt.Sprintf("consistent: %d sequences indexed", rs.LiveSequences)
	}
	return fmt.Sprintf("repaired: %d orphans re-indexed, %d dangling removed, %d re-keyed (%d live, %d indexed before)",
		rs.Orphans, rs.Dangling, rs.Mismatched, rs.LiveSequences, rs.IndexedBefore)
}

// scanFeatures extracts the feature vector of every live heap record.
func scanFeatures(store *seqdb.DB) (map[seq.ID]seq.Feature, error) {
	features, _, err := scanFeaturesEnvs(store, false)
	return features, err
}

// scanFeaturesEnvs extracts the feature vector — and, when wantEnvs is set,
// the PAA envelope — of every live heap record in one heap pass. Envelope
// extraction is requested by rebuild paths feeding an engine that packs
// envelopes into the index (EnvBulkLoader).
func scanFeaturesEnvs(store *seqdb.DB, wantEnvs bool) (map[seq.ID]seq.Feature, map[seq.ID]seq.PAAEnvelope, error) {
	features := make(map[seq.ID]seq.Feature, store.Len())
	var envs map[seq.ID]seq.PAAEnvelope
	if wantEnvs {
		envs = make(map[seq.ID]seq.PAAEnvelope, store.Len())
	}
	err := store.Scan(func(id seq.ID, s seq.Sequence) error {
		f, err := seq.ExtractFeature(s)
		if err != nil {
			return fmt.Errorf("core: record %d: %w", id, err)
		}
		features[id] = f
		if wantEnvs {
			pe, err := seq.ExtractPAAEnvelope(s)
			if err != nil {
				return fmt.Errorf("core: record %d: %w", id, err)
			}
			envs[id] = pe
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return features, envs, nil
}

// Reconcile diffs the feature index against the live heap records and
// patches the index in place: orphaned records are re-indexed, dangling and
// duplicate entries deleted, and mis-keyed entries re-inserted at the
// record's true feature point. After a nil return, every live sequence is
// indexed exactly once at its current feature vector, so searches are again
// free of false dismissal (Theorems 1-2).
func Reconcile(store *seqdb.DB, index Index) (RepairStats, error) {
	var rs RepairStats
	features, err := scanFeatures(store)
	if err != nil {
		return rs, err
	}
	rs.LiveSequences = len(features)
	entries, err := index.Entries()
	if err != nil {
		return rs, fmt.Errorf("core: walking index: %w", err)
	}
	rs.IndexedBefore = len(entries)

	// First pass: remove every entry that is dangling (no live record),
	// duplicated, or keyed at the wrong point. Deletions are applied after
	// the walk above, never during it.
	matched := make(map[seq.ID]bool, len(entries))
	for _, e := range entries {
		f, live := features[e.ID]
		switch {
		case !live || matched[e.ID]:
			if _, err := index.DeleteEntry(e.ID, e.Point); err != nil {
				return rs, fmt.Errorf("core: removing dangling entry %d: %w", e.ID, err)
			}
			rs.Dangling++
		case e.Point != f.Vector():
			if _, err := index.DeleteEntry(e.ID, e.Point); err != nil {
				return rs, fmt.Errorf("core: removing stale entry %d: %w", e.ID, err)
			}
			if err := index.InsertFeature(e.ID, f); err != nil {
				return rs, fmt.Errorf("core: re-keying entry %d: %w", e.ID, err)
			}
			rs.Mismatched++
			matched[e.ID] = true
		default:
			matched[e.ID] = true
		}
	}

	// Second pass: index every live record the index did not know about.
	// IDs are walked in order for deterministic repair.
	for id := seq.ID(0); int(id) < store.NumRecords(); id++ {
		f, live := features[id]
		if !live || matched[id] {
			continue
		}
		if err := index.InsertFeature(id, f); err != nil {
			return rs, fmt.Errorf("core: re-indexing orphan %d: %w", id, err)
		}
		rs.Orphans++
	}
	return rs, nil
}

// RebuildIndex constructs a fresh feature index from the live heap records
// via an STR bulk load — the recovery of last resort when the existing
// index file cannot even be opened. Engines that pack PAA envelopes into
// the index (the flat engine) get them extracted in the same heap pass, so
// a rebuilt index is envelope-tight from the start.
func RebuildIndex(store *seqdb.DB, opts IndexOptions) (Index, RepairStats, error) {
	rs := RepairStats{Rebuilt: true}
	index, err := NewIndex(opts)
	if err != nil {
		return nil, rs, err
	}
	loader, wantEnvs := index.(EnvBulkLoader)
	features, envsByID, err := scanFeaturesEnvs(store, wantEnvs)
	if err != nil {
		index.Close()
		return nil, rs, err
	}
	rs.LiveSequences = len(features)
	ids := make([]seq.ID, 0, len(features))
	for id := seq.ID(0); int(id) < store.NumRecords(); id++ {
		if _, ok := features[id]; ok {
			ids = append(ids, id)
		}
	}
	fs := make([]seq.Feature, len(ids))
	for i, id := range ids {
		fs[i] = features[id]
	}
	if wantEnvs {
		envs := make([]seq.PAAEnvelope, len(ids))
		for i, id := range ids {
			envs[i] = envsByID[id]
		}
		err = loader.BulkLoadEnv(ids, fs, envs)
	} else {
		err = index.BulkLoad(ids, fs)
	}
	if err != nil {
		index.Close()
		return nil, rs, err
	}
	return index, rs, nil
}
