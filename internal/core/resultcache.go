package core

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// ResultCache is a byte-budgeted, lock-striped LRU of whole-query results.
// Memoizing entire answers is sound because the pipeline is exact: for a
// fixed (query, kind, parameter, band, base, engine) the matches are a pure
// function of the database contents, so a stored result is bit-identical to
// a recomputation as long as no write intervened.
//
// Write tracking is a single per-database generation counter (an atomic
// uint64 the owner bumps after every Add/AddAll/AddBatch/Remove/Repair):
// every entry is stamped with the generation the owner read BEFORE the
// query ran, and Get compares that stamp against the current generation.
// The protocol makes stale hits impossible without any per-entry
// bookkeeping on the write path:
//
//   - A query reads gen g, computes, and Puts its result stamped g. If any
//     write overlapped the computation — even one the query half-observed —
//     the writer bumps the generation after mutating and before returning,
//     so by the time that write is acknowledged the current generation
//     exceeds g and the possibly-tainted entry can never be served again.
//   - Invalidation is lazy: a generation-mismatched entry is evicted by the
//     Get that finds it (counted as an invalidation AND a miss), so writes
//     cost one atomic increment regardless of cache size.
//
// The key carries the raw query bits (see ResultCacheKey), so lookups are
// exact string equality — no digest collisions to reason about.
//
// All methods are safe for concurrent use.
type ResultCache struct {
	budget int64 // per stripe
	shards [resultCacheStripes]resultCacheShard

	hits, misses, evictions, invalidations atomic.Int64
}

const resultCacheStripes = 8

// resultCacheEntryOverhead approximates the per-entry bookkeeping bytes
// (map bucket share, list element, entry struct, string header) charged
// against the budget on top of the key and match payload.
const resultCacheEntryOverhead = 128

type resultCacheShard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
	bytes int64
}

type resultCacheEntry struct {
	key     string
	gen     uint64
	matches []Match
	bytes   int64
}

// ResultCacheStats is a point-in-time snapshot of the cache counters.
// Invalidations count generation-mismatched entries discarded on lookup;
// each such lookup also counts as a miss, so HitRatio stays an honest
// fraction of lookups served from memory.
type ResultCacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Bytes         int64
	Entries       int
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s ResultCacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Add accumulates other into s (aggregation across engines or shards).
func (s *ResultCacheStats) Add(other ResultCacheStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Invalidations += other.Invalidations
	s.Bytes += other.Bytes
	s.Entries += other.Entries
}

// NewResultCache returns a cache bounded to roughly budgetBytes across all
// stripes, or nil when the budget admits nothing (≤ 0).
func NewResultCache(budgetBytes int64) *ResultCache {
	if budgetBytes <= 0 {
		return nil
	}
	c := &ResultCache{budget: budgetBytes / resultCacheStripes}
	if c.budget < 1 {
		c.budget = 1
	}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// ResultCacheKey builds the lookup key for one query. kind distinguishes
// the query families sharing a cache ('r' = range/ε, 'k' = k-NN); base,
// engine, and band pin the distance answered and the machinery that
// answered it; epsilon/k are the family parameter (the unused one is
// zero); the query's raw float64 bits complete the key, so two queries
// collide only if they are the same query in every respect.
func ResultCacheKey(kind byte, base seq.Base, engine string, band int, epsilon float64, k int, query []float64) string {
	buf := make([]byte, 0, 24+len(engine)+1+8*len(query))
	buf = append(buf, kind, byte(base))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(band))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(epsilon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
	buf = append(buf, engine...)
	buf = append(buf, 0)
	for _, v := range query {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return string(buf)
}

// stripeFor picks the stripe by FNV-1a over the key.
func (c *ResultCache) stripeFor(key string) *resultCacheShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%resultCacheStripes]
}

// Get returns the cached matches for key if an entry exists and its
// generation stamp equals curGen. A generation mismatch discards the entry
// (lazy invalidation) and reports a miss. The returned slice is a private
// copy the caller owns.
func (c *ResultCache) Get(key string, curGen uint64) ([]Match, bool) {
	sh := c.stripeFor(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*resultCacheEntry)
	if ent.gen != curGen {
		sh.removeLocked(el, ent)
		sh.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	sh.lru.MoveToFront(el)
	out := append([]Match(nil), ent.matches...)
	sh.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// Put stores the result a query computed after reading generation preGen.
// The caller must have loaded preGen BEFORE issuing any index or heap read
// of the query: any write that could have tainted the computation bumps the
// generation before it is acknowledged, so a tainted entry's stamp is stale
// by construction and Get will never serve it. Entries larger than a whole
// stripe's budget are not stored.
func (c *ResultCache) Put(key string, preGen uint64, matches []Match) {
	size := int64(len(key)) + int64(len(matches))*16 + resultCacheEntryOverhead
	if size > c.budget {
		return
	}
	ent := &resultCacheEntry{
		key:     key,
		gen:     preGen,
		matches: append([]Match(nil), matches...),
		bytes:   size,
	}
	sh := c.stripeFor(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		// Replace in place (a concurrent query of the same key, or a
		// re-computation after invalidation).
		old := el.Value.(*resultCacheEntry)
		sh.bytes += ent.bytes - old.bytes
		el.Value = ent
		sh.lru.MoveToFront(el)
	} else {
		sh.items[key] = sh.lru.PushFront(ent)
		sh.bytes += ent.bytes
	}
	for sh.bytes > c.budget {
		back := sh.lru.Back()
		if back == nil {
			break
		}
		sh.removeLocked(back, back.Value.(*resultCacheEntry))
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
}

func (sh *resultCacheShard) removeLocked(el *list.Element, ent *resultCacheEntry) {
	sh.lru.Remove(el)
	delete(sh.items, ent.key)
	sh.bytes -= ent.bytes
}

// Stats snapshots the cache counters. The byte/entry totals are summed
// stripe by stripe, so the snapshot is weakly consistent under concurrent
// traffic — fine for monitoring.
func (c *ResultCache) Stats() ResultCacheStats {
	if c == nil {
		return ResultCacheStats{}
	}
	st := ResultCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Bytes += sh.bytes
		st.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	return st
}
