package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dtw"
	"repro/internal/seq"
	"repro/internal/synth"
)

// scrubIO zeroes the fields that legitimately vary between serial and
// parallel execution: wall time, and the buffer-pool counters (concurrent
// fetch interleavings change eviction order, hence miss counts). Everything
// else — candidate counts, per-tier prune counts, DTW work — must be
// identical, because with a fixed cutoff every candidate's verdict is
// independent of evaluation order.
func scrubIO(s QueryStats) QueryStats {
	s.Wall, s.FilterWall, s.RefineWall = 0, 0, 0
	s.DataReads, s.DataMisses, s.DataSeqMisses = 0, 0, 0
	s.IndexReads, s.IndexMisses, s.IndexSeqMisses = 0, 0, 0
	return s
}

// checkConservation asserts the refinement ledger balances: every candidate
// the filter admitted was either pruned by exactly one cascade tier or paid
// an exact DTW call. Parallel refinement sums per-worker stats, so a lost or
// double-counted candidate would break this.
func checkConservation(t *testing.T, s QueryStats) {
	t.Helper()
	pruned := s.LBKimPruned + s.LBKeoghPruned + s.LBYiPruned + s.CorridorPruned
	if s.Candidates != pruned+s.DTWCalls {
		t.Fatalf("conservation violated: %d candidates != %d pruned + %d DTW calls",
			s.Candidates, pruned, s.DTWCalls)
	}
}

// TestParallelRefineOracle: range search with a worker pool returns
// bit-identical matches and identical work counters versus the serial path,
// for every base, with and without the cascade.
func TestParallelRefineOracle(t *testing.T) {
	workerCounts := []int{2, 3, runtime.GOMAXPROCS(0) + 1}
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		for _, noCascade := range []bool{false, true} {
			name := base.String()
			if noCascade {
				name += "/nocascade"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(59))
				data := synth.RandomWalkSetVaryLen(rng, 150, 5, 40)
				db, idx := buildFixture(t, data)
				serial := &TWSimSearch{DB: db, Index: idx, Base: base, NoCascade: noCascade}
				epsilons := []float64{0.05, 0.3, 1.2}
				if base == seq.L2Sq || base == seq.L1 {
					epsilons = []float64{0.5, 3, 15}
				}
				for qi, q := range synth.Queries(rng, data, 8) {
					for _, eps := range epsilons {
						want, err := serial.Search(q, eps)
						if err != nil {
							t.Fatal(err)
						}
						checkConservation(t, want.Stats)
						for _, w := range workerCounts {
							par := &TWSimSearch{DB: db, Index: idx, Base: base, NoCascade: noCascade, Workers: w}
							got, err := par.Search(q, eps)
							if err != nil {
								t.Fatal(err)
							}
							if len(got.Matches) != len(want.Matches) {
								t.Fatalf("query %d eps %g workers %d: %d matches, serial %d",
									qi, eps, w, len(got.Matches), len(want.Matches))
							}
							for i := range want.Matches {
								if got.Matches[i] != want.Matches[i] {
									t.Fatalf("query %d eps %g workers %d match %d: %+v, serial %+v",
										qi, eps, w, i, got.Matches[i], want.Matches[i])
								}
							}
							if g, s := scrubIO(got.Stats), scrubIO(want.Stats); g != s {
								t.Fatalf("query %d eps %g workers %d: stats diverge\nparallel %+v\nserial   %+v",
									qi, eps, w, g, s)
							}
							checkConservation(t, got.Stats)
						}
					}
				}
			})
		}
	}
}

// TestParallelNearestKOracle: parallel k-NN verification returns the exact
// serial result — same IDs, same float64 distances, same order — with and
// without a cross-partition shared bound. (Work counters may differ: a
// worker can observe a momentarily stale cutoff and run a DTW the serial
// path would have pruned; the result set is still provably identical.)
func TestParallelNearestKOracle(t *testing.T) {
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		t.Run(base.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			data := synth.RandomWalkSetVaryLen(rng, 120, 5, 35)
			db, idx := buildFixture(t, data)
			serial := &TWSimSearch{DB: db, Index: idx, Base: base}
			for trial := 0; trial < 8; trial++ {
				q := synth.Query(rng, data)
				k := 1 + rng.Intn(9)
				want, err := serial.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, 4} {
					par := &TWSimSearch{DB: db, Index: idx, Base: base, Workers: w}
					got, err := par.NearestK(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("trial %d k=%d workers %d: %d matches, serial %d",
							trial, k, w, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d k=%d workers %d rank %d: %+v, serial %+v",
								trial, k, w, i, got[i], want[i])
						}
					}
					// Shared bound seeded identically on both sides: the
					// parallel walk must still produce the serial answer.
					wb, gb := NewSharedBound(), NewSharedBound()
					wantB, err := serial.NearestKShared(q, k, wb)
					if err != nil {
						t.Fatal(err)
					}
					gotB, err := par.NearestKShared(q, k, gb)
					if err != nil {
						t.Fatal(err)
					}
					if len(gotB) != len(wantB) {
						t.Fatalf("trial %d k=%d workers %d shared: %d matches, serial %d",
							trial, k, w, len(gotB), len(wantB))
					}
					for i := range wantB {
						if gotB[i] != wantB[i] {
							t.Fatalf("trial %d k=%d workers %d shared rank %d: %+v, serial %+v",
								trial, k, w, i, gotB[i], wantB[i])
						}
					}
				}
			}
		})
	}
}

// TestL2SqFilterRadiusSound is the regression test for the seed's false
// dismissal: under BaseL2Sq the DTW accumulates *squared* differences while
// the index's feature-space lower bound is in plain (unsquared) distance
// units, so the filter must search radius √ε, not ε.
//
// The witness: S = [0], Q = [0.4], ε = 0.25. The single aligned pair gives
// Dtw_L2Sq = 0.16 ≤ ε (a genuine match) but the feature lower bound is
// |0.4 - 0| = 0.4 > ε, so a radius-ε filter dismisses S without ever
// running DTW. Radius √ε = 0.5 ≥ 0.4 admits it.
func TestL2SqFilterRadiusSound(t *testing.T) {
	data := []seq.Sequence{{0}}
	db, idx := buildFixture(t, data)
	q := seq.Sequence{0.4}
	const eps = 0.25

	// The seed's radius really does dismiss the match at the index level.
	oldSet, err := idx.RangeQueryEntries(seq.MustFeature(q), eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldSet) != 0 {
		t.Fatalf("radius ε admitted %d entries; the witness no longer exercises the bug", len(oldSet))
	}
	newSet, err := idx.RangeQueryEntries(seq.MustFeature(q), filterRadius(seq.L2Sq, eps))
	if err != nil {
		t.Fatal(err)
	}
	if len(newSet) != 1 {
		t.Fatalf("radius √ε admitted %d entries, want 1", len(newSet))
	}

	s := &TWSimSearch{DB: db, Index: idx, Base: seq.L2Sq}
	res, err := s.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("Search found %d matches, want the ε=0.25 witness", len(res.Matches))
	}
	want := dtw.Distance(data[0], q, seq.L2Sq)
	if res.Matches[0].Dist != want || want > eps {
		t.Fatalf("match distance %g, want %g ≤ %g", res.Matches[0].Dist, want, eps)
	}
}

// TestL2SqBruteForceOracle: for a spread of tolerances spanning both sides
// of ε = 1 (where √ε crosses ε, i.e. where the old radius flips from
// unsound to merely wasteful), the index-filtered search matches an exact
// linear scan under BaseL2Sq.
func TestL2SqBruteForceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	data := synth.RandomWalkSetVaryLen(rng, 100, 4, 25)
	db, idx := buildFixture(t, data)
	s := &TWSimSearch{DB: db, Index: idx, Base: seq.L2Sq}
	for _, eps := range []float64{0.01, 0.25, 0.9, 1.0, 2.5, 10} {
		for qi, q := range synth.Queries(rng, data, 6) {
			res, err := s.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[seq.ID]float64, len(res.Matches))
			for _, m := range res.Matches {
				got[m.ID] = m.Dist
			}
			want := 0
			for i, stored := range data {
				d := dtw.Distance(stored, q, seq.L2Sq)
				if d <= eps {
					want++
					gd, ok := got[seq.ID(i)]
					if !ok {
						t.Fatalf("eps %g query %d: sequence %d (Dtw %g) falsely dismissed", eps, qi, i, d)
					}
					if gd != d && !(math.IsNaN(gd) && math.IsNaN(d)) {
						t.Fatalf("eps %g query %d id %d: distance %g, want %g", eps, qi, i, gd, d)
					}
				}
			}
			if len(res.Matches) != want {
				t.Fatalf("eps %g query %d: %d matches, brute force %d", eps, qi, len(res.Matches), want)
			}
		}
	}
}
