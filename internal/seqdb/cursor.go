package seqdb

import (
	"repro/internal/seq"
)

// Cursor iterates over the live sequences of a DB in ID order with
// positioned access. Unlike Scan it is pull-based, so callers can
// interleave iteration with other work. A Cursor observes appends and
// deletes that happen after its creation (it re-checks liveness on every
// step); it is safe for use alongside concurrent readers, but not
// concurrently with other goroutines using the same Cursor value.
type Cursor struct {
	db   *DB
	next seq.ID
	id   seq.ID
	cur  seq.Sequence
	err  error
}

// NewCursor returns a cursor positioned before the first sequence.
func (db *DB) NewCursor() *Cursor {
	return &Cursor{db: db, next: 0, id: seq.InvalidID}
}

// Seek positions the cursor so the following Next returns the first live
// sequence with ID >= id.
func (c *Cursor) Seek(id seq.ID) {
	c.next = id
	c.id = seq.InvalidID
	c.cur = nil
	c.err = nil
}

// Next advances to the next live sequence, reporting whether one exists.
// After Next returns false, Err distinguishes exhaustion from failure.
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	for int(c.next) < c.db.NumRecords() {
		id := c.next
		c.next++
		s, err := c.db.Get(id)
		if err != nil {
			if c.db.Deleted(id) {
				continue
			}
			c.err = err
			return false
		}
		c.id, c.cur = id, s
		return true
	}
	c.id, c.cur = seq.InvalidID, nil
	return false
}

// ID returns the current sequence's ID (valid after a true Next).
func (c *Cursor) ID() seq.ID { return c.id }

// Sequence returns the current sequence (valid after a true Next). The
// returned slice is owned by the caller.
func (c *Cursor) Sequence() seq.Sequence { return c.cur }

// Err returns the first error the cursor encountered, if any.
func (c *Cursor) Err() error { return c.err }
