package seqdb

import (
	"errors"
	"fmt"

	"repro/internal/seq"
)

// ErrDeleted is returned by Get for sequences that were removed. Deleted
// IDs are never reused; the heap file reclaims their space only on Compact
// (not implemented — the workloads this engine reproduces are append-only).
var ErrDeleted = errors.New("seqdb: sequence deleted")

// Delete tombstones the sequence with the given ID. It reports whether the
// sequence existed and was live. Scan skips deleted sequences; Get returns
// ErrDeleted for them.
func (db *DB) Delete(id seq.ID) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if int(id) >= len(db.offsets) {
		return false, fmt.Errorf("%w: id %d of %d", ErrNotFound, id, len(db.offsets))
	}
	if db.tombstones[id] {
		return false, nil
	}
	if db.tombstones == nil {
		db.tombstones = make(map[seq.ID]bool)
	}
	db.tombstones[id] = true
	db.live--
	if db.cache != nil {
		db.cache.invalidate(id)
	}
	return true, nil
}

// Deleted reports whether the given ID has been tombstoned.
func (db *DB) Deleted(id seq.ID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tombstones[id]
}

// NumRecords returns the number of records ever appended, including
// tombstoned ones. IDs are always < NumRecords().
func (db *DB) NumRecords() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.offsets)
}
