package seqdb

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// CacheStats reports decoded-sequence cache activity. Hits and Misses count
// only Get calls made while the cache is enabled; Bytes and Entries are the
// current residency. Like pagefile.Stats, a snapshot is wait-free for the
// counters and therefore weakly consistent.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Bytes   int64
	Entries int64
}

// Add accumulates other into s.
func (s *CacheStats) Add(other CacheStats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Bytes += other.Bytes
	s.Entries += other.Entries
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any lookup has happened.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

const cacheShards = 8

// cacheEntrySize estimates the resident cost of a cached sequence: the
// float64 payload plus map/list/header overhead.
func cacheEntrySize(s seq.Sequence) int64 { return int64(8*len(s)) + 64 }

// seqCache is a sharded, byte-budgeted LRU of decoded sequences. A hit in
// DB.Get skips both the page-layer I/O and the varint deserialization.
//
// Cached sequences are shared: callers of DB.Get on a cache-enabled
// database must treat the returned sequence as immutable (the public API
// layer copies before handing data to users).
type seqCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	items  map[seq.ID]*list.Element
	lru    *list.List // front = most recently used; values are *cacheItem
}

type cacheItem struct {
	id   seq.ID
	s    seq.Sequence
	size int64
}

func newSeqCache(budget int64) *seqCache {
	if budget <= 0 {
		return nil
	}
	c := &seqCache{}
	per := budget / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.budget = per
		sh.items = make(map[seq.ID]*list.Element)
		sh.lru = list.New()
	}
	return c
}

func (c *seqCache) shardOf(id seq.ID) *cacheShard {
	return &c.shards[uint32(id)%cacheShards]
}

// get returns the cached sequence for id, or nil.
func (c *seqCache) get(id seq.ID) seq.Sequence {
	sh := c.shardOf(id)
	sh.mu.Lock()
	el, ok := sh.items[id]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	sh.lru.MoveToFront(el)
	s := el.Value.(*cacheItem).s
	sh.mu.Unlock()
	c.hits.Add(1)
	return s
}

// put inserts (or refreshes) id → s, evicting LRU entries from the shard
// until it is back under budget. Sequences larger than the whole shard
// budget are not cached.
func (c *seqCache) put(id seq.ID, s seq.Sequence) {
	size := cacheEntrySize(s)
	sh := c.shardOf(id)
	if size > sh.budget {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[id]; ok {
		it := el.Value.(*cacheItem)
		sh.bytes += size - it.size
		it.s, it.size = s, size
		sh.lru.MoveToFront(el)
	} else {
		el := sh.lru.PushFront(&cacheItem{id: id, s: s, size: size})
		sh.items[id] = el
		sh.bytes += size
	}
	for sh.bytes > sh.budget {
		victim := sh.lru.Back()
		if victim == nil {
			break
		}
		it := victim.Value.(*cacheItem)
		sh.lru.Remove(victim)
		delete(sh.items, it.id)
		sh.bytes -= it.size
	}
}

// invalidate drops id from the cache (after Delete or RollbackLast, whose
// ID reuse would otherwise serve a stale sequence).
func (c *seqCache) invalidate(id seq.ID) {
	sh := c.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[id]; ok {
		it := el.Value.(*cacheItem)
		sh.lru.Remove(el)
		delete(sh.items, it.id)
		sh.bytes -= it.size
	}
}

func (c *seqCache) stats() CacheStats {
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Bytes += sh.bytes
		st.Entries += int64(len(sh.items))
		sh.mu.Unlock()
	}
	return st
}
