package seqdb

import (
	"errors"
	"testing"

	"repro/internal/pagefile"
	"repro/internal/seq"
)

func TestRollbackLastReusesIDAndSpace(t *testing.T) {
	db, err := NewMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	a := seq.Sequence{1, 2, 3}
	b := seq.Sequence{4, 5}
	c := seq.Sequence{6, 7, 8, 9}
	for _, s := range []seq.Sequence{a, b} {
		if _, err := db.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	bytesBefore := db.Bytes()
	elemsBefore := db.TotalElements()
	id, err := db.Append(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RollbackLast(id); err != nil {
		t.Fatalf("RollbackLast: %v", err)
	}
	if db.Len() != 2 || db.NumRecords() != 2 {
		t.Fatalf("Len=%d NumRecords=%d after rollback, want 2/2", db.Len(), db.NumRecords())
	}
	if db.Bytes() != bytesBefore {
		t.Fatalf("Bytes = %d after rollback, want %d", db.Bytes(), bytesBefore)
	}
	if db.TotalElements() != elemsBefore {
		t.Fatalf("TotalElements = %d after rollback, want %d", db.TotalElements(), elemsBefore)
	}
	if _, err := db.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(%d) after rollback: err = %v, want ErrNotFound", id, err)
	}
	// The next append must reuse both the ID and the heap space.
	d := seq.Sequence{10, 11}
	id2, err := db.Append(d)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("next Append got id %d, want reused id %d", id2, id)
	}
	got, err := db.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d) || got[0] != 10 || got[1] != 11 {
		t.Fatalf("Get(%d) = %v, want %v", id2, got, d)
	}
	// Earlier records are untouched.
	if got, err := db.Get(0); err != nil || got[2] != 3 {
		t.Fatalf("Get(0) = %v, %v", got, err)
	}
}

func TestRollbackLastRejectsNonNewest(t *testing.T) {
	db, err := NewMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.RollbackLast(0); err == nil {
		t.Fatal("RollbackLast on empty database succeeded")
	}
	if _, err := db.Append(seq.Sequence{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(seq.Sequence{2}); err != nil {
		t.Fatal(err)
	}
	if err := db.RollbackLast(0); err == nil {
		t.Fatal("RollbackLast(0) succeeded with newest record 1")
	}
	if err := db.RollbackLast(1); err != nil {
		t.Fatalf("RollbackLast(1): %v", err)
	}
}

func TestRollbackLastRejectsDeleted(t *testing.T) {
	db, err := NewMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id, err := db.Append(seq.Sequence{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := db.RollbackLast(id); err == nil {
		t.Fatal("RollbackLast succeeded on a tombstoned record")
	}
}

// When the record's bytes cannot be read back (storage fault still active),
// RollbackLast must fall back to tombstoning: the ID is burned but the
// store/index agreement is restored.
func TestRollbackLastTombstoneFallback(t *testing.T) {
	var fb *pagefile.FaultBackend
	db, err := NewMem(Options{
		PageSize:  64, // tiny pages + tiny pool force evictions
		PoolPages: 4,
		WrapBackend: func(b pagefile.Backend) pagefile.Backend {
			fb = pagefile.NewFaultBackend(b, -1)
			return fb
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	long := make(seq.Sequence, 40) // spans more pages than the pool holds
	for i := range long {
		long[i] = float64(i)
	}
	id, err := db.Append(long)
	if err != nil {
		t.Fatal(err)
	}
	fb.Arm(0) // every backend op now fails; the read-back cannot succeed
	err = db.RollbackLast(id)
	fb.Disarm()
	if err != nil {
		t.Fatalf("RollbackLast with failed read-back: %v", err)
	}
	if db.Len() != 0 {
		t.Fatalf("Len = %d after fallback rollback, want 0", db.Len())
	}
	if db.NumRecords() != 1 {
		t.Fatalf("NumRecords = %d, want 1 (ID burned, not truncated)", db.NumRecords())
	}
	if _, err := db.Get(id); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get(%d) = %v, want ErrDeleted", id, err)
	}
	// The database stays usable once the fault clears.
	id2, err := db.Append(seq.Sequence{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id+1 {
		t.Fatalf("next Append got id %d, want %d", id2, id+1)
	}
}
