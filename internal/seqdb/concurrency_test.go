package seqdb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/seq"
)

// Concurrent readers over a shared database must observe consistent data.
func TestConcurrentReaders(t *testing.T) {
	db := newMemDB(t)
	rng := rand.New(rand.NewSource(61))
	const n = 100
	want := make([]seq.Sequence, n)
	for i := range want {
		s := make(seq.Sequence, 1+rng.Intn(50))
		for j := range s {
			s[j] = float64(i)*1000 + float64(j)
		}
		want[i] = s
		if _, err := db.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				id := seq.ID(local.Intn(n))
				s, err := db.Get(id)
				if err != nil {
					errCh <- err
					return
				}
				if !s.Equal(want[id]) {
					errCh <- fmt.Errorf("goroutine %d: sequence %d corrupted", g, id)
					return
				}
			}
		}(g)
	}
	// One goroutine scans concurrently with the random readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := db.Scan(func(id seq.ID, s seq.Sequence) error {
			if !s.Equal(want[id]) {
				return fmt.Errorf("scan: sequence %d corrupted", id)
			}
			return nil
		})
		if err != nil {
			errCh <- err
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
