package seqdb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/seq"
)

func newCachedMem(t *testing.T, cacheBytes int64) *DB {
	t.Helper()
	db, err := NewMem(Options{PageSize: 256, PoolPages: 16, CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func walk(rng *rand.Rand, n int) seq.Sequence {
	s := make(seq.Sequence, n)
	v := rng.Float64()
	for i := range s {
		v += rng.Float64() - 0.5
		s[i] = v
	}
	return s
}

// TestCacheHitSkipsPageIO: the second Get of a sequence is served from the
// decoded-sequence cache — the buffer pool sees zero additional reads and
// the cache counters record exactly one miss then one hit.
func TestCacheHitSkipsPageIO(t *testing.T) {
	db := newCachedMem(t, 1<<20)
	rng := rand.New(rand.NewSource(1))
	s := walk(rng, 50)
	id, err := db.Append(s)
	if err != nil {
		t.Fatal(err)
	}

	db.ResetStats()
	first, err := db.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	reads := db.Stats().Reads
	if reads == 0 {
		t.Fatal("cold Get touched no pool pages")
	}
	second, err := db.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Reads; got != reads {
		t.Fatalf("cached Get performed %d pool reads", got-reads)
	}
	for i := range s {
		if first[i] != s[i] || second[i] != s[i] {
			t.Fatalf("element %d: cold %g, cached %g, want %g", i, first[i], second[i], s[i])
		}
	}
	cs := db.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss / 1 entry", cs)
	}
	if want := cacheEntrySize(s); cs.Bytes != want {
		t.Fatalf("cache holds %d bytes, want %d", cs.Bytes, want)
	}
}

// TestCacheDisabledByDefault: the zero-value Options keep the cache off so
// the paper's experiments see exact page-level I/O accounting.
func TestCacheDisabledByDefault(t *testing.T) {
	db, err := NewMem(Options{PageSize: 256, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id, err := db.Append(seq.Sequence{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	if cs := db.CacheStats(); cs != (CacheStats{}) {
		t.Fatalf("disabled cache recorded activity: %+v", cs)
	}
}

// TestCacheDeleteInvalidates: Delete drops the cached copy, so a deleted
// sequence can never be served stale from memory.
func TestCacheDeleteInvalidates(t *testing.T) {
	db := newCachedMem(t, 1<<20)
	id, err := db.Append(seq.Sequence{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(id); err != nil { // populate the cache
		t.Fatal(err)
	}
	if _, err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(id); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Get after Delete = %v, want ErrDeleted", err)
	}
	if cs := db.CacheStats(); cs.Entries != 0 {
		t.Fatalf("deleted sequence still resident: %+v", cs)
	}
}

// TestCacheRollbackInvalidates: RollbackLast frees the ID for reuse by the
// next Append; a stale cache entry under that ID would silently corrupt
// reads of the successor sequence.
func TestCacheRollbackInvalidates(t *testing.T) {
	db := newCachedMem(t, 1<<20)
	old := seq.Sequence{1, 1, 1}
	id, err := db.Append(old)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(id); err != nil { // cache the doomed sequence
		t.Fatal(err)
	}
	if err := db.RollbackLast(id); err != nil {
		t.Fatal(err)
	}
	fresh := seq.Sequence{9, 9, 9}
	id2, err := db.Append(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("rollback did not free the ID: got %d, want %d", id2, id)
	}
	got, err := db.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if got[i] != fresh[i] {
			t.Fatalf("Get after rollback+reuse returned the stale sequence: %v", got)
		}
	}
}

// TestCacheRespectsByteBudget: residency never exceeds the configured
// budget; old entries are evicted LRU as new ones arrive.
func TestCacheRespectsByteBudget(t *testing.T) {
	const budget = 8 << 10
	db := newCachedMem(t, budget)
	rng := rand.New(rand.NewSource(7))
	var ids []seq.ID
	for i := 0; i < 200; i++ {
		id, err := db.Append(walk(rng, 20))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := db.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.CacheStats()
	if cs.Bytes > budget {
		t.Fatalf("cache holds %d bytes over the %d budget", cs.Bytes, budget)
	}
	if cs.Entries == 0 || cs.Entries >= int64(len(ids)) {
		t.Fatalf("eviction never ran: %d of %d entries resident", cs.Entries, len(ids))
	}
}

// TestCacheOversizedEntryNotCached: a sequence bigger than a whole cache
// shard's budget is served correctly but never admitted (it would evict an
// entire shard for a single entry).
func TestCacheOversizedEntryNotCached(t *testing.T) {
	db := newCachedMem(t, 1024) // 128 bytes per shard
	rng := rand.New(rand.NewSource(9))
	s := walk(rng, 100) // 864 bytes > shard budget
	id, err := db.Append(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := db.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != s[0] {
			t.Fatalf("Get returned wrong data: %g", got[0])
		}
	}
	if cs := db.CacheStats(); cs.Entries != 0 || cs.Hits != 0 {
		t.Fatalf("oversized sequence was cached: %+v", cs)
	}
}

// TestCacheConcurrentGetDelete storms Get against Delete under -race: a
// reader may see the sequence or ErrDeleted, never stale or torn data, and
// after the storm every deleted ID is gone from the cache.
func TestCacheConcurrentGetDelete(t *testing.T) {
	db := newCachedMem(t, 1<<20)
	rng := rand.New(rand.NewSource(11))
	const n = 64
	ids := make([]seq.ID, n)
	want := make([]seq.Sequence, n)
	for i := range ids {
		want[i] = walk(rng, 16)
		id, err := db.Append(want[i])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				j := r.Intn(n)
				s, err := db.Get(ids[j])
				if errors.Is(err, ErrDeleted) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if s[0] != want[j][0] {
					t.Errorf("id %d: read %g, want %g", ids[j], s[0], want[j][0])
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < n; j += 2 {
			if _, err := db.Delete(ids[j]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for j := 0; j < n; j += 2 {
		if _, err := db.Get(ids[j]); !errors.Is(err, ErrDeleted) {
			t.Fatalf("id %d deleted but Get = %v", ids[j], err)
		}
	}
}
