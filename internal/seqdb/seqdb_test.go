package seqdb

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func newMemDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewMem(Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestAppendGet(t *testing.T) {
	db := newMemDB(t)
	s1 := seq.Sequence{1, 2, 3}
	s2 := seq.Sequence{4, 5}
	id1, err := db.Append(s1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := db.Append(s2)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 0 || id2 != 1 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}
	got1, err := db.Get(id1)
	if err != nil || !got1.Equal(s1) {
		t.Fatalf("Get(%d) = %v, %v", id1, got1, err)
	}
	got2, err := db.Get(id2)
	if err != nil || !got2.Equal(s2) {
		t.Fatalf("Get(%d) = %v, %v", id2, got2, err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	if db.TotalElements() != 5 {
		t.Errorf("TotalElements = %d", db.TotalElements())
	}
}

func TestAppendEmptyRejected(t *testing.T) {
	db := newMemDB(t)
	if _, err := db.Append(nil); !errors.Is(err, seq.ErrEmpty) {
		t.Errorf("Append(nil) err = %v", err)
	}
}

func TestGetNotFound(t *testing.T) {
	db := newMemDB(t)
	if _, err := db.Get(5); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(5) err = %v", err)
	}
}

func TestRecordsSpanPages(t *testing.T) {
	db := newMemDB(t)
	// Page payload is 252 bytes; a 100-element sequence is 804 bytes and
	// must span several pages.
	long := make(seq.Sequence, 100)
	for i := range long {
		long[i] = float64(i) * 1.5
	}
	id, err := db.Append(long)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(long) {
		t.Error("spanning record corrupted")
	}
}

func TestScanOrderAndContent(t *testing.T) {
	db := newMemDB(t)
	rng := rand.New(rand.NewSource(1))
	var want []seq.Sequence
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(60)
		s := make(seq.Sequence, n)
		for j := range s {
			s[j] = rng.Float64()
		}
		want = append(want, s)
		if _, err := db.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	var seen int
	err := db.Scan(func(id seq.ID, s seq.Sequence) error {
		if int(id) != seen {
			t.Fatalf("scan order broken: id %d at position %d", id, seen)
		}
		if !s.Equal(want[id]) {
			t.Fatalf("scan content mismatch at %d", id)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 50 {
		t.Errorf("scanned %d of 50", seen)
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := newMemDB(t)
	for i := 0; i < 10; i++ {
		if _, err := db.Append(seq.Sequence{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	stop := errors.New("stop")
	count := 0
	err := db.Scan(func(id seq.ID, s seq.Sequence) error {
		count++
		if count == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Errorf("Scan err = %v", err)
	}
	if count != 3 {
		t.Errorf("visited %d, want 3", count)
	}
}

func TestAppendAll(t *testing.T) {
	db := newMemDB(t)
	first, err := db.AppendAll([]seq.Sequence{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 || db.Len() != 3 {
		t.Errorf("first=%d len=%d", first, db.Len())
	}
	if _, err := db.AppendAll(nil); err != nil {
		t.Errorf("empty AppendAll err = %v", err)
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []seq.Sequence{{1, 2, 3}, {4}, make(seq.Sequence, 200)}
	for i := range want[2] {
		want[2][i] = float64(i)
	}
	for _, s := range want {
		if _, err := db.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != len(want) {
		t.Fatalf("reopened Len = %d", db2.Len())
	}
	for i, s := range want {
		got, err := db2.Get(seq.ID(i))
		if err != nil || !got.Equal(s) {
			t.Errorf("Get(%d) after reopen = %v, %v", i, got, err)
		}
	}
	// Appending after reopen continues the ID space.
	id, err := db2.Append(seq.Sequence{9})
	if err != nil || id != seq.ID(len(want)) {
		t.Errorf("post-reopen Append = %d, %v", id, err)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Error("Open of empty dir succeeded")
	}
}

func TestStatsAccounting(t *testing.T) {
	db := newMemDB(t)
	big := make(seq.Sequence, 500) // ~4KB: spans many 252-byte payloads
	for i := range big {
		big[i] = float64(i)
	}
	id, err := db.Append(big)
	if err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if _, err := db.Get(id); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Reads < 10 {
		t.Errorf("Get of 4KB record read only %d pages", st.Reads)
	}
}

func TestBytes(t *testing.T) {
	db := newMemDB(t)
	if db.Bytes() != 0 {
		t.Error("fresh db has bytes")
	}
	if _, err := db.Append(seq.Sequence{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := db.Bytes(); got != 20 { // 4 header + 2*8
		t.Errorf("Bytes = %d, want 20", got)
	}
}
