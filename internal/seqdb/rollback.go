package seqdb

import (
	"fmt"

	"repro/internal/seq"
)

// RollbackLast undoes the most recent Append: the database's write path
// calls it when indexing a freshly appended sequence fails, so the heap
// never keeps a record the index does not know about. Only the newest
// record can be rolled back (id must equal NumRecords()-1 and be live);
// its directory entry is dropped and the heap tail is truncated logically,
// so the next Append reuses both the ID and the space.
//
// When the record's bytes cannot be read back (the storage fault that
// failed the index write may still be active), the record is tombstoned
// instead — strictly weaker (the ID is burned and the element count stays
// approximate until the directory is rebuilt) but it still restores the
// store/index agreement that searches rely on.
func (db *DB) RollbackLast(id seq.ID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	last := len(db.offsets) - 1
	if last < 0 || int(id) != last {
		return fmt.Errorf("seqdb: RollbackLast(%d): newest record is %d", id, last)
	}
	if db.tombstones[id] {
		return fmt.Errorf("seqdb: RollbackLast(%d): record already deleted", id)
	}
	// The rolled-back ID will be reused by the next Append; a cached copy
	// of the old record must not outlive it. The tombstone fallback path
	// below needs the same (Get would refuse, but a later Repair could
	// resurrect the ID).
	if db.cache != nil {
		db.cache.invalidate(id)
	}
	start := db.offsets[last]
	buf := make([]byte, db.total-start)
	if err := db.readAt(start, buf); err != nil {
		db.tombstoneLocked(id)
		return nil
	}
	s, _, err := seq.Decode(buf)
	if err != nil {
		db.tombstoneLocked(id)
		return nil
	}
	db.offsets = db.offsets[:last]
	db.total = start
	db.elems -= int64(len(s))
	db.live--
	return nil
}

// tombstoneLocked marks id deleted. Caller holds db.mu.
func (db *DB) tombstoneLocked(id seq.ID) {
	if db.tombstones == nil {
		db.tombstones = make(map[seq.ID]bool)
	}
	db.tombstones[id] = true
	db.live--
}
