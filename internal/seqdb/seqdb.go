// Package seqdb implements the sequence database: an append-only heap file
// of variable-length sequences stored over the paged storage layer, with
// random access by sequence ID (used by the post-processing step of every
// search method) and a sequential scan (used by the Naive-Scan and LB-Scan
// baselines). Records may span page boundaries; the per-method disk cost is
// whatever the buffer pool observes.
package seqdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fsx"
	"repro/internal/pagefile"
	"repro/internal/seq"
)

// Options configures a database.
type Options struct {
	// PageSize is the on-disk page size; 0 means pagefile.DefaultPageSize
	// (1 KB, the paper's setting).
	PageSize int
	// PoolPages is the buffer pool capacity in pages; 0 means 64.
	PoolPages int
	// WrapBackend, when non-nil, wraps the raw page backend before the
	// buffer pool is built on it. Fault-injection tests use it to fail
	// storage operations at chosen points.
	WrapBackend func(pagefile.Backend) pagefile.Backend
	// CacheBytes, when positive, enables a decoded-sequence cache of
	// roughly that many bytes: Get serves hot IDs without touching the page
	// layer or re-deserializing. Zero disables the cache (the default, so
	// the paper's per-method disk-access accounting stays exact).
	CacheBytes int64
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.PoolPages == 0 {
		o.PoolPages = 64
	}
	return o
}

// ErrNotFound is returned by Get for IDs that were never appended.
var ErrNotFound = errors.New("seqdb: sequence not found")

const (
	dirMagic   = 0x54574452 // "TWDR"
	dirVersion = 2
	dataFile   = "data.twp"
	dirFile    = "dir.bin"
)

// DB is a sequence heap file. It is safe for concurrent readers; Append
// requires external serialization with respect to other calls.
type DB struct {
	mu      sync.RWMutex
	pool    *pagefile.Pool
	cache   *seqCache // nil unless Options.CacheBytes > 0
	dirPath string    // empty for purely in-memory databases

	offsets []int64 // byte offset of record i in the logical stream
	total   int64   // logical stream length in bytes
	elems   int64   // total number of elements across sequences

	tombstones map[seq.ID]bool // deleted IDs (see Delete)
	live       int             // number of non-deleted sequences
}

// NewMem creates an in-memory database. The buffer pool and page layout are
// identical to the on-disk form, so I/O accounting stays meaningful.
func NewMem(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	var backend pagefile.Backend = pagefile.NewMemBackend(opts.PageSize)
	if opts.WrapBackend != nil {
		backend = opts.WrapBackend(backend)
	}
	pool, err := pagefile.NewPool(backend, opts.PageSize, opts.PoolPages)
	if err != nil {
		return nil, err
	}
	return &DB{pool: pool, cache: newSeqCache(opts.CacheBytes)}, nil
}

// Create creates a new on-disk database inside directory dir (which is
// created if absent; existing database files are truncated).
func Create(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fb, err := pagefile.CreateFile(filepath.Join(dir, dataFile), opts.PageSize)
	if err != nil {
		return nil, err
	}
	var backend pagefile.Backend = fb
	if opts.WrapBackend != nil {
		backend = opts.WrapBackend(backend)
	}
	pool, err := pagefile.NewPool(backend, opts.PageSize, opts.PoolPages)
	if err != nil {
		backend.Close()
		return nil, err
	}
	db := &DB{pool: pool, cache: newSeqCache(opts.CacheBytes), dirPath: filepath.Join(dir, dirFile)}
	if err := db.saveDirectory(); err != nil {
		pool.Close()
		return nil, err
	}
	return db, nil
}

// Open opens an existing on-disk database.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	fb, err := pagefile.OpenFile(filepath.Join(dir, dataFile))
	if err != nil {
		return nil, err
	}
	if fb.PageSize() != opts.PageSize {
		opts.PageSize = fb.PageSize()
	}
	var backend pagefile.Backend = fb
	if opts.WrapBackend != nil {
		backend = opts.WrapBackend(backend)
	}
	pool, err := pagefile.NewPool(backend, opts.PageSize, opts.PoolPages)
	if err != nil {
		backend.Close()
		return nil, err
	}
	db := &DB{pool: pool, cache: newSeqCache(opts.CacheBytes), dirPath: filepath.Join(dir, dirFile)}
	if err := db.loadDirectory(); err != nil {
		pool.Close()
		return nil, err
	}
	return db, nil
}

// Len returns the number of live (non-deleted) sequences.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.live
}

// TotalElements returns the total number of elements across all sequences.
func (db *DB) TotalElements() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.elems
}

// Bytes returns the logical size of the stored data in bytes.
func (db *DB) Bytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.total
}

// Stats returns the buffer pool counters for the data file.
func (db *DB) Stats() pagefile.Stats { return db.pool.Stats() }

// CacheStats returns the decoded-sequence cache counters (zero value when
// the cache is disabled).
func (db *DB) CacheStats() CacheStats {
	if db.cache == nil {
		return CacheStats{}
	}
	return db.cache.stats()
}

// ResetStats zeroes the buffer pool counters (between experiment runs).
func (db *DB) ResetStats() { db.pool.ResetStats() }

// Append stores s and returns its ID. Empty sequences are rejected: their
// feature vector (and hence their index entry) is undefined.
func (db *DB) Append(s seq.Sequence) (seq.ID, error) {
	if s.Empty() {
		return seq.InvalidID, seq.ErrEmpty
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	id := seq.ID(len(db.offsets))
	buf := seq.Encode(make([]byte, 0, seq.EncodedSize(s)), s)
	if err := db.writeAt(db.total, buf); err != nil {
		return seq.InvalidID, err
	}
	db.offsets = append(db.offsets, db.total)
	db.total += int64(len(buf))
	db.elems += int64(len(s))
	db.live++
	return id, nil
}

// AppendAll stores all sequences, returning the ID of the first; IDs are
// consecutive.
func (db *DB) AppendAll(ss []seq.Sequence) (seq.ID, error) {
	if len(ss) == 0 {
		return seq.InvalidID, nil
	}
	first, err := db.Append(ss[0])
	if err != nil {
		return seq.InvalidID, err
	}
	for _, s := range ss[1:] {
		if _, err := db.Append(s); err != nil {
			return seq.InvalidID, err
		}
	}
	return first, nil
}

// Get fetches the sequence with the given ID. When the decoded-sequence
// cache is enabled, the returned sequence may be shared with other callers
// and must be treated as immutable.
func (db *DB) Get(id seq.ID) (seq.Sequence, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if int(id) >= len(db.offsets) {
		return nil, fmt.Errorf("%w: id %d of %d", ErrNotFound, id, len(db.offsets))
	}
	if db.tombstones[id] {
		return nil, fmt.Errorf("%w: id %d", ErrDeleted, id)
	}
	if db.cache != nil {
		if s := db.cache.get(id); s != nil {
			return s, nil
		}
	}
	start := db.offsets[id]
	end := db.total
	if int(id)+1 < len(db.offsets) {
		end = db.offsets[id+1]
	}
	buf := make([]byte, end-start)
	if err := db.readAt(start, buf); err != nil {
		return nil, err
	}
	s, _, err := seq.Decode(buf)
	if err == nil && db.cache != nil {
		db.cache.put(id, s)
	}
	return s, err
}

// Scan calls fn for every stored sequence in ID order, reading pages
// sequentially through the buffer pool. fn returning an error stops the scan
// and propagates the error.
func (db *DB) Scan(fn func(id seq.ID, s seq.Sequence) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	payload := int64(db.pool.PayloadSize())
	var cur *pagefile.Page
	var curIdx int64 = -1
	defer func() {
		if cur != nil {
			cur.Unpin()
		}
	}()
	readInto := func(off int64, dst []byte) error {
		for len(dst) > 0 {
			idx := off / payload
			if idx != curIdx {
				if cur != nil {
					cur.Unpin()
					cur = nil
				}
				p, err := db.pool.Fetch(pagefile.PageID(idx))
				if err != nil {
					return err
				}
				cur, curIdx = p, idx
			}
			n := copy(dst, cur.Payload()[off%payload:])
			dst = dst[n:]
			off += int64(n)
		}
		return nil
	}
	for i, start := range db.offsets {
		if db.tombstones[seq.ID(i)] {
			continue
		}
		end := db.total
		if i+1 < len(db.offsets) {
			end = db.offsets[i+1]
		}
		buf := make([]byte, end-start)
		if err := readInto(start, buf); err != nil {
			return err
		}
		s, _, err := seq.Decode(buf)
		if err != nil {
			return fmt.Errorf("seqdb: record %d: %w", i, err)
		}
		if err := fn(seq.ID(i), s); err != nil {
			return err
		}
	}
	return nil
}

// writeAt writes buf at logical offset off, allocating pages as needed.
// Caller holds db.mu.
func (db *DB) writeAt(off int64, buf []byte) error {
	payload := int64(db.pool.PayloadSize())
	for len(buf) > 0 {
		idx := off / payload
		in := off % payload
		for int64(db.pool.NumPages()) <= idx {
			p, err := db.pool.Alloc()
			if err != nil {
				return err
			}
			p.Unpin()
		}
		p, err := db.pool.Fetch(pagefile.PageID(idx))
		if err != nil {
			return err
		}
		n := copy(p.Payload()[in:], buf)
		p.MarkDirty()
		p.Unpin()
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// readAt fills buf from logical offset off. Caller holds db.mu (read).
func (db *DB) readAt(off int64, buf []byte) error {
	payload := int64(db.pool.PayloadSize())
	for len(buf) > 0 {
		idx := off / payload
		in := off % payload
		p, err := db.pool.Fetch(pagefile.PageID(idx))
		if err != nil {
			return err
		}
		n := copy(buf, p.Payload()[in:])
		p.Unpin()
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// Flush persists data pages and the directory (no-op for memory databases'
// directory). On file-backed databases the data file is fsynced before the
// directory is swapped in, so a manifest that names an offset always has
// durable bytes behind it.
func (db *DB) Flush() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.pool.Sync(); err != nil {
		return err
	}
	return db.saveDirectory()
}

// ScanAll calls fn for every record slot in ID order, including
// tombstoned ones — the full dense ID space a replica must mirror for its
// IDs to line up with the primary's. Tombstoned records whose bytes no
// longer decode (best-effort rollback leftovers) are reported with a nil
// sequence rather than an error.
func (db *DB) ScanAll(fn func(id seq.ID, s seq.Sequence, deleted bool) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for i, start := range db.offsets {
		end := db.total
		if i+1 < len(db.offsets) {
			end = db.offsets[i+1]
		}
		buf := make([]byte, end-start)
		if err := db.readAt(start, buf); err != nil {
			return err
		}
		deleted := db.tombstones[seq.ID(i)]
		s, _, err := seq.Decode(buf)
		if err != nil {
			if !deleted {
				return fmt.Errorf("seqdb: record %d: %w", i, err)
			}
			s = nil
		}
		if err := fn(seq.ID(i), s, deleted); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and releases the database.
func (db *DB) Close() error {
	if err := db.Flush(); err != nil {
		db.pool.Close()
		return err
	}
	return db.pool.Close()
}

// saveDirectory writes the offset directory. Caller must not hold db.mu for
// writing concurrently. No-op when the database is in-memory.
func (db *DB) saveDirectory() error {
	if db.dirPath == "" {
		return nil
	}
	buf := make([]byte, 0, 24+8*len(db.offsets))
	buf = binary.LittleEndian.AppendUint32(buf, dirMagic)
	buf = binary.LittleEndian.AppendUint32(buf, dirVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(db.offsets)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(db.elems))
	for _, off := range db.offsets {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(off))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(db.total))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(db.tombstones)))
	for id := range db.tombstones {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	// WriteFileSync fsyncs the temp file before the rename and the parent
	// directory after it: the manifest swap used to be atomic but not
	// durable — a power failure right after Flush could roll the rename
	// back (or leave a zero-length manifest), silently dropping appends
	// the caller was told were persisted.
	return fsx.WriteFileSync(db.dirPath, buf, 0o644)
}

func (db *DB) loadDirectory() error {
	raw, err := os.ReadFile(db.dirPath)
	if err != nil {
		return err
	}
	if len(raw) < 24 {
		return errors.New("seqdb: directory file truncated")
	}
	if binary.LittleEndian.Uint32(raw[0:]) != dirMagic {
		return errors.New("seqdb: bad directory magic")
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != dirVersion {
		return fmt.Errorf("seqdb: unsupported directory version %d", v)
	}
	n := int(binary.LittleEndian.Uint64(raw[8:]))
	db.elems = int64(binary.LittleEndian.Uint64(raw[16:]))
	if len(raw) < 24+8*n+8 {
		return errors.New("seqdb: directory file truncated")
	}
	db.offsets = make([]int64, n)
	off := 24
	for i := 0; i < n; i++ {
		db.offsets[i] = int64(binary.LittleEndian.Uint64(raw[off:]))
		off += 8
	}
	db.total = int64(binary.LittleEndian.Uint64(raw[off:]))
	off += 8
	if len(raw) < off+4 {
		return errors.New("seqdb: directory missing tombstone section")
	}
	nt := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4
	if len(raw) < off+4*nt {
		return errors.New("seqdb: directory tombstone section truncated")
	}
	if nt > 0 {
		db.tombstones = make(map[seq.ID]bool, nt)
		for i := 0; i < nt; i++ {
			db.tombstones[seq.ID(binary.LittleEndian.Uint32(raw[off:]))] = true
			off += 4
		}
	}
	db.live = n - nt
	return nil
}
