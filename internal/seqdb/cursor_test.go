package seqdb

import (
	"testing"

	"repro/internal/seq"
)

func TestCursorFullIteration(t *testing.T) {
	db := newMemDB(t)
	for i := 0; i < 10; i++ {
		if _, err := db.Append(seq.Sequence{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c := db.NewCursor()
	var ids []seq.ID
	for c.Next() {
		ids = append(ids, c.ID())
		if c.Sequence()[0] != float64(c.ID()) {
			t.Fatalf("id %d content %v", c.ID(), c.Sequence())
		}
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if len(ids) != 10 {
		t.Fatalf("iterated %d of 10", len(ids))
	}
	// Exhausted cursor stays exhausted.
	if c.Next() {
		t.Error("Next after exhaustion returned true")
	}
}

func TestCursorSkipsDeleted(t *testing.T) {
	db := newMemDB(t)
	for i := 0; i < 6; i++ {
		if _, err := db.Append(seq.Sequence{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []seq.ID{0, 3} {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	c := db.NewCursor()
	var ids []seq.ID
	for c.Next() {
		ids = append(ids, c.ID())
	}
	want := []seq.ID{1, 2, 4, 5}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestCursorSeek(t *testing.T) {
	db := newMemDB(t)
	for i := 0; i < 10; i++ {
		if _, err := db.Append(seq.Sequence{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c := db.NewCursor()
	c.Seek(7)
	if !c.Next() || c.ID() != 7 {
		t.Fatalf("after Seek(7): id %d", c.ID())
	}
	// Seek backwards works too.
	c.Seek(2)
	if !c.Next() || c.ID() != 2 {
		t.Fatalf("after Seek(2): id %d", c.ID())
	}
	// Seek past the end exhausts immediately.
	c.Seek(100)
	if c.Next() {
		t.Error("Next after Seek(100) returned true")
	}
	if c.Err() != nil {
		t.Errorf("Err = %v", c.Err())
	}
}

func TestCursorObservesAppends(t *testing.T) {
	db := newMemDB(t)
	if _, err := db.Append(seq.Sequence{1}); err != nil {
		t.Fatal(err)
	}
	c := db.NewCursor()
	if !c.Next() {
		t.Fatal("first Next failed")
	}
	if _, err := db.Append(seq.Sequence{2}); err != nil {
		t.Fatal(err)
	}
	if !c.Next() || c.ID() != 1 {
		t.Errorf("cursor missed appended sequence (id %d)", c.ID())
	}
}
