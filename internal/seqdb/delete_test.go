package seqdb

import (
	"errors"
	"testing"

	"repro/internal/seq"
)

func TestDeleteBasics(t *testing.T) {
	db := newMemDB(t)
	for i := 0; i < 5; i++ {
		if _, err := db.Append(seq.Sequence{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := db.Delete(2)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if db.Len() != 4 {
		t.Errorf("Len = %d, want 4", db.Len())
	}
	if db.NumRecords() != 5 {
		t.Errorf("NumRecords = %d, want 5", db.NumRecords())
	}
	if !db.Deleted(2) || db.Deleted(1) {
		t.Error("Deleted() wrong")
	}
	if _, err := db.Get(2); !errors.Is(err, ErrDeleted) {
		t.Errorf("Get(deleted) err = %v", err)
	}
	// Other IDs unaffected.
	if s, err := db.Get(3); err != nil || s[0] != 3 {
		t.Errorf("Get(3) = %v, %v", s, err)
	}
	// Double delete reports false.
	ok, err = db.Delete(2)
	if err != nil || ok {
		t.Errorf("second Delete = %v, %v", ok, err)
	}
	// Out of range errors.
	if _, err := db.Delete(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(99) err = %v", err)
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	db := newMemDB(t)
	for i := 0; i < 10; i++ {
		if _, err := db.Append(seq.Sequence{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []seq.ID{0, 4, 9} {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var seen []seq.ID
	if err := db.Scan(func(id seq.ID, s seq.Sequence) error {
		seen = append(seen, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []seq.ID{1, 2, 3, 5, 6, 7, 8}
	if len(seen) != len(want) {
		t.Fatalf("scanned %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("scanned %v, want %v", seen, want)
		}
	}
}

func TestTombstonesPersist(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := db.Append(seq.Sequence{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 4 || db2.NumRecords() != 6 {
		t.Fatalf("reopened Len=%d NumRecords=%d", db2.Len(), db2.NumRecords())
	}
	if _, err := db2.Get(1); !errors.Is(err, ErrDeleted) {
		t.Errorf("Get(1) after reopen: %v", err)
	}
	if s, err := db2.Get(4); err != nil || s[0] != 4 {
		t.Errorf("Get(4) after reopen: %v, %v", s, err)
	}
	// Appending continues past the tombstones.
	id, err := db2.Append(seq.Sequence{42})
	if err != nil || id != 6 {
		t.Errorf("Append after reopen = %d, %v", id, err)
	}
}
