// Package fastmap implements the FastMap feature-extraction algorithm of
// Faloutsos & Lin, used by Yi et al.'s index method for time-warped
// similarity search (paper §3.3). FastMap embeds objects of an arbitrary
// distance space into k-dimensional Euclidean space. Because the embedding
// does not lower-bound the original distance when that distance is
// non-metric (DTW is not), range queries in the embedded space can cause
// false dismissal — the deficiency that motivated the paper's Dtw-lb. This
// package exists to reproduce that behaviour (experiment 5).
package fastmap

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/seq"
)

// DistFunc measures the distance between two sequences (typically the time
// warping distance).
type DistFunc func(a, b seq.Sequence) float64

// axis holds the pivot pair defining one embedding coordinate.
type axis struct {
	a, b    seq.Sequence
	coordsA []float64 // a's coordinates on earlier axes
	coordsB []float64
	dab     float64 // adjusted distance between the pivots on this axis
	dabSq   float64
}

// Map is a fitted FastMap embedding. It can project unseen objects (query
// sequences) into the embedded space.
type Map struct {
	k    int
	dist DistFunc
	axes []axis
}

// Fit learns a k-dimensional FastMap embedding of data and returns the Map
// together with the embedded coordinates of every input object (in input
// order). iters controls the farthest-pair pivot heuristic (the original
// paper uses 5). rng drives the heuristic's random starting points.
func Fit(data []seq.Sequence, k int, dist DistFunc, iters int, rng *rand.Rand) (*Map, [][]float64, error) {
	if len(data) < 2 {
		return nil, nil, fmt.Errorf("fastmap: need at least 2 objects, got %d", len(data))
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("fastmap: need k >= 1, got %d", k)
	}
	if iters < 1 {
		iters = 5
	}
	m := &Map{k: k, dist: dist}
	coords := make([][]float64, len(data))
	for i := range coords {
		coords[i] = make([]float64, 0, k)
	}
	// adj returns the squared adjusted distance between objects i and j on
	// the current axis (original distance minus already-explained parts).
	adj := func(i, j int) float64 {
		d := dist(data[i], data[j])
		sq := d * d
		for a := range coords[i] {
			diff := coords[i][a] - coords[j][a]
			sq -= diff * diff
		}
		if sq < 0 {
			sq = 0
		}
		return sq
	}
	for a := 0; a < k; a++ {
		// Farthest-pair heuristic.
		pb := rng.Intn(len(data))
		pa := pb
		for it := 0; it < iters; it++ {
			far, farD := pa, -1.0
			for i := range data {
				if i == pb {
					continue
				}
				if d := adj(i, pb); d > farD {
					far, farD = i, d
				}
			}
			if far == pa {
				break
			}
			pa, pb = pb, far
		}
		dabSq := adj(pa, pb)
		ax := axis{
			a:       data[pa].Clone(),
			b:       data[pb].Clone(),
			coordsA: append([]float64(nil), coords[pa]...),
			coordsB: append([]float64(nil), coords[pb]...),
			dab:     math.Sqrt(dabSq),
			dabSq:   dabSq,
		}
		m.axes = append(m.axes, ax)
		if ax.dab == 0 {
			// All remaining adjusted distances are zero: pad with zeros.
			for i := range coords {
				coords[i] = append(coords[i], 0)
			}
			continue
		}
		daCache := make([]float64, len(data))
		for i := range data {
			daCache[i] = adj(i, pa)
		}
		dbCache := make([]float64, len(data))
		for i := range data {
			dbCache[i] = adj(i, pb)
		}
		for i := range coords {
			x := (daCache[i] + dabSq - dbCache[i]) / (2 * ax.dab)
			coords[i] = append(coords[i], x)
		}
	}
	return m, coords, nil
}

// K returns the embedding dimensionality.
func (m *Map) K() int { return m.k }

// Project embeds an unseen object into the learned space.
func (m *Map) Project(s seq.Sequence) []float64 {
	x := make([]float64, 0, m.k)
	adjTo := func(p seq.Sequence, pCoords []float64) float64 {
		d := m.dist(s, p)
		sq := d * d
		for a := range x {
			diff := x[a] - pCoords[a]
			sq -= diff * diff
		}
		if sq < 0 {
			sq = 0
		}
		return sq
	}
	for _, ax := range m.axes {
		if ax.dab == 0 {
			x = append(x, 0)
			continue
		}
		da := adjTo(ax.a, ax.coordsA)
		db := adjTo(ax.b, ax.coordsB)
		x = append(x, (da+ax.dabSq-db)/(2*ax.dab))
	}
	return x
}
