package fastmap

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dtw"
	"repro/internal/seq"
)

func euclid1D(a, b seq.Sequence) float64 {
	// Treat length-1 sequences as points on a line.
	return math.Abs(a[0] - b[0])
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	one := []seq.Sequence{{1}}
	if _, _, err := Fit(one, 2, euclid1D, 5, rng); err == nil {
		t.Error("Fit accepted < 2 objects")
	}
	two := []seq.Sequence{{1}, {2}}
	if _, _, err := Fit(two, 0, euclid1D, 5, rng); err == nil {
		t.Error("Fit accepted k = 0")
	}
}

// For points on a line with the true metric, a 1-D FastMap embedding must
// preserve all pairwise distances exactly.
func TestFitExactOnLine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var data []seq.Sequence
	for i := 0; i < 20; i++ {
		data = append(data, seq.Sequence{rng.Float64() * 100})
	}
	m, coords, err := Fit(data, 1, euclid1D, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Fatalf("K = %d", m.K())
	}
	for i := range data {
		for j := range data {
			got := math.Abs(coords[i][0] - coords[j][0])
			want := euclid1D(data[i], data[j])
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("pair (%d,%d): embedded %g, true %g", i, j, got, want)
			}
		}
	}
}

// Project must reproduce the fitted coordinates for the training objects
// (up to heuristic numerical noise).
func TestProjectConsistentWithFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var data []seq.Sequence
	for i := 0; i < 15; i++ {
		data = append(data, seq.Sequence{rng.Float64() * 10})
	}
	m, coords, err := Fit(data, 1, euclid1D, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		p := m.Project(s)
		if len(p) != 1 {
			t.Fatalf("Project returned %d dims", len(p))
		}
		if math.Abs(p[0]-coords[i][0]) > 1e-6 {
			t.Fatalf("object %d: Project %g, Fit %g", i, p[0], coords[i][0])
		}
	}
}

func TestFitDegenerateIdenticalObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := []seq.Sequence{{5}, {5}, {5}}
	_, coords, err := Fit(data, 2, euclid1D, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coords {
		for a := range coords[i] {
			if coords[i][a] != 0 {
				t.Fatalf("identical objects got nonzero coordinate %g", coords[i][a])
			}
		}
	}
}

// With DTW as the distance, embedded distances are NOT guaranteed to lower
// bound DTW — demonstrate that a violation actually occurs on random walks,
// which is the behavioural point of this package.
func TestEmbeddingIsNotALowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var data []seq.Sequence
	for i := 0; i < 40; i++ {
		n := 5 + rng.Intn(10)
		s := make(seq.Sequence, n)
		s[0] = rng.Float64() * 10
		for j := 1; j < n; j++ {
			s[j] = s[j-1] + rng.Float64()*2 - 1
		}
		data = append(data, s)
	}
	dist := func(a, b seq.Sequence) float64 { return dtw.Distance(a, b, seq.LInf) }
	_, coords, err := Fit(data, 2, dist, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for i := 0; i < len(data) && !violated; i++ {
		for j := i + 1; j < len(data); j++ {
			emb := 0.0
			for a := range coords[i] {
				d := coords[i][a] - coords[j][a]
				emb += d * d
			}
			emb = math.Sqrt(emb)
			if emb > dist(data[i], data[j])+1e-9 {
				violated = true
				break
			}
		}
	}
	if !violated {
		t.Skip("no lower-bound violation in this sample (rare); embedding happened to contract")
	}
}

func TestProjectDimMatchesK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var data []seq.Sequence
	for i := 0; i < 10; i++ {
		data = append(data, seq.Sequence{rng.Float64(), rng.Float64()})
	}
	dist := func(a, b seq.Sequence) float64 { return dtw.Distance(a, b, seq.LInf) }
	for _, k := range []int{1, 2, 3} {
		m, coords, err := Fit(data, k, dist, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(coords[0]) != k {
			t.Errorf("k=%d: coords have %d dims", k, len(coords[0]))
		}
		if got := m.Project(seq.Sequence{0.5, 0.5}); len(got) != k {
			t.Errorf("k=%d: Project returned %d dims", k, len(got))
		}
	}
}
