//go:build race

package flatidx

// raceEnabled reports whether the race detector instruments this build.
// Its allocation tracking makes sync.Pool operations allocate, so the
// zero-allocation regression tests are skipped under -race (the race run
// covers correctness; `go test` covers the alloc budget).
const raceEnabled = true
