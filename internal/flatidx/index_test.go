package flatidx

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
)

// model is a map-backed reference the index is checked against.
type model map[Entry]struct{}

func checkAgainstModel(t *testing.T, x *Index, m model) {
	t.Helper()
	if x.Len() != len(m) {
		t.Fatalf("Len=%d, model has %d", x.Len(), len(m))
	}
	got := x.Entries(nil)
	if len(got) != len(m) {
		t.Fatalf("Entries returned %d, model has %d", len(got), len(m))
	}
	for _, e := range got {
		if _, ok := m[e]; !ok {
			t.Fatalf("index holds %+v, model does not", e)
		}
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteMergeAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x := New(Options{MergeThreshold: -1}) // merge only when the test says so
	m := model{}
	pool := randEntries(rng, 400)
	for step := 0; step < 4000; step++ {
		e := pool[rng.Intn(len(pool))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			x.Insert(e, nil)
			m[e] = struct{}{}
		case 6, 7, 8:
			_, want := m[e]
			if got := x.Delete(e); got != want {
				t.Fatalf("step %d: Delete(%d)=%v, model says %v", step, e.ID, got, want)
			}
			delete(m, e)
		case 9:
			x.Merge()
			if x.DeltaEntries() != 0 {
				t.Fatalf("step %d: delta non-empty after Merge", step)
			}
		}
		if step%500 == 0 {
			checkAgainstModel(t, x, m)
		}
	}
	checkAgainstModel(t, x, m)

	// Range queries agree with the model regardless of merge state.
	var lo, hi [4]float64
	for d := 0; d < 4; d++ {
		lo[d], hi[d] = -5, 5
	}
	got := x.AppendRange(nil, &lo, &hi)
	var want []Entry
	for e := range m {
		want = append(want, e)
	}
	want = bruteRange(want, lo, hi)
	sortEntries(got)
	sortEntries(want)
	if len(got) != len(want) {
		t.Fatalf("range got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestInsertSetSemantics(t *testing.T) {
	x := New(Options{MergeThreshold: -1})
	e := Entry{ID: 1, Point: [4]float64{1, 2, 3, 4}}
	x.Insert(e, nil)
	x.Insert(e, nil) // duplicate add is a no-op
	if x.Len() != 1 {
		t.Fatalf("Len=%d after duplicate insert", x.Len())
	}
	x.Merge()
	x.Insert(e, nil) // already in snapshot: no-op
	if x.Len() != 1 || x.DeltaEntries() != 0 {
		t.Fatalf("Len=%d delta=%d after insert of snapshot entry", x.Len(), x.DeltaEntries())
	}
	if !x.Delete(e) {
		t.Fatal("Delete of snapshot entry returned false")
	}
	if x.Len() != 0 || x.DeltaEntries() != 1 {
		t.Fatalf("Len=%d delta=%d after tombstone", x.Len(), x.DeltaEntries())
	}
	x.Insert(e, nil) // resurrect: clears the tombstone, no delta add
	if x.Len() != 1 || x.DeltaEntries() != 0 {
		t.Fatalf("Len=%d delta=%d after resurrect", x.Len(), x.DeltaEntries())
	}
	if !x.Contains(e) {
		t.Fatal("resurrected entry not found")
	}
}

func TestBackgroundMergeTriggers(t *testing.T) {
	x := New(Options{MergeThreshold: 8})
	rng := rand.New(rand.NewSource(59))
	for _, e := range randEntries(rng, 64) {
		x.Insert(e, nil)
	}
	if err := x.Close(); err != nil { // waits for in-flight merges
		t.Fatal(err)
	}
	if x.Merges() == 0 {
		t.Fatal("no background merge ran despite threshold 8 and 64 inserts")
	}
	if x.Len() != 64 {
		t.Fatalf("Len=%d after merges, want 64", x.Len())
	}
	if gen := x.Generation(); gen == 0 {
		t.Fatal("generation never advanced")
	}
	if x.MergeHist().Count() != x.Merges() {
		t.Fatalf("merge histogram count %d != merges %d", x.MergeHist().Count(), x.Merges())
	}
}

func TestNearestWalkAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := New(Options{MergeThreshold: -1})
	entries := randEntries(rng, 500)
	// Half via bulk snapshot, a quarter live in the delta, a quarter deleted.
	if err := x.BulkLoad(entries[:250], nil); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries[250:375] {
		x.Insert(e, nil)
	}
	live := append([]Entry(nil), entries[:125]...)
	live = append(live, entries[250:375]...)
	for _, e := range entries[125:250] {
		if !x.Delete(e) {
			t.Fatalf("Delete(%d) failed", e.ID)
		}
	}
	for trial := 0; trial < 20; trial++ {
		var p [4]float64
		for d := 0; d < 4; d++ {
			p[d] = rng.NormFloat64() * 10
		}
		var got []float64
		x.NearestWalk(&p, func(e Entry, dist float64) bool {
			want := 0.0
			for d := 0; d < 4; d++ {
				g := e.Point[d] - p[d]
				if g < 0 {
					g = -g
				}
				if g > want {
					want = g
				}
			}
			if dist != want {
				t.Fatalf("walk dist %g for entry %d, exact L∞ is %g", dist, e.ID, want)
			}
			got = append(got, dist)
			return len(got) < 40
		})
		if len(got) != 40 {
			t.Fatalf("walk yielded %d entries", len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("walk order violated at %d: %g < %g", i, got[i], got[i-1])
			}
		}
		// The walk's prefix must be the true k smallest distances.
		dists := make([]float64, len(live))
		for i, e := range live {
			max := 0.0
			for d := 0; d < 4; d++ {
				g := e.Point[d] - p[d]
				if g < 0 {
					g = -g
				}
				if g > max {
					max = g
				}
			}
			dists[i] = max
		}
		for i := 0; i < len(dists); i++ {
			for j := i + 1; j < len(dists); j++ {
				if dists[j] < dists[i] {
					dists[i], dists[j] = dists[j], dists[i]
				}
			}
		}
		for i := range got {
			if got[i] != dists[i] {
				t.Fatalf("trial %d: walk dist[%d]=%g, brute force says %g", trial, i, got[i], dists[i])
			}
		}
	}
}

func TestSaveLoadRoundtripAndCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	dir := t.TempDir()
	path := filepath.Join(dir, "feature.flat")
	x := New(Options{MergeThreshold: -1})
	entries := randEntries(rng, 300)
	envs := randEnvs(rng, 300)
	if err := x.BulkLoad(entries[:200], envs[:200]); err != nil {
		t.Fatal(err)
	}
	for i, e := range entries[200:] {
		x.Insert(e, &envs[200+i])
	}
	if err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	if x.DeltaEntries() != 0 {
		t.Fatal("Save did not merge the delta")
	}

	y, err := Load(path, Options{MergeThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if y.Len() != 300 || y.Generation() != x.Generation() {
		t.Fatalf("loaded Len=%d gen=%d, want 300/%d", y.Len(), y.Generation(), x.Generation())
	}
	got := y.Entries(nil)
	want := x.Entries(nil)
	sortEntries(got)
	sortEntries(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loaded entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Envelopes survive persistence.
	vy := y.view.Load()
	if !vy.snap.HasEnvelopes() {
		t.Fatal("loaded snapshot lost its envelopes")
	}

	// A flipped byte must fail the CRC. The mmap path defers body checks to
	// CheckInvariants (lazy CRC), so pin this half to the eager fallback.
	t.Setenv("TWSIM_NO_MMAP", "1")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, Options{}); err == nil {
		t.Fatal("corrupt snapshot file loaded without error")
	}
	// Truncation too.
	if err := os.WriteFile(path, buf[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, Options{}); err == nil {
		t.Fatal("truncated snapshot file loaded without error")
	}
}

func TestBulkLoadRequiresEmpty(t *testing.T) {
	x := New(Options{MergeThreshold: -1})
	x.Insert(Entry{ID: 1}, nil)
	if err := x.BulkLoad([]Entry{{ID: 2}}, nil); err == nil {
		t.Fatal("BulkLoad into non-empty index succeeded")
	}
}

func TestEnvelopesFlowThroughMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	x := New(Options{MergeThreshold: -1})
	entries := randEntries(rng, 50)
	envs := randEnvs(rng, 50)
	for i := range entries {
		x.Insert(entries[i], &envs[i])
	}
	x.Merge()
	v := x.view.Load()
	if !v.snap.HasEnvelopes() {
		t.Fatal("merged snapshot has no envelope region")
	}
	var pe seq.PAAEnvelope
	for j := 0; j < v.snap.Len(); j++ {
		id := v.snap.item(j).ID
		if !v.snap.env(j, &pe) {
			t.Fatalf("item %d lost its envelope in merge", id)
		}
		if pe != envs[id-1] {
			t.Fatalf("item %d envelope corrupted in merge", id)
		}
	}
	// A second merge (after more churn) must carry envelopes forward from
	// the slab, not lose them.
	x.Delete(entries[0])
	x.Insert(entries[0], nil) // resurrect drops nothing: env still in slab? (deleted+resurrected keeps slab copy)
	x.Delete(entries[1])
	x.Merge()
	v = x.view.Load()
	for j := 0; j < v.snap.Len(); j++ {
		id := v.snap.item(j).ID
		if !v.snap.env(j, &pe) || pe != envs[id-1] {
			t.Fatalf("item %d envelope lost across second merge", id)
		}
	}
}
