//go:build !race

package flatidx

const raceEnabled = false
