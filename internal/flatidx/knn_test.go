package flatidx

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
)

func linf(e *Entry, p *[4]float64) float64 {
	max := 0.0
	for d := 0; d < 4; d++ {
		g := e.Point[d] - p[d]
		if g < 0 {
			g = -g
		}
		if g > max {
			max = g
		}
	}
	return max
}

// envLB is a deterministic stand-in for LB_PAA in the walk tests: any
// nonnegative function of the stored envelope exercises the re-key logic
// the same way the real bound does.
func envLB(pe *seq.PAAEnvelope) float64 {
	acc := 0.0
	for k := 0; k < seq.PAASegments; k++ {
		if pe.Min[k] > 0 {
			acc += pe.Min[k]
		}
	}
	return acc
}

// TestNearestWalkEnvKeys checks the two-level frontier's contract on a
// snapshot ∪ delta index where both sides carry envelopes: the emitted key
// stream is non-decreasing, every emitted key equals max(L∞ mindist,
// sharpen(stored envelope)) — for snapshot items AND delta adds — and a
// full enumeration yields exactly the live entry set in both modes.
func TestNearestWalkEnvKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	x := New(Options{MergeThreshold: -1})
	entries := randEntries(rng, 400)
	envs := randEnvs(rng, 400)
	if err := x.BulkLoad(entries[:300], envs[:300]); err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 400; i++ {
		x.Insert(entries[i], &envs[i])
	}
	wantLB := make(map[seq.ID]float64, 400)
	for i := range entries {
		wantLB[entries[i].ID] = envLB(&envs[i])
	}
	sawRaisedDelta := false
	var repushes int64
	for trial := 0; trial < 10; trial++ {
		var p [4]float64
		for d := 0; d < 4; d++ {
			p[d] = rng.NormFloat64() * 10
		}
		seen := make(map[seq.ID]struct{}, 400)
		prev := -1.0
		ws := x.NearestWalkEnv(&p, nil, envLB, func(e Entry, key float64) bool {
			if key < prev {
				t.Fatalf("key stream decreased: %g after %g", key, prev)
			}
			prev = key
			want := linf(&e, &p)
			if lb := wantLB[e.ID]; lb > want {
				want = lb
				if e.ID > 300 {
					sawRaisedDelta = true
				}
			}
			if key != want {
				t.Fatalf("entry %d emitted at key %g, want max(mindist, lb) = %g", e.ID, key, want)
			}
			seen[e.ID] = struct{}{}
			return true
		})
		if len(seen) != 400 {
			t.Fatalf("full walk emitted %d distinct entries, want 400", len(seen))
		}
		if ws.Pushes == 0 {
			t.Fatal("walk reported zero frontier pushes")
		}
		repushes += ws.Repushes
	}
	if repushes == 0 {
		t.Fatal("envelope-rich walks reported zero re-pushes")
	}
	if !sawRaisedDelta {
		t.Fatal("no delta add was envelope-raised; delta re-key untested")
	}
}

// TestNearestWalkEnvNilSharpenMatchesPlain: with a nil sharpener the keyed
// walk must emit exactly the NearestWalk stream (entry and distance), so
// ordering-off callers route through one code path without behavior drift.
func TestNearestWalkEnvNilSharpenMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	x := New(Options{MergeThreshold: -1})
	entries := randEntries(rng, 200)
	envs := randEnvs(rng, 200)
	if err := x.BulkLoad(entries[:150], envs[:150]); err != nil {
		t.Fatal(err)
	}
	for i := 150; i < 200; i++ {
		x.Insert(entries[i], &envs[i])
	}
	for trial := 0; trial < 10; trial++ {
		var p [4]float64
		for d := 0; d < 4; d++ {
			p[d] = rng.NormFloat64() * 10
		}
		type emit struct {
			id   seq.ID
			dist float64
		}
		var plain, keyed []emit
		x.NearestWalk(&p, func(e Entry, dist float64) bool {
			plain = append(plain, emit{e.ID, dist})
			return true
		})
		x.NearestWalkEnv(&p, nil, nil, func(e Entry, key float64) bool {
			keyed = append(keyed, emit{e.ID, key})
			return true
		})
		if len(plain) != len(keyed) {
			t.Fatalf("stream lengths differ: %d vs %d", len(plain), len(keyed))
		}
		for i := range plain {
			if plain[i] != keyed[i] {
				t.Fatalf("stream diverges at %d: plain %+v, keyed %+v", i, plain[i], keyed[i])
			}
		}
	}
}

// TestNearestWalkAllocFree enforces the pooled frontier: a steady-state
// walk — plain or envelope-keyed — performs zero allocations.
func TestNearestWalkAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budget not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(103))
	x := New(Options{MergeThreshold: -1})
	entries := randEntries(rng, 600)
	envs := randEnvs(rng, 600)
	if err := x.BulkLoad(entries[:500], envs[:500]); err != nil {
		t.Fatal(err)
	}
	for i := 500; i < 600; i++ {
		x.Insert(entries[i], &envs[i])
	}
	p := [4]float64{1, -2, 3, -4}
	n := 0
	plain := func(e Entry, dist float64) bool {
		n++
		return n < 50
	}
	keyed := func(e Entry, key float64) bool {
		n++
		return n < 50
	}
	x.NearestWalk(&p, plain) // warm the pool
	if avg := testing.AllocsPerRun(20, func() {
		n = 0
		x.NearestWalk(&p, plain)
	}); avg != 0 {
		t.Fatalf("NearestWalk allocates %.1f per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		n = 0
		x.NearestWalkEnv(&p, nil, envLB, keyed)
	}); avg != 0 {
		t.Fatalf("NearestWalkEnv allocates %.1f per run, want 0", avg)
	}
}

// TestLoadMmapIsOHeader: opening a persisted multi-MB snapshot through the
// mmap path must not read the file body — Load reports zero explicitly-read
// bytes and a live mapping covering the file, and the index answers queries
// identically to the eager fallback open.
func TestLoadMmapIsOHeader(t *testing.T) {
	if os.Getenv("TWSIM_NO_MMAP") != "" {
		t.Skip("mmap disabled in this environment")
	}
	rng := rand.New(rand.NewSource(107))
	x := New(Options{MergeThreshold: -1})
	n := 20000 // ~5.7 MB slab with envelopes
	entries := randEntries(rng, n)
	envs := randEnvs(rng, n)
	if err := x.BulkLoad(entries, envs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.flat")
	if err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 2<<20 {
		t.Fatalf("test snapshot only %d bytes; grow it to stay a meaningful O(header) check", fi.Size())
	}

	mm, err := Load(path, Options{MergeThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := mm.OpenBytesRead(); got != 0 {
		t.Fatalf("mmap open explicitly read %d bytes, want 0", got)
	}
	if got := mm.MmapBytes(); got != fi.Size() {
		t.Fatalf("MmapBytes=%d, want file size %d", got, fi.Size())
	}

	t.Setenv("TWSIM_NO_MMAP", "1")
	fb, err := Load(path, Options{MergeThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := fb.OpenBytesRead(); got != fi.Size() {
		t.Fatalf("fallback open read %d bytes, want whole file %d", got, fi.Size())
	}
	if got := fb.MmapBytes(); got != 0 {
		t.Fatalf("fallback MmapBytes=%d, want 0", got)
	}

	// Walks over the mapped and heap-backed slabs are bit-identical.
	for trial := 0; trial < 5; trial++ {
		var p [4]float64
		for d := 0; d < 4; d++ {
			p[d] = rng.NormFloat64() * 10
		}
		type emit struct {
			id  seq.ID
			key float64
		}
		var a, b []emit
		cnt := 0
		mm.NearestWalkEnv(&p, nil, envLB, func(e Entry, key float64) bool {
			a = append(a, emit{e.ID, key})
			cnt++
			return cnt < 200
		})
		cnt = 0
		fb.NearestWalkEnv(&p, nil, envLB, func(e Entry, key float64) bool {
			b = append(b, emit{e.ID, key})
			cnt++
			return cnt < 200
		})
		if len(a) != len(b) {
			t.Fatalf("stream lengths differ: mmap %d, fallback %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("streams diverge at %d: mmap %+v, fallback %+v", i, a[i], b[i])
			}
		}
	}
	// The lazy CRC check accepts the intact file.
	if err := mm.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants on mapped snapshot: %v", err)
	}
}
