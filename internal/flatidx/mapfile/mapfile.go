// Package mapfile opens a file as a read-only byte slice, memory-mapping it
// when the platform supports mmap and falling back to reading the whole
// file into memory otherwise. The caller gets one uniform Mapping either
// way; only the Mapped flag (and the cost of Open) differs.
//
// The fallback also engages when the TWSIM_NO_MMAP environment variable is
// set to any non-empty value, which lets tests and operators force the
// read-into-memory path on platforms where mmap would normally win.
package mapfile

import "os"

// Mapping is an open read-only view of a file's bytes.
type Mapping struct {
	// Data holds the file contents. When Mapped, writes to it fault; the
	// caller must treat it as read-only in either mode.
	Data []byte
	// Mapped reports whether Data is a live memory mapping (true) or a
	// private heap copy read from the file (false).
	Mapped bool
	// BytesRead counts bytes actually read from the file by Open: the full
	// file size on the fallback path, 0 on the mmap path (pages fault in
	// lazily as they are touched).
	BytesRead int64

	close func() error
}

// Close releases the mapping (munmap when Mapped, no-op otherwise). It is
// idempotent; Data must not be touched after the first Close.
func (m *Mapping) Close() error {
	if m == nil || m.close == nil {
		return nil
	}
	fn := m.close
	m.close = nil
	m.Data = nil
	return fn()
}

// Disabled reports whether Open will skip mmap: either the platform has no
// support compiled in, or TWSIM_NO_MMAP is set.
func Disabled() bool {
	return !mmapSupported || os.Getenv("TWSIM_NO_MMAP") != ""
}

// Open maps path read-only, or reads it into memory when mapping is
// disabled, unsupported, fails, or the file is empty (zero-length mappings
// are not portable).
func Open(path string) (*Mapping, error) {
	if Disabled() {
		return readAll(path)
	}
	m, err := mmapOpen(path)
	if err != nil {
		// mmap can fail for reasons that do not doom a plain read (exotic
		// filesystems, resource limits); degrade rather than error out.
		return readAll(path)
	}
	return m, nil
}

func readAll(path string) (*Mapping, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{Data: buf, BytesRead: int64(len(buf))}, nil
}
