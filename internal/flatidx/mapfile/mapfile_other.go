//go:build !unix

package mapfile

import "errors"

const mmapSupported = false

func mmapOpen(path string) (*Mapping, error) {
	return nil, errors.New("mapfile: mmap unsupported on this platform")
}
