//go:build unix

package mapfile

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapOpen maps path read-only via mmap(2). The file descriptor is closed
// before returning — the mapping keeps the inode's pages reachable on its
// own, so a later rename-over or unlink of the path does not disturb it.
func mmapOpen(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{Data: []byte{}, Mapped: false}, nil
	}
	if size != int64(int(size)) {
		return nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &Mapping{
		Data:   data,
		Mapped: true,
		close:  func() error { return syscall.Munmap(data) },
	}, nil
}
