package flatidx

// Best-first (Hjaltason–Samet) nearest-neighbor walk over snapshot ∪ delta
// under the L∞ norm — the flat counterpart of rtree.NearestWalk with
// NormLInf. The priority queue is a hand-rolled binary heap of plain
// structs (no container/heap interface boxing), so a walk's only
// allocations are the heap array itself.

// heapItem is one frontier element: a packed node (node >= 0), a snapshot
// item (node == snapItem), or a delta add (node == deltaItem, item indexes
// the view's adds array).
type heapItem struct {
	dist float64
	node int32
	item int32
}

const (
	snapItem  = -1
	deltaItem = -2
)

type knnHeap []heapItem

func (h *knnHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *knnHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l].dist < old[small].dist {
			small = l
		}
		if r < n && old[r].dist < old[small].dist {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// NearestWalk streams live entries in non-decreasing L∞ distance from p,
// calling fn with each entry and its distance; fn returning false stops
// the walk. Distances are exactly the rtree MinDist values (axis-gap
// maximum for rects, coordinate-difference maximum for points), so the
// search layer's stop condition fires at the identical entry on both
// engines.
func (x *Index) NearestWalk(p *[4]float64, fn func(e Entry, dist float64) bool) {
	v := x.view.Load()
	h := make(knnHeap, 0, 64)
	if v.snap.Len() > 0 {
		h.push(heapItem{dist: v.snap.nodeDistLInf(0, p), node: 0})
	}
	for i := range v.adds {
		e := &v.adds[i]
		max := 0.0
		for d := 0; d < 4; d++ {
			g := e.Point[d] - p[d]
			if g < 0 {
				g = -g
			}
			if g > max {
				max = g
			}
		}
		h.push(heapItem{dist: max, node: deltaItem, item: int32(i)})
	}
	for len(h) > 0 {
		top := h.pop()
		switch top.node {
		case snapItem:
			e := v.snap.item(int(top.item))
			if _, dead := v.dels[e]; dead {
				continue
			}
			if !fn(e, top.dist) {
				return
			}
		case deltaItem:
			if !fn(v.adds[top.item], top.dist) {
				return
			}
		default:
			first, count, leaf := v.snap.nodeFirstCount(int(top.node))
			if leaf {
				for j := first; j < first+count; j++ {
					h.push(heapItem{dist: v.snap.itemDistLInf(j, p), node: snapItem, item: int32(j)})
				}
			} else {
				for c := first; c < first+count; c++ {
					h.push(heapItem{dist: v.snap.nodeDistLInf(c, p), node: int32(c)})
				}
			}
		}
	}
}
