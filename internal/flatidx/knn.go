package flatidx

import (
	"sync"

	"repro/internal/seq"
)

// Best-first (Hjaltason–Samet) nearest-neighbor walk over snapshot ∪ delta
// under the L∞ norm — the flat counterpart of rtree.NearestWalk with
// NormLInf. The priority queue is a hand-rolled binary heap of plain
// structs (no container/heap interface boxing) drawn from a sync.Pool, so a
// steady-state walk allocates nothing at all.
//
// The walk optionally runs a two-level frontier: nodes stay ordered by the
// (transformed) L∞ rect mindist, but an item surfacing for the first time
// is re-keyed by max(transformed mindist, sharpen(stored envelope)) before
// it is emitted — when the sharpened key no longer beats the frontier, the
// item re-enters the heap and later items surface first. Both levels are
// lower bounds of the distance the caller refines against, so the emitted
// key stream stays non-decreasing and the caller's stop condition is sound;
// it just fires earlier than the mindist alone would let it.

// heapItem is one frontier element: a packed node (node >= 0), a snapshot
// item (node == snapItem), or a delta add (node == deltaItem, item indexes
// the view's adds array). The keyed variants mark an item whose priority
// was raised by its envelope bound — already sharpened, never re-keyed.
type heapItem struct {
	dist float64
	node int32
	item int32
}

const (
	snapItem       = -1
	deltaItem      = -2
	keyedSnapItem  = -3
	keyedDeltaItem = -4
)

type knnHeap []heapItem

func (h *knnHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *knnHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l].dist < old[small].dist {
			small = l
		}
		if r < n && old[r].dist < old[small].dist {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// WalkStats counts one nearest walk's frontier work.
type WalkStats struct {
	// Pushes is the total number of frontier pushes (nodes, items, and
	// envelope re-keys).
	Pushes int64
	// Repushes counts items that re-entered the frontier with an
	// envelope-sharpened priority (the second frontier level).
	Repushes int64
	// EnvStops is 1 when the walk was stopped by the caller on an item whose
	// key had been raised above its L∞ mindist by the envelope bound — the
	// ordering tier ended the walk earlier than the mindist alone would have.
	EnvStops int64
}

// walkState is the pooled per-walk scratch: the frontier array plus the
// envelope decode buffer (pooled together so the envelope-keyed walk stays
// allocation-free too).
type walkState struct {
	h  knnHeap
	pe seq.PAAEnvelope
}

var walkPool = sync.Pool{New: func() any { return &walkState{h: make(knnHeap, 0, 128)} }}

// NearestWalk streams live entries in non-decreasing L∞ distance from p,
// calling fn with each entry and its distance; fn returning false stops
// the walk. Distances are exactly the rtree MinDist values (axis-gap
// maximum for rects, coordinate-difference maximum for points), so the
// search layer's stop condition fires at the identical entry on both
// engines.
func (x *Index) NearestWalk(p *[4]float64, fn func(e Entry, dist float64) bool) {
	var ws WalkStats
	x.nearestWalk(p, nil, nil, fn, &ws)
}

// NearestWalkEnv is NearestWalk with the two-level envelope-sharpened
// frontier. xform (nil = identity) is a monotone non-decreasing transform
// applied to every L∞ mindist, so the caller can key the whole frontier in
// its own comparable space; sharpen (nil = disabled) maps a stored PAA
// envelope to an additional lower bound in that same space, and each
// surfaced item is re-keyed by the max of the two before it is emitted.
// Items without a stored envelope (including envelope-less delta adds)
// keep their transformed mindist. fn receives the final key; the key
// stream is non-decreasing.
func (x *Index) NearestWalkEnv(p *[4]float64, xform func(float64) float64,
	sharpen func(pe *seq.PAAEnvelope) float64, fn func(e Entry, key float64) bool) WalkStats {
	var ws WalkStats
	x.nearestWalk(p, xform, sharpen, fn, &ws)
	return ws
}

func identityKey(d float64) float64 { return d }

func (x *Index) nearestWalk(p *[4]float64, xform func(float64) float64,
	sharpen func(pe *seq.PAAEnvelope) float64, fn func(e Entry, key float64) bool, ws *WalkStats) {
	v := x.view.Load()
	xf := xform
	if xf == nil {
		xf = identityKey
	}
	st := walkPool.Get().(*walkState)
	h := st.h[:0]
	defer func() {
		st.h = h[:0]
		walkPool.Put(st)
	}()
	if v.snap.Len() > 0 {
		h.push(heapItem{dist: xf(v.snap.nodeDistLInf(0, p)), node: 0})
		ws.Pushes++
	}
	for i := range v.adds {
		e := &v.adds[i]
		max := 0.0
		for d := 0; d < 4; d++ {
			g := e.Point[d] - p[d]
			if g < 0 {
				g = -g
			}
			if g > max {
				max = g
			}
		}
		h.push(heapItem{dist: xf(max), node: deltaItem, item: int32(i)})
		ws.Pushes++
	}
	for len(h) > 0 {
		top := h.pop()
		switch top.node {
		case snapItem:
			e := v.snap.item(int(top.item))
			if _, dead := v.dels[e]; dead {
				continue
			}
			if sharpen != nil && v.snap.env(int(top.item), &st.pe) {
				if lb := sharpen(&st.pe); lb > top.dist {
					// The envelope raised the key. If it no longer beats the
					// frontier, defer the item (tombstone already checked, so
					// the keyed pop emits without re-decoding); otherwise it
					// is still the minimum and can be emitted at the new key.
					if len(h) > 0 && lb > h[0].dist {
						h.push(heapItem{dist: lb, node: keyedSnapItem, item: top.item})
						ws.Pushes++
						ws.Repushes++
						continue
					}
					top.dist, top.node = lb, keyedSnapItem
				}
			}
			if !fn(e, top.dist) {
				if top.node == keyedSnapItem {
					ws.EnvStops++
				}
				return
			}
		case keyedSnapItem:
			if !fn(v.snap.item(int(top.item)), top.dist) {
				ws.EnvStops++
				return
			}
		case deltaItem:
			if sharpen != nil && int(top.item) < len(v.envs) {
				// Delta envelopes ride the same two-level re-key as snapshot
				// items: the view's envs array is published together with adds
				// (slots immutable once visible), so the read races nothing.
				if pe := &v.envs[top.item]; pe.Len > 0 {
					if lb := sharpen(pe); lb > top.dist {
						if len(h) > 0 && lb > h[0].dist {
							h.push(heapItem{dist: lb, node: keyedDeltaItem, item: top.item})
							ws.Pushes++
							ws.Repushes++
							continue
						}
						top.dist, top.node = lb, keyedDeltaItem
					}
				}
			}
			if !fn(v.adds[top.item], top.dist) {
				if top.node == keyedDeltaItem {
					ws.EnvStops++
				}
				return
			}
		case keyedDeltaItem:
			if !fn(v.adds[top.item], top.dist) {
				ws.EnvStops++
				return
			}
		default:
			first, count, leaf := v.snap.nodeFirstCount(int(top.node))
			if leaf {
				for j := first; j < first+count; j++ {
					h.push(heapItem{dist: xf(v.snap.itemDistLInf(j, p)), node: snapItem, item: int32(j)})
				}
			} else {
				for c := first; c < first+count; c++ {
					h.push(heapItem{dist: xf(v.snap.nodeDistLInf(c, p)), node: int32(c)})
				}
			}
			ws.Pushes += int64(count)
		}
	}
}
