package flatidx

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/seq"
)

// FuzzSlabRoundtrip drives the packed-node encode/decode roundtrip from
// raw bytes: the input is interpreted both ways —
//
//  1. as entry data: build a snapshot, re-decode its slab, and require the
//     decoded tree to be byte-identical and to agree with a brute-force
//     range scan (the generative oracle);
//  2. as a hostile slab: Decode must never panic, and whenever it accepts,
//     the re-encoded bytes must be the identity and the structural
//     invariants must hold (decode validation is total).
func FuzzSlabRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	// A seed corpus entry that decodes successfully end-to-end.
	seedEntries := []Entry{
		{ID: 1, Point: [4]float64{0, 1, 2, 3}},
		{ID: 2, Point: [4]float64{4, 5, 6, 7}},
	}
	if snap, err := Build(seedEntries, nil, 1); err == nil {
		f.Add(snap.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpretation 1: bytes → entries → Build → Decode → compare.
		entries := entriesFromBytes(data)
		snap, err := Build(entries, nil, 9)
		if err != nil {
			t.Fatalf("Build on sanitized entries failed: %v", err)
		}
		dec, err := Decode(snap.Bytes())
		if err != nil {
			t.Fatalf("Decode rejected a freshly built slab: %v", err)
		}
		if !bytes.Equal(dec.Bytes(), snap.Bytes()) {
			t.Fatal("decode→encode is not the identity on a built slab")
		}
		if len(entries) > 0 {
			lo := entries[0].Point
			hi := entries[0].Point
			for _, e := range entries {
				for d := 0; d < 4; d++ {
					if e.Point[d] < lo[d] {
						lo[d] = e.Point[d]
					}
					if e.Point[d] > hi[d] {
						hi[d] = e.Point[d]
					}
				}
			}
			got := dec.appendRange(nil, &lo, &hi, nil)
			if len(got) != len(entries) {
				t.Fatalf("bounding-rect range returned %d of %d entries", len(got), len(entries))
			}
		}

		// Interpretation 2: bytes are a hostile slab. Must not panic; on
		// acceptance the invariants and the byte identity must hold.
		hostile, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(hostile.Bytes(), data) {
			t.Fatal("accepted slab does not round-trip")
		}
		if err := hostile.CheckInvariants(); err != nil {
			t.Fatalf("Decode accepted a slab CheckInvariants rejects: %v", err)
		}
	})
}

// entriesFromBytes decodes data as a stream of 36-byte entry records,
// sanitizing the floats (non-finite → 0) and deduplicating — Build's input
// contract.
func entriesFromBytes(data []byte) []Entry {
	n := len(data) / itemSize
	if n > 2048 {
		n = 2048
	}
	seen := make(map[Entry]struct{}, n)
	ids := make(map[seq.ID]struct{}, n)
	var out []Entry
	for i := 0; i < n; i++ {
		off := i * itemSize
		var e Entry
		for d := 0; d < 4; d++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[off+d*8:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			e.Point[d] = v
		}
		e.ID = seq.ID(binary.LittleEndian.Uint32(data[off+32:]))
		if _, dup := seen[e]; dup {
			continue
		}
		if _, dup := ids[e.ID]; dup {
			continue
		}
		seen[e] = struct{}{}
		ids[e.ID] = struct{}{}
		out = append(out, e)
	}
	return out
}
