// Package flatidx implements the flat read-path feature index: an
// immutable, bulk-loaded, pointer-free packed R-tree over the paper's 4-d
// feature vectors, a small mutable delta overlay absorbing inserts and
// deletes, and a background merge that rebuilds the packed tree off the hot
// path and atomically swaps snapshots.
//
// The packed tree (Snapshot) is one contiguous byte slab: a fixed-size
// header, a node region (rect + implicit child range per node, root first),
// an item region (the STR-packed <point, id> leaf entries), and an optional
// envelope region carrying each item's 16-segment PAA profile so the range
// walk itself can be envelope-tight. Child offsets are implicit — the node
// layout is a pure function of the item count — so a snapshot has no
// pointers to chase, no per-node page round-trips, and a range walk
// allocates nothing beyond the caller's result buffer. A snapshot is also
// trivially a file: Save writes the slab plus a CRC, Load verifies and
// adopts it.
//
// Readers never lock: every query loads one *view (snapshot + delta) from
// an atomic pointer and works against that immutable generation for its
// whole lifetime (see DESIGN.md §11 for the read-semantics argument).
// Writers and the merge serialize on one mutex; swapping in a merged
// snapshot is a single atomic pointer store, so a reader sees either the
// old generation or the new one, never a torn tree.
package flatidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/seq"
)

// Entry is one indexed <feature point, sequence ID> pair — the flat
// counterpart of core.IndexEntry (field-compatible; the core wrapper
// converts). Entries are compared by value: the index holds a set of them.
type Entry struct {
	ID    seq.ID
	Point [4]float64
}

// Slab layout constants. All integers are little-endian; all floats are
// IEEE-754 bits stored little-endian.
const (
	magic      = "TWFS" // time-warping flat snapshot
	version    = 1
	headerSize = 32                      // magic(4) version(4) flags(4) nNodes(4) nItems(4) height(4) gen(8)
	nodeSize   = 72                      // rect lo[4](32) hi[4](32) first(4) count|leafBit(4)
	itemSize   = 36                      // point[4](32) id(4)
	envSize    = 4 + 2*seq.PAASegments*8 // len(4) min[16](128) max[16](128)

	// Fanout is the packed tree's node capacity. STR packs every node full
	// (the last node per level may be short), so with 4000 items the tree is
	// 250 leaves, 16 internals, one root — three node levels, ~19 KB of
	// nodes.
	Fanout = 16

	flagEnvelopes = 1 << 0 // the slab carries the envelope region
	leafBit       = 1 << 31

	// maxItems bounds the decodable item count: it keeps every offset
	// computation far from int overflow even on 32-bit ints and rejects
	// absurd headers before any size arithmetic.
	maxItems = 1 << 27
)

// Snapshot is one immutable packed tree. All methods are read-only and safe
// for unlimited concurrent use; a Snapshot is never modified after Build or
// Decode returns it.
//
// A snapshot loaded through the mmap path keeps its slab inside a read-only
// file mapping: release unmaps it, and Load arms it as a finalizer so the
// mapping is dropped only once the garbage collector proves no view (and no
// in-flight reader holding one) can reach the snapshot anymore — the
// munmap-after-last-reference fence behind the atomic snapshot swap.
type Snapshot struct {
	slab     []byte
	nNodes   int
	nItems   int
	height   int
	hasEnv   bool
	gen      uint64
	itemsOff int
	envsOff  int

	// levelStart[ℓ]/levelSize[ℓ] describe the deterministic node layout
	// (root level first). nodeFirstCount derives child ranges from them
	// instead of trusting slab bytes, so a slab admitted by the lazy
	// header-only validation can never index out of bounds — corrupt body
	// bytes yield wrong coordinates at worst, never a fault.
	levelStart []int
	levelSize  []int

	mapped  int64        // mapping size when file-backed via mmap, else 0
	wantCRC uint32       // trailing file CRC, for the lazy full check
	crcSet  bool         // wantCRC is meaningful (snapshot came from a file)
	release func() error // unmaps the backing file; nil when heap-backed
}

// initLayout fills the computed per-level node layout for nItems.
func (s *Snapshot) initLayout() {
	sizes := levelSizes(s.nItems)
	s.levelSize = sizes
	s.levelStart = make([]int, len(sizes))
	for ℓ := 1; ℓ < len(sizes); ℓ++ {
		s.levelStart[ℓ] = s.levelStart[ℓ-1] + sizes[ℓ-1]
	}
}

// releaseMapping unmaps the snapshot's backing file mapping, if any. It is
// installed as the snapshot's finalizer by the mmap Load path; by the time
// the collector runs it, no reader can still hold a view referencing this
// snapshot, so the slab memory is provably unreachable.
func (s *Snapshot) releaseMapping() {
	if s.release != nil {
		_ = s.release()
		s.release = nil
	}
}

// levelSizes returns the per-level node counts of the packed tree over n
// items, root level first — the deterministic layout both Build and Decode
// agree on. nil for n == 0 (an empty snapshot has no nodes).
func levelSizes(n int) []int {
	if n == 0 {
		return nil
	}
	sizes := []int{(n + Fanout - 1) / Fanout}
	for sizes[0] > 1 {
		sizes = append([]int{(sizes[0] + Fanout - 1) / Fanout}, sizes...)
	}
	return sizes
}

// Build packs entries into a fresh snapshot using Sort-Tile-Recursive
// ordering (the same packing discipline the Guttman engine's BulkLoad
// uses). envs, when non-nil, must be parallel to entries; entries whose
// envelope has Len == 0 are stored as envelope-less and are never
// walk-pruned. gen is the snapshot generation recorded in the header.
func Build(entries []Entry, envs []seq.PAAEnvelope, gen uint64) (*Snapshot, error) {
	if envs != nil && len(envs) != len(entries) {
		return nil, fmt.Errorf("flatidx: %d entries but %d envelopes", len(entries), len(envs))
	}
	n := len(entries)
	hasEnv := false
	for i := range envs {
		if envs[i].Len > 0 {
			hasEnv = true
			break
		}
	}
	sizes := levelSizes(n)
	nNodes := 0
	for _, s := range sizes {
		nNodes += s
	}
	total := headerSize + nNodes*nodeSize + n*itemSize
	if hasEnv {
		total += n * envSize
	}
	s := &Snapshot{
		slab:     make([]byte, total),
		nNodes:   nNodes,
		nItems:   n,
		height:   len(sizes),
		hasEnv:   hasEnv,
		gen:      gen,
		itemsOff: headerSize + nNodes*nodeSize,
	}
	if hasEnv {
		s.envsOff = s.itemsOff + n*itemSize
	}
	s.initLayout()

	// Header.
	copy(s.slab[0:4], magic)
	putU32 := func(off int, v uint32) { binary.LittleEndian.PutUint32(s.slab[off:], v) }
	putU32(4, version)
	flags := uint32(0)
	if hasEnv {
		flags = flagEnvelopes
	}
	putU32(8, flags)
	putU32(12, uint32(nNodes))
	putU32(16, uint32(n))
	putU32(20, uint32(len(sizes)))
	binary.LittleEndian.PutUint64(s.slab[24:], gen)

	if n == 0 {
		return s, nil
	}

	// Items, in STR order.
	ord := strOrder(entries)
	for j, oi := range ord {
		off := s.itemsOff + j*itemSize
		for d := 0; d < 4; d++ {
			binary.LittleEndian.PutUint64(s.slab[off+d*8:], math.Float64bits(entries[oi].Point[d]))
		}
		putU32(off+32, uint32(entries[oi].ID))
		if hasEnv {
			var pe seq.PAAEnvelope
			if envs != nil {
				pe = envs[oi]
			}
			s.putEnv(j, &pe)
		}
	}

	// Nodes, level by level (root level first in the slab), rects filled
	// bottom-up. levelStart[ℓ] is the global index of level ℓ's first node.
	levelStart := make([]int, len(sizes))
	for ℓ := 1; ℓ < len(sizes); ℓ++ {
		levelStart[ℓ] = levelStart[ℓ-1] + sizes[ℓ-1]
	}
	for ℓ := len(sizes) - 1; ℓ >= 0; ℓ-- {
		leaf := ℓ == len(sizes)-1
		childCount := n
		if !leaf {
			childCount = sizes[ℓ+1]
		}
		for w := 0; w < sizes[ℓ]; w++ {
			g := levelStart[ℓ] + w
			first := w * Fanout
			count := childCount - first
			if count > Fanout {
				count = Fanout
			}
			var lo, hi [4]float64
			if leaf {
				s.itemPoint(first, &lo)
				hi = lo
				var p [4]float64
				for j := first + 1; j < first+count; j++ {
					s.itemPoint(j, &p)
					for d := 0; d < 4; d++ {
						if p[d] < lo[d] {
							lo[d] = p[d]
						}
						if p[d] > hi[d] {
							hi[d] = p[d]
						}
					}
				}
			} else {
				cBase := levelStart[ℓ+1]
				s.nodeRect(cBase+first, &lo, &hi)
				var clo, chi [4]float64
				for c := first + 1; c < first+count; c++ {
					s.nodeRect(cBase+c, &clo, &chi)
					for d := 0; d < 4; d++ {
						if clo[d] < lo[d] {
							lo[d] = clo[d]
						}
						if chi[d] > hi[d] {
							hi[d] = chi[d]
						}
					}
				}
				first += cBase // store the global child index
			}
			off := headerSize + g*nodeSize
			for d := 0; d < 4; d++ {
				binary.LittleEndian.PutUint64(s.slab[off+d*8:], math.Float64bits(lo[d]))
				binary.LittleEndian.PutUint64(s.slab[off+32+d*8:], math.Float64bits(hi[d]))
			}
			putU32(off+64, uint32(first))
			cf := uint32(count)
			if leaf {
				cf |= leafBit
			}
			putU32(off+68, cf)
		}
	}
	return s, nil
}

// strOrder returns the Sort-Tile-Recursive permutation of entries: sort by
// the first dimension, cut into slabs sized to whole leaves, recurse on the
// next dimension within each slab. The stable sort makes the packing
// deterministic for a given input order.
func strOrder(entries []Entry) []int {
	ord := make([]int, len(entries))
	for i := range ord {
		ord[i] = i
	}
	var tile func(idx []int, dims int)
	tile = func(idx []int, dims int) {
		if len(idx) <= Fanout {
			return
		}
		dim := 4 - dims
		sort.SliceStable(idx, func(a, b int) bool {
			return entries[idx[a]].Point[dim] < entries[idx[b]].Point[dim]
		})
		if dims <= 1 {
			return
		}
		pages := (len(idx) + Fanout - 1) / Fanout
		slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dims))))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(idx) + slabs - 1) / slabs
		if rem := per % Fanout; rem != 0 {
			per += Fanout - rem // slab cuts on whole-leaf boundaries
		}
		for off := 0; off < len(idx); off += per {
			end := off + per
			if end > len(idx) {
				end = len(idx)
			}
			tile(idx[off:end], dims-1)
		}
	}
	tile(ord, 4)
	return ord
}

// Decode adopts a slab produced by Build (or read back from a snapshot
// file), validating the header, the deterministic node layout, and the
// geometric invariants (every item inside its leaf rect, every child rect
// inside its parent's) before returning. It never panics on hostile bytes:
// anything structurally off — sizes, flags, child ranges, leaf markers,
// non-finite or non-containing rects — is an error. The slab is retained,
// not copied; the caller must not modify it afterwards.
func Decode(data []byte) (*Snapshot, error) {
	s, err := DecodeLite(data)
	if err != nil {
		return nil, err
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeLite is Decode without the O(slab) structural pass: it validates
// only the header (magic, version, flags, counts consistent with the
// deterministic layout, total size) — constant work, touching one page of a
// mapped file. Child ranges are computed from the layout rather than read
// from the slab, so even a body-corrupted slab cannot make the accessors
// index out of bounds; corruption the header check cannot see is caught by
// the lazy full check (CheckInvariants) or surfaces as wrong floats, never
// as a fault. The mmap Load path uses this so opening a huge database costs
// O(header) bytes; rebuild/repair paths still run the full validation.
func DecodeLite(data []byte) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("flatidx: slab too short (%d bytes)", len(data))
	}
	if string(data[0:4]) != magic {
		return nil, errors.New("flatidx: bad magic")
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	if v := u32(4); v != version {
		return nil, fmt.Errorf("flatidx: unsupported version %d", v)
	}
	flags := u32(8)
	if flags&^uint32(flagEnvelopes) != 0 {
		return nil, fmt.Errorf("flatidx: unknown flags %#x", flags)
	}
	nNodes, nItems, height := int(u32(12)), int(u32(16)), int(u32(20))
	if nItems < 0 || nItems > maxItems {
		return nil, fmt.Errorf("flatidx: implausible item count %d", nItems)
	}
	sizes := levelSizes(nItems)
	wantNodes := 0
	for _, s := range sizes {
		wantNodes += s
	}
	if nNodes != wantNodes || height != len(sizes) {
		return nil, fmt.Errorf("flatidx: header claims %d nodes height %d, layout for %d items wants %d nodes height %d",
			nNodes, height, nItems, wantNodes, len(sizes))
	}
	hasEnv := flags&flagEnvelopes != 0
	total := headerSize + nNodes*nodeSize + nItems*itemSize
	if hasEnv {
		total += nItems * envSize
	}
	if len(data) != total {
		return nil, fmt.Errorf("flatidx: slab is %d bytes, layout wants %d", len(data), total)
	}
	s := &Snapshot{
		slab:     data,
		nNodes:   nNodes,
		nItems:   nItems,
		height:   height,
		hasEnv:   hasEnv,
		gen:      binary.LittleEndian.Uint64(data[24:]),
		itemsOff: headerSize + nNodes*nodeSize,
	}
	if hasEnv {
		s.envsOff = s.itemsOff + nItems*itemSize
	}
	s.initLayout()
	return s, nil
}

// CheckInvariants re-validates the packed structure: the file CRC when the
// snapshot is file-backed (the lazy half of the per-open header check), the
// stored child layout against the deterministic packing for the item count,
// leaf markers exactly on the leaf level, every node rect finite and
// ordered, every item inside its leaf's rect, and every child rect inside
// its parent's. An error means the slab is corrupt (a violated rect
// invariant would silently false-dismiss queries). The fallback Load path
// runs this eagerly; the mmap path defers it to Verify/Repair so opening
// stays O(header).
func (s *Snapshot) CheckInvariants() error {
	if s.crcSet {
		if got := crc32.ChecksumIEEE(s.slab); got != s.wantCRC {
			return fmt.Errorf("flatidx: snapshot checksum mismatch (got %08x want %08x)", got, s.wantCRC)
		}
	}
	sizes := levelSizes(s.nItems)
	levelStart := make([]int, len(sizes))
	for ℓ := 1; ℓ < len(sizes); ℓ++ {
		levelStart[ℓ] = levelStart[ℓ-1] + sizes[ℓ-1]
	}
	var lo, hi, clo, chi, p [4]float64
	for ℓ, size := range sizes {
		leaf := ℓ == len(sizes)-1
		childCount := s.nItems
		if !leaf {
			childCount = sizes[ℓ+1]
		}
		for w := 0; w < size; w++ {
			g := levelStart[ℓ] + w
			first, count, gotLeaf := s.rawNodeFirstCount(g)
			wantFirst := w * Fanout
			wantCount := childCount - wantFirst
			if wantCount > Fanout {
				wantCount = Fanout
			}
			if !leaf {
				wantFirst += levelStart[ℓ+1]
			}
			if gotLeaf != leaf || first != wantFirst || count != wantCount {
				return fmt.Errorf("flatidx: node %d has first=%d count=%d leaf=%v, layout wants first=%d count=%d leaf=%v",
					g, first, count, gotLeaf, wantFirst, wantCount, leaf)
			}
			s.nodeRect(g, &lo, &hi)
			for d := 0; d < 4; d++ {
				// !(lo <= hi) also rejects NaN bounds.
				if !(lo[d] <= hi[d]) || math.IsInf(lo[d], 0) || math.IsInf(hi[d], 0) {
					return fmt.Errorf("flatidx: node %d rect dimension %d is non-finite or inverted", g, d)
				}
			}
			if leaf {
				for j := first; j < first+count; j++ {
					s.itemPoint(j, &p)
					for d := 0; d < 4; d++ {
						if !(p[d] >= lo[d] && p[d] <= hi[d]) {
							return fmt.Errorf("flatidx: item %d escapes its leaf rect (node %d, dimension %d)", j, g, d)
						}
					}
				}
			} else {
				for c := first; c < first+count; c++ {
					s.nodeRect(c, &clo, &chi)
					for d := 0; d < 4; d++ {
						if !(clo[d] >= lo[d] && chi[d] <= hi[d]) {
							return fmt.Errorf("flatidx: child %d escapes its parent rect (node %d, dimension %d)", c, g, d)
						}
					}
				}
			}
		}
	}
	return nil
}

// Bytes returns the snapshot's backing slab. The caller must treat it as
// read-only; it is the exact byte sequence Save persists.
func (s *Snapshot) Bytes() []byte { return s.slab }

// Len returns the number of packed items.
func (s *Snapshot) Len() int { return s.nItems }

// Generation returns the snapshot generation recorded at Build time.
func (s *Snapshot) Generation() uint64 { return s.gen }

// HasEnvelopes reports whether the slab carries the PAA envelope region.
func (s *Snapshot) HasEnvelopes() bool { return s.hasEnv }

// ---- slab accessors ----

func (s *Snapshot) f64(off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(s.slab[off:]))
}

// nodeFirstCount returns node n's child range. It is computed from the
// deterministic layout (levelStart/levelSize), not read from the slab: the
// stored first/count fields exist for format self-description and are
// cross-checked by CheckInvariants, but the walk never trusts them — a
// body-corrupted slab admitted by the lazy header check can therefore
// never produce an out-of-bounds child index.
func (s *Snapshot) nodeFirstCount(n int) (first, count int, leaf bool) {
	ℓ := len(s.levelStart) - 1
	for s.levelStart[ℓ] > n {
		ℓ--
	}
	w := n - s.levelStart[ℓ]
	leaf = ℓ == len(s.levelStart)-1
	childCount := s.nItems
	if !leaf {
		childCount = s.levelSize[ℓ+1]
	}
	first = w * Fanout
	count = childCount - first
	if count > Fanout {
		count = Fanout
	}
	if !leaf {
		first += s.levelStart[ℓ+1]
	}
	return first, count, leaf
}

// rawNodeFirstCount reads node n's stored child-range fields from the slab;
// CheckInvariants compares them against the computed layout.
func (s *Snapshot) rawNodeFirstCount(n int) (first, count int, leaf bool) {
	off := headerSize + n*nodeSize
	first = int(binary.LittleEndian.Uint32(s.slab[off+64:]))
	cf := binary.LittleEndian.Uint32(s.slab[off+68:])
	return first, int(cf &^ uint32(leafBit)), cf&leafBit != 0
}

func (s *Snapshot) nodeRect(n int, lo, hi *[4]float64) {
	off := headerSize + n*nodeSize
	for d := 0; d < 4; d++ {
		lo[d] = s.f64(off + d*8)
		hi[d] = s.f64(off + 32 + d*8)
	}
}

func (s *Snapshot) itemPoint(j int, p *[4]float64) {
	off := s.itemsOff + j*itemSize
	for d := 0; d < 4; d++ {
		p[d] = s.f64(off + d*8)
	}
}

func (s *Snapshot) itemID(j int) seq.ID {
	return seq.ID(binary.LittleEndian.Uint32(s.slab[s.itemsOff+j*itemSize+32:]))
}

func (s *Snapshot) item(j int) Entry {
	var e Entry
	s.itemPoint(j, &e.Point)
	e.ID = s.itemID(j)
	return e
}

// env decodes item j's stored PAA envelope into pe, reporting whether one
// is present (Len > 0).
func (s *Snapshot) env(j int, pe *seq.PAAEnvelope) bool {
	if !s.hasEnv {
		return false
	}
	off := s.envsOff + j*envSize
	pe.Len = int(binary.LittleEndian.Uint32(s.slab[off:]))
	if pe.Len == 0 {
		return false
	}
	off += 4
	for k := 0; k < seq.PAASegments; k++ {
		pe.Min[k] = s.f64(off + k*8)
		pe.Max[k] = s.f64(off + (seq.PAASegments+k)*8)
	}
	return true
}

func (s *Snapshot) putEnv(j int, pe *seq.PAAEnvelope) {
	off := s.envsOff + j*envSize
	binary.LittleEndian.PutUint32(s.slab[off:], uint32(pe.Len))
	off += 4
	for k := 0; k < seq.PAASegments; k++ {
		binary.LittleEndian.PutUint64(s.slab[off+k*8:], math.Float64bits(pe.Min[k]))
		binary.LittleEndian.PutUint64(s.slab[off+(seq.PAASegments+k)*8:], math.Float64bits(pe.Max[k]))
	}
}

// nodeIntersects mirrors rtree.Rect.Intersects on closed rects: false iff
// the node rect and [lo, hi] are disjoint along some axis.
func (s *Snapshot) nodeIntersects(n int, lo, hi *[4]float64) bool {
	off := headerSize + n*nodeSize
	for d := 0; d < 4; d++ {
		if lo[d] > s.f64(off+32+d*8) || s.f64(off+d*8) > hi[d] {
			return false
		}
	}
	return true
}

// nodeContainsPoint reports whether p lies inside node n's closed rect.
func (s *Snapshot) nodeContainsPoint(n int, p *[4]float64) bool {
	off := headerSize + n*nodeSize
	for d := 0; d < 4; d++ {
		if p[d] < s.f64(off+d*8) || p[d] > s.f64(off+32+d*8) {
			return false
		}
	}
	return true
}

// nodeDistLInf is the L∞ minimum distance from p to node n's rect — the
// same axis-gap maximum rtree.MinDist computes under NormLInf, so the k-NN
// walk streams bit-identical lower bounds.
func (s *Snapshot) nodeDistLInf(n int, p *[4]float64) float64 {
	off := headerSize + n*nodeSize
	max := 0.0
	for d := 0; d < 4; d++ {
		var g float64
		if lo := s.f64(off + d*8); p[d] < lo {
			g = lo - p[d]
		} else if hi := s.f64(off + 32 + d*8); p[d] > hi {
			g = p[d] - hi
		}
		if g > max {
			max = g
		}
	}
	return max
}

// itemDistLInf is the L∞ distance from p to item j's point.
func (s *Snapshot) itemDistLInf(j int, p *[4]float64) float64 {
	off := s.itemsOff + j*itemSize
	max := 0.0
	for d := 0; d < 4; d++ {
		g := s.f64(off+d*8) - p[d]
		if g < 0 {
			g = -g
		}
		if g > max {
			max = g
		}
	}
	return max
}

// appendRange appends every live item inside the closed rect [lo, hi] to
// dst, skipping tombstoned entries. Allocation-free beyond dst growth.
func (s *Snapshot) appendRange(dst []Entry, lo, hi *[4]float64, dels map[Entry]struct{}) []Entry {
	if s.nItems == 0 {
		return dst
	}
	return s.searchNode(0, dst, lo, hi, dels)
}

func (s *Snapshot) searchNode(n int, dst []Entry, lo, hi *[4]float64, dels map[Entry]struct{}) []Entry {
	first, count, leaf := s.nodeFirstCount(n)
	if leaf {
		for j := first; j < first+count; j++ {
			off := s.itemsOff + j*itemSize
			var e Entry
			in := true
			for d := 0; d < 4; d++ {
				v := s.f64(off + d*8)
				if v < lo[d] || v > hi[d] {
					in = false
					break
				}
				e.Point[d] = v
			}
			if !in {
				continue
			}
			e.ID = seq.ID(binary.LittleEndian.Uint32(s.slab[off+32:]))
			if len(dels) != 0 {
				if _, dead := dels[e]; dead {
					continue
				}
			}
			dst = append(dst, e)
		}
		return dst
	}
	for c := first; c < first+count; c++ {
		if s.nodeIntersects(c, lo, hi) {
			dst = s.searchNode(c, dst, lo, hi, dels)
		}
	}
	return dst
}

// searchNodeEnv is appendRange with an envelope admission test: an in-rect
// item that carries a stored PAA envelope is passed to admit before being
// appended, and rejected items are counted in pruned instead. Items without
// a stored envelope are always admitted. pe is caller-owned scratch reused
// across the walk so the pruning test allocates nothing.
func (s *Snapshot) searchNodeEnv(n int, dst []Entry, lo, hi *[4]float64, dels map[Entry]struct{},
	admit func(id seq.ID, pe *seq.PAAEnvelope) bool, pe *seq.PAAEnvelope, pruned int) ([]Entry, int) {
	first, count, leaf := s.nodeFirstCount(n)
	if leaf {
		for j := first; j < first+count; j++ {
			off := s.itemsOff + j*itemSize
			var e Entry
			in := true
			for d := 0; d < 4; d++ {
				v := s.f64(off + d*8)
				if v < lo[d] || v > hi[d] {
					in = false
					break
				}
				e.Point[d] = v
			}
			if !in {
				continue
			}
			e.ID = seq.ID(binary.LittleEndian.Uint32(s.slab[off+32:]))
			if len(dels) != 0 {
				if _, dead := dels[e]; dead {
					continue
				}
			}
			if s.env(j, pe) && !admit(e.ID, pe) {
				pruned++
				continue
			}
			dst = append(dst, e)
		}
		return dst, pruned
	}
	for c := first; c < first+count; c++ {
		if s.nodeIntersects(c, lo, hi) {
			dst, pruned = s.searchNodeEnv(c, dst, lo, hi, dels, admit, pe, pruned)
		}
	}
	return dst, pruned
}

// contains reports whether the snapshot holds exactly e (point and ID).
func (s *Snapshot) contains(e Entry) bool {
	if s.nItems == 0 {
		return false
	}
	return s.containsNode(0, &e)
}

func (s *Snapshot) containsNode(n int, e *Entry) bool {
	first, count, leaf := s.nodeFirstCount(n)
	if leaf {
		for j := first; j < first+count; j++ {
			off := s.itemsOff + j*itemSize
			if seq.ID(binary.LittleEndian.Uint32(s.slab[off+32:])) != e.ID {
				continue
			}
			match := true
			for d := 0; d < 4; d++ {
				if s.f64(off+d*8) != e.Point[d] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	for c := first; c < first+count; c++ {
		if s.nodeContainsPoint(c, &e.Point) && s.containsNode(c, e) {
			return true
		}
	}
	return false
}
