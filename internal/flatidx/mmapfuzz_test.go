package flatidx

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzMmapLoad drives the mmap open path with hostile snapshot files:
// truncated, bit-flipped, or arbitrary bytes on disk must either make Load
// return an error (the caller rebuilds from the heap) or produce an index
// whose walks never fault — the computed node layout guarantees corrupt
// body bytes can only yield wrong floats, not out-of-bounds access. The
// same input is also driven through the fallback reader so both paths stay
// panic-free.
func FuzzMmapLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	seed := []Entry{
		{ID: 1, Point: [4]float64{0, 1, 2, 3}},
		{ID: 2, Point: [4]float64{4, 5, 6, 7}},
	}
	if snap, err := Build(seed, nil, 1); err == nil {
		slab := snap.Bytes()
		file := make([]byte, len(slab)+4)
		copy(file, slab)
		crc := crc32.ChecksumIEEE(slab)
		file[len(slab)] = byte(crc)
		file[len(slab)+1] = byte(crc >> 8)
		file[len(slab)+2] = byte(crc >> 16)
		file[len(slab)+3] = byte(crc >> 24)
		f.Add(file)
		f.Add(file[:len(file)/2]) // truncated
		flipped := append([]byte(nil), file...)
		flipped[len(flipped)/2] ^= 0xff // body corruption
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.flat")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		exercise := func(x *Index) {
			p := [4]float64{1, 2, 3, 4}
			n := 0
			x.NearestWalkEnv(&p, nil, envLB, func(e Entry, key float64) bool {
				n++
				return n < 64
			})
			lo := [4]float64{-10, -10, -10, -10}
			hi := [4]float64{10, 10, 10, 10}
			x.AppendRange(nil, &lo, &hi)
			_ = x.CheckInvariants() // lazy CRC: may error, must not fault
		}
		if x, err := Load(path, Options{MergeThreshold: -1}); err == nil {
			exercise(x)
		}
		t.Setenv("TWSIM_NO_MMAP", "1")
		if x, err := Load(path, Options{MergeThreshold: -1}); err == nil {
			exercise(x)
		}
	})
}
