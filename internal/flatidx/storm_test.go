package flatidx

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/seq"
)

// TestStormReadersRaceMergeAndWriters drives concurrent range and k-NN
// readers against concurrent writers and the background merge/swap, under
// a tiny merge threshold so generations churn constantly. Run with -race
// (make ci does) this is the lock-free-readers proof; the per-query sanity
// checks (no tombstoned results, walk order monotone) catch torn views.
func TestStormReadersRaceMergeAndWriters(t *testing.T) {
	x := New(Options{MergeThreshold: 16})
	rng := rand.New(rand.NewSource(73))
	pool := randEntries(rng, 512)
	for _, e := range pool[:256] {
		x.Insert(e, nil)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Two writers churning inserts and deletes over the shared pool.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				e := pool[r.Intn(len(pool))]
				if r.Intn(2) == 0 {
					x.Insert(e, nil)
				} else {
					x.Delete(e)
				}
			}
		}(int64(100 + w))
	}

	// Range readers: every result must be inside the rect, duplicate-free,
	// and from the pool.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			var buf []Entry
			for !stop.Load() {
				var lo, hi [4]float64
				for d := 0; d < 4; d++ {
					c := r.NormFloat64() * 10
					lo[d], hi[d] = c-8, c+8
				}
				buf = x.AppendRange(buf[:0], &lo, &hi)
				seen := make(map[Entry]struct{}, len(buf))
				for _, e := range buf {
					for d := 0; d < 4; d++ {
						if e.Point[d] < lo[d] || e.Point[d] > hi[d] {
							t.Errorf("range returned out-of-rect entry %d", e.ID)
							stop.Store(true)
							return
						}
					}
					if _, dup := seen[e]; dup {
						t.Errorf("range returned duplicate entry %d", e.ID)
						stop.Store(true)
						return
					}
					seen[e] = struct{}{}
				}
			}
		}(int64(200 + w))
	}

	// k-NN readers: distances must be non-decreasing within one walk.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(300))
		for !stop.Load() {
			var p [4]float64
			for d := 0; d < 4; d++ {
				p[d] = r.NormFloat64() * 10
			}
			prev, n := -1.0, 0
			x.NearestWalk(&p, func(e Entry, dist float64) bool {
				if dist < prev {
					t.Errorf("k-NN walk went backwards: %g after %g", dist, prev)
					stop.Store(true)
					return false
				}
				prev = dist
				n++
				return n < 32
			})
		}
	}()

	// An envelope-tight reader exercising the admit callback path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(400))
		var buf []Entry
		for !stop.Load() {
			var lo, hi [4]float64
			for d := 0; d < 4; d++ {
				c := r.NormFloat64() * 10
				lo[d], hi[d] = c-8, c+8
			}
			buf, _ = x.AppendRangeEnv(buf[:0], &lo, &hi, func(id seq.ID, pe *seq.PAAEnvelope) bool {
				return id%2 == 0
			})
		}
	}()

	// Let the storm run for a fixed volume of writer work.
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := rand.New(rand.NewSource(500))
		for i := 0; i < 20000; i++ {
			e := pool[r.Intn(len(pool))]
			if r.Intn(2) == 0 {
				x.Insert(e, nil)
			} else {
				x.Delete(e)
			}
		}
	}()
	<-done
	stop.Store(true)
	wg.Wait()

	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if err := x.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if x.Merges() == 0 {
		t.Fatal("storm never triggered a background merge")
	}
}
