package flatidx

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file format: the slab bytes (already self-describing, see the
// layout constants in snapshot.go) followed by a little-endian CRC-32
// (IEEE) of the slab. The CRC catches torn or bit-rotted files before the
// structural validation in Decode runs; either failure makes Load return
// an error and the caller rebuilds from the heap.

// Save merges any pending delta and writes the resulting snapshot slab to
// path via a temp file + rename, so a crash mid-write never corrupts an
// existing snapshot.
func (x *Index) Save(path string) error {
	x.mu.Lock()
	x.mergeLocked()
	snap := x.view.Load().snap
	x.mu.Unlock()

	slab := snap.Bytes()
	buf := make([]byte, len(slab)+4)
	copy(buf, slab)
	crc := crc32.ChecksumIEEE(slab)
	buf[len(slab)] = byte(crc)
	buf[len(slab)+1] = byte(crc >> 8)
	buf[len(slab)+2] = byte(crc >> 16)
	buf[len(slab)+3] = byte(crc >> 24)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".flatidx-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// Load reads, CRC-checks, and structurally validates a snapshot file and
// returns an Index seeded with it. Any corruption — truncation, checksum
// mismatch, layout or containment violations — is an error; the caller is
// expected to rebuild from the primary data instead.
func Load(path string, opts Options) (*Index, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("flatidx: snapshot file %s too short (%d bytes)", path, len(buf))
	}
	slab, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24
	if got := crc32.ChecksumIEEE(slab); got != want {
		return nil, fmt.Errorf("flatidx: snapshot file %s checksum mismatch (got %08x want %08x)", path, got, want)
	}
	snap, err := Decode(slab)
	if err != nil {
		return nil, fmt.Errorf("flatidx: snapshot file %s: %w", path, err)
	}
	return NewFromSnapshot(snap, opts), nil
}
