package flatidx

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/flatidx/mapfile"
	"repro/internal/fsx"
)

// Snapshot file format: the slab bytes (already self-describing, see the
// layout constants in snapshot.go) followed by a little-endian CRC-32
// (IEEE) of the slab.
//
// Load opens the file through mapfile: on platforms with mmap (and unless
// TWSIM_NO_MMAP is set) the slab is a read-only file mapping and opening
// costs O(header) — only the header page is faulted in and validated; the
// trailing CRC is recorded on the snapshot and verified lazily by
// CheckInvariants, and a full structural check runs only on rebuild paths.
// On the fallback path the whole file is read, the CRC verified, and the
// full structural validation (Decode) run eagerly, exactly as before.

// Save merges any pending delta and writes the resulting snapshot slab to
// path via a temp file + rename + parent-directory fsync, so a crash
// mid-write never corrupts an existing snapshot and a completed Save
// survives power loss. Renaming over a currently-mapped snapshot file is safe:
// the mapping references the old inode, not the path.
func (x *Index) Save(path string) error {
	x.mu.Lock()
	x.mergeLocked()
	snap := x.view.Load().snap
	x.mu.Unlock()

	slab := snap.Bytes()
	buf := make([]byte, len(slab)+4)
	copy(buf, slab)
	crc := crc32.ChecksumIEEE(slab)
	buf[len(slab)] = byte(crc)
	buf[len(slab)+1] = byte(crc >> 8)
	buf[len(slab)+2] = byte(crc >> 16)
	buf[len(slab)+3] = byte(crc >> 24)
	// slab may alias snap's file mapping, and the local snap is dead after
	// the copy above — without this fence the finalizer could munmap the
	// pages while the copy or checksum is still reading them.
	runtime.KeepAlive(snap)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".flatidx-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := fsx.RenameAndSyncDir(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Load opens a snapshot file and returns an Index seeded with it. On the
// mmap path only the header is validated up front (O(header) bytes touched;
// the CRC and structural checks run lazily via CheckInvariants); on the
// fallback path the file is read whole and fully validated. Any detected
// corruption — truncation, bad header, checksum mismatch, layout or
// containment violations — is an error; the caller is expected to rebuild
// from the primary data instead.
func Load(path string, opts Options) (*Index, error) {
	m, err := mapfile.Open(path)
	if err != nil {
		return nil, err
	}
	if len(m.Data) < 4 {
		n := len(m.Data)
		m.Close()
		return nil, fmt.Errorf("flatidx: snapshot file %s too short (%d bytes)", path, n)
	}
	slab, tail := m.Data[:len(m.Data)-4], m.Data[len(m.Data)-4:]
	want := uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24

	if m.Mapped {
		snap, err := DecodeLite(slab)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("flatidx: snapshot file %s: %w", path, err)
		}
		snap.wantCRC = want
		snap.crcSet = true
		snap.mapped = int64(len(m.Data))
		snap.release = m.Close
		// The mapping lives exactly as long as the snapshot is reachable:
		// every reader pins the snapshot through its view, so by the time
		// the collector runs this finalizer no view (and no in-flight walk
		// holding one) can still touch the mapped slab — the
		// munmap-after-last-reference fence behind the atomic snapshot swap.
		runtime.SetFinalizer(snap, (*Snapshot).releaseMapping)
		x := NewFromSnapshot(snap, opts)
		x.openBytesRead = m.BytesRead
		return x, nil
	}

	if got := crc32.ChecksumIEEE(slab); got != want {
		return nil, fmt.Errorf("flatidx: snapshot file %s checksum mismatch (got %08x want %08x)", path, got, want)
	}
	snap, err := Decode(slab)
	if err != nil {
		return nil, fmt.Errorf("flatidx: snapshot file %s: %w", path, err)
	}
	x := NewFromSnapshot(snap, opts)
	x.openBytesRead = m.BytesRead
	return x, nil
}
