package flatidx

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/seq"
)

// DefaultMergeThreshold is the delta size (adds + tombstones) at which a
// background merge is scheduled when Options.MergeThreshold is zero.
const DefaultMergeThreshold = 4096

// Options configures an Index.
type Options struct {
	// MergeThreshold schedules a background merge once the delta holds this
	// many entries (adds + tombstones). Zero means DefaultMergeThreshold; a
	// negative value disables automatic merging (Merge and Save still merge
	// on demand).
	MergeThreshold int
}

// view is the atomically-published read state: one immutable snapshot plus
// the delta visible at publication time. Readers load a *view once per
// operation and work against it for the operation's whole lifetime, so a
// query observes exactly one generation.
//
// Invariants (maintained by the writer under Index.mu):
//   - every entry in adds is absent from snap
//   - every entry in dels is present in snap
//   - adds and dels are disjoint
//
// Together these make snapshot ∪ delta duplicate-free: an ID resurrected
// after a tombstone lives either in snap (tombstone removed) or in adds
// (if its point changed), never both.
type view struct {
	snap *Snapshot
	// adds aliases a prefix of the writer's append-only array. Slots below
	// len(adds) were fully written before this view was published and are
	// never rewritten (a delete-of-an-add swaps in a fresh array), so
	// readers may index them freely.
	adds []Entry
	// dels is copy-on-write: the map a view holds is never mutated again.
	// nil when there are no tombstones (the common case after a merge).
	dels map[Entry]struct{}
	// envs aliases a prefix of the writer's append-only envelope array,
	// parallel to adds (envs[i] belongs to adds[i]; Len == 0 marks an
	// envelope-less add). Published together with adds under the same
	// prefix-aliasing discipline, so the k-NN walk can envelope-key delta
	// adds without racing the writer.
	envs []seq.PAAEnvelope
}

// Index is the flat engine: an immutable packed snapshot plus a small
// mutable delta absorbing inserts and deletes, merged off the hot path.
// Readers are lock-free (one atomic view load per operation); writers and
// the merge serialize on mu.
type Index struct {
	opts Options
	view atomic.Pointer[view]

	mu      sync.Mutex
	adds    []Entry           // writer-owned append-only array (see view.adds)
	addsSet map[Entry]int     // entry → index in adds
	addEnvs []seq.PAAEnvelope // writer-owned envelope array, parallel to adds (see view.envs)
	closed  bool

	// openBytesRead is the number of bytes Load explicitly read from the
	// snapshot file (0 on the mmap path, which only faults in the header).
	openBytesRead int64

	merging   atomic.Bool // a background merge is scheduled or running
	merges    atomic.Int64
	mergeHist obs.Histogram
	wg        sync.WaitGroup
}

// New returns an empty index at generation 0.
func New(opts Options) *Index {
	if opts.MergeThreshold == 0 {
		opts.MergeThreshold = DefaultMergeThreshold
	}
	x := &Index{opts: opts, addsSet: make(map[Entry]int)}
	snap, err := Build(nil, nil, 0)
	if err != nil {
		panic(err) // cannot happen: empty build is infallible
	}
	x.view.Store(&view{snap: snap})
	return x
}

// NewFromSnapshot returns an index whose initial generation is snap (used
// by Load after decoding a persisted slab).
func NewFromSnapshot(snap *Snapshot, opts Options) *Index {
	x := New(opts)
	x.view.Store(&view{snap: snap})
	return x
}

// Insert adds e to the index; env, when non-nil and non-empty, is the PAA
// envelope stored alongside it (visible to the envelope-keyed walk at once,
// packed into the slab at the next merge). Inserting an entry that is
// already present (same ID and point) is a no-op — the first insert's
// envelope wins, because its array slot is already published to readers and
// must never be rewritten; re-inserting a tombstoned snapshot entry just
// clears the tombstone (the snapshot copy and its stored envelope become
// visible again).
func (x *Index) Insert(e Entry, env *seq.PAAEnvelope) {
	x.mu.Lock()
	defer x.mu.Unlock()
	v := x.view.Load()
	if _, dead := v.dels[e]; dead {
		// Resurrect: drop the tombstone; the snapshot copy (and its stored
		// envelope) become visible again.
		dels := copyDels(v.dels)
		delete(dels, e)
		if len(dels) == 0 {
			dels = nil
		}
		x.view.Store(&view{snap: v.snap, adds: v.adds, dels: dels, envs: v.envs})
		return
	}
	if _, ok := x.addsSet[e]; ok {
		return
	}
	if v.snap.contains(e) {
		return
	}
	x.adds = append(x.adds, e)
	if env != nil && env.Len > 0 {
		x.addEnvs = append(x.addEnvs, *env)
	} else {
		x.addEnvs = append(x.addEnvs, seq.PAAEnvelope{})
	}
	x.addsSet[e] = len(x.adds) - 1
	x.view.Store(&view{snap: v.snap, adds: x.adds, dels: v.dels, envs: x.addEnvs})
	x.maybeMergeLocked()
}

// Delete removes e (matched by ID and point), reporting whether it was
// present. A delta add is removed outright; a snapshot entry gains a
// tombstone until the next merge drops it from the slab.
func (x *Index) Delete(e Entry) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	v := x.view.Load()
	if i, ok := x.addsSet[e]; ok {
		// Readers may hold views aliasing the current arrays, so build
		// fresh ones without e rather than shifting in place (the envelope
		// array moves in lockstep to stay parallel).
		next := make([]Entry, 0, len(x.adds)-1)
		next = append(next, x.adds[:i]...)
		next = append(next, x.adds[i+1:]...)
		nextEnvs := make([]seq.PAAEnvelope, 0, len(x.addEnvs)-1)
		nextEnvs = append(nextEnvs, x.addEnvs[:i]...)
		nextEnvs = append(nextEnvs, x.addEnvs[i+1:]...)
		x.adds, x.addEnvs = next, nextEnvs
		delete(x.addsSet, e)
		for j := i; j < len(x.adds); j++ {
			x.addsSet[x.adds[j]] = j
		}
		x.view.Store(&view{snap: v.snap, adds: x.adds, dels: v.dels, envs: x.addEnvs})
		return true
	}
	if _, dead := v.dels[e]; dead {
		return false
	}
	if !v.snap.contains(e) {
		return false
	}
	dels := copyDels(v.dels)
	dels[e] = struct{}{}
	x.view.Store(&view{snap: v.snap, adds: v.adds, dels: dels, envs: v.envs})
	x.maybeMergeLocked()
	return true
}

func copyDels(dels map[Entry]struct{}) map[Entry]struct{} {
	out := make(map[Entry]struct{}, len(dels)+1)
	for e := range dels {
		out[e] = struct{}{}
	}
	return out
}

// BulkLoad replaces the current state with a freshly packed snapshot over
// entries. The index must be empty (it is the load-time fast path, exactly
// like the Guttman engine's BulkLoad). envs, when non-nil, is parallel to
// entries.
func (x *Index) BulkLoad(entries []Entry, envs []seq.PAAEnvelope) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	v := x.view.Load()
	if v.snap.Len() != 0 || len(v.adds) != 0 || len(v.dels) != 0 {
		return fmt.Errorf("flatidx: BulkLoad into non-empty index (%d items)", x.lenLocked(v))
	}
	snap, err := Build(entries, envs, v.snap.Generation()+1)
	if err != nil {
		return err
	}
	x.view.Store(&view{snap: snap})
	return nil
}

// maybeMergeLocked schedules a background merge when the delta has grown
// past the threshold. Caller holds mu.
func (x *Index) maybeMergeLocked() {
	if x.opts.MergeThreshold < 0 || x.closed {
		return
	}
	v := x.view.Load()
	if len(v.adds)+len(v.dels) < x.opts.MergeThreshold {
		return
	}
	if !x.merging.CompareAndSwap(false, true) {
		return // one merge in flight at a time
	}
	x.wg.Add(1)
	go func() {
		defer x.wg.Done()
		defer x.merging.Store(false)
		// No closed check here: a merge scheduled before Close is safe to
		// finish (Close waits on wg), and completing it keeps Merges()
		// honest for save-on-close callers.
		x.mu.Lock()
		defer x.mu.Unlock()
		x.mergeLocked()
	}()
}

// Merge synchronously folds the delta into a new packed snapshot and swaps
// it in. A no-op when the delta is empty.
func (x *Index) Merge() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.mergeLocked()
}

// mergeLocked rebuilds the slab from snapshot ∪ delta and publishes it as
// the next generation. Caller holds mu; readers keep streaming the old
// generation until the single atomic store below.
func (x *Index) mergeLocked() {
	v := x.view.Load()
	if len(v.adds) == 0 && len(v.dels) == 0 {
		return
	}
	start := time.Now()
	n := v.snap.Len() - len(v.dels) + len(v.adds)
	entries := make([]Entry, 0, n)
	envs := make([]seq.PAAEnvelope, 0, n)
	var pe seq.PAAEnvelope
	for j := 0; j < v.snap.Len(); j++ {
		e := v.snap.item(j)
		if _, dead := v.dels[e]; dead {
			continue
		}
		entries = append(entries, e)
		// Envelopes come from the slab itself, never from external stores:
		// the slab is immutable, so this read races nothing.
		if !v.snap.env(j, &pe) {
			pe = seq.PAAEnvelope{}
		}
		envs = append(envs, pe)
	}
	for i, e := range v.adds {
		entries = append(entries, e)
		if i < len(v.envs) {
			envs = append(envs, v.envs[i])
		} else {
			envs = append(envs, seq.PAAEnvelope{})
		}
	}
	snap, err := Build(entries, envs, v.snap.Generation()+1)
	if err != nil {
		panic(err) // cannot happen: inputs come from a valid snapshot + delta
	}
	x.view.Store(&view{snap: snap})
	x.adds = nil
	x.addsSet = make(map[Entry]int)
	x.addEnvs = nil
	x.merges.Add(1)
	x.mergeHist.Observe(time.Since(start))
}

// AppendRange appends every entry inside the closed rect [lo, hi] —
// snapshot minus tombstones, plus delta adds — to dst and returns it.
// Allocation-free beyond dst growth: the walk recurses over the packed
// slab and scans the adds array.
func (x *Index) AppendRange(dst []Entry, lo, hi *[4]float64) []Entry {
	v := x.view.Load()
	dst = v.snap.appendRange(dst, lo, hi, v.dels)
	for i := range v.adds {
		e := &v.adds[i]
		in := true
		for d := 0; d < 4; d++ {
			if e.Point[d] < lo[d] || e.Point[d] > hi[d] {
				in = false
				break
			}
		}
		if in {
			dst = append(dst, *e)
		}
	}
	return dst
}

// AppendRangeEnv is AppendRange with envelope-tight admission over the
// snapshot: in-rect snapshot items carrying a stored PAA envelope are
// passed to admit and, when rejected, counted in pruned instead of
// appended. Delta adds are appended unconditionally — their envelopes are
// writer-owned pending state, so the (serial) refine cascade prunes them
// instead; admission there is identical, keeping results and the
// conservation law engine-independent.
func (x *Index) AppendRangeEnv(dst []Entry, lo, hi *[4]float64, admit func(id seq.ID, pe *seq.PAAEnvelope) bool) ([]Entry, int) {
	v := x.view.Load()
	pruned := 0
	if v.snap.Len() > 0 {
		var pe seq.PAAEnvelope
		dst, pruned = v.snap.searchNodeEnv(0, dst, lo, hi, v.dels, admit, &pe, 0)
	}
	for i := range v.adds {
		e := &v.adds[i]
		in := true
		for d := 0; d < 4; d++ {
			if e.Point[d] < lo[d] || e.Point[d] > hi[d] {
				in = false
				break
			}
		}
		if in {
			dst = append(dst, *e)
		}
	}
	return dst, pruned
}

// Contains reports whether the index currently holds exactly e.
func (x *Index) Contains(e Entry) bool {
	v := x.view.Load()
	if _, dead := v.dels[e]; dead {
		return false
	}
	if v.snap.contains(e) {
		return true
	}
	for i := range v.adds {
		if v.adds[i] == e {
			return true
		}
	}
	return false
}

// Entries appends every live entry (snapshot minus tombstones, plus delta
// adds) to dst and returns it.
func (x *Index) Entries(dst []Entry) []Entry {
	v := x.view.Load()
	for j := 0; j < v.snap.Len(); j++ {
		e := v.snap.item(j)
		if _, dead := v.dels[e]; dead {
			continue
		}
		dst = append(dst, e)
	}
	dst = append(dst, v.adds...)
	return dst
}

// Len returns the live entry count.
func (x *Index) Len() int {
	return x.lenLocked(x.view.Load())
}

func (x *Index) lenLocked(v *view) int {
	return v.snap.Len() - len(v.dels) + len(v.adds)
}

// Generation returns the current snapshot generation.
func (x *Index) Generation() uint64 { return x.view.Load().snap.Generation() }

// DeltaEntries returns the current delta size (adds + tombstones).
func (x *Index) DeltaEntries() int {
	v := x.view.Load()
	return len(v.adds) + len(v.dels)
}

// Merges returns the number of delta merges performed.
func (x *Index) Merges() int64 { return x.merges.Load() }

// MergeHist returns a snapshot of the merge-duration histogram.
func (x *Index) MergeHist() obs.HistogramData { return x.mergeHist.Data() }

// SlabBytes returns the size of the current snapshot slab.
func (x *Index) SlabBytes() int64 { return int64(len(x.view.Load().snap.Bytes())) }

// MmapBytes returns the size of the current snapshot's file mapping, or 0
// when the snapshot is heap-backed (built in memory, loaded through the
// portable fallback, or already superseded by a merge).
func (x *Index) MmapBytes() int64 { return x.view.Load().snap.mapped }

// OpenBytesRead returns the number of bytes Load explicitly read from the
// snapshot file when this index was opened: the whole file on the portable
// fallback path, 0 on the mmap path (where only the header page is faulted
// in before the first query).
func (x *Index) OpenBytesRead() int64 { return x.openBytesRead }

// CheckInvariants validates the packed snapshot and the delta invariants
// (adds disjoint from snapshot, tombstones present in snapshot).
func (x *Index) CheckInvariants() error {
	v := x.view.Load()
	if err := v.snap.CheckInvariants(); err != nil {
		return err
	}
	if len(v.envs) != len(v.adds) {
		return fmt.Errorf("flatidx: view has %d delta adds but %d delta envelopes", len(v.adds), len(v.envs))
	}
	for i := range v.adds {
		if v.snap.contains(v.adds[i]) {
			return fmt.Errorf("flatidx: delta add %d also present in snapshot", v.adds[i].ID)
		}
	}
	for e := range v.dels {
		if !v.snap.contains(e) {
			return fmt.Errorf("flatidx: tombstone %d not present in snapshot", e.ID)
		}
	}
	return nil
}

// Close waits for any in-flight background merge. The index stays readable
// (Save-on-close callers read it after Close returns).
func (x *Index) Close() error {
	x.mu.Lock()
	x.closed = true
	x.mu.Unlock()
	x.wg.Wait()
	return nil
}
