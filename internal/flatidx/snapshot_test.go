package flatidx

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/seq"
)

func randEntries(rng *rand.Rand, n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		entries[i].ID = seq.ID(i + 1)
		for d := 0; d < 4; d++ {
			entries[i].Point[d] = rng.NormFloat64() * 10
		}
	}
	return entries
}

func randEnvs(rng *rand.Rand, n int) []seq.PAAEnvelope {
	envs := make([]seq.PAAEnvelope, n)
	for i := range envs {
		envs[i].Len = 64 + rng.Intn(64)
		for k := 0; k < seq.PAASegments; k++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			envs[i].Min[k] = math.Min(a, b)
			envs[i].Max[k] = math.Max(a, b)
		}
	}
	return envs
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
}

func bruteRange(entries []Entry, lo, hi [4]float64) []Entry {
	var out []Entry
	for _, e := range entries {
		in := true
		for d := 0; d < 4; d++ {
			if e.Point[d] < lo[d] || e.Point[d] > hi[d] {
				in = false
				break
			}
		}
		if in {
			out = append(out, e)
		}
	}
	return out
}

func TestBuildRangeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 15, 16, 17, 100, 1000, 4000} {
		entries := randEntries(rng, n)
		snap, err := Build(entries, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Len() != n {
			t.Fatalf("n=%d: snapshot Len=%d", n, snap.Len())
		}
		if err := snap.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 20; q++ {
			var lo, hi [4]float64
			for d := 0; d < 4; d++ {
				c := rng.NormFloat64() * 10
				r := rng.Float64() * 15
				lo[d], hi[d] = c-r, c+r
			}
			got := snap.appendRange(nil, &lo, &hi, nil)
			want := bruteRange(entries, lo, hi)
			sortEntries(got)
			sortEntries(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d q=%d: got %d entries, want %d", n, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: entry %d = %+v, want %+v", n, q, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, n := range []int{0, 1, 40, 500} {
		for _, withEnv := range []bool{false, true} {
			entries := randEntries(rng, n)
			var envs []seq.PAAEnvelope
			if withEnv {
				envs = randEnvs(rng, n)
			}
			snap, err := Build(entries, envs, 7)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := Decode(snap.Bytes())
			if err != nil {
				t.Fatalf("n=%d env=%v: decode: %v", n, withEnv, err)
			}
			if dec.Generation() != 7 || dec.Len() != n || dec.HasEnvelopes() != (withEnv && n > 0) {
				t.Fatalf("n=%d env=%v: decoded gen=%d len=%d hasEnv=%v", n, withEnv, dec.Generation(), dec.Len(), dec.HasEnvelopes())
			}
			// Re-encoding is the identity: the slab IS the snapshot.
			if string(dec.Bytes()) != string(snap.Bytes()) {
				t.Fatalf("n=%d env=%v: roundtrip bytes differ", n, withEnv)
			}
			// Every item and envelope survives.
			got := dec.Entries(nil)
			sortEntries(got)
			want := append([]Entry(nil), entries...)
			sortEntries(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d env=%v: item %d = %+v, want %+v", n, withEnv, i, got[i], want[i])
				}
			}
			if withEnv && n > 0 {
				var pe seq.PAAEnvelope
				for j := 0; j < n; j++ {
					id := dec.item(j).ID
					if !dec.env(j, &pe) {
						t.Fatalf("item %d lost its envelope", j)
					}
					if pe != envs[id-1] {
						t.Fatalf("item %d envelope mismatch", j)
					}
				}
			}
		}
	}
}

// Entries on a bare snapshot (test helper mirroring Index.Entries).
func (s *Snapshot) Entries(dst []Entry) []Entry {
	for j := 0; j < s.nItems; j++ {
		dst = append(dst, s.item(j))
	}
	return dst
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	snap, err := Build(randEntries(rng, 200), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := snap.Bytes()

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"truncated header": base[:headerSize-1],
		"truncated slab":   base[:len(base)-1],
		"bad magic":        mutate(func(b []byte) { b[0] = 'X' }),
		"bad version":      mutate(func(b []byte) { b[4] = 99 }),
		"unknown flags":    mutate(func(b []byte) { b[8] |= 0x80 }),
		"node count lie":   mutate(func(b []byte) { b[12]++ }),
		"item count lie":   mutate(func(b []byte) { b[16]++ }),
		"height lie":       mutate(func(b []byte) { b[20]++ }),
		"leaf bit flipped": mutate(func(b []byte) { b[headerSize+68+3] ^= 0x80 }),
		"child first lie":  mutate(func(b []byte) { b[headerSize+64]++ }),
		// NaN root bound: !(lo <= hi) must reject it.
		"rect NaN": mutate(func(b []byte) {
			for i := headerSize; i < headerSize+8; i++ {
				b[i] = 0xff
			}
		}),
		// Swap the root's lo[0]/hi[0]: inverted rect (or escaped children).
		"rect inverted": mutate(func(b []byte) {
			for i := 0; i < 8; i++ {
				b[headerSize+i], b[headerSize+32+i] = b[headerSize+32+i], b[headerSize+i]
			}
		}),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
	if _, err := Decode(base); err != nil {
		t.Fatalf("pristine slab rejected: %v", err)
	}
}

func TestContains(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	entries := randEntries(rng, 300)
	snap, err := Build(entries, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !snap.contains(e) {
			t.Fatalf("missing entry %d", e.ID)
		}
	}
	absent := entries[0]
	absent.ID += 1000
	if snap.contains(absent) {
		t.Error("contains admitted an absent ID at a present point")
	}
	moved := entries[0]
	moved.Point[2] += 1
	if snap.contains(moved) {
		t.Error("contains admitted a moved point")
	}
}

func TestNodeDistMatchesRtreeAxisDist(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	entries := randEntries(rng, 128)
	snap, err := Build(entries, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi [4]float64
	snap.nodeRect(0, &lo, &hi)
	for trial := 0; trial < 200; trial++ {
		var p [4]float64
		for d := 0; d < 4; d++ {
			p[d] = rng.NormFloat64() * 40
		}
		want := 0.0
		for d := 0; d < 4; d++ {
			var g float64
			switch {
			case p[d] < lo[d]:
				g = lo[d] - p[d]
			case p[d] > hi[d]:
				g = p[d] - hi[d]
			}
			if g > want {
				want = g
			}
		}
		if got := snap.nodeDistLInf(0, &p); got != want {
			t.Fatalf("nodeDistLInf=%g want %g (bit-identity matters)", got, want)
		}
	}
}
