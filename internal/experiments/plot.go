package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// Plot renders the cells as an ASCII line chart mirroring the paper's
// figures: X = the sweep variable, Y = log10(modeled elapsed time per
// query), one glyph per method. It is deliberately coarse — the CSVs carry
// the precise numbers — but makes the who-wins shape visible in a
// terminal, like the figures do on paper.
func Plot(w io.Writer, xlabel string, cells []Cell, cm core.CostModel) {
	const (
		width  = 64
		height = 16
	)
	if len(cells) == 0 {
		return
	}
	glyphs := map[string]byte{
		"Naive-Scan":    'N',
		"LB-Scan":       'L',
		"ST-Filter":     'S',
		"TW-Sim-Search": 'T',
	}
	nextGlyph := byte('a')

	type pt struct {
		x, y float64
	}
	series := map[string][]pt{}
	var order []string
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range cells {
		us := float64(c.ModeledPerQuery(cm).Microseconds())
		if us < 1 {
			us = 1
		}
		y := math.Log10(us)
		if _, ok := series[c.Method]; !ok {
			order = append(order, c.Method)
			if _, ok := glyphs[c.Method]; !ok {
				glyphs[c.Method] = nextGlyph
				nextGlyph++
			}
		}
		series[c.Method] = append(series[c.Method], pt{x: c.X, y: y})
		minX, maxX = math.Min(minX, c.X), math.Max(maxX, c.X)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	place := func(x, y float64, g byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		row := height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		if grid[row][col] != ' ' && grid[row][col] != g {
			grid[row][col] = '*' // collision marker
			return
		}
		grid[row][col] = g
	}
	for _, name := range order {
		pts := series[name]
		sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
		g := glyphs[name]
		for i, p := range pts {
			place(p.x, p.y, g)
			// Sparse linear interpolation between consecutive points.
			if i > 0 {
				prev := pts[i-1]
				for f := 0.2; f < 1; f += 0.2 {
					place(prev.x+(p.x-prev.x)*f, prev.y+(p.y-prev.y)*f, g)
				}
			}
		}
	}

	fmt.Fprintf(w, "\nmodeled time/query (log scale) vs %s\n", xlabel)
	topLabel := time.Duration(math.Pow(10, maxY)) * time.Microsecond
	botLabel := time.Duration(math.Pow(10, minY)) * time.Microsecond
	for i, row := range grid {
		prefix := "          |"
		switch i {
		case 0:
			prefix = fmt.Sprintf("%9s |", topLabel.Round(time.Microsecond))
		case height - 1:
			prefix = fmt.Sprintf("%9s |", botLabel.Round(time.Microsecond))
		}
		fmt.Fprintf(w, "%s%s\n", prefix, string(row))
	}
	fmt.Fprintf(w, "          +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "           %-10g%*s\n", minX, width-10, fmt.Sprintf("%g", maxX))
	var legend []string
	for _, name := range order {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[name], name))
	}
	fmt.Fprintf(w, "           legend: %s\n", strings.Join(legend, "  "))
}
