package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestPlotRendersSeries(t *testing.T) {
	cells := []Cell{
		{Method: "Naive-Scan", X: 100, Queries: 1, DBSize: 10,
			Stats: core.QueryStats{Wall: 10 * time.Millisecond}},
		{Method: "Naive-Scan", X: 400, Queries: 1, DBSize: 10,
			Stats: core.QueryStats{Wall: 40 * time.Millisecond}},
		{Method: "TW-Sim-Search", X: 100, Queries: 1, DBSize: 10,
			Stats: core.QueryStats{Wall: 100 * time.Microsecond}},
		{Method: "TW-Sim-Search", X: 400, Queries: 1, DBSize: 10,
			Stats: core.QueryStats{Wall: 120 * time.Microsecond}},
	}
	var buf bytes.Buffer
	Plot(&buf, "length", cells, core.DefaultCostModel)
	out := buf.String()
	if !strings.Contains(out, "legend: N=Naive-Scan  T=TW-Sim-Search") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "N") || !strings.Contains(out, "T") {
		t.Error("series glyphs missing")
	}
	// The slow method must appear above the fast one (earlier rows).
	lines := strings.Split(out, "\n")
	rowOf := func(g string) int {
		for i, l := range lines {
			if strings.Contains(l, "|") && strings.Contains(strings.SplitN(l, "|", 2)[1], g) {
				return i
			}
		}
		return -1
	}
	if n, tw := rowOf("N"), rowOf("T"); n == -1 || tw == -1 || n >= tw {
		t.Errorf("Naive row %d not above TW row %d\n%s", n, tw, out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "x", nil, core.DefaultCostModel)
	if buf.Len() != 0 {
		t.Error("empty input produced output")
	}
	// Single point, zero ranges: must not panic or divide by zero.
	Plot(&buf, "x", []Cell{{Method: "M", X: 5, Queries: 1, DBSize: 1}}, core.DefaultCostModel)
	if !strings.Contains(buf.String(), "M") && !strings.Contains(buf.String(), "legend") {
		t.Errorf("degenerate plot empty:\n%s", buf.String())
	}
}
