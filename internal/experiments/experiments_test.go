package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// small returns a config sized for unit tests.
func small() Config {
	return Config{Seed: 1, NumQueries: 5, Categories: 20, WithSTFilter: true}
}

func TestStockSweepShape(t *testing.T) {
	cells, err := StockSweep(small(), synth.StockOptions{Count: 60, MeanLen: 30, LenSpread: 5},
		[]float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 methods × 2 tolerances.
	if len(cells) != 8 {
		t.Fatalf("got %d cells", len(cells))
	}
	methods := map[string]bool{}
	for _, c := range cells {
		methods[c.Method] = true
		if c.Queries != 5 || c.DBSize != 60 {
			t.Errorf("cell meta wrong: %+v", c)
		}
		if c.CandidateRatio() < 0 || c.CandidateRatio() > 1 {
			t.Errorf("candidate ratio %g out of range", c.CandidateRatio())
		}
	}
	for _, want := range []string{"Naive-Scan", "LB-Scan", "ST-Filter", "TW-Sim-Search"} {
		if !methods[want] {
			t.Errorf("missing method %s", want)
		}
	}
	// All exact methods must report identical result counts per tolerance.
	byX := map[float64]map[string]int{}
	for _, c := range cells {
		if byX[c.X] == nil {
			byX[c.X] = map[string]int{}
		}
		byX[c.X][c.Method] = c.Stats.Results
	}
	for x, m := range byX {
		want := m["Naive-Scan"]
		for name, got := range m {
			if got != want {
				t.Errorf("x=%g: %s results %d != Naive-Scan %d", x, name, got, want)
			}
		}
	}
}

func TestScaleSweep(t *testing.T) {
	cfg := small()
	cfg.WithSTFilter = false
	cells, err := ScaleSweep(cfg, []int{30, 90}, 20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 { // 3 methods × 2 counts
		t.Fatalf("got %d cells", len(cells))
	}
	// Scan I/O must grow with database size; collect per method.
	io := map[string][]int64{}
	for _, c := range cells {
		io[c.Method] = append(io[c.Method], c.Stats.DataReads)
	}
	if !(io["Naive-Scan"][1] > io["Naive-Scan"][0]) {
		t.Error("Naive-Scan data reads did not grow with database size")
	}
}

func TestLengthSweep(t *testing.T) {
	cfg := small()
	cfg.WithSTFilter = false
	cells, err := LengthSweep(cfg, []int{10, 40}, 40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells", len(cells))
	}
	io := map[string][]int64{}
	for _, c := range cells {
		io[c.Method] = append(io[c.Method], c.Stats.DataReads)
	}
	if !(io["LB-Scan"][1] > io["LB-Scan"][0]) {
		t.Error("LB-Scan data reads did not grow with sequence length")
	}
}

func TestFalseDismissalReport(t *testing.T) {
	cfg := small()
	cfg.WithSTFilter = false
	cfg.NumQueries = 10
	rep, err := FalseDismissal(cfg, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 10 {
		t.Errorf("Queries = %d", rep.Queries)
	}
	if rep.FastMapAnswers > rep.TrueAnswers {
		t.Errorf("FastMap found %d answers, more than the %d true ones",
			rep.FastMapAnswers, rep.TrueAnswers)
	}
	if rep.Dismissed != rep.TrueAnswers-rep.FastMapAnswers {
		t.Errorf("Dismissed arithmetic wrong: %+v", rep)
	}
}

func TestPrintersProduceTables(t *testing.T) {
	cfg := small()
	cfg.WithSTFilter = false
	cells, err := StockSweep(cfg, synth.StockOptions{Count: 40, MeanLen: 20, LenSpread: 3},
		[]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintCandidateRatioTable(&buf, cells)
	out := buf.String()
	if !strings.Contains(out, "TW-Sim-Search") || !strings.Contains(out, "cand-ratio") {
		t.Errorf("candidate table missing content:\n%s", out)
	}
	buf.Reset()
	PrintElapsedTable(&buf, "tolerance", cells, core.DefaultCostModel)
	out = buf.String()
	if !strings.Contains(out, "modeled/query") || !strings.Contains(out, "speedup") {
		t.Errorf("elapsed table missing content:\n%s", out)
	}
}

// The headline claim at unit-test scale: TW-Sim-Search's modeled time beats
// the scan methods once the database dwarfs the buffer pool.
func TestTWSimWinsModeledTime(t *testing.T) {
	cfg := Config{Seed: 3, NumQueries: 5, PoolPages: 16}
	cells, err := ScaleSweep(cfg, []int{400}, 60, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var tw, naive int64
	for _, c := range cells {
		modeled := int64(c.Stats.Modeled(core.DefaultCostModel))
		switch c.Method {
		case "TW-Sim-Search":
			tw = modeled
		case "Naive-Scan":
			naive = modeled
		}
	}
	if tw == 0 || naive == 0 {
		t.Fatal("missing methods")
	}
	if tw >= naive {
		t.Errorf("TW-Sim-Search modeled %d >= Naive-Scan %d", tw, naive)
	}
}
