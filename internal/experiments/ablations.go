package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/synth"
)

// BaseAblation compares the two DTW base distances end-to-end (the paper's
// §4.1 argument and footnote 3: L∞ keeps tolerances length-independent and
// early-abandons sooner). For each base it runs the full method set over
// the same stock-style workload; eps values are given per base because the
// two distances live on different scales (L1 grows with warped length).
type BaseAblationRow struct {
	Base    seq.Base
	Cells   []Cell
	Epsilon float64
}

// BaseAblation runs the ablation and returns one row per base.
func BaseAblation(cfg Config, epsLInf, epsL1 float64) ([]BaseAblationRow, error) {
	cfg = cfg.withDefaults()
	var rows []BaseAblationRow
	for _, be := range []struct {
		base seq.Base
		eps  float64
	}{{seq.LInf, epsLInf}, {seq.L1, epsL1}} {
		c := cfg
		c.Base = be.base
		rng := rand.New(rand.NewSource(c.Seed))
		data := synth.StockSet(rng, synth.StockOptions{Count: 200, MeanLen: 100, LenSpread: 20})
		f, err := BuildFixture(data, c)
		if err != nil {
			return nil, err
		}
		queries := synth.Queries(rng, data, c.NumQueries)
		cells, err := measure(f, queries, be.eps, be.eps)
		f.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaseAblationRow{Base: be.base, Cells: cells, Epsilon: be.eps})
	}
	return rows, nil
}

// PrintBaseAblation renders the base-distance ablation.
func PrintBaseAblation(w io.Writer, rows []BaseAblationRow, cm core.CostModel) {
	fmt.Fprintf(w, "%-6s %-14s %10s %12s %14s %14s\n",
		"base", "method", "eps", "avg-results", "wall/query", "modeled/query")
	for _, r := range rows {
		for _, c := range r.Cells {
			fmt.Fprintf(w, "%-6s %-14s %10.2f %12.2f %14s %14s\n",
				r.Base, c.Method, r.Epsilon, c.AvgResults(),
				c.WallPerQuery().Round(time.Microsecond),
				c.ModeledPerQuery(cm).Round(time.Microsecond))
		}
	}
}

// CategoryAblation explores the §3.4 trade-off: ST-Filter's candidate count
// and traversal cost across categorization granularities, plus the tree
// size each granularity produces.
type CategoryAblationRow struct {
	Categories int
	TreeNodes  int
	Cell       Cell
}

// CategoryAblation runs ST-Filter at each category count over one shared
// workload.
func CategoryAblation(cfg Config, categoryCounts []int, eps float64) ([]CategoryAblationRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := synth.RandomWalkSet(rng, 300, 64)
	f, err := BuildFixture(data, cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	queries := synth.Queries(rng, data, cfg.NumQueries)
	var rows []CategoryAblationRow
	for _, cats := range categoryCounts {
		stf, err := core.BuildSTFilter(f.DB, cfg.Base, cats)
		if err != nil {
			return nil, err
		}
		cell := Cell{Method: stf.Name(), X: float64(cats), Queries: len(queries), DBSize: len(data)}
		for _, q := range queries {
			res, err := stf.Search(q, eps)
			if err != nil {
				return nil, err
			}
			cell.Stats.Add(res.Stats)
		}
		rows = append(rows, CategoryAblationRow{
			Categories: cats,
			TreeNodes:  stf.Tree.NumNodes(),
			Cell:       cell,
		})
	}
	return rows, nil
}

// PrintCategoryAblation renders the category-count ablation.
func PrintCategoryAblation(w io.Writer, rows []CategoryAblationRow, cm core.CostModel) {
	fmt.Fprintf(w, "%-12s %12s %12s %14s %14s\n",
		"categories", "tree-nodes", "avg-cands", "wall/query", "modeled/query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %12d %12.2f %14s %14s\n",
			r.Categories, r.TreeNodes,
			float64(r.Cell.Stats.Candidates)/float64(r.Cell.Queries),
			r.Cell.WallPerQuery().Round(time.Microsecond),
			r.Cell.ModeledPerQuery(cm).Round(time.Microsecond))
	}
}
