package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
)

func TestBaseAblation(t *testing.T) {
	cfg := Config{Seed: 5, NumQueries: 3}
	rows, err := BaseAblation(cfg, 1.0, 40.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Base != seq.LInf || rows[1].Base != seq.L1 {
		t.Errorf("bases = %v, %v", rows[0].Base, rows[1].Base)
	}
	for _, r := range rows {
		if len(r.Cells) == 0 {
			t.Fatalf("base %v: no cells", r.Base)
		}
		// Within one base, all exact methods agree on result counts.
		want := r.Cells[0].Stats.Results
		for _, c := range r.Cells {
			if c.Stats.Results != want {
				t.Errorf("base %v: %s results %d != %d", r.Base, c.Method, c.Stats.Results, want)
			}
		}
	}
	var buf bytes.Buffer
	PrintBaseAblation(&buf, rows, core.DefaultCostModel)
	if !strings.Contains(buf.String(), "Linf") || !strings.Contains(buf.String(), "L1") {
		t.Errorf("ablation table missing bases:\n%s", buf.String())
	}
}

func TestCategoryAblation(t *testing.T) {
	cfg := Config{Seed: 6, NumQueries: 3}
	rows, err := CategoryAblation(cfg, []int{5, 100}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Finer categories -> larger tree, fewer (or equal) candidates.
	if rows[1].TreeNodes <= rows[0].TreeNodes {
		t.Errorf("tree nodes: %d (100 cats) <= %d (5 cats)", rows[1].TreeNodes, rows[0].TreeNodes)
	}
	if rows[1].Cell.Stats.Candidates > rows[0].Cell.Stats.Candidates {
		t.Errorf("candidates grew with finer categories: %d > %d",
			rows[1].Cell.Stats.Candidates, rows[0].Cell.Stats.Candidates)
	}
	var buf bytes.Buffer
	PrintCategoryAblation(&buf, rows, core.DefaultCostModel)
	if !strings.Contains(buf.String(), "tree-nodes") {
		t.Error("table missing header")
	}
}
