// Package experiments regenerates the paper's evaluation section (§5):
// Experiment 1 (Figure 2, candidate ratio vs tolerance on stock data),
// Experiment 2 (Figure 3, elapsed time vs tolerance on stock data),
// Experiment 3 (Figure 4, elapsed time vs database size on synthetic data),
// Experiment 4 (Figure 5, elapsed time vs sequence length on synthetic
// data), and the §3.3 FastMap false-dismissal demonstration.
//
// Elapsed times are reported both as measured wall time and as "modeled"
// time — wall time plus a per-page-miss disk charge mirroring the paper's
// 9.5 ms-seek platform — so who-wins comparisons do not depend on the host
// machine (DESIGN.md §3).
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/seqdb"
	"repro/internal/synth"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives all data and query generation.
	Seed int64
	// Base is the DTW base distance (default LInf, the paper's model).
	Base seq.Base
	// NumQueries per measurement point (paper: 100).
	NumQueries int
	// PageSize for data and index files (default 1 KB).
	PageSize int
	// PoolPages per buffer pool (default 64).
	PoolPages int
	// Categories for ST-Filter (paper: 100).
	Categories int
	// WithSTFilter includes the (expensive to build) ST-Filter baseline.
	WithSTFilter bool
	// Cost converts page misses to modeled time (default 9.5 ms).
	Cost core.CostModel
}

func (c Config) withDefaults() Config {
	if c.NumQueries == 0 {
		c.NumQueries = 100
	}
	if c.Categories == 0 {
		c.Categories = 100
	}
	if c.Cost.Seek == 0 && c.Cost.Transfer == 0 {
		c.Cost = core.DefaultCostModel
	}
	if c.PoolPages == 0 {
		c.PoolPages = 64
	}
	return c
}

// Cell is one measurement: a method at one sweep point, aggregated over the
// query batch.
type Cell struct {
	Method  string
	X       float64 // the sweep variable (tolerance, #sequences, or length)
	Queries int
	DBSize  int // number of data sequences
	Stats   core.QueryStats
}

// CandidateRatio is the paper's Experiment 1 metric, averaged per query.
func (c Cell) CandidateRatio() float64 {
	if c.Queries == 0 || c.DBSize == 0 {
		return 0
	}
	return float64(c.Stats.Candidates) / float64(c.Queries) / float64(c.DBSize)
}

// AvgResults is the average answer set size per query.
func (c Cell) AvgResults() float64 {
	if c.Queries == 0 {
		return 0
	}
	return float64(c.Stats.Results) / float64(c.Queries)
}

// WallPerQuery is the measured wall time per query.
func (c Cell) WallPerQuery() time.Duration {
	if c.Queries == 0 {
		return 0
	}
	return c.Stats.Wall / time.Duration(c.Queries)
}

// ModeledPerQuery is the modeled elapsed time per query under cm.
func (c Cell) ModeledPerQuery(cm core.CostModel) time.Duration {
	if c.Queries == 0 {
		return 0
	}
	return c.Stats.Modeled(cm) / time.Duration(c.Queries)
}

// Fixture bundles one generated database with its index and search methods.
type Fixture struct {
	Data    []seq.Sequence
	DB      *seqdb.DB
	Index   *core.FeatureIndex
	Methods []core.Searcher
}

// Close releases fixture resources.
func (f *Fixture) Close() {
	if f.Index != nil {
		f.Index.Close()
	}
	if f.DB != nil {
		f.DB.Close()
	}
}

// BuildFixture loads data into a fresh in-memory database, bulk loads the
// feature index, and instantiates the configured method set in the paper's
// presentation order.
func BuildFixture(data []seq.Sequence, cfg Config) (*Fixture, error) {
	cfg = cfg.withDefaults()
	db, err := seqdb.NewMem(seqdb.Options{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages})
	if err != nil {
		return nil, err
	}
	f := &Fixture{Data: data, DB: db}
	ids := make([]seq.ID, len(data))
	features := make([]seq.Feature, len(data))
	for i, s := range data {
		id, err := db.Append(s)
		if err != nil {
			f.Close()
			return nil, err
		}
		ids[i] = id
		features[i] = seq.MustFeature(s)
	}
	idx, err := core.NewFeatureIndex(core.IndexOptions{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Index = idx
	if err := idx.BulkLoad(ids, features); err != nil {
		f.Close()
		return nil, err
	}
	f.Methods = []core.Searcher{
		&core.NaiveScan{DB: db, Base: cfg.Base},
		&core.LBScan{DB: db, Base: cfg.Base},
	}
	if cfg.WithSTFilter {
		stf, err := core.BuildSTFilter(db, cfg.Base, cfg.Categories)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Methods = append(f.Methods, stf)
	}
	f.Methods = append(f.Methods, &core.TWSimSearch{DB: db, Index: idx, Base: cfg.Base})
	return f, nil
}

// measure runs every method over the query batch at tolerance eps and
// returns one Cell per method with x as the sweep coordinate.
func measure(f *Fixture, queries []seq.Sequence, eps, x float64) ([]Cell, error) {
	cells := make([]Cell, 0, len(f.Methods))
	for _, m := range f.Methods {
		cell := Cell{Method: m.Name(), X: x, Queries: len(queries), DBSize: len(f.Data)}
		for _, q := range queries {
			res, err := m.Search(q, eps)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.Name(), err)
			}
			cell.Stats.Add(res.Stats)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// StockSweep runs Experiments 1 and 2: the simulated S&P-style data set
// swept over tolerances. The returned cells serve both the candidate-ratio
// table (Figure 2) and the elapsed-time table (Figure 3).
func StockSweep(cfg Config, stock synth.StockOptions, tolerances []float64) ([]Cell, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := synth.StockSet(rng, stock)
	f, err := BuildFixture(data, cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	queries := synth.Queries(rng, data, cfg.NumQueries)
	var cells []Cell
	for _, eps := range tolerances {
		cs, err := measure(f, queries, eps, eps)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cs...)
	}
	return cells, nil
}

// ScaleSweep runs Experiment 3: fixed length and tolerance, database size
// swept (paper: 1e3..1e5 sequences of length 1000 at ε = 0.1).
func ScaleSweep(cfg Config, counts []int, length int, eps float64) ([]Cell, error) {
	cfg = cfg.withDefaults()
	var cells []Cell
	for _, n := range counts {
		rng := rand.New(rand.NewSource(cfg.Seed))
		data := synth.RandomWalkSet(rng, n, length)
		f, err := BuildFixture(data, cfg)
		if err != nil {
			return nil, err
		}
		queries := synth.Queries(rng, data, cfg.NumQueries)
		cs, err := measure(f, queries, eps, float64(n))
		f.Close()
		if err != nil {
			return nil, err
		}
		cells = append(cells, cs...)
	}
	return cells, nil
}

// LengthSweep runs Experiment 4: fixed count and tolerance, sequence length
// swept (paper: lengths 100..5000 over 1e4 sequences at ε = 0.1).
func LengthSweep(cfg Config, lengths []int, count int, eps float64) ([]Cell, error) {
	cfg = cfg.withDefaults()
	var cells []Cell
	for _, length := range lengths {
		rng := rand.New(rand.NewSource(cfg.Seed))
		data := synth.RandomWalkSet(rng, count, length)
		f, err := BuildFixture(data, cfg)
		if err != nil {
			return nil, err
		}
		queries := synth.Queries(rng, data, cfg.NumQueries)
		cs, err := measure(f, queries, eps, float64(length))
		f.Close()
		if err != nil {
			return nil, err
		}
		cells = append(cells, cs...)
	}
	return cells, nil
}

// DismissalReport summarizes the FastMap false-dismissal experiment.
type DismissalReport struct {
	Queries        int
	TrueAnswers    int
	FastMapAnswers int
	Dismissed      int
}

// FalseDismissal reproduces the §3.3 argument: FastMap's embedded-space
// range query misses qualifying sequences that the exact methods find.
func FalseDismissal(cfg Config, k int, eps float64) (DismissalReport, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	data := synth.StockSet(rng, synth.StockOptions{Count: 200, MeanLen: 60, LenSpread: 20})
	f, err := BuildFixture(data, cfg)
	if err != nil {
		return DismissalReport{}, err
	}
	defer f.Close()
	fm, err := core.BuildFastMapSearch(f.DB, cfg.Base, k, cfg.Seed)
	if err != nil {
		return DismissalReport{}, err
	}
	naive := &core.NaiveScan{DB: f.DB, Base: cfg.Base}
	queries := synth.Queries(rng, data, cfg.NumQueries)
	rep := DismissalReport{Queries: len(queries)}
	for _, q := range queries {
		truth, err := naive.Search(q, eps)
		if err != nil {
			return rep, err
		}
		approx, err := fm.Search(q, eps)
		if err != nil {
			return rep, err
		}
		rep.TrueAnswers += len(truth.Matches)
		rep.FastMapAnswers += len(approx.Matches)
	}
	rep.Dismissed = rep.TrueAnswers - rep.FastMapAnswers
	return rep, nil
}

// PrintCandidateRatioTable renders Figure 2's data: candidate ratio per
// method per tolerance.
func PrintCandidateRatioTable(w io.Writer, cells []Cell) {
	fmt.Fprintf(w, "%-14s %10s %12s %12s %12s\n",
		"method", "tolerance", "cand-ratio", "avg-cands", "avg-results")
	for _, c := range cells {
		fmt.Fprintf(w, "%-14s %10.3f %12.5f %12.2f %12.2f\n",
			c.Method, c.X, c.CandidateRatio(),
			float64(c.Stats.Candidates)/float64(c.Queries), c.AvgResults())
	}
}

// PrintElapsedTable renders Figures 3–5's data: per-query elapsed time
// (wall and modeled) per method per sweep point, plus the speedup of
// TW-Sim-Search over the best scan-based method at the same point.
func PrintElapsedTable(w io.Writer, xlabel string, cells []Cell, cm core.CostModel) {
	fmt.Fprintf(w, "%-14s %12s %14s %14s %10s %10s %10s\n",
		"method", xlabel, "wall/query", "modeled/query", "dataIO/q", "idxIO/q", "treeIO/q")
	for _, c := range cells {
		fmt.Fprintf(w, "%-14s %12.3f %14s %14s %10.1f %10.1f %10.1f\n",
			c.Method, c.X,
			c.WallPerQuery().Round(time.Microsecond),
			c.ModeledPerQuery(cm).Round(time.Microsecond),
			float64(c.Stats.DataMisses)/float64(c.Queries),
			float64(c.Stats.IndexMisses)/float64(c.Queries),
			float64(c.Stats.TreePages)/float64(c.Queries))
	}
	printSpeedups(w, xlabel, cells, cm)
}

// printSpeedups reports, per sweep point, the speedup of TW-Sim-Search over
// the best other method — the paper's headline numbers — both in measured
// wall time (comparable to the paper's RAM-cached platform, where LB-Scan's
// CPU advantage over Naive-Scan is visible) and in modeled cold-disk time.
func printSpeedups(w io.Writer, xlabel string, cells []Cell, cm core.CostModel) {
	byX := map[float64][]Cell{}
	var xs []float64
	for _, c := range cells {
		if _, ok := byX[c.X]; !ok {
			xs = append(xs, c.X)
		}
		byX[c.X] = append(byX[c.X], c)
	}
	fmt.Fprintf(w, "\n%-12s %28s %10s %28s %10s\n",
		xlabel, "best other (wall)", "speedup", "best other (modeled)", "speedup")
	for _, x := range xs {
		var twWall, twModeled time.Duration
		bestWall, bestModeled := time.Duration(0), time.Duration(0)
		wallName, modeledName := "", ""
		for _, c := range byX[x] {
			wall := c.WallPerQuery()
			modeled := c.ModeledPerQuery(cm)
			if c.Method == "TW-Sim-Search" {
				twWall, twModeled = wall, modeled
				continue
			}
			if wallName == "" || wall < bestWall {
				bestWall, wallName = wall, c.Method
			}
			if modeledName == "" || modeled < bestModeled {
				bestModeled, modeledName = modeled, c.Method
			}
		}
		if twWall <= 0 || wallName == "" {
			continue
		}
		fmt.Fprintf(w, "%-12.3f %16s (%-10s %9.1fx %16s (%-10s %9.1fx\n",
			x,
			bestWall.Round(time.Microsecond), wallName+")",
			float64(bestWall)/float64(twWall),
			bestModeled.Round(time.Microsecond), modeledName+")",
			float64(bestModeled)/float64(twModeled))
	}
}
