package experiments

import (
	"encoding/csv"
	"io"
	"strconv"

	"repro/internal/core"
)

// WriteCSV emits the cells as machine-readable CSV for external plotting:
// one row per (method, sweep point) with candidate ratio, average results,
// wall and modeled microseconds per query, and the I/O breakdown.
func WriteCSV(w io.Writer, xlabel string, cells []Cell, cm core.CostModel) error {
	cw := csv.NewWriter(w)
	header := []string{
		"method", xlabel, "queries", "db_size",
		"candidate_ratio", "avg_candidates", "avg_results",
		"wall_us_per_query", "modeled_us_per_query",
		"data_misses_per_query", "index_misses_per_query", "tree_pages_per_query",
		"dtw_calls_per_query",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range cells {
		q := float64(c.Queries)
		row := []string{
			c.Method,
			strconv.FormatFloat(c.X, 'g', -1, 64),
			strconv.Itoa(c.Queries),
			strconv.Itoa(c.DBSize),
			strconv.FormatFloat(c.CandidateRatio(), 'g', 6, 64),
			strconv.FormatFloat(float64(c.Stats.Candidates)/q, 'f', 2, 64),
			strconv.FormatFloat(c.AvgResults(), 'f', 2, 64),
			strconv.FormatFloat(float64(c.WallPerQuery().Microseconds()), 'f', 1, 64),
			strconv.FormatFloat(float64(c.ModeledPerQuery(cm).Microseconds()), 'f', 1, 64),
			strconv.FormatFloat(float64(c.Stats.DataMisses)/q, 'f', 1, 64),
			strconv.FormatFloat(float64(c.Stats.IndexMisses)/q, 'f', 1, 64),
			strconv.FormatFloat(float64(c.Stats.TreePages)/q, 'f', 1, 64),
			strconv.FormatFloat(float64(c.Stats.DTWCalls)/q, 'f', 1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
