package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestWriteCSV(t *testing.T) {
	cfg := small()
	cfg.WithSTFilter = false
	cells, err := StockSweep(cfg, synth.StockOptions{Count: 30, MeanLen: 20, LenSpread: 3},
		[]float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, "tolerance", cells, core.DefaultCostModel); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 1+len(cells) {
		t.Fatalf("%d records, want %d", len(records), 1+len(cells))
	}
	header := records[0]
	if header[0] != "method" || header[1] != "tolerance" {
		t.Errorf("header = %v", header)
	}
	for _, rec := range records[1:] {
		if len(rec) != len(header) {
			t.Fatalf("ragged row: %v", rec)
		}
	}
	if !strings.Contains(buf.String(), "TW-Sim-Search") {
		t.Error("missing method rows")
	}
}
