package pagefile

import (
	"errors"
	"testing"
)

func TestFaultBackendInjection(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(128), 2)
	if _, err := fb.Alloc(); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := fb.Alloc(); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, err := fb.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3: %v, want injected fault", err)
	}
	// Once failed, it stays failed...
	buf := make([]byte, 128)
	if err := fb.ReadPage(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after failure: %v", err)
	}
	// ...until disarmed.
	fb.Disarm()
	if err := fb.ReadPage(0, buf); err != nil {
		t.Fatalf("read after disarm: %v", err)
	}
	fb.Arm(0)
	if err := fb.WritePage(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after re-arm: %v", err)
	}
}

func TestPoolPropagatesReadFault(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(128), -1)
	pool, err := NewPool(fb, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pg.Payload()[0] = 1
	pg.MarkDirty()
	id := pg.ID()
	pg.Unpin()
	// Evict by filling the pool, then fail the re-read.
	for i := 0; i < 8; i++ {
		p, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin()
	}
	fb.Arm(0)
	if _, err := pool.Fetch(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fetch = %v, want injected", err)
	}
	// Recovery: disarm and the page is readable again with intact content.
	fb.Disarm()
	p, err := pool.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch after disarm: %v", err)
	}
	if p.Payload()[0] != 1 {
		t.Error("content lost across fault")
	}
	p.Unpin()
}

func TestPoolPropagatesWriteBackFault(t *testing.T) {
	fb := NewFaultBackend(NewMemBackend(128), -1)
	pool, err := NewPool(fb, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pg.Payload()[0] = 9
	pg.MarkDirty()
	pg.Unpin()
	fb.Arm(0)
	if err := pool.FlushAll(); !errors.Is(err, ErrInjected) {
		t.Fatalf("FlushAll = %v, want injected", err)
	}
	// The frame stays dirty, so a later flush succeeds and persists it.
	fb.Disarm()
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("second FlushAll: %v", err)
	}
	raw := make([]byte, 128)
	if err := fb.ReadPage(0, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 9 {
		t.Error("dirty page lost after transient write fault")
	}
}
