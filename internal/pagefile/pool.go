package pagefile

import (
	"container/list"
	"fmt"
	"hash/crc32"
	"sync"
)

// Stats accumulates buffer pool activity. Reads counts logical page
// fetches; Misses the subset that had to go to the backend; SeqMisses the
// subset of misses whose page immediately follows the previously missed
// page (a sequential read, which disk cost models charge at transfer
// rather than seek cost); Writes the physical write-backs.
// Hit ratio = 1 - Misses/Reads.
type Stats struct {
	Reads     int64
	Misses    int64
	SeqMisses int64
	Writes    int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Misses += other.Misses
	s.SeqMisses += other.SeqMisses
	s.Writes += other.Writes
}

// Page is a pinned buffer frame. The caller must Unpin it when done; dirty
// pages must be marked via MarkDirty before Unpin or the mutation may be
// lost on eviction.
type Page struct {
	id    PageID
	frame *frame
	pool  *Pool
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Payload returns the caller-usable bytes of the page (the page minus the
// CRC trailer). The slice aliases the buffer frame and is only valid while
// the page is pinned.
func (p *Page) Payload() []byte { return p.frame.buf[:len(p.frame.buf)-crcLen] }

// MarkDirty records that the payload was mutated so the frame is written
// back before eviction.
func (p *Page) MarkDirty() { p.frame.dirty = true }

// Unpin releases the caller's pin. The Page must not be used afterwards.
func (p *Page) Unpin() { p.pool.unpin(p.frame) }

type frame struct {
	id    PageID
	buf   []byte
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned
}

// Pool is an LRU buffer pool over a Backend. All methods are safe for
// concurrent use.
type Pool struct {
	backend  Backend
	pageSize int
	capacity int

	mu       sync.Mutex
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; holds only unpinned frames
	stats    Stats
	lastMiss PageID // previously missed page, for sequential-read detection
}

// NewPool creates a buffer pool with room for capacity pages of the given
// page size over backend. Capacity must be at least 4 so multi-page
// operations (e.g. an R-tree split touching parent and two children) can
// hold their working set pinned.
func NewPool(backend Backend, pageSize, capacity int) (*Pool, error) {
	if capacity < 4 {
		return nil, fmt.Errorf("pagefile: pool capacity %d < 4", capacity)
	}
	if pageSize <= crcLen+8 {
		return nil, fmt.Errorf("pagefile: page size %d too small", pageSize)
	}
	return &Pool{
		backend:  backend,
		pageSize: pageSize,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
		lastMiss: InvalidPage,
	}, nil
}

// PageSize returns the configured page size.
func (p *Pool) PageSize() int { return p.pageSize }

// PayloadSize returns the number of caller-usable bytes per page.
func (p *Pool) PayloadSize() int { return p.pageSize - crcLen }

// Stats returns a snapshot of the accumulated counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (used between experiment runs).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// NumPages returns the number of allocated pages in the backing store.
func (p *Pool) NumPages() int { return p.backend.NumPages() }

// Alloc allocates a fresh page and returns it pinned with a zero payload.
func (p *Pool) Alloc() (*Page, error) {
	id, err := p.backend.Alloc()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.installLocked(id)
	if err != nil {
		return nil, err
	}
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.dirty = true
	return &Page{id: id, frame: f, pool: p}, nil
}

// Fetch pins page id, reading it from the backend on a miss.
func (p *Pool) Fetch(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Reads++
	if f, ok := p.frames[id]; ok {
		f.pins++
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		return &Page{id: id, frame: f, pool: p}, nil
	}
	p.stats.Misses++
	if p.lastMiss != InvalidPage && id == p.lastMiss+1 {
		p.stats.SeqMisses++
	}
	p.lastMiss = id
	f, err := p.installLocked(id)
	if err != nil {
		return nil, err
	}
	if err := p.backend.ReadPage(id, f.buf); err != nil {
		p.dropLocked(f)
		return nil, err
	}
	if err := verifyCRC(f.buf); err != nil {
		p.dropLocked(f)
		return nil, fmt.Errorf("%w (page %d)", err, id)
	}
	return &Page{id: id, frame: f, pool: p}, nil
}

// installLocked obtains a frame for id (evicting if necessary) and registers
// it pinned once. Caller holds p.mu.
func (p *Pool) installLocked(id PageID) (*frame, error) {
	var buf []byte
	if len(p.frames) >= p.capacity {
		victim := p.lru.Back()
		if victim == nil {
			return nil, fmt.Errorf("pagefile: buffer pool exhausted (%d pages, all pinned)", p.capacity)
		}
		vf := victim.Value.(*frame)
		if err := p.flushLocked(vf); err != nil {
			return nil, err
		}
		p.lru.Remove(victim)
		delete(p.frames, vf.id)
		buf = vf.buf
	} else {
		buf = make([]byte, p.pageSize)
	}
	f := &frame{id: id, buf: buf, pins: 1}
	p.frames[id] = f
	return f, nil
}

// dropLocked removes a freshly installed frame after a failed read.
func (p *Pool) dropLocked(f *frame) {
	delete(p.frames, f.id)
}

func (p *Pool) unpin(f *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic("pagefile: unpin of unpinned page")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushFront(f)
	}
}

// flushLocked writes a dirty frame back through the backend.
func (p *Pool) flushLocked(f *frame) error {
	if !f.dirty {
		return nil
	}
	stampCRC(f.buf)
	if err := p.backend.WritePage(f.id, f.buf); err != nil {
		return err
	}
	f.dirty = false
	p.stats.Writes++
	return nil
}

// FlushAll writes back every dirty frame (pinned or not) without evicting.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if err := p.flushLocked(f); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes all dirty pages and closes the backend.
func (p *Pool) Close() error {
	if err := p.FlushAll(); err != nil {
		p.backend.Close()
		return err
	}
	return p.backend.Close()
}

func stampCRC(buf []byte) {
	payload := buf[:len(buf)-crcLen]
	sum := crc32Checksum(payload)
	buf[len(buf)-4] = byte(sum)
	buf[len(buf)-3] = byte(sum >> 8)
	buf[len(buf)-2] = byte(sum >> 16)
	buf[len(buf)-1] = byte(sum >> 24)
}

func verifyCRC(buf []byte) error {
	payload := buf[:len(buf)-crcLen]
	want := uint32(buf[len(buf)-4]) | uint32(buf[len(buf)-3])<<8 |
		uint32(buf[len(buf)-2])<<16 | uint32(buf[len(buf)-1])<<24
	// All-zero pages (freshly allocated, never written) carry no checksum.
	if want == 0 && allZero(payload) {
		return nil
	}
	if crc32Checksum(payload) != want {
		return ErrPageCorrupt
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// crc32Checksum computes the Castagnoli CRC of b, reserving 0 to mean
// "never written" so freshly allocated zero pages verify cleanly.
func crc32Checksum(b []byte) uint32 {
	sum := crc32.Update(0, crcTable, b)
	if sum == 0 {
		sum = 1
	}
	return sum
}
