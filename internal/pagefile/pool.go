package pagefile

import (
	"container/list"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// Stats accumulates buffer pool activity. Reads counts logical page
// fetches; Misses the subset that had to go to the backend; SeqMisses the
// subset of misses whose page immediately follows the previously missed
// page (a sequential read, which disk cost models charge at transfer
// rather than seek cost); Writes the physical write-backs.
// Hit ratio = 1 - Misses/Reads.
type Stats struct {
	Reads     int64
	Misses    int64
	SeqMisses int64
	Writes    int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Misses += other.Misses
	s.SeqMisses += other.SeqMisses
	s.Writes += other.Writes
}

// HitRatio returns the fraction of logical reads served from the pool
// (1 - Misses/Reads), or 0 before any read has happened.
func (s Stats) HitRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return 1 - float64(s.Misses)/float64(s.Reads)
}

// Page is a pinned buffer frame. The caller must Unpin it when done; dirty
// pages must be marked via MarkDirty before Unpin or the mutation may be
// lost on eviction.
type Page struct {
	id    PageID
	frame *frame
	pool  *Pool
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Payload returns the caller-usable bytes of the page (the page minus the
// CRC trailer). The slice aliases the buffer frame and is only valid while
// the page is pinned.
func (p *Page) Payload() []byte { return p.frame.buf[:len(p.frame.buf)-crcLen] }

// MarkDirty records that the payload was mutated so the frame is written
// back before eviction.
func (p *Page) MarkDirty() { p.frame.dirty = true }

// Unpin releases the caller's pin. The Page must not be used afterwards.
func (p *Page) Unpin() { p.pool.unpin(p.frame) }

type frame struct {
	id    PageID
	buf   []byte
	pins  int
	dirty bool
	elem  *list.Element // position in the stripe's LRU list when unpinned
}

// stripe is one lock-striped partition of the pool: it owns the frames of
// the pages hashed to it, with its own LRU list, mutex, and frame budget,
// so fetches of pages in different stripes never contend.
type stripe struct {
	mu       sync.Mutex
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; holds only unpinned frames
	capacity int
	_        [32]byte // pad to a cache line so stripe locks don't false-share
}

const (
	// minStripeCapacity is the smallest frame budget a stripe may have.
	// Multi-page operations (an R-tree split holds a parent and two fresh
	// children pinned) must fit in one stripe even when every page they
	// touch hashes to the same stripe, so this stays comfortably above the
	// pool-wide minimum of 4.
	minStripeCapacity = 8
	// maxStripes bounds the stripe count; beyond ~16 ways the residual
	// contention is dwarfed by the backend I/O itself.
	maxStripes = 16
)

// stripeCount picks the largest power-of-two stripe count (≤ maxStripes)
// that still leaves every stripe at least minStripeCapacity frames. A
// 4-page pool therefore degenerates to a single stripe, which behaves
// exactly like the historical single-mutex pool.
func stripeCount(capacity int) int {
	n := 1
	for n*2 <= capacity/minStripeCapacity && n*2 <= maxStripes {
		n *= 2
	}
	return n
}

// Pool is an LRU buffer pool over a Backend. All methods are safe for
// concurrent use.
//
// The pool is lock-striped: pages hash to one of NumStripes independent
// partitions (stripe = id mod NumStripes, so a sequential scan round-robins
// across stripes), each with its own mutex, frame map, LRU list, and frame
// budget. Pin, unpin, and eviction all take only the owning stripe's lock;
// the activity counters are atomics, so Stats never blocks queries.
type Pool struct {
	backend  Backend
	pageSize int
	capacity int

	stripes []stripe
	mask    uint32 // len(stripes)-1; stripe counts are powers of two

	// Activity counters. Kept as atomics so the hot path never serializes
	// on accounting and Stats() is wait-free.
	reads     atomic.Int64
	misses    atomic.Int64
	seqMisses atomic.Int64
	writes    atomic.Int64
	// lastMiss is the previously missed page, for sequential-read
	// detection. A single pool-wide register (not per-stripe state) so a
	// serial sequential scan is detected exactly even though consecutive
	// pages hash to different stripes.
	lastMiss atomic.Uint32
}

// NewPool creates a buffer pool with room for capacity pages of the given
// page size over backend. Capacity must be at least 4 so multi-page
// operations (e.g. an R-tree split touching parent and two children) can
// hold their working set pinned.
func NewPool(backend Backend, pageSize, capacity int) (*Pool, error) {
	if capacity < 4 {
		return nil, fmt.Errorf("pagefile: pool capacity %d < 4", capacity)
	}
	if pageSize <= crcLen+8 {
		return nil, fmt.Errorf("pagefile: page size %d too small", pageSize)
	}
	n := stripeCount(capacity)
	p := &Pool{
		backend:  backend,
		pageSize: pageSize,
		capacity: capacity,
		stripes:  make([]stripe, n),
		mask:     uint32(n - 1),
	}
	base, extra := capacity/n, capacity%n
	for i := range p.stripes {
		st := &p.stripes[i]
		st.capacity = base
		if i < extra {
			st.capacity++
		}
		st.frames = make(map[PageID]*frame, st.capacity)
		st.lru = list.New()
	}
	p.lastMiss.Store(uint32(InvalidPage))
	return p, nil
}

// PageSize returns the configured page size.
func (p *Pool) PageSize() int { return p.pageSize }

// PayloadSize returns the number of caller-usable bytes per page.
func (p *Pool) PayloadSize() int { return p.pageSize - crcLen }

// NumStripes returns the number of lock stripes the pool was built with.
func (p *Pool) NumStripes() int { return len(p.stripes) }

func (p *Pool) stripeOf(id PageID) *stripe { return &p.stripes[uint32(id)&p.mask] }

// Stats returns a snapshot of the accumulated counters. The snapshot is
// wait-free — it takes no locks and never blocks (or is blocked by)
// concurrent fetches — and therefore only weakly consistent: each counter
// is read atomically, but the four reads are not a single atomic cut, so a
// fetch racing the snapshot may appear in Reads and not yet in Misses.
// Counters are monotone, so successive snapshots never go backwards.
func (p *Pool) Stats() Stats {
	return Stats{
		Reads:     p.reads.Load(),
		Misses:    p.misses.Load(),
		SeqMisses: p.seqMisses.Load(),
		Writes:    p.writes.Load(),
	}
}

// ResetStats zeroes the counters (used between experiment runs).
func (p *Pool) ResetStats() {
	p.reads.Store(0)
	p.misses.Store(0)
	p.seqMisses.Store(0)
	p.writes.Store(0)
}

// NumPages returns the number of allocated pages in the backing store.
func (p *Pool) NumPages() int { return p.backend.NumPages() }

// Alloc allocates a fresh page and returns it pinned with a zero payload.
func (p *Pool) Alloc() (*Page, error) {
	id, err := p.backend.Alloc()
	if err != nil {
		return nil, err
	}
	st := p.stripeOf(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	f, err := p.installLocked(st, id)
	if err != nil {
		return nil, err
	}
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.dirty = true
	return &Page{id: id, frame: f, pool: p}, nil
}

// Fetch pins page id, reading it from the backend on a miss. Fetches of
// pages in different stripes proceed fully in parallel; a miss blocks only
// its own stripe while the backend read is in flight.
func (p *Pool) Fetch(id PageID) (*Page, error) {
	st := p.stripeOf(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	p.reads.Add(1)
	if f, ok := st.frames[id]; ok {
		f.pins++
		if f.elem != nil {
			st.lru.Remove(f.elem)
			f.elem = nil
		}
		return &Page{id: id, frame: f, pool: p}, nil
	}
	p.misses.Add(1)
	if prev := PageID(p.lastMiss.Swap(uint32(id))); prev != InvalidPage && id == prev+1 {
		p.seqMisses.Add(1)
	}
	f, err := p.installLocked(st, id)
	if err != nil {
		return nil, err
	}
	if err := p.backend.ReadPage(id, f.buf); err != nil {
		delete(st.frames, f.id)
		return nil, err
	}
	if err := verifyCRC(f.buf); err != nil {
		delete(st.frames, f.id)
		return nil, fmt.Errorf("%w (page %d)", err, id)
	}
	return &Page{id: id, frame: f, pool: p}, nil
}

// installLocked obtains a frame for id within stripe st (evicting the
// stripe's LRU victim if the stripe is at its budget) and registers it
// pinned once. Caller holds st.mu.
func (p *Pool) installLocked(st *stripe, id PageID) (*frame, error) {
	var buf []byte
	if len(st.frames) >= st.capacity {
		victim := st.lru.Back()
		if victim == nil {
			return nil, fmt.Errorf("pagefile: buffer pool stripe exhausted (%d of %d pages, all pinned)",
				st.capacity, p.capacity)
		}
		vf := victim.Value.(*frame)
		if err := p.flushLocked(vf); err != nil {
			return nil, err
		}
		st.lru.Remove(victim)
		delete(st.frames, vf.id)
		buf = vf.buf
	} else {
		buf = make([]byte, p.pageSize)
	}
	f := &frame{id: id, buf: buf, pins: 1}
	st.frames[id] = f
	return f, nil
}

func (p *Pool) unpin(f *frame) {
	st := p.stripeOf(f.id)
	st.mu.Lock()
	defer st.mu.Unlock()
	if f.pins <= 0 {
		panic("pagefile: unpin of unpinned page")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = st.lru.PushFront(f)
	}
}

// flushLocked writes a dirty frame back through the backend. Caller holds
// the owning stripe's mutex.
func (p *Pool) flushLocked(f *frame) error {
	if !f.dirty {
		return nil
	}
	stampCRC(f.buf)
	if err := p.backend.WritePage(f.id, f.buf); err != nil {
		return err
	}
	f.dirty = false
	p.writes.Add(1)
	return nil
}

// FlushAll writes back every dirty frame (pinned or not) without evicting,
// visiting the stripes one at a time so concurrent fetches in other stripes
// keep flowing.
func (p *Pool) FlushAll() error {
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for _, f := range st.frames {
			if err := p.flushLocked(f); err != nil {
				st.mu.Unlock()
				return err
			}
		}
		st.mu.Unlock()
	}
	return nil
}

// Sync asks the backend to push previously-written pages to stable
// storage (fsync for file backends; a no-op for memory backends and for
// wrappers that don't expose one). FlushAll alone only hands dirty frames
// to the OS — Sync is what makes them survive a power failure.
func (p *Pool) Sync() error {
	if s, ok := p.backend.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close flushes all dirty pages and closes the backend.
func (p *Pool) Close() error {
	if err := p.FlushAll(); err != nil {
		p.backend.Close()
		return err
	}
	return p.backend.Close()
}

func stampCRC(buf []byte) {
	payload := buf[:len(buf)-crcLen]
	sum := crc32Checksum(payload)
	buf[len(buf)-4] = byte(sum)
	buf[len(buf)-3] = byte(sum >> 8)
	buf[len(buf)-2] = byte(sum >> 16)
	buf[len(buf)-1] = byte(sum >> 24)
}

func verifyCRC(buf []byte) error {
	payload := buf[:len(buf)-crcLen]
	want := uint32(buf[len(buf)-4]) | uint32(buf[len(buf)-3])<<8 |
		uint32(buf[len(buf)-2])<<16 | uint32(buf[len(buf)-1])<<24
	// All-zero pages (freshly allocated, never written) carry no checksum.
	if want == 0 && allZero(payload) {
		return nil
	}
	if crc32Checksum(payload) != want {
		return ErrPageCorrupt
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// crc32Checksum computes the Castagnoli CRC of b, reserving 0 to mean
// "never written" so freshly allocated zero pages verify cleanly.
func crc32Checksum(b []byte) uint32 {
	sum := crc32.Update(0, crcTable, b)
	if sum == 0 {
		sum = 1
	}
	return sum
}
