// Package pagefile provides the paged storage substrate the sequence heap
// file and the R-tree are built on: fixed-size CRC-checked pages addressed
// by PageID, served through an LRU buffer pool with pin counts, backed
// either by a real file on disk or by memory (for tests and CPU-bound
// experiments).
//
// The buffer pool counts logical reads and physical misses; the experiment
// harness converts miss counts into modeled disk time so that elapsed-time
// comparisons are independent of the host machine (see DESIGN.md §3).
package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// PageID addresses a page within a store. IDs are dense, starting at 0.
type PageID uint32

// InvalidPage is the nil page reference.
const InvalidPage = PageID(0xFFFFFFFF)

// DefaultPageSize matches the paper's experimental setup (§5.1: R-tree page
// size 1 KB).
const DefaultPageSize = 1024

// crcLen is the per-page trailer holding a CRC-32 (Castagnoli) of the
// payload.
const crcLen = 4

var (
	// ErrPageCorrupt indicates a CRC mismatch on a page read from disk.
	ErrPageCorrupt = errors.New("pagefile: page checksum mismatch")
	// ErrOutOfRange indicates an access to a page that was never allocated.
	ErrOutOfRange = errors.New("pagefile: page id out of range")
	// ErrClosed indicates use after Close.
	ErrClosed = errors.New("pagefile: store is closed")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Backend is the raw page transport underneath the buffer pool.
type Backend interface {
	// ReadPage fills buf (exactly the page size) with page id's bytes.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id's bytes.
	WritePage(id PageID, buf []byte) error
	// Alloc extends the store by one page and returns its id.
	Alloc() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases resources.
	Close() error
}

// MemBackend keeps pages in memory. It still participates fully in buffer
// pool accounting, so I/O cost models remain meaningful.
type MemBackend struct {
	pageSize int
	mu       sync.Mutex
	pages    [][]byte
}

// NewMemBackend returns an empty in-memory backend with the given page size.
func NewMemBackend(pageSize int) *MemBackend {
	return &MemBackend{pageSize: pageSize}
}

// ReadPage implements Backend.
func (m *MemBackend) ReadPage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Backend.
func (m *MemBackend) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, len(m.pages))
	}
	copy(m.pages[id], buf)
	return nil
}

// Alloc implements Backend.
func (m *MemBackend) Alloc() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements Backend.
func (m *MemBackend) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }

// fileHeader occupies the first fileHeaderLen bytes of a page file.
const (
	fileMagic     = 0x54575350 // "TWSP"
	fileVersion   = 1
	fileHeaderLen = 16
)

// FileBackend stores pages in a single OS file, after a 16-byte header
// recording magic, version, and page size.
type FileBackend struct {
	f        *os.File
	pageSize int
	mu       sync.Mutex
	n        int
}

// CreateFile creates (truncating) a page file at path.
func CreateFile(path string, pageSize int) (*FileBackend, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("pagefile: page size %d too small", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, fileHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(pageSize))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &FileBackend{f: f, pageSize: pageSize}, nil
}

// OpenFile opens an existing page file, validating its header.
func OpenFile(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, fileHeaderLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, fileHeaderLen), hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s is not a page file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		f.Close()
		return nil, fmt.Errorf("pagefile: unsupported version %d", v)
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[8:]))
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	n := int((st.Size() - fileHeaderLen) / int64(pageSize))
	return &FileBackend{f: f, pageSize: pageSize, n: n}, nil
}

// PageSize returns the page size recorded in the file header.
func (b *FileBackend) PageSize() int { return b.pageSize }

func (b *FileBackend) offset(id PageID) int64 {
	return fileHeaderLen + int64(id)*int64(b.pageSize)
}

// ReadPage implements Backend.
func (b *FileBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	if int(id) >= n {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, n)
	}
	_, err := b.f.ReadAt(buf[:b.pageSize], b.offset(id))
	return err
}

// WritePage implements Backend.
func (b *FileBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	if int(id) >= n {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, id, n)
	}
	_, err := b.f.WriteAt(buf[:b.pageSize], b.offset(id))
	return err
}

// Alloc implements Backend.
func (b *FileBackend) Alloc() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := PageID(b.n)
	zero := make([]byte, b.pageSize)
	if _, err := b.f.WriteAt(zero, b.offset(id)); err != nil {
		return InvalidPage, err
	}
	b.n++
	return id, nil
}

// NumPages implements Backend.
func (b *FileBackend) NumPages() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Sync flushes the underlying file to stable storage.
func (b *FileBackend) Sync() error { return b.f.Sync() }

// Close implements Backend.
func (b *FileBackend) Close() error { return b.f.Close() }
