package pagefile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestMemBackendBasics(t *testing.T) {
	b := NewMemBackend(128)
	if n := b.NumPages(); n != 0 {
		t.Fatalf("fresh backend has %d pages", n)
	}
	id, err := b.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first page id = %d", id)
	}
	buf := make([]byte, 128)
	copy(buf, "hello")
	if err := b.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := b.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Errorf("read back %q", got[:5])
	}
}

func TestMemBackendOutOfRange(t *testing.T) {
	b := NewMemBackend(64)
	buf := make([]byte, 64)
	if err := b.ReadPage(3, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadPage err = %v", err)
	}
	if err := b.WritePage(3, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("WritePage err = %v", err)
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.twp")
	b, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := b.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		buf := make([]byte, 256)
		buf[0] = byte(i + 1)
		if err := b.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if b2.PageSize() != 256 {
		t.Errorf("page size = %d", b2.PageSize())
	}
	if b2.NumPages() != 5 {
		t.Errorf("page count = %d", b2.NumPages())
	}
	buf := make([]byte, 256)
	for i, id := range ids {
		if err := b2.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Errorf("page %d first byte = %d", id, buf[0])
		}
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a page file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("OpenFile accepted garbage")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("OpenFile accepted missing file")
	}
}

func TestCreateFileRejectsTinyPages(t *testing.T) {
	if _, err := CreateFile(filepath.Join(t.TempDir(), "x"), 8); err == nil {
		t.Error("CreateFile accepted 8-byte pages")
	}
}
