package pagefile

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func newMemPool(t *testing.T, pageSize, capacity int) *Pool {
	t.Helper()
	p, err := NewPool(NewMemBackend(pageSize), pageSize, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolAllocFetch(t *testing.T) {
	pool := newMemPool(t, 128, 4)
	pg, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Payload(), "abc")
	pg.MarkDirty()
	id := pg.ID()
	pg.Unpin()

	got, err := pool.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload()[:3]) != "abc" {
		t.Errorf("payload = %q", got.Payload()[:3])
	}
	got.Unpin()
}

func TestPoolPayloadSize(t *testing.T) {
	pool := newMemPool(t, 128, 4)
	if got := pool.PayloadSize(); got != 124 {
		t.Errorf("PayloadSize = %d, want 124", got)
	}
	if got := pool.PageSize(); got != 128 {
		t.Errorf("PageSize = %d", got)
	}
}

func TestPoolEvictionWritesBack(t *testing.T) {
	pool := newMemPool(t, 128, 4)
	// Fill more pages than the pool holds, each with distinct content.
	const n = 16
	for i := 0; i < n; i++ {
		pg, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Payload()[0] = byte(i + 1)
		pg.MarkDirty()
		pg.Unpin()
	}
	// Everything must read back correctly even though most were evicted.
	for i := 0; i < n; i++ {
		pg, err := pool.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if pg.Payload()[0] != byte(i+1) {
			t.Errorf("page %d payload = %d", i, pg.Payload()[0])
		}
		pg.Unpin()
	}
	st := pool.Stats()
	if st.Misses == 0 {
		t.Error("expected misses after eviction")
	}
	if st.Writes == 0 {
		t.Error("expected write-backs of dirty pages")
	}
}

func TestPoolHitsDoNotMiss(t *testing.T) {
	pool := newMemPool(t, 128, 4)
	pg, _ := pool.Alloc()
	id := pg.ID()
	pg.Unpin()
	pool.ResetStats()
	for i := 0; i < 10; i++ {
		p, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin()
	}
	st := pool.Stats()
	if st.Reads != 10 {
		t.Errorf("Reads = %d, want 10", st.Reads)
	}
	if st.Misses != 0 {
		t.Errorf("Misses = %d, want 0", st.Misses)
	}
}

func TestPoolExhaustionWhenAllPinned(t *testing.T) {
	pool := newMemPool(t, 128, 4)
	var pages []*Page
	for i := 0; i < 4; i++ {
		pg, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, pg)
	}
	if _, err := pool.Alloc(); err == nil {
		t.Error("Alloc succeeded with all frames pinned")
	}
	for _, pg := range pages {
		pg.Unpin()
	}
	// After unpinning, allocation succeeds again.
	pg, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin()
}

func TestPoolDoubleUnpinPanics(t *testing.T) {
	pool := newMemPool(t, 128, 4)
	pg, _ := pool.Alloc()
	pg.Unpin()
	defer func() {
		if recover() == nil {
			t.Error("double unpin did not panic")
		}
	}()
	pg.Unpin()
}

func TestPoolCRCDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.twp")
	backend, err := CreateFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(backend, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := pool.Alloc()
	copy(pg.Payload(), "important data")
	pg.MarkDirty()
	id := pg.ID()
	pg.Unpin()
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one payload byte directly in the file.
	backend2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 128)
	if err := backend2.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0xFF
	if err := backend2.WritePage(id, raw); err != nil {
		t.Fatal(err)
	}
	pool2, err := NewPool(backend2, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if _, err := pool2.Fetch(id); !errors.Is(err, ErrPageCorrupt) {
		t.Errorf("Fetch of corrupted page: err = %v, want ErrPageCorrupt", err)
	}
}

func TestPoolFreshZeroPageVerifies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "z.twp")
	backend, err := CreateFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, err := backend.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(backend, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pg, err := pool.Fetch(id)
	if err != nil {
		t.Fatalf("fresh zero page failed CRC: %v", err)
	}
	pg.Unpin()
}

func TestPoolRejectsBadConfig(t *testing.T) {
	if _, err := NewPool(NewMemBackend(128), 128, 2); err == nil {
		t.Error("capacity 2 accepted")
	}
	if _, err := NewPool(NewMemBackend(8), 8, 8); err == nil {
		t.Error("tiny page size accepted")
	}
}

func TestPoolConcurrentReaders(t *testing.T) {
	pool := newMemPool(t, 128, 8)
	const pages = 32
	for i := 0; i < pages; i++ {
		pg, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Payload()[0] = byte(i)
		pg.MarkDirty()
		pg.Unpin()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := PageID((i*7 + g) % pages)
				pg, err := pool.Fetch(id)
				if err != nil {
					errCh <- err
					return
				}
				if pg.Payload()[0] != byte(id) {
					errCh <- fmt.Errorf("page %d payload %d", id, pg.Payload()[0])
					pg.Unpin()
					return
				}
				pg.Unpin()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Misses: 2, Writes: 3}
	a.Add(Stats{Reads: 10, Misses: 20, Writes: 30})
	if a != (Stats{Reads: 11, Misses: 22, Writes: 33}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestPoolPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.twp")
	backend, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(backend, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pg, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.Payload()[10] = byte(100 + i)
		pg.MarkDirty()
		pg.Unpin()
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	backend2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := NewPool(backend2, 256, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	for i := 0; i < 10; i++ {
		pg, err := pool2.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if pg.Payload()[10] != byte(100+i) {
			t.Errorf("page %d payload = %d", i, pg.Payload()[10])
		}
		pg.Unpin()
	}
}
