package pagefile

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultBackend returns once armed.
var ErrInjected = errors.New("pagefile: injected fault")

// FaultBackend wraps a Backend and fails I/O after a configurable number of
// operations — used by tests to verify that storage errors propagate
// cleanly through the buffer pool, heap file, and index instead of
// corrupting state or panicking.
type FaultBackend struct {
	inner Backend

	mu        sync.Mutex
	remaining int  // operations until failure; <0 = never fail
	failed    bool // once true, every subsequent op fails
}

// NewFaultBackend wraps inner, failing every operation after opsUntilFail
// successful ones (opsUntilFail < 0 disables injection).
func NewFaultBackend(inner Backend, opsUntilFail int) *FaultBackend {
	return &FaultBackend{inner: inner, remaining: opsUntilFail}
}

// Arm re-arms the backend to fail after n more operations.
func (f *FaultBackend) Arm(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.remaining = n
	f.failed = false
}

// Disarm stops failure injection.
func (f *FaultBackend) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.remaining = -1
	f.failed = false
}

// tick consumes one operation credit and reports whether the op must fail.
func (f *FaultBackend) tick() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failed {
		return true
	}
	if f.remaining < 0 {
		return false
	}
	if f.remaining == 0 {
		f.failed = true
		return true
	}
	f.remaining--
	return false
}

// ReadPage implements Backend.
func (f *FaultBackend) ReadPage(id PageID, buf []byte) error {
	if f.tick() {
		return ErrInjected
	}
	return f.inner.ReadPage(id, buf)
}

// WritePage implements Backend.
func (f *FaultBackend) WritePage(id PageID, buf []byte) error {
	if f.tick() {
		return ErrInjected
	}
	return f.inner.WritePage(id, buf)
}

// Alloc implements Backend.
func (f *FaultBackend) Alloc() (PageID, error) {
	if f.tick() {
		return InvalidPage, ErrInjected
	}
	return f.inner.Alloc()
}

// NumPages implements Backend.
func (f *FaultBackend) NumPages() int { return f.inner.NumPages() }

// Close implements Backend.
func (f *FaultBackend) Close() error { return f.inner.Close() }
