package pagefile

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStripeCountScalesWithCapacity: the stripe count is the largest power
// of two that keeps every stripe at minStripeCapacity frames or more, capped
// at maxStripes — and tiny pools degenerate to a single stripe so the
// capacity-N exhaustion guarantee ("N pins always fit") is preserved.
func TestStripeCountScalesWithCapacity(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{4, 1}, {8, 1}, {15, 1}, {16, 2}, {31, 2}, {32, 4},
		{64, 8}, {127, 8}, {128, 16}, {1024, 16},
	}
	for _, c := range cases {
		p := newMemPool(t, 128, c.capacity)
		if got := p.NumStripes(); got != c.want {
			t.Errorf("capacity %d: %d stripes, want %d", c.capacity, got, c.want)
		}
		total := 0
		for i := range p.stripes {
			if p.stripes[i].capacity < minStripeCapacity && p.NumStripes() > 1 {
				t.Errorf("capacity %d: stripe %d holds only %d frames", c.capacity, i, p.stripes[i].capacity)
			}
			total += p.stripes[i].capacity
		}
		if total != c.capacity {
			t.Errorf("capacity %d: stripes sum to %d frames", c.capacity, total)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPoolStripedStorm hammers a multi-stripe pool from many goroutines —
// reads, writes, flushes, and stats snapshots racing evictions of a working
// set three times the pool capacity — and then verifies no page lost its
// stamp. Run under -race this is the striping correctness gate.
func TestPoolStripedStorm(t *testing.T) {
	const (
		pageSize   = 128
		capacity   = 32 // 4 stripes of 8
		pages      = 96 // 3x capacity: constant eviction pressure
		goroutines = 8
		iters      = 400
	)
	pool := newMemPool(t, pageSize, capacity)
	if pool.NumStripes() < 2 {
		t.Fatalf("storm needs a striped pool, got %d stripes", pool.NumStripes())
	}
	ids := make([]PageID, pages)
	for i := range ids {
		pg, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(pg.Payload(), uint64(pg.ID()))
		pg.MarkDirty()
		ids[i] = pg.ID()
		pg.Unpin()
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				id := ids[rng.Intn(pages)]
				pg, err := pool.Fetch(id)
				if err != nil {
					errs <- err
					return
				}
				got := PageID(binary.LittleEndian.Uint64(pg.Payload()))
				if got != id {
					pg.Unpin()
					errs <- fmt.Errorf("page %d stamped %d", id, got)
					return
				}
				if rng.Intn(3) == 0 {
					// Rewrite the stamp so dirty write-back races evictions.
					binary.LittleEndian.PutUint64(pg.Payload(), uint64(id))
					pg.MarkDirty()
				}
				pg.Unpin()
				switch rng.Intn(16) {
				case 0:
					_ = pool.Stats()
				case 1:
					if err := pool.FlushAll(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, id := range ids {
		pg, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := PageID(binary.LittleEndian.Uint64(pg.Payload())); got != id {
			t.Fatalf("page %d stamped %d after storm", id, got)
		}
		pg.Unpin()
	}
	st := pool.Stats()
	if st.Reads == 0 || st.Misses == 0 {
		t.Fatalf("storm recorded no activity: %+v", st)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStripedEvictionRacesPinnedPages: while one goroutine keeps frames
// pinned, others churn the same stripe set past capacity. Evictions must
// skip pinned frames; the pinned pages stay valid throughout.
func TestStripedEvictionRacesPinnedPages(t *testing.T) {
	const capacity = 32
	pool := newMemPool(t, 128, capacity)
	var ids []PageID
	for i := 0; i < capacity*3; i++ {
		pg, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(pg.Payload(), uint64(pg.ID()))
		pg.MarkDirty()
		ids = append(ids, pg.ID())
		pg.Unpin()
	}
	// Pin one page per stripe and hold across the churn.
	pinned := make([]*Page, 0, pool.NumStripes())
	seen := make(map[uint32]bool)
	for _, id := range ids {
		s := uint32(id) & pool.mask
		if seen[s] {
			continue
		}
		seen[s] = true
		pg, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, pg)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 300; i++ {
				pg, err := pool.Fetch(ids[rng.Intn(len(ids))])
				if err != nil {
					t.Error(err)
					return
				}
				pg.Unpin()
			}
		}(g)
	}
	wg.Wait()

	for _, pg := range pinned {
		if got := PageID(binary.LittleEndian.Uint64(pg.Payload())); got != pg.ID() {
			t.Fatalf("pinned page %d corrupted to %d while evictions churned", pg.ID(), got)
		}
		pg.Unpin()
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsTakesNoStripeLocks proves the Stats snapshot is wait-free with
// respect to the stripes: with every stripe mutex held (as a stalled
// eviction or backend read would), Stats still returns. If Stats touched
// any stripe lock this test would deadlock.
func TestStatsTakesNoStripeLocks(t *testing.T) {
	pool := newMemPool(t, 128, 32)
	for i := range pool.stripes {
		pool.stripes[i].mu.Lock()
	}
	st := pool.Stats()
	for i := range pool.stripes {
		pool.stripes[i].mu.Unlock()
	}
	if st.Reads != 0 {
		t.Fatalf("fresh pool reports %d reads", st.Reads)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkStatsUnderFetchLoad measures a Stats snapshot while fetchers
// churn every stripe. Because the counters are plain atomics the snapshot
// cost must stay flat (tens of ns) no matter how contended the stripes are;
// a lock-protected implementation would show milliseconds here.
func BenchmarkStatsUnderFetchLoad(b *testing.B) {
	pool, err := NewPool(NewMemBackend(128), 128, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	var ids []PageID
	for i := 0; i < 256; i++ {
		pg, err := pool.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, pg.ID())
		pg.Unpin()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pg, err := pool.Fetch(ids[rng.Intn(len(ids))])
				if err != nil {
					b.Error(err)
					return
				}
				pg.Unpin()
			}
		}(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pool.Stats()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
