package categorize

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestQuantileValidation(t *testing.T) {
	if _, err := NewQuantile(nil, 5); err == nil {
		t.Error("no data accepted")
	}
	if _, err := NewQuantile([]seq.Sequence{{1, 2}}, 0); err == nil {
		t.Error("0 categories accepted")
	}
}

func TestQuantileCoversValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := []seq.Sequence{make(seq.Sequence, 500)}
	for i := range data[0] {
		// Heavily skewed: mostly small values with a long tail.
		data[0][i] = rng.ExpFloat64() * 10
	}
	q, err := NewQuantile(data, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[0] {
		sym := q.Symbol(v)
		lo, hi := q.Interval(sym)
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("value %g categorized to %d = [%g, %g]", v, sym, lo, hi)
		}
		if d := q.MinDistToValue(sym, v); d != 0 {
			t.Fatalf("MinDistToValue inside = %g", d)
		}
	}
}

func TestQuantileBalancedOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := []seq.Sequence{make(seq.Sequence, 10000)}
	for i := range data[0] {
		data[0][i] = rng.ExpFloat64() // skewed
	}
	const n = 10
	q, err := NewQuantile(data, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, q.NumCategories())
	for _, v := range data[0] {
		counts[q.Symbol(v)]++
	}
	// Each category should hold roughly 1/n of the data; allow 2x slack.
	for sym, c := range counts {
		if c > 2*len(data[0])/n {
			t.Errorf("category %d holds %d of %d values", sym, c, len(data[0]))
		}
	}
	// Contrast: equal-width on the same skewed data crams most values
	// into the first categories.
	ew, err := FromData(data, n)
	if err != nil {
		t.Fatal(err)
	}
	first := 0
	for _, v := range data[0] {
		if ew.Symbol(v) == 0 {
			first++
		}
	}
	if first < 3*len(data[0])/n {
		t.Skip("data not skewed enough to demonstrate the contrast")
	}
}

func TestQuantileDegenerateConstantData(t *testing.T) {
	q, err := NewQuantile([]seq.Sequence{{5, 5, 5, 5}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sym := q.Symbol(5)
	lo, hi := q.Interval(sym)
	if 5 < lo || 5 > hi {
		t.Errorf("constant value outside its interval [%g, %g]", lo, hi)
	}
}

func TestQuantileDeduplicatesBoundaries(t *testing.T) {
	// Many repeated values would produce duplicate quantile boundaries.
	data := []seq.Sequence{{1, 1, 1, 1, 1, 1, 1, 1, 2, 3}}
	q, err := NewQuantile(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumCategories() > 8 {
		t.Errorf("NumCategories = %d", q.NumCategories())
	}
	// Every categorized value must still be covered.
	for _, v := range data[0] {
		sym := q.Symbol(v)
		lo, hi := q.Interval(sym)
		if v < lo || v > hi {
			t.Fatalf("value %g outside its interval", v)
		}
	}
}

func TestQuantileEncode(t *testing.T) {
	q, err := NewQuantile([]seq.Sequence{{1, 2, 3, 4, 5, 6, 7, 8}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	syms := q.Encode(seq.Sequence{1, 8})
	if syms[0] == syms[1] {
		t.Errorf("min and max share a category: %v", syms)
	}
}
