package categorize

import "repro/internal/seq"

// Scheme is the contract the ST-Filter traversal needs from a
// categorization: a total value→category mapping whose Interval always
// covers every value the category was assigned — the property that keeps
// the branch-and-bound DP a lower bound (no false dismissal).
type Scheme interface {
	// NumCategories returns the category count.
	NumCategories() int
	// Symbol maps a value to its category.
	Symbol(v float64) Symbol
	// Interval returns the value range covered by a category.
	Interval(sym Symbol) (lo, hi float64)
	// Encode converts a numeric sequence into its category sequence.
	Encode(s seq.Sequence) []Symbol
	// MinDistToValue lower-bounds |v - x| over x in the category.
	MinDistToValue(sym Symbol, v float64) float64
}

var (
	_ Scheme = (*Categorizer)(nil)
	_ Scheme = (*Quantile)(nil)
)
