package categorize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestNewEqualWidthValidation(t *testing.T) {
	if _, err := NewEqualWidth(0, 10, 0); err == nil {
		t.Error("0 categories accepted")
	}
	if _, err := NewEqualWidth(5, 5, 10); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewEqualWidth(7, 3, 10); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSymbolMapping(t *testing.T) {
	c, err := NewEqualWidth(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCategories() != 10 {
		t.Errorf("NumCategories = %d", c.NumCategories())
	}
	cases := []struct {
		v    float64
		want Symbol
	}{
		{0, 0}, {5, 0}, {9.99, 0}, {10, 1}, {55, 5}, {99.9, 9}, {100, 9},
		{-50, 0}, // clamps low
		{200, 9}, // clamps high
	}
	for _, tc := range cases {
		if got := c.Symbol(tc.v); got != tc.want {
			t.Errorf("Symbol(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestIntervalCoversValue(t *testing.T) {
	c, _ := NewEqualWidth(-5, 17, 7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := -5 + 22*rng.Float64()
		sym := c.Symbol(v)
		lo, hi := c.Interval(sym)
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("value %g maps to %d = [%g, %g]", v, sym, lo, hi)
		}
		if got := c.MinDistToValue(sym, v); got != 0 {
			t.Fatalf("MinDistToValue inside interval = %g", got)
		}
	}
}

func TestIntervalsPartitionRange(t *testing.T) {
	c, _ := NewEqualWidth(0, 10, 4)
	prevHi := 0.0
	for s := 0; s < 4; s++ {
		lo, hi := c.Interval(Symbol(s))
		if s == 0 && lo != 0 {
			t.Errorf("first interval starts at %g", lo)
		}
		if s > 0 && lo != prevHi {
			t.Errorf("gap between intervals at symbol %d: %g vs %g", s, prevHi, lo)
		}
		prevHi = hi
	}
	if prevHi != 10 {
		t.Errorf("last interval ends at %g", prevHi)
	}
}

func TestEncode(t *testing.T) {
	c, _ := NewEqualWidth(0, 10, 10)
	s := seq.Sequence{0.5, 9.5, 5}
	got := c.Encode(s)
	want := []Symbol{0, 9, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Encode[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFromData(t *testing.T) {
	data := []seq.Sequence{{1, 5}, {0, 10}, {}}
	c, err := FromData(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Symbol(0) != 0 {
		t.Errorf("min maps to %d", c.Symbol(0))
	}
	if c.Symbol(10) != 4 {
		t.Errorf("max maps to %d", c.Symbol(10))
	}
}

func TestFromDataDegenerate(t *testing.T) {
	if _, err := FromData(nil, 5); err == nil {
		t.Error("FromData with no data accepted")
	}
	if _, err := FromData([]seq.Sequence{{}}, 5); err == nil {
		t.Error("FromData with only empty sequences accepted")
	}
	// Constant data must still work.
	c, err := FromData([]seq.Sequence{{3, 3, 3}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sym := c.Symbol(3)
	lo, hi := c.Interval(sym)
	if 3 < lo || 3 > hi {
		t.Errorf("constant value outside its interval [%g, %g]", lo, hi)
	}
}

func TestMinDistToValue(t *testing.T) {
	c, _ := NewEqualWidth(0, 10, 10) // width 1
	// Interval of symbol 5 is [5, 6].
	if got := c.MinDistToValue(5, 4); got != 1 {
		t.Errorf("below: %g", got)
	}
	if got := c.MinDistToValue(5, 8); got != 2 {
		t.Errorf("above: %g", got)
	}
}

// Property: the categorize-then-interval distance never exceeds the true
// distance to any value in the category (the lower-bound property the
// ST-Filter traversal depends on).
func TestMinDistLowerBoundsQuick(t *testing.T) {
	c, _ := NewEqualWidth(-100, 100, 37)
	f := func(x, q float64) bool {
		if x != x || q != q { // NaN
			return true
		}
		if x < -100 {
			x = -100
		}
		if x > 100 {
			x = 100
		}
		if q < -1000 {
			q = -1000
		}
		if q > 1000 {
			q = 1000
		}
		sym := c.Symbol(x)
		d := c.MinDistToValue(sym, q)
		true1 := q - x
		if true1 < 0 {
			true1 = -true1
		}
		return d <= true1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
