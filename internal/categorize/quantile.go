package categorize

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// Quantile is an equal-frequency (quantile) categorizer: category
// boundaries are chosen so each category covers roughly the same number of
// observed values. Park et al.'s ST-Filter uses equal-length intervals (the
// paper's experiments too); equal-frequency intervals adapt to skewed value
// distributions — narrow categories where data is dense — and are provided
// as an ablation. It satisfies the same contract as Categorizer: Symbol
// maps a value to its category and Interval returns a covering range, so
// the branch-and-bound traversal stays free of false dismissal.
type Quantile struct {
	bounds []float64 // ascending interior boundaries; len = categories-1
	min    float64
	max    float64
}

// NewQuantile builds an equal-frequency categorizer with n categories from
// the values observed across the given sequences.
func NewQuantile(data []seq.Sequence, n int) (*Quantile, error) {
	if n < 1 {
		return nil, fmt.Errorf("categorize: need at least 1 category, got %d", n)
	}
	var values []float64
	for _, s := range data {
		values = append(values, s...)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("categorize: no data")
	}
	sort.Float64s(values)
	q := &Quantile{min: values[0], max: values[len(values)-1]}
	if q.min == q.max {
		q.max = q.min + 1e-9
	}
	// Interior boundaries at the k/n quantiles, deduplicated (skewed data
	// can repeat values; duplicate boundaries would create empty
	// categories, which is harmless but wasteful).
	for k := 1; k < n; k++ {
		idx := k * len(values) / n
		if idx >= len(values) {
			idx = len(values) - 1
		}
		b := values[idx]
		if len(q.bounds) == 0 || b > q.bounds[len(q.bounds)-1] {
			q.bounds = append(q.bounds, b)
		}
	}
	return q, nil
}

// NumCategories returns the number of (non-empty) categories.
func (q *Quantile) NumCategories() int { return len(q.bounds) + 1 }

// Symbol maps a value to its category: the index of the first boundary at
// or above it (values equal to a boundary sit at the top of the category
// below, which Interval covers).
func (q *Quantile) Symbol(v float64) Symbol {
	return Symbol(sort.SearchFloat64s(q.bounds, v))
}

// Interval returns the value range covered by category sym. The first
// category extends to the observed minimum, the last to the maximum.
func (q *Quantile) Interval(sym Symbol) (lo, hi float64) {
	if int(sym) == 0 {
		lo = q.min
	} else {
		lo = q.bounds[sym-1]
	}
	if int(sym) >= len(q.bounds) {
		hi = q.max
	} else {
		hi = q.bounds[sym]
	}
	return lo, hi
}

// Encode converts a numeric sequence into its category sequence.
func (q *Quantile) Encode(s seq.Sequence) []Symbol {
	out := make([]Symbol, len(s))
	for i, v := range s {
		out[i] = q.Symbol(v)
	}
	return out
}

// MinDistToValue returns a lower bound on |v - x| over x in category sym.
func (q *Quantile) MinDistToValue(sym Symbol, v float64) float64 {
	lo, hi := q.Interval(sym)
	return seq.DistToRange(v, lo, hi)
}
