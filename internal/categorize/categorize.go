// Package categorize converts numeric sequences into symbol (category)
// sequences, the preprocessing step of the ST-Filter baseline (Park et al.,
// summarized in the paper's §3.4). Each category is a value interval; the
// paper's experiments use the equal-length-interval method with 100
// categories (§5.1).
package categorize

import (
	"fmt"
	"math"

	"repro/internal/seq"
)

// Symbol is a category identifier in [0, NumCategories).
type Symbol int32

// Categorizer maps values to categories and back to value intervals.
type Categorizer struct {
	min, max float64
	width    float64
	n        int
}

// NewEqualWidth builds an equal-length-interval categorizer with n
// categories over the closed value range [min, max].
func NewEqualWidth(min, max float64, n int) (*Categorizer, error) {
	if n < 1 {
		return nil, fmt.Errorf("categorize: need at least 1 category, got %d", n)
	}
	if !(min < max) {
		return nil, fmt.Errorf("categorize: invalid range [%g, %g]", min, max)
	}
	return &Categorizer{min: min, max: max, width: (max - min) / float64(n), n: n}, nil
}

// FromData builds an equal-width categorizer spanning the value range
// observed across the given sequences.
func FromData(data []seq.Sequence, n int) (*Categorizer, error) {
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range data {
		if s.Empty() {
			continue
		}
		lo, hi := s.MinMax()
		if lo < min {
			min = lo
		}
		if hi > max {
			max = hi
		}
	}
	if math.IsInf(min, 1) {
		return nil, fmt.Errorf("categorize: no data")
	}
	if min == max {
		// Degenerate constant data: widen to a tiny interval.
		max = min + 1e-9
	}
	return NewEqualWidth(min, max, n)
}

// NumCategories returns the category count.
func (c *Categorizer) NumCategories() int { return c.n }

// Symbol maps a value to its category. Values outside the construction
// range clamp to the boundary categories.
func (c *Categorizer) Symbol(v float64) Symbol {
	if v <= c.min {
		return 0
	}
	if v >= c.max {
		return Symbol(c.n - 1)
	}
	k := int((v - c.min) / c.width)
	if k >= c.n {
		k = c.n - 1
	}
	return Symbol(k)
}

// Interval returns the value interval [lo, hi] covered by category sym.
func (c *Categorizer) Interval(sym Symbol) (lo, hi float64) {
	lo = c.min + float64(sym)*c.width
	hi = lo + c.width
	if int(sym) == c.n-1 {
		hi = c.max
	}
	return lo, hi
}

// Encode converts a numeric sequence into its category sequence.
func (c *Categorizer) Encode(s seq.Sequence) []Symbol {
	out := make([]Symbol, len(s))
	for i, v := range s {
		out[i] = c.Symbol(v)
	}
	return out
}

// MinDistToValue returns a lower bound on |v - x| over all x inside
// category sym's interval: zero when v falls inside.
func (c *Categorizer) MinDistToValue(sym Symbol, v float64) float64 {
	lo, hi := c.Interval(sym)
	return seq.DistToRange(v, lo, hi)
}
