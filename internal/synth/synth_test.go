package synth

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandomWalkShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomWalk(rng, 1000)
	if len(s) != 1000 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] < 1 || s[0] > 10 {
		t.Errorf("s1 = %g outside [1, 10]", s[0])
	}
	for i := 1; i < len(s); i++ {
		step := s[i] - s[i-1]
		if step < -0.1-1e-12 || step > 0.1+1e-12 {
			t.Fatalf("step %d = %g outside [-0.1, 0.1]", i, step)
		}
	}
}

func TestRandomWalkDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if s := RandomWalk(rng, 0); s != nil {
		t.Errorf("n=0 returned %v", s)
	}
	if s := RandomWalk(rng, 1); len(s) != 1 {
		t.Errorf("n=1 len = %d", len(s))
	}
}

func TestRandomWalkSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	set := RandomWalkSet(rng, 25, 40)
	if len(set) != 25 {
		t.Fatalf("count = %d", len(set))
	}
	for _, s := range set {
		if len(s) != 40 {
			t.Fatalf("length %d != 40", len(s))
		}
	}
}

func TestRandomWalkSetVaryLen(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	set := RandomWalkSetVaryLen(rng, 200, 10, 30)
	sawMin, sawNearMax := false, false
	for _, s := range set {
		if len(s) < 10 || len(s) > 30 {
			t.Fatalf("length %d outside [10, 30]", len(s))
		}
		if len(s) <= 12 {
			sawMin = true
		}
		if len(s) >= 28 {
			sawNearMax = true
		}
	}
	if !sawMin || !sawNearMax {
		t.Error("length distribution suspiciously narrow")
	}
	// Equal bounds.
	for _, s := range RandomWalkSetVaryLen(rng, 5, 7, 7) {
		if len(s) != 7 {
			t.Fatalf("fixed-length variant gave %d", len(s))
		}
	}
}

func TestStockSetMatchesPaperShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set := StockSet(rng, DefaultStockOptions)
	if len(set) != 545 {
		t.Fatalf("count = %d, want 545 (paper's S&P set)", len(set))
	}
	totalLen := 0
	for _, s := range set {
		totalLen += len(s)
		for _, v := range s {
			if v < 0.5 {
				t.Fatalf("negative-ish price %g", v)
			}
		}
	}
	avg := float64(totalLen) / float64(len(set))
	if math.Abs(avg-231) > 20 {
		t.Errorf("average length %g, paper reports 231", avg)
	}
	// The raw data volume should be in the ~850 KB ballpark of the paper.
	bytes := totalLen * 8
	if bytes < 500_000 || bytes > 1_500_000 {
		t.Errorf("data volume %d bytes, expected near 1 MB", bytes)
	}
}

func TestStockSetZeroOptionsUsesDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	set := StockSet(rng, StockOptions{})
	if len(set) != 545 {
		t.Errorf("zero options gave %d sequences", len(set))
	}
}

func TestQueryPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := RandomWalkSet(rng, 10, 100)
	for trial := 0; trial < 20; trial++ {
		q := Query(rng, data)
		// The query has the length of some data sequence.
		if len(q) != 100 {
			t.Fatalf("query length %d", len(q))
		}
		// Find the base sequence: the one within std/2 everywhere.
		matched := false
		for _, s := range data {
			if len(s) != len(q) {
				continue
			}
			std := s.Std()
			ok := true
			for i := range s {
				if math.Abs(q[i]-s[i]) > std/2+1e-12 {
					ok = false
					break
				}
			}
			if ok {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatal("query not within std/2 of any data sequence")
		}
	}
}

func TestQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := RandomWalkSet(rng, 5, 20)
	qs := Queries(rng, data, 100)
	if len(qs) != 100 {
		t.Fatalf("count = %d", len(qs))
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a := RandomWalkSet(rand.New(rand.NewSource(99)), 5, 50)
	b := RandomWalkSet(rand.New(rand.NewSource(99)), 5, 50)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different data")
		}
	}
}
