// Package synth generates the workloads of the paper's §5.1: random-walk
// synthetic sequences, a simulated S&P-500-style stock data set (the
// original 545-sequence snapshot is no longer available; see DESIGN.md §3
// for the substitution argument), and the paper's query generator, which
// perturbs a randomly chosen data sequence element-wise by a value drawn
// from [-std/2, +std/2].
package synth

import (
	"math/rand"

	"repro/internal/seq"
)

// RandomWalk generates one synthetic sequence of length n following the
// paper's recipe: s_1 uniform in [1, 10], s_i = s_{i-1} + z_i with z_i
// IID uniform in [-0.1, 0.1].
func RandomWalk(rng *rand.Rand, n int) seq.Sequence {
	if n <= 0 {
		return nil
	}
	s := make(seq.Sequence, n)
	s[0] = 1 + 9*rng.Float64()
	for i := 1; i < n; i++ {
		s[i] = s[i-1] + (rng.Float64()*0.2 - 0.1)
	}
	return s
}

// RandomWalkSet generates count sequences of exactly length n (the paper's
// Experiments 3 and 4 fix the average length; we use a fixed length, which
// only tightens the workload).
func RandomWalkSet(rng *rand.Rand, count, n int) []seq.Sequence {
	out := make([]seq.Sequence, count)
	for i := range out {
		out[i] = RandomWalk(rng, n)
	}
	return out
}

// RandomWalkSetVaryLen generates count sequences with lengths uniform in
// [minLen, maxLen], for workloads exercising genuinely different-length
// sequences (the situation time warping exists for).
func RandomWalkSetVaryLen(rng *rand.Rand, count, minLen, maxLen int) []seq.Sequence {
	out := make([]seq.Sequence, count)
	for i := range out {
		n := minLen
		if maxLen > minLen {
			n += rng.Intn(maxLen - minLen + 1)
		}
		out[i] = RandomWalk(rng, n)
	}
	return out
}

// StockOptions shapes the simulated stock data set.
type StockOptions struct {
	// Count is the number of sequences (paper: 545).
	Count int
	// MeanLen is the average sequence length (paper: 231).
	MeanLen int
	// LenSpread is the half-width of the uniform length distribution
	// around MeanLen.
	LenSpread int
}

// DefaultStockOptions mirrors the paper's S&P 500 snapshot.
var DefaultStockOptions = StockOptions{Count: 545, MeanLen: 231, LenSpread: 60}

// StockSet simulates an S&P-500-style collection: per-sequence starting
// prices spread over typical equity levels, per-sequence daily volatility,
// and mild mean-reverting drift, producing smooth locally-correlated series
// of varying lengths (what the filtering experiments are sensitive to).
func StockSet(rng *rand.Rand, opts StockOptions) []seq.Sequence {
	if opts.Count == 0 {
		opts = DefaultStockOptions
	}
	out := make([]seq.Sequence, opts.Count)
	for i := range out {
		n := opts.MeanLen
		if opts.LenSpread > 0 {
			n += rng.Intn(2*opts.LenSpread+1) - opts.LenSpread
		}
		if n < 2 {
			n = 2
		}
		// Log-normal-ish starting price in roughly [5, 300].
		price := 5 + 295*rng.Float64()*rng.Float64()
		vol := price * (0.005 + 0.015*rng.Float64()) // 0.5%–2% daily moves
		s := make(seq.Sequence, n)
		s[0] = price
		drift := 0.0
		for t := 1; t < n; t++ {
			drift = 0.9*drift + 0.1*(rng.Float64()*2-1)*vol
			step := (rng.Float64()*2-1)*vol + drift
			v := s[t-1] + step
			if v < 0.5 {
				v = 0.5 // stocks do not go negative
			}
			s[t] = v
		}
		out[i] = s
	}
	return out
}

// Query produces a paper-style query sequence from data: pick a random data
// sequence, then add to every element an independent random value drawn
// uniformly from [-std/2, +std/2], where std is that sequence's standard
// deviation (§5.1).
func Query(rng *rand.Rand, data []seq.Sequence) seq.Sequence {
	base := data[rng.Intn(len(data))]
	std := base.Std()
	q := make(seq.Sequence, len(base))
	for i, v := range base {
		q[i] = v + (rng.Float64()-0.5)*std
	}
	return q
}

// Queries produces count paper-style queries.
func Queries(rng *rand.Rand, data []seq.Sequence, count int) []seq.Sequence {
	out := make([]seq.Sequence, count)
	for i := range out {
		out[i] = Query(rng, data)
	}
	return out
}
