package twsim_test

import (
	"errors"
	"math"
	"testing"

	twsim "repro"
)

// poisons covers every non-finite value class the validation must reject.
var poisons = []struct {
	name string
	v    float64
}{
	{"NaN", math.NaN()},
	{"+Inf", math.Inf(1)},
	{"-Inf", math.Inf(-1)},
}

// TestNonFiniteRejected: every write and query entry point, on both the
// single and the sharded engine, refuses sequences containing NaN or ±Inf
// with an error wrapping twsim.ErrNonFinite, and a failed batch write
// inserts nothing. A non-finite element would otherwise poison the index
// silently: the R-tree range query can never reach a NaN feature, so the
// sequence becomes invisible to index searches while a linear scan may
// still match it (see TestNaNPoisonDivergence).
func TestNonFiniteRejected(t *testing.T) {
	backends := []struct {
		name string
		open func(t *testing.T) twsim.Backend
	}{
		{"single", func(t *testing.T) twsim.Backend {
			db, err := twsim.OpenMem(twsim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"sharded", func(t *testing.T) twsim.Backend {
			db, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			db := be.open(t)
			if _, err := db.Add([]float64{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			for _, p := range poisons {
				t.Run(p.name, func(t *testing.T) {
					bad := []float64{1, p.v, 3}
					check := func(op string, err error) {
						t.Helper()
						if !errors.Is(err, twsim.ErrNonFinite) {
							t.Errorf("%s: err = %v, want ErrNonFinite", op, err)
						}
					}

					_, err := db.Add(bad)
					check("Add", err)

					before := db.Len()
					_, err = db.AddBatch([][]float64{{4, 5}, bad, {6, 7}})
					check("AddBatch", err)
					if db.Len() != before {
						t.Errorf("AddBatch inserted %d sequences before failing", db.Len()-before)
					}

					_, err = db.Search(bad, 1)
					check("Search", err)
					_, err = db.NearestK(bad, 1)
					check("NearestK", err)
					_, err = db.NearestKStats(bad, 1)
					check("NearestKStats", err)
					_, err = db.SearchBatch([][]float64{{1, 2, 3}, bad}, 1, 2)
					check("SearchBatch", err)
				})
			}
		})
	}
}

// TestNonFiniteRejectedSingleOnly covers the entry points that exist only
// on *DB: AddAll (with rollback) and subsequence search.
func TestNonFiniteRejectedSingleOnly(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 4; i++ {
		if _, err := db.Add([]float64{float64(i), float64(i + 1), float64(i + 2), float64(i + 3)}); err != nil {
			t.Fatal(err)
		}
	}
	si, err := db.BuildSubseqIndex([]int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	for _, p := range poisons {
		t.Run(p.name, func(t *testing.T) {
			bad := []float64{1, p.v}
			before := db.Len()
			if _, err := db.AddAll([][]float64{{8, 9}, bad}); !errors.Is(err, twsim.ErrNonFinite) {
				t.Errorf("AddAll: err = %v, want ErrNonFinite", err)
			}
			if db.Len() != before {
				t.Errorf("AddAll inserted %d sequences before failing", db.Len()-before)
			}
			if _, err := si.Search(bad, 1); !errors.Is(err, twsim.ErrNonFinite) {
				t.Errorf("SubseqIndex.Search: err = %v, want ErrNonFinite", err)
			}
		})
	}
}
