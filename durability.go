package twsim

import (
	"fmt"
	"path/filepath"

	"repro/internal/seq"
	"repro/internal/seqdb"
	"repro/internal/wal"
)

// walFileName is the group-commit log's file inside the database dir.
const walFileName = "wal.log"

// WALStats snapshots the write-ahead log counters (see internal/wal
// Stats). Fsyncs / Records is the group-commit batching factor.
type WALStats = wal.Stats

// Commit is the durability handle a *Commit write variant returns: it
// blocks until the fsync covering the write completes (or returns the
// flush error — the write is applied in memory but its durability is
// unknown). Without a WAL every Commit is an already-satisfied no-op.
//
// The point of the split is group commit under concurrency: a caller that
// serializes writers with a lock should apply under the lock and invoke
// Commit after releasing it, so other writers enter the batch while this
// one waits for the shared fsync.
type Commit = wal.Commit

var noopCommit Commit = func() error { return nil }

// walOptions maps the public knobs onto the log's options.
func (o Options) walOptions() wal.Options {
	return wal.Options{FlushInterval: o.WALFlushInterval, FlushBytes: o.WALFlushBytes}
}

// walCheckpointBytes resolves the auto-checkpoint threshold (<= 0 when
// disabled).
func (o Options) walCheckpointBytes() int64 {
	if o.WALCheckpointBytes == 0 {
		return 64 << 20
	}
	if o.WALCheckpointBytes < 0 {
		return 0
	}
	return o.WALCheckpointBytes
}

// Add stores a sequence and indexes its feature vector, returning its ID.
// Empty sequences are rejected, as are sequences containing NaN or ±Inf
// (ErrNonFinite): a non-finite element would make the index entry
// unreachable while scans still see the record, silently breaking the
// no-false-dismissal guarantee.
//
// Add is atomic: when indexing fails after the heap append succeeded, the
// append is rolled back before the error is returned, so the store and
// the index never diverge and the failed Add can simply be retried.
//
// With Options.WAL set, Add returns only after the fsync covering its log
// record completes — an acknowledged Add survives a crash. A non-nil
// error alongside a valid ID means the write was applied in memory but
// its durability is unknown (the fsync failed).
func (db *DB) Add(values []float64) (ID, error) {
	id, commit, err := db.AddCommit(values)
	if err != nil {
		return id, err
	}
	return id, commit()
}

// AddCommit is Add split at the durability boundary: the mutation is
// applied (and logged) before it returns, and the returned Commit blocks
// until the covering fsync completes. See Commit for why callers holding
// a writer lock should invoke it after unlocking.
func (db *DB) AddCommit(values []float64) (ID, Commit, error) {
	id, err := db.applyAdd(values)
	if err != nil {
		return id, nil, err
	}
	if db.wal == nil {
		return id, noopCommit, nil
	}
	s := seq.Sequence(values)
	commit, werr := db.wal.Begin(wal.NewAdd(id, s))
	if werr != nil {
		// Applied but unloggable: undo so no acknowledged state ever
		// lacks WAL coverage.
		db.undoAppends([]ID{id}, []seq.Sequence{s})
		return seq.InvalidID, nil, fmt.Errorf("twsim: wal append (rolled back): %w", werr)
	}
	if err := db.maybeCheckpoint(); err != nil {
		return id, commit, err
	}
	return id, commit, nil
}

// AddAll stores a batch of sequences; when the database is empty the
// index is STR bulk-loaded, which is substantially faster than repeated
// Add (§4.3.1). Returns the ID of the first added sequence; IDs are
// consecutive.
//
// AddAll is all-or-nothing: on a mid-batch failure every sequence of the
// batch that was already appended is rolled back (and its index entry, if
// any, removed) before the error is returned. With Options.WAL set the
// whole batch is one log record and AddAll returns after its fsync.
func (db *DB) AddAll(values [][]float64) (ID, error) {
	first, commit, err := db.AddAllCommit(values)
	if err != nil {
		return first, err
	}
	return first, commit()
}

// AddAllCommit is AddAll split at the durability boundary (see Commit).
func (db *DB) AddAllCommit(values [][]float64) (ID, Commit, error) {
	first, err := db.applyAddAll(values)
	if err != nil {
		return first, nil, err
	}
	if db.wal == nil {
		return first, noopCommit, nil
	}
	ss := make([]seq.Sequence, len(values))
	for i, v := range values {
		ss[i] = seq.Sequence(v)
	}
	commit, werr := db.wal.Begin(wal.NewAddBatch(first, ss))
	if werr != nil {
		ids := make([]ID, len(ss))
		for i := range ids {
			ids[i] = first + ID(i)
		}
		db.undoAppends(ids, ss)
		return seq.InvalidID, nil, fmt.Errorf("twsim: wal append (batch rolled back): %w", werr)
	}
	if err := db.maybeCheckpoint(); err != nil {
		return first, commit, err
	}
	return first, commit, nil
}

// Remove deletes a stored sequence: its index entry is removed and the
// heap record tombstoned (IDs are never reused; heap space is reclaimed
// only by rebuilding the database). It reports whether the sequence was
// present and live. With Options.WAL set, Remove returns after the fsync
// covering its log record.
func (db *DB) Remove(id ID) (bool, error) {
	ok, commit, err := db.RemoveCommit(id)
	if err != nil {
		return ok, err
	}
	return ok, commit()
}

// RemoveCommit is Remove split at the durability boundary (see Commit).
func (db *DB) RemoveCommit(id ID) (bool, Commit, error) {
	ok, err := db.applyRemove(id)
	if err != nil || !ok || db.wal == nil {
		return ok, noopCommit, err
	}
	commit, werr := db.wal.Begin(wal.NewRemove(id))
	if werr != nil {
		// A tombstone cannot be un-set; make it durable through a full
		// checkpoint instead, which also leaves the log consistent.
		if ferr := db.Flush(); ferr != nil {
			return ok, nil, fmt.Errorf("twsim: wal append failed (%v) and checkpoint failed: %w", werr, ferr)
		}
		return ok, noopCommit, nil
	}
	if err := db.maybeCheckpoint(); err != nil {
		return ok, commit, err
	}
	return ok, commit, nil
}

// undoAppends rolls back freshly-applied appends (reverse order) after a
// WAL enqueue failure. If a rollback can only tombstone (not truncate)
// the heap slot, the slot is burned with no covering log record — a gap a
// later replay would refuse — so the state is forced durable through a
// checkpoint, leaving an empty, consistent log.
func (db *DB) undoAppends(ids []ID, ss []seq.Sequence) {
	defer db.gen.Add(1)
	for i := len(ids) - 1; i >= 0; i-- {
		_, _ = db.index.Delete(ids[i], ss[i])
		db.envs.Remove(ids[i])
		_ = db.store.RollbackLast(ids[i])
	}
	if db.index.Len() != db.store.Len() {
		_, _ = db.Repair()
	}
	if len(ids) > 0 && db.store.NumRecords() > int(ids[0]) {
		_ = db.Flush()
	}
}

// maybeCheckpoint runs a full Flush (which resets the log) when the log
// file outgrows Options.WALCheckpointBytes, bounding replay length and
// amortizing the index/sidecar saves over tens of megabytes of records.
func (db *DB) maybeCheckpoint() error {
	limit := db.opts.walCheckpointBytes()
	if limit <= 0 || db.wal.FileBytes() < limit {
		return nil
	}
	return db.Flush()
}

// openWAL opens (or creates) the log inside db.dir, truncates any torn
// tail, and replays the valid records over the heap. Replay is
// idempotent: IDs are dense and never reused, so an add record applies
// only when its ID is exactly the next heap slot (an already-present ID
// was applied before the crash and is skipped), and a remove applies only
// to a live record. Index and envelope divergence introduced by replay is
// healed by the same Repair/reconcile pass every Open runs.
func (db *DB) openWAL() error {
	wlog, recs, note, err := wal.Open(filepath.Join(db.dir, walFileName), db.opts.walOptions())
	if err != nil {
		return err
	}
	if note != "" {
		db.note("%s", note)
	}
	applied, rerr := replayWAL(db.store, recs)
	if applied > 0 {
		db.note("wal: replayed %d mutations (%d records) over the heap", applied, len(recs))
		db.walReplayed = true
	}
	if rerr != nil {
		// A replay stop (gap, storage fault) is diagnosable, not fatal:
		// the heap stays the source of truth and the reconcile pass runs
		// regardless. The unapplied tail is dropped at the checkpoint
		// that follows a replayed open.
		db.note("wal: replay stopped early: %v", rerr)
		db.walReplayed = true
	}
	db.wal = wlog
	return nil
}

// replayWAL applies logged mutations to the heap, skipping records whose
// effects are already present (see openWAL). It returns the number of
// mutations actually applied.
func replayWAL(store *seqdb.DB, recs []wal.Record) (applied int, err error) {
	for _, r := range recs {
		switch r.Type {
		case wal.TypeAdd, wal.TypeAddBatch:
			id := r.ID
			for _, s := range r.Data {
				next := seq.ID(store.NumRecords())
				switch {
				case id < next:
					// Already applied before the crash (or by an earlier
					// duplicate record): skip.
				case id == next:
					got, aerr := store.Append(s)
					if aerr != nil {
						return applied, aerr
					}
					if got != id {
						return applied, fmt.Errorf("wal: replay misalignment: appended at %d, record says %d", got, id)
					}
					applied++
				default:
					return applied, fmt.Errorf("wal: record gap: next heap slot is %d, record claims %d", next, id)
				}
				id++
			}
		case wal.TypeRemove:
			if int(r.ID) >= store.NumRecords() {
				return applied, fmt.Errorf("wal: remove of unknown record %d", r.ID)
			}
			if !store.Deleted(r.ID) {
				if _, derr := store.Delete(r.ID); derr != nil {
					return applied, derr
				}
				applied++
			}
		default:
			return applied, fmt.Errorf("wal: unknown record type %d", r.Type)
		}
	}
	return applied, nil
}

// WALStats snapshots the write-ahead log counters (zero when the WAL is
// disabled).
func (db *DB) WALStats() WALStats {
	if db.wal == nil {
		return WALStats{}
	}
	return db.wal.Stats()
}

// WALEnabled reports whether this database runs with a write-ahead log.
func (db *DB) WALEnabled() bool { return db.wal != nil }

// NumRecords returns the number of heap record slots including
// tombstones — the dense ID space (the next Add gets ID NumRecords()).
// Replication uses it to align a primary's record stream with a replica.
func (db *DB) NumRecords() int { return db.store.NumRecords() }
