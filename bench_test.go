// Benchmarks regenerating the paper's evaluation (one bench per figure) plus
// ablations of the design choices called out in DESIGN.md §5.
//
// The fixtures here are scaled to keep `go test -bench=.` in the minutes
// range; cmd/experiments runs the same sweeps at the paper's (or near-paper)
// scale and prints the full tables.
package twsim_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/experiments"
	"repro/internal/pagefile"
	"repro/internal/rtree"
	"repro/internal/seq"
	"repro/internal/synth"
)

// benchFixture lazily builds one shared stock-like fixture for the Figure 2
// and Figure 3 benches.
type benchFixture struct {
	once    sync.Once
	fixture *experiments.Fixture
	queries []seq.Sequence
	err     error
}

var stockFx benchFixture

func (bf *benchFixture) get(b *testing.B) (*experiments.Fixture, []seq.Sequence) {
	bf.once.Do(func() {
		rng := rand.New(rand.NewSource(42))
		data := synth.StockSet(rng, synth.StockOptions{Count: 200, MeanLen: 100, LenSpread: 20})
		bf.fixture, bf.err = experiments.BuildFixture(data, experiments.Config{
			Seed: 42, WithSTFilter: true, Categories: 100, NumQueries: 1,
		})
		if bf.err != nil {
			return
		}
		bf.queries = synth.Queries(rng, data, 10)
	})
	if bf.err != nil {
		b.Fatal(bf.err)
	}
	return bf.fixture, bf.queries
}

// runMethod executes one query batch per iteration and reports candidate
// ratio and modeled time as extra metrics.
func runMethod(b *testing.B, m core.Searcher, queries []seq.Sequence, dbSize int, eps float64) {
	b.Helper()
	var agg core.QueryStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			res, err := m.Search(q, eps)
			if err != nil {
				b.Fatal(err)
			}
			agg.Add(res.Stats)
		}
	}
	n := float64(b.N * len(queries))
	b.ReportMetric(float64(agg.Candidates)/n/float64(dbSize), "cand-ratio")
	b.ReportMetric(float64(agg.Modeled(core.DefaultCostModel).Milliseconds())/n, "modeled-ms/q")
}

// BenchmarkFigure2Filtering reproduces Experiment 1 (Figure 2): the
// candidate ratio of each method on stock-like data. The cand-ratio metric
// is the figure's Y axis.
func BenchmarkFigure2Filtering(b *testing.B) {
	fx, queries := stockFx.get(b)
	for _, m := range fx.Methods {
		b.Run(m.Name(), func(b *testing.B) {
			runMethod(b, m, queries, len(fx.Data), 1.0)
		})
	}
}

// BenchmarkFigure3StockElapsed reproduces Experiment 2 (Figure 3): elapsed
// time per query on stock-like data across tolerances.
func BenchmarkFigure3StockElapsed(b *testing.B) {
	fx, queries := stockFx.get(b)
	for _, eps := range []float64{0.5, 2.0} {
		for _, m := range fx.Methods {
			b.Run(fmt.Sprintf("eps=%g/%s", eps, m.Name()), func(b *testing.B) {
				runMethod(b, m, queries, len(fx.Data), eps)
			})
		}
	}
}

// BenchmarkFigure4Scale reproduces Experiment 3 (Figure 4): elapsed time as
// the number of sequences grows, fixed length, eps = 0.1. The paper's
// finding: scans grow linearly, TW-Sim-Search stays nearly flat.
func BenchmarkFigure4Scale(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		rng := rand.New(rand.NewSource(7))
		data := synth.RandomWalkSet(rng, n, 64)
		fx, err := experiments.BuildFixture(data, experiments.Config{Seed: 7, NumQueries: 1})
		if err != nil {
			b.Fatal(err)
		}
		queries := synth.Queries(rng, data, 5)
		for _, m := range fx.Methods {
			b.Run(fmt.Sprintf("n=%d/%s", n, m.Name()), func(b *testing.B) {
				runMethod(b, m, queries, n, 0.1)
			})
		}
		fx.Close()
	}
}

// BenchmarkFigure5Length reproduces Experiment 4 (Figure 5): elapsed time as
// sequence length grows, fixed count, eps = 0.1.
func BenchmarkFigure5Length(b *testing.B) {
	for _, length := range []int{50, 200, 800} {
		rng := rand.New(rand.NewSource(9))
		data := synth.RandomWalkSet(rng, 400, length)
		fx, err := experiments.BuildFixture(data, experiments.Config{Seed: 9, NumQueries: 1})
		if err != nil {
			b.Fatal(err)
		}
		queries := synth.Queries(rng, data, 5)
		for _, m := range fx.Methods {
			b.Run(fmt.Sprintf("len=%d/%s", length, m.Name()), func(b *testing.B) {
				runMethod(b, m, queries, 400, 0.1)
			})
		}
		fx.Close()
	}
}

// BenchmarkAblationBaseDistance compares the DTW base distances (§4.1: L∞
// early-abandons sooner than L1, cutting CPU cost).
func BenchmarkAblationBaseDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	data := synth.RandomWalkSet(rng, 200, 128)
	q := synth.Query(rng, data)
	for _, base := range []seq.Base{seq.LInf, seq.L1} {
		b.Run(base.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, s := range data {
					dtw.DistanceWithin(s, q, base, 0.1)
				}
			}
		})
	}
}

// BenchmarkAblationEarlyAbandon isolates the early-abandoning optimization
// of the refinement step.
func BenchmarkAblationEarlyAbandon(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	data := synth.RandomWalkSet(rng, 100, 128)
	q := synth.Query(rng, data)
	b.Run("abandon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range data {
				dtw.DistanceWithin(s, q, seq.LInf, 0.1)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range data {
				dtw.Distance(s, q, seq.LInf)
			}
		}
	})
}

// BenchmarkAblationSplit compares R-tree build cost under the three split
// heuristics (Guttman quadratic/linear and R*).
func BenchmarkAblationSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	features := make([][4]float64, 2000)
	for i := range features {
		f := seq.MustFeature(synth.RandomWalk(rng, 32))
		features[i] = f.Vector()
	}
	for _, split := range []rtree.SplitStrategy{rtree.QuadraticSplit, rtree.LinearSplit, rtree.RStarSplit} {
		b.Run(split.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool, err := pagefile.NewPool(pagefile.NewMemBackend(1024), 1024, 64)
				if err != nil {
					b.Fatal(err)
				}
				tree, err := rtree.Create(pool, 4, rtree.Options{Split: split})
				if err != nil {
					b.Fatal(err)
				}
				for id, f := range features {
					if err := tree.Insert(rtree.NewPoint(f[:]), uint32(id)); err != nil {
						b.Fatal(err)
					}
				}
				tree.Close()
			}
		})
	}
}

// BenchmarkAblationBulkLoad compares STR bulk loading against one-by-one
// insertion (§4.3.1's recommendation).
func BenchmarkAblationBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	entries := make([]rtree.Entry, 2000)
	for i := range entries {
		f := seq.MustFeature(synth.RandomWalk(rng, 32)).Vector()
		entries[i] = rtree.Entry{Rect: rtree.NewPoint(f[:]), Child: uint32(i)}
	}
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool, _ := pagefile.NewPool(pagefile.NewMemBackend(1024), 1024, 64)
			tree, err := rtree.Create(pool, 4, rtree.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := tree.BulkLoad(entries); err != nil {
				b.Fatal(err)
			}
			tree.Close()
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool, _ := pagefile.NewPool(pagefile.NewMemBackend(1024), 1024, 64)
			tree, err := rtree.Create(pool, 4, rtree.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range entries {
				if err := tree.Insert(e.Rect, e.Child); err != nil {
					b.Fatal(err)
				}
			}
			tree.Close()
		}
	})
}

// BenchmarkAblationSTCategories explores the §3.4 category-count trade-off:
// query cost across categorization granularities.
func BenchmarkAblationSTCategories(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	data := synth.RandomWalkSet(rng, 150, 48)
	fx, err := experiments.BuildFixture(data, experiments.Config{Seed: 23, NumQueries: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Close()
	queries := synth.Queries(rng, data, 5)
	for _, categories := range []int{20, 100, 500} {
		stf, err := core.BuildSTFilter(fx.DB, seq.LInf, categories)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("categories=%d", categories), func(b *testing.B) {
			runMethod(b, stf, queries, len(data), 0.1)
		})
	}
}

// BenchmarkLowerBounds compares the evaluation cost of the three lower
// bounds (LBKim is O(1) on pre-extracted features; the others scan).
func BenchmarkLowerBounds(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	s := synth.RandomWalk(rng, 256)
	q := synth.RandomWalk(rng, 256)
	fs, fq := seq.MustFeature(s), seq.MustFeature(q)
	env := dtw.NewEnvelope(q, 8)
	b.Run("LBKim-features", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtw.LBKimFeatures(fs, fq)
		}
	})
	b.Run("LBKim-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtw.LBKim(s, q)
		}
	})
	b.Run("LBYi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtw.LBYi(s, q, seq.LInf)
		}
	})
	b.Run("LBKeogh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtw.LBKeogh(s, env, seq.LInf)
		}
	})
}

// BenchmarkDTW measures the raw dynamic program at a few sizes.
func BenchmarkDTW(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{64, 256} {
		s := synth.RandomWalk(rng, n)
		q := synth.RandomWalk(rng, n)
		b.Run(fmt.Sprintf("full/%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dtw.Distance(s, q, seq.LInf)
			}
		})
		b.Run(fmt.Sprintf("band8/%dx%d", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dtw.BandDistance(s, q, seq.LInf, 8)
			}
		})
	}
}

// BenchmarkSubseqSearch measures the §6 subsequence-matching extension.
func BenchmarkSubseqSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	data := synth.RandomWalkSet(rng, 50, 200)
	fx, err := experiments.BuildFixture(data, experiments.Config{Seed: 37, NumQueries: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Close()
	si, err := core.BuildSubseqIndex(fx.DB, seq.LInf, []int{16}, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer si.Close()
	q := data[0][40:56]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := si.Search(q, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNN measures the exact k-NN extension against a linear scan.
func BenchmarkKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	data := synth.RandomWalkSet(rng, 1000, 64)
	fx, err := experiments.BuildFixture(data, experiments.Config{Seed: 41, NumQueries: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Close()
	tw := &core.TWSimSearch{DB: fx.DB, Index: fx.Index, Base: seq.LInf}
	q := synth.Query(rng, data)
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tw.NearestK(q, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range data {
				dtw.Distance(s, q, seq.LInf)
			}
		}
	})
}

// BenchmarkAdaptiveRefinement compares the paper's per-candidate fetch
// refinement against the cost-based adaptive variant at a tolerance where
// candidates approach the whole database (where sequential sweeping wins).
func BenchmarkAdaptiveRefinement(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	data := synth.RandomWalkSet(rng, 500, 64)
	fx, err := experiments.BuildFixture(data, experiments.Config{Seed: 43, NumQueries: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Close()
	queries := synth.Queries(rng, data, 5)
	tw := &core.TWSimSearch{DB: fx.DB, Index: fx.Index, Base: seq.LInf}
	ad := &core.AdaptiveSearch{DB: fx.DB, Index: fx.Index, Base: seq.LInf}
	const eps = 5.0 // nearly everything qualifies
	b.Run("fetch", func(b *testing.B) {
		runMethod(b, tw, queries, len(data), eps)
	})
	b.Run("adaptive", func(b *testing.B) {
		runMethod(b, ad, queries, len(data), eps)
	})
}

// BenchmarkSTFilterSubsequences measures the suffix-tree subsequence
// search (Park et al.'s original use case for the structure).
func BenchmarkSTFilterSubsequences(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	data := synth.RandomWalkSet(rng, 30, 100)
	fx, err := experiments.BuildFixture(data, experiments.Config{Seed: 47, NumQueries: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Close()
	stf, err := core.BuildSTFilter(fx.DB, seq.LInf, 100)
	if err != nil {
		b.Fatal(err)
	}
	q := data[0][20:28]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stf.SearchSubsequences(q, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}
